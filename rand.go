package atom

import (
	"crypto/rand"
	"io"
	"sync/atomic"
)

// The package's client-side randomness — submission onions, dialing
// identities and requests, cover-traffic sampling, microblog posts —
// flows through one injected source instead of scattered crypto/rand
// reads. Production keeps the crypto/rand default; tests and
// reproducibility harnesses inject a seeded source to make entire
// client transcripts deterministic.

// entropySource holds the current source behind an atomic so readers
// never race a SetEntropySource call.
var entropySource atomic.Pointer[entropyBox]

// entropyBox exists because atomic.Pointer needs a concrete type to
// wrap the io.Reader interface value.
type entropyBox struct{ r io.Reader }

func init() { entropySource.Store(&entropyBox{rand.Reader}) }

// entropy returns the package's current randomness source.
func entropy() io.Reader { return entropySource.Load().r }

// SetEntropySource reroutes all client-side randomness in this package
// — submission encryption, dialing identities and requests, noise
// sampling, microblog posts — through r. Passing nil restores
// crypto/rand. The source must be safe for concurrent use (wrap a
// deterministic reader in a mutex if needed); server-side mixing
// randomness is not affected.
func SetEntropySource(r io.Reader) {
	if r == nil {
		r = rand.Reader
	}
	entropySource.Store(&entropyBox{r})
}
