package atom

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"atom/internal/elgamal"
	"atom/internal/protocol"
)

func TestRoundConcurrentSubmission(t *testing.T) {
	// Many goroutines hammer one round's Submit concurrently; with
	// sharded ingestion this must be race-clean (run under -race) and
	// lose no submissions.
	for _, v := range []Variant{NIZK, Trap} {
		n, err := NewNetwork(testNetworkConfig(v, 32))
		if err != nil {
			t.Fatal(err)
		}
		round, err := n.OpenRound(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		const workers = 8
		const perWorker = 3
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					user := w*perWorker + i
					msg := fmt.Sprintf("concurrent %v %d", v, user)
					if err := round.Submit(user, []byte(msg)); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		if got := round.Pending(); got != workers*perWorker {
			t.Fatalf("variant %v: %d pending, want %d", v, got, workers*perWorker)
		}
		res, err := round.Mix(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Messages) != workers*perWorker {
			t.Fatalf("variant %v: %d messages out, want %d", v, len(res.Messages), workers*perWorker)
		}
	}
}

func TestRoundPipelining(t *testing.T) {
	// The §4.7 pipelined organization end-to-end: round r+1 opens and
	// ingests submissions while round r mixes; both rounds complete
	// with the correct anonymized output.
	n, err := NewNetwork(testNetworkConfig(Trap, 32))
	if err != nil {
		t.Fatal(err)
	}

	r0, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want0 := map[string]bool{}
	for u := 0; u < 8; u++ {
		msg := fmt.Sprintf("round0 msg %d", u)
		want0[msg] = true
		if err := r0.Submit(u, []byte(msg)); err != nil {
			t.Fatal(err)
		}
	}

	// Mix round 0 in the background; meanwhile open round 1 and submit
	// into it. submitted1 closes once every round-1 submission has been
	// accepted; the test asserts that happens before round 0's Mix
	// returns has-completed semantics via the overlap counter below.
	mixStarted := make(chan struct{})
	mixDone := make(chan struct{})
	var res0 *Result
	var err0 error
	go func() {
		close(mixStarted)
		res0, err0 = r0.Mix(context.Background())
		close(mixDone)
	}()
	<-mixStarted

	r1, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID() == r0.ID() {
		t.Fatal("round ids must be unique")
	}
	want1 := map[string]bool{}
	overlapped := 0
	for u := 0; u < 8; u++ {
		msg := fmt.Sprintf("round1 msg %d", u)
		want1[msg] = true
		if err := r1.Submit(u, []byte(msg)); err != nil {
			t.Fatalf("submission into round %d while round %d mixes: %v", r1.ID(), r0.ID(), err)
		}
		select {
		case <-mixDone:
		default:
			overlapped++
		}
	}
	<-mixDone
	if err0 != nil {
		t.Fatalf("round 0: %v", err0)
	}
	t.Logf("%d/8 round-1 submissions accepted while round 0 was still mixing", overlapped)

	res1, err := r1.Mix(context.Background())
	if err != nil {
		t.Fatalf("round 1: %v", err)
	}

	check := func(res *Result, want map[string]bool, name string) {
		t.Helper()
		if len(res.Messages) != len(want) {
			t.Fatalf("%s: %d messages, want %d", name, len(res.Messages), len(want))
		}
		for _, m := range res.Messages {
			if !want[string(m)] {
				t.Errorf("%s: unexpected message %q", name, m)
			}
		}
	}
	check(res0, want0, "round 0")
	check(res1, want1, "round 1")

	// Round stats are available after the mix.
	st, ok := r0.Stats()
	if !ok || st.Iterations != 2 || st.Messages != 8 || st.Submissions != 8 {
		t.Fatalf("round 0 stats = %+v ok=%v", st, ok)
	}
	if len(st.PerIteration) != 2 || st.PerIteration[0].Duration <= 0 {
		t.Fatalf("per-iteration stats missing: %+v", st.PerIteration)
	}
}

func TestRoundErrorsTaxonomy(t *testing.T) {
	// errors.Is classification for the public sentinels, via the public
	// API surface wherever possible.
	cfg := testNetworkConfig(Trap, 32)
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("bad-submission", func(t *testing.T) {
		r, _ := n.OpenRound(context.Background())
		err := r.SubmitEncoded(0, []byte("garbage wire bytes"))
		if !errors.Is(err, ErrBadSubmission) {
			t.Fatalf("got %v, want ErrBadSubmission", err)
		}
		if errors.Is(err, ErrRoundAborted) {
			t.Fatal("bad submission must not match ErrRoundAborted")
		}
	})

	t.Run("duplicate-submission", func(t *testing.T) {
		r, _ := n.OpenRound(context.Background())
		key, err := r.TrusteeKey()
		if err != nil {
			t.Fatal(err)
		}
		entry, err := n.EntryKey(0)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wire, err := c.EncryptSubmission([]byte("dup"), entry, key, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.SubmitEncoded(0, wire); err != nil {
			t.Fatal(err)
		}
		err = r.SubmitEncoded(1, wire)
		if !errors.Is(err, ErrDuplicateSubmission) {
			t.Fatalf("got %v, want ErrDuplicateSubmission", err)
		}
		if !errors.Is(err, ErrBadSubmission) {
			t.Fatal("a duplicate must also match ErrBadSubmission")
		}
	})

	t.Run("round-closed", func(t *testing.T) {
		r, _ := n.OpenRound(context.Background())
		for u := 0; u < 8; u++ {
			if err := r.Submit(u, []byte(fmt.Sprintf("closing %d", u))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.Mix(context.Background()); err != nil {
			t.Fatal(err)
		}
		err := r.Submit(99, []byte("too late"))
		if !errors.Is(err, ErrRoundClosed) {
			t.Fatalf("got %v, want ErrRoundClosed", err)
		}
		if _, err := r.Mix(context.Background()); !errors.Is(err, ErrRoundClosed) {
			t.Fatalf("double Mix: got %v, want ErrRoundClosed", err)
		}
	})

	t.Run("no-such-group", func(t *testing.T) {
		r, _ := n.OpenRound(context.Background())
		if err := r.SubmitTo(0, 99, []byte("nowhere")); !errors.Is(err, ErrNoSuchGroup) {
			t.Fatalf("got %v, want ErrNoSuchGroup", err)
		}
	})

	t.Run("variant-mismatch", func(t *testing.T) {
		nizkNet, err := NewNetwork(testNetworkConfig(NIZK, 32))
		if err != nil {
			t.Fatal(err)
		}
		r, _ := nizkNet.OpenRound(context.Background())
		if _, err := r.TrusteeKey(); !errors.Is(err, ErrVariantMismatch) {
			t.Fatalf("got %v, want ErrVariantMismatch", err)
		}
	})

	t.Run("trap-tripped", func(t *testing.T) {
		r, err := n.OpenRound(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 8; u++ {
			if err := r.Submit(u, []byte(fmt.Sprintf("tamper %d", u))); err != nil {
				t.Fatal(err)
			}
		}
		// A malicious server drops a ciphertext mid-mix.
		n.d.SetAdversary(&protocol.Adversary{
			Layer: 0, GID: 0, Member: 0,
			Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
				if len(batch) == 0 {
					return nil
				}
				return batch[:len(batch)-1]
			},
		})
		_, err = r.Mix(context.Background())
		if !errors.Is(err, ErrTrapTripped) {
			t.Fatalf("got %v, want ErrTrapTripped", err)
		}
		if !errors.Is(err, ErrRoundAborted) {
			t.Fatal("a trap trip must also match ErrRoundAborted")
		}
		if errors.Is(err, ErrProofRejected) {
			t.Fatal("a trap trip must not match ErrProofRejected")
		}
		// The internal sentinel remains reachable through the chain.
		if !errors.Is(err, protocol.ErrRoundAborted) {
			t.Fatal("internal protocol.ErrRoundAborted lost from the chain")
		}
	})

	t.Run("proof-rejected", func(t *testing.T) {
		nizkNet, err := NewNetwork(testNetworkConfig(NIZK, 32))
		if err != nil {
			t.Fatal(err)
		}
		r, _ := nizkNet.OpenRound(context.Background())
		for u := 0; u < 8; u++ {
			if err := r.Submit(u, []byte(fmt.Sprintf("nizk tamper %d", u))); err != nil {
				t.Fatal(err)
			}
		}
		// Replace one ciphertext with a copy of another (shape-preserving
		// tamper): the member's shuffle proof then fails verification.
		nizkNet.d.SetAdversary(&protocol.Adversary{
			Layer: 0, GID: 0, Member: 0,
			Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
				if len(batch) < 2 {
					return nil
				}
				out := make([]elgamal.Vector, len(batch))
				copy(out, batch)
				out[0] = batch[1]
				return out
			},
		})
		_, err = r.Mix(context.Background())
		if !errors.Is(err, ErrProofRejected) {
			t.Fatalf("got %v, want ErrProofRejected", err)
		}
		if !errors.Is(err, ErrRoundAborted) {
			t.Fatal("a proof rejection must also match ErrRoundAborted")
		}
	})

	t.Run("recovery-needed", func(t *testing.T) {
		small, err := NewNetwork(testNetworkConfig(NIZK, 32))
		if err != nil {
			t.Fatal(err)
		}
		r, _ := small.OpenRound(context.Background())
		for u := 0; u < 8; u++ {
			if err := r.Submit(u, []byte(fmt.Sprintf("dead group %d", u))); err != nil {
				t.Fatal(err)
			}
		}
		// Group size 3, h=1: one failure exceeds the budget.
		if err := small.FailGroupMember(1, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Mix(context.Background()); !errors.Is(err, ErrRecoveryNeeded) {
			t.Fatalf("got %v, want ErrRecoveryNeeded", err)
		}
	})
}

func TestErrorTaxonomyTable(t *testing.T) {
	// The sentinel hierarchy itself: leaves match their parents under
	// errors.Is, siblings and unrelated sentinels do not.
	cases := []struct {
		name   string
		err    error
		target error
		want   bool
	}{
		{"trap-implies-aborted", ErrTrapTripped, ErrRoundAborted, true},
		{"proof-implies-aborted", ErrProofRejected, ErrRoundAborted, true},
		{"dup-implies-bad", ErrDuplicateSubmission, ErrBadSubmission, true},
		{"trap-not-proof", ErrTrapTripped, ErrProofRejected, false},
		{"proof-not-trap", ErrProofRejected, ErrTrapTripped, false},
		{"bad-not-aborted", ErrBadSubmission, ErrRoundAborted, false},
		{"bad-not-dup", ErrBadSubmission, ErrDuplicateSubmission, false},
		{"closed-not-aborted", ErrRoundClosed, ErrRoundAborted, false},
		{"aborted-not-trap", ErrRoundAborted, ErrTrapTripped, false},
		{"recovery-standalone", ErrRecoveryNeeded, ErrRoundAborted, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := errors.Is(tc.err, tc.target); got != tc.want {
				t.Fatalf("errors.Is(%v, %v) = %v, want %v", tc.err, tc.target, got, tc.want)
			}
		})
	}
}

func TestRoundMixCancellation(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig(NIZK, 32))
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		if err := r.Submit(u, []byte(fmt.Sprintf("canceled %d", u))); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the mix must abort before doing anything
	_, err = r.Mix(ctx)
	if err == nil {
		t.Fatal("Mix with canceled context succeeded")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ctx.Err() lost from the chain: %v", err)
	}
	if !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("cancellation must classify as ErrRoundAborted: %v", err)
	}
	// A pre-canceled Mix must not consume the batch: retrying with a
	// live context completes the round.
	res, err := r.Mix(context.Background())
	if err != nil {
		t.Fatalf("retry after pre-canceled Mix: %v", err)
	}
	if len(res.Messages) != 8 {
		t.Fatalf("retry lost submissions: %d messages", len(res.Messages))
	}
}

func TestRoundMixDeadline(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig(NIZK, 32))
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		if err := r.Submit(u, []byte(fmt.Sprintf("deadline %d", u))); err != nil {
			t.Fatal(err)
		}
	}
	// A deadline far too tight for 2 iterations of real crypto.
	ctx, cancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer cancel()
	_, err = r.Mix(ctx)
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("got %v, want DeadlineExceeded classified as ErrRoundAborted", err)
	}
}

func TestObserverHooks(t *testing.T) {
	n, err := NewNetwork(testNetworkConfig(Trap, 32))
	if err != nil {
		t.Fatal(err)
	}
	var opened, iterations, mixedRounds, failed atomic.Int64
	var accepted atomic.Int64
	var lastStats RoundStats
	var mu sync.Mutex
	n.SetObserver(&Observer{
		RoundOpened:        func(uint64) { opened.Add(1) },
		SubmissionAccepted: func(uint64, int, int) { accepted.Add(1) },
		IterationDone:      func(IterationStats) { iterations.Add(1) },
		RoundMixed: func(st RoundStats) {
			mixedRounds.Add(1)
			mu.Lock()
			lastStats = st
			mu.Unlock()
		},
		RoundFailed: func(uint64, error) { failed.Add(1) },
	})

	r, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		if err := r.Submit(u, []byte(fmt.Sprintf("observed %d", u))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Mix(context.Background()); err != nil {
		t.Fatal(err)
	}

	if opened.Load() != 1 || accepted.Load() != 8 || failed.Load() != 0 {
		t.Fatalf("opened=%d accepted=%d failed=%d", opened.Load(), accepted.Load(), failed.Load())
	}
	if iterations.Load() != 2 {
		t.Fatalf("%d iteration callbacks, want 2", iterations.Load())
	}
	if mixedRounds.Load() != 1 {
		t.Fatalf("%d RoundMixed callbacks", mixedRounds.Load())
	}
	mu.Lock()
	st := lastStats
	mu.Unlock()
	if st.Submissions != 8 || st.Messages != 8 || st.Iterations != 2 || st.Duration <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Shuffles == 0 || st.ReEncs == 0 {
		t.Fatalf("work counters empty: %+v", st)
	}

	// The legacy Run path reports through the same observer.
	for u := 0; u < 8; u++ {
		if err := n.SubmitMessage(u, []byte(fmt.Sprintf("legacy observed %d", u))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if mixedRounds.Load() != 2 {
		t.Fatalf("legacy Run did not report RoundMixed (count %d)", mixedRounds.Load())
	}
}

func TestRoundTrusteeKeysAreIndependent(t *testing.T) {
	// Two concurrently open trap rounds carry distinct trustee keys, and
	// a submission encrypted for one round is rejected by... nothing at
	// submission time (keys are unlinkable), but decrypts to garbage and
	// is dropped at the finale — here we just pin key independence.
	n, err := NewNetwork(testNetworkConfig(Trap, 32))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	k1, err := r1.TrusteeKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := r2.TrusteeKey()
	if err != nil {
		t.Fatal(err)
	}
	if string(k1) == string(k2) {
		t.Fatal("two open rounds share a trustee key")
	}
}
