// Command atomclient is the user side of an atomd deployment: it
// fetches the round's public keys, performs all cryptography locally
// (padding, onion encryption, proof of plaintext knowledge, and — in
// the trap variant — trap generation and commitment), ships the opaque
// submission, and can trigger and print a round. Every request is
// bounded by -timeout, so a dead daemon fails fast instead of hanging.
//
// One-round-at-a-time (legacy surface):
//
//	atomclient -server host:9000 -user 3 -submit "hello world"
//	atomclient -server host:9000 -run
//
// Pipelined rounds: open a round (printing its id and, in the trap
// variant, its trustee key), submit into a specific round — possibly
// while an earlier one mixes — then mix it:
//
//	atomclient -server host:9000 -open -user 3 -submit "hello"
//	atomclient -server host:9000 -round 7 -user 4 -submit "hi" -trusteekey <hex from -open>
//	atomclient -server host:9000 -round 7 -mix
package main

import (
	"context"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"time"

	"atom"
	"atom/internal/daemon"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:9000", "atomd address")
		user    = flag.Int("user", 0, "user id (picks the entry group: user mod G)")
		submit  = flag.String("submit", "", "message to submit")
		run     = flag.Bool("run", false, "trigger the legacy blocking round and print results")
		open    = flag.Bool("open", false, "open a new round and print its id")
		round   = flag.Uint64("round", 0, "round id for -submit/-mix (0 = the daemon's current round)")
		mix     = flag.Bool("mix", false, "mix the round given by -round and print results")
		tkey    = flag.String("trusteekey", "", "hex trustee key of the target round (trap variant, with -round)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request deadline")
	)
	flag.Parse()
	if *submit == "" && !*run && !*open && !*mix {
		log.Fatal("atomclient: nothing to do (use -open, -submit, -mix and/or -run)")
	}

	ctx := context.Background()
	withDeadline := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(ctx, *timeout)
	}

	cli, err := daemon.Dial(*server)
	if err != nil {
		log.Fatalf("atomclient: %v", err)
	}
	defer cli.Close()

	rctx, cancel := withDeadline()
	info, err := cli.Info(rctx)
	cancel()
	if err != nil {
		log.Fatalf("atomclient: fetching deployment info: %v", err)
	}

	var opened *daemon.RoundInfo
	if *open {
		rctx, cancel := withDeadline()
		opened, err = cli.OpenRound(rctx)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: opening round: %v", err)
		}
		if len(opened.TrusteeKey) > 0 {
			fmt.Printf("opened round %d (trustee key %x)\n", opened.ID, opened.TrusteeKey)
		} else {
			fmt.Printf("opened round %d\n", opened.ID)
		}
	}

	if *submit != "" {
		variant := atom.NIZK
		if info.Trap {
			variant = atom.Trap
		}
		// Only the fields the client-side crypto needs must match the
		// daemon; keys arrive over the wire.
		ac, err := atom.NewClient(atom.Config{
			Servers: 1, Groups: info.Groups, GroupSize: 1,
			MessageSize: info.MessageSize, Variant: variant, Iterations: 1,
		})
		if err != nil {
			log.Fatalf("atomclient: %v", err)
		}
		// Trustee keys are per-round: a submission must encrypt against
		// the key of the round it targets. The current round's key comes
		// from info; an explicitly opened round's from the open reply or
		// the -trusteekey flag.
		trusteeKey := info.TrusteeKey
		target := *round
		if opened != nil {
			target = opened.ID
			trusteeKey = opened.TrusteeKey
		} else if target != 0 && info.Trap {
			if *tkey == "" {
				log.Fatal("atomclient: -round submissions on a trap deployment need -trusteekey (printed by -open)")
			}
			if trusteeKey, err = hex.DecodeString(*tkey); err != nil {
				log.Fatalf("atomclient: bad -trusteekey: %v", err)
			}
		}
		gid := *user % info.Groups
		wire, err := ac.EncryptSubmission([]byte(*submit), info.EntryKeys[gid], trusteeKey, gid)
		if err != nil {
			log.Fatalf("atomclient: encrypting: %v", err)
		}
		rctx, cancel := withDeadline()
		if target != 0 {
			err = cli.SubmitRound(rctx, target, *user, wire)
		} else {
			err = cli.Submit(rctx, *user, wire)
		}
		cancel()
		if err != nil {
			log.Fatalf("atomclient: submitting: %v", err)
		}
		fmt.Printf("submitted %d bytes to entry group %d\n", len(wire), gid)
	}

	if *mix {
		target := *round
		if opened != nil && target == 0 {
			target = opened.ID
		}
		if target == 0 {
			log.Fatal("atomclient: -mix needs -round (or -open)")
		}
		rctx, cancel := withDeadline()
		msgs, err := cli.Mix(rctx, target)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: mixing round %d: %v", target, err)
		}
		printMessages(msgs)
	}

	if *run {
		rctx, cancel := withDeadline()
		msgs, err := cli.RunRound(rctx)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: round: %v", err)
		}
		printMessages(msgs)
	}
}

func printMessages(msgs [][]byte) {
	fmt.Printf("round complete — %d anonymized messages:\n", len(msgs))
	for _, m := range msgs {
		fmt.Printf("  %s\n", m)
	}
}
