// Command atomclient is the user side of an atomd deployment: it
// fetches the round's public keys, performs all cryptography locally
// (padding, onion encryption, proof of plaintext knowledge, and — in
// the trap variant — trap generation and commitment), ships the opaque
// submission, and can trigger and print a round. Every request is
// bounded by -timeout, so a dead daemon fails fast instead of hanging.
//
// One-round-at-a-time (legacy surface):
//
//	atomclient -server host:9000 -user 3 -submit "hello world"
//	atomclient -server host:9000 -run
//
// Pipelined rounds: open a round (printing its id and, in the trap
// variant, its trustee key), submit into a specific round — possibly
// while an earlier one mixes — then mix it:
//
//	atomclient -server host:9000 -open -user 3 -submit "hello"
//	atomclient -server host:9000 -round 7 -user 4 -submit "hi" -trusteekey <hex from -open>
//	atomclient -server host:9000 -round 7 -mix
//
// Batch submission drives load from one process over one connection:
// -count replicates -submit, -submit-file reads one message per line,
// and users count up from -user. Against an atomd -serve deployment,
// -ingest targets whichever round the continuous service has open
// (re-fetching when a round seals mid-batch) and -await waits for the
// batch's round to publish:
//
//	atomclient -server host:9000 -submit "load %d" -count 256 -ingest -await
//	atomclient -server host:9000 -submit-file messages.txt -ingest
//
// With -fast the batch rides the daemon's multiplexed binary submit
// path instead of one gob RPC per message: submissions are pipelined
// over a single connection and verdicts arrive as coalesced async acks,
// so one process drives thousands of logical users at wire speed. The
// daemon advertises the fast-path address through Info (atomd
// -fastpath); -fast requires -ingest:
//
//	atomclient -server host:9000 -submit "load %d" -count 4096 -ingest -fast -await
package main

import (
	"context"
	"encoding/hex"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"sync"
	"time"

	"atom"
	"atom/internal/daemon"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:9000", "atomd address")
		user    = flag.Int("user", 0, "user id (picks the entry group: user mod G)")
		submit  = flag.String("submit", "", "message to submit")
		run     = flag.Bool("run", false, "trigger the legacy blocking round and print results")
		open    = flag.Bool("open", false, "open a new round and print its id")
		round   = flag.Uint64("round", 0, "round id for -submit/-mix (0 = the daemon's current round)")
		mix     = flag.Bool("mix", false, "mix the round given by -round and print results")
		tkey    = flag.String("trusteekey", "", "hex trustee key of the target round (trap variant, with -round)")
		timeout = flag.Duration("timeout", 2*time.Minute, "per-request deadline")
		count   = flag.Int("count", 1, "batch mode: submit this many copies of -submit (a %d in the text becomes the message index)")
		file    = flag.String("submit-file", "", "batch mode: submit every line of this file as one message")
		ingest  = flag.Bool("ingest", false, "target the continuous service's open round (atomd -serve)")
		await   = flag.Bool("await", false, "with -ingest: wait for the submitted round to publish and print it")
		fast    = flag.Bool("fast", false, "with -ingest: pipeline the batch over the daemon's binary submit path (atomd -fastpath)")
	)
	flag.Parse()
	if *fast && !*ingest {
		log.Fatal("atomclient: -fast needs -ingest (the fast path feeds the continuous service)")
	}
	if *submit == "" && *file == "" && !*run && !*open && !*mix {
		log.Fatal("atomclient: nothing to do (use -open, -submit, -submit-file, -mix and/or -run)")
	}

	ctx := context.Background()
	withDeadline := func() (context.Context, context.CancelFunc) {
		return context.WithTimeout(ctx, *timeout)
	}

	cli, err := daemon.Dial(*server)
	if err != nil {
		log.Fatalf("atomclient: %v", err)
	}
	defer cli.Close()

	rctx, cancel := withDeadline()
	info, err := cli.Info(rctx)
	cancel()
	if err != nil {
		log.Fatalf("atomclient: fetching deployment info: %v", err)
	}

	var opened *daemon.RoundInfo
	if *open {
		rctx, cancel := withDeadline()
		opened, err = cli.OpenRound(rctx)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: opening round: %v", err)
		}
		if len(opened.TrusteeKey) > 0 {
			fmt.Printf("opened round %d (trustee key %x)\n", opened.ID, opened.TrusteeKey)
		} else {
			fmt.Printf("opened round %d\n", opened.ID)
		}
	}

	if *submit != "" || *file != "" {
		msgs := buildBatch(*submit, *file, *count)
		variant := atom.NIZK
		if info.Trap {
			variant = atom.Trap
		}
		// Only the fields the client-side crypto needs must match the
		// daemon; keys arrive over the wire.
		ac, err := atom.NewClient(atom.Config{
			Servers: 1, Groups: info.Groups, GroupSize: 1,
			MessageSize: info.MessageSize, Variant: variant, Iterations: 1,
		})
		if err != nil {
			log.Fatalf("atomclient: %v", err)
		}

		if *ingest {
			// Continuous service: submit the batch into whichever round
			// is open, re-fetching when a seal lands mid-batch.
			var published []uint64
			if *fast {
				published = fastIngestBatch(ctx, info, ac, *user, msgs, *timeout)
			} else {
				published = ingestBatch(ctx, cli, ac, info, *user, msgs, *timeout)
			}
			if *await {
				for _, rid := range published {
					rctx, cancel := withDeadline()
					out, err := cli.Await(rctx, rid)
					cancel()
					if err != nil {
						log.Fatalf("atomclient: awaiting round %d: %v", rid, err)
					}
					fmt.Printf("round %d published:\n", rid)
					printMessages(out)
				}
			}
		} else {
			// One-shot rounds: the legacy current round, or an explicit
			// open round. Trustee keys are per-round: a submission must
			// encrypt against the key of the round it targets. The
			// current round's key comes from info; an explicitly opened
			// round's from the open reply or the -trusteekey flag.
			trusteeKey := info.TrusteeKey
			target := *round
			if opened != nil {
				target = opened.ID
				trusteeKey = opened.TrusteeKey
			} else if target != 0 && info.Trap {
				if *tkey == "" {
					log.Fatal("atomclient: -round submissions on a trap deployment need -trusteekey (printed by -open)")
				}
				if trusteeKey, err = hex.DecodeString(*tkey); err != nil {
					log.Fatalf("atomclient: bad -trusteekey: %v", err)
				}
			}
			ri := &daemon.RoundInfo{ID: target, TrusteeKey: trusteeKey}
			submitFn := cli.SubmitRound
			if target == 0 {
				submitFn = func(ctx context.Context, _ uint64, user int, wire []byte) error {
					return cli.Submit(ctx, user, wire)
				}
			}
			rctx, cancel := context.WithTimeout(ctx, *timeout*time.Duration(len(msgs)))
			n, err := daemon.SubmitBatch(rctx, ac, info, ri, *user, msgs, submitFn)
			cancel()
			if err != nil {
				log.Fatalf("atomclient: submitting (after %d accepted): %v", n, err)
			}
			fmt.Printf("submitted %d message(s) as users %d..%d\n", n, *user, *user+n-1)
		}
	}

	if *mix {
		target := *round
		if opened != nil && target == 0 {
			target = opened.ID
		}
		if target == 0 {
			log.Fatal("atomclient: -mix needs -round (or -open)")
		}
		rctx, cancel := withDeadline()
		msgs, err := cli.Mix(rctx, target)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: mixing round %d: %v", target, err)
		}
		printMessages(msgs)
	}

	if *run {
		rctx, cancel := withDeadline()
		msgs, err := cli.RunRound(rctx)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: round: %v", err)
		}
		printMessages(msgs)
	}
}

// buildBatch assembles the messages of one batch submission: every line
// of -submit-file, or -count copies of -submit (a %d in the text is
// replaced by the message index so the copies stay distinct — identical
// plaintexts are legal, but identical wire submissions would never
// occur anyway since encryption is randomized).
func buildBatch(submit, file string, count int) [][]byte {
	var msgs [][]byte
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			log.Fatalf("atomclient: %v", err)
		}
		for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
			if line != "" {
				msgs = append(msgs, []byte(line))
			}
		}
		if len(msgs) == 0 {
			log.Fatalf("atomclient: %s holds no messages", file)
		}
		return msgs
	}
	if count < 1 {
		count = 1
	}
	for i := 0; i < count; i++ {
		text := submit
		if strings.Contains(text, "%d") {
			text = strings.ReplaceAll(text, "%d", fmt.Sprint(i))
		} else if count > 1 {
			text = fmt.Sprintf("%s #%d", text, i)
		}
		msgs = append(msgs, []byte(text))
	}
	return msgs
}

// ingestBatch drives a batch into the continuous service: it fetches
// the open round, submits until the round seals underneath it, then
// re-fetches and continues — returning every round id the batch landed
// in, in order.
func ingestBatch(ctx context.Context, cli *daemon.Client, ac *atom.Client, info *daemon.Info,
	base int, msgs [][]byte, timeout time.Duration) []uint64 {
	var published []uint64
	remaining := msgs
	user := base
	for len(remaining) > 0 {
		rctx, cancel := context.WithTimeout(ctx, timeout)
		ri, err := cli.ServeInfo(rctx)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: fetching open round: %v", err)
		}
		rctx, cancel = context.WithTimeout(ctx, timeout*time.Duration(len(remaining)))
		n, err := daemon.SubmitBatch(rctx, ac, info, ri, user, remaining, func(ctx context.Context, round uint64, user int, wire []byte) error {
			_, serr := cli.SubmitInto(ctx, round, user, wire)
			return serr
		})
		cancel()
		if n > 0 {
			fmt.Printf("submitted %d message(s) into round %d\n", n, ri.ID)
			if len(published) == 0 || published[len(published)-1] != ri.ID {
				published = append(published, ri.ID)
			}
		}
		user += n
		remaining = remaining[n:]
		if err != nil && !errors.Is(err, atom.ErrRoundClosed) {
			log.Fatalf("atomclient: submitting (after %d accepted): %v", len(msgs)-len(remaining), err)
		}
	}
	return published
}

// fastIngestBatch drives a batch through the daemon's multiplexed
// binary submit path: every message is encrypted for the open round and
// pipelined over one connection, verdicts arrive as async acks, and
// anything rejected because its round sealed mid-flight is retried
// against the successor. Returns every round id the batch landed in.
func fastIngestBatch(ctx context.Context, info *daemon.Info, ac *atom.Client,
	base int, msgs [][]byte, timeout time.Duration) []uint64 {
	if info.SubmitAddr == "" {
		log.Fatal("atomclient: the daemon advertises no fast path (start atomd with -fastpath)")
	}
	fc, err := daemon.DialFast(info.SubmitAddr)
	if err != nil {
		log.Fatalf("atomclient: dialing fast path %s: %v", info.SubmitAddr, err)
	}
	defer fc.Close()

	type item struct {
		user int
		msg  []byte
	}
	pending := make([]item, len(msgs))
	for i, m := range msgs {
		pending[i] = item{base + i, m}
	}
	var published []uint64
	seen := map[uint64]bool{}
	for len(pending) > 0 {
		rctx, cancel := context.WithTimeout(ctx, timeout)
		ri, err := fc.ServeInfo(rctx)
		cancel()
		if err != nil {
			log.Fatalf("atomclient: fetching open round: %v", err)
		}
		errs := make([]error, len(pending))
		rounds := make([]uint64, len(pending))
		var wg sync.WaitGroup
		for i, it := range pending {
			gid := it.user % info.Groups
			wire, err := ac.EncryptSubmission(it.msg, info.EntryKeys[gid], ri.TrusteeKey, gid)
			if err != nil {
				log.Fatalf("atomclient: encrypting for user %d: %v", it.user, err)
			}
			wg.Add(1)
			i := i
			fc.Submit(ri.ID, it.user, wire, func(round uint64, err error) {
				rounds[i], errs[i] = round, err
				wg.Done()
			})
		}
		if err := fc.Flush(); err != nil {
			log.Fatalf("atomclient: fast path flush: %v", err)
		}
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(timeout * time.Duration(len(pending))):
			log.Fatalf("atomclient: fast path acks never arrived for round %d", ri.ID)
		}
		admitted := 0
		var retry []item
		for i, e := range errs {
			switch {
			case e == nil:
				admitted++
				if !seen[rounds[i]] {
					seen[rounds[i]] = true
					published = append(published, rounds[i])
				}
			case errors.Is(e, atom.ErrRoundClosed):
				retry = append(retry, pending[i])
			default:
				log.Fatalf("atomclient: user %d rejected: %v", pending[i].user, e)
			}
		}
		if admitted > 0 {
			fmt.Printf("submitted %d message(s) into round %d over the fast path\n", admitted, ri.ID)
		}
		pending = retry
	}
	return published
}

func printMessages(msgs [][]byte) {
	fmt.Printf("round complete — %d anonymized messages:\n", len(msgs))
	for _, m := range msgs {
		fmt.Printf("  %s\n", m)
	}
}
