// Command atomclient is the user side of an atomd deployment: it
// fetches the round's public keys, performs all cryptography locally
// (padding, onion encryption, proof of plaintext knowledge, and — in
// the trap variant — trap generation and commitment), ships the opaque
// submission, and can trigger and print a round.
//
// Submit a message:
//
//	atomclient -server host:9000 -user 3 -submit "hello world"
//
// Run the round and print the anonymized batch:
//
//	atomclient -server host:9000 -run
package main

import (
	"flag"
	"fmt"
	"log"

	"atom"
	"atom/internal/daemon"
)

func main() {
	var (
		server = flag.String("server", "127.0.0.1:9000", "atomd address")
		user   = flag.Int("user", 0, "user id (picks the entry group: user mod G)")
		submit = flag.String("submit", "", "message to submit")
		run    = flag.Bool("run", false, "trigger the round and print results")
	)
	flag.Parse()
	if *submit == "" && !*run {
		log.Fatal("atomclient: nothing to do (use -submit and/or -run)")
	}

	cli, err := daemon.Dial(*server)
	if err != nil {
		log.Fatalf("atomclient: %v", err)
	}
	defer cli.Close()

	info, err := cli.Info()
	if err != nil {
		log.Fatalf("atomclient: fetching deployment info: %v", err)
	}

	if *submit != "" {
		variant := atom.NIZK
		if info.Trap {
			variant = atom.Trap
		}
		// Only the fields the client-side crypto needs must match the
		// daemon; keys arrive over the wire.
		ac, err := atom.NewClient(atom.Config{
			Servers: 1, Groups: info.Groups, GroupSize: 1,
			MessageSize: info.MessageSize, Variant: variant, Iterations: 1,
		})
		if err != nil {
			log.Fatalf("atomclient: %v", err)
		}
		gid := *user % info.Groups
		wire, err := ac.EncryptSubmission([]byte(*submit), info.EntryKeys[gid], info.TrusteeKey, gid)
		if err != nil {
			log.Fatalf("atomclient: encrypting: %v", err)
		}
		if err := cli.Submit(*user, wire); err != nil {
			log.Fatalf("atomclient: submitting: %v", err)
		}
		fmt.Printf("submitted %d bytes to entry group %d\n", len(wire), gid)
	}

	if *run {
		msgs, err := cli.RunRound()
		if err != nil {
			log.Fatalf("atomclient: round: %v", err)
		}
		fmt.Printf("round complete — %d anonymized messages:\n", len(msgs))
		for _, m := range msgs {
			fmt.Printf("  %s\n", m)
		}
	}
}
