package main

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"atom"
	"atom/internal/daemon"
	"atom/internal/distributed"
	"atom/internal/transport"
)

// runDrain measures the other half of the pipeline that -storm leaves
// out: how fast a sealed round drains. It floods one round with
// -clients pre-encrypted trap submissions over the fast path, lets the
// batch cap seal the round the instant the last admission lands, and
// times seal→publish — the paper's offline/online question: with the
// re-encryption pads banked during admission (-prewarm) or the group
// chains chunk-streamed over the memnet (-drain-memnet -chunk), does
// the sealed batch drain at admission speed?
//
// The trap variant is the honest subject here: its online path is pure
// mixing (shuffle rerandomization + decrypt-and-reencrypt chains, no
// per-step NIZKs), which is exactly the work the pads move offline.
//
// Reported lines (greppable, consumed by scripts/bench.sh):
//
//	drain: <msgs/sec> msgs/sec seal→publish (...)
//	e2e latency: p50 <ms> ms  p99 <ms> ms      (submit→publish per message)
//	pads: size=<n> hits=<n> misses=<n>
func runDrain(clients, conns, workers, prewarm, chunk int, memnet bool, wanMin, wanMax time.Duration, timeout time.Duration) error {
	if clients <= 0 || conns <= 0 {
		return fmt.Errorf("drain needs positive -clients and -conns (got %d, %d)", clients, conns)
	}
	cfg := atom.Config{
		Servers: 12, Groups: 4, GroupSize: 3,
		MessageSize: 32, Variant: atom.Trap, Iterations: 2,
		MixWorkers: workers,
		Seed:       []byte("atomsim-drain"),
	}
	srv, err := daemon.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	var sealedAt time.Time
	srv.Network().SetObserver(&atom.Observer{
		RoundSealed: func(round uint64, ing atom.IngestStats) {
			sealedAt = time.Now()
			fmt.Printf("round %d sealed: %d admitted, %d ciphertexts\n", round, ing.Admitted, ing.SealedBatch)
		},
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	mixer := "in-process"
	opts := atom.ServeOptions{
		RoundInterval: time.Hour, // the batch cap seals, not the clock
		MaxBatch:      clients,
		MaxInFlight:   1,
		Prewarm:       prewarm,
	}
	if memnet {
		net := transport.NewMemNetwork(transport.PairwiseLatency("atomsim-drain", wanMin, wanMax), 256)
		cluster, cerr := distributed.NewCluster(srv.Network().Deployment(), distributed.Options{
			Attach:    distributed.MemAttach(net),
			Workers:   workers,
			ChunkSize: chunk,
		})
		if cerr != nil {
			return cerr
		}
		defer cluster.Close()
		opts.Mixer = cluster
		mixer = fmt.Sprintf("memnet %v–%v chunk %d", wanMin, wanMax, chunk)
	}
	if err := srv.EnableService(ctx, opts); err != nil {
		return err
	}
	go srv.Serve()
	addr, err := srv.EnableFastPath("127.0.0.1:0", daemon.FastPathOptions{})
	if err != nil {
		return err
	}

	fmt.Printf("drain: %d clients over %d conns, trap, mixer %s, prewarm %d\n", clients, conns, mixer, prewarm)

	// The offline phase: bank pads for the expected batch before the
	// window opens — between rounds this time is free (the continuous
	// service tops the bank up after every seal; ServeOptions.Prewarm
	// keeps doing that live). Pads only feed the in-process mixer.
	if prewarm > 0 && !memnet {
		offStart := time.Now()
		if err := srv.Network().Deployment().Prewarm(ctx, prewarm); err != nil {
			return err
		}
		ps := srv.Network().PadStats()
		fmt.Printf("offline: banked %d pads in %v\n", ps.Size, time.Since(offStart).Round(time.Millisecond))
	}

	// Pre-encrypt the whole batch against the open round's trustee key
	// (trap submissions bind to the round), client crypto off the clock.
	gob, err := daemon.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer gob.Close()
	info, err := gob.Info(ctx)
	if err != nil {
		return err
	}
	ri, err := gob.ServeInfo(ctx)
	if err != nil {
		return err
	}
	enc, err := atom.NewClient(atom.Config{
		Servers: 1, Groups: info.Groups, GroupSize: 1,
		MessageSize: info.MessageSize, Variant: atom.Trap, Iterations: 1,
	})
	if err != nil {
		return err
	}
	pregenStart := time.Now()
	wires := make([][]byte, clients)
	for i := range wires {
		gid := i % info.Groups
		msg := fmt.Appendf(nil, "drain %07d", i)
		if wires[i], err = enc.EncryptSubmission(msg, info.EntryKeys[gid], ri.TrusteeKey, gid); err != nil {
			return fmt.Errorf("pre-encrypting submission %d: %w", i, err)
		}
	}
	fmt.Printf("pregen: %d trap submissions in %v\n", clients, time.Since(pregenStart).Round(10*time.Millisecond))

	fasts := make([]*daemon.FastClient, conns)
	for c := range fasts {
		if fasts[c], err = daemon.DialFast(addr); err != nil {
			return err
		}
		defer fasts[c].Close()
	}

	// Flood: the last admission trips the batch cap and seals the round,
	// so admission speed sets the drain's starting line.
	var (
		sendTime = make([]time.Time, clients)
		subErr   = make([]error, clients)
		acks     sync.WaitGroup
	)
	acks.Add(clients)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < conns; c++ {
		wg.Add(1)
		go func(c int, fc *daemon.FastClient) {
			defer wg.Done()
			for i := c; i < clients; i += conns {
				i := i
				sendTime[i] = time.Now()
				fc.Submit(ri.ID, i, wires[i], func(_ uint64, err error) {
					subErr[i] = err
					acks.Done()
				})
			}
			_ = fc.Flush()
		}(c, fasts[c])
	}
	wg.Wait()
	acked := make(chan struct{})
	go func() { acks.Wait(); close(acked) }()
	select {
	case <-acked:
	case <-time.After(timeout):
		return fmt.Errorf("drain timed out: not all %d submissions acked within %v", clients, timeout)
	}
	admitTime := time.Since(start)

	rejected := 0
	var firstErr error
	for i, e := range subErr {
		if e != nil {
			rejected++
			if firstErr == nil {
				firstErr = fmt.Errorf("submission %d: %w", i, e)
			}
		}
	}
	if rejected > 0 {
		fmt.Printf("WARNING: %d submissions rejected (first: %v)\n", rejected, firstErr)
	}
	fmt.Printf("admitted: %d of %d in %v (%.1f msgs/sec admission)\n",
		clients-rejected, clients, admitTime.Round(time.Millisecond), float64(clients-rejected)/admitTime.Seconds())

	// The sealed round is mixing; wait for publication.
	wctx, wcancel := context.WithTimeout(ctx, timeout)
	defer wcancel()
	out, err := srv.Service().WaitRound(wctx, ri.ID)
	if err != nil {
		return fmt.Errorf("awaiting round %d: %w", ri.ID, err)
	}
	if out.Err != nil {
		return fmt.Errorf("round %d failed: %w", ri.ID, out.Err)
	}
	published := time.Now()

	// Submit→publish latency per message: every admitted submission
	// publishes at the same instant, so the spread is admission order.
	e2e := make([]time.Duration, 0, clients)
	for i := range sendTime {
		if subErr[i] == nil {
			e2e = append(e2e, published.Sub(sendTime[i]))
		}
	}
	sort.Slice(e2e, func(a, b int) bool { return e2e[a] < e2e[b] })

	drain := out.Stats.Drain
	if drain <= 0 && !sealedAt.IsZero() {
		drain = published.Sub(sealedAt)
	}
	fmt.Printf("drain: %.1f msgs/sec seal→publish (%d msgs drained in %v, mixing %v)\n",
		float64(out.Stats.Messages)/drain.Seconds(), out.Stats.Messages,
		drain.Round(time.Millisecond), out.Stats.Duration.Round(time.Millisecond))
	if len(e2e) > 0 {
		fmt.Printf("e2e latency: p50 %.1f ms  p99 %.1f ms\n",
			float64(e2e[len(e2e)/2].Microseconds())/1e3, float64(e2e[len(e2e)*99/100].Microseconds())/1e3)
	}
	ps := srv.Network().PadStats()
	fmt.Printf("pads: size=%d hits=%d misses=%d\n", ps.Size, ps.Hits, ps.Misses)

	cancel() // skip the graceful final rotation on the way out
	if out.Stats.Messages == 0 {
		return fmt.Errorf("drain published no messages")
	}
	return nil
}
