package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"time"

	"atom"
	"atom/internal/beacon"
	"atom/internal/dkg"
	"atom/internal/dvss"
	"atom/internal/store"
)

// demoWindow is the per-phase DKG message window the demo's ceremonies
// run under; honest phases early-advance, so it only bounds the
// straggler wait.
const demoWindow = 200 * time.Millisecond

// runDKGDemo is the trust-complete setup smoke (CI runs it
// race-instrumented). It walks the whole no-trusted-dealer story and
// fails loudly on any drift:
//
//  1. a joint-Feldman beacon-committee ceremony — with -churn N, N
//     members crash mid-deal and the survivors must still finish with
//     the crash attributed (ErrWithheld) and the dead dealers out of
//     QUAL;
//  2. a chained threshold-VRF beacon produced by that churn-survived
//     committee, every round verified on append;
//  3. a full network built by NewNetworkDKG — per-group ceremonies,
//     group formation sampled from beacon round 1 — mixing a round with
//     plaintext parity;
//  4. a resharing epoch: one operator rotates out, a fresh one in, the
//     group public key provably unchanged, and the next round mixes;
//  5. a persistence round-trip: trust transcript and chain journal into
//     a store, a "restarted" network restores and produces the
//     IDENTICAL next round — the restart cannot fork the beacon;
//  6. a laggard observer syncing a fresh chain from the producer's
//     records through full verification.
func runDKGDemo(churn, workers int) error {
	// Stage 1: the beacon committee's ceremony, under churn. Committee
	// of 5 with threshold 3 leaves two spare seats.
	const committee, cThreshold = 5, 3
	if churn > committee-cThreshold {
		return fmt.Errorf("churn %d exceeds the committee's %d spare seats", churn, committee-cThreshold)
	}
	hooks := make(map[int]*dkg.Hooks, churn)
	for i := 0; i < churn; i++ {
		// Crash after the second of four deal sends: some receivers hold
		// the deal, some don't — the worst case for vote agreement.
		hooks[cThreshold+i] = &dkg.Hooks{DieAfterDeals: 2}
	}
	fmt.Printf("trust-complete setup: committee of %d (threshold %d), %d crashing mid-deal\n",
		committee, cThreshold, churn)
	seats, err := dkg.Ceremony(context.Background(), committee, cThreshold, dkg.Opts{
		Window: demoWindow,
		Hooks:  hooks,
	})
	if err != nil {
		return fmt.Errorf("committee ceremony: %w", err)
	}
	keys := make([]*dvss.GroupKey, committee)
	for _, seat := range seats {
		if hooks[seat.Index] != nil {
			if !errors.Is(seat.Err, dkg.ErrDKG) {
				return fmt.Errorf("crashed member %d returned %v, want a dkg error", seat.Index, seat.Err)
			}
			continue
		}
		if seat.Err != nil {
			return fmt.Errorf("honest member %d failed: %w", seat.Index, seat.Err)
		}
		keys[seat.Index-1] = seat.Result.Key
	}
	var ref *dkg.Result
	for _, seat := range seats {
		if hooks[seat.Index] != nil {
			continue
		}
		if ref == nil {
			ref = seat.Result
		}
		if !seat.Result.Key.PK.Equal(ref.Key.PK) {
			return fmt.Errorf("honest members disagree on the committee public key")
		}
	}
	if want := committee - churn; len(ref.QUAL) != want {
		return fmt.Errorf("QUAL = %v, want %d qualified dealers", ref.QUAL, want)
	}
	if len(ref.Faults) != churn {
		return fmt.Errorf("faults = %v, want %d attributed crashes", ref.Faults, churn)
	}
	for _, f := range ref.Faults {
		if f.Role != dkg.RoleDealer || hooks[f.Index] == nil || !errors.Is(f.Err, dkg.ErrWithheld) {
			return fmt.Errorf("fault %v does not attribute a crashed dealer as withheld", f)
		}
	}
	fmt.Printf("  committee key established: QUAL %v, faults %v\n", ref.QUAL, ref.Faults)

	// Stage 2: the churn-survived committee produces a verified chain.
	chain, err := beacon.NewChain(beacon.InfoFromKey(ref.Key, []byte("atomsim-dkg-demo")))
	if err != nil {
		return err
	}
	for i := 0; i < 3; i++ {
		if err := demoTick(chain, keys); err != nil {
			return fmt.Errorf("beacon round %d: %w", i+1, err)
		}
	}
	head, out := chain.Head()
	fmt.Printf("  committee beacon at round %d, output %x…\n", head, out[:8])

	// Stage 3: the full network — per-group ceremonies, formation from a
	// produced beacon round — mixes with plaintext parity.
	cfg := atom.Config{
		Servers: 12, Groups: 4, GroupSize: 3,
		MessageSize: 64, Variant: atom.NIZK, Iterations: 3,
		MixWorkers: workers,
		Seed:       []byte("atomsim-dkg"),
	}
	n, err := atom.NewNetworkDKG(cfg, demoWindow)
	if err != nil {
		return fmt.Errorf("NewNetworkDKG: %w", err)
	}
	const msgs = 8
	want := make(map[string]bool, msgs)
	submit := func(n *atom.Network, tag string) error {
		for u := 0; u < msgs; u++ {
			m := fmt.Sprintf("dealerless %s %02d", tag, u)
			want[m] = true
			if err := n.SubmitMessage(u, []byte(m)); err != nil {
				return err
			}
		}
		return nil
	}
	parity := func(res *atom.Result) error {
		if len(res.Messages) != msgs {
			return fmt.Errorf("round %d mixed %d messages, want %d", res.Stats.Round, len(res.Messages), msgs)
		}
		for _, m := range res.Messages {
			if !want[string(bytes.TrimRight(m, "\x00"))] {
				return fmt.Errorf("round %d emitted unexpected plaintext %q", res.Stats.Round, m)
			}
		}
		return nil
	}
	if err := submit(n, "r1"); err != nil {
		return err
	}
	res, err := n.Run()
	if err != nil {
		return fmt.Errorf("first dealerless round: %w", err)
	}
	if err := parity(res); err != nil {
		return err
	}
	fmt.Printf("  network round %d mixed %d messages with no trusted dealer anywhere\n", res.Stats.Round, len(res.Messages))

	// Stage 4: a resharing epoch is invisible to users — same entry
	// keys, rotated operator.
	pkBefore, err := n.EntryKey(0)
	if err != nil {
		return err
	}
	if err := n.ReshareGroup(0, 1, 99); err != nil {
		return fmt.Errorf("resharing epoch: %w", err)
	}
	pkAfter, err := n.EntryKey(0)
	if err != nil {
		return err
	}
	if !bytes.Equal(pkBefore, pkAfter) {
		return fmt.Errorf("resharing changed group 0's public key")
	}
	if members := n.Deployment().GroupMembers(0); members[1] != 99 {
		return fmt.Errorf("resharing did not seat the replacement: roster %v", members)
	}
	if err := submit(n, "r2"); err != nil {
		return err
	}
	if res, err = n.Run(); err != nil {
		return fmt.Errorf("post-epoch round: %w", err)
	}
	if err := parity(res); err != nil {
		return err
	}
	fmt.Printf("  resharing epoch rotated an operator; group key unchanged, round %d still mixed\n", res.Stats.Round)

	// Stage 5: persistence round-trip. The restored network must RESUME
	// the chain — identical next round — not fork it.
	dir, err := os.MkdirTemp("", "atomsim-dkg-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return err
	}
	if err := n.PersistTrust(st); err != nil {
		return fmt.Errorf("persisting trust: %w", err)
	}
	if err := st.PutDeployment(n.MarshalState()); err != nil {
		return err
	}
	if _, err := n.BeaconTick(); err != nil {
		return err
	}
	if err := st.Close(); err != nil {
		return err
	}
	st2, err := store.Open(dir)
	if err != nil {
		return err
	}
	defer st2.Close()
	state := st2.State()
	n2, err := atom.RestoreNetwork(cfg, state.Deployment, state.MaxRound())
	if err != nil {
		return fmt.Errorf("restoring network: %w", err)
	}
	if err := n2.RestoreTrust(st2); err != nil {
		return fmt.Errorf("restoring trust: %w", err)
	}
	h1, o1 := n.BeaconChain().Head()
	h2, o2 := n2.BeaconChain().Head()
	if h1 != h2 || !bytes.Equal(o1, o2) {
		return fmt.Errorf("restored chain head (%d, %x) != original (%d, %x)", h2, o2, h1, o1)
	}
	if _, err := n.BeaconTick(); err != nil {
		return err
	}
	if _, err := n2.BeaconTick(); err != nil {
		return err
	}
	_, o1 = n.BeaconChain().Head()
	_, o2 = n2.BeaconChain().Head()
	if !bytes.Equal(o1, o2) {
		return fmt.Errorf("restarted beacon forked from the original chain")
	}
	fmt.Printf("  restart resumed the chain at round %d without forking (deterministic partials)\n", h2+1)

	// Stage 6: a laggard observer catches up through full verification.
	src := n.BeaconChain()
	laggard, err := beacon.NewChain(src.Info())
	if err != nil {
		return err
	}
	target, _ := src.Head()
	if err := laggard.SyncFrom(func(after uint64) ([]*beacon.Round, error) {
		return src.Records(after), nil
	}, target); err != nil {
		return fmt.Errorf("laggard catchup: %w", err)
	}
	lh, lo := laggard.Head()
	sh, so := src.Head()
	if lh != sh || !bytes.Equal(lo, so) {
		return fmt.Errorf("laggard head (%d, %x) != source (%d, %x)", lh, lo, sh, so)
	}
	fmt.Printf("  laggard verified and caught up to round %d\n", lh)
	fmt.Println("trust-complete setup smoke PASSED")
	return nil
}

// demoTick signs, aggregates and appends the chain's next round from
// the first Threshold surviving committee shares — the in-process
// stand-in for committee members exchanging partials over a transport.
func demoTick(chain *beacon.Chain, keys []*dvss.GroupKey) error {
	ci := chain.Info()
	head, prev := chain.Head()
	partials := make([]*beacon.Partial, 0, ci.Threshold)
	for _, k := range keys {
		if k == nil {
			continue
		}
		p, err := ci.SignPartial(k.Index, k.Share, head+1, prev)
		if err != nil {
			return err
		}
		if partials = append(partials, p); len(partials) == ci.Threshold {
			break
		}
	}
	r, err := ci.Aggregate(head+1, prev, partials)
	if err != nil {
		return err
	}
	return chain.Append(r)
}
