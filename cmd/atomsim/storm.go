package main

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"atom"
	"atom/internal/daemon"
)

// runStorm is the ingestion load generator: it simulates `clients`
// logical clients multiplexed over a handful of fast-path connections,
// pre-encrypts every submission before the measurement window opens
// (client-side crypto off the measured path), then drives the daemon's
// binary submit pipeline and reports sustained admission throughput
// plus p50/p99 admit latency.
//
// The service runs with an hour-long round interval and no batch cap,
// so the open round never seals mid-window: the measurement isolates
// the ingestion frontend — framing, multiplexing, batched proof
// verification, duplicate detection — from mixing.
//
// rate > 0 shapes arrivals to that aggregate msgs/sec target using the
// chosen process (uniform, poisson, flash); rate 0 floods: every client
// submits as fast as the pipeline accepts, the closed-loop maximum.
func runStorm(clients, conns int, rate float64, arrival string, timeout time.Duration, workers int) error {
	if clients <= 0 || conns <= 0 {
		return fmt.Errorf("storm needs positive -clients and -conns (got %d, %d)", clients, conns)
	}
	offs, err := arrivalOffsets(clients, rate, arrival)
	if err != nil {
		return err
	}

	cfg := atom.Config{
		Servers: 12, Groups: 4, GroupSize: 3,
		MessageSize: 32, Variant: atom.NIZK, Iterations: 2,
		MixWorkers: workers,
		Seed:       []byte("atomsim-storm"),
	}
	srv, err := daemon.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	// Admission-plane stats through the public Observer surface.
	var (
		batchMu     sync.Mutex
		batches     int
		batchSubs   int
		batchVerify time.Duration
		batchMax    int
	)
	srv.Network().SetObserver(&atom.Observer{
		AdmissionBatch: func(_ uint64, st atom.AdmitBatchStats) {
			batchMu.Lock()
			batches++
			batchSubs += st.Size
			batchVerify += st.VerifyTime
			if st.Size > batchMax {
				batchMax = st.Size
			}
			batchMu.Unlock()
		},
	})

	// Cancel the service context before Close: the final graceful
	// rotation would otherwise seal the storm's round and mix its tens
	// of thousands of messages on the way out.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := srv.EnableService(ctx, atom.ServeOptions{
		RoundInterval: time.Hour, // never seal mid-window
		MaxInFlight:   1,
	}); err != nil {
		return err
	}
	go srv.Serve()
	addr, err := srv.EnableFastPath("127.0.0.1:0", daemon.FastPathOptions{})
	if err != nil {
		return err
	}

	shape := arrival
	if rate <= 0 {
		shape = "flood"
	}
	fmt.Printf("storm: %d logical clients over %d conns, nizk, arrival %s", clients, conns, shape)
	if rate > 0 {
		fmt.Printf(" (%.0f msgs/sec target)", rate)
	}
	fmt.Println()

	// Pre-encrypt the whole pool: one distinct submission per client.
	gob, err := daemon.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer gob.Close()
	info, err := gob.Info(ctx)
	if err != nil {
		return err
	}
	enc, err := atom.NewClient(atom.Config{
		Servers: 1, Groups: info.Groups, GroupSize: 1,
		MessageSize: info.MessageSize, Variant: atom.NIZK, Iterations: 1,
	})
	if err != nil {
		return err
	}
	pregenStart := time.Now()
	wires := make([][]byte, clients)
	for i := range wires {
		gid := i % info.Groups
		msg := fmt.Appendf(nil, "storm %07d", i)
		if wires[i], err = enc.EncryptSubmission(msg, info.EntryKeys[gid], nil, gid); err != nil {
			return fmt.Errorf("pre-encrypting submission %d: %w", i, err)
		}
	}
	pregen := time.Since(pregenStart)
	fmt.Printf("pregen: %d encrypted submissions in %v (%.2f ms each)\n",
		clients, pregen.Round(10*time.Millisecond), pregen.Seconds()*1e3/float64(clients))

	// Partition the event stream (sorted by arrival time) round-robin
	// across the connections.
	order := make([]int, clients)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return offs[order[a]] < offs[order[b]] })
	parts := make([][]int, conns)
	for k, i := range order {
		parts[k%conns] = append(parts[k%conns], i)
	}
	fasts := make([]*daemon.FastClient, conns)
	for c := range fasts {
		if fasts[c], err = daemon.DialFast(addr); err != nil {
			return err
		}
		defer fasts[c].Close()
	}

	var (
		sendTime = make([]time.Time, clients)
		lat      = make([]time.Duration, clients)
		subErr   = make([]error, clients)
		acks     sync.WaitGroup
	)
	acks.Add(clients)
	start := time.Now()
	for c, part := range parts {
		go func(fc *daemon.FastClient, idx []int) {
			for _, i := range idx {
				if d := time.Until(start.Add(offs[i])); d > 0 {
					time.Sleep(d)
				}
				i := i
				sendTime[i] = time.Now()
				fc.Submit(0, i, wires[i], func(_ uint64, err error) {
					lat[i] = time.Since(sendTime[i])
					subErr[i] = err
					acks.Done()
				})
			}
			_ = fc.Flush()
		}(fasts[c], part)
	}
	done := make(chan struct{})
	go func() { acks.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(timeout):
		return fmt.Errorf("storm timed out: not all %d submissions acked within %v", clients, timeout)
	}
	elapsed := time.Since(start)

	admitted, rejected := 0, 0
	admitLat := make([]time.Duration, 0, clients)
	var firstErr error
	for i := range subErr {
		if subErr[i] != nil {
			rejected++
			if firstErr == nil {
				firstErr = fmt.Errorf("submission %d: %w", i, subErr[i])
			}
			continue
		}
		admitted++
		admitLat = append(admitLat, lat[i])
	}
	if rejected > 0 {
		fmt.Printf("WARNING: %d submissions rejected (first: %v)\n", rejected, firstErr)
	}
	batchMu.Lock()
	if batches > 0 {
		fmt.Printf("admission: %d batches, mean %.1f subs/batch (max %d), verify %v total\n",
			batches, float64(batchSubs)/float64(batches), batchMax, batchVerify.Round(time.Millisecond))
	}
	batchMu.Unlock()
	sort.Slice(admitLat, func(a, b int) bool { return admitLat[a] < admitLat[b] })
	if len(admitLat) > 0 {
		p50 := admitLat[len(admitLat)/2]
		p99 := admitLat[len(admitLat)*99/100]
		fmt.Printf("admit latency: p50 %.1f ms  p99 %.1f ms\n",
			float64(p50.Microseconds())/1e3, float64(p99.Microseconds())/1e3)
	}
	fmt.Printf("sustained: %.1f msgs/sec (%d admitted, %d rejected in %v)\n",
		float64(admitted)/elapsed.Seconds(), admitted, rejected, elapsed.Round(time.Millisecond))

	cancel() // hard-stop the service: skip the graceful final seal+mix
	if admitted == 0 {
		return fmt.Errorf("storm admitted nothing")
	}
	return nil
}

// arrivalOffsets builds each client's submission time offset from the
// window start. rate <= 0 means flood (all zero). The generator is
// deterministically seeded so runs are comparable.
func arrivalOffsets(n int, rate float64, mode string) ([]time.Duration, error) {
	switch mode {
	case "uniform", "poisson", "flash":
	default:
		return nil, fmt.Errorf("unknown arrival process %q (want uniform, poisson, or flash)", mode)
	}
	offs := make([]time.Duration, n)
	if rate <= 0 {
		return offs, nil
	}
	rng := rand.New(rand.NewSource(7))
	switch mode {
	case "uniform":
		for i := range offs {
			offs[i] = time.Duration(float64(i) / rate * float64(time.Second))
		}
	case "poisson":
		var t float64
		for i := range offs {
			t += rng.ExpFloat64() / rate
			offs[i] = time.Duration(t * float64(time.Second))
		}
	case "flash":
		// A flash crowd: 70% of clients trickle at the target rate,
		// the other 30% all pile in at the window's midpoint.
		base := n * 7 / 10
		for i := 0; i < base; i++ {
			offs[i] = time.Duration(float64(i) / rate * float64(time.Second))
		}
		mid := time.Duration(float64(base) / rate / 2 * float64(time.Second))
		for i := base; i < n; i++ {
			offs[i] = mid
		}
	}
	return offs, nil
}
