// Command atomsim regenerates the tables and figures of the paper's
// evaluation section (§6): Tables 3, 4, 12 and Figures 5, 6, 7, 9, 10,
// 11, 13.
//
//	atomsim -all               # everything, cost model measured locally
//	atomsim -fig 9             # one figure
//	atomsim -table 12 -paper   # one table, using published Table 3 costs
//	atomsim -live              # run a real round, per-iteration stats
//
// -live executes a real in-process deployment (real cryptography) and
// reports per-iteration latency, messages mixed and proofs verified
// through the public Observer/RoundStats hooks.
package main

import (
	"flag"
	"fmt"
	"log"

	"atom"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (5, 6, 7, 9, 10, 11, 13)")
		table    = flag.Int("table", 0, "table to regenerate (3, 4, 12)")
		all      = flag.Bool("all", false, "regenerate everything")
		paper    = flag.Bool("paper", false, "use the paper's published primitive costs instead of measuring this machine")
		live     = flag.Bool("live", false, "run a real round and print per-iteration Observer stats")
		liveMsgs = flag.Int("livemsgs", 16, "messages to mix in -live mode")
		liveNIZK = flag.Bool("livenizk", false, "use the NIZK variant in -live mode (default trap)")
		workers  = flag.Int("workers", 0, "parallel mixing engine: worker goroutines per group in -live mode (0 = CPUs/groups)")
	)
	flag.Parse()
	if !*all && *fig == 0 && *table == 0 && !*live {
		*all = true
	}

	// -live measures a real round directly; skip cost-model calibration.
	ev, err := atom.NewEvaluation(!*paper && !*live)
	if err != nil {
		log.Fatalf("atomsim: calibrating: %v", err)
	}
	emit := func(s string, err error) {
		if err != nil {
			log.Fatalf("atomsim: %v", err)
		}
		fmt.Println(s)
	}

	if *live {
		variant := atom.Trap
		if *liveNIZK {
			variant = atom.NIZK
		}
		out, _, err := ev.LiveRound(atom.Config{
			Servers: 12, Groups: 4, GroupSize: 3,
			MessageSize: 64, Variant: variant, Iterations: 3,
			MixWorkers: *workers,
			Seed:       []byte("atomsim-live"),
		}, *liveMsgs)
		emit(out, err)
		return
	}

	if *all {
		emit(ev.All())
		return
	}
	switch *table {
	case 0:
	case 3:
		emit(ev.Table3(), nil)
	case 4:
		emit(ev.Table4())
	case 12:
		emit(ev.Table12())
	default:
		log.Fatalf("atomsim: no table %d (have 3, 4, 12)", *table)
	}
	switch *fig {
	case 0:
	case 5:
		emit(ev.Figure5(), nil)
	case 6:
		emit(ev.Figure6(), nil)
	case 7:
		emit(ev.Figure7(), nil)
	case 9:
		emit(ev.Figure9())
	case 10:
		emit(ev.Figure10())
	case 11:
		emit(ev.Figure11())
	case 13:
		emit(ev.Figure13())
	default:
		log.Fatalf("atomsim: no figure %d (have 5, 6, 7, 9, 10, 11, 13)", *fig)
	}
}
