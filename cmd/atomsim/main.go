// Command atomsim regenerates the tables and figures of the paper's
// evaluation section (§6): Tables 3, 4, 12 and Figures 5, 6, 7, 9, 10,
// 11, 13.
//
//	atomsim -all               # everything, cost model measured locally
//	atomsim -fig 9             # one figure
//	atomsim -table 12 -paper   # one table, using published Table 3 costs
//	atomsim -live              # run a real round, per-iteration stats
//	atomsim -distributed       # full round as actors over the WAN-latency memnet
//	atomsim -distributed -churn 1   # kill a member mid-round: degraded completion
//	atomsim -distributed -churn 2   # exceed the budget: ErrMemberLost → wire recovery
//	atomsim -serve -rounds 3        # continuous service: back-to-back pipelined rounds
//	atomsim -crash                  # crash-restart smoke: SIGKILL a member mid-round, resume from its state dir
//	atomsim -storm -clients 10000 -conns 4   # ingestion load test over the binary fast path
//	atomsim -storm -drain -prewarm 65536     # drain benchmark: seal→publish for one full round, pads banked while it fills
//	atomsim -storm -drain -drain-memnet -chunk 256   # same, mixed over the memnet cluster with chunk-streamed chains
//	atomsim -dkg -churn 1           # trust-complete setup smoke: DKG under churn, verifiable beacon, resharing, persistence
//
// -storm measures the ingestion frontend in isolation: it pre-encrypts
// one submission per logical client, multiplexes the whole fleet over a
// few fast-path TCP connections (-conns), shapes arrivals with -rate
// and -arrival (uniform, poisson, or flash crowd; rate 0 floods), and
// reports the sustained admission throughput with p50/p99 admit
// latency. The round never seals during the window, so the number is
// pure ingestion — framing, batched proof verification, duplicate
// detection — with mixing out of the picture.
//
// -serve runs the continuous pipeline end to end: a daemon hosts the
// deployment with its ingestion frontend enabled, the mixing runs as
// distributed actors over the latency-modeled in-memory network with
// cross-round pipelining (round r+1 enters layer 0 while round r
// traverses later layers), and a synthetic client fleet submits
// wire-encoded batches over TCP, driving -rounds back-to-back rounds.
// The report gives per-round latency, the observed cross-round overlap,
// and the sustained throughput (msgs/sec, rounds/min).
//
// -live executes a real in-process deployment (real cryptography) and
// reports per-iteration latency, messages mixed and proofs verified
// through the public Observer/RoundStats hooks.
//
// -distributed executes the same round as the distributed engine: every
// group member is an independent actor exchanging framed messages over
// the in-memory network with the paper's emulated 40–160 ms pairwise
// WAN latency (§6), and the report adds per-member transport traffic.
//
// -churn N (with -distributed) injects failures: after the first mixing
// iteration completes, N members of group 0 are killed. The deployment
// then uses many-trust groups (k=3, h=2, one buddy group each), so one
// loss is re-planned around mid-round and the round still delivers,
// while two losses exhaust the budget — the round fails with the typed
// member-lost error, §4.5 buddy-group recovery runs over the wire, and
// a follow-up round delivers cleanly.
//
// -crash is the durable-state smoke test (CI runs it race-instrumented):
// one group member is hosted as a remote atomd-style actor over real TCP
// loopback with a -state-dir store, the cluster runs with RestartGrace
// set, and after the first mixing iteration the member's endpoint is
// torn down with no shutdown protocol — a SIGKILL stand-in. A "new
// process" then reopens the state dir (journal replay), rebinds the same
// address, and resumes the persisted identity. The run fails unless the
// round completes with full plaintext parity AND the cluster's churn
// counters show exactly a rejoin: zero re-plans, zero buddy recoveries,
// zero shares solicited.
//
// -dkg is the trust-complete setup smoke (CI runs it race-instrumented,
// with and without -churn): a joint-Feldman committee ceremony that
// must survive -churn members crashing mid-deal with the crashes
// attributed, a chained threshold-VRF beacon, a full dealerless network
// round (NewNetworkDKG), a resharing epoch that provably preserves the
// group public key, a store persistence round-trip that must resume the
// chain without forking, and a laggard catchup through full
// verification. Any drift fails the run.
package main

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"atom"
	"atom/internal/daemon"
	"atom/internal/distributed"
	"atom/internal/protocol"
	"atom/internal/store"
	"atom/internal/transport"
)

func main() {
	var (
		fig      = flag.Int("fig", 0, "figure to regenerate (5, 6, 7, 9, 10, 11, 13)")
		table    = flag.Int("table", 0, "table to regenerate (3, 4, 12)")
		all      = flag.Bool("all", false, "regenerate everything")
		paper    = flag.Bool("paper", false, "use the paper's published primitive costs instead of measuring this machine")
		live     = flag.Bool("live", false, "run a real round and print per-iteration Observer stats")
		liveMsgs = flag.Int("livemsgs", 16, "messages to mix in -live/-distributed mode (per round in -serve mode)")
		liveNIZK = flag.Bool("livenizk", false, "use the NIZK variant in -live/-distributed/-serve mode (default trap)")
		workers  = flag.Int("workers", 0, "parallel mixing engine: worker goroutines per group (0 = CPUs/groups)")
		dist     = flag.Bool("distributed", false, "run a real round as message-passing actors over the latency-modeled in-memory network")
		wanMin   = flag.Duration("wanmin", 40*time.Millisecond, "-distributed: minimum pairwise one-way latency")
		wanMax   = flag.Duration("wanmax", 160*time.Millisecond, "-distributed: maximum pairwise one-way latency")
		churn    = flag.Int("churn", 0, "-distributed: kill this many members of group 0 after the first iteration (1 = degraded completion, 2 = member-lost + wire recovery)")
		serve    = flag.Bool("serve", false, "run the continuous service: a client fleet drives back-to-back pipelined rounds over the distributed cluster")
		dkgDemo  = flag.Bool("dkg", false, "trust-complete setup smoke: committee DKG under -churn, chained beacon, dealerless network round, resharing epoch, persistence round-trip, laggard catchup")
		crash    = flag.Bool("crash", false, "crash-restart smoke: hard-kill a TCP-hosted member mid-round, restart it from its state dir, assert rejoin without re-plan or recovery")
		storm    = flag.Bool("storm", false, "ingestion load test: a huge multiplexed client fleet floods the binary submit path; reports sustained msgs/sec and p50/p99 admit latency")
		clients  = flag.Int("clients", 10000, "-storm: logical clients (one pre-encrypted submission each)")
		conns    = flag.Int("conns", 4, "-storm: TCP connections the fleet multiplexes over")
		rate     = flag.Float64("rate", 0, "-storm: aggregate arrival rate in msgs/sec (0 = flood: closed-loop maximum)")
		arrival  = flag.String("arrival", "uniform", "-storm: arrival process: uniform, poisson, or flash")
		stormTO  = flag.Duration("timeout", 5*time.Minute, "-storm: hard deadline for all submissions to be acked")
		drain    = flag.Bool("drain", false, "-storm: drain benchmark — flood one round, seal at the batch cap, report seal→publish msgs/sec and submit→publish e2e latency (trap variant)")
		drainNet = flag.Bool("drain-memnet", false, "-storm -drain: mix the sealed round over the WAN-latency memnet cluster (chunk streaming applies) instead of in-process")
		chunkSz  = flag.Int("chunk", 0, "-serve/-distributed/-drain-memnet: stream each re-encryption chain in chunks of at most this many vectors per destination batch (0 = whole batches)")
		prewarm  = flag.Int("prewarm", 0, "-storm -drain: cap of precomputed re-encryption pads (vectors) banked while the round fills (0 = off; in-process mixer only)")
		rounds   = flag.Int("rounds", 3, "-serve: how many back-to-back rounds the fleet drives")
		inflight = flag.Int("inflight", 2, "-serve: rounds mixing concurrently")
		interval = flag.Duration("interval", 2*time.Second, "-serve: round scheduler's seal deadline (the fleet's full batches normally seal first)")
		pprof    = flag.String("pprof", "", "serve net/http/pprof at this address under /debug/pprof/ (empty = off)")
	)
	flag.Parse()
	if *pprof != "" {
		go func() {
			if err := daemon.ServeDebug(*pprof, nil, true); err != nil {
				log.Printf("atomsim: pprof listener: %v", err)
			}
		}()
		log.Printf("atomsim: pprof on %s/debug/pprof/", *pprof)
	}
	if !*all && *fig == 0 && *table == 0 && !*live && !*dist && !*serve && !*crash && !*storm && !*dkgDemo {
		*all = true
	}

	if *dkgDemo {
		if err := runDKGDemo(*churn, *workers); err != nil {
			log.Fatalf("atomsim: trust-complete setup smoke FAILED: %v", err)
		}
		return
	}

	if *storm {
		if *drain {
			if err := runDrain(*clients, *conns, *workers, *prewarm, *chunkSz, *drainNet, *wanMin, *wanMax, *stormTO); err != nil {
				log.Fatalf("atomsim: drain: %v", err)
			}
			return
		}
		if err := runStorm(*clients, *conns, *rate, *arrival, *stormTO, *workers); err != nil {
			log.Fatalf("atomsim: storm: %v", err)
		}
		return
	}

	if *crash {
		if err := runCrash(*liveMsgs, *workers); err != nil {
			log.Fatalf("atomsim: crash-restart smoke FAILED: %v", err)
		}
		return
	}

	if *serve {
		if err := runServe(*rounds, *liveMsgs, *liveNIZK, *workers, *inflight, *chunkSz, *interval, *wanMin, *wanMax); err != nil {
			log.Fatalf("atomsim: %v", err)
		}
		return
	}

	if *dist {
		if err := runDistributed(*liveMsgs, *liveNIZK, *workers, *chunkSz, *wanMin, *wanMax, *churn); err != nil {
			log.Fatalf("atomsim: %v", err)
		}
		return
	}

	// -live measures a real round directly; skip cost-model calibration.
	ev, err := atom.NewEvaluation(!*paper && !*live)
	if err != nil {
		log.Fatalf("atomsim: calibrating: %v", err)
	}
	emit := func(s string, err error) {
		if err != nil {
			log.Fatalf("atomsim: %v", err)
		}
		fmt.Println(s)
	}

	if *live {
		variant := atom.Trap
		if *liveNIZK {
			variant = atom.NIZK
		}
		out, _, err := ev.LiveRound(atom.Config{
			Servers: 12, Groups: 4, GroupSize: 3,
			MessageSize: 64, Variant: variant, Iterations: 3,
			MixWorkers: *workers,
			Seed:       []byte("atomsim-live"),
		}, *liveMsgs)
		emit(out, err)
		return
	}

	if *all {
		emit(ev.All())
		return
	}
	switch *table {
	case 0:
	case 3:
		emit(ev.Table3(), nil)
	case 4:
		emit(ev.Table4())
	case 12:
		emit(ev.Table12())
	default:
		log.Fatalf("atomsim: no table %d (have 3, 4, 12)", *table)
	}
	switch *fig {
	case 0:
	case 5:
		emit(ev.Figure5(), nil)
	case 6:
		emit(ev.Figure6(), nil)
	case 7:
		emit(ev.Figure7(), nil)
	case 9:
		emit(ev.Figure9())
	case 10:
		emit(ev.Figure10())
	case 11:
		emit(ev.Figure11())
	case 13:
		emit(ev.Figure13())
	default:
		log.Fatalf("atomsim: no figure %d (have 5, 6, 7, 9, 10, 11, 13)", *fig)
	}
}

// submitDistributed opens a round and fills it with msgs distinct
// messages, returning the round.
func submitDistributed(d *protocol.Deployment, client *protocol.Client, variant protocol.Variant, msgs int) (*protocol.RoundState, error) {
	rs, err := d.OpenRound()
	if err != nil {
		return nil, err
	}
	for u := 0; u < msgs; u++ {
		gid := u % d.NumGroups()
		gpk, err := d.GroupPK(gid)
		if err != nil {
			return nil, err
		}
		msg := []byte(fmt.Sprintf("distributed hello %02d", u))
		switch variant {
		case protocol.VariantNIZK:
			sub, err := client.Submit(msg, gpk, gid, rand.Reader)
			if err != nil {
				return nil, err
			}
			if err := rs.SubmitUser(u, sub); err != nil {
				return nil, err
			}
		default:
			tpk, err := rs.TrusteePK()
			if err != nil {
				return nil, err
			}
			sub, err := client.SubmitTrap(msg, gpk, tpk, gid, rand.Reader)
			if err != nil {
				return nil, err
			}
			if err := rs.SubmitTrapUser(u, sub); err != nil {
				return nil, err
			}
		}
	}
	return rs, nil
}

// runDistributed runs one full round through the distributed engine
// over the WAN-latency-modeled in-memory network and reports
// per-iteration latency/work (Observer hooks) plus per-member transport
// traffic. With churn > 0 it additionally kills members of group 0
// after the first iteration and walks whichever churn path the loss
// lands on: degraded completion within the h−1 budget, or the typed
// member-lost abort followed by §4.5 buddy-group recovery over the
// wire and a clean follow-up round.
func runDistributed(msgs int, nizk bool, workers, chunk int, wanMin, wanMax time.Duration, churn int) error {
	variant := protocol.VariantTrap
	if nizk {
		variant = protocol.VariantNIZK
	}
	cfg := protocol.Config{
		NumServers:  12,
		NumGroups:   4,
		GroupSize:   3,
		MessageSize: 64,
		Variant:     variant,
		Iterations:  3,
		Mix:         protocol.MixConfig{Workers: workers},
		Seed:        []byte("atomsim-distributed"),
	}
	if churn > 0 {
		// Churn demos need headroom: h=2 gives each group one spare
		// (chains of k−1), and buddy escrow enables §4.5 recovery.
		cfg.HonestMin = 2
		cfg.BuddyCount = 1
		if threshold := cfg.GroupSize - (cfg.HonestMin - 1); churn > threshold {
			return fmt.Errorf("churn %d exceeds group 0's %d chain members", churn, threshold)
		}
	}
	d, err := protocol.NewDeployment(cfg)
	if err != nil {
		return err
	}
	vcfg := d.Config()
	client, err := protocol.NewClient(&vcfg)
	if err != nil {
		return err
	}

	net := transport.NewMemNetwork(transport.PairwiseLatency("atomsim", wanMin, wanMax), 256)
	cluster, err := distributed.NewCluster(d, distributed.Options{
		Attach:          distributed.MemAttach(net),
		Workers:         workers,
		ChunkSize:       chunk,
		Heartbeat:       200 * time.Millisecond,
		LivenessTimeout: 2 * time.Second,
		Log:             log.Printf,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	rs, err := submitDistributed(d, client, variant, msgs)
	if err != nil {
		return err
	}

	fmt.Printf("distributed round: %d groups × %d members, T=%d, %s variant, %d messages, WAN %v–%v\n",
		cfg.NumGroups, cfg.GroupSize, cfg.Iterations, variant, msgs, wanMin, wanMax)
	var injectOnce sync.Once
	hooks := &protocol.RoundHooks{IterationDone: func(it protocol.IterationStats) {
		fmt.Printf("  iteration %d: %3d msgs  %8.0f ms  %4d shuffles  %4d reencs  %5d proofs  busy %v  %d live members\n",
			it.Layer, it.Messages, float64(it.Duration.Milliseconds()), it.Shuffles, it.ReEncs, it.ProofsChecked,
			it.WorkerBusy.Round(time.Millisecond), it.Members)
		if churn > 0 {
			injectOnce.Do(func() {
				threshold := cfg.GroupSize - (cfg.HonestMin - 1)
				for i := 0; i < churn; i++ {
					id := distributed.MemberID{GID: 0, Pos: threshold - 1 - i}
					fmt.Printf("  !! killing group %d member %d mid-round\n", id.GID, id.Pos)
					cluster.KillMember(id)
				}
			})
		}
	}}
	res, err := cluster.Run(context.Background(), rs, hooks)
	if err != nil {
		// The operator triage path: a member-lost abort is typed and
		// attributed, and — unlike blame or a timeout — fixable by
		// §4.5 recovery.
		var loss *protocol.Loss
		if !errors.As(err, &loss) {
			return err
		}
		fmt.Printf("round aborted, member lost: group %d member %d (recovery needed: %v)\n",
			loss.GID, loss.Member, errors.Is(err, protocol.ErrRecoveryNeeded))
		replacements := []int{1000, 1001, 1002}
		fmt.Printf("running buddy-group recovery over the wire…\n")
		if err := cluster.RecoverGroup(context.Background(), loss.GID, replacements); err != nil {
			return fmt.Errorf("wire recovery: %w", err)
		}
		need, _ := d.GroupNeedsRecovery(loss.GID)
		fmt.Printf("group %d recovered (needs recovery: %v); rerunning a clean round\n", loss.GID, need)
		if rs, err = submitDistributed(d, client, variant, msgs); err != nil {
			return err
		}
		if res, err = cluster.Run(context.Background(), rs, hooks); err != nil {
			return err
		}
	}
	fmt.Printf("round %d mixed %d messages in %v\n", res.Round, len(res.Messages), res.Duration.Round(time.Millisecond))

	// Per-member transport traffic (the horizontally scaled bandwidth
	// story of §7: each server touches only its groups' slices).
	type row struct {
		name string
		st   transport.Stats
	}
	var rows []row
	for id, addr := range cluster.Addresses() {
		rows = append(rows, row{fmt.Sprintf("group %d member %d", id.GID, id.Pos), net.Stats(addr)})
	}
	rows = append(rows, row{"coordinator", net.Stats(cluster.CoordinatorAddr())})
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	fmt.Println("per-node transport traffic:")
	for _, r := range rows {
		fmt.Printf("  %-18s  sent %8d B in %3d msgs   received %8d B\n",
			r.name, r.st.BytesSent, r.st.MessagesSent, r.st.BytesReceived)
	}
	fmt.Printf("total bytes on the wire: %d\n", net.TotalBytes())
	return nil
}

// runCrash is the durable-state fault-injection smoke: it hosts one
// group member as a remote actor over real TCP loopback (the
// `atomd -member -state-dir` shape, in-process so the smoke is
// self-contained), hard-kills it after the first mixing iteration —
// endpoint torn down, no shutdown protocol, the moral equivalent of
// SIGKILL — and brings up a "new process" that reopens the state dir,
// rebinds the same address and resumes the persisted identity. The
// coordinator runs with RestartGrace set, so the loss must resolve as a
// rejoin: the round completes with full plaintext parity and the churn
// counters show zero re-plans, zero buddy recoveries, zero shares
// reconstructed.
func runCrash(msgs, workers int) error {
	cfg := protocol.Config{
		NumServers:  12,
		NumGroups:   4,
		GroupSize:   3,
		MessageSize: 64,
		Variant:     protocol.VariantNIZK,
		Iterations:  3,
		Mix:         protocol.MixConfig{Workers: workers},
		Seed:        []byte("atomsim-crash"),
	}
	d, err := protocol.NewDeployment(cfg)
	if err != nil {
		return err
	}
	vcfg := d.Config()
	client, err := protocol.NewClient(&vcfg)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "atomsim-crash-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir)
	if err != nil {
		return err
	}

	// The victim: one member hosted remotely over real TCP, persisting
	// its provisioned config the way `atomd -member -state-dir` does.
	node, err := transport.ListenTCP("127.0.0.1:0", 4096)
	if err != nil {
		return err
	}
	addr := node.Addr()
	hostCtx, hostCancel := context.WithCancel(context.Background())
	defer hostCancel()
	hostDone := make(chan error, 1)
	go func() {
		hostDone <- distributed.HostMemberOpts(hostCtx, node, distributed.HostOptions{OnConfig: st.PutMember})
	}()

	victim := distributed.MemberID{GID: 0, Pos: 1}
	cluster, err := distributed.NewCluster(d, distributed.Options{
		Attach:          distributed.TCPAttach("127.0.0.1"),
		Remote:          map[distributed.MemberID]string{victim: addr},
		Workers:         workers,
		Heartbeat:       100 * time.Millisecond,
		LivenessTimeout: time.Second,
		RestartGrace:    20 * time.Second,
		Log:             log.Printf,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	rs, err := submitDistributed(d, client, protocol.VariantNIZK, msgs)
	if err != nil {
		return err
	}

	fmt.Printf("crash-restart smoke: %d groups × %d members over TCP loopback, g%d/m%d remote with state dir, %d messages\n",
		cfg.NumGroups, cfg.GroupSize, victim.GID, victim.Pos, msgs)

	// Note h=1: the failure budget is ZERO, so only the rejoin path can
	// save the round — any fallback to loss handling fails the smoke.
	var (
		killOnce   sync.Once
		restartErr = make(chan error, 1)
	)
	hooks := &protocol.RoundHooks{IterationDone: func(it protocol.IterationStats) {
		killOnce.Do(func() {
			fmt.Printf("  !! hard-killing g%d/m%d at %s (iteration %d done; no shutdown protocol)\n",
				victim.GID, victim.Pos, addr, it.Layer)
			hostCancel()
			node.Close()
			go func() {
				<-hostDone
				// The "new process": reopen the state dir — this replays
				// the journal — and resume at the same address.
				if cerr := st.Close(); cerr != nil {
					restartErr <- cerr
					return
				}
				st2, oerr := store.Open(dir)
				if oerr != nil {
					restartErr <- oerr
					return
				}
				resumed := st2.State().Member
				if len(resumed) == 0 {
					restartErr <- fmt.Errorf("state dir holds no member config to resume")
					return
				}
				// Rebinding the just-closed port can race its teardown.
				var node2 transport.Endpoint
				var lerr error
				for i := 0; i < 50; i++ {
					if node2, lerr = transport.ListenTCP(addr, 4096); lerr == nil {
						break
					}
					time.Sleep(100 * time.Millisecond)
				}
				if lerr != nil {
					restartErr <- fmt.Errorf("rebinding %s: %w", addr, lerr)
					return
				}
				fmt.Printf("  !! restarted member at %s, resuming persisted identity from %s\n", addr, dir)
				go func() {
					_ = distributed.HostMemberOpts(context.Background(), node2, distributed.HostOptions{
						OnConfig: st2.PutMember,
						Resume:   resumed,
					})
				}()
				restartErr <- nil
			}()
		})
	}}

	res, err := cluster.Run(context.Background(), rs, hooks)
	if err != nil {
		select {
		case rerr := <-restartErr:
			if rerr != nil {
				return fmt.Errorf("member restart failed: %v (round: %w)", rerr, err)
			}
		default:
		}
		return fmt.Errorf("round did not survive the crash-restart: %w", err)
	}

	// Plaintext parity: every submitted message must come out of the mix.
	want := make(map[string]bool, msgs)
	for u := 0; u < msgs; u++ {
		want[fmt.Sprintf("distributed hello %02d", u)] = true
	}
	for _, m := range res.Messages {
		delete(want, string(bytes.TrimRight(m, "\x00")))
	}
	if len(want) > 0 {
		return fmt.Errorf("plaintext parity broken: %d of %d messages missing after restart", len(want), msgs)
	}

	// The loss must have resolved as a rejoin — state intact, no key
	// material spent. Any buddy-recovery or re-plan activity means the
	// persisted state was not actually used.
	stats := cluster.Stats()
	if stats.Rejoins < 1 {
		return fmt.Errorf("no rejoin observed (stats %+v)", stats)
	}
	if stats.Replans != 0 || stats.Recoveries != 0 || stats.SharesSolicited != 0 {
		return fmt.Errorf("crash-restart leaked into the churn path (stats %+v)", stats)
	}
	fmt.Printf("round %d mixed %d messages in %v despite the mid-round kill\n",
		res.Round, len(res.Messages), res.Duration.Round(time.Millisecond))
	fmt.Printf("crash-restart smoke PASSED: %d rejoin(s), 0 re-plans, 0 buddy recoveries, 0 shares solicited\n",
		stats.Rejoins)
	return nil
}

// runServe drives the continuous service end to end: a daemon with the
// ingestion frontend enabled, the distributed cluster (WAN-latency
// memnet actors, cross-round pipelining) as its mixing engine, and a
// synthetic two-connection client fleet submitting wire-encoded batches
// over TCP until nRounds rounds have published back to back.
func runServe(nRounds, perRound int, nizk bool, workers, inflight, chunk int, interval, wanMin, wanMax time.Duration) error {
	variant, vname := atom.Trap, "trap"
	if nizk {
		variant, vname = atom.NIZK, "nizk"
	}
	cfg := atom.Config{
		Servers: 12, Groups: 4, GroupSize: 3,
		MessageSize: 64, Variant: variant, Iterations: 3,
		MixWorkers: workers,
		Seed:       []byte("atomsim-serve"),
	}
	srv, err := daemon.NewServer("127.0.0.1:0", cfg)
	if err != nil {
		return err
	}
	defer srv.Close()

	// The per-round pipeline trace, collected through the public
	// Observer surface: seal, first layer-0 completion, publication.
	type trace struct {
		sealed, layer0, mixed time.Time
		ingest                atom.IngestStats
		stats                 atom.RoundStats
	}
	var (
		traceMu sync.Mutex
		traces  = map[uint64]*trace{}
	)
	at := func(round uint64) *trace {
		t := traces[round]
		if t == nil {
			t = &trace{}
			traces[round] = t
		}
		return t
	}
	srv.Network().SetObserver(&atom.Observer{
		RoundSealed: func(round uint64, ing atom.IngestStats) {
			traceMu.Lock()
			t := at(round)
			t.sealed, t.ingest = time.Now(), ing
			traceMu.Unlock()
			fmt.Printf("  round %d sealed: %d admitted, %d ciphertexts, queue %d, %d in flight\n",
				round, ing.Admitted, ing.SealedBatch, ing.Queued, ing.InFlight)
		},
		IterationDone: func(it atom.IterationStats) {
			if it.Layer == 0 {
				traceMu.Lock()
				at(it.Round).layer0 = time.Now()
				traceMu.Unlock()
			}
		},
		RoundMixed: func(st atom.RoundStats) {
			traceMu.Lock()
			t := at(st.Round)
			t.mixed, t.stats = time.Now(), st
			traceMu.Unlock()
		},
	})

	net := transport.NewMemNetwork(transport.PairwiseLatency("atomsim-serve", wanMin, wanMax), 256)
	cluster, err := distributed.NewCluster(srv.Network().Deployment(), distributed.Options{
		Attach:      distributed.MemAttach(net),
		Workers:     workers,
		ChunkSize:   chunk,
		MaxInFlight: inflight,
	})
	if err != nil {
		return err
	}
	defer cluster.Close()

	ctx := context.Background()
	if err := srv.EnableService(ctx, atom.ServeOptions{
		RoundInterval: interval,
		MaxBatch:      perRound,
		MaxInFlight:   inflight,
		Mixer:         cluster,
	}); err != nil {
		return err
	}
	go srv.Serve()

	fmt.Printf("continuous service: %d rounds × %d msgs, %s variant, T=%d, %d in flight, WAN %v–%v\n",
		nRounds, perRound, vname, cfg.Iterations, inflight, wanMin, wanMax)

	// The fleet: two client connections sharing each round's batch.
	const fleet = 2
	clients := make([]*daemon.Client, fleet)
	for i := range clients {
		if clients[i], err = daemon.Dial(srv.Addr()); err != nil {
			return err
		}
		defer clients[i].Close()
	}
	info, err := clients[0].Info(ctx)
	if err != nil {
		return err
	}
	enc, err := atom.NewClient(atom.Config{
		Servers: 1, Groups: info.Groups, GroupSize: 1,
		MessageSize: info.MessageSize, Variant: variant, Iterations: 1,
	})
	if err != nil {
		return err
	}

	start := time.Now()
	var roundIDs []uint64
	for r := 0; r < nRounds; r++ {
		// Fetch the open round; after a full batch sealed the previous
		// one, the scheduler rotates within microseconds — spin briefly.
		var ri *daemon.RoundInfo
		for {
			if ri, err = clients[0].ServeInfo(ctx); err != nil {
				return err
			}
			if len(roundIDs) == 0 || ri.ID != roundIDs[len(roundIDs)-1] {
				break
			}
			time.Sleep(time.Millisecond)
		}
		roundIDs = append(roundIDs, ri.ID)
		var wg sync.WaitGroup
		errs := make([]error, fleet)
		per := perRound / fleet
		for c := 0; c < fleet; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				n := per
				if c == fleet-1 {
					n = perRound - per*(fleet-1)
				}
				base := r*perRound + c*per
				msgs := make([][]byte, n)
				for i := range msgs {
					msgs[i] = fmt.Appendf(nil, "serve r%02d u%03d", r, base+i)
				}
				_, errs[c] = daemon.SubmitBatch(ctx, enc, info, ri, base, msgs,
					func(ctx context.Context, round uint64, user int, wire []byte) error {
						_, serr := clients[c].SubmitInto(ctx, round, user, wire)
						return serr
					})
			}(c)
		}
		wg.Wait()
		for _, e := range errs {
			if e != nil {
				return fmt.Errorf("fleet submission into round %d: %w", ri.ID, e)
			}
		}
	}

	// Collect every round's publication over the wire.
	total := 0
	for _, rid := range roundIDs {
		msgs, err := clients[0].Await(ctx, rid)
		if err != nil {
			return fmt.Errorf("awaiting round %d: %w", rid, err)
		}
		total += len(msgs)
	}
	elapsed := time.Since(start)

	fmt.Println("per-round pipeline trace:")
	traceMu.Lock()
	overlaps := 0
	for i, rid := range roundIDs {
		t := traces[rid]
		if t == nil || t.sealed.IsZero() {
			continue
		}
		line := fmt.Sprintf("  round %d: %d msgs, seal→publish %v (mixing %v)",
			rid, t.stats.Messages, t.mixed.Sub(t.sealed).Round(time.Millisecond), t.stats.Duration.Round(time.Millisecond))
		if i > 0 {
			if prev := traces[roundIDs[i-1]]; prev != nil && !t.layer0.IsZero() && t.layer0.Before(prev.mixed) {
				line += "  [layer 0 mixed before round " + fmt.Sprint(roundIDs[i-1]) + " published — pipelined]"
				overlaps++
			}
		}
		fmt.Println(line)
	}
	traceMu.Unlock()
	fmt.Printf("cross-round overlap observed in %d of %d round pairs\n", overlaps, len(roundIDs)-1)
	fmt.Printf("sustained: %.1f msgs/sec, %.1f rounds/min over %v (%d messages, %d rounds)\n",
		float64(total)/elapsed.Seconds(), float64(len(roundIDs))/elapsed.Minutes(), elapsed.Round(time.Millisecond), total, len(roundIDs))
	return nil
}
