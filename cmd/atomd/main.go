// Command atomd hosts an Atom deployment behind a TCP endpoint: it
// forms the anytrust groups, runs their distributed key generation, and
// serves the daemon protocol (key discovery, submission intake, round
// execution) to remote atomclient instances.
//
//	atomd -listen :9000 -servers 12 -groups 4 -groupsize 3 -variant trap
//
// Clients keep all secrets: they encrypt and prove locally and ship
// opaque submissions (see cmd/atomclient).
//
// With -serve, atomd additionally runs the continuous ingestion
// pipeline: submissions are admitted into whichever round is open
// (proof verification and duplicate rejection at admission time), the
// round scheduler seals at -interval or -capacity, and sealed rounds
// mix back to back with up to -inflight in flight. Clients then use the
// serve-mode surface (atomclient -ingest):
//
//	atomd -listen :9000 -serve -interval 500ms -capacity 1024
//
// With -member, atomd instead hosts one group member of a distributed
// round engine (internal/distributed): it listens on a TCP endpoint,
// waits for a coordinator's join message carrying the member's
// material, and serves mixing rounds as a message-passing actor until
// interrupted:
//
//	atomd -member -listen :9100
//
// The coordinating process builds a distributed.Cluster whose
// Options.Remote map points at these addresses. Everything churn-
// related — the member's heartbeat period, the coordinator's liveness
// timeout, re-planning after a loss, buddy-group recovery — is
// configured by the coordinator (distributed.Options) and arrives in
// the join message; a -member process needs no tuning flags. If this
// process dies, the coordinator detects the silence within its
// liveness timeout, re-plans the group's chain over the survivors (or
// fails the round with atom.ErrMemberLost when the h−1 budget is
// spent), and a restarted host can be re-adopted at its old address on
// the next round's provisioning.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"atom"
	"atom/internal/daemon"
	"atom/internal/distributed"
	"atom/internal/transport"
)

func main() {
	var (
		listen      = flag.String("listen", ":9000", "TCP listen address")
		servers     = flag.Int("servers", 12, "server roster size N")
		groups      = flag.Int("groups", 4, "number of anytrust groups G")
		groupSize   = flag.Int("groupsize", 3, "servers per group k")
		honest      = flag.Int("honest", 1, "required honest servers per group h (tolerates h-1 failures)")
		messageSize = flag.Int("msgsize", 160, "fixed message size in bytes")
		variant     = flag.String("variant", "trap", "active-attack defense: nizk or trap")
		iterations  = flag.Int("iterations", 3, "mixing iterations T")
		topo        = flag.String("topology", "square", "permutation network: square or butterfly")
		workers     = flag.Int("workers", 0, "parallel mixing engine: worker goroutines per group (0 = CPUs/groups)")
		seed        = flag.String("seed", "atomd", "beacon seed (all participants must agree)")
		verbose     = flag.Bool("verbose", true, "log per-round and per-iteration statistics")
		member      = flag.Bool("member", false, "host one distributed-round group member instead of a full deployment")
		serve       = flag.Bool("serve", false, "run the continuous ingestion pipeline: rounds seal on a schedule and mix back to back")
		interval    = flag.Duration("interval", time.Second, "-serve: round scheduler's seal deadline (Options.RoundInterval)")
		capacity    = flag.Int("capacity", 0, "-serve: seal a round early at this many submissions (0 = deadline only)")
		inflight    = flag.Int("inflight", 2, "-serve: rounds mixing concurrently (bounded pipeline depth)")
	)
	flag.Parse()

	if *member {
		hostMember(*listen)
		return
	}

	v := atom.Trap
	switch *variant {
	case "trap":
	case "nizk":
		v = atom.NIZK
	default:
		log.Fatalf("atomd: unknown variant %q (want nizk or trap)", *variant)
	}

	cfg := atom.Config{
		Servers:       *servers,
		Groups:        *groups,
		GroupSize:     *groupSize,
		HonestServers: *honest,
		MessageSize:   *messageSize,
		Variant:       v,
		Iterations:    *iterations,
		Topology:      *topo,
		MixWorkers:    *workers,
		Seed:          []byte(*seed),
	}
	log.Printf("atomd: forming %d groups of %d from %d servers (%s variant, T=%d)…",
		cfg.Groups, cfg.GroupSize, cfg.Servers, *variant, cfg.Iterations)
	srv, err := daemon.NewServer(*listen, cfg)
	if err != nil {
		log.Fatalf("atomd: %v", err)
	}
	if *verbose {
		// Round lifecycle observability through the public hook surface.
		srv.Network().SetObserver(&atom.Observer{
			RoundOpened: func(round uint64) {
				log.Printf("atomd: round %d open for submissions", round)
			},
			RoundSealed: func(round uint64, ing atom.IngestStats) {
				log.Printf("atomd: round %d sealed: %d admitted, %d rejected, %d ciphertexts; queue depth %d, %d rounds in flight",
					round, ing.Admitted, ing.Rejected, ing.SealedBatch, ing.Queued, ing.InFlight)
			},
			IterationDone: func(it atom.IterationStats) {
				log.Printf("atomd: round %d iteration %d: %d msgs in %v (%d proofs, %d workers/group at %.0f%% utilization, %d live members)",
					it.Round, it.Layer, it.Messages, it.Duration, it.ProofsVerified,
					it.Workers, 100*it.Utilization(), it.Members)
			},
			RoundMixed: func(st atom.RoundStats) {
				log.Printf("atomd: round %d mixed: %d msgs in %v over %d iterations (%d admitted, %d rejected at ingest)",
					st.Round, st.Messages, st.Duration, st.Iterations, st.Ingest.Admitted, st.Ingest.Rejected)
			},
			RoundFailed: func(round uint64, err error) {
				// Operator triage: blame (a malicious server — exclude
				// it), member-lost (a crash — recover), and everything
				// else (cancellation, trap trip) are different runbooks.
				switch {
				case errors.Is(err, atom.ErrProofRejected):
					gid, member, _ := atom.BlamedMember(err)
					log.Printf("atomd: round %d FAILED: proof rejected — group %d member %d is misbehaving: %v", round, gid, member, err)
				case errors.Is(err, atom.ErrMemberLost):
					gid, member, _ := atom.LostMember(err)
					log.Printf("atomd: round %d FAILED: member lost — group %d member %d crashed (recovery needed: %v): %v",
						round, gid, member, errors.Is(err, atom.ErrRecoveryNeeded), err)
				default:
					log.Printf("atomd: round %d FAILED: %v", round, err)
				}
			},
		})
	}
	if *serve {
		// Continuous mode: the round scheduler seals at -interval (or
		// -capacity) and rounds mix back to back, up to -inflight
		// concurrently; clients use ServeInfo/SubmitInto/Await.
		if err := srv.EnableService(context.Background(), atom.ServeOptions{
			RoundInterval: *interval,
			MaxBatch:      *capacity,
			MaxInFlight:   *inflight,
		}); err != nil {
			log.Fatalf("atomd: starting continuous service: %v", err)
		}
		log.Printf("atomd: continuous service up (interval %v, capacity %d, %d rounds in flight)",
			*interval, *capacity, *inflight)
	}
	fmt.Printf("atomd: serving on %s\n", srv.Addr())

	go srv.Serve()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("atomd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("atomd: close: %v", err)
	}
}

// hostMember serves one distributed-round member actor over TCP until
// interrupted. The member's key material and wiring arrive in the
// coordinator's join message.
func hostMember(listen string) {
	node, err := transport.ListenTCP(listen, 4096)
	if err != nil {
		log.Fatalf("atomd: %v", err)
	}
	fmt.Printf("atomd: member actor listening on %s (waiting for a coordinator's join)\n", node.Addr())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- distributed.HostMember(ctx, node) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Println("atomd: member shutting down")
		cancel()
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			log.Fatalf("atomd: member: %v", err)
		}
	}
	node.Close()
}
