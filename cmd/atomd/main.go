// Command atomd hosts an Atom deployment behind a TCP endpoint: it
// forms the anytrust groups, runs their distributed key generation, and
// serves the daemon protocol (key discovery, submission intake, round
// execution) to remote atomclient instances.
//
//	atomd -listen :9000 -servers 12 -groups 4 -groupsize 3 -variant trap
//
// Clients keep all secrets: they encrypt and prove locally and ship
// opaque submissions (see cmd/atomclient).
//
// With -serve, atomd additionally runs the continuous ingestion
// pipeline: submissions are admitted into whichever round is open
// (proof verification and duplicate rejection at admission time), the
// round scheduler seals at -interval or -capacity, and sealed rounds
// mix back to back with up to -inflight in flight. Clients then use the
// serve-mode surface (atomclient -ingest):
//
//	atomd -listen :9000 -serve -interval 500ms -capacity 1024
//
// -prewarm N keeps re-encryption pads banked offline for rounds of up
// to N vectors: the scheduler tops the bank up between seals, so sealed
// rounds spend their online time on the data-dependent peel instead of
// fresh randomness. -members hands sealed rounds to a fleet of
// pre-started atomd -member hosts instead of the in-process engine
// (addresses GID-major, one per member), and -chunk streams each
// re-encryption chain in bounded chunks so downstream members verify
// chunk c while upstream members still prove chunk c+1:
//
//	atomd -listen :9000 -serve -members host1:9100,host1:9101,… -chunk 256
//
// With -member, atomd instead hosts one group member of a distributed
// round engine (internal/distributed): it listens on a TCP endpoint,
// waits for a coordinator's join message carrying the member's
// material, and serves mixing rounds as a message-passing actor until
// interrupted:
//
//	atomd -member -listen :9100
//
// The coordinating process builds a distributed.Cluster whose
// Options.Remote map points at these addresses. Everything churn-
// related — the member's heartbeat period, the coordinator's liveness
// timeout, re-planning after a loss, buddy-group recovery — is
// configured by the coordinator (distributed.Options) and arrives in
// the join message; a -member process needs no tuning flags.
//
// Durable state (-state-dir): with a state directory, atomd persists
// its durable material in an fsync'd journal (internal/store) — a
// member's provisioned config on every join/reconfig, a coordinator's
// key material, sealed batches and published outcomes — and a
// restarted process replays it: a -member host re-adopts its old
// identity at its old address and announces the rejoin (the
// coordinator re-admits it without burning h−1 budget, when its
// Options.RestartGrace allows), and a full-mode coordinator restores
// its keys and re-dispatches any sealed-but-unmixed rounds instead of
// re-running the DKG. Without -state-dir a crash falls back to the
// live churn path: loss detection, re-planning, buddy recovery.
//
// With -dkg, setup establishes trust without a dealer: a joint-Feldman
// ceremony elects a beacon committee whose threshold VRF drives a
// chained, publicly verifiable randomness beacon; group formation
// samples from a produced beacon round; and every group's threshold key
// comes from its own per-group ceremony, so no party ever holds a group
// secret. -beacon-interval keeps producing verified rounds while
// serving. With -state-dir the trust transcript and every beacon round
// journal too, and a restart re-validates the transcript and RESUMES
// the chain (deterministic partials make the restart fork-free):
//
//	atomd -listen :9000 -dkg -beacon-interval 30s -state-dir /var/lib/atomd
//
// A group-config file (-config, JSON — see store.GroupConfig) replaces
// the roster/topology/crypto flags, and its canonical hash rides the
// provisioning wire: a member started with one config file refuses a
// coordinator provisioned from another (atom.ErrConfigMismatch).
//
// -metrics serves Prometheus text-format counters at /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"atom"
	"atom/internal/daemon"
	"atom/internal/distributed"
	"atom/internal/store"
	"atom/internal/transport"
)

func main() {
	var (
		listen      = flag.String("listen", ":9000", "TCP listen address")
		servers     = flag.Int("servers", 12, "server roster size N")
		groups      = flag.Int("groups", 4, "number of anytrust groups G")
		groupSize   = flag.Int("groupsize", 3, "servers per group k")
		honest      = flag.Int("honest", 1, "required honest servers per group h (tolerates h-1 failures)")
		messageSize = flag.Int("msgsize", 160, "fixed message size in bytes")
		variant     = flag.String("variant", "trap", "active-attack defense: nizk or trap")
		iterations  = flag.Int("iterations", 3, "mixing iterations T")
		topo        = flag.String("topology", "square", "permutation network: square or butterfly")
		workers     = flag.Int("workers", 0, "parallel mixing engine: worker goroutines per group (0 = CPUs/groups)")
		seed        = flag.String("seed", "atomd", "beacon seed (all participants must agree)")
		verbose     = flag.Bool("verbose", true, "log per-round and per-iteration statistics")
		member      = flag.Bool("member", false, "host one distributed-round group member instead of a full deployment")
		serve       = flag.Bool("serve", false, "run the continuous ingestion pipeline: rounds seal on a schedule and mix back to back")
		interval    = flag.Duration("interval", time.Second, "-serve: round scheduler's seal deadline (Options.RoundInterval)")
		capacity    = flag.Int("capacity", 0, "-serve: seal a round early at this many submissions (0 = deadline only)")
		inflight    = flag.Int("inflight", 2, "-serve: rounds mixing concurrently (bounded pipeline depth)")
		prewarmN    = flag.Int("prewarm", 0, "-serve: keep re-encryption pads banked offline for rounds of up to this many vectors (0 = off; consumed by the in-process mixer)")
		membersF    = flag.String("members", "", "comma-separated addresses of pre-started atomd -member hosts, GID-major (g0/m0,g0/m1,…): coordinate distributed rounds over them instead of mixing in-process")
		chunkSz     = flag.Int("chunk", 0, "-members: stream each re-encryption chain in chunks of at most this many vectors per destination batch (0 = whole batches)")
		fastAddr    = flag.String("fastpath", "", "-serve: multiplexed binary submit listener address (\":0\" = ephemeral; advertised to clients via Info)")
		stateDir    = flag.String("state-dir", "", "persist durable state (journal + snapshots) here and resume from it on restart")
		dkgMode     = flag.Bool("dkg", false, "establish trust with the dealerless setup ceremony: per-group joint-Feldman DKGs and a chained verifiable randomness beacon (persisted and resumed with -state-dir)")
		dkgWindow   = flag.Duration("dkg-window", 500*time.Millisecond, "-dkg: per-phase ceremony message window (honest phases early-advance; this bounds the straggler wait)")
		beaconTick  = flag.Duration("beacon-interval", 0, "-dkg: produce a verified beacon round this often (0 = only the setup rounds)")
		configPath  = flag.String("config", "", "group-config file (JSON); replaces the roster/topology/crypto flags and gates joins by its hash")
		metricsAddr = flag.String("metrics", "", "serve Prometheus text-format counters at this address under /metrics (empty = off)")
		pprofAddr   = flag.String("pprof", "", "serve net/http/pprof at this address under /debug/pprof/ (empty = off; may equal -metrics to share one listener)")
	)
	flag.Parse()

	var gc *store.GroupConfig
	if *configPath != "" {
		var err error
		if gc, err = store.LoadGroupConfig(*configPath); err != nil {
			log.Fatalf("atomd: %v", err)
		}
	}

	if *member {
		hostMember(*listen, *stateDir, *metricsAddr, *pprofAddr, gc)
		return
	}

	var cfg atom.Config
	if gc != nil {
		cfg = configFromFile(gc)
		log.Printf("atomd: group config %s (hash %x)", *configPath, gc.Hash()[:8])
	} else {
		v := atom.Trap
		switch *variant {
		case "trap":
		case "nizk":
			v = atom.NIZK
		default:
			log.Fatalf("atomd: unknown variant %q (want nizk or trap)", *variant)
		}
		cfg = atom.Config{
			Servers:       *servers,
			Groups:        *groups,
			GroupSize:     *groupSize,
			HonestServers: *honest,
			MessageSize:   *messageSize,
			Variant:       v,
			Iterations:    *iterations,
			Topology:      *topo,
			MixWorkers:    *workers,
			Seed:          []byte(*seed),
		}
	}

	var st *store.Store
	if *stateDir != "" {
		var err error
		if st, err = store.Open(*stateDir); err != nil {
			log.Fatalf("atomd: opening state dir: %v", err)
		}
		defer st.Close()
	}

	// Build the network: restored from the journal when the state dir
	// holds a deployment record, a fresh DKG otherwise (persisted
	// immediately, so the next start restores).
	var network *atom.Network
	if st != nil {
		if state := st.State(); len(state.Deployment) > 0 {
			var err error
			if network, err = atom.RestoreNetwork(cfg, state.Deployment, state.MaxRound()); err != nil {
				log.Fatalf("atomd: restoring from %s: %v", *stateDir, err)
			}
			m := st.Metrics()
			log.Printf("atomd: restored keys and %d pending sealed rounds from %s (%d records in %v)",
				len(st.PendingSealed()), *stateDir, m.ReplayRecords, m.ReplayDuration)
			// A trust transcript in the journal means this deployment was
			// set up dealerless: re-validate it and RESUME the beacon
			// chain (deterministic partials make a restart fork-free).
			if state.DKG != nil {
				if err := network.RestoreTrust(st); err != nil {
					log.Fatalf("atomd: restoring trust transcript: %v", err)
				}
				head, _ := network.BeaconChain().Head()
				log.Printf("atomd: beacon chain resumed at round %d", head)
			}
		}
	}
	if network == nil {
		log.Printf("atomd: forming %d groups of %d from %d servers (T=%d)…",
			cfg.Groups, cfg.GroupSize, cfg.Servers, cfg.Iterations)
		var err error
		if *dkgMode {
			log.Printf("atomd: dealerless setup: committee DKG, verifiable beacon, per-group ceremonies (window %v)…", *dkgWindow)
			network, err = atom.NewNetworkDKG(cfg, *dkgWindow)
		} else {
			network, err = atom.NewNetwork(cfg)
		}
		if err != nil {
			log.Fatalf("atomd: %v", err)
		}
		if st != nil {
			if err := st.PutDeployment(network.MarshalState()); err != nil {
				log.Fatalf("atomd: persisting keys: %v", err)
			}
			if *dkgMode {
				if err := network.PersistTrust(st); err != nil {
					log.Fatalf("atomd: persisting trust transcript: %v", err)
				}
			}
			var hash []byte
			if gc != nil {
				hash = gc.Hash()
			}
			if err := st.PutEpoch(0, hash); err != nil {
				log.Fatalf("atomd: persisting epoch: %v", err)
			}
		}
	}

	srv, err := daemon.NewServerWith(*listen, cfg, network)
	if err != nil {
		log.Fatalf("atomd: %v", err)
	}

	var obs *atom.Observer
	if *verbose {
		obs = verboseObserver()
	}
	var m *daemon.Metrics
	if *metricsAddr != "" {
		m = daemon.NewMetrics()
		m.SetNetwork(srv.Network())
		if st != nil {
			m.SetStore(st)
		}
		obs = m.Instrument(obs)
		go func() {
			if err := daemon.ServeDebug(*metricsAddr, m, *pprofAddr == *metricsAddr); err != nil {
				log.Printf("atomd: metrics listener: %v", err)
			}
		}()
		log.Printf("atomd: metrics on %s/metrics", *metricsAddr)
	}
	if *pprofAddr != "" && *pprofAddr != *metricsAddr {
		go func() {
			if err := daemon.ServeDebug(*pprofAddr, nil, true); err != nil {
				log.Printf("atomd: pprof listener: %v", err)
			}
		}()
		log.Printf("atomd: pprof on %s/debug/pprof/", *pprofAddr)
	}
	if obs != nil {
		srv.Network().SetObserver(obs)
	}

	if *beaconTick > 0 {
		if network.BeaconChain() == nil {
			log.Fatalf("atomd: -beacon-interval needs a beacon committee: start with -dkg (or restore a -dkg state dir)")
		}
		go func() {
			// Each tick is produced by the committee's threshold VRF,
			// verified, appended, and (with -state-dir) journaled by the
			// chain's append hook.
			for range time.Tick(*beaconTick) {
				head, err := network.BeaconTick()
				if err != nil {
					log.Printf("atomd: beacon tick: %v", err)
					continue
				}
				if *verbose {
					log.Printf("atomd: beacon round %d produced", head)
				}
			}
		}()
		log.Printf("atomd: producing beacon rounds every %v", *beaconTick)
	}

	if *serve {
		// Continuous mode: the round scheduler seals at -interval (or
		// -capacity) and rounds mix back to back, up to -inflight
		// concurrently; clients use ServeInfo/SubmitInto/Await. With a
		// state dir the pipeline journals through it: seals before
		// dispatch, outcomes on publish, pending rounds re-dispatched at
		// the next start.
		opts := atom.ServeOptions{
			RoundInterval: *interval,
			MaxBatch:      *capacity,
			MaxInFlight:   *inflight,
			Prewarm:       *prewarmN,
		}
		if st != nil {
			opts.Journal = st
		}
		if *membersF != "" {
			// Remote fleet: every group member is a pre-started
			// `atomd -member` host; this daemon only coordinates (and the
			// pad bank stays idle — pads feed the in-process mixer).
			remote, err := memberBook(*membersF, cfg.Groups, cfg.GroupSize)
			if err != nil {
				log.Fatalf("atomd: -members: %v", err)
			}
			cluster, err := distributed.NewCluster(srv.Network().Deployment(), distributed.Options{
				Attach:    distributed.TCPAttach(coordHost(*listen)),
				Remote:    remote,
				Workers:   *workers,
				ChunkSize: *chunkSz,
			})
			if err != nil {
				log.Fatalf("atomd: joining member fleet: %v", err)
			}
			defer cluster.Close()
			opts.Mixer = cluster
			log.Printf("atomd: distributed rounds over %d remote members (chunk %d)", len(remote), *chunkSz)
		}
		if err := srv.EnableService(context.Background(), opts); err != nil {
			log.Fatalf("atomd: starting continuous service: %v", err)
		}
		log.Printf("atomd: continuous service up (interval %v, capacity %d, %d rounds in flight)",
			*interval, *capacity, *inflight)
	}
	if *fastAddr != "" {
		if !*serve {
			log.Printf("atomd: -fastpath without -serve: submissions will be rejected until a service runs")
		}
		fa, err := srv.EnableFastPath(*fastAddr, daemon.FastPathOptions{Metrics: m})
		if err != nil {
			log.Fatalf("atomd: fast path listener: %v", err)
		}
		log.Printf("atomd: binary submit path on %s", fa)
	}
	fmt.Printf("atomd: serving on %s\n", srv.Addr())

	go srv.Serve()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	log.Println("atomd: shutting down")
	if err := srv.Close(); err != nil {
		log.Fatalf("atomd: close: %v", err)
	}
}

// memberBook parses -members: G·k comma-separated addresses, GID-major
// (group 0's k members first), one per pre-started atomd -member host.
func memberBook(list string, groups, groupSize int) (map[distributed.MemberID]string, error) {
	addrs := strings.Split(list, ",")
	if len(addrs) != groups*groupSize {
		return nil, fmt.Errorf("got %d addresses, want groups×groupsize = %d×%d = %d",
			len(addrs), groups, groupSize, groups*groupSize)
	}
	book := make(map[distributed.MemberID]string, len(addrs))
	for i, a := range addrs {
		a = strings.TrimSpace(a)
		if a == "" {
			return nil, fmt.Errorf("address %d is empty", i)
		}
		book[distributed.MemberID{GID: i / groupSize, Pos: i % groupSize}] = a
	}
	return book, nil
}

// coordHost picks the host the round coordinator binds its ephemeral
// endpoint to — the -listen host, so the address shipped in join
// messages is reachable wherever the daemon itself is. A bare ":port"
// listen falls back to loopback; cross-machine fleets must give
// -listen an explicit host.
func coordHost(listen string) string {
	if host, _, err := net.SplitHostPort(listen); err == nil && host != "" {
		return host
	}
	return "127.0.0.1"
}

// configFromFile maps the operator's group-config file onto the public
// Config.
func configFromFile(gc *store.GroupConfig) atom.Config {
	v := atom.NIZK
	if gc.Variant == "trap" {
		v = atom.Trap
	}
	return atom.Config{
		Servers:       gc.Servers,
		Groups:        gc.Groups,
		GroupSize:     gc.GroupSize,
		HonestServers: gc.Honest,
		MessageSize:   gc.MessageSize,
		Variant:       v,
		Iterations:    gc.Iterations,
		Topology:      gc.Topology,
		MixWorkers:    gc.Workers,
		Buddies:       gc.Buddies,
		Seed:          []byte(gc.Seed),
	}
}

// verboseObserver is the -verbose round-lifecycle logger.
func verboseObserver() *atom.Observer {
	return &atom.Observer{
		RoundOpened: func(round uint64) {
			log.Printf("atomd: round %d open for submissions", round)
		},
		RoundSealed: func(round uint64, ing atom.IngestStats) {
			log.Printf("atomd: round %d sealed: %d admitted, %d rejected, %d ciphertexts; queue depth %d, %d rounds in flight",
				round, ing.Admitted, ing.Rejected, ing.SealedBatch, ing.Queued, ing.InFlight)
		},
		IterationDone: func(it atom.IterationStats) {
			log.Printf("atomd: round %d iteration %d: %d msgs in %v (%d proofs, %d workers/group at %.0f%% utilization, %d live members)",
				it.Round, it.Layer, it.Messages, it.Duration, it.ProofsVerified,
				it.Workers, 100*it.Utilization(), it.Members)
		},
		RoundMixed: func(st atom.RoundStats) {
			log.Printf("atomd: round %d mixed: %d msgs in %v over %d iterations (%d admitted, %d rejected at ingest)",
				st.Round, st.Messages, st.Duration, st.Iterations, st.Ingest.Admitted, st.Ingest.Rejected)
		},
		RoundFailed: func(round uint64, err error) {
			// Operator triage: blame (a malicious server — exclude
			// it), member-lost (a crash — recover), and everything
			// else (cancellation, trap trip) are different runbooks.
			switch {
			case errors.Is(err, atom.ErrProofRejected):
				gid, member, _ := atom.BlamedMember(err)
				log.Printf("atomd: round %d FAILED: proof rejected — group %d member %d is misbehaving: %v", round, gid, member, err)
			case errors.Is(err, atom.ErrMemberLost):
				gid, member, _ := atom.LostMember(err)
				log.Printf("atomd: round %d FAILED: member lost — group %d member %d crashed (recovery needed: %v): %v",
					round, gid, member, errors.Is(err, atom.ErrRecoveryNeeded), err)
			default:
				log.Printf("atomd: round %d FAILED: %v", round, err)
			}
		},
	}
}

// hostMember serves one distributed-round member actor over TCP until
// interrupted. The member's key material and wiring arrive in the
// coordinator's join message — or, with -state-dir, replay from the
// journal so a crashed host resumes its old identity at its old
// address.
func hostMember(listen, stateDir, metricsAddr, pprofAddr string, gc *store.GroupConfig) {
	node, err := transport.ListenTCP(listen, 4096)
	if err != nil {
		log.Fatalf("atomd: %v", err)
	}

	var opts distributed.HostOptions
	var st *store.Store
	if stateDir != "" {
		if st, err = store.Open(stateDir); err != nil {
			log.Fatalf("atomd: opening state dir: %v", err)
		}
		defer st.Close()
		opts.OnConfig = st.PutMember
		opts.Resume = st.State().Member
	}
	if gc != nil {
		opts.ConfigHash = gc.Hash()
		log.Printf("atomd: member gated on group-config hash %x", opts.ConfigHash[:8])
	}
	if metricsAddr != "" {
		m := daemon.NewMetrics()
		if st != nil {
			m.SetStore(st)
		}
		go func() {
			if err := daemon.ServeDebug(metricsAddr, m, pprofAddr == metricsAddr); err != nil {
				log.Printf("atomd: metrics listener: %v", err)
			}
		}()
		log.Printf("atomd: metrics on %s/metrics", metricsAddr)
	}
	if pprofAddr != "" && pprofAddr != metricsAddr {
		go func() {
			if err := daemon.ServeDebug(pprofAddr, nil, true); err != nil {
				log.Printf("atomd: pprof listener: %v", err)
			}
		}()
		log.Printf("atomd: pprof on %s/debug/pprof/", pprofAddr)
	}
	if len(opts.Resume) > 0 {
		fmt.Printf("atomd: member actor resuming on %s from %s (rejoining fleet)\n", node.Addr(), stateDir)
	} else {
		fmt.Printf("atomd: member actor listening on %s (waiting for a coordinator's join)\n", node.Addr())
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- distributed.HostMemberOpts(ctx, node, opts) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	select {
	case <-sig:
		log.Println("atomd: member shutting down")
		cancel()
		<-done
	case err := <-done:
		if err != nil && ctx.Err() == nil {
			log.Fatalf("atomd: member: %v", err)
		}
	}
	node.Close()
}
