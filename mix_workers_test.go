package atom

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"atom/internal/elgamal"
	"atom/internal/protocol"
)

// TestMixWorkersKnob: Config.MixWorkers threads down to the parallel
// mixing engine, the stats hooks report the pool, and the anonymized
// output is identical to the serial engine's.
func TestMixWorkersKnob(t *testing.T) {
	for _, variant := range []Variant{NIZK, Trap} {
		var baseline [][]byte
		for _, workers := range []int{1, 4} {
			cfg := testNetworkConfig(variant, 32)
			cfg.MixWorkers = workers
			n, err := NewNetwork(cfg)
			if err != nil {
				t.Fatal(err)
			}
			r, err := n.OpenRound(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			for u := 0; u < 8; u++ {
				if err := r.Submit(u, fmt.Appendf(nil, "worker knob %d", u)); err != nil {
					t.Fatal(err)
				}
			}
			res, err := r.Mix(context.Background())
			if err != nil {
				t.Fatalf("%v workers=%d: %v", variant, workers, err)
			}
			if res.Stats.Workers != workers {
				t.Fatalf("%v: stats report %d workers, want %d", variant, res.Stats.Workers, workers)
			}
			if res.Stats.WorkerBusy <= 0 {
				t.Fatalf("%v: stats report no worker busy time", variant)
			}
			if u := res.Stats.Utilization(); u <= 0 || u > 1.5 {
				// Busy time is measured per task and can slightly exceed
				// the wall×slots product on a loaded machine; wildly out of
				// range means the accounting broke.
				t.Fatalf("%v: implausible utilization %v", variant, u)
			}
			for _, it := range res.Stats.PerIteration {
				if it.Workers != workers || it.ActiveGroups == 0 {
					t.Fatalf("%v: iteration stats missing pool info: %+v", variant, it)
				}
			}
			if workers == 1 {
				baseline = res.Messages
				continue
			}
			if len(res.Messages) != len(baseline) {
				t.Fatalf("%v: message count diverged: %d vs %d", variant, len(res.Messages), len(baseline))
			}
			for i := range res.Messages {
				if string(res.Messages[i]) != string(baseline[i]) {
					t.Fatalf("%v: plaintext %d diverged between worker counts", variant, i)
				}
			}
		}
	}
}

// TestMixWorkersProofRejection: the public error taxonomy classifies a
// pooled, batched proof rejection exactly like a serial one.
func TestMixWorkersProofRejection(t *testing.T) {
	cfg := testNetworkConfig(NIZK, 32)
	cfg.MixWorkers = 4
	n, err := NewNetwork(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := n.OpenRound(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		if err := r.Submit(u, fmt.Appendf(nil, "pooled tamper %d", u)); err != nil {
			t.Fatal(err)
		}
	}
	n.d.SetAdversary(&protocol.Adversary{
		Layer: 0, GID: 0, Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) < 2 {
				return nil
			}
			out := make([]elgamal.Vector, len(batch))
			copy(out, batch)
			out[0] = batch[1]
			return out
		},
	})
	_, err = r.Mix(context.Background())
	if !errors.Is(err, ErrProofRejected) || !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("pooled tamper: got %v, want ErrProofRejected ⊂ ErrRoundAborted", err)
	}
}
