package atom

import (
	"time"

	"atom/internal/protocol"
)

// IterationStats reports one mixing iteration of one round: its
// wall-clock latency and the cryptographic work the whole network did
// (all groups run in parallel within an iteration).
type IterationStats struct {
	// Round is the round's sequence number.
	Round uint64
	// Layer is the 0-based mixing iteration (0 ≤ Layer < T).
	Layer int
	// Duration is the iteration's wall-clock latency.
	Duration time.Duration
	// Messages is the number of ciphertext vectors entering the layer.
	Messages int
	// Shuffles and ReEncs count the per-member crypto operations.
	Shuffles int
	ReEncs   int
	// ProofsVerified counts NIZK verifications (0 in the trap variant's
	// mixing iterations).
	ProofsVerified int
	// Workers is the parallel mixing engine's per-group pool size the
	// iteration ran with (Config.MixWorkers, resolved).
	Workers int
	// ActiveGroups counts the groups that held messages this iteration.
	ActiveGroups int
	// WorkerBusy totals the time worker goroutines spent executing
	// crypto tasks across all groups' pools.
	WorkerBusy time.Duration
	// Members totals the groups' live memberships for the iteration
	// (Groups × GroupSize when every server is up). A smaller value
	// means the network mixed in degraded mode: some group is running
	// on its h−1 spare budget (§4.5).
	Members int
}

// Utilization reports the fraction of the iteration's worker-pool
// capacity (Workers goroutines in each group that held messages, for
// the iteration's wall-clock span) that was spent executing crypto
// tasks — 1.0 means every worker was busy the whole iteration. It
// returns 0 when the iteration did no work.
func (s IterationStats) Utilization() float64 {
	slots := time.Duration(s.Workers*s.ActiveGroups) * s.Duration
	if slots <= 0 {
		return 0
	}
	return float64(s.WorkerBusy) / float64(slots)
}

// IngestStats reports a round's ingestion-frontend accounting — what
// the admission control and the round scheduler did before mixing
// started.
type IngestStats struct {
	// Admitted is how many submissions the round accepted.
	Admitted int
	// Rejected is how many submissions admission control turned away:
	// failed proofs of plaintext knowledge, duplicate ciphertexts or
	// reused trap commitments, and arrivals after the round sealed.
	Rejected int
	// SealedBatch is the ciphertext-vector count sealed into the
	// layer-0 batches (trap rounds carry two vectors per submission).
	SealedBatch int
	// Queued is the sealed-batch queue depth when this round sealed:
	// rounds sealed but not yet published, this one included. Only the
	// continuous service (Network.Serve) fills it; one-shot rounds
	// report 0.
	Queued int
	// InFlight is how many rounds were actively mixing when this round
	// sealed — the pipeline depth. Only the continuous service fills it.
	InFlight int
}

// AdmitBatchStats reports one batch of the admission plane: how many
// wire submissions were admitted together, how long the combined proof
// verification took, and how the batch split. Surfaced through
// Observer.AdmissionBatch into the daemon's /metrics.
type AdmitBatchStats struct {
	// Size is the number of submissions in the batch; Verified is how
	// many reached the combined proof check (structurally broken
	// submissions never do).
	Size     int
	Verified int
	// VerifyTime is the wall time of the combined verification, including
	// the serial attribution re-scan when the batch check fails.
	VerifyTime time.Duration
	// Admitted and Rejected partition the batch.
	Admitted int
	Rejected int
}

// RoundStats summarizes a completed round.
type RoundStats struct {
	// Round is the round's sequence number.
	Round uint64
	// Submissions is how many submissions the round accepted.
	Submissions int
	// Messages is how many anonymized plaintexts the round produced.
	Messages int
	// Iterations is T, the number of mixing iterations run.
	Iterations int
	// Duration is the wall-clock time of the whole mixing phase
	// (iterations plus the variant finale).
	Duration time.Duration
	// Drain is the seal→publish wall time: how long the sealed batch
	// waited in the queue plus its mixing — the continuous service's
	// end-to-end drain latency. One-shot rounds report 0.
	Drain time.Duration
	// PerIteration holds one entry per mixing iteration, in order.
	PerIteration []IterationStats
	// Shuffles, ReEncs and ProofsVerified total the work across
	// iterations.
	Shuffles       int
	ReEncs         int
	ProofsVerified int
	// Workers is the parallel mixing engine's per-group pool size
	// (constant across a round's iterations); WorkerBusy totals the
	// workers' in-task time across the whole round.
	Workers    int
	WorkerBusy time.Duration
	// Ingest reports the round's admission-control and round-scheduler
	// accounting.
	Ingest IngestStats
}

// Utilization reports the round-wide fraction of worker-pool capacity
// spent executing crypto tasks (see IterationStats.Utilization).
func (s RoundStats) Utilization() float64 {
	var slots, busy time.Duration
	for _, it := range s.PerIteration {
		slots += time.Duration(it.Workers*it.ActiveGroups) * it.Duration
		busy += it.WorkerBusy
	}
	if slots <= 0 {
		return 0
	}
	return float64(busy) / float64(slots)
}

// Observer receives lifecycle callbacks from a Network and its rounds.
// Any field may be nil; nil callbacks are skipped. Callbacks run
// synchronously on the calling goroutine — SubmissionAccepted may fire
// concurrently from many submitting goroutines, so implementations
// must be safe for concurrent use; keep all callbacks cheap.
type Observer struct {
	// RoundOpened fires when a round starts accepting submissions.
	RoundOpened func(round uint64)
	// SubmissionAccepted fires for every accepted submission.
	SubmissionAccepted func(round uint64, user, gid int)
	// AdmissionBatch fires once per batch the admission plane pushes
	// through the combined proof verification (Round.SubmitEncodedBatch).
	// Individual acceptances still fire SubmissionAccepted.
	AdmissionBatch func(round uint64, stats AdmitBatchStats)
	// RoundSealed fires when the continuous service's round scheduler
	// seals a round — at its RoundInterval deadline or its target batch
	// size, whichever came first. The stats carry the ingestion queue
	// depth and the rounds-in-flight count at seal time.
	RoundSealed func(round uint64, ingest IngestStats)
	// IterationDone fires after each mixing iteration. Under a pipelined
	// service, iterations of different rounds interleave; key off the
	// stats' Round field.
	IterationDone func(IterationStats)
	// RoundMixed fires when a round completes successfully.
	RoundMixed func(RoundStats)
	// RoundFailed fires when a round aborts; err is classified by the
	// package's error taxonomy (errors.Is against ErrTrapTripped etc.).
	RoundFailed func(round uint64, err error)
}

// SetObserver installs the network's observer; rounds opened afterwards
// (and the legacy Run path) report through it. Passing nil removes it.
func (n *Network) SetObserver(obs *Observer) { n.obs.Store(&observerBox{obs}) }

// observerBox wraps the pointer so atomic.Value accepts a nil observer.
type observerBox struct{ obs *Observer }

func (n *Network) observer() *Observer {
	if v, ok := n.obs.Load().(*observerBox); ok {
		return v.obs
	}
	return nil
}

// statsFromResult converts a protocol round result into public stats.
func statsFromResult(res *protocol.RoundResult, submissions int) RoundStats {
	st := RoundStats{
		Round:       res.Round,
		Submissions: submissions,
		Messages:    len(res.Messages),
		Iterations:  len(res.Iterations),
		Duration:    res.Duration,
		Ingest: IngestStats{
			Admitted:    res.Admitted,
			Rejected:    res.Rejected,
			SealedBatch: res.SealedBatch,
		},
	}
	for _, it := range res.Iterations {
		st.PerIteration = append(st.PerIteration, IterationStats{
			Round:          it.Round,
			Layer:          it.Layer,
			Duration:       it.Duration,
			Messages:       it.Messages,
			Shuffles:       it.Shuffles,
			ReEncs:         it.ReEncs,
			ProofsVerified: it.ProofsChecked,
			Workers:        it.Workers,
			ActiveGroups:   it.ActiveGroups,
			WorkerBusy:     it.WorkerBusy,
			Members:        it.Members,
		})
		st.Shuffles += it.Shuffles
		st.ReEncs += it.ReEncs
		st.ProofsVerified += it.ProofsChecked
		st.Workers = it.Workers
		st.WorkerBusy += it.WorkerBusy
	}
	return st
}

// hooksFor builds the protocol-layer callbacks that forward to the
// observer's IterationDone.
func (n *Network) hooksFor() *protocol.RoundHooks {
	obs := n.observer()
	if obs == nil || obs.IterationDone == nil {
		return nil
	}
	return &protocol.RoundHooks{
		IterationDone: func(it protocol.IterationStats) {
			obs.IterationDone(IterationStats{
				Round:          it.Round,
				Layer:          it.Layer,
				Duration:       it.Duration,
				Messages:       it.Messages,
				Shuffles:       it.Shuffles,
				ReEncs:         it.ReEncs,
				ProofsVerified: it.ProofsChecked,
				Workers:        it.Workers,
				ActiveGroups:   it.ActiveGroups,
				WorkerBusy:     it.WorkerBusy,
				Members:        it.Members,
			})
		},
	}
}
