package atom

import (
	"fmt"

	"atom/internal/dialing"
	"atom/internal/ecc"
)

// DialRequestSize is the wire size of one dialing request. (The paper
// quotes ~80 bytes for its minimal scheme; ours is 102 with stdlib AEAD
// framing, see internal/dialing.)
const DialRequestSize = dialing.RequestSize

// DialMessageSize is the Config.MessageSize a dialing deployment must
// use: the request plus the protocol's 2-byte padding frame.
const DialMessageSize = DialRequestSize + 2

// DialIdentity is a user's long-term dialing identity: the keypair under
// which others encrypt dial requests to them.
type DialIdentity struct {
	id *dialing.Identity
}

// NewDialIdentity generates a fresh identity.
func NewDialIdentity() (*DialIdentity, error) {
	id, err := dialing.NewIdentity(entropy())
	if err != nil {
		return nil, err
	}
	return &DialIdentity{id: id}, nil
}

// Public returns the identity's public key encoding — what callers need
// to dial this user.
func (d *DialIdentity) Public() []byte { return d.id.Keys.PK.Bytes() }

// MailboxID returns the identifier that routes this user's incoming
// dials to a mailbox (mailbox = id mod m, §5).
func (d *DialIdentity) MailboxID() uint64 { return d.id.ID() }

// OpenDialRequest attempts to decrypt one downloaded mailbox entry; on
// success it returns the caller's public key encoding.
func (d *DialIdentity) OpenDialRequest(req []byte) ([]byte, bool) {
	pk, ok := d.id.Open(req)
	if !ok {
		return nil, false
	}
	return pk.Bytes(), true
}

// NewDialRequest builds the dialing message Alice sends through Atom to
// hand Bob her public key: recipientPublic is Bob's Public() encoding,
// callerPublic is the key Alice wants to deliver (typically her own
// DialIdentity's Public()).
func NewDialRequest(recipientPublic, callerPublic []byte) ([]byte, error) {
	bobPK, err := ecc.PointFromBytes(recipientPublic)
	if err != nil {
		return nil, fmt.Errorf("atom: bad recipient key: %w", err)
	}
	alicePK, err := ecc.PointFromBytes(callerPublic)
	if err != nil {
		return nil, fmt.Errorf("atom: bad caller key: %w", err)
	}
	return dialing.Dial(bobPK, alicePK, entropy())
}

// Mailboxes sorts a round's anonymized dialing output into m mailboxes
// for download (§5: "each dialing message is forwarded to mailbox id
// mod m").
type Mailboxes struct {
	mb *dialing.Mailboxes
}

// NewMailboxes allocates m mailboxes and sorts the round result into
// them.
func NewMailboxes(m int, result *Result) (*Mailboxes, error) {
	return NewMailboxesFromMessages(m, result.Messages)
}

// NewMailboxesFromMessages allocates m mailboxes and sorts any
// anonymized batch into them — the continuous-service path, where each
// RoundOutcome's Messages become a fresh set of mailboxes as rounds
// publish back to back.
func NewMailboxesFromMessages(m int, msgs [][]byte) (*Mailboxes, error) {
	mb, err := dialing.NewMailboxes(m)
	if err != nil {
		return nil, err
	}
	mb.Deliver(msgs)
	return &Mailboxes{mb: mb}, nil
}

// BoxFor returns the mailbox contents a recipient with the given
// MailboxID downloads.
func (m *Mailboxes) BoxFor(id uint64) [][]byte {
	return m.mb.Box(dialing.MailboxFor(id, m.mb.Size()))
}

// Total returns the number of well-formed requests delivered.
func (m *Mailboxes) Total() int { return m.mb.Total() }

// Dropped returns the number of malformed outputs discarded.
func (m *Mailboxes) Dropped() int { return m.mb.Dropped() }

// DialNoise parameterizes the differential-privacy cover traffic an
// anytrust group injects so observers cannot count a user's incoming
// calls (Vuvuzela's mechanism; the paper's evaluation uses μ = 13,000
// per server, §6.2).
type DialNoise struct {
	// Mu is the mean dummy count contributed per noise server.
	Mu float64
	// Scale is the Laplace noise scale.
	Scale float64
}

// SampleDummies draws a differentially-private dummy count and
// generates that many indistinguishable dummy dial requests, ready to
// submit through the network alongside real traffic.
func (dn DialNoise) SampleDummies() ([][]byte, error) {
	nc := dialing.NoiseConfig{Mu: dn.Mu, Scale: dn.Scale}
	rnd := entropy()
	count, err := nc.SampleDummyCount(rnd)
	if err != nil {
		return nil, err
	}
	return dialing.GenerateDummies(count, rnd)
}
