// Command pipeline demonstrates the paper's §4.7 pipelined
// organization through the Round API: round r+1 opens and ingests
// submissions while round r is still mixing, so the network's intake
// never idles behind the mixing latency. An Observer reports
// per-iteration latency as the rounds overlap.
//
//	go run ./examples/pipeline
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"atom"
)

func main() {
	net, err := atom.NewNetwork(atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 64,
		Variant:     atom.Trap,
		Iterations:  3,
		Seed:        []byte("pipeline-demo"),
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	// The Observer hook surface replaces ad-hoc stopwatches: every
	// iteration and round completion reports in.
	net.SetObserver(&atom.Observer{
		IterationDone: func(it atom.IterationStats) {
			fmt.Printf("  [observer] round %d iteration %d: %d ciphertexts in %v\n",
				it.Round, it.Layer, it.Messages, it.Duration.Round(time.Millisecond))
		},
		RoundMixed: func(st atom.RoundStats) {
			fmt.Printf("  [observer] round %d done: %d msgs, %v total\n",
				st.Round, st.Messages, st.Duration.Round(time.Millisecond))
		},
	})

	ctx := context.Background()
	submit := func(r *atom.Round, batch int) {
		for u := 0; u < 8; u++ {
			msg := fmt.Sprintf("batch %d message %d", batch, u)
			if err := r.Submit(u, []byte(msg)); err != nil {
				log.Fatalf("batch %d user %d: %v", batch, u, err)
			}
		}
	}

	// Round A opens and fills.
	roundA, err := net.OpenRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	submit(roundA, 0)
	fmt.Printf("round %d filled with %d submissions\n", roundA.ID(), roundA.Pending())

	// Round A mixes in the background…
	type outcome struct {
		res *atom.Result
		err error
	}
	mixA := make(chan outcome, 1)
	go func() {
		res, err := roundA.Mix(ctx)
		mixA <- outcome{res, err}
	}()

	// …while round B opens and ingests the next batch. This is the
	// pipelining: intake for batch 1 overlaps the mixing of batch 0.
	roundB, err := net.OpenRound(ctx)
	if err != nil {
		log.Fatal(err)
	}
	submit(roundB, 1)
	fmt.Printf("round %d filled with %d submissions while round %d was mixing\n",
		roundB.ID(), roundB.Pending(), roundA.ID())

	a := <-mixA
	if a.err != nil {
		log.Fatalf("round %d: %v", roundA.ID(), a.err)
	}
	resB, err := roundB.Mix(ctx)
	if err != nil {
		log.Fatalf("round %d: %v", roundB.ID(), err)
	}

	fmt.Printf("\nround %d output (%d messages):\n", roundA.ID(), len(a.res.Messages))
	for _, m := range a.res.Messages {
		fmt.Printf("  %s\n", m)
	}
	fmt.Printf("round %d output (%d messages):\n", roundB.ID(), len(resB.Messages))
	for _, m := range resB.Messages {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("\nWith T iterations per round and G groups per layer, a pipelined")
	fmt.Println("deployment keeps every layer busy: batch latency is unchanged but")
	fmt.Println("throughput multiplies by the number of in-flight batches (§4.7).")
}
