// Command faultrecovery demonstrates Atom's churn tolerance (paper
// §4.5): many-trust groups absorb up to h−1 failures without missing a
// beat, and buddy-group share escrow recovers a group that loses more.
//
//	go run ./examples/faultrecovery
package main

import (
	"errors"
	"fmt"
	"log"

	"atom"
)

func main() {
	// h = 2: groups of 4 where any 3 members can mix (threshold keys via
	// DVSS), each group escrowing its shares with 2 buddy groups.
	net, err := atom.NewNetwork(atom.Config{
		Servers:       16,
		Groups:        4,
		GroupSize:     4,
		HonestServers: 2,
		Buddies:       2,
		MessageSize:   64,
		Variant:       atom.NIZK,
		Iterations:    3,
		Seed:          []byte("faultrecovery-demo"),
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	submit := func() {
		for user := 0; user < 8; user++ {
			msg := fmt.Sprintf("resilient message %d", user)
			if err := net.SubmitMessage(user, []byte(msg)); err != nil {
				log.Fatalf("user %d: %v", user, err)
			}
		}
	}

	// --- Round 1: one crash per group is within the h−1 budget. ---
	fmt.Println("round 1: crashing one member of every group (within budget)")
	for gid := 0; gid < net.Groups(); gid++ {
		if err := net.FailGroupMember(gid, 1); err != nil {
			log.Fatal(err)
		}
	}
	submit()
	res, err := net.Run()
	if err != nil {
		log.Fatalf("round 1 should have survived: %v", err)
	}
	fmt.Printf("round 1 delivered %d messages despite 4 crashed servers\n\n", len(res.Messages))

	// --- Round 2: a second crash in group 0 exceeds the budget. ---
	fmt.Println("round 2: crashing a second member of group 0 (beyond budget)")
	if err := net.FailGroupMember(0, 2); err != nil {
		log.Fatal(err)
	}
	need, err := net.NeedsRecovery(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group 0 needs recovery: %v\n", need)

	// Attempting to mix with a dead group fails with a typed error the
	// operator can match on — errors.Is, not string parsing.
	submit()
	if _, err := net.Run(); !errors.Is(err, atom.ErrRecoveryNeeded) {
		log.Fatalf("expected ErrRecoveryNeeded, got: %v", err)
	}
	fmt.Println("mixing refused: errors.Is(err, atom.ErrRecoveryNeeded) — recovering…")
	if err := net.ResetRound(); err != nil { // discard the aborted round
		log.Fatal(err)
	}

	// Buddy-group recovery: replacement servers collect escrowed share
	// pieces from a live buddy group, reconstruct the lost shares, and
	// verify them against the group's public commitments.
	if err := net.Recover(0, []int{100, 101}); err != nil {
		log.Fatalf("recovery failed: %v", err)
	}
	need, _ = net.NeedsRecovery(0)
	fmt.Printf("after buddy-group recovery, group 0 needs recovery: %v\n", need)

	submit()
	res, err = net.Run()
	if err != nil {
		log.Fatalf("post-recovery round failed: %v", err)
	}
	fmt.Printf("round 2 delivered %d messages with the recovered group\n", len(res.Messages))
	fmt.Println("\nThe group key never changed: users and neighbor groups were")
	fmt.Println("untouched by the failure — exactly the paper's design goal.")
}
