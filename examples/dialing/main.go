// Command dialing demonstrates Atom's dialing application (paper §5):
// Alice anonymously hands Bob her public key — the bootstrapping step
// private-messaging systems like Vuvuzela and Alpenhorn need — with
// differential-privacy cover traffic hiding how many calls each user
// receives.
//
//	go run ./examples/dialing
package main

import (
	"context"
	"fmt"
	"log"

	"atom"
)

func main() {
	net, err := atom.NewNetwork(atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: atom.DialMessageSize,
		Variant:     atom.Trap,
		Iterations:  3,
		Seed:        []byte("dialing-demo"),
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}

	// A dialing deployment runs rounds on a fixed schedule; each round
	// is a handle that any number of callers submit into concurrently.
	round, err := net.OpenRound(context.Background())
	if err != nil {
		log.Fatalf("opening round: %v", err)
	}

	// Long-term identities. Bob's public key is known (e.g., from a key
	// server); his mailbox id derives from it.
	alice, err := atom.NewDialIdentity()
	if err != nil {
		log.Fatal(err)
	}
	bob, err := atom.NewDialIdentity()
	if err != nil {
		log.Fatal(err)
	}

	// Alice dials Bob: her request reveals nothing to the network about
	// either party beyond the mailbox index.
	req, err := atom.NewDialRequest(bob.Public(), alice.Public())
	if err != nil {
		log.Fatal(err)
	}
	if err := round.Submit(0, req); err != nil {
		log.Fatal(err)
	}

	// Other users dial each other (cover traffic from real usage)…
	for user := 1; user < 6; user++ {
		x, _ := atom.NewDialIdentity()
		y, _ := atom.NewDialIdentity()
		r, err := atom.NewDialRequest(x.Public(), y.Public())
		if err != nil {
			log.Fatal(err)
		}
		if err := round.Submit(user, r); err != nil {
			log.Fatal(err)
		}
	}

	// …and an anytrust noise group injects differentially-private
	// dummies so mailbox sizes leak (almost) nothing (Vuvuzela's
	// mechanism; the paper's deployment uses μ = 13,000 per server).
	noise := atom.DialNoise{Mu: 6, Scale: 2}
	dummies, err := noise.SampleDummies()
	if err != nil {
		log.Fatal(err)
	}
	user := 6
	for _, d := range dummies {
		if err := round.Submit(user, d); err != nil {
			log.Fatal(err)
		}
		user++
	}
	fmt.Printf("submitted 6 real dials + %d DP dummies\n", len(dummies))

	res, err := round.Mix(context.Background())
	if err != nil {
		log.Fatalf("round failed: %v", err)
	}

	// The exit side sorts the anonymized requests into mailboxes.
	boxes, err := atom.NewMailboxes(8, res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round complete: %d requests in 8 mailboxes (%d malformed dropped)\n",
		boxes.Total(), boxes.Dropped())

	// Bob downloads his mailbox and trial-decrypts.
	download := boxes.BoxFor(bob.MailboxID())
	fmt.Printf("Bob downloads mailbox %d: %d entries\n", bob.MailboxID()%8, len(download))
	found := 0
	for _, entry := range download {
		if callerPK, ok := bob.OpenDialRequest(entry); ok {
			found++
			match := "an unknown caller"
			if string(callerPK) == string(alice.Public()) {
				match = "Alice"
			}
			fmt.Printf("  dial from %s — shared key established\n", match)
		}
	}
	if found == 0 {
		log.Fatal("Bob found no calls; expected Alice's")
	}
	fmt.Println("\nNeither the network nor the other users learn who dialed whom;")
	fmt.Println("the dummies hide even the number of calls Bob received.")
}
