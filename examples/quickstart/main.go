// Command quickstart is the smallest complete Atom round: a 12-server
// network (4 anytrust groups of 3) anonymously broadcasts eight short
// messages using the NIZK variant, through the Round API — open a
// round, submit concurrently, mix under a deadline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"atom"
)

func main() {
	// A deployment everyone agrees on: the beacon seed fixes the group
	// formation, and every group runs distributed key generation.
	net, err := atom.NewNetwork(atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 64,
		Variant:     atom.NIZK,
		Iterations:  3,
		Seed:        []byte("quickstart"),
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	fmt.Printf("network up: %d groups, NIZK variant\n", net.Groups())

	// Open a round: the handle's Submit is safe for concurrent use, so
	// the eight users submit from their own goroutines. Each message is
	// padded, encrypted to the user's entry group with a proof of
	// plaintext knowledge, and queued.
	ctx := context.Background()
	round, err := net.OpenRound(ctx)
	if err != nil {
		log.Fatalf("opening round: %v", err)
	}
	var wg sync.WaitGroup
	for user := 0; user < 8; user++ {
		wg.Add(1)
		go func(user int) {
			defer wg.Done()
			msg := fmt.Sprintf("anonymous note #%d", user)
			if err := round.Submit(user, []byte(msg)); err != nil {
				log.Fatalf("user %d: %v", user, err)
			}
		}(user)
	}
	wg.Wait()
	fmt.Printf("%d messages submitted to round %d\n", round.Pending(), round.ID())

	// Mix the round under a deadline: every group shuffles and
	// re-encrypts with verifiable proofs, batches hop through the
	// square network, and the exit groups reveal the anonymized batch.
	mixCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	defer cancel()
	res, err := round.Mix(mixCtx)
	if err != nil {
		// Failures carry a typed taxonomy: errors.Is distinguishes a
		// tripped defense from a cancellation or a dead group.
		switch {
		case errors.Is(err, atom.ErrProofRejected):
			log.Fatalf("a server cheated and was caught: %v", err)
		case errors.Is(err, atom.ErrRoundAborted):
			log.Fatalf("round aborted: %v", err)
		default:
			log.Fatalf("round failed: %v", err)
		}
	}
	fmt.Printf("round complete — %d anonymized messages:\n", len(res.Messages))
	for _, m := range res.Messages {
		fmt.Printf("  %s\n", m)
	}
	fmt.Printf("(%d iterations in %v; %d NIZK proofs verified)\n",
		res.Stats.Iterations, res.Stats.Duration.Round(time.Millisecond), res.Stats.ProofsVerified)
	fmt.Println("(the output order is a cryptographic shuffle — no server, and no")
	fmt.Println(" observer of all traffic, can link a message to its sender)")
}
