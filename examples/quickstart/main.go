// Command quickstart is the smallest complete Atom round: a 12-server
// network (4 anytrust groups of 3) anonymously broadcasts eight short
// messages using the NIZK variant.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"atom"
)

func main() {
	// A deployment everyone agrees on: the beacon seed fixes the group
	// formation, and every group runs distributed key generation.
	net, err := atom.NewNetwork(atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 64,
		Variant:     atom.NIZK,
		Iterations:  3,
		Seed:        []byte("quickstart"),
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	fmt.Printf("network up: %d groups, NIZK variant\n", net.Groups())

	// Eight users submit. Each message is padded, encrypted to the
	// user's entry group with a proof of plaintext knowledge, and queued.
	for user := 0; user < 8; user++ {
		msg := fmt.Sprintf("anonymous note #%d", user)
		if err := net.SubmitMessage(user, []byte(msg)); err != nil {
			log.Fatalf("user %d: %v", user, err)
		}
	}
	fmt.Println("8 messages submitted")

	// Run the round: every group shuffles and re-encrypts with
	// verifiable proofs, batches hop through the square network, and the
	// exit groups reveal the anonymized batch.
	res, err := net.Run()
	if err != nil {
		log.Fatalf("round failed: %v", err)
	}
	fmt.Printf("round complete — %d anonymized messages:\n", len(res.Messages))
	for _, m := range res.Messages {
		fmt.Printf("  %s\n", m)
	}
	fmt.Println("(the output order is a cryptographic shuffle — no server, and no")
	fmt.Println(" observer of all traffic, can link a message to its sender)")
}
