// Command continuous demonstrates the continuous service pipeline: a
// Network served by a round scheduler (seal at deadline or at target
// batch size), the microblog application posting into whichever round
// is open, and each published round landing on the bulletin board —
// no explicit Mix call anywhere.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"atom"
)

func main() {
	net, err := atom.NewNetwork(atom.Config{
		Servers: 12, Groups: 4, GroupSize: 3,
		MessageSize: atom.MicroblogMessageSize,
		Variant:     atom.Trap,
		Iterations:  3,
		Seed:        []byte("example-continuous"),
	})
	if err != nil {
		log.Fatal(err)
	}
	mb, err := atom.NewMicroblog(net)
	if err != nil {
		log.Fatal(err)
	}

	// Seal whenever 6 posts have landed (or after 2s of quiet); mix up
	// to two rounds back to back.
	svc, err := net.Serve(context.Background(), atom.ServeOptions{
		RoundInterval: 2 * time.Second,
		MaxBatch:      6,
		MaxInFlight:   2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Posters fire and forget: the scheduler decides when their round
	// seals. Three rounds' worth of posts, submitted back to back.
	posts := []string{
		"round-tripping the first batch", "anonymity loves company",
		"the mix is never idle", "sealed at capacity, not by hand",
		"post number five", "post number six",
		"the second round is already open", "while the first one mixes",
		"layer 0 of round two overlaps", "round one's later layers",
		"eleventh post", "twelfth post",
		"a third round", "rides the same pipeline", "without waiting",
		"for anything", "to drain", "first",
	}
	for i, text := range posts {
		if err := mb.PostOpen(svc, i, text); err != nil {
			log.Fatalf("post %d: %v", i, err)
		}
	}

	// Drain three published rounds off the results stream onto the
	// board.
	for rounds := 0; rounds < 3; rounds++ {
		out := <-svc.Results()
		published, err := mb.PublishOutcome(&out)
		if err != nil {
			log.Fatalf("round %d: %v", out.Round, err)
		}
		fmt.Printf("round %d published %d posts (batch of %d admitted, %d in flight at seal)\n",
			out.Round, len(published), out.Stats.Ingest.Admitted, out.Stats.Ingest.InFlight)
	}
	svc.Close()

	board := mb.Board()
	fmt.Printf("bulletin board holds %d posts across %d rounds\n", len(board), 3)
	for _, p := range board[:3] {
		fmt.Printf("  r%d/%d: %s\n", p.Round, p.Seq, p.Message)
	}
}
