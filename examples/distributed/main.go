// Example distributed: the full Atom round as message-passing actors.
//
// The in-process Deployment mixes every group by direct method calls;
// the distributed engine (internal/distributed) runs the identical
// round — same member engine, same proofs, same error taxonomy — as
// independent member actors exchanging framed messages over a
// transport. This walkthrough runs the same deployment three ways:
//
//  1. in-process (the reference result),
//  2. actors over the in-memory network with a scaled-down WAN latency
//     model (the paper's §6 emulated 40–160 ms links),
//  3. actors over real TCP loopback sockets, with one member hosted the
//     way `atomd -member` hosts it: joined over the wire.
//
// All three recover exactly the same plaintext set.
package main

import (
	"context"
	"crypto/rand"
	"fmt"
	"log"
	"time"

	"atom/internal/distributed"
	"atom/internal/protocol"
	"atom/internal/transport"
)

func main() {
	cfg := protocol.Config{
		NumServers:  12,
		NumGroups:   3,
		GroupSize:   2,
		MessageSize: 32,
		Variant:     protocol.VariantNIZK,
		Iterations:  3,
		Seed:        []byte("example-distributed"),
	}
	d, err := protocol.NewDeployment(cfg)
	if err != nil {
		log.Fatal(err)
	}
	vcfg := d.Config()
	client, err := protocol.NewClient(&vcfg)
	if err != nil {
		log.Fatal(err)
	}

	submit := func(rs *protocol.RoundState) {
		for u := 0; u < 6; u++ {
			gid := u % d.NumGroups()
			gpk, _ := d.GroupPK(gid)
			sub, err := client.Submit([]byte(fmt.Sprintf("hello-%d", u)), gpk, gid, rand.Reader)
			if err != nil {
				log.Fatal(err)
			}
			if err := rs.SubmitUser(u, sub); err != nil {
				log.Fatal(err)
			}
		}
	}

	// --- 1. Reference: the in-process mixer. ---
	rs, _ := d.OpenRound()
	submit(rs)
	res, err := d.RunRoundCtx(context.Background(), rs, nil)
	if err != nil {
		log.Fatal(err)
	}
	reference := fmt.Sprintf("%q", res.Messages)
	fmt.Printf("in-process:    %d messages in %v: %s\n", len(res.Messages), res.Duration.Round(time.Millisecond), reference)

	// --- 2. The same round over the latency-modeled memnet. ---
	// Every group member becomes an actor; batches hop between groups
	// over links with deterministic pairwise delay.
	net := transport.NewMemNetwork(transport.PairwiseLatency("example", 2*time.Millisecond, 8*time.Millisecond), 256)
	mem, err := distributed.NewCluster(d, distributed.Options{Attach: distributed.MemAttach(net)})
	if err != nil {
		log.Fatal(err)
	}
	defer mem.Close()
	rs, _ = d.OpenRound()
	submit(rs)
	res, err = mem.Run(context.Background(), rs, &protocol.RoundHooks{
		IterationDone: func(it protocol.IterationStats) {
			fmt.Printf("  memnet iteration %d: %d msgs, %d proofs, %v\n", it.Layer, it.Messages, it.ProofsChecked, it.Duration.Round(time.Millisecond))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("memnet actors: %d messages in %v (%d B on the wire, set match: %v)\n",
		len(res.Messages), res.Duration.Round(time.Millisecond), net.TotalBytes(), fmt.Sprintf("%q", res.Messages) == reference)

	// --- 3. Real sockets: TCP loopback, one member joined remotely. ---
	// The remote member is exactly what `atomd -member -listen :9100`
	// runs: a HostMember loop on a TCP endpoint, configured by the
	// coordinator's join message.
	remote, err := transport.ListenTCP("127.0.0.1:0", 1024)
	if err != nil {
		log.Fatal(err)
	}
	hostCtx, stopHost := context.WithCancel(context.Background())
	defer stopHost()
	go func() { _ = distributed.HostMember(hostCtx, remote) }()

	tcp, err := distributed.NewCluster(d, distributed.Options{
		Attach: distributed.TCPAttach("127.0.0.1"),
		Remote: map[distributed.MemberID]string{{GID: 1, Pos: 1}: remote.Addr()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tcp.Close()
	rs, _ = d.OpenRound()
	submit(rs)
	res, err = tcp.Run(context.Background(), rs, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tcp actors:    %d messages in %v (member g1/m1 hosted at %s, set match: %v)\n",
		len(res.Messages), res.Duration.Round(time.Millisecond), remote.Addr(), fmt.Sprintf("%q", res.Messages) == reference)
}
