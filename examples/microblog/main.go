// Command microblog demonstrates Atom's anonymous microblogging
// application (paper §5): activists post Tweet-length messages through
// the trap-variant network; the exit groups publish the anonymized
// batch to a public bulletin board.
//
//	go run ./examples/microblog
package main

import (
	"fmt"
	"log"

	"atom"
)

func main() {
	// Trap variant: each post travels with a committed trap message; if
	// any server tampers, the trustees destroy the round key.
	net, err := atom.NewNetwork(atom.Config{
		Servers:     16,
		Groups:      4,
		GroupSize:   4,
		MessageSize: atom.MicroblogMessageSize, // 160 bytes, like the paper
		Variant:     atom.Trap,
		Iterations:  3,
		Seed:        []byte("microblog-demo"),
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	blog, err := atom.NewMicroblog(net)
	if err != nil {
		log.Fatalf("attaching microblog: %v", err)
	}

	posts := []string{
		"The vote count in district 9 does not match the posted tallies.",
		"Meet at the old library steps, 18:00. Bring candles, not phones.",
		"Director signed the waiver himself — documents to follow.",
		"They cannot arrest an idea. Round 2 tomorrow.",
		"If this account goes quiet, the mirrors have the archive.",
		"Checkpoint on 5th moved two blocks north. Route around via the park.",
		"Medical volunteers: white armbands, north entrance.",
		"Remember: film everything, upload nothing until you are home.",
	}
	for user, text := range posts {
		if err := blog.Post(user, text); err != nil {
			log.Fatalf("user %d: %v", user, err)
		}
	}
	fmt.Printf("%d posts submitted through %d groups (trap variant)\n", len(posts), net.Groups())

	published, err := blog.Publish()
	if err != nil {
		log.Fatalf("round failed: %v", err)
	}
	fmt.Println("\n=== public bulletin board ===")
	for _, p := range published {
		fmt.Printf("[round %d / %02d] %s\n", p.Round, p.Seq, p.Message)
	}
	fmt.Println("\nEvery server touched only a fraction of the batch, yet each post")
	fmt.Println("is anonymous among all honest users of the round.")
}
