// Command evaluation regenerates every table and figure of the paper's
// evaluation section (§6) in text form: Tables 3, 4, 12 and Figures 5,
// 6, 7, 9, 10, 11, 13.
//
// By default the cost model is calibrated against this machine's real
// cryptography (a few seconds of measurement); pass -paper to use the
// paper's published Table 3 numbers instead.
//
//	go run ./examples/evaluation [-paper]
package main

import (
	"flag"
	"fmt"
	"log"

	"atom"
)

func main() {
	paper := flag.Bool("paper", false, "use the paper's published primitive costs instead of measuring")
	flag.Parse()

	ev, err := atom.NewEvaluation(!*paper)
	if err != nil {
		log.Fatalf("building evaluation harness: %v", err)
	}
	out, err := ev.All()
	if err != nil {
		log.Fatalf("evaluation failed: %v", err)
	}
	fmt.Print(out)

	// A real (not simulated) round, instrumented through the public
	// Observer/RoundStats hooks.
	live, _, err := ev.LiveRound(atom.Config{
		Servers: 12, Groups: 4, GroupSize: 3,
		MessageSize: 64, Variant: atom.Trap, Iterations: 3,
		Seed: []byte("evaluation-live"),
	}, 16)
	if err != nil {
		log.Fatalf("live round failed: %v", err)
	}
	fmt.Println()
	fmt.Print(live)
}
