package bulletin

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestPublishAndRead(t *testing.T) {
	b := NewBoard()
	msgs := [][]byte{[]byte("first"), []byte("second")}
	if err := b.Publish(0, msgs); err != nil {
		t.Fatal(err)
	}
	posts := b.Round(0)
	if len(posts) != 2 {
		t.Fatalf("round 0 has %d posts, want 2", len(posts))
	}
	for i, p := range posts {
		if p.Round != 0 || p.Seq != i || !bytes.Equal(p.Message, msgs[i]) {
			t.Errorf("post %d = %+v", i, p)
		}
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2", b.Len())
	}
}

func TestPublishRejectsDuplicateRound(t *testing.T) {
	b := NewBoard()
	b.Publish(1, [][]byte{[]byte("x")})
	if err := b.Publish(1, [][]byte{[]byte("y")}); err == nil {
		t.Fatal("duplicate round published")
	}
}

func TestPublishCopiesMessages(t *testing.T) {
	b := NewBoard()
	msg := []byte("mutable")
	b.Publish(0, [][]byte{msg})
	msg[0] = 'X'
	if string(b.Round(0)[0].Message) != "mutable" {
		t.Fatal("board retained a reference to caller memory")
	}
}

func TestAllOrdersAcrossRounds(t *testing.T) {
	b := NewBoard()
	b.Publish(2, [][]byte{[]byte("c")})
	b.Publish(0, [][]byte{[]byte("a1"), []byte("a2")})
	b.Publish(1, [][]byte{[]byte("b")})
	all := b.All()
	wantOrder := []string{"a1", "a2", "b", "c"}
	if len(all) != len(wantOrder) {
		t.Fatalf("All returned %d posts", len(all))
	}
	for i, p := range all {
		if string(p.Message) != wantOrder[i] {
			t.Errorf("position %d: %q, want %q", i, p.Message, wantOrder[i])
		}
	}
	rounds := b.Rounds()
	if len(rounds) != 3 || rounds[0] != 0 || rounds[2] != 2 {
		t.Errorf("Rounds = %v", rounds)
	}
}

func TestEmptyRound(t *testing.T) {
	b := NewBoard()
	if got := b.Round(42); len(got) != 0 {
		t.Errorf("unpublished round returned %d posts", len(got))
	}
	if err := b.Publish(42, nil); err != nil {
		t.Fatal(err)
	}
	if got := b.Round(42); len(got) != 0 {
		t.Errorf("empty round returned %d posts", len(got))
	}
}

func TestConcurrentPublishAndRead(t *testing.T) {
	b := NewBoard()
	var wg sync.WaitGroup
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b.Publish(uint64(r), [][]byte{[]byte(fmt.Sprintf("round %d", r))})
		}(r)
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b.Round(uint64(r))
			b.Len()
		}(r)
	}
	wg.Wait()
	if b.Len() != 16 {
		t.Errorf("Len = %d, want 16", b.Len())
	}
}
