// Package bulletin implements the public bulletin board that Atom's
// exit servers publish anonymized microblog messages to (paper §5:
// "the servers then put the plaintext messages on a public bulletin
// board where other users can read them").
//
// The board is an append-only, per-round log. It is deliberately dumb:
// all anonymity comes from the mix-net; the board just has to be public
// and consistent.
package bulletin

import (
	"fmt"
	"sort"
	"sync"
)

// Post is one published message.
type Post struct {
	Round   uint64
	Seq     int // position within the round's batch
	Message []byte
}

// Board is a thread-safe append-only bulletin board.
type Board struct {
	mu     sync.RWMutex
	rounds map[uint64][]Post
}

// NewBoard creates an empty board.
func NewBoard() *Board {
	return &Board{rounds: make(map[uint64][]Post)}
}

// Publish appends a round's batch of messages. Publishing the same round
// twice is an error: exit groups publish exactly once per round.
func (b *Board) Publish(round uint64, msgs [][]byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.rounds[round]; dup {
		return fmt.Errorf("bulletin: round %d already published", round)
	}
	posts := make([]Post, len(msgs))
	for i, m := range msgs {
		posts[i] = Post{Round: round, Seq: i, Message: append([]byte(nil), m...)}
	}
	b.rounds[round] = posts
	return nil
}

// Round returns the posts of one round (nil if unpublished).
func (b *Board) Round(round uint64) []Post {
	b.mu.RLock()
	defer b.mu.RUnlock()
	posts := b.rounds[round]
	out := make([]Post, len(posts))
	copy(out, posts)
	return out
}

// All returns every post in (round, seq) order.
func (b *Board) All() []Post {
	b.mu.RLock()
	defer b.mu.RUnlock()
	var out []Post
	for _, posts := range b.rounds {
		out = append(out, posts...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Round != out[j].Round {
			return out[i].Round < out[j].Round
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// Rounds returns the published round numbers in ascending order.
func (b *Board) Rounds() []uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]uint64, 0, len(b.rounds))
	for r := range b.rounds {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len returns the total number of posts.
func (b *Board) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	n := 0
	for _, posts := range b.rounds {
		n += len(posts)
	}
	return n
}
