package protocol

import (
	"crypto/rand"
	"testing"
	"testing/quick"

	"atom/internal/elgamal"
)

func TestTrapReportsCleanRound(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)

	// Snapshot commitments before RunRound's auto-reset, by computing
	// reports on synthetic exit payloads derived from a dry mixing pass:
	// run the round but capture ExitOutputs from the result.
	res, err := d.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	// After the reset the commitment sets are empty, so recomputing
	// reports over the same payloads must flag the now-unexpected traps.
	reports := d.TrapReports(res.ExitOutputs)
	if len(reports) != cfg.NumGroups {
		t.Fatalf("%d reports", len(reports))
	}
	sawViolation := false
	for _, r := range reports {
		if !r.TrapsOK {
			sawViolation = true
		}
	}
	if !sawViolation {
		t.Error("post-reset TrapReports should flag unexpected traps (commitment sets were cleared)")
	}
}

func TestTrapReportsClassification(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	// One submission so group 0 expects exactly one trap commitment.
	pk, _ := d.GroupPK(0)
	tpk, _ := d.TrusteePK()
	sub, err := c.SubmitTrap([]byte("classified"), pk, tpk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitTrapUser(0, sub); err != nil {
		t.Fatal(err)
	}

	// Build the exit payloads by hand: the user's real trap plus one
	// inner ciphertext payload.
	trap, err := makeTrap(0, cfg.PayloadBytes(), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	inner := make([]byte, cfg.PayloadBytes())
	inner[0] = kindMessage

	// Case 1: missing trap → group 0 reports TrapsOK = false.
	reports := d.TrapReports(map[int][][]byte{0: {inner}})
	if reports[0].TrapsOK {
		t.Error("missing committed trap not reported")
	}
	// Case 2: unexpected trap (not matching the commitment).
	reports = d.TrapReports(map[int][][]byte{0: {trap, inner}})
	if reports[0].TrapsOK {
		t.Error("unexpected trap accepted")
	}
	// Case 3: duplicate inner ciphertexts land at one checking group.
	reports = d.TrapReports(map[int][][]byte{0: {inner, inner}})
	ok := true
	for _, r := range reports {
		if !r.InnerOK {
			ok = false
		}
	}
	if ok {
		t.Error("duplicate inner ciphertexts not reported")
	}
}

func TestEndToEndQuickProperty(t *testing.T) {
	// Property: for random small message batches and both variants, a
	// clean round returns exactly the submitted multiset.
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	f := func(seed uint16, trapVariant bool) bool {
		variant := VariantNIZK
		if trapVariant {
			variant = VariantTrap
		}
		cfg := Config{
			NumServers:  8,
			NumGroups:   2,
			GroupSize:   2,
			MessageSize: 24,
			Variant:     variant,
			Iterations:  2,
			Seed:        []byte{byte(seed), byte(seed >> 8)},
		}
		d, err := NewDeployment(cfg)
		if err != nil {
			return false
		}
		c, err := NewClient(&cfg)
		if err != nil {
			return false
		}
		users := 2 + int(seed%5)
		want := map[string]int{}
		for u := 0; u < users; u++ {
			gid := u % 2
			pk, _ := d.GroupPK(gid)
			msg := []byte{byte(u), byte(seed), byte(seed >> 8)}
			want[string(msg)]++
			switch variant {
			case VariantNIZK:
				sub, err := c.Submit(msg, pk, gid, rand.Reader)
				if err != nil {
					return false
				}
				if err := d.SubmitUser(u, sub); err != nil {
					return false
				}
			case VariantTrap:
				tpk, _ := d.TrusteePK()
				sub, err := c.SubmitTrap(msg, pk, tpk, gid, rand.Reader)
				if err != nil {
					return false
				}
				if err := d.SubmitTrapUser(u, sub); err != nil {
					return false
				}
			}
		}
		res, err := d.RunRound()
		if err != nil {
			return false
		}
		got := map[string]int{}
		for _, m := range res.Messages {
			got[string(m)]++
		}
		if len(got) != len(want) {
			return false
		}
		for k, v := range want {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}

func TestExitOutputsCoverAllGroups(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 16)
	res, err := d.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ExitOutputs) != cfg.NumGroups {
		t.Fatalf("exit outputs from %d groups, want %d", len(res.ExitOutputs), cfg.NumGroups)
	}
	total := 0
	for gid, payloads := range res.ExitOutputs {
		if gid < 0 || gid >= cfg.NumGroups {
			t.Fatalf("exit output from unknown group %d", gid)
		}
		total += len(payloads)
	}
	if total != 16 {
		t.Fatalf("%d exit payloads, want 16", total)
	}
}

func TestTamperWithVectorStructure(t *testing.T) {
	// A malicious server that changes a vector's SHAPE (drops a
	// component) must be caught by the NIZK shuffle proof's shape check.
	cfg := testConfig(VariantNIZK)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)
	d.SetAdversary(&Adversary{
		Layer: 0, GID: 0, Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) == 0 || len(batch[0]) < 2 {
				return nil
			}
			out := make([]elgamal.Vector, len(batch))
			copy(out, batch)
			out[0] = batch[0][:len(batch[0])-1]
			return out
		},
	})
	if _, err := d.RunRound(); err == nil {
		t.Fatal("vector-shape tampering went undetected")
	}
}
