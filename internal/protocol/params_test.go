package protocol

import (
	"strings"
	"testing"
)

// TestValidateMessageSizeBound: padMessage length-prefixes with a
// uint16, so plaintexts above 65535 bytes cannot round-trip —
// configurations that would allow them must be rejected up front, not
// silently corrupt payloads at the exit layer.
func TestValidateMessageSizeBound(t *testing.T) {
	base := Config{NumServers: 4, NumGroups: 2, GroupSize: 2, Variant: VariantNIZK}

	ok := base
	ok.MessageSize = 65535 + 2 // largest frameable plaintext
	if err := ok.Validate(); err != nil {
		t.Fatalf("MessageSize %d should validate: %v", ok.MessageSize, err)
	}

	bad := base
	bad.MessageSize = 65535 + 3
	err := bad.Validate()
	if err == nil {
		t.Fatalf("MessageSize %d validated but cannot round-trip the uint16 length prefix", bad.MessageSize)
	}
	if !strings.Contains(err.Error(), "framing limit") {
		t.Errorf("error %q does not name the framing limit", err)
	}

	// The boundary size actually round-trips end to end through the
	// padding helpers.
	msg := make([]byte, 65535)
	for i := range msg {
		msg[i] = byte(i)
	}
	padded, err := padMessage(msg, ok.MessageSize)
	if err != nil {
		t.Fatal(err)
	}
	back, err := unpadMessage(padded)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(msg) {
		t.Fatal("65535-byte message did not round-trip")
	}
}
