package protocol

import (
	"fmt"
	"sort"

	"atom/internal/dvss"
	"atom/internal/ecc"
)

// FailServer marks the server as crashed in every group it belongs to
// and returns the affected group ids. Groups keep operating as long as
// at least k−(h−1) members remain (§4.5); beyond that RunRound fails and
// RecoverGroup must be invoked.
func (d *Deployment) FailServer(serverID int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var affected []int
	for _, g := range d.groups {
		for pos, m := range g.Info.Members {
			if m == serverID {
				if !g.failed[pos] {
					g.failed[pos] = true
					affected = append(affected, g.Info.ID)
				}
			}
		}
	}
	return affected
}

// FailGroupMember fails the member at the given position of one group
// only (useful for targeted fault-injection tests).
func (d *Deployment) FailGroupMember(gid, pos int) error {
	g, err := d.groupFor(gid)
	if err != nil {
		return err
	}
	if pos < 0 || pos >= len(g.Info.Members) {
		return fmt.Errorf("protocol: group %d has no member position %d", gid, pos)
	}
	d.mu.Lock()
	g.failed[pos] = true
	d.mu.Unlock()
	return nil
}

// GroupNeedsRecovery reports whether the group has lost more members
// than its fault budget h−1 covers.
func (d *Deployment) GroupNeedsRecovery(gid int) (bool, error) {
	g, err := d.groupFor(gid)
	if err != nil {
		return false, err
	}
	_, aerr := g.Active()
	return aerr != nil, nil
}

// GroupLiveMembers returns the count of non-failed members of a group
// (k when healthy, shrinking toward the threshold as crashes accrue) —
// the degraded-membership number StepTraces and IterationStats report.
func (d *Deployment) GroupLiveMembers(gid int) (int, error) {
	g, err := d.groupFor(gid)
	if err != nil {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return g.LiveMembers(), nil
}

// RecoveryPlan describes what §4.5 buddy-group recovery of a group
// requires: which positions are down, which buddy groups hold the
// escrowed shares, and how many escrow pieces reconstruct each one.
type RecoveryPlan struct {
	// GID is the group to recover.
	GID int
	// Failed lists the failed member positions (0-based).
	Failed []int
	// Buddies lists the buddy group ids holding this group's escrows.
	Buddies []int
	// Threshold is how many distinct escrow pieces reconstruct one
	// share.
	Threshold int
}

// RecoveryPlan reports a group's current recovery requirements — the
// distributed engine uses it to drive share solicitation over the wire.
func (d *Deployment) RecoveryPlan(gid int) (*RecoveryPlan, error) {
	g, err := d.groupFor(gid)
	if err != nil {
		return nil, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	plan := &RecoveryPlan{GID: gid, Threshold: g.threshold}
	plan.Buddies = append(plan.Buddies, g.Info.Buddies...)
	for pos := range g.Info.Members {
		if g.failed[pos] {
			plan.Failed = append(plan.Failed, pos)
		}
	}
	sort.Ints(plan.Failed)
	return plan, nil
}

// EscrowPiece is one escrowed share fragment a buddy-group member
// holds: its piece of the re-sharing of group GID's member at position
// Pos (§4.5).
type EscrowPiece struct {
	// GID and Pos identify whose share the piece helps reconstruct.
	GID int
	Pos int
	// Piece is this buddy member's fragment of the re-shared share.
	Piece *ecc.Scalar
}

// EscrowPieces exports the escrow fragments held by one member (1-based
// DVSS index) of a buddy group — the material a distributed deployment
// provisions each server with so recovery can run over the wire without
// any central party holding the escrows. The in-process escrow map
// stands in for the DKG-time re-sharing that would have placed them
// there.
func (d *Deployment) EscrowPieces(buddyGID, memberIdx int) []EscrowPiece {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []EscrowPiece
	for key, esc := range d.escrows {
		if key.buddy != buddyGID || memberIdx < 1 || memberIdx > len(esc.Pieces) {
			continue
		}
		out = append(out, EscrowPiece{GID: key.gid, Pos: key.pos, Piece: esc.Pieces[memberIdx-1]})
	}
	// The escrow map iterates in random order; keep the wire form
	// canonical.
	sort.Slice(out, func(i, j int) bool {
		if out[i].GID != out[j].GID {
			return out[i].GID < out[j].GID
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// CheckEscrowPiece verifies one wire-solicited escrow fragment — buddy
// group member idx's piece of the re-sharing of group gid's share at
// pos — against the escrow's Feldman commitments. A byzantine buddy
// member's corrupted piece fails here and is dropped BEFORE it can
// poison the Lagrange reconstruction (which would otherwise combine it
// silently and only fail at the final share verification, wedging
// recovery even though threshold-many honest pieces exist).
func (d *Deployment) CheckEscrowPiece(gid, buddy, pos, idx int, piece *ecc.Scalar) error {
	d.mu.Lock()
	esc, ok := d.escrows[escrowKey{gid, buddy, pos}]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("protocol: no escrow for group %d pos %d at buddy %d", gid, pos, buddy)
	}
	return dvss.VerifyEscrowPiece(esc, idx, piece, nil)
}

// InstallRecoveredShare completes one position's §4.5 recovery with a
// share reconstructed elsewhere (e.g. from wire-solicited buddy escrow
// pieces): the share is verified against the group's public Feldman
// commitments — a corrupted or mis-reconstructed share never installs —
// and the replacement server takes over the position.
func (d *Deployment) InstallRecoveredShare(gid, pos int, share *ecc.Scalar, replacement int) error {
	g, err := d.groupFor(gid)
	if err != nil {
		return err
	}
	if pos < 0 || pos >= len(g.Info.Members) {
		return fmt.Errorf("protocol: group %d has no member position %d", gid, pos)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if !g.failed[pos] {
		return fmt.Errorf("protocol: group %d position %d is not failed", gid, pos)
	}
	if err := dvss.VerifyShare(g.Keys[pos].Commitments, pos+1, share); err != nil {
		return fmt.Errorf("protocol: recovered share invalid: %w", err)
	}
	g.Keys[pos] = &dvss.GroupKey{
		PK:          g.PK,
		Share:       share,
		Index:       pos + 1,
		Threshold:   g.threshold,
		Size:        len(g.Info.Members),
		Commitments: g.Keys[pos].Commitments,
	}
	g.Info.Members[pos] = replacement
	delete(g.failed, pos)
	return nil
}

// RecoverGroup rebuilds the failed members of a group from the share
// escrows held by one of its buddy groups (§4.5): for each failed
// position, threshold-many buddy members contribute their escrow pieces,
// the replacement server reconstructs the lost share, verifies it
// against the group's public Feldman commitments, and takes over the
// position. replacements[i] is the server id standing in for the i-th
// failed position (extra entries ignored; too few is an error).
func (d *Deployment) RecoverGroup(gid int, replacements []int) error {
	g, err := d.groupFor(gid)
	if err != nil {
		return err
	}
	if len(g.Info.Buddies) == 0 {
		return fmt.Errorf("protocol: group %d has no buddy groups (BuddyCount=0)", gid)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	var failedPositions []int
	for pos := range g.Info.Members {
		if g.failed[pos] {
			failedPositions = append(failedPositions, pos)
		}
	}
	if len(failedPositions) == 0 {
		return nil
	}
	if len(replacements) < len(failedPositions) {
		return fmt.Errorf("protocol: need %d replacement servers, have %d",
			len(failedPositions), len(replacements))
	}

	// Find a live buddy group to recover from.
	var buddy *GroupState
	var buddyID int
	for _, b := range g.Info.Buddies {
		cand := d.groups[b]
		if _, err := cand.Active(); err == nil {
			buddy = cand
			buddyID = b
			break
		}
	}
	if buddy == nil {
		return fmt.Errorf("protocol: group %d has no live buddy group", gid)
	}

	for i, pos := range failedPositions {
		esc, ok := d.escrows[escrowKey{gid, buddyID, pos}]
		if !ok {
			return fmt.Errorf("protocol: no escrow for group %d pos %d at buddy %d", gid, pos, buddyID)
		}
		// threshold-many live buddy members hand over their pieces.
		active, err := buddy.Active()
		if err != nil {
			return err
		}
		pieces := make([]*ecc.Scalar, len(active))
		for pi, idx := range active {
			pieces[pi] = esc.Pieces[idx-1]
		}
		share, err := dvss.RecoverShare(active, pieces)
		if err != nil {
			return fmt.Errorf("protocol: recovering group %d pos %d: %w", gid, pos, err)
		}
		// The replacement verifies the recovered share against the
		// group's public commitments before trusting it.
		if err := dvss.VerifyShare(g.Keys[pos].Commitments, pos+1, share); err != nil {
			return fmt.Errorf("protocol: recovered share invalid: %w", err)
		}
		g.Keys[pos] = &dvss.GroupKey{
			PK:          g.PK,
			Share:       share,
			Index:       pos + 1,
			Threshold:   g.threshold,
			Size:        len(g.Info.Members),
			Commitments: g.Keys[pos].Commitments,
		}
		g.Info.Members[pos] = replacements[i]
		delete(g.failed, pos)
	}
	return nil
}
