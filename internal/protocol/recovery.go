package protocol

import (
	"fmt"

	"atom/internal/dvss"
	"atom/internal/ecc"
)

// FailServer marks the server as crashed in every group it belongs to
// and returns the affected group ids. Groups keep operating as long as
// at least k−(h−1) members remain (§4.5); beyond that RunRound fails and
// RecoverGroup must be invoked.
func (d *Deployment) FailServer(serverID int) []int {
	d.mu.Lock()
	defer d.mu.Unlock()
	var affected []int
	for _, g := range d.groups {
		for pos, m := range g.Info.Members {
			if m == serverID {
				if !g.failed[pos] {
					g.failed[pos] = true
					affected = append(affected, g.Info.ID)
				}
			}
		}
	}
	return affected
}

// FailGroupMember fails the member at the given position of one group
// only (useful for targeted fault-injection tests).
func (d *Deployment) FailGroupMember(gid, pos int) error {
	g, err := d.groupFor(gid)
	if err != nil {
		return err
	}
	if pos < 0 || pos >= len(g.Info.Members) {
		return fmt.Errorf("protocol: group %d has no member position %d", gid, pos)
	}
	d.mu.Lock()
	g.failed[pos] = true
	d.mu.Unlock()
	return nil
}

// GroupNeedsRecovery reports whether the group has lost more members
// than its fault budget h−1 covers.
func (d *Deployment) GroupNeedsRecovery(gid int) (bool, error) {
	g, err := d.groupFor(gid)
	if err != nil {
		return false, err
	}
	_, aerr := g.Active()
	return aerr != nil, nil
}

// RecoverGroup rebuilds the failed members of a group from the share
// escrows held by one of its buddy groups (§4.5): for each failed
// position, threshold-many buddy members contribute their escrow pieces,
// the replacement server reconstructs the lost share, verifies it
// against the group's public Feldman commitments, and takes over the
// position. replacements[i] is the server id standing in for the i-th
// failed position (extra entries ignored; too few is an error).
func (d *Deployment) RecoverGroup(gid int, replacements []int) error {
	g, err := d.groupFor(gid)
	if err != nil {
		return err
	}
	if len(g.Info.Buddies) == 0 {
		return fmt.Errorf("protocol: group %d has no buddy groups (BuddyCount=0)", gid)
	}
	d.mu.Lock()
	defer d.mu.Unlock()

	var failedPositions []int
	for pos := range g.Info.Members {
		if g.failed[pos] {
			failedPositions = append(failedPositions, pos)
		}
	}
	if len(failedPositions) == 0 {
		return nil
	}
	if len(replacements) < len(failedPositions) {
		return fmt.Errorf("protocol: need %d replacement servers, have %d",
			len(failedPositions), len(replacements))
	}

	// Find a live buddy group to recover from.
	var buddy *GroupState
	var buddyID int
	for _, b := range g.Info.Buddies {
		cand := d.groups[b]
		if _, err := cand.Active(); err == nil {
			buddy = cand
			buddyID = b
			break
		}
	}
	if buddy == nil {
		return fmt.Errorf("protocol: group %d has no live buddy group", gid)
	}

	for i, pos := range failedPositions {
		esc, ok := d.escrows[escrowKey{gid, buddyID, pos}]
		if !ok {
			return fmt.Errorf("protocol: no escrow for group %d pos %d at buddy %d", gid, pos, buddyID)
		}
		// threshold-many live buddy members hand over their pieces.
		active, err := buddy.Active()
		if err != nil {
			return err
		}
		pieces := make([]*ecc.Scalar, len(active))
		for pi, idx := range active {
			pieces[pi] = esc.Pieces[idx-1]
		}
		share, err := dvss.RecoverShare(active, pieces)
		if err != nil {
			return fmt.Errorf("protocol: recovering group %d pos %d: %w", gid, pos, err)
		}
		// The replacement verifies the recovered share against the
		// group's public commitments before trusting it.
		if err := dvss.VerifyShare(g.Keys[pos].Commitments, pos+1, share); err != nil {
			return fmt.Errorf("protocol: recovered share invalid: %w", err)
		}
		g.Keys[pos] = &dvss.GroupKey{
			PK:          g.PK,
			Share:       share,
			Index:       pos + 1,
			Threshold:   g.threshold,
			Size:        len(g.Info.Members),
			Commitments: g.Keys[pos].Commitments,
		}
		g.Info.Members[pos] = replacements[i]
		delete(g.failed, pos)
	}
	return nil
}
