package protocol

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// numShards is the fan-out of the duplicate-submission filter. Sixteen
// shards keep lock contention negligible at the submission rates the
// proof verification (which runs outside any lock) allows.
const numShards = 16

// ingestShard is one shard of a round's duplicate-ciphertext filter,
// keyed by the leading fingerprint byte.
type ingestShard struct {
	mu   sync.Mutex
	seen map[string]bool
}

// roundGroup is one entry group's per-round ingestion buffer. Each
// group has its own lock, so submissions to different entry groups
// never contend; the expensive proof verification happens before any
// lock is taken.
type roundGroup struct {
	mu          sync.Mutex
	batch       []elgamal.Vector
	commitments map[string]int // trap variant: commitment bytes → user
	entries     []entryRecord
}

// RoundState is the per-round half of a deployment: the ingestion
// buffers, duplicate filters, trap commitments, entry records for the
// §4.6 blame procedure, and (in the trap variant) the round's trustee
// key. Deployments hold only static material (group keys, wiring), so
// any number of RoundStates can accept submissions concurrently — in
// particular, round r+1 ingests while round r mixes.
//
// SubmitUser, SubmitTrapUser and SubmitEncoded are safe for concurrent
// use by multiple goroutines.
type RoundState struct {
	id      uint64
	d       *Deployment
	variant Variant

	// trustees is the trap variant's per-round key authority (§4.4:
	// "the group keys change across rounds").
	trustees *Trustees

	// mix is the parallelism knob the round mixes with, snapshotted
	// from the deployment at OpenRound (overridable per round with
	// SetMixConfig before Mix).
	mix MixConfig

	shards [numShards]ingestShard
	groups []roundGroup

	// sealed flips once mixing starts; late submissions are rejected
	// with ErrRoundClosed. Writes happen before the sealing goroutine
	// acquires the group locks, so any submission that got its append in
	// is part of the mixed batch and any other sees the flag.
	sealed atomic.Bool

	// mixing guards against mixing the same round twice (the second
	// pass would see empty buffers and, in the trap variant, trip on
	// its own leftover commitments).
	mixing atomic.Bool

	// pending counts accepted submissions (trap pairs count once);
	// rejected counts submissions turned away by admission control
	// (failed proofs, duplicates, late arrivals) — the ingestion
	// accounting the continuous service reports per round.
	pending  atomic.Int64
	rejected atomic.Int64
}

// OpenRound creates a fresh round: empty buffers and, in the trap
// variant, a newly generated trustee round key. The returned round
// accepts submissions immediately and independently of any other
// round's lifecycle.
func (d *Deployment) OpenRound() (*RoundState, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.openRoundLocked()
}

// ID returns the round's deployment-unique sequence number.
func (rs *RoundState) ID() uint64 { return rs.id }

// Variant returns the defense variant the round was opened under.
func (rs *RoundState) Variant() Variant { return rs.variant }

// Pending returns the number of submissions accepted so far.
func (rs *RoundState) Pending() int { return int(rs.pending.Load()) }

// Rejected returns the number of submissions admission control turned
// away (failed proofs, duplicates, late arrivals after sealing).
func (rs *RoundState) Rejected() int { return int(rs.rejected.Load()) }

// noteRejected folds a submission failure into the round's admission
// accounting.
func (rs *RoundState) noteRejected(err error) error {
	if err != nil {
		rs.rejected.Add(1)
	}
	return err
}

// Sealed reports whether the round has been sealed for mixing.
func (rs *RoundState) Sealed() bool { return rs.sealed.Load() }

// MixConfig returns the parallelism knob the round will mix with.
func (rs *RoundState) MixConfig() MixConfig { return rs.mix }

// SetMixConfig overrides the deployment's parallelism knob for this
// round. Call it before mixing starts; it is not synchronized with a
// concurrent RunRoundCtx.
func (rs *RoundState) SetMixConfig(m MixConfig) { rs.mix = m }

// TrusteePK returns the round's trustee public key (trap variant only);
// users CCA2-encrypt their inner ciphertexts to it.
func (rs *RoundState) TrusteePK() (*ecc.Point, error) {
	if rs.trustees == nil {
		return nil, fmt.Errorf("%w: round %d has no trustees (variant %v)", ErrWrongVariant, rs.id, rs.variant)
	}
	return rs.trustees.PK(), nil
}

// shardFor picks the duplicate-filter shard for a fingerprint.
func (rs *RoundState) shardFor(fp string) *ingestShard {
	if len(fp) == 0 {
		return &rs.shards[0]
	}
	return &rs.shards[int(fp[0])%numShards]
}

// reserve claims a fingerprint in the duplicate filter, failing on
// replays.
func (rs *RoundState) reserve(fp string) error {
	s := rs.shardFor(fp)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seen[fp] {
		return fmt.Errorf("%w: submission rejected (replayed ciphertext)", ErrDuplicateSubmission)
	}
	s.seen[fp] = true
	return nil
}

// release undoes a reserve when a later validation step fails.
func (rs *RoundState) release(fp string) {
	s := rs.shardFor(fp)
	s.mu.Lock()
	delete(s.seen, fp)
	s.mu.Unlock()
}

// SubmitUser accepts a NIZK-variant submission: all (simulated) servers
// of the entry group verify the EncProof, and exact duplicates are
// rejected (§3: the NIZK prevents rerandomized copies; the fingerprint
// shards prevent byte-identical replays within the round). Safe for
// concurrent use.
func (rs *RoundState) SubmitUser(user int, sub *Submission) error {
	return rs.noteRejected(rs.submitUser(user, sub))
}

func (rs *RoundState) submitUser(user int, sub *Submission) error {
	if rs.variant != VariantNIZK {
		return fmt.Errorf("%w: SubmitUser requires the NIZK variant", ErrWrongVariant)
	}
	if rs.sealed.Load() {
		return fmt.Errorf("%w: round %d is mixing", ErrRoundClosed, rs.id)
	}
	g, err := rs.d.groupFor(sub.GID)
	if err != nil {
		return err
	}
	// Proof verification is the hot path; it runs with no locks held.
	if err := verifySubmissionVector(g.PK, sub.Ciphertext, sub.GID, sub.Proof, rs.d.cfg.NumPoints()); err != nil {
		return err
	}
	return rs.admitVerified(user, sub)
}

// SubmitTrapUser accepts a trap-variant submission: both EncProofs are
// verified, both ciphertexts enter the entry group's batch as
// independent messages, and the trap commitment is stored (§4.4). Safe
// for concurrent use.
func (rs *RoundState) SubmitTrapUser(user int, sub *TrapSubmission) error {
	return rs.noteRejected(rs.submitTrapUser(user, sub))
}

func (rs *RoundState) submitTrapUser(user int, sub *TrapSubmission) error {
	if rs.variant != VariantTrap {
		return fmt.Errorf("%w: SubmitTrapUser requires the trap variant", ErrWrongVariant)
	}
	if rs.sealed.Load() {
		return fmt.Errorf("%w: round %d is mixing", ErrRoundClosed, rs.id)
	}
	g, err := rs.d.groupFor(sub.GID)
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := verifySubmissionVector(g.PK, sub.Ciphertexts[i], sub.GID, sub.Proofs[i], rs.d.cfg.NumPoints()); err != nil {
			return fmt.Errorf("ciphertext %d: %w", i, err)
		}
	}
	return rs.admitVerifiedTrap(user, sub)
}

// SubmitEncoded accepts a wire-encoded submission in whichever format
// the round's variant expects — the path remote users take.
func (rs *RoundState) SubmitEncoded(user int, wire []byte) error {
	switch rs.variant {
	case VariantNIZK:
		sub, err := DecodeSubmission(wire)
		if err != nil {
			return rs.noteRejected(fmt.Errorf("%w: %v", ErrBadSubmission, err))
		}
		return rs.SubmitUser(user, sub)
	default:
		sub, err := DecodeTrapSubmission(wire)
		if err != nil {
			return rs.noteRejected(fmt.Errorf("%w: %v", ErrBadSubmission, err))
		}
		return rs.SubmitTrapUser(user, sub)
	}
}

// seal closes the round to submissions and snapshots the per-group
// batches for mixing. Acquiring each group's lock after flipping the
// flag guarantees every in-flight append is either included in the
// snapshot or rejected with ErrRoundClosed — no submission is silently
// dropped.
func (rs *RoundState) seal() [][]elgamal.Vector {
	rs.sealed.Store(true)
	batches := make([][]elgamal.Vector, len(rs.groups))
	for gi := range rs.groups {
		rg := &rs.groups[gi]
		rg.mu.Lock()
		batches[gi] = rg.batch
		rg.batch = nil
		rg.mu.Unlock()
	}
	return batches
}

// IterationStats is the per-mixing-iteration observability record
// reported through RoundHooks and accumulated into RoundResult.
type IterationStats struct {
	// Round is the round's sequence number.
	Round uint64
	// Layer is the 0-based mixing iteration.
	Layer int
	// Duration is the wall-clock latency of the iteration (all groups,
	// which run in parallel).
	Duration time.Duration
	// Messages is the number of ciphertext vectors entering the layer.
	Messages int
	// Shuffles, ReEncs and ProofsChecked total the per-group work.
	Shuffles      int
	ReEncs        int
	ProofsChecked int
	// Workers is the per-group worker-pool size (MixConfig, resolved);
	// ActiveGroups counts the groups that held messages this iteration;
	// WorkerBusy totals the time workers spent inside crypto tasks
	// across all groups. Utilization of the iteration's pools is
	// WorkerBusy / (Duration × Workers × ActiveGroups).
	Workers      int
	ActiveGroups int
	WorkerBusy   time.Duration
	// Members totals the groups' live memberships for the iteration
	// (G×k when every server is up). A value below that ceiling means
	// the round is mixing in degraded mode: some group is running on its
	// h−1 spare budget (§4.5).
	Members int
}

// RoundHooks carries the observability callbacks RunRoundCtx invokes.
// Nil hooks (or nil fields) are skipped. Callbacks run synchronously on
// the mixing goroutine; keep them cheap.
type RoundHooks struct {
	// IterationDone fires after every mixing iteration completes.
	IterationDone func(IterationStats)
}
