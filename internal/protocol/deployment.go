package protocol

import (
	"crypto/rand"
	"crypto/sha3"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"atom/internal/beacon"
	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
	"atom/internal/nizk"
	"atom/internal/topology"
)

// Adversary injects malicious-server behavior into a round for testing
// and for demonstrating the two defenses. The hook fires in group GID at
// mixing iteration Layer, after the active member at position Member has
// shuffled; whatever batch it returns (non-nil) replaces that member's
// output.
type Adversary struct {
	Layer  int
	GID    int
	Member int
	Tamper func(batch []elgamal.Vector) []elgamal.Vector
}

// entryRecord remembers who submitted what, enabling the §4.6
// malicious-user identification procedure.
type entryRecord struct {
	User int
	Sub  *Submission
	Trap *TrapSubmission
}

// escrowKey addresses one member's share escrow at one buddy group.
type escrowKey struct {
	gid   int
	buddy int
	pos   int
}

// Deployment is a complete in-process Atom network: G groups of k
// servers each with DVSS keys, the trustee group (trap variant), and the
// permutation-network wiring. It executes rounds with real cryptography.
type Deployment struct {
	cfg      Config
	topo     topology.Topology
	beacon   *beacon.Beacon
	groups   []*GroupState
	trustees *Trustees
	rnd      io.Reader

	mu        sync.Mutex
	entries   map[int][]entryRecord
	seen      map[string]bool // duplicate-submission filter (fingerprints)
	escrows   map[escrowKey]*dvss.Escrow
	adversary *Adversary
	traces    []stepTrace
}

// NewDeployment forms groups from the beacon, runs every group's DVSS
// (and the trustees' keygen in the trap variant), and escrows key shares
// with buddy groups when configured.
func NewDeployment(cfg Config) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.BuildTopology()
	if err != nil {
		return nil, err
	}
	b := beacon.New(cfg.Seed)
	infos, err := groupmgr.Form(groupmgr.Config{
		NumServers: cfg.NumServers,
		NumGroups:  cfg.NumGroups,
		GroupSize:  cfg.GroupSize,
		HonestMin:  cfg.HonestMin,
		Fraction:   cfg.Fraction,
		BuddyCount: cfg.BuddyCount,
	}, b, 0)
	if err != nil {
		return nil, err
	}

	d := &Deployment{
		cfg:     cfg,
		topo:    topo,
		beacon:  b,
		groups:  make([]*GroupState, len(infos)),
		rnd:     rand.Reader,
		entries: make(map[int][]entryRecord),
		seen:    make(map[string]bool),
		escrows: make(map[escrowKey]*dvss.Escrow),
	}

	// DKGs are independent; run them in parallel (§4.1: "this operation
	// will happen in the background").
	var wg sync.WaitGroup
	errs := make([]error, len(infos))
	for i, info := range infos {
		wg.Add(1)
		go func(i int, info *groupmgr.Group) {
			defer wg.Done()
			gs, err := newGroupState(info, cfg.Threshold(), rand.Reader)
			if err != nil {
				errs[i] = err
				return
			}
			d.groups[i] = gs
		}(i, info)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	if cfg.Variant == VariantTrap {
		if d.trustees, err = NewTrustees(cfg.NumTrustees, rand.Reader); err != nil {
			return nil, err
		}
	}

	// Buddy escrow of every member's share (§4.5).
	if cfg.BuddyCount > 0 {
		for _, g := range d.groups {
			for _, buddy := range g.Info.Buddies {
				bsize := len(d.groups[buddy].Info.Members)
				for pos := range g.Info.Members {
					esc, err := dvss.EscrowShare(pos+1, g.Keys[pos].Share, bsize, cfg.Threshold(), rand.Reader)
					if err != nil {
						return nil, fmt.Errorf("protocol: escrow group %d pos %d: %w", g.Info.ID, pos, err)
					}
					d.escrows[escrowKey{g.Info.ID, buddy, pos}] = esc
				}
			}
		}
	}
	return d, nil
}

// Config returns a copy of the deployment's configuration.
func (d *Deployment) Config() Config { return d.cfg }

// NumGroups returns G.
func (d *Deployment) NumGroups() int { return len(d.groups) }

// GroupPK returns the public key of group gid (what users encrypt to).
func (d *Deployment) GroupPK(gid int) (*ecc.Point, error) {
	if gid < 0 || gid >= len(d.groups) {
		return nil, fmt.Errorf("protocol: no group %d", gid)
	}
	return d.groups[gid].PK, nil
}

// TrusteePK returns the trustees' round key (trap variant only).
func (d *Deployment) TrusteePK() (*ecc.Point, error) {
	if d.trustees == nil {
		return nil, fmt.Errorf("protocol: deployment has no trustees (variant %v)", d.cfg.Variant)
	}
	return d.trustees.PK(), nil
}

// SetAdversary installs a malicious-server hook for the next round.
func (d *Deployment) SetAdversary(a *Adversary) { d.adversary = a }

// SubmitUser accepts a NIZK-variant submission: all (simulated) servers
// of the entry group verify the EncProof, and exact duplicates are
// rejected (§3: the NIZK prevents rerandomized copies; the fingerprint
// set prevents byte-identical replays within the round).
func (d *Deployment) SubmitUser(user int, sub *Submission) error {
	if d.cfg.Variant != VariantNIZK {
		return fmt.Errorf("protocol: SubmitUser requires the NIZK variant")
	}
	g, err := d.groupFor(sub.GID)
	if err != nil {
		return err
	}
	if err := verifySubmissionVector(g.PK, sub.Ciphertext, sub.GID, sub.Proof, d.cfg.NumPoints()); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	fp := string(sub.Ciphertext.Fingerprint())
	if d.seen[fp] {
		return fmt.Errorf("protocol: duplicate submission rejected")
	}
	d.seen[fp] = true
	g.batch = append(g.batch, sub.Ciphertext.Clone())
	d.entries[sub.GID] = append(d.entries[sub.GID], entryRecord{User: user, Sub: sub})
	return nil
}

// SubmitTrapUser accepts a trap-variant submission: both EncProofs are
// verified, both ciphertexts enter the entry group's batch as
// independent messages, and the trap commitment is stored (§4.4).
func (d *Deployment) SubmitTrapUser(user int, sub *TrapSubmission) error {
	if d.cfg.Variant != VariantTrap {
		return fmt.Errorf("protocol: SubmitTrapUser requires the trap variant")
	}
	g, err := d.groupFor(sub.GID)
	if err != nil {
		return err
	}
	for i := 0; i < 2; i++ {
		if err := verifySubmissionVector(g.PK, sub.Ciphertexts[i], sub.GID, sub.Proofs[i], d.cfg.NumPoints()); err != nil {
			return fmt.Errorf("ciphertext %d: %w", i, err)
		}
	}
	if len(sub.Commitment) != 32 {
		return fmt.Errorf("protocol: trap commitment must be 32 bytes, got %d", len(sub.Commitment))
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := 0; i < 2; i++ {
		fp := string(sub.Ciphertexts[i].Fingerprint())
		if d.seen[fp] {
			return fmt.Errorf("protocol: duplicate submission rejected")
		}
		d.seen[fp] = true
	}
	if _, dup := g.commitments[string(sub.Commitment)]; dup {
		return fmt.Errorf("protocol: duplicate trap commitment rejected")
	}
	for i := 0; i < 2; i++ {
		g.batch = append(g.batch, sub.Ciphertexts[i].Clone())
	}
	g.commitments[string(sub.Commitment)] = user
	d.entries[sub.GID] = append(d.entries[sub.GID], entryRecord{User: user, Trap: sub})
	return nil
}

func (d *Deployment) groupFor(gid int) (*GroupState, error) {
	if gid < 0 || gid >= len(d.groups) {
		return nil, fmt.Errorf("protocol: no group %d", gid)
	}
	return d.groups[gid], nil
}

func verifySubmissionVector(pk *ecc.Point, v elgamal.Vector, gid int, proof *nizk.EncProof, numPoints int) error {
	if len(v) != numPoints {
		return fmt.Errorf("protocol: submission has %d points, want %d", len(v), numPoints)
	}
	for _, ct := range v {
		if ct.Y != nil {
			return fmt.Errorf("protocol: submission carries a mid-chain Y slot")
		}
	}
	return nizk.VerifyEnc(pk, v, uint64(gid), proof)
}

// RoundResult is the outcome of a successful round.
type RoundResult struct {
	// Messages are the anonymized plaintexts, deduplicated of protocol
	// framing, in exit order (which the mixing has randomized).
	Messages [][]byte
	// ExitOutputs maps exit group id to the raw routed payloads it
	// published (traps included in the trap variant).
	ExitOutputs map[int][][]byte
	// Traces records per-group per-layer work for accounting.
	Traces []stepTrace
}

// RunRound executes T mixing iterations over the whole network and the
// variant-specific finale. It returns ErrRoundAborted (wrapped) when a
// defense trips.
func (d *Deployment) RunRound() (*RoundResult, error) {
	T := d.topo.Iterations()
	G := len(d.groups)
	d.traces = d.traces[:0]

	for layer := 0; layer < T; layer++ {
		type groupOut struct {
			gid     int
			batches [][]elgamal.Vector
			dests   []int
			trace   *stepTrace
			err     error
		}
		outs := make([]groupOut, G)
		var wg sync.WaitGroup
		for gi := 0; gi < G; gi++ {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				g := d.groups[gi]
				dests := d.topo.Neighbors(layer, gi)
				pks := make([]*ecc.Point, len(dests))
				for i, dst := range dests {
					pks[i] = d.groups[dst].PK
				}
				p := mixParams{
					layer:    layer,
					variant:  d.cfg.Variant,
					destGIDs: dests,
					destPKs:  pks,
					rnd:      rand.Reader,
				}
				if a := d.adversary; a != nil && a.Layer == layer && a.GID == gi {
					p.tamper = a.Tamper
					p.tamperMember = a.Member
				}
				batches, trace, err := g.runIteration(p)
				outs[gi] = groupOut{gid: gi, batches: batches, dests: dests, trace: trace, err: err}
			}(gi)
		}
		wg.Wait()

		next := make([][]elgamal.Vector, G)
		var exitPayloads map[int][][]byte
		if layer == T-1 {
			exitPayloads = make(map[int][][]byte, G)
		}
		for gi := 0; gi < G; gi++ {
			o := outs[gi]
			if o.err != nil {
				return nil, o.err
			}
			d.traces = append(d.traces, *o.trace)
			if layer == T-1 {
				// Exit layer: single batch of plaintext vectors.
				payloads, err := extractPayloads(o.batches[0])
				if err != nil {
					return nil, fmt.Errorf("protocol: exit group %d: %w", gi, err)
				}
				exitPayloads[gi] = payloads
				continue
			}
			for bi, dst := range o.dests {
				next[dst] = append(next[dst], o.batches[bi]...)
			}
		}
		if layer == T-1 {
			return d.finishRound(exitPayloads)
		}
		for gi := 0; gi < G; gi++ {
			d.groups[gi].batch = next[gi]
		}
	}
	return nil, fmt.Errorf("protocol: unreachable: no exit layer")
}

// extractPayloads converts fully-decrypted vectors into payload bytes.
func extractPayloads(batch []elgamal.Vector) ([][]byte, error) {
	out := make([][]byte, len(batch))
	for i, vec := range batch {
		pts := elgamal.PlaintextVector(vec)
		payload, err := ecc.ExtractMessage(pts)
		if err != nil {
			return nil, fmt.Errorf("message %d: %w", i, err)
		}
		out[i] = payload
	}
	return out, nil
}

// finishRound applies the variant-specific finale to the exit outputs.
// On success the round state is reset so the deployment can serve the
// next round (the trap variant's trustee key is per-round and is
// regenerated); on an abort the entry records are kept for the §4.6
// blame procedure, and the caller resets explicitly with ResetRound.
func (d *Deployment) finishRound(exitPayloads map[int][][]byte) (*RoundResult, error) {
	res := &RoundResult{ExitOutputs: exitPayloads, Traces: append([]stepTrace(nil), d.traces...)}
	switch d.cfg.Variant {
	case VariantNIZK:
		for _, payloads := range exitPayloads {
			for _, p := range payloads {
				body, kind, err := DecodePlaintext(p)
				if err != nil || kind != kindMessage {
					return nil, fmt.Errorf("protocol: NIZK round produced non-message payload")
				}
				msg, err := unpadMessage(body)
				if err != nil {
					return nil, err
				}
				res.Messages = append(res.Messages, msg)
			}
		}
		sortMessages(res.Messages)
	case VariantTrap:
		msgs, err := d.trapFinale(exitPayloads)
		if err != nil {
			return nil, err
		}
		res.Messages = msgs
	default:
		return nil, fmt.Errorf("protocol: unknown variant %v", d.cfg.Variant)
	}
	if err := d.ResetRound(); err != nil {
		return nil, err
	}
	return res, nil
}

// ResetRound clears per-round state — collected batches, trap
// commitments, duplicate filters, entry records — and, in the trap
// variant, generates a fresh trustee round key (§4.4: "the group keys
// change across rounds"; the trustees' key must change because a
// successful round publishes its shares). Successful rounds reset
// automatically; after an abort, call this once blame handling is done.
func (d *Deployment) ResetRound() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, g := range d.groups {
		g.batch = nil
		g.commitments = make(map[string]int)
	}
	d.seen = make(map[string]bool)
	d.entries = make(map[int][]entryRecord)
	d.adversary = nil
	if d.cfg.Variant == VariantTrap {
		t, err := NewTrustees(d.cfg.NumTrustees, rand.Reader)
		if err != nil {
			return fmt.Errorf("protocol: rotating trustee key: %w", err)
		}
		d.trustees = t
	}
	return nil
}

// sortMessages orders messages lexicographically: the exit order is
// already unlinkable to submission order, and a canonical order makes
// results reproducible for bulletin publication.
func sortMessages(msgs [][]byte) {
	sort.Slice(msgs, func(i, j int) bool { return string(msgs[i]) < string(msgs[j]) })
}

// hashToGroup is the deterministic load-balancing function that assigns
// an inner ciphertext to a checking group (§4.4: "chosen by a
// deterministic function that will load-balance … e.g., using universal
// hashing").
func hashToGroup(payload []byte, G int) int {
	h := sha3.New256()
	h.Write([]byte("atom/inner-routing/v1"))
	h.Write(payload)
	return int(binary.BigEndian.Uint64(h.Sum(nil)[:8]) % uint64(G))
}

// SwitchVariant changes the active-attack defense for subsequent rounds
// — the §4.6 escalation: "If the DoS attack is persistent after many
// rounds, Atom can fall back to using NIZKs, effectively trading off
// performance for availability." Switching resets the round state
// (pending submissions are encoding-incompatible across variants); a
// switch back to the trap variant provisions fresh trustees via
// ResetRound.
func (d *Deployment) SwitchVariant(v Variant) error {
	d.mu.Lock()
	if v == d.cfg.Variant {
		d.mu.Unlock()
		return nil
	}
	d.cfg.Variant = v
	if v == VariantTrap && d.cfg.NumTrustees < 1 {
		d.cfg.NumTrustees = d.cfg.GroupSize
	}
	if v != VariantTrap {
		d.trustees = nil
	}
	d.mu.Unlock()
	return d.ResetRound()
}
