package protocol

import (
	"context"
	"crypto/rand"
	"crypto/sha3"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"atom/internal/beacon"
	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
	"atom/internal/nizk"
	"atom/internal/parallel"
	"atom/internal/topology"
)

// Adversary injects malicious-server behavior into a round for testing
// and for demonstrating the two defenses. The hook fires in group GID at
// mixing iteration Layer, after the active member at position Member has
// shuffled; whatever batch it returns (non-nil) replaces that member's
// output.
type Adversary struct {
	Layer  int
	GID    int
	Member int
	Tamper func(batch []elgamal.Vector) []elgamal.Vector
}

// entryRecord remembers who submitted what, enabling the §4.6
// malicious-user identification procedure.
type entryRecord struct {
	User int
	Sub  *Submission
	Trap *TrapSubmission
}

// escrowKey addresses one member's share escrow at one buddy group.
type escrowKey struct {
	gid   int
	buddy int
	pos   int
}

// Deployment is a complete in-process Atom network: G groups of k
// servers each with DVSS keys and the permutation-network wiring. The
// deployment itself holds only round-independent material; everything a
// single round accumulates (ingestion buffers, duplicate filters, trap
// commitments, the trustees' per-round key) lives in a RoundState, so
// one round can ingest submissions while another mixes.
type Deployment struct {
	cfg     Config
	topo    topology.Topology
	beacon  beacon.Source
	groups  []*GroupState
	rnd     io.Reader
	escrows map[escrowKey]*dvss.Escrow

	// pads is the offline precompute store: per-group-key pools of
	// (k, g^k, pk^k) rerandomization pads filled by Prewarm between
	// rounds and consumed by the online shuffle/re-enc path. Always
	// non-nil; empty pools simply fall back to fresh randomness.
	pads *elgamal.Pads

	// roundSeq issues round ids.
	roundSeq atomic.Uint64

	// mixMu serializes mixing: only one round runs its T iterations at
	// a time (the paper's lock-step organization; §4.7 pipelining means
	// overlapping ingestion with mixing, which needs no second mixer).
	mixMu sync.Mutex

	// mu guards cur, cfg.Variant and adversary.
	mu        sync.Mutex
	cur       *RoundState
	adversary *Adversary
}

// NewDeployment forms groups from the beacon, runs every group's DVSS
// (and the trustees' keygen in the trap variant), and escrows key shares
// with buddy groups when configured. Trust roots are the legacy
// trusted-dealer defaults; NewDeploymentSetup makes them explicit.
func NewDeployment(cfg Config) (*Deployment, error) {
	return newDeployment(cfg, Setup{})
}

// newDeployment is the shared constructor body behind NewDeployment and
// NewDeploymentSetup.
func newDeployment(cfg Config, s Setup) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.BuildTopology()
	if err != nil {
		return nil, err
	}
	if s.Source == nil {
		s.Source = beacon.New(cfg.Seed)
	}
	infos, err := groupmgr.Form(groupmgr.Config{
		NumServers: cfg.NumServers,
		NumGroups:  cfg.NumGroups,
		GroupSize:  cfg.GroupSize,
		HonestMin:  cfg.HonestMin,
		Fraction:   cfg.Fraction,
		BuddyCount: cfg.BuddyCount,
	}, s.Source, s.Round)
	if err != nil {
		return nil, err
	}

	d := &Deployment{
		cfg:     cfg,
		topo:    topo,
		beacon:  s.Source,
		groups:  make([]*GroupState, len(infos)),
		rnd:     rand.Reader,
		escrows: make(map[escrowKey]*dvss.Escrow),
		pads:    elgamal.NewPads(),
	}

	// Group key establishment — the in-process trusted dealer or the
	// Setup hook's ceremony. Either way the groups are independent; run
	// them in parallel (§4.1: "this operation will happen in the
	// background").
	var wg sync.WaitGroup
	errs := make([]error, len(infos))
	for i, info := range infos {
		wg.Add(1)
		go func(i int, info *groupmgr.Group) {
			defer wg.Done()
			var gs *GroupState
			var err error
			if s.GroupKeys != nil {
				var keys []*dvss.GroupKey
				keys, err = s.GroupKeys(info.ID, info.Members, cfg.Threshold())
				if err == nil {
					gs, err = newGroupStateFromKeys(info, cfg.Threshold(), keys)
				}
			} else {
				gs, err = newGroupState(info, cfg.Threshold(), rand.Reader)
			}
			if err != nil {
				errs[i] = err
				return
			}
			d.groups[i] = gs
		}(i, info)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Buddy escrow of every member's share (§4.5).
	if cfg.BuddyCount > 0 {
		for _, g := range d.groups {
			for _, buddy := range g.Info.Buddies {
				bsize := len(d.groups[buddy].Info.Members)
				for pos := range g.Info.Members {
					esc, err := dvss.EscrowShare(pos+1, g.Keys[pos].Share, bsize, cfg.Threshold(), rand.Reader)
					if err != nil {
						return nil, fmt.Errorf("protocol: escrow group %d pos %d: %w", g.Info.ID, pos, err)
					}
					d.escrows[escrowKey{g.Info.ID, buddy, pos}] = esc
				}
			}
		}
	}

	// The implicit current round backs the one-round-at-a-time legacy
	// API (SubmitUser/RunRound without an explicit RoundState).
	if d.cur, err = d.OpenRound(); err != nil {
		return nil, err
	}
	return d, nil
}

// Config returns a copy of the deployment's configuration.
func (d *Deployment) Config() Config {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cfg
}

// NumGroups returns G.
func (d *Deployment) NumGroups() int { return len(d.groups) }

// Topology returns the deployment's permutation network — what a
// distributed mixer needs to route inter-group batches.
func (d *Deployment) Topology() topology.Topology { return d.topo }

// PadStats reports the offline pad bank: pads currently banked across
// all per-base pools plus lifetime hit/miss counters (slots served from
// the bank vs fresh-randomness fallbacks).
func (d *Deployment) PadStats() elgamal.PadStats { return d.pads.Stats() }

// maxPadBank caps the per-base pad bank Prewarm will fill to, bounding
// the offline store's memory no matter how large the predicted batch is
// (~130k pads ≈ a few tens of MB per base; past the cap the online path
// falls back to fresh randomness for the tail).
const maxPadBank = 1 << 17

// Prewarm fills the offline pad pools for an expected sealed batch of
// `vectors` layer-0 ciphertext vectors — the offline half of the
// offline/online mixing split. For every group key it banks enough
// (k, g^k, pk^k) pads to cover the group's share of the batch across
// all T iterations: per layer each of the threshold chain members
// shuffles the whole group batch under the group's own key, and (on
// every non-exit layer) upstream chains re-encrypt the same share
// toward the key. The fill fans over a worker pool sized like a mixing
// round; running it between a seal and the next one moves the
// rerandomization exponentiations off the online drain path.
//
// Prewarm is additive and idempotent: pools already at target are left
// alone, so calling it every round only tops up what the last round
// consumed. Exhaustion mid-round is never an error — the online path
// falls back to fresh randomness past the bank.
func (d *Deployment) Prewarm(ctx context.Context, vectors int) error {
	if vectors <= 0 {
		return nil
	}
	cfg := d.Config()
	G := len(d.groups)
	T := d.topo.Iterations()
	k := cfg.Threshold()
	comps := cfg.NumPoints()
	perG := (vectors + G - 1) / G
	// Shuffle pads under the group's own key: T layers × k members ×
	// the group batch. Re-enc pads toward the key: the batch arrives
	// re-encrypted on layers 1..T-1 (the exit layer decrypts to ⊥ and
	// consumes no pads).
	need := (2*T - 1) * k * perG * comps
	if need > maxPadBank {
		need = maxPadBank
	}
	pool := parallel.New(ctx, cfg.Mix.effectiveWorkers(G))
	for _, g := range d.groups {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("protocol: prewarm canceled: %w", err)
		}
		if err := d.pads.For(g.PK).Fill(need, d.rnd, pool); err != nil {
			return fmt.Errorf("protocol: prewarm group %d: %w", g.Info.ID, err)
		}
	}
	return nil
}

// GroupRoster is one group's public wiring plus the per-member secret
// material for a round: the DVSS indices of the active chain in mixing
// order, each member's effective (Lagrange-weighted) secret, and the
// matching effective public keys every verifier checks proofs against.
// Secrets[i] belongs to the member at Indices[i] and nobody else; a
// distributed deployment hands each member only its own entry (the
// in-process constructor plays the role of the DKG ceremony that would
// otherwise have placed the share there).
type GroupRoster struct {
	GID     int
	PK      *ecc.Point
	Indices []int
	Secrets []*ecc.Scalar
	EffPubs []*ecc.Point
}

// GroupRoster exports group gid's chain material for hosting its
// members outside this process. It fails with ErrRecoveryNeeded when
// the group is under threshold.
func (d *Deployment) GroupRoster(gid int) (*GroupRoster, error) {
	g, err := d.groupFor(gid)
	if err != nil {
		return nil, err
	}
	active, err := g.Active()
	if err != nil {
		return nil, err
	}
	r := &GroupRoster{
		GID:     gid,
		PK:      g.PK,
		Indices: active,
		Secrets: make([]*ecc.Scalar, len(active)),
		EffPubs: make([]*ecc.Point, len(active)),
	}
	for i, idx := range active {
		eff, effPub, err := g.Keys[idx-1].EffectiveKey(active)
		if err != nil {
			return nil, fmt.Errorf("protocol: group %d member %d key: %w", gid, idx, err)
		}
		r.Secrets[i] = eff
		r.EffPubs[i] = effPub
	}
	return r, nil
}

// GroupPK returns the public key of group gid (what users encrypt to).
func (d *Deployment) GroupPK(gid int) (*ecc.Point, error) {
	if gid < 0 || gid >= len(d.groups) {
		return nil, fmt.Errorf("%w: group %d", ErrNoSuchGroup, gid)
	}
	return d.groups[gid].PK, nil
}

// currentRound returns the implicit round the legacy API operates on.
func (d *Deployment) currentRound() *RoundState {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cur
}

// CurrentRound exposes the implicit round behind the legacy
// SubmitUser/RunRound surface, so callers can observe its id and
// pending count or pass it to RunRoundCtx explicitly.
func (d *Deployment) CurrentRound() *RoundState { return d.currentRound() }

// TrusteePK returns the current round's trustee key (trap variant
// only). Explicitly opened rounds carry their own key; see
// RoundState.TrusteePK.
func (d *Deployment) TrusteePK() (*ecc.Point, error) {
	return d.currentRound().TrusteePK()
}

// SetAdversary installs a malicious-server hook for the next round.
func (d *Deployment) SetAdversary(a *Adversary) {
	d.mu.Lock()
	d.adversary = a
	d.mu.Unlock()
}

// takeAdversary consumes the installed hook for one round.
func (d *Deployment) takeAdversary() *Adversary {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.adversary
}

// SubmitUser accepts a NIZK-variant submission into the current round.
func (d *Deployment) SubmitUser(user int, sub *Submission) error {
	return d.currentRound().SubmitUser(user, sub)
}

// SubmitTrapUser accepts a trap-variant submission into the current
// round.
func (d *Deployment) SubmitTrapUser(user int, sub *TrapSubmission) error {
	return d.currentRound().SubmitTrapUser(user, sub)
}

func (d *Deployment) groupFor(gid int) (*GroupState, error) {
	if gid < 0 || gid >= len(d.groups) {
		return nil, fmt.Errorf("%w: group %d", ErrNoSuchGroup, gid)
	}
	return d.groups[gid], nil
}

// checkSubmissionShape runs the structural half of submission admission
// — everything that precedes the (expensive) proof verification. The
// batched admission plane runs it separately so only well-formed vectors
// enter the combined proof check.
func checkSubmissionShape(v elgamal.Vector, numPoints int) error {
	if len(v) != numPoints {
		return fmt.Errorf("%w: submission has %d points, want %d", ErrBadSubmission, len(v), numPoints)
	}
	for _, ct := range v {
		if ct.Y != nil {
			return fmt.Errorf("%w: submission carries a mid-chain Y slot", ErrBadSubmission)
		}
	}
	return nil
}

func verifySubmissionVector(pk *ecc.Point, v elgamal.Vector, gid int, proof *nizk.EncProof, numPoints int) error {
	if err := checkSubmissionShape(v, numPoints); err != nil {
		return err
	}
	if err := nizk.VerifyEnc(pk, v, uint64(gid), proof); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSubmission, err)
	}
	return nil
}

// RoundResult is the outcome of one successful round.
type RoundResult struct {
	// Round is the round's deployment-unique sequence number.
	Round uint64
	// Messages are the anonymized plaintexts, deduplicated of protocol
	// framing, in canonical order (the mixing has destroyed any
	// correspondence to submission order).
	Messages [][]byte
	// ExitOutputs maps exit group id to the raw routed payloads it
	// published (traps included in the trap variant).
	ExitOutputs map[int][][]byte
	// Traces records per-group per-layer work for accounting.
	Traces []StepTrace
	// Iterations records per-layer latency and work totals.
	Iterations []IterationStats
	// Duration is the wall-clock time of the whole mixing phase.
	Duration time.Duration
	// Admitted, Rejected and SealedBatch report the round's ingestion:
	// accepted submissions, submissions turned away by admission
	// control, and the ciphertext-vector count sealed for layer 0 (trap
	// rounds carry two vectors per submission).
	Admitted    int
	Rejected    int
	SealedBatch int
}

// MixJob is one sealed round handed to a Mixer: the per-entry-group
// batches plus everything the mixing needs to know about the round.
type MixJob struct {
	// Ctx cancels the mixing.
	Ctx context.Context
	// Round is the round's sequence number (tags messages and stats).
	Round uint64
	// Variant selects NIZK proofs vs trap accounting.
	Variant Variant
	// Batches[g] is entry group g's sealed batch for layer 0.
	Batches [][]elgamal.Vector
	// Workers is the resolved per-group worker-pool size.
	Workers int
	// Adversary, when non-nil, is the malicious-server hook for this
	// round (testing and defense demonstrations).
	Adversary *Adversary
	// Hooks carries the per-iteration observability callbacks.
	Hooks *RoundHooks
}

// MixOutcome is what a Mixer returns for a completed round.
type MixOutcome struct {
	// ExitPayloads maps exit group id to its decrypted routed payloads.
	ExitPayloads map[int][][]byte
	// Traces records per-group per-layer work.
	Traces []StepTrace
	// Iterations records per-layer latency and work totals.
	Iterations []IterationStats
}

// Mixer executes the T mixing iterations of a sealed round across all
// groups. The deployment ships two implementations of the same
// MemberEngine-based mixing: the in-process mixer (every group in this
// process, direct calls) and the distributed cluster
// (internal/distributed, member actors exchanging framed messages over
// a transport). RunRoundVia accepts either, so ingestion, sealing, the
// variant finale, blame records and round rotation are identical no
// matter where the cryptography physically ran.
type Mixer interface {
	MixRound(job *MixJob) (*MixOutcome, error)
}

// ConcurrentMixer is a Mixer that tolerates overlapping MixRound calls —
// the §4.7 cross-round pipelining contract: round r+1's layer-0 batches
// may enter the engine while round r is still traversing later layers.
// MixSealed skips the deployment's one-round-at-a-time mixing lock for a
// mixer reporting more than one concurrent round (the distributed
// cluster does; the in-process mixer stays lock-step).
type ConcurrentMixer interface {
	Mixer
	// ConcurrentRounds reports how many rounds may mix at once.
	ConcurrentRounds() int
}

// SealedRound is one round's sealed ingestion: the per-entry-group
// batches snapshotted out of its RoundState, plus the round's admission
// accounting. Sealing is the irreversible close of the round to
// submissions; the sealed value is the element of the continuous
// service's append-only batch queue, carried unchanged through any
// churn-triggered mixing restarts.
type SealedRound struct {
	rs       *RoundState
	batches  [][]elgamal.Vector
	admitted int
	rejected int

	// SealedAt records when the round closed to submissions.
	SealedAt time.Time

	// mixing guards against mixing the same sealed batches twice.
	mixing atomic.Bool
}

// Round returns the sealed round's sequence number.
func (s *SealedRound) Round() uint64 { return s.rs.id }

// Admitted returns how many submissions the round accepted before
// sealing.
func (s *SealedRound) Admitted() int { return s.admitted }

// Rejected returns how many submissions the round's admission control
// had turned away by seal time.
func (s *SealedRound) Rejected() int { return s.rejected }

// BatchSize returns the total ciphertext-vector count across the
// per-entry-group batches (trap rounds carry two vectors per
// submission).
func (s *SealedRound) BatchSize() int {
	n := 0
	for _, b := range s.batches {
		n += len(b)
	}
	return n
}

// SealRound closes rs to submissions and snapshots its batches — the
// seal-at-deadline / seal-at-capacity step of the continuous service's
// round scheduler, split out of RunRoundVia so sealing is driven by a
// schedule while mixing is driven by the pipeline's free slots. A nil rs
// seals the implicit current round. Sealing a round twice (or sealing a
// round RunRoundVia already consumed) fails with ErrRoundClosed.
func (d *Deployment) SealRound(rs *RoundState) (*SealedRound, error) {
	if rs == nil {
		rs = d.currentRound()
	}
	if !rs.mixing.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("%w: round %d already sealed", ErrRoundClosed, rs.id)
	}
	return &SealedRound{
		rs:       rs,
		batches:  rs.seal(),
		admitted: rs.Pending(),
		rejected: rs.Rejected(),
		SealedAt: time.Now(),
	}, nil
}

// RunRound executes the current round in lock-step — the blocking
// one-round-at-a-time legacy surface. On success a fresh current round
// opens automatically; after an abort the round's records are kept for
// the §4.6 blame procedure until ResetRound.
func (d *Deployment) RunRound() (*RoundResult, error) {
	return d.RunRoundCtx(context.Background(), nil, nil)
}

// RunRoundCtx executes a round's T mixing iterations across the whole
// network plus the variant-specific finale, honoring ctx cancellation
// and deadlines between (and within) iterations. A nil rs runs the
// implicit current round. It returns an error wrapping ErrRoundAborted
// when a defense trips, ErrProofRejected when a NIZK proof fails,
// ErrRecoveryNeeded when a group is under threshold, and ctx.Err()
// when canceled.
//
// Only one round mixes at a time, but rounds opened with OpenRound keep
// accepting submissions while this runs — the §4.7 pipelined
// organization.
func (d *Deployment) RunRoundCtx(ctx context.Context, rs *RoundState, hooks *RoundHooks) (*RoundResult, error) {
	return d.RunRoundVia(ctx, rs, hooks, nil)
}

// RunRoundVia is RunRoundCtx with an explicit Mixer: nil selects the
// in-process mixer; a distributed.Cluster runs the same round as
// message-passing actors over its transport. Everything around the
// mixing — sealing, the variant-specific finale, blame records, the
// one-shot adversary hook, current-round rotation — is shared, so the
// two paths produce identical results and identical error taxonomies.
func (d *Deployment) RunRoundVia(ctx context.Context, rs *RoundState, hooks *RoundHooks, mixer Mixer) (*RoundResult, error) {
	if rs == nil {
		rs = d.currentRound()
	}
	// A context that is already dead must not consume the round: the
	// caller can retry Mix (or keep submitting) with a live one.
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("protocol: round %d not started: %w", rs.id, err)
	}
	sealed, err := d.SealRound(rs)
	if err != nil {
		return nil, err
	}
	return d.MixSealed(ctx, sealed, hooks, mixer)
}

// MixSealed mixes a sealed round's batches and applies the variant
// finale, blame records and current-round rotation — the back half of
// RunRoundVia, callable later and (over a ConcurrentMixer) concurrently
// with other rounds' mixes: the continuous service seals rounds on a
// schedule and dispatches them here as pipeline slots free up. A nil
// mixer selects the in-process mixer. The sealed batches are single-use;
// a second MixSealed fails with ErrRoundClosed — except after a
// dead-on-arrival context, which leaves the sealed round retryable.
func (d *Deployment) MixSealed(ctx context.Context, sealed *SealedRound, hooks *RoundHooks, mixer Mixer) (*RoundResult, error) {
	rs := sealed.rs
	if !sealed.mixing.CompareAndSwap(false, true) {
		return nil, fmt.Errorf("%w: round %d already mixed", ErrRoundClosed, rs.id)
	}
	if err := ctx.Err(); err != nil {
		sealed.mixing.Store(false) // batches survive; retry with a live context
		return nil, fmt.Errorf("protocol: round %d not started: %w", rs.id, err)
	}
	if mixer == nil {
		mixer = localMixer{d}
	}
	// Only one round mixes at a time unless the mixer is built for
	// cross-round pipelining (the distributed cluster's actors interleave
	// rounds layer by layer; the in-process groups do not).
	if cm, ok := mixer.(ConcurrentMixer); !ok || cm.ConcurrentRounds() <= 1 {
		d.mixMu.Lock()
		defer d.mixMu.Unlock()
	}

	adversary := d.takeAdversary()
	start := time.Now()
	job := &MixJob{
		Ctx:       ctx,
		Round:     rs.id,
		Variant:   rs.variant,
		Batches:   sealed.batches,
		Workers:   rs.mix.effectiveWorkers(len(d.groups)),
		Adversary: adversary,
		Hooks:     hooks,
	}
	out, err := mixer.MixRound(job)

	// The adversary hook is one-shot regardless of outcome.
	d.mu.Lock()
	if d.adversary == adversary {
		d.adversary = nil
	}
	d.mu.Unlock()
	if err != nil {
		return nil, err
	}

	res, err := d.finishRound(rs, out.ExitPayloads)
	if err != nil {
		return nil, err
	}
	res.Round = rs.id
	res.Traces = out.Traces
	res.Iterations = out.Iterations
	res.Duration = time.Since(start)
	res.Admitted = sealed.admitted
	res.Rejected = sealed.rejected
	res.SealedBatch = sealed.BatchSize()
	// A finished current round rotates automatically so the legacy
	// surface keeps its auto-reset semantics (and the trap variant
	// its per-round trustee key).
	d.mu.Lock()
	if d.cur == rs {
		next, oerr := d.openRoundLocked()
		if oerr != nil {
			d.mu.Unlock()
			return nil, oerr
		}
		d.cur = next
	}
	d.mu.Unlock()
	return res, nil
}

// localMixer is the in-process Mixer: all groups mix in this process,
// one goroutine per group per layer, direct method calls instead of
// transport frames.
type localMixer struct{ d *Deployment }

// MixRound implements Mixer.
func (m localMixer) MixRound(job *MixJob) (*MixOutcome, error) {
	d := m.d
	ctx := job.Ctx
	T := d.topo.Iterations()
	G := len(d.groups)
	cur := job.Batches
	out := &MixOutcome{}

	for layer := 0; layer < T; layer++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("protocol: round %d canceled at layer %d: %w", job.Round, layer, err)
		}
		layerStart := time.Now()
		layerMsgs := 0
		for gi := 0; gi < G; gi++ {
			layerMsgs += len(cur[gi])
		}

		type groupOut struct {
			gid     int
			batches [][]elgamal.Vector
			dests   []int
			trace   *StepTrace
			err     error
		}
		outs := make([]groupOut, G)
		var wg sync.WaitGroup
		for gi := 0; gi < G; gi++ {
			wg.Add(1)
			go func(gi int) {
				defer wg.Done()
				g := d.groups[gi]
				dests := d.topo.Neighbors(layer, gi)
				pks := make([]*ecc.Point, len(dests))
				for i, dst := range dests {
					pks[i] = d.groups[dst].PK
				}
				p := mixParams{
					ctx:      ctx,
					layer:    layer,
					variant:  job.Variant,
					batch:    cur[gi],
					destGIDs: dests,
					destPKs:  pks,
					rnd:      rand.Reader,
					workers:  job.Workers,
					pads:     d.pads,
				}
				if a := job.Adversary; a != nil && a.Layer == layer && a.GID == gi {
					p.tamper = a.Tamper
					p.tamperMember = a.Member
				}
				batches, trace, err := g.runIteration(p)
				outs[gi] = groupOut{gid: gi, batches: batches, dests: dests, trace: trace, err: err}
			}(gi)
		}
		wg.Wait()

		next := make([][]elgamal.Vector, G)
		if layer == T-1 {
			out.ExitPayloads = make(map[int][][]byte, G)
		}
		it := IterationStats{Round: job.Round, Layer: layer, Messages: layerMsgs, Workers: job.Workers}
		for gi := 0; gi < G; gi++ {
			o := outs[gi]
			if o.err != nil {
				return nil, o.err
			}
			out.Traces = append(out.Traces, *o.trace)
			it.Shuffles += o.trace.Shuffles
			it.ReEncs += o.trace.ReEncs
			it.ProofsChecked += o.trace.ProofsChecked
			it.WorkerBusy += o.trace.Busy
			it.Members += o.trace.Members
			if len(cur[gi]) > 0 {
				it.ActiveGroups++
			}
			if layer == T-1 {
				// Exit layer: single batch of plaintext vectors.
				payloads, err := ExtractExitPayloads(o.batches[0])
				if err != nil {
					return nil, fmt.Errorf("protocol: exit group %d: %w", gi, err)
				}
				out.ExitPayloads[gi] = payloads
				continue
			}
			for bi, dst := range o.dests {
				next[dst] = append(next[dst], o.batches[bi]...)
			}
		}
		it.Duration = time.Since(layerStart)
		out.Iterations = append(out.Iterations, it)
		if job.Hooks != nil && job.Hooks.IterationDone != nil {
			job.Hooks.IterationDone(it)
		}
		cur = next
	}
	return out, nil
}

// finishRound applies the variant-specific finale to the exit outputs.
// On an abort the round's entry records are kept for the §4.6 blame
// procedure.
func (d *Deployment) finishRound(rs *RoundState, exitPayloads map[int][][]byte) (*RoundResult, error) {
	res := &RoundResult{ExitOutputs: exitPayloads}
	switch rs.variant {
	case VariantNIZK:
		for _, payloads := range exitPayloads {
			for _, p := range payloads {
				body, kind, err := DecodePlaintext(p)
				if err != nil || kind != kindMessage {
					return nil, fmt.Errorf("protocol: NIZK round produced non-message payload")
				}
				msg, err := unpadMessage(body)
				if err != nil {
					return nil, err
				}
				res.Messages = append(res.Messages, msg)
			}
		}
		sortMessages(res.Messages)
	case VariantTrap:
		msgs, err := d.trapFinale(rs, exitPayloads)
		if err != nil {
			return nil, err
		}
		res.Messages = msgs
	default:
		return nil, fmt.Errorf("protocol: unknown variant %v", rs.variant)
	}
	return res, nil
}

// openRoundLocked is OpenRound for callers already holding d.mu.
func (d *Deployment) openRoundLocked() (*RoundState, error) {
	variant := d.cfg.Variant
	numTrustees := d.cfg.NumTrustees
	rs := &RoundState{
		id:      d.roundSeq.Add(1),
		d:       d,
		variant: variant,
		mix:     d.cfg.Mix,
		groups:  make([]roundGroup, len(d.groups)),
	}
	for i := range rs.shards {
		rs.shards[i].seen = make(map[string]bool)
	}
	for i := range rs.groups {
		rs.groups[i].commitments = make(map[string]int)
	}
	if variant == VariantTrap {
		t, err := NewTrustees(numTrustees, d.rnd)
		if err != nil {
			return nil, fmt.Errorf("protocol: rotating trustee key: %w", err)
		}
		rs.trustees = t
	}
	return rs, nil
}

// ResetRound discards the current round — its submissions, duplicate
// filters, commitments and entry records — and opens a fresh one; in
// the trap variant that generates a fresh trustee round key (§4.4: "the
// group keys change across rounds"). Successful rounds reset
// automatically; after an abort, call this once blame handling is done.
func (d *Deployment) ResetRound() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	next, err := d.openRoundLocked()
	if err != nil {
		return err
	}
	d.cur = next
	d.adversary = nil
	return nil
}

// sortMessages orders messages lexicographically: the exit order is
// already unlinkable to submission order, and a canonical order makes
// results reproducible for bulletin publication.
func sortMessages(msgs [][]byte) {
	sort.Slice(msgs, func(i, j int) bool { return string(msgs[i]) < string(msgs[j]) })
}

// hashToGroup is the deterministic load-balancing function that assigns
// an inner ciphertext to a checking group (§4.4: "chosen by a
// deterministic function that will load-balance … e.g., using universal
// hashing").
func hashToGroup(payload []byte, G int) int {
	h := sha3.New256()
	h.Write([]byte("atom/inner-routing/v1"))
	h.Write(payload)
	return int(binary.BigEndian.Uint64(h.Sum(nil)[:8]) % uint64(G))
}

// SwitchVariant changes the active-attack defense for subsequent rounds
// — the §4.6 escalation: "If the DoS attack is persistent after many
// rounds, Atom can fall back to using NIZKs, effectively trading off
// performance for availability." Switching opens a fresh current round
// (pending submissions are encoding-incompatible across variants); a
// switch back to the trap variant provisions fresh trustees. Rounds
// opened before the switch keep the variant they were opened under.
func (d *Deployment) SwitchVariant(v Variant) error {
	d.mu.Lock()
	if v == d.cfg.Variant {
		d.mu.Unlock()
		return nil
	}
	d.cfg.Variant = v
	if v == VariantTrap && d.cfg.NumTrustees < 1 {
		d.cfg.NumTrustees = d.cfg.GroupSize
	}
	d.mu.Unlock()
	return d.ResetRound()
}
