// Package protocol implements the Atom protocol itself (paper §4): the
// basic anytrust group-shuffle of Algorithm 1, the NIZK-hardened variant
// of Algorithm 2, the trap-message variant with trustees (§4.4), fault
// tolerance via threshold many-trust groups and buddy escrow (§4.5), and
// the retroactive malicious-user identification procedure (§4.6).
//
// The package executes a complete deployment in-process with real
// cryptography: groups are formed from the beacon, group keys are
// generated with DVSS, user submissions carry NIZKs, and every mixing
// iteration performs the real shuffle/reencrypt chain with proof
// verification (NIZK variant) or trap accounting (trap variant). The
// cmd/atomd daemon drives the same code over TCP transport; the
// large-scale simulator (internal/sim) reuses this package's cost
// structure with modeled latencies, mirroring the paper's own
// methodology for networks beyond 1,024 servers.
package protocol

import (
	"fmt"
	"runtime"

	"atom/internal/ecc"
	"atom/internal/topology"
)

// Variant selects the active-attack defense (§4.3 vs §4.4).
type Variant int

const (
	// VariantNIZK uses verifiable shuffles and verifiable decryption
	// (Algorithm 2): misbehavior is detected proactively, at roughly 4×
	// the trap variant's cost (§6.1).
	VariantNIZK Variant = iota
	// VariantTrap uses trap messages and trustees (§4.4): cheaper, with
	// the slightly weaker guarantee that an adversary can remove κ honest
	// messages only with probability 2^−κ.
	VariantTrap
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantNIZK:
		return "nizk"
	case VariantTrap:
		return "trap"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// MixConfig tunes the parallel mixing engine (paper Figure 7: a mixing
// iteration scales near-linearly with cores). Every group fans the
// per-message cryptography of its iteration — shuffle rerandomization,
// re-encryption, proof generation, and proof verification — over a
// bounded worker pool of this size.
type MixConfig struct {
	// Workers is the worker-goroutine count per group. Zero or negative
	// selects the automatic policy: the available CPUs divided evenly
	// among the groups mixing in-process (minimum 1), since a real
	// deployment's groups live on separate machines but ours share one.
	Workers int
}

// effectiveWorkers resolves the knob for a deployment of `groups`
// in-process groups.
func (m MixConfig) effectiveWorkers(groups int) int {
	if m.Workers >= 1 {
		return m.Workers
	}
	if groups < 1 {
		groups = 1
	}
	w := runtime.GOMAXPROCS(0) / groups
	if w < 1 {
		w = 1
	}
	return w
}

// Config describes one Atom deployment.
type Config struct {
	// NumServers is the total server roster size N.
	NumServers int
	// NumGroups is G, the number of groups per topology layer.
	NumGroups int
	// GroupSize is k, servers per group.
	GroupSize int
	// HonestMin is h: the deployment tolerates h−1 failures per group
	// (§4.5). h = 1 gives plain anytrust groups.
	HonestMin int
	// Fraction is f, the assumed adversarial server fraction (recorded;
	// group sizing uses it via groupmgr).
	Fraction float64
	// MessageSize is the fixed plaintext size in bytes; every submission
	// is padded to it (§2: "each user pads her message up to a fixed
	// length").
	MessageSize int
	// Variant selects NIZK or trap protection.
	Variant Variant
	// Iterations is T, the number of mixing iterations (the paper's
	// deployment uses T = 10 on the square network).
	Iterations int
	// Topology names the permutation network: "square" (default) or
	// "butterfly".
	Topology string
	// ButterflyReps is the repetition count for the butterfly topology.
	ButterflyReps int
	// NumTrustees is the size of the extra trustee group (trap variant).
	NumTrustees int
	// BuddyCount is the number of buddy groups escrowing each group's
	// key shares (0 disables escrow).
	BuddyCount int
	// Mix tunes the parallel mixing engine (see MixConfig).
	Mix MixConfig
	// Seed seeds the randomness beacon for deterministic group formation.
	Seed []byte
}

// Validate checks the configuration and applies paper defaults for
// unset optional fields.
func (c *Config) Validate() error {
	if c.NumServers < 1 {
		return fmt.Errorf("protocol: config needs servers")
	}
	if c.NumGroups < 1 {
		return fmt.Errorf("protocol: config needs groups")
	}
	if c.GroupSize < 1 || c.GroupSize > c.NumServers {
		return fmt.Errorf("protocol: group size %d invalid for %d servers", c.GroupSize, c.NumServers)
	}
	if c.HonestMin < 1 {
		c.HonestMin = 1
	}
	if c.HonestMin > c.GroupSize {
		return fmt.Errorf("protocol: h=%d exceeds group size %d", c.HonestMin, c.GroupSize)
	}
	if c.MessageSize < 1 {
		return fmt.Errorf("protocol: message size %d", c.MessageSize)
	}
	// padMessage frames the plaintext with a uint16 length prefix, so a
	// message of more than 65535 bytes silently could not round-trip —
	// reject such configurations here rather than corrupting payloads.
	if c.MessageSize-2 > 65535 {
		return fmt.Errorf("protocol: message size %d exceeds the %d-byte framing limit (uint16 length prefix)",
			c.MessageSize, 65535+2)
	}
	if c.Iterations < 1 {
		c.Iterations = 10
	}
	if c.Topology == "" {
		c.Topology = "square"
	}
	if c.Variant == VariantTrap && c.NumTrustees < 1 {
		c.NumTrustees = c.GroupSize
	}
	if len(c.Seed) == 0 {
		c.Seed = []byte("atom/default-seed")
	}
	return nil
}

// Threshold returns the number of group members that participate in each
// mixing step: k − (h − 1).
func (c *Config) Threshold() int { return c.GroupSize - (c.HonestMin - 1) }

// BuildTopology constructs the configured permutation network.
func (c *Config) BuildTopology() (topology.Topology, error) {
	switch c.Topology {
	case "square":
		return topology.NewSquare(c.NumGroups, c.Iterations)
	case "butterfly":
		reps := c.ButterflyReps
		if reps < 1 {
			reps = 2
		}
		return topology.NewButterfly(c.NumGroups, reps)
	default:
		return nil, fmt.Errorf("protocol: unknown topology %q", c.Topology)
	}
}

// NumPoints returns the number of curve points per payload vector. In
// the trap variant the payload is the CCA2 inner ciphertext (message +
// envelope overhead + the 1-byte kind tag); in the NIZK variant it is
// the padded plaintext plus the tag.
func (c *Config) NumPoints() int {
	return ecc.PointsPerMessage(c.PayloadBytes())
}

// PayloadBytes returns the byte length of the plaintext that each
// routed vector must carry.
func (c *Config) PayloadBytes() int {
	if c.Variant == VariantTrap {
		return innerCiphertextLen(c.MessageSize)
	}
	return 1 + c.MessageSize // kind tag + padded message
}
