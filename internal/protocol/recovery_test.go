package protocol

import (
	"testing"

	"atom/internal/dvss"
	"atom/internal/ecc"
)

// TestEscrowAccessors exercises the primitives the distributed engine
// drives §4.5 recovery over the wire with: exporting a buddy member's
// escrow pieces, verifying a solicited piece before reconstruction
// (a byzantine buddy's corrupt piece must be rejected up front), and
// installing a reconstructed share only when it matches the group's
// public Feldman commitments.
func TestEscrowAccessors(t *testing.T) {
	cfg := Config{
		NumServers: 16, NumGroups: 3, GroupSize: 3, HonestMin: 2, BuddyCount: 1,
		MessageSize: 24, Variant: VariantNIZK, Iterations: 3,
		Seed: []byte("recovery-accessors"),
	}
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.FailGroupMember(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.FailGroupMember(0, 1); err != nil {
		t.Fatal(err)
	}
	plan, err := d.RecoveryPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Failed) != 2 || plan.Failed[0] != 0 || plan.Failed[1] != 1 {
		t.Fatalf("plan.Failed = %v, want [0 1]", plan.Failed)
	}
	if len(plan.Buddies) != 1 || plan.Threshold != 2 {
		t.Fatalf("plan = %+v, want 1 buddy and threshold 2", plan)
	}
	buddy := plan.Buddies[0]

	// Gather pieces for position 0 the way the wire path does: each
	// buddy member exports its fragments, the coordinator verifies each
	// before reconstruction.
	var indices []int
	var pieces []*ecc.Scalar
	for idx := 1; idx <= cfg.GroupSize && len(pieces) < plan.Threshold; idx++ {
		for _, ep := range d.EscrowPieces(buddy, idx) {
			if ep.GID != 0 || ep.Pos != 0 {
				continue
			}
			if err := d.CheckEscrowPiece(0, buddy, 0, idx, ep.Piece); err != nil {
				t.Fatalf("genuine piece from buddy member %d rejected: %v", idx, err)
			}
			// The same scalar under the WRONG index is a forgery and
			// must fail verification.
			if idx > 1 {
				if err := d.CheckEscrowPiece(0, buddy, 0, idx-1, ep.Piece); err == nil {
					t.Fatal("corrupted escrow piece passed verification")
				}
			}
			indices = append(indices, idx)
			pieces = append(pieces, ep.Piece)
		}
	}
	if len(pieces) < plan.Threshold {
		t.Fatalf("collected %d pieces, need %d", len(pieces), plan.Threshold)
	}
	share, err := dvss.RecoverShare(indices, pieces)
	if err != nil {
		t.Fatal(err)
	}

	// The reconstructed share only installs at its own position: it is
	// position 0's share, so position 1 must refuse it.
	if err := d.InstallRecoveredShare(0, 1, share, 201); err == nil {
		t.Fatal("wrong-position share installed")
	}
	if err := d.InstallRecoveredShare(0, 0, share, 200); err != nil {
		t.Fatalf("genuine recovered share refused: %v", err)
	}
	// Position 0 is healthy again; a second install must refuse (the
	// position is no longer failed).
	if err := d.InstallRecoveredShare(0, 0, share, 200); err == nil {
		t.Fatal("install into a healthy position succeeded")
	}
	plan, err = d.RecoveryPlan(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Failed) != 1 || plan.Failed[0] != 1 {
		t.Fatalf("after recovering pos 0, plan.Failed = %v, want [1]", plan.Failed)
	}
	// One recovered position puts the group back at threshold: it can
	// mix degraded (NeedsRecovery false) even though position 1 is
	// still down. The in-process path then restores full strength.
	if need, _ := d.GroupNeedsRecovery(0); need {
		t.Fatal("group 0 under threshold with 2 of 3 members live")
	}
	if err := d.RecoverGroup(0, []int{201}); err != nil {
		t.Fatal(err)
	}
	if need, _ := d.GroupNeedsRecovery(0); need {
		t.Fatal("group 0 still needs recovery after RecoverGroup")
	}
	if n, err := d.GroupLiveMembers(0); err != nil || n != cfg.GroupSize {
		t.Fatalf("GroupLiveMembers = %d, %v; want %d", n, err, cfg.GroupSize)
	}
}
