package protocol

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/elgamal"
	"atom/internal/nizk"
)

// Wire encodings for user submissions, so remote clients (cmd/atomclient
// and the public atom.Client) perform all cryptography locally and ship
// opaque bytes to the entry group's servers.

const (
	wireKindSubmission     byte = 1
	wireKindTrapSubmission byte = 2
)

func writeChunk(buf *bytes.Buffer, b []byte) {
	var ln [4]byte
	binary.BigEndian.PutUint32(ln[:], uint32(len(b)))
	buf.Write(ln[:])
	buf.Write(b)
}

func readChunk(rd *bytes.Reader, limit int) ([]byte, error) {
	var ln [4]byte
	if _, err := io.ReadFull(rd, ln[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(ln[:])
	if int(n) > limit {
		return nil, fmt.Errorf("protocol: wire chunk of %d bytes exceeds limit %d", n, limit)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(rd, b); err != nil {
		return nil, err
	}
	return b, nil
}

const wireChunkLimit = 1 << 20

// Encode serializes a NIZK-variant submission.
func (s *Submission) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(wireKindSubmission)
	var gid [8]byte
	binary.BigEndian.PutUint64(gid[:], uint64(s.GID))
	buf.Write(gid[:])
	writeChunk(&buf, s.Ciphertext.Marshal())
	writeChunk(&buf, s.Proof.Marshal())
	return buf.Bytes()
}

// DecodeSubmission parses a NIZK-variant submission.
func DecodeSubmission(data []byte) (*Submission, error) {
	rd := bytes.NewReader(data)
	kind, err := rd.ReadByte()
	if err != nil || kind != wireKindSubmission {
		return nil, fmt.Errorf("protocol: not a submission (kind %d, err %v)", kind, err)
	}
	var gid [8]byte
	if _, err := io.ReadFull(rd, gid[:]); err != nil {
		return nil, err
	}
	ctb, err := readChunk(rd, wireChunkLimit)
	if err != nil {
		return nil, fmt.Errorf("protocol: decode submission ciphertext: %w", err)
	}
	vec, err := elgamal.UnmarshalVector(ctb)
	if err != nil {
		return nil, err
	}
	pb, err := readChunk(rd, wireChunkLimit)
	if err != nil {
		return nil, fmt.Errorf("protocol: decode submission proof: %w", err)
	}
	proof, err := nizk.UnmarshalEncProof(pb)
	if err != nil {
		return nil, err
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("protocol: decode submission: trailing bytes")
	}
	return &Submission{GID: int(binary.BigEndian.Uint64(gid[:])), Ciphertext: vec, Proof: proof}, nil
}

// Encode serializes a trap-variant submission.
func (s *TrapSubmission) Encode() []byte {
	var buf bytes.Buffer
	buf.WriteByte(wireKindTrapSubmission)
	var gid [8]byte
	binary.BigEndian.PutUint64(gid[:], uint64(s.GID))
	buf.Write(gid[:])
	for i := 0; i < 2; i++ {
		writeChunk(&buf, s.Ciphertexts[i].Marshal())
		writeChunk(&buf, s.Proofs[i].Marshal())
	}
	writeChunk(&buf, s.Commitment)
	return buf.Bytes()
}

// DecodeTrapSubmission parses a trap-variant submission.
func DecodeTrapSubmission(data []byte) (*TrapSubmission, error) {
	rd := bytes.NewReader(data)
	kind, err := rd.ReadByte()
	if err != nil || kind != wireKindTrapSubmission {
		return nil, fmt.Errorf("protocol: not a trap submission (kind %d, err %v)", kind, err)
	}
	var gid [8]byte
	if _, err := io.ReadFull(rd, gid[:]); err != nil {
		return nil, err
	}
	out := &TrapSubmission{GID: int(binary.BigEndian.Uint64(gid[:]))}
	for i := 0; i < 2; i++ {
		ctb, err := readChunk(rd, wireChunkLimit)
		if err != nil {
			return nil, fmt.Errorf("protocol: decode trap ciphertext %d: %w", i, err)
		}
		if out.Ciphertexts[i], err = elgamal.UnmarshalVector(ctb); err != nil {
			return nil, err
		}
		pb, err := readChunk(rd, wireChunkLimit)
		if err != nil {
			return nil, fmt.Errorf("protocol: decode trap proof %d: %w", i, err)
		}
		if out.Proofs[i], err = nizk.UnmarshalEncProof(pb); err != nil {
			return nil, err
		}
	}
	if out.Commitment, err = readChunk(rd, wireChunkLimit); err != nil {
		return nil, fmt.Errorf("protocol: decode trap commitment: %w", err)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("protocol: decode trap submission: trailing bytes")
	}
	return out, nil
}
