package protocol

import (
	"context"
	"errors"
	"testing"
)

// A restored deployment must carry the original keys: users who
// encrypted against the pre-crash group keys still decrypt after the
// coordinator comes back.
func TestDeploymentStateRoundtrip(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := d.MarshalState()

	d2, err := RestoreDeployment(cfg, state, 0)
	if err != nil {
		t.Fatal(err)
	}
	for gid := 0; gid < d.NumGroups(); gid++ {
		pk, _ := d.GroupPK(gid)
		pk2, _ := d2.GroupPK(gid)
		if !pk.Equal(pk2) {
			t.Fatalf("group %d public key changed across restore", gid)
		}
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d2, c, 16)
	res, err := d2.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	checkMessages(t, res, want)
}

// The escrow table survives restore, so post-crash buddy recovery (for
// members that really are lost) still works.
func TestRestorePreservesEscrows(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	cfg.BuddyCount = 2
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := RestoreDeployment(cfg, d.MarshalState(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.escrows) == 0 || len(d2.escrows) != len(d.escrows) {
		t.Fatalf("restored %d escrows, want %d", len(d2.escrows), len(d.escrows))
	}
}

// A share that no longer opens its Feldman commitments must be refused
// at restore, not surface later as a round that cannot decrypt.
func TestRestoreRejectsTamperedShare(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two members' shares: each still looks like a scalar, but
	// neither verifies at its index.
	keys := d.groups[0].Keys
	keys[0].Share, keys[1].Share = keys[1].Share, keys[0].Share
	if _, err := RestoreDeployment(cfg, d.MarshalState(), 0); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("RestoreDeployment = %v, want ErrStateCorrupt", err)
	}
}

func TestRestoreRejectsTruncatedState(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	state := d.MarshalState()
	if _, err := RestoreDeployment(cfg, state[:len(state)/2], 0); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("RestoreDeployment = %v, want ErrStateCorrupt", err)
	}
}

// Coordinator crash between seal and mix: the journaled sealed round,
// restored against a restored deployment, mixes to the original
// plaintext set — the no-admitted-message-lost guarantee.
func TestSealedRoundRoundtrip(t *testing.T) {
	for _, variant := range []Variant{VariantNIZK, VariantTrap} {
		t.Run(variant.String(), func(t *testing.T) {
			cfg := testConfig(variant)
			d, err := NewDeployment(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewClient(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := submitAll(t, d, c, 16)
			sealed, err := d.SealRound(nil)
			if err != nil {
				t.Fatal(err)
			}
			blob := sealed.Marshal()
			state := d.MarshalState()

			// "Restart": fresh deployment from persisted state, sealed
			// round re-adopted from its journal record.
			d2, err := RestoreDeployment(cfg, state, 0)
			if err != nil {
				t.Fatal(err)
			}
			restored, err := d2.RestoreSealedRound(blob)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Round() != sealed.Round() || restored.Admitted() != sealed.Admitted() {
				t.Fatalf("restored round %d/%d, want %d/%d",
					restored.Round(), restored.Admitted(), sealed.Round(), sealed.Admitted())
			}
			res, err := d2.MixSealed(context.Background(), restored, nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkMessages(t, res, want)

			// The sequencer must have advanced past the replayed id: the
			// next round cannot collide with it.
			next, err := d2.OpenRound()
			if err != nil {
				t.Fatal(err)
			}
			if next.ID() <= restored.Round() {
				t.Fatalf("new round id %d not past replayed id %d", next.ID(), restored.Round())
			}
		})
	}
}

func TestRestoreSealedRoundRejectsGarbage(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.RestoreSealedRound([]byte{sealedVersion, 1, 2, 3}); !errors.Is(err, ErrStateCorrupt) {
		t.Fatalf("RestoreSealedRound = %v, want ErrStateCorrupt", err)
	}
}
