package protocol

import (
	"fmt"

	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// Blame identifies disruptive users after a trap-variant round aborts
// (§4.6): every entry group reveals its (round-specific) private key,
// decrypts the submissions it accepted, and checks each user's pair —
// exactly one well-formed trap matching the user's commitment and naming
// this group, plus one inner ciphertext — and reports users submitting
// duplicate inner ciphertexts. Because group keys are per-round,
// revealing them sacrifices only the already-aborted round.
type BlameReport struct {
	// BadUsers lists users whose submissions were malformed (wrong trap,
	// wrong commitment, missing trap, or duplicate inner ciphertext).
	BadUsers []int
	// Reasons maps user id to a human-readable explanation.
	Reasons map[int]string
}

// IdentifyMaliciousUsers runs the blame procedure over the current
// round's entry groups (after a legacy RunRound abort the aborted round
// stays current until ResetRound, so its records are available here).
func (d *Deployment) IdentifyMaliciousUsers() (*BlameReport, error) {
	return d.currentRound().IdentifyMaliciousUsers()
}

// IdentifyMaliciousUsers runs the blame procedure over this round's
// entry records.
func (rs *RoundState) IdentifyMaliciousUsers() (*BlameReport, error) {
	if rs.variant != VariantTrap {
		return nil, fmt.Errorf("%w: blame procedure applies to the trap variant", ErrWrongVariant)
	}
	d := rs.d

	report := &BlameReport{Reasons: make(map[int]string)}
	blame := func(user int, reason string) {
		if _, dup := report.Reasons[user]; !dup {
			report.BadUsers = append(report.BadUsers, user)
			report.Reasons[user] = reason
		}
	}

	// Duplicate inner ciphertexts are detected across all groups: map
	// payload -> first submitting user.
	innerSeen := make(map[string]int)

	for gid := range rs.groups {
		rs.groups[gid].mu.Lock()
		records := rs.groups[gid].entries
		rs.groups[gid].mu.Unlock()
		if len(records) == 0 {
			continue
		}
		secret, err := d.revealGroupSecret(d.groups[gid])
		if err != nil {
			return nil, fmt.Errorf("protocol: revealing group %d key: %w", gid, err)
		}
		for _, rec := range records {
			if rec.Trap == nil {
				continue
			}
			payloads := make([][]byte, 0, 2)
			decryptOK := true
			for i := 0; i < 2; i++ {
				pts, err := elgamal.DecryptVector(secret, rec.Trap.Ciphertexts[i])
				if err != nil {
					decryptOK = false
					break
				}
				payload, err := ecc.ExtractMessage(pts)
				if err != nil {
					decryptOK = false
					break
				}
				payloads = append(payloads, payload)
			}
			if !decryptOK {
				blame(rec.User, "submission does not decrypt to an embedded payload")
				continue
			}
			var trapPayload, innerPayload []byte
			for _, p := range payloads {
				if len(p) > 0 && p[0] == kindTrap {
					trapPayload = p
				} else if len(p) > 0 && p[0] == kindMessage {
					innerPayload = p
				}
			}
			switch {
			case trapPayload == nil:
				blame(rec.User, "no trap message in submission")
				continue
			case innerPayload == nil:
				blame(rec.User, "no inner ciphertext in submission")
				continue
			}
			if tg, err := trapGID(trapPayload); err != nil || tg != gid {
				blame(rec.User, "trap names the wrong entry group")
				continue
			}
			if !equalBytes(TrapCommitment(trapPayload), rec.Trap.Commitment) {
				blame(rec.User, "trap does not match its commitment")
				continue
			}
			if first, dup := innerSeen[string(innerPayload)]; dup {
				blame(first, "duplicate inner ciphertext")
				blame(rec.User, "duplicate inner ciphertext")
				continue
			}
			innerSeen[string(innerPayload)] = rec.User
		}
	}
	return report, nil
}

// revealGroupSecret reconstructs a group's round secret from a threshold
// of member shares — the §4.6 "all entry groups first reveal their
// private keys" step. It is destructive for the round's anonymity at
// that group, which is why it only runs after an abort.
func (d *Deployment) revealGroupSecret(g *GroupState) (*ecc.Scalar, error) {
	active, err := g.Active()
	if err != nil {
		return nil, err
	}
	shares := make([]*ecc.Scalar, len(active))
	for i, idx := range active {
		shares[i] = g.Keys[idx-1].Share
	}
	secret, err := dvss.Reconstruct(active, shares)
	if err != nil {
		return nil, err
	}
	if !ecc.BaseMul(secret).Equal(g.PK) {
		return nil, fmt.Errorf("protocol: reconstructed key does not match group key")
	}
	return secret, nil
}
