package protocol

import (
	"crypto/rand"
	"testing"

	"atom/internal/elgamal"
)

// TestFallbackToNIZKAfterPersistentDisruption exercises the full §4.6
// escalation: a malicious user disrupts a trap round, the blame
// procedure names them, and the deployment falls back to the NIZK
// variant, under which clean rounds proceed and server-side tampering
// is caught proactively.
func TestFallbackToNIZKAfterPersistentDisruption(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 6)

	// The disruptive user submits a trap with a bogus commitment.
	pk, _ := d.GroupPK(0)
	tpk, _ := d.TrusteePK()
	evil, err := c.SubmitTrap([]byte("dos"), pk, tpk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	evil.Commitment = TrapCommitment([]byte("lies"))
	if err := d.SubmitTrapUser(666, evil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.RunRound(); err == nil {
		t.Fatal("disrupted round succeeded")
	}
	report, err := d.IdentifyMaliciousUsers()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.BadUsers) != 1 || report.BadUsers[0] != 666 {
		t.Fatalf("blame = %v", report.BadUsers)
	}

	// Escalate: fall back to NIZKs (§4.6), blacklisting user 666.
	if err := d.SwitchVariant(VariantNIZK); err != nil {
		t.Fatal(err)
	}
	nizkCfg := d.Config()
	if nizkCfg.Variant != VariantNIZK {
		t.Fatal("variant did not switch")
	}
	nc, err := NewClient(&nizkCfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for u := 0; u < 8; u++ {
		gid := u % cfg.NumGroups
		gpk, _ := d.GroupPK(gid)
		msg := []byte{byte('a' + u)}
		want[string(msg)] = true
		sub, err := nc.Submit(msg, gpk, gid, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.SubmitUser(u, sub); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.RunRound()
	if err != nil {
		t.Fatalf("NIZK fallback round failed: %v", err)
	}
	checkMessages(t, res, want)

	// Under NIZKs, server tampering is caught proactively.
	want2 := map[string]bool{}
	for u := 0; u < 8; u++ {
		gid := u % cfg.NumGroups
		gpk, _ := d.GroupPK(gid)
		msg := []byte{byte('A' + u)}
		want2[string(msg)] = true
		sub, _ := nc.Submit(msg, gpk, gid, rand.Reader)
		if err := d.SubmitUser(u, sub); err != nil {
			t.Fatal(err)
		}
	}
	d.SetAdversary(&Adversary{
		Layer: 0, GID: 1, Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) == 0 {
				return nil
			}
			return batch[:len(batch)-1]
		},
	})
	if _, err := d.RunRound(); err == nil {
		t.Fatal("NIZK fallback failed to catch tampering")
	}
	// The trustee-free reset path must also work.
	if err := d.ResetRound(); err != nil {
		t.Fatal(err)
	}
	// And switching back to traps provisions fresh trustees.
	if err := d.SwitchVariant(VariantTrap); err != nil {
		t.Fatal(err)
	}
	if _, err := d.TrusteePK(); err != nil {
		t.Fatalf("no trustees after switching back: %v", err)
	}
	if err := d.SwitchVariant(VariantTrap); err != nil {
		t.Fatal("no-op switch should succeed")
	}
}
