package protocol

import (
	"atom/internal/cca2"
)

// trapFinale implements steps 3–6 of Figure 2: sort the exit outputs
// into traps and inner ciphertexts, route traps back to the groups named
// in their gid field and inner ciphertexts to hash-designated checking
// groups, verify trap commitments and duplicate-freedom, report to the
// trustees, and — if the trustees release the key — decrypt the inner
// ciphertexts into the round's plaintext messages.
func (d *Deployment) trapFinale(rs *RoundState, exitPayloads map[int][][]byte) ([][]byte, error) {
	G := len(d.groups)

	// Route: traps to their entry group, inner ciphertexts to the group
	// selected by universal hashing (§4.4).
	trapsByGroup := make([][][]byte, G)
	innerByGroup := make([][][]byte, G)
	malformed := make(map[int]bool) // exit groups that emitted garbage
	for gid, payloads := range exitPayloads {
		for _, p := range payloads {
			body, kind, err := DecodePlaintext(p)
			if err != nil {
				malformed[gid] = true
				continue
			}
			switch kind {
			case kindTrap:
				tg, err := trapGID(body)
				if err != nil || tg < 0 || tg >= G {
					malformed[gid] = true
					continue
				}
				trapsByGroup[tg] = append(trapsByGroup[tg], body)
			case kindMessage:
				innerByGroup[hashToGroup(body, G)] = append(innerByGroup[hashToGroup(body, G)], body)
			}
		}
	}

	// Each group checks its traps against its commitment set and its
	// inner ciphertexts for duplicates, then reports (§4.4).
	reports := make([]ExitReport, G)
	for gid := 0; gid < G; gid++ {
		commitments := rs.groups[gid].commitments
		report := ExitReport{GID: gid, TrapsOK: true, InnerOK: !malformed[gid]}

		// Trap check: every expected commitment matched exactly once, no
		// unexpected traps.
		expected := make(map[string]int, len(commitments))
		for c := range commitments {
			expected[c]++
		}
		for _, trap := range trapsByGroup[gid] {
			c := string(TrapCommitment(trap))
			if expected[c] == 0 {
				report.TrapsOK = false
				continue
			}
			expected[c]--
			report.NumTraps++
		}
		for _, remaining := range expected {
			if remaining > 0 {
				report.TrapsOK = false // a committed trap never arrived
			}
		}

		// Inner-ciphertext check: well-formed and duplicate-free.
		seen := make(map[string]bool, len(innerByGroup[gid]))
		for _, inner := range innerByGroup[gid] {
			key := string(inner)
			if seen[key] {
				report.InnerOK = false
				continue
			}
			seen[key] = true
			report.NumInner++
		}
		reports[gid] = report
	}

	shares, err := rs.trustees.Release(reports)
	if err != nil {
		return nil, err
	}

	// Step 6: decrypt the inner ciphertexts.
	var msgs [][]byte
	for gid := 0; gid < G; gid++ {
		for _, inner := range innerByGroup[gid] {
			padded, err := cca2.DecryptWithShares(shares, inner)
			if err != nil {
				// An undecryptable inner ciphertext past the count checks
				// means a malicious user self-encrypted garbage; her
				// message is dropped but the round stands (only her own
				// slot is lost).
				continue
			}
			msg, err := unpadMessage(padded)
			if err != nil {
				continue
			}
			msgs = append(msgs, msg)
		}
	}
	sortMessages(msgs)
	return msgs, nil
}

// TrapReports recomputes exit reports for the given payloads against
// the CURRENT round's commitment sets, without releasing anything;
// exposed for tests and monitoring.
func (d *Deployment) TrapReports(exitPayloads map[int][][]byte) []ExitReport {
	return d.currentRound().TrapReports(exitPayloads)
}

// TrapReports recomputes exit reports for the given payloads against
// this round's commitment sets.
func (rs *RoundState) TrapReports(exitPayloads map[int][][]byte) []ExitReport {
	G := len(rs.d.groups)
	trapsByGroup := make([][][]byte, G)
	innerByGroup := make([][][]byte, G)
	for _, payloads := range exitPayloads {
		for _, p := range payloads {
			body, kind, err := DecodePlaintext(p)
			if err != nil {
				continue
			}
			switch kind {
			case kindTrap:
				if tg, err := trapGID(body); err == nil && tg >= 0 && tg < G {
					trapsByGroup[tg] = append(trapsByGroup[tg], body)
				}
			case kindMessage:
				innerByGroup[hashToGroup(body, G)] = append(innerByGroup[hashToGroup(body, G)], body)
			}
		}
	}
	reports := make([]ExitReport, G)
	for gid := 0; gid < G; gid++ {
		commitments := rs.groups[gid].commitments
		r := ExitReport{GID: gid, TrapsOK: true, InnerOK: true}
		expected := make(map[string]int, len(commitments))
		for c := range commitments {
			expected[c]++
		}
		for _, trap := range trapsByGroup[gid] {
			c := string(TrapCommitment(trap))
			if expected[c] == 0 {
				r.TrapsOK = false
				continue
			}
			expected[c]--
			r.NumTraps++
		}
		for _, rem := range expected {
			if rem > 0 {
				r.TrapsOK = false
			}
		}
		seen := make(map[string]bool)
		for _, inner := range innerByGroup[gid] {
			if seen[string(inner)] {
				r.InnerOK = false
				continue
			}
			seen[string(inner)] = true
			r.NumInner++
		}
		reports[gid] = r
	}
	return reports
}
