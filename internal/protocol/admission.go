package protocol

import (
	"fmt"
	"time"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/nizk"
)

// Batched admission: the ingestion frontend collects wire-encoded
// submissions and admits them together, so the per-submission EncProof
// checks collapse into one random-linear-combination verification
// (nizk.VerifyEncBatch) instead of k independent ones. The admission
// *decisions* are unchanged — a batch admits exactly the submissions the
// serial path would admit, and rejects each offender with byte-for-byte
// the error SubmitEncoded would have returned — only the verification
// cost is amortized. On a combined-check failure every batched proof is
// re-verified serially to attribute rejections, so a single malicious
// submission cannot poison its batch-mates.

// BatchAdmitStats is the observability record of one admission batch,
// surfaced through the service Observer into /metrics.
type BatchAdmitStats struct {
	// Size is the number of submissions in the batch.
	Size int
	// Verified is the number of submissions whose proofs entered the
	// combined verification (structurally broken ones never do).
	Verified int
	// VerifyTime is the wall time of the combined proof verification,
	// including the serial attribution re-scan when the batch fails.
	VerifyTime time.Duration
	// Admitted and Rejected partition the batch.
	Admitted int
	Rejected int
}

// admitItem is the per-submission scratch state of one admission batch.
type admitItem struct {
	err  error
	sub  *Submission
	trap *TrapSubmission
	pk   *ecc.Point
}

// SubmitEncodedBatch admits many wire-encoded submissions at once,
// verifying their encryption proofs as a single batch. users[i] is the
// submitting user of wires[i]. The returned slice has one entry per
// submission: nil if admitted, otherwise the same typed error the serial
// SubmitEncoded path would have produced (ErrBadSubmission,
// ErrDuplicateSubmission, ErrRoundClosed, ErrNoSuchGroup). Safe for
// concurrent use with every other Submit method and with sealing.
func (rs *RoundState) SubmitEncodedBatch(users []int, wires [][]byte) ([]error, BatchAdmitStats) {
	items := make([]admitItem, len(wires))
	stats := BatchAdmitStats{Size: len(wires)}

	if rs.sealed.Load() {
		for i := range items {
			items[i].err = fmt.Errorf("%w: round %d is mixing", ErrRoundClosed, rs.id)
		}
		return rs.finishBatch(items, &stats)
	}

	// Decode and structural checks, collecting the proofs of well-formed
	// submissions for the combined check. The serial path interleaves
	// structural checks with proof verification (trap ciphertext 0 is
	// fully verified before ciphertext 1 is even looked at), so when a
	// trap submission mixes a good ciphertext 0 with a structurally broken
	// ciphertext 1 we fall back to serial verification of ciphertext 0 to
	// report whichever failure the serial path hits first.
	np := rs.d.cfg.NumPoints()
	var pks []*ecc.Point
	var vecs []elgamal.Vector
	var gids []uint64
	var owners []int // unit index → item index, for the attribution re-scan
	for i, wire := range wires {
		it := &items[i]
		switch rs.variant {
		case VariantNIZK:
			sub, err := DecodeSubmission(wire)
			if err != nil {
				it.err = fmt.Errorf("%w: %v", ErrBadSubmission, err)
				continue
			}
			g, err := rs.d.groupFor(sub.GID)
			if err != nil {
				it.err = err
				continue
			}
			if err := checkSubmissionShape(sub.Ciphertext, np); err != nil {
				it.err = err
				continue
			}
			it.sub, it.pk = sub, g.PK
			pks = append(pks, g.PK)
			vecs = append(vecs, sub.Ciphertext)
			gids = append(gids, uint64(sub.GID))
			owners = append(owners, i)
		default:
			sub, err := DecodeTrapSubmission(wire)
			if err != nil {
				it.err = fmt.Errorf("%w: %v", ErrBadSubmission, err)
				continue
			}
			g, err := rs.d.groupFor(sub.GID)
			if err != nil {
				it.err = err
				continue
			}
			if err := checkSubmissionShape(sub.Ciphertexts[0], np); err != nil {
				it.err = fmt.Errorf("ciphertext 0: %w", err)
				continue
			}
			if err := checkSubmissionShape(sub.Ciphertexts[1], np); err != nil {
				if err0 := verifySubmissionVector(g.PK, sub.Ciphertexts[0], sub.GID, sub.Proofs[0], np); err0 != nil {
					it.err = fmt.Errorf("ciphertext 0: %w", err0)
				} else {
					it.err = fmt.Errorf("ciphertext 1: %w", err)
				}
				continue
			}
			it.trap, it.pk = sub, g.PK
			for ci := 0; ci < 2; ci++ {
				pks = append(pks, g.PK)
				vecs = append(vecs, sub.Ciphertexts[ci])
				gids = append(gids, uint64(sub.GID))
				owners = append(owners, i)
			}
		}
		stats.Verified++
	}

	// One combined check vouches for every well-formed proof; on failure,
	// re-verify serially so each offender gets the serial path's exact
	// error and its batch-mates still land.
	start := time.Now()
	if len(vecs) > 0 {
		if nizk.VerifyEncBatch(pks, vecs, gids, proofUnits(items, owners)) != nil {
			rescanned := make(map[int]bool, len(owners))
			for _, i := range owners {
				if rescanned[i] {
					continue
				}
				rescanned[i] = true
				it := &items[i]
				if it.sub != nil {
					it.err = verifySubmissionVector(it.pk, it.sub.Ciphertext, it.sub.GID, it.sub.Proof, np)
				} else {
					for ci := 0; ci < 2; ci++ {
						if err := verifySubmissionVector(it.pk, it.trap.Ciphertexts[ci], it.trap.GID, it.trap.Proofs[ci], np); err != nil {
							it.err = fmt.Errorf("ciphertext %d: %w", ci, err)
							break
						}
					}
				}
			}
		}
	}
	stats.VerifyTime = time.Since(start)

	// Proofs are settled; run the serial tail — duplicate filter and
	// group append — in submission order, so duplicates within the batch
	// resolve exactly as back-to-back serial submissions would.
	for i := range items {
		it := &items[i]
		if it.err != nil {
			continue
		}
		switch {
		case it.sub != nil:
			it.err = rs.admitVerified(users[i], it.sub)
		case it.trap != nil:
			it.err = rs.admitVerifiedTrap(users[i], it.trap)
		}
	}
	return rs.finishBatch(items, &stats)
}

// proofUnits gathers the EncProofs matching the (pks, vecs, gids) unit
// slices built during the structural pass.
func proofUnits(items []admitItem, owners []int) []*nizk.EncProof {
	proofs := make([]*nizk.EncProof, len(owners))
	trapSeen := make(map[int]int, len(owners))
	for u, i := range owners {
		if items[i].sub != nil {
			proofs[u] = items[i].sub.Proof
		} else {
			proofs[u] = items[i].trap.Proofs[trapSeen[i]]
			trapSeen[i]++
		}
	}
	return proofs
}

// admitVerified runs the post-verification tail of the serial NIZK path:
// duplicate-filter reservation and the sealed-re-check append.
func (rs *RoundState) admitVerified(user int, sub *Submission) error {
	fp := string(sub.Ciphertext.Fingerprint())
	if err := rs.reserve(fp); err != nil {
		return err
	}
	rg := &rs.groups[sub.GID]
	rg.mu.Lock()
	if rs.sealed.Load() {
		rg.mu.Unlock()
		rs.release(fp)
		return fmt.Errorf("%w: round %d is mixing", ErrRoundClosed, rs.id)
	}
	rg.batch = append(rg.batch, sub.Ciphertext.Clone())
	rg.entries = append(rg.entries, entryRecord{User: user, Sub: sub})
	rg.mu.Unlock()
	rs.pending.Add(1)
	return nil
}

// admitVerifiedTrap runs the post-verification tail of the serial trap
// path: commitment shape, duplicate filters, commitment-reuse check, and
// the sealed-re-check append.
func (rs *RoundState) admitVerifiedTrap(user int, sub *TrapSubmission) error {
	if len(sub.Commitment) != 32 {
		return fmt.Errorf("%w: trap commitment must be 32 bytes, got %d", ErrBadSubmission, len(sub.Commitment))
	}
	fp0 := string(sub.Ciphertexts[0].Fingerprint())
	fp1 := string(sub.Ciphertexts[1].Fingerprint())
	if err := rs.reserve(fp0); err != nil {
		return err
	}
	if err := rs.reserve(fp1); err != nil {
		rs.release(fp0)
		return err
	}
	rg := &rs.groups[sub.GID]
	rg.mu.Lock()
	if rs.sealed.Load() {
		rg.mu.Unlock()
		rs.release(fp0)
		rs.release(fp1)
		return fmt.Errorf("%w: round %d is mixing", ErrRoundClosed, rs.id)
	}
	if _, dup := rg.commitments[string(sub.Commitment)]; dup {
		rg.mu.Unlock()
		rs.release(fp0)
		rs.release(fp1)
		return fmt.Errorf("%w: trap commitment reused", ErrDuplicateSubmission)
	}
	rg.batch = append(rg.batch, sub.Ciphertexts[0].Clone(), sub.Ciphertexts[1].Clone())
	rg.commitments[string(sub.Commitment)] = user
	rg.entries = append(rg.entries, entryRecord{User: user, Trap: sub})
	rg.mu.Unlock()
	rs.pending.Add(1)
	return nil
}

// finishBatch folds the batch outcome into the round's admission
// accounting and totals the stats.
func (rs *RoundState) finishBatch(items []admitItem, stats *BatchAdmitStats) ([]error, BatchAdmitStats) {
	errs := make([]error, len(items))
	for i := range items {
		errs[i] = items[i].err
		if items[i].err != nil {
			rs.rejected.Add(1)
			stats.Rejected++
		} else {
			stats.Admitted++
		}
	}
	return errs, *stats
}
