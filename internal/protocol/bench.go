package protocol

import (
	"crypto/rand"
	"fmt"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
)

// BenchHarness is a single-group fixture for the real-cryptography
// microbenchmarks behind Figures 5–7: one anytrust group holding a batch
// of onion ciphertexts, mixing toward a single successor group. The
// harness calls the exact iteration code of the deployment
// (GroupState.runIteration), including the parallel.Pool engine behind
// MixConfig — there is no bench-only crypto path, so benchmark numbers
// reflect the protocol as shipped at any worker count.
type BenchHarness struct {
	gs      *GroupState
	variant Variant
	nextPK  *ecc.Point
	batch   []elgamal.Vector
}

// NewBenchHarness creates a group of groupSize servers holding
// numMessages ciphertexts of numPoints points each.
func NewBenchHarness(groupSize, numMessages, numPoints int, variant Variant) (*BenchHarness, error) {
	members := make([]int, groupSize)
	for i := range members {
		members[i] = i
	}
	gs, err := newGroupState(&groupmgr.Group{ID: 0, Members: members}, groupSize, rand.Reader)
	if err != nil {
		return nil, err
	}
	next, err := elgamal.KeyGen(rand.Reader)
	if err != nil {
		return nil, err
	}
	h := &BenchHarness{gs: gs, variant: variant, nextPK: next.PK}
	h.batch = make([]elgamal.Vector, numMessages)
	for i := range h.batch {
		payload := []byte(fmt.Sprintf("bench message %06d", i))
		pts, err := ecc.EmbedMessage(payload, numPoints)
		if err != nil {
			return nil, err
		}
		vec, _, err := elgamal.EncryptVector(gs.PK, pts, rand.Reader)
		if err != nil {
			return nil, err
		}
		h.batch[i] = vec
	}
	return h, nil
}

// RunIteration executes one full mixing iteration (shuffle by every
// member, divide, decrypt-and-reencrypt by every member) exactly as the
// deployment does, under the given parallelism knob — the same
// MixConfig a Deployment threads into every round's iterations.
// MixConfig{Workers: 1} measures the serial baseline; the zero value
// uses the automatic policy (all CPUs for this single group).
func (h *BenchHarness) RunIteration(mix MixConfig) error {
	_, _, err := h.gs.runIteration(mixParams{
		layer:    0,
		batch:    h.batch,
		variant:  h.variant,
		destGIDs: []int{0},
		destPKs:  []*ecc.Point{h.nextPK},
		rnd:      rand.Reader,
		workers:  mix.effectiveWorkers(1),
	})
	return err
}

// NumMessages returns the batch size (handy for benchmark reporting).
func (h *BenchHarness) NumMessages() int { return len(h.batch) }
