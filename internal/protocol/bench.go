package protocol

import (
	"crypto/rand"
	"fmt"
	"runtime"
	"sync"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
	"atom/internal/nizk"
)

// BenchHarness is a single-group fixture for the real-cryptography
// microbenchmarks behind Figures 5–7: one anytrust group holding a batch
// of onion ciphertexts, mixing toward a single successor group. The
// harness reuses the exact iteration code of the deployment
// (GroupState.runIteration), so benchmark numbers reflect the protocol
// as shipped.
type BenchHarness struct {
	gs      *GroupState
	variant Variant
	nextPK  *ecc.Point
	batch   []elgamal.Vector
}

// NewBenchHarness creates a group of groupSize servers holding
// numMessages ciphertexts of numPoints points each.
func NewBenchHarness(groupSize, numMessages, numPoints int, variant Variant) (*BenchHarness, error) {
	members := make([]int, groupSize)
	for i := range members {
		members[i] = i
	}
	gs, err := newGroupState(&groupmgr.Group{ID: 0, Members: members}, groupSize, rand.Reader)
	if err != nil {
		return nil, err
	}
	next, err := elgamal.KeyGen(rand.Reader)
	if err != nil {
		return nil, err
	}
	h := &BenchHarness{gs: gs, variant: variant, nextPK: next.PK}
	h.batch = make([]elgamal.Vector, numMessages)
	for i := range h.batch {
		payload := []byte(fmt.Sprintf("bench message %06d", i))
		pts, err := ecc.EmbedMessage(payload, numPoints)
		if err != nil {
			return nil, err
		}
		vec, _, err := elgamal.EncryptVector(gs.PK, pts, rand.Reader)
		if err != nil {
			return nil, err
		}
		h.batch[i] = vec
	}
	return h, nil
}

// RunIteration executes one full mixing iteration (shuffle by every
// member, divide, decrypt-and-reencrypt by every member) exactly as the
// deployment does.
func (h *BenchHarness) RunIteration() error {
	_, _, err := h.gs.runIteration(mixParams{
		layer:    0,
		batch:    h.batch,
		variant:  h.variant,
		destGIDs: []int{0},
		destPKs:  []*ecc.Point{h.nextPK},
		rnd:      rand.Reader,
	})
	return err
}

// RunIterationParallel executes one mixing iteration with the
// per-message cryptography fanned out over the given number of worker
// goroutines — the software analogue of Figure 7's multi-core servers.
// The trap variant's work (rerandomization and reencryption) is
// embarrassingly parallel; the NIZK variant's proofs are generated and
// verified over the whole batch and remain sequential, which is exactly
// the sub-linear behavior the paper reports (§6.1: "the NIZK proof
// generation and verification technique we use is inherently
// sequential").
func (h *BenchHarness) RunIterationParallel(workers int) error {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	pk := h.gs.PK
	active, err := h.gs.Active()
	if err != nil {
		return err
	}
	batch := h.batch

	for range active {
		// Shuffle: fresh permutation, parallel rerandomization.
		perm, err := elgamal.RandomPerm(len(batch), rand.Reader)
		if err != nil {
			return err
		}
		out := make([]elgamal.Vector, len(batch))
		rands := make([][]*ecc.Scalar, len(batch))
		if err := parallelEach(len(batch), workers, func(i int) error {
			src := batch[perm[i]]
			v := make(elgamal.Vector, len(src))
			rs := make([]*ecc.Scalar, len(src))
			for j, ct := range src {
				r, err := ecc.RandomScalar(rand.Reader)
				if err != nil {
					return err
				}
				v[j] = elgamal.RerandomizeWithRandomness(pk, ct, r)
				rs[j] = r
			}
			out[i] = v
			rands[i] = rs
			return nil
		}); err != nil {
			return err
		}
		if h.variant == VariantNIZK {
			proof, err := nizk.ProveShuffle(pk, batch, out, perm, rands, rand.Reader)
			if err != nil {
				return err
			}
			if err := nizk.VerifyShuffle(pk, batch, out, proof); err != nil {
				return err
			}
		}
		batch = out
	}

	// Decrypt-and-reencrypt chain, parallel across messages.
	for _, idx := range active {
		gk := h.gs.Keys[idx-1]
		eff, effPub, err := gk.EffectiveKey(active)
		if err != nil {
			return err
		}
		next := make([]elgamal.Vector, len(batch))
		if err := parallelEach(len(batch), workers, func(i int) error {
			out, rs, err := elgamal.ReEncVector(eff, h.nextPK, batch[i], rand.Reader)
			if err != nil {
				return err
			}
			if h.variant == VariantNIZK {
				proof, err := nizk.ProveReEnc(eff, effPub, h.nextPK, batch[i], out, rs, rand.Reader)
				if err != nil {
					return err
				}
				if err := nizk.VerifyReEnc(effPub, h.nextPK, batch[i], out, proof); err != nil {
					return err
				}
			}
			next[i] = out
			return nil
		}); err != nil {
			return err
		}
		batch = next
	}
	return nil
}

// parallelEach runs fn(i) for i in [0,n) across the given worker count,
// returning the first error.
func parallelEach(n, workers int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := fn(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// NumMessages returns the batch size (handy for benchmark reporting).
func (h *BenchHarness) NumMessages() int { return len(h.batch) }
