package protocol

import (
	"bytes"
	"encoding/hex"
	"testing"

	"atom/internal/beacon"
)

// TestTrapDerivationGolden pins trap derivation from a beacon output:
// the trap plaintext and its commitment must be an exact deterministic
// function of the beacon value when the nonce entropy comes from the
// beacon's domain-separated stream. Trap accounting only works if every
// honest member of the entry group derives the identical trap set, so
// this byte-level vector guards the consensus.
func TestTrapDerivationGolden(t *testing.T) {
	value := beacon.New([]byte("atom/golden/v1")).Round(2)
	if hex.EncodeToString(value) != "b851c001dac57cffe4ee9985f26a54246f7d26ac1012f77a1406220650ec09b0" {
		t.Fatalf("beacon value drifted: %x", value)
	}
	trap, err := makeTrap(1, 64, beacon.StreamFrom(value, "trap-derivation"))
	if err != nil {
		t.Fatal(err)
	}
	wantTrap := "540000000000000001f03ff3c9620e70f401a77728c75dae15000000000000000000000000000000000000000000000000000000000000000000000000000000"
	if hex.EncodeToString(trap) != wantTrap {
		t.Errorf("trap plaintext drifted:\n got %x\nwant %s", trap, wantTrap)
	}
	wantCommit := "918dad8e900e341dd6bd3f28399e050abbac4bd1603d38e2331f92bd54aaa1a0"
	if hex.EncodeToString(TrapCommitment(trap)) != wantCommit {
		t.Errorf("trap commitment drifted: %x", TrapCommitment(trap))
	}

	// Re-deriving from the same beacon value is bit-identical; a
	// different purpose string is not (domain separation).
	again, err := makeTrap(1, 64, beacon.StreamFrom(value, "trap-derivation"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(trap, again) {
		t.Error("trap derivation not deterministic for one beacon value")
	}
	other, err := makeTrap(1, 64, beacon.StreamFrom(value, "other-purpose"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(trap, other) {
		t.Error("purpose string does not separate trap derivation")
	}
}
