package protocol

import (
	"errors"
	"fmt"
)

// Sentinel errors of the protocol layer. Every error returned across
// the package boundary wraps one of these (or ErrRoundAborted in
// trustees.go), so callers can classify failures with errors.Is instead
// of string matching. The atom package re-exports a public taxonomy
// built on top of them.
var (
	// ErrBadSubmission marks a submission that failed validation:
	// malformed wire bytes, wrong vector shape, a mid-chain Y slot, a
	// bad commitment, or a rejected proof of plaintext knowledge.
	ErrBadSubmission = errors.New("protocol: bad submission")

	// ErrDuplicateSubmission marks a byte-identical replay of an already
	// accepted ciphertext or a reused trap commitment. It wraps
	// ErrBadSubmission: every duplicate is also a bad submission.
	ErrDuplicateSubmission = fmt.Errorf("%w: duplicate", ErrBadSubmission)

	// ErrNoSuchGroup marks an out-of-range group id.
	ErrNoSuchGroup = errors.New("protocol: no such group")

	// ErrWrongVariant marks an operation that requires the other
	// active-attack defense (e.g. a trap submission on a NIZK network).
	ErrWrongVariant = errors.New("protocol: wrong variant")

	// ErrProofRejected marks a NIZK-variant round abort: a member's
	// shuffle or re-encryption proof failed verification (Algorithm 2).
	ErrProofRejected = errors.New("protocol: proof rejected")

	// ErrRecoveryNeeded marks a group that has lost more than its h−1
	// failure budget and cannot mix until buddy-group recovery runs.
	ErrRecoveryNeeded = errors.New("protocol: group needs recovery")

	// ErrMemberLost marks a benign availability failure: a group member
	// crashed or became unreachable (detected by missing heartbeats or a
	// failed delivery), as opposed to a byzantine fault (ErrProofRejected
	// blames a member for a bad proof) or a caller cancellation. Errors
	// carrying it usually also carry a *Loss attribution, and — when the
	// loss pushed the group past its h−1 budget — additionally match
	// ErrRecoveryNeeded.
	ErrMemberLost = errors.New("protocol: group member lost")

	// ErrRoundClosed marks a submission into a round that has already
	// been sealed for mixing.
	ErrRoundClosed = errors.New("protocol: round closed to submissions")
)

// Blame attaches the offending group and member to a round-abort error
// so callers can act on the attribution (exclude the server, escalate
// the variant) without parsing message text. It wraps the underlying
// sentinel — errors.Is(err, ErrProofRejected) still holds — and is
// produced identically by the in-process mixer and the distributed
// actor path:
//
//	var blame *protocol.Blame
//	if errors.As(err, &blame) { exclude(blame.GID, blame.Member) }
type Blame struct {
	// GID is the group whose step was rejected.
	GID int
	// Member is the offending member's DVSS index within the group.
	Member int
	// Err carries the sentinel chain (ErrProofRejected, …).
	Err error
}

// Error implements error.
func (b *Blame) Error() string { return b.Err.Error() }

// Unwrap exposes the sentinel chain to errors.Is/errors.As.
func (b *Blame) Unwrap() error { return b.Err }

// Loss attaches the crashed group and member to a member-lost error —
// the availability counterpart of Blame. Member is the member's 1-based
// DVSS index within the group (its roster position + 1); −1 when the
// loss could not be pinned on one member. It wraps ErrMemberLost (and,
// when the group dropped below threshold, ErrRecoveryNeeded too):
//
//	var loss *protocol.Loss
//	if errors.As(err, &loss) { replace(loss.GID, loss.Member) }
type Loss struct {
	// GID is the group that lost the member.
	GID int
	// Member is the lost member's DVSS index (−1 if unattributed).
	Member int
	// Err carries the sentinel chain (ErrMemberLost, …).
	Err error
}

// Error implements error.
func (l *Loss) Error() string { return l.Err.Error() }

// Unwrap exposes the sentinel chain to errors.Is/errors.As.
func (l *Loss) Unwrap() error { return l.Err }
