package protocol

import (
	"context"
	"fmt"
	"io"
	"time"

	"atom/internal/beacon"
	"atom/internal/dkg"
	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/groupmgr"
)

// This file is the deployment's trust-establishment surface. The
// historical constructor (NewDeployment) plays a trusted dealer: it
// samples groups from the deterministic hash-chain beacon and hands
// every group its DVSS keys via dvss.RunDKG, which generates the secret
// in one place. Setup removes both roles: group formation can be driven
// by any beacon.Source — in particular a publicly verifiable
// beacon.Chain — and group keys can come from a real joint-Feldman
// ceremony (internal/dkg) in which no party ever holds a group secret.

// Setup selects where a deployment's trust roots come from. The zero
// value (or a nil *Setup) reproduces the legacy trusted-dealer
// construction exactly.
type Setup struct {
	// Source supplies the public randomness that samples the groups.
	// Nil selects the deterministic hash-chain beacon seeded by
	// cfg.Seed. A verifiable beacon.Chain makes group formation
	// publicly auditable.
	Source beacon.Source
	// Round is the beacon round whose output forms the groups. The
	// source must already hold it; a missing round is a setup error,
	// never degenerate randomness.
	Round uint64
	// GroupKeys, when non-nil, supplies group gid's threshold key
	// material — typically the product of a joint-Feldman ceremony —
	// instead of the in-process trusted dealer. The returned slice must
	// hold one key per member in position order (Keys[pos].Index ==
	// pos+1), every key opening one shared commitment vector under one
	// group public key; validation failures abort construction.
	GroupKeys func(gid int, members []int, threshold int) ([]*dvss.GroupKey, error)
}

// NewDeploymentSetup is NewDeployment with explicit trust roots: the
// beacon source and round that sample the groups, and the ceremony that
// produces each group's threshold key. A nil setup (or nil fields)
// falls back to the trusted-dealer defaults field by field.
func NewDeploymentSetup(cfg Config, setup *Setup) (*Deployment, error) {
	var s Setup
	if setup != nil {
		s = *setup
	}
	return newDeployment(cfg, s)
}

// DKGGroupKeys returns a Setup.GroupKeys hook that runs a real
// joint-Feldman ceremony per group over an in-memory transport: every
// member deals a fresh secret, verifies its peers' deals, votes, and
// derives its own share of a key whose secret no single party ever
// held. window is the per-phase message window (0 selects the dkg
// package default); rnd is the shared entropy source (nil selects
// crypto/rand) and must be safe for concurrent use.
func DKGGroupKeys(window time.Duration, rnd io.Reader) func(gid int, members []int, threshold int) ([]*dvss.GroupKey, error) {
	return func(gid int, members []int, threshold int) ([]*dvss.GroupKey, error) {
		seats, err := dkg.Ceremony(context.Background(), len(members), threshold, dkg.Opts{
			Window:  window,
			Session: uint64(gid),
			Rand:    rnd,
		})
		if err != nil {
			return nil, fmt.Errorf("protocol: group %d ceremony: %w", gid, err)
		}
		keys := make([]*dvss.GroupKey, len(members))
		for _, seat := range seats {
			if seat.Err != nil {
				return nil, fmt.Errorf("protocol: group %d member %d: %w", gid, seat.Index, seat.Err)
			}
			if seat.Index < 1 || seat.Index > len(keys) || seat.Result == nil || seat.Result.Key == nil {
				return nil, fmt.Errorf("protocol: group %d ceremony returned no key for seat %d", gid, seat.Index)
			}
			keys[seat.Index-1] = seat.Result.Key
		}
		return keys, nil
	}
}

// newGroupStateFromKeys builds a group around externally produced
// threshold keys (a DKG ceremony's output) instead of running the
// trusted dealer. Every key is validated against the shared commitment
// vector before it installs, so a corrupted or mismatched ceremony
// output can never mix.
func newGroupStateFromKeys(info *groupmgr.Group, threshold int, keys []*dvss.GroupKey) (*GroupState, error) {
	if err := validateGroupKeys(info, threshold, keys); err != nil {
		return nil, err
	}
	ecc.WarmBase(keys[0].PK)
	return &GroupState{
		Info:      info,
		Keys:      keys,
		PK:        keys[0].PK,
		failed:    make(map[int]bool),
		threshold: threshold,
	}, nil
}

// validateGroupKeys enforces the Setup.GroupKeys contract: one key per
// member in position order, a single public key and commitment vector,
// and every share opening the commitments at its index.
func validateGroupKeys(info *groupmgr.Group, threshold int, keys []*dvss.GroupKey) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("protocol: group %d keys: %s", info.ID, fmt.Sprintf(format, args...))
	}
	if len(keys) != len(info.Members) {
		return fail("%d keys for %d members", len(keys), len(info.Members))
	}
	ref := keys[0]
	if ref == nil || ref.PK == nil || len(ref.Commitments) == 0 {
		return fail("first key missing public material")
	}
	for pos, k := range keys {
		switch {
		case k == nil:
			return fail("position %d is nil", pos)
		case k.Index != pos+1:
			return fail("position %d has index %d", pos, k.Index)
		case k.Threshold != threshold:
			return fail("position %d has threshold %d, want %d", pos, k.Threshold, threshold)
		case k.PK == nil || !k.PK.Equal(ref.PK):
			return fail("position %d disagrees on the group public key", pos)
		case len(k.Commitments) != len(ref.Commitments):
			return fail("position %d has %d commitments, want %d", pos, len(k.Commitments), len(ref.Commitments))
		}
		for ci, c := range k.Commitments {
			if c == nil || !c.Equal(ref.Commitments[ci]) {
				return fail("position %d disagrees on commitment %d", pos, ci)
			}
		}
		if err := dvss.VerifyShare(k.Commitments, k.Index, k.Share); err != nil {
			return fail("position %d share fails its commitments: %v", pos, err)
		}
	}
	return nil
}

// GroupMembers returns a copy of group gid's current roster (nil for
// an unknown group) — what resharing epochs rotate.
func (d *Deployment) GroupMembers(gid int) []int {
	g, err := d.groupFor(gid)
	if err != nil {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]int(nil), g.Info.Members...)
}

// ReshareGroup runs one resharing epoch for a group: a threshold-sized
// subset of live members deals Lagrange-scaled shares of the existing
// secret to the full new roster, the member at outPos rotates out
// (dealing its last shares when the live budget needs it), and
// newServer takes over that position with a fresh share. The group public key is unchanged — ciphertexts
// encrypted before the epoch stay decryptable after it — while the
// departed member's share becomes useless (its point lies on the old
// polynomial, not the new one). Buddy escrows of this group's shares
// are refreshed to the new sharing.
//
// window is the per-phase ceremony window (0 selects the dkg default).
// Reshare between rounds: a round mixing concurrently could otherwise
// observe a mixed key set.
func (d *Deployment) ReshareGroup(gid, outPos, newServer int, window time.Duration) error {
	g, err := d.groupFor(gid)
	if err != nil {
		return err
	}
	k := len(g.Info.Members)
	if outPos < 0 || outPos >= k {
		return fmt.Errorf("protocol: group %d has no member position %d", gid, outPos)
	}

	// Snapshot the dealing material under the lock; the ceremony itself
	// runs without it (it sleeps through message windows).
	d.mu.Lock()
	oldKeys := append([]*dvss.GroupKey(nil), g.Keys...)
	// Staying live members deal first; when the spare budget is too
	// thin without it (h = 1 means threshold = k), the departing member
	// deals its last shares too — a planned rotation has its
	// cooperation, unlike a crash, which needs buddy recovery instead.
	var dealers []int
	for pos := 0; pos < k && len(dealers) < g.threshold; pos++ {
		if pos == outPos || g.failed[pos] {
			continue
		}
		dealers = append(dealers, pos+1)
	}
	if len(dealers) < g.threshold && !g.failed[outPos] {
		dealers = append(dealers, outPos+1)
	}
	threshold := g.threshold
	oldPK := g.PK
	d.mu.Unlock()
	if len(dealers) < threshold {
		return fmt.Errorf("%w: group %d has %d live members to deal a resharing, needs %d",
			ErrRecoveryNeeded, gid, len(dealers), threshold)
	}

	stay := make(map[int]int, len(dealers))
	for _, idx := range dealers {
		if idx != outPos+1 {
			stay[idx] = idx
		}
	}
	seats, err := dkg.ReshareCeremony(context.Background(), dkg.Reshare{
		Keys:         oldKeys,
		Dealers:      dealers,
		NewSize:      k,
		NewThreshold: threshold,
		Stay:         stay,
	}, dkg.Opts{Window: window, Session: uint64(gid)})
	if err != nil {
		return fmt.Errorf("protocol: group %d resharing: %w", gid, err)
	}
	newKeys := make([]*dvss.GroupKey, k)
	for _, seat := range seats {
		if seat.Index < 1 {
			continue // dealer-only seat
		}
		if seat.Err != nil {
			return fmt.Errorf("protocol: group %d resharing member %d: %w", gid, seat.Index, seat.Err)
		}
		if seat.Result == nil || seat.Result.Key == nil {
			return fmt.Errorf("protocol: group %d resharing returned no key for seat %d", gid, seat.Index)
		}
		newKeys[seat.Index-1] = seat.Result.Key
	}
	for pos, nk := range newKeys {
		if nk == nil {
			return fmt.Errorf("protocol: group %d resharing left position %d without a key", gid, pos)
		}
	}
	// The load-bearing invariant: resharing must preserve the group
	// public key, or every ciphertext in flight becomes garbage.
	if !newKeys[0].PK.Equal(oldPK) {
		return fmt.Errorf("protocol: group %d resharing changed the public key", gid)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	g.Keys = newKeys
	g.Info.Members[outPos] = newServer
	delete(g.failed, outPos)
	// Refresh this group's buddy escrows: the old escrowed shares
	// reconstruct points on the retired polynomial.
	if d.cfg.BuddyCount > 0 {
		for _, buddy := range g.Info.Buddies {
			bsize := len(d.groups[buddy].Info.Members)
			for pos := range g.Info.Members {
				esc, err := dvss.EscrowShare(pos+1, g.Keys[pos].Share, bsize, d.cfg.Threshold(), d.rnd)
				if err != nil {
					return fmt.Errorf("protocol: re-escrow group %d pos %d: %w", gid, pos, err)
				}
				d.escrows[escrowKey{gid, buddy, pos}] = esc
			}
		}
	}
	return nil
}
