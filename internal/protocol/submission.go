package protocol

import (
	"bytes"
	"crypto/sha3"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/cca2"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/nizk"
)

// Message kind tags, the first byte of every routed plaintext. The paper
// appends "‖M" and "‖T" markers to distinguish inner ciphertexts from
// traps (§4.4); we prefix instead so padding never obscures the tag.
const (
	kindMessage byte = 'M'
	kindTrap    byte = 'T'
)

// trapNonceLen is the length of the random nonce R in a trap message
// "gid‖R‖T" (§4.4). 16 bytes of entropy make the SHA3 commitment
// hiding and binding in practice.
const trapNonceLen = 16

// innerCiphertextLen returns the routed payload length for the trap
// variant: tag ‖ EncCCA2(pkT, padded message).
func innerCiphertextLen(messageSize int) int {
	return 1 + messageSize + cca2.Overhead
}

// padMessage pads msg to exactly size bytes (length-prefixed so the
// original is recoverable). It fails if msg cannot fit.
func padMessage(msg []byte, size int) ([]byte, error) {
	if len(msg)+2 > size {
		return nil, fmt.Errorf("protocol: message of %d bytes exceeds capacity %d", len(msg), size-2)
	}
	out := make([]byte, size)
	binary.BigEndian.PutUint16(out[:2], uint16(len(msg)))
	copy(out[2:], msg)
	return out, nil
}

// unpadMessage reverses padMessage.
func unpadMessage(padded []byte) ([]byte, error) {
	if len(padded) < 2 {
		return nil, fmt.Errorf("protocol: padded message too short (%d bytes)", len(padded))
	}
	n := int(binary.BigEndian.Uint16(padded[:2]))
	if n > len(padded)-2 {
		return nil, fmt.Errorf("protocol: corrupt padding (claims %d of %d bytes)", n, len(padded)-2)
	}
	return padded[2 : 2+n], nil
}

// Submission is a user's contribution to one round in the NIZK variant:
// a single onion ciphertext and its proof of plaintext knowledge.
type Submission struct {
	GID        int // entry group
	Ciphertext elgamal.Vector
	Proof      *nizk.EncProof
}

// TrapSubmission is a user's contribution in the trap variant (§4.4):
// the real message's inner ciphertext and a trap, each encrypted for the
// entry group with an EncProof, submitted in random order, plus the
// commitment to the trap.
type TrapSubmission struct {
	GID         int
	Ciphertexts [2]elgamal.Vector
	Proofs      [2]*nizk.EncProof
	Commitment  []byte // SHA3-256 commitment to the trap plaintext
}

// Client prepares round submissions. It is stateless; one value can
// serve many users.
type Client struct {
	cfg *Config
}

// NewClient creates a client for a deployment configuration.
func NewClient(cfg *Config) (*Client, error) {
	cp := *cfg
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return &Client{cfg: &cp}, nil
}

// encryptPayload embeds payload into the configured number of points and
// encrypts the vector for the entry group key, returning the vector and
// an EncProof bound to the entry group id.
func (c *Client) encryptPayload(payload []byte, entryPK *ecc.Point, gid int, rnd io.Reader) (elgamal.Vector, *nizk.EncProof, error) {
	pts, err := ecc.EmbedMessage(payload, c.cfg.NumPoints())
	if err != nil {
		return nil, nil, err
	}
	vec, rs, err := elgamal.EncryptVector(entryPK, pts, rnd)
	if err != nil {
		return nil, nil, err
	}
	proof, err := nizk.ProveEnc(entryPK, vec, rs, uint64(gid), rnd)
	if err != nil {
		return nil, nil, err
	}
	return vec, proof, nil
}

// Submit prepares a NIZK-variant submission of msg for the entry group
// with public key entryPK and id gid.
func (c *Client) Submit(msg []byte, entryPK *ecc.Point, gid int, rnd io.Reader) (*Submission, error) {
	if c.cfg.Variant != VariantNIZK {
		return nil, fmt.Errorf("%w: Submit requires the NIZK variant (have %v)", ErrWrongVariant, c.cfg.Variant)
	}
	padded, err := padMessage(msg, c.cfg.MessageSize)
	if err != nil {
		return nil, err
	}
	payload := append([]byte{kindMessage}, padded...)
	vec, proof, err := c.encryptPayload(payload, entryPK, gid, rnd)
	if err != nil {
		return nil, err
	}
	return &Submission{GID: gid, Ciphertext: vec, Proof: proof}, nil
}

// TrapCommitment computes the SHA3-256 commitment of a trap plaintext.
// The nonce's entropy makes the hash a hiding commitment (§4.4: "since
// the nonces are high-entropy, we can use a cryptographic hash").
func TrapCommitment(trapPlaintext []byte) []byte {
	h := sha3.New256()
	h.Write([]byte("atom/trap-commitment/v1"))
	h.Write(trapPlaintext)
	return h.Sum(nil)
}

// makeTrap builds the trap plaintext "tag ‖ gid ‖ R" padded to the
// routed payload size.
func makeTrap(gid int, payloadLen int, rnd io.Reader) ([]byte, error) {
	trap := make([]byte, payloadLen)
	trap[0] = kindTrap
	binary.BigEndian.PutUint64(trap[1:9], uint64(gid))
	if _, err := io.ReadFull(rnd, trap[9:9+trapNonceLen]); err != nil {
		return nil, fmt.Errorf("protocol: trap nonce: %w", err)
	}
	// Remaining bytes stay zero: traps and inner ciphertexts are the same
	// length, so their onion encryptions are indistinguishable.
	return trap, nil
}

// trapGID extracts the entry-group id from a trap plaintext.
func trapGID(trap []byte) (int, error) {
	if len(trap) < 9+trapNonceLen || trap[0] != kindTrap {
		return 0, fmt.Errorf("protocol: not a trap message")
	}
	return int(binary.BigEndian.Uint64(trap[1:9])), nil
}

// SubmitTrap prepares a trap-variant submission of msg: the inner
// ciphertext under the trustees' round key and a trap naming the entry
// group, in random order (§4.4 steps 1–5).
func (c *Client) SubmitTrap(msg []byte, entryPK, trusteePK *ecc.Point, gid int, rnd io.Reader) (*TrapSubmission, error) {
	if c.cfg.Variant != VariantTrap {
		return nil, fmt.Errorf("%w: SubmitTrap requires the trap variant (have %v)", ErrWrongVariant, c.cfg.Variant)
	}
	padded, err := padMessage(msg, c.cfg.MessageSize)
	if err != nil {
		return nil, err
	}
	inner, err := cca2.Encrypt(trusteePK, padded, rnd)
	if err != nil {
		return nil, err
	}
	realPayload := append([]byte{kindMessage}, inner...)
	if len(realPayload) != c.cfg.PayloadBytes() {
		return nil, fmt.Errorf("protocol: inner ciphertext is %d bytes, want %d", len(realPayload), c.cfg.PayloadBytes())
	}
	trapPayload, err := makeTrap(gid, c.cfg.PayloadBytes(), rnd)
	if err != nil {
		return nil, err
	}

	realVec, realProof, err := c.encryptPayload(realPayload, entryPK, gid, rnd)
	if err != nil {
		return nil, err
	}
	trapVec, trapProof, err := c.encryptPayload(trapPayload, entryPK, gid, rnd)
	if err != nil {
		return nil, err
	}

	sub := &TrapSubmission{GID: gid, Commitment: TrapCommitment(trapPayload)}
	// Random order so a tamperer cannot tell trap from message (§4.4:
	// "sends (c0,π0) and (c1,π1) in a random order").
	var coin [1]byte
	if _, err := io.ReadFull(rnd, coin[:]); err != nil {
		return nil, fmt.Errorf("protocol: ordering coin: %w", err)
	}
	if coin[0]&1 == 0 {
		sub.Ciphertexts = [2]elgamal.Vector{realVec, trapVec}
		sub.Proofs = [2]*nizk.EncProof{realProof, trapProof}
	} else {
		sub.Ciphertexts = [2]elgamal.Vector{trapVec, realVec}
		sub.Proofs = [2]*nizk.EncProof{trapProof, realProof}
	}
	return sub, nil
}

// DecodePlaintext classifies a routed plaintext that emerged from the
// exit layer: kindMessage payloads return (payload-after-tag, 'M'),
// traps return (trap-bytes, 'T').
func DecodePlaintext(p []byte) ([]byte, byte, error) {
	if len(p) == 0 {
		return nil, 0, fmt.Errorf("protocol: empty plaintext")
	}
	switch p[0] {
	case kindMessage:
		return p[1:], kindMessage, nil
	case kindTrap:
		return p, kindTrap, nil
	default:
		return nil, 0, fmt.Errorf("protocol: unknown plaintext kind %q", p[0])
	}
}

// equalBytes is constant-time-ish comparison for commitments; trap
// checks are not secret-dependent, so bytes.Equal would also do, but the
// explicit helper documents intent.
func equalBytes(a, b []byte) bool { return bytes.Equal(a, b) }
