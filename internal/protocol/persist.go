package protocol

import (
	"crypto/rand"
	"fmt"
	"time"

	"atom/internal/beacon"
	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
	"atom/internal/wirecodec"
)

// This file is the protocol layer's persistence surface: a stable codec
// for the deployment's durable key material (DVSS shares, Feldman
// commitments, buddy escrows, the failed sets and the round sequencer)
// and for sealed-but-unmixed rounds, so internal/store can journal both
// and a restarted coordinator can resume instead of re-running the DKG
// under fresh — and therefore useless — keys.

// ErrStateCorrupt marks persisted protocol state that fails decoding or
// cryptographic validation on restore (a share that does not match its
// Feldman commitments, a batch count that disagrees with the topology).
// The atom package re-exports it as the public ErrStateCorrupt.
var ErrStateCorrupt = fmt.Errorf("protocol: persisted state corrupt")

// ErrConfigMismatch marks a party refusing to operate under a group
// configuration whose canonical hash differs from its own — the
// drand-style refuse-on-mismatch contract. The atom package re-exports
// it as the public ErrConfigMismatch.
var ErrConfigMismatch = fmt.Errorf("protocol: group-config hash mismatch")

// deployStateVersion guards the deployment codec.
const deployStateVersion = 1

// MarshalState encodes the deployment's durable material: the round
// sequencer, every group's roster/buddy wiring, per-member DVSS keys
// with their Feldman commitments, the failed sets, and the buddy
// escrows. Ingestion buffers and per-round state are deliberately
// excluded — they live in sealed-round records.
func (d *Deployment) MarshalState() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	var e wirecodec.Enc
	e.Byte(deployStateVersion)
	e.U64(d.roundSeq.Load())
	e.U64(uint64(len(d.groups)))
	for _, g := range d.groups {
		e.I(g.Info.ID)
		e.Ints(g.Info.Members)
		e.Ints(g.Info.Buddies)
		e.Point(g.PK)
		e.I(g.threshold)
		var failed []int
		for pos := range g.Info.Members {
			if g.failed[pos] {
				failed = append(failed, pos)
			}
		}
		e.Ints(failed)
		e.U64(uint64(len(g.Keys)))
		for _, k := range g.Keys {
			e.Point(k.PK)
			e.Scalar(k.Share)
			e.I(k.Index)
			e.I(k.Threshold)
			e.I(k.Size)
			e.Points(k.Commitments)
		}
	}
	e.U64(uint64(len(d.escrows)))
	for key, esc := range d.escrows {
		e.I(key.gid)
		e.I(key.buddy)
		e.I(key.pos)
		e.I(esc.OwnerIndex)
		e.Points(esc.Commitments)
		e.Scalars(esc.Pieces)
	}
	return e.Out()
}

// RestoreDeployment rebuilds a deployment from cfg and persisted state
// instead of running a fresh DKG: group public keys, shares and escrows
// come back exactly as journaled, so ciphertexts encrypted to the old
// keys stay decryptable across a coordinator restart. Every restored
// share is verified against its Feldman commitments before it installs —
// damaged state surfaces as ErrStateCorrupt, never as a round that
// silently cannot decrypt.
//
// lastRound is the highest round id the caller's journal has seen; the
// round sequencer resumes past both it and the persisted sequence, so a
// restarted deployment never reissues a round id.
func RestoreDeployment(cfg Config, state []byte, lastRound uint64) (*Deployment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	topo, err := cfg.BuildTopology()
	if err != nil {
		return nil, err
	}
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrStateCorrupt, fmt.Sprintf(format, args...))
	}
	dec := wirecodec.NewDec(state)
	v, err := dec.Byte()
	if err != nil || v != deployStateVersion {
		return nil, corrupt("deployment state version")
	}
	seq, err := dec.U64()
	if err != nil {
		return nil, corrupt("round sequence: %v", err)
	}
	ngroups, err := dec.Count()
	if err != nil {
		return nil, corrupt("group count: %v", err)
	}
	if ngroups != topo.Groups() {
		return nil, corrupt("%d groups persisted, topology needs %d", ngroups, topo.Groups())
	}

	d := &Deployment{
		cfg:     cfg,
		topo:    topo,
		beacon:  beacon.New(cfg.Seed),
		groups:  make([]*GroupState, ngroups),
		rnd:     rand.Reader,
		escrows: make(map[escrowKey]*dvss.Escrow),
	}
	for i := range d.groups {
		g := &GroupState{
			Info:   &groupmgr.Group{},
			failed: make(map[int]bool),
		}
		if g.Info.ID, err = dec.I(); err != nil {
			return nil, corrupt("group id: %v", err)
		}
		if g.Info.Members, err = dec.Ints(); err != nil {
			return nil, corrupt("group %d members: %v", i, err)
		}
		if g.Info.Buddies, err = dec.Ints(); err != nil {
			return nil, corrupt("group %d buddies: %v", i, err)
		}
		if g.PK, err = dec.Point(); err != nil || g.PK == nil {
			return nil, corrupt("group %d public key", i)
		}
		// Restored groups mix immediately; re-warm the key's comb as
		// newGroupState would have.
		ecc.WarmBase(g.PK)
		if g.threshold, err = dec.I(); err != nil {
			return nil, corrupt("group %d threshold: %v", i, err)
		}
		failed, err := dec.Ints()
		if err != nil {
			return nil, corrupt("group %d failed set: %v", i, err)
		}
		for _, pos := range failed {
			if pos < 0 || pos >= len(g.Info.Members) {
				return nil, corrupt("group %d failed position %d out of range", i, pos)
			}
			g.failed[pos] = true
		}
		nkeys, err := dec.Count()
		if err != nil {
			return nil, corrupt("group %d key count: %v", i, err)
		}
		if nkeys != len(g.Info.Members) {
			return nil, corrupt("group %d has %d keys for %d members", i, nkeys, len(g.Info.Members))
		}
		g.Keys = make([]*dvss.GroupKey, nkeys)
		for pos := range g.Keys {
			k := &dvss.GroupKey{}
			if k.PK, err = dec.Point(); err != nil {
				return nil, corrupt("group %d key %d pk: %v", i, pos, err)
			}
			if k.Share, err = dec.Scalar(); err != nil {
				return nil, corrupt("group %d key %d share: %v", i, pos, err)
			}
			if k.Index, err = dec.I(); err != nil {
				return nil, corrupt("group %d key %d index: %v", i, pos, err)
			}
			if k.Threshold, err = dec.I(); err != nil {
				return nil, corrupt("group %d key %d threshold: %v", i, pos, err)
			}
			if k.Size, err = dec.I(); err != nil {
				return nil, corrupt("group %d key %d size: %v", i, pos, err)
			}
			if k.Commitments, err = dec.Points(); err != nil {
				return nil, corrupt("group %d key %d commitments: %v", i, pos, err)
			}
			// The load-bearing check: a restored share must open its
			// own Feldman commitments, or the bytes rotted on disk.
			if k.Share != nil {
				if verr := dvss.VerifyShare(k.Commitments, k.Index, k.Share); verr != nil {
					return nil, corrupt("group %d member %d share fails its Feldman commitments: %v", i, pos, verr)
				}
			}
			g.Keys[pos] = k
		}
		d.groups[i] = g
	}
	nescrows, err := dec.Count()
	if err != nil {
		return nil, corrupt("escrow count: %v", err)
	}
	for j := 0; j < nescrows; j++ {
		var key escrowKey
		esc := &dvss.Escrow{}
		if key.gid, err = dec.I(); err != nil {
			return nil, corrupt("escrow %d gid: %v", j, err)
		}
		if key.buddy, err = dec.I(); err != nil {
			return nil, corrupt("escrow %d buddy: %v", j, err)
		}
		if key.pos, err = dec.I(); err != nil {
			return nil, corrupt("escrow %d pos: %v", j, err)
		}
		if esc.OwnerIndex, err = dec.I(); err != nil {
			return nil, corrupt("escrow %d owner: %v", j, err)
		}
		if esc.Commitments, err = dec.Points(); err != nil {
			return nil, corrupt("escrow %d commitments: %v", j, err)
		}
		if esc.Pieces, err = dec.Scalars(); err != nil {
			return nil, corrupt("escrow %d pieces: %v", j, err)
		}
		d.escrows[key] = esc
	}
	if err := dec.Done(); err != nil {
		return nil, corrupt("%v", err)
	}

	if seq < lastRound {
		seq = lastRound
	}
	d.roundSeq.Store(seq)
	if d.cur, err = d.OpenRound(); err != nil {
		return nil, err
	}
	return d, nil
}

// sealedVersion guards the sealed-round codec.
const sealedVersion = 1

// Marshal encodes a sealed round for the journal: identity, admission
// accounting, the per-group layer-0 batches, and — in the trap
// variant — the round's trustee key shares and trap commitments, which
// the finale needs to release or destroy the decryption key after a
// restart. The §4.6 entry records (blame bookkeeping) are not encoded:
// retroactive blame does not survive a coordinator crash.
func (s *SealedRound) Marshal() []byte {
	rs := s.rs
	var e wirecodec.Enc
	e.Byte(sealedVersion)
	e.U64(rs.id)
	e.I(int(rs.variant))
	e.I(s.admitted)
	e.I(s.rejected)
	e.U64(uint64(s.SealedAt.UnixNano()))
	e.U64(uint64(len(s.batches)))
	for _, batch := range s.batches {
		e.Vectors(batch)
	}
	if rs.variant == VariantTrap {
		t := rs.trustees
		e.I(t.n)
		e.Point(t.pk)
		e.Scalars(t.shares)
		e.U64(uint64(len(rs.groups)))
		for gid := range rs.groups {
			rg := &rs.groups[gid]
			rg.mu.Lock()
			e.U64(uint64(len(rg.commitments)))
			for c, user := range rg.commitments {
				e.Bytes([]byte(c))
				e.I(user)
			}
			rg.mu.Unlock()
		}
	}
	return e.Out()
}

// RestoreSealedRound rebuilds a journaled sealed round against this
// deployment so MixSealed can re-dispatch it: a detached RoundState
// carries the recorded identity, variant, trap material and admission
// counters, and the deployment's round sequencer advances past the
// restored id so no later round collides with it.
func (d *Deployment) RestoreSealedRound(b []byte) (*SealedRound, error) {
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("%w: sealed round: %s", ErrStateCorrupt, fmt.Sprintf(format, args...))
	}
	dec := wirecodec.NewDec(b)
	v, err := dec.Byte()
	if err != nil || v != sealedVersion {
		return nil, corrupt("version")
	}
	rs := &RoundState{d: d, mix: d.cfg.Mix}
	if rs.id, err = dec.U64(); err != nil {
		return nil, corrupt("round id: %v", err)
	}
	variant, err := dec.I()
	if err != nil {
		return nil, corrupt("variant: %v", err)
	}
	rs.variant = Variant(variant)
	admitted, err := dec.I()
	if err != nil {
		return nil, corrupt("admitted: %v", err)
	}
	rejected, err := dec.I()
	if err != nil {
		return nil, corrupt("rejected: %v", err)
	}
	sealedAt, err := dec.U64()
	if err != nil {
		return nil, corrupt("seal time: %v", err)
	}
	nbatches, err := dec.Count()
	if err != nil {
		return nil, corrupt("batch count: %v", err)
	}
	if nbatches != len(d.groups) {
		return nil, corrupt("%d batches for %d groups", nbatches, len(d.groups))
	}
	sealed := &SealedRound{
		rs:       rs,
		admitted: admitted,
		rejected: rejected,
		SealedAt: time.Unix(0, int64(sealedAt)),
	}
	sealed.batches = make([][]elgamal.Vector, nbatches)
	for gid := range sealed.batches {
		if sealed.batches[gid], err = dec.Vectors(); err != nil {
			return nil, corrupt("group %d batch: %v", gid, err)
		}
	}
	rs.groups = make([]roundGroup, len(d.groups))
	for i := range rs.shards {
		rs.shards[i].seen = make(map[string]bool)
	}
	for i := range rs.groups {
		rs.groups[i].commitments = make(map[string]int)
	}
	if rs.variant == VariantTrap {
		t := &Trustees{}
		if t.n, err = dec.I(); err != nil {
			return nil, corrupt("trustee count: %v", err)
		}
		if t.pk, err = dec.Point(); err != nil || t.pk == nil {
			return nil, corrupt("trustee key")
		}
		if t.shares, err = dec.Scalars(); err != nil {
			return nil, corrupt("trustee shares: %v", err)
		}
		if len(t.shares) != t.n {
			return nil, corrupt("%d trustee shares for %d trustees", len(t.shares), t.n)
		}
		rs.trustees = t
		ngroups, err := dec.Count()
		if err != nil {
			return nil, corrupt("commitment group count: %v", err)
		}
		if ngroups != len(d.groups) {
			return nil, corrupt("commitments for %d groups, deployment has %d", ngroups, len(d.groups))
		}
		for gid := 0; gid < ngroups; gid++ {
			n, err := dec.Count()
			if err != nil {
				return nil, corrupt("group %d commitment count: %v", gid, err)
			}
			for j := 0; j < n; j++ {
				c, err := dec.Bytes()
				if err != nil {
					return nil, corrupt("group %d commitment %d: %v", gid, j, err)
				}
				user, err := dec.I()
				if err != nil {
					return nil, corrupt("group %d commitment %d user: %v", gid, j, err)
				}
				rs.groups[gid].commitments[string(c)] = user
			}
		}
	}
	if err := dec.Done(); err != nil {
		return nil, corrupt("%v", err)
	}
	rs.pending.Store(int64(admitted))
	rs.rejected.Store(int64(rejected))
	// The round came off the journal sealed; only the mixing flag stays
	// down so MixSealed can claim it exactly once.
	rs.sealed.Store(true)
	rs.mixing.Store(true)

	// Never reissue a replayed id: push the sequencer past it.
	for {
		cur := d.roundSeq.Load()
		if cur >= rs.id || d.roundSeq.CompareAndSwap(cur, rs.id) {
			break
		}
	}
	return sealed, nil
}
