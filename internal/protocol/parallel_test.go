package protocol

import (
	"context"
	"crypto/rand"
	"errors"
	"strings"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// mixWorkersConfig is testConfig with an explicit worker-pool size for
// the parallel mixing engine.
func mixWorkersConfig(variant Variant, workers int) Config {
	cfg := testConfig(variant)
	cfg.Mix = MixConfig{Workers: workers}
	return cfg
}

// TestParallelMixingMatchesSerial: the same deployment mixed with one
// worker and with a pool of four must anonymize the same submissions
// into byte-identical plaintext sets — the worker pool may only change
// the schedule of the crypto, never its outcome. Run with -race this
// also shakes out data races in the pooled iteration.
func TestParallelMixingMatchesSerial(t *testing.T) {
	for _, variant := range []Variant{VariantNIZK, VariantTrap} {
		var baseline []string
		for _, workers := range []int{1, 4} {
			cfg := mixWorkersConfig(variant, workers)
			d, err := NewDeployment(cfg)
			if err != nil {
				t.Fatal(err)
			}
			c, err := NewClient(&cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := submitAll(t, d, c, 8)
			res, err := d.RunRound()
			if err != nil {
				t.Fatalf("%v workers=%d: %v", variant, workers, err)
			}
			checkMessages(t, res, want)
			got := make([]string, len(res.Messages))
			for i, m := range res.Messages {
				got[i] = string(m)
			}
			if workers == 1 {
				baseline = got
				continue
			}
			if len(got) != len(baseline) {
				t.Fatalf("%v: workers=4 produced %d messages, workers=1 produced %d", variant, len(got), len(baseline))
			}
			for i := range got {
				if got[i] != baseline[i] {
					t.Fatalf("%v: plaintext %d diverged between workers=1 and workers=4", variant, i)
				}
			}
			// The observability hooks must report the configured pool and
			// nonzero busy time for the real work done.
			for _, it := range res.Iterations {
				if it.Workers != 4 {
					t.Fatalf("%v: iteration reports %d workers, want 4", variant, it.Workers)
				}
				if it.ActiveGroups == 0 || it.WorkerBusy <= 0 {
					t.Fatalf("%v: iteration reports no pool activity: %+v", variant, it)
				}
			}
		}
	}
}

// TestParallelShuffleTamperAborts: a shape-preserving duplicate attack
// by a middle server must abort the round with ErrProofRejected even
// when shuffle proofs are verified concurrently across members by the
// worker pool — the pool's first-error semantics may not swallow the
// rejection.
func TestParallelShuffleTamperAborts(t *testing.T) {
	cfg := mixWorkersConfig(VariantNIZK, 4)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, 8)
	d.SetAdversary(&Adversary{
		Layer: 1, GID: 1, Member: 1,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) < 2 {
				return nil
			}
			out := make([]elgamal.Vector, len(batch))
			copy(out, batch)
			dup, _, err := elgamal.RerandomizeVector(d.groups[1].PK, batch[0], rand.Reader)
			if err != nil {
				return nil
			}
			out[1] = dup
			return out
		},
	})
	_, err = d.RunRound()
	if !errors.Is(err, ErrProofRejected) {
		t.Fatalf("got %v, want ErrProofRejected", err)
	}
	if !strings.Contains(err.Error(), "shuffle rejected") {
		t.Fatalf("rejection not attributed to the shuffle stage: %v", err)
	}
}

// TestParallelReEncTamperAborts: a member whose secret share is
// corrupted re-encrypts with a key that no longer matches its public
// share commitment, so its ReEncProof must fail — and the failure must
// survive the batched random-linear-combination verification and the
// worker pool, aborting the round with ErrProofRejected.
func TestParallelReEncTamperAborts(t *testing.T) {
	cfg := mixWorkersConfig(VariantNIZK, 4)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, 8)
	// Corrupt group 2, member 0's secret share; the public commitments
	// (what verifiers use) are untouched.
	gk := d.groups[2].Keys[0]
	gk.Share = gk.Share.Add(ecc.NewScalar(1))
	_, err = d.RunRound()
	if !errors.Is(err, ErrProofRejected) {
		t.Fatalf("got %v, want ErrProofRejected", err)
	}
	if !strings.Contains(err.Error(), "reencryption rejected") {
		t.Fatalf("rejection not attributed to the reencryption stage: %v", err)
	}
}

// TestCancellationIsNotBlamedOnMembers: a context canceled while the
// worker pools are mid-iteration must surface as a cancellation —
// never as ErrProofRejected naming an innocent member, and never as a
// nil-point panic inside a pooled proof computation.
func TestCancellationIsNotBlamedOnMembers(t *testing.T) {
	cfg := mixWorkersConfig(VariantNIZK, 4)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, 8)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The adversary hook fires mid-iteration (after group 0, member 0's
	// layer-1 shuffle) — cancel there so the pools observe a context
	// that dies while proof generation and verification are in flight.
	d.SetAdversary(&Adversary{
		Layer: 1, GID: 0, Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			cancel()
			return nil // no tampering: every proof stays honest
		},
	})
	_, err = d.RunRoundCtx(ctx, nil, nil)
	if err == nil {
		t.Fatal("canceled round succeeded")
	}
	if errors.Is(err, ErrProofRejected) {
		t.Fatalf("cancellation misclassified as a proof rejection: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancellation lost from the error chain: %v", err)
	}
}

// TestPerRoundMixConfigOverride: SetMixConfig on a round overrides the
// deployment knob for that round only.
func TestPerRoundMixConfigOverride(t *testing.T) {
	cfg := mixWorkersConfig(VariantTrap, 1)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	if rs.MixConfig().Workers != 1 {
		t.Fatalf("round inherited %d workers, want 1", rs.MixConfig().Workers)
	}
	rs.SetMixConfig(MixConfig{Workers: 3})
	for u := 0; u < 4; u++ {
		pk, err := d.GroupPK(u % d.NumGroups())
		if err != nil {
			t.Fatal(err)
		}
		tpk, err := rs.TrusteePK()
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.SubmitTrap([]byte("override msg"), pk, tpk, u%d.NumGroups(), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.SubmitTrapUser(u, sub); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.RunRoundCtx(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.Workers != 3 {
			t.Fatalf("iteration ran with %d workers, want the per-round override 3", it.Workers)
		}
	}
	// The deployment's own knob is untouched for later rounds.
	if got := d.Config().Mix.Workers; got != 1 {
		t.Fatalf("deployment knob changed to %d", got)
	}
}
