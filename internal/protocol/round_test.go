package protocol

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"testing"
)

func TestRoundStatePipelinedIngestion(t *testing.T) {
	// Protocol-layer pipelining: round r+1 accepts submissions while
	// round r mixes, and the two rounds' outputs stay disjoint.
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)

	submit := func(rs *RoundState, tag string, users int) map[string]bool {
		t.Helper()
		want := map[string]bool{}
		for u := 0; u < users; u++ {
			gid := u % cfg.NumGroups
			pk, _ := d.GroupPK(gid)
			msg := []byte(fmt.Sprintf("%s %d", tag, u))
			want[string(msg)] = true
			sub, err := c.Submit(msg, pk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := rs.SubmitUser(u, sub); err != nil {
				t.Fatal(err)
			}
		}
		return want
	}

	r0, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	if r0.ID() == r1.ID() {
		t.Fatal("round ids collide")
	}
	want0 := submit(r0, "pipeline r0", 8)

	done := make(chan struct{})
	var res0 *RoundResult
	var err0 error
	go func() {
		defer close(done)
		res0, err0 = d.RunRoundCtx(context.Background(), r0, nil)
	}()

	// Ingest into r1 while r0 mixes (RunRoundCtx holds the mix lock the
	// whole time, so every submission accepted before <-done that raced
	// with it exercises the concurrent path).
	want1 := submit(r1, "pipeline r1", 8)
	<-done
	if err0 != nil {
		t.Fatal(err0)
	}

	res1, err := d.RunRoundCtx(context.Background(), r1, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkMessages(t, res0, want0)
	checkMessages(t, res1, want1)
}

func TestRoundStateSealedRejectsLateSubmissions(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	pk, _ := d.GroupPK(0)
	sub, err := c.Submit([]byte("early"), pk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SubmitUser(0, sub); err != nil {
		t.Fatal(err)
	}
	rs.seal()
	late, err := c.Submit([]byte("late"), pk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SubmitUser(1, late); !errors.Is(err, ErrRoundClosed) {
		t.Fatalf("late submission: got %v, want ErrRoundClosed", err)
	}
}

func TestRunRoundCtxCancellation(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := d.RunRoundCtx(ctx, nil, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled in the chain", err)
	}
}

func TestRoundHooksFirePerIteration(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)
	var mu sync.Mutex
	var seen []IterationStats
	hooks := &RoundHooks{IterationDone: func(it IterationStats) {
		mu.Lock()
		seen = append(seen, it)
		mu.Unlock()
	}}
	res, err := d.RunRoundCtx(context.Background(), nil, hooks)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != cfg.Iterations {
		t.Fatalf("%d hook calls, want %d", len(seen), cfg.Iterations)
	}
	if len(res.Iterations) != cfg.Iterations {
		t.Fatalf("%d iteration records on result, want %d", len(res.Iterations), cfg.Iterations)
	}
	for i, it := range seen {
		if it.Layer != i {
			t.Fatalf("hook %d reports layer %d", i, it.Layer)
		}
		// Trap pairs: 8 users → 16 ciphertexts per layer.
		if it.Messages != 16 {
			t.Fatalf("layer %d: %d messages, want 16", i, it.Messages)
		}
		if it.Duration <= 0 || it.Shuffles == 0 || it.ReEncs == 0 {
			t.Fatalf("layer %d stats empty: %+v", i, it)
		}
	}
	if res.Duration <= 0 || res.Round == 0 {
		t.Fatalf("result missing round metadata: %+v", res)
	}
}

func TestDuplicateFilterSpansGroupsWithinRound(t *testing.T) {
	// The duplicate filter is round-global: the same ciphertext must be
	// rejected even when replayed with a different claimed user.
	cfg := testConfig(VariantNIZK)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	pk, _ := d.GroupPK(2)
	sub, err := c.Submit([]byte("once"), pk, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.SubmitUser(0, sub); err != nil {
		t.Fatal(err)
	}
	if err := rs.SubmitUser(5, sub); !errors.Is(err, ErrDuplicateSubmission) {
		t.Fatalf("replay: got %v, want ErrDuplicateSubmission", err)
	}
	// A fresh round has a fresh filter.
	rs2, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	if err := rs2.SubmitUser(0, sub); err != nil {
		t.Fatalf("new round rejected a first-seen submission: %v", err)
	}
}
