package protocol

import (
	"context"
	"fmt"
	"io"

	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
	"atom/internal/nizk"
)

// GroupState is one anytrust/many-trust group's view of a round: its
// sampled membership, its DVSS threshold key material, the set of failed
// members, and the batch it is currently holding.
type GroupState struct {
	Info *groupmgr.Group
	// Keys[pos] is member pos's share of this group's key (DVSS index
	// pos+1). In a real deployment each server holds only its own entry;
	// the in-process deployment holds all of them, but the mixing code
	// only ever hands member pos its own share.
	Keys []*dvss.GroupKey
	// PK is the group public key users and prior groups encrypt to.
	PK *ecc.Point
	// failed marks member positions that have crashed (§4.5).
	failed map[int]bool

	// threshold is k−(h−1): how many members participate per step.
	threshold int
}

// newGroupState runs the group's DVSS and initializes bookkeeping.
func newGroupState(info *groupmgr.Group, threshold int, rnd io.Reader) (*GroupState, error) {
	keys, err := dvss.RunDKG(len(info.Members), threshold, rnd)
	if err != nil {
		return nil, fmt.Errorf("protocol: group %d DKG: %w", info.ID, err)
	}
	return &GroupState{
		Info:      info,
		Keys:      keys,
		PK:        keys[0].PK,
		failed:    make(map[int]bool),
		threshold: threshold,
	}, nil
}

// Active returns the 1-based DVSS indices of the members that execute
// the current step: the first `threshold` live members in group order.
// It fails when more than h−1 members are down, which is the trigger for
// buddy-group recovery (§4.5).
func (g *GroupState) Active() ([]int, error) {
	active := make([]int, 0, g.threshold)
	for pos := range g.Info.Members {
		if g.failed[pos] {
			continue
		}
		active = append(active, pos+1)
		if len(active) == g.threshold {
			return active, nil
		}
	}
	return nil, fmt.Errorf("%w: group %d has only %d live members, needs %d",
		ErrRecoveryNeeded, g.Info.ID, len(active), g.threshold)
}

// LiveMembers returns the count of non-failed members.
func (g *GroupState) LiveMembers() int {
	n := 0
	for pos := range g.Info.Members {
		if !g.failed[pos] {
			n++
		}
	}
	return n
}

// stepTrace captures what one group did in one mixing iteration so the
// deployment can account for it (and tests can assert on it).
type stepTrace struct {
	GID           int
	Layer         int
	Shuffles      int
	ReEncs        int
	ProofsChecked int
}

// mixParams bundles what a group needs to execute one iteration.
type mixParams struct {
	// ctx aborts the iteration between members when canceled.
	ctx context.Context
	// batch is the group's working set for this iteration (per-round
	// state; the deployment threads it through from the RoundState).
	batch   []elgamal.Vector
	layer   int
	variant Variant
	// destinations are the next-layer group ids (empty for the exit
	// layer) and their public keys (nil entries mean ⊥).
	destGIDs []int
	destPKs  []*ecc.Point
	rnd      io.Reader
	// tamper, when non-nil, injects a malicious server: after the member
	// at position tamperMember (0-based within the active subset)
	// shuffles, the hook may replace that member's output batch. In the
	// NIZK variant the member's shuffle proof then fails verification and
	// the group aborts (Algorithm 2); in the trap variant the corruption
	// flows on and is caught by trap accounting (§4.4).
	tamper       func(batch []elgamal.Vector) []elgamal.Vector
	tamperMember int
}

// runIteration executes Algorithm 1 (or Algorithm 2 when variant is
// VariantNIZK) for this group: shuffle by every active member in order,
// divide into β batches, and decrypt-and-reencrypt by every active
// member in order. It returns the β output batches aligned with
// destGIDs.
//
// In the NIZK variant every shuffle and reencryption is accompanied by a
// proof which is verified immediately (standing in for "all servers in
// the group verify the proof and report the result" — any failure aborts
// the round, exactly as Algorithm 2 prescribes).
func (g *GroupState) runIteration(p mixParams) ([][]elgamal.Vector, *stepTrace, error) {
	active, err := g.Active()
	if err != nil {
		return nil, nil, err
	}
	trace := &stepTrace{GID: g.Info.ID, Layer: p.layer}

	// --- Step 1: Shuffle, each active member in order. ---
	// An empty batch (a group that received no ciphertexts this layer)
	// passes through: there is nothing to permute or prove.
	batch := p.batch
	if len(batch) == 0 {
		beta := len(p.destGIDs)
		if beta == 0 {
			beta = 1
		}
		return make([][]elgamal.Vector, beta), trace, nil
	}
	for pos, idx := range active {
		if err := p.canceled(); err != nil {
			return nil, nil, err
		}
		out, perm, rands, err := elgamal.ShuffleBatch(g.PK, batch, p.rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("protocol: group %d member %d shuffle: %w", g.Info.ID, idx, err)
		}
		trace.Shuffles++
		if p.tamper != nil && pos == p.tamperMember {
			if evil := p.tamper(out); evil != nil {
				out = evil
			}
		}
		if p.variant == VariantNIZK {
			proof, err := nizk.ProveShuffle(g.PK, batch, out, perm, rands, p.rnd)
			if err != nil {
				return nil, nil, fmt.Errorf("protocol: group %d member %d shuffle proof: %w", g.Info.ID, idx, err)
			}
			if err := nizk.VerifyShuffle(g.PK, batch, out, proof); err != nil {
				return nil, nil, fmt.Errorf("%w: group %d aborts — member %d shuffle rejected: %v", ErrProofRejected, g.Info.ID, idx, err)
			}
			trace.ProofsChecked++
		}
		batch = out
	}

	// --- Step 2: Divide into β batches. ---
	beta := len(p.destGIDs)
	if beta == 0 {
		// Exit layer: one batch, decrypted to plaintext (pk = ⊥).
		beta = 1
		p.destGIDs = []int{-1}
		p.destPKs = []*ecc.Point{nil}
	}
	sizes := batchSizes(len(batch), beta)
	batches := make([][]elgamal.Vector, beta)
	off := 0
	for i := 0; i < beta; i++ {
		batches[i] = batch[off : off+sizes[i]]
		off += sizes[i]
	}

	// --- Step 3: Decrypt and reencrypt, each active member in order. ---
	for i := range batches {
		cur := batches[i]
		if len(cur) == 0 {
			continue
		}
		for _, idx := range active {
			if err := p.canceled(); err != nil {
				return nil, nil, err
			}
			gk := g.Keys[idx-1]
			eff, effPub, err := gk.EffectiveKey(active)
			if err != nil {
				return nil, nil, fmt.Errorf("protocol: group %d member %d key: %w", g.Info.ID, idx, err)
			}
			next := make([]elgamal.Vector, len(cur))
			for vi, vec := range cur {
				out, rs, err := elgamal.ReEncVector(eff, p.destPKs[i], vec, p.rnd)
				if err != nil {
					return nil, nil, fmt.Errorf("protocol: group %d member %d reenc: %w", g.Info.ID, idx, err)
				}
				trace.ReEncs++
				if p.variant == VariantNIZK {
					proof, err := nizk.ProveReEnc(eff, effPub, p.destPKs[i], vec, out, rs, p.rnd)
					if err != nil {
						return nil, nil, fmt.Errorf("protocol: group %d member %d reenc proof: %w", g.Info.ID, idx, err)
					}
					if err := nizk.VerifyReEnc(effPub, p.destPKs[i], vec, out, proof); err != nil {
						return nil, nil, fmt.Errorf("%w: group %d aborts — member %d reencryption rejected: %v", ErrProofRejected, g.Info.ID, idx, err)
					}
					trace.ProofsChecked++
				}
				next[vi] = out
			}
			cur = next
		}
		// Last server clears the Y slot before forwarding (Appendix A).
		for vi := range cur {
			cur[vi] = elgamal.ClearYVector(cur[vi])
		}
		batches[i] = cur
	}
	return batches, trace, nil
}

// canceled reports the context's error, if any.
func (p *mixParams) canceled() error {
	if p.ctx != nil {
		if err := p.ctx.Err(); err != nil {
			return fmt.Errorf("protocol: mixing canceled: %w", err)
		}
	}
	return nil
}

// batchSizes mirrors topology.BatchSizes without importing it here (the
// protocol must divide exactly as the topology declares).
func batchSizes(n, dests int) []int {
	out := make([]int, dests)
	base, rem := n/dests, n%dests
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
