package protocol

import (
	"context"
	"fmt"
	"io"
	"time"

	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/groupmgr"
	"atom/internal/parallel"
)

// GroupState is one anytrust/many-trust group's view of a round: its
// sampled membership, its DVSS threshold key material, the set of failed
// members, and the batch it is currently holding.
type GroupState struct {
	Info *groupmgr.Group
	// Keys[pos] is member pos's share of this group's key (DVSS index
	// pos+1). In a real deployment each server holds only its own entry;
	// the in-process deployment holds all of them, but the mixing code
	// only ever hands member pos its own share.
	Keys []*dvss.GroupKey
	// PK is the group public key users and prior groups encrypt to.
	PK *ecc.Point
	// failed marks member positions that have crashed (§4.5).
	failed map[int]bool

	// threshold is k−(h−1): how many members participate per step.
	threshold int
}

// newGroupState runs the group's DVSS and initializes bookkeeping.
func newGroupState(info *groupmgr.Group, threshold int, rnd io.Reader) (*GroupState, error) {
	keys, err := dvss.RunDKG(len(info.Members), threshold, rnd)
	if err != nil {
		return nil, fmt.Errorf("protocol: group %d DKG: %w", info.ID, err)
	}
	// The group key is the base of every rerandomization this group's
	// batches undergo; precompute its comb once at setup.
	ecc.WarmBase(keys[0].PK)
	return &GroupState{
		Info:      info,
		Keys:      keys,
		PK:        keys[0].PK,
		failed:    make(map[int]bool),
		threshold: threshold,
	}, nil
}

// Active returns the 1-based DVSS indices of the members that execute
// the current step: the first `threshold` live members in group order.
// It fails when more than h−1 members are down, which is the trigger for
// buddy-group recovery (§4.5).
func (g *GroupState) Active() ([]int, error) {
	active := make([]int, 0, g.threshold)
	for pos := range g.Info.Members {
		if g.failed[pos] {
			continue
		}
		active = append(active, pos+1)
		if len(active) == g.threshold {
			return active, nil
		}
	}
	return nil, fmt.Errorf("%w: group %d has only %d live members, needs %d",
		ErrRecoveryNeeded, g.Info.ID, len(active), g.threshold)
}

// LiveMembers returns the count of non-failed members.
func (g *GroupState) LiveMembers() int {
	n := 0
	for pos := range g.Info.Members {
		if !g.failed[pos] {
			n++
		}
	}
	return n
}

// StepTrace captures what one group did in one mixing iteration so the
// deployment can account for it (and tests can assert on it). It is
// exported because the distributed mixer (internal/distributed)
// assembles the same records from the actors' per-chain accounting.
type StepTrace struct {
	GID           int
	Layer         int
	Shuffles      int
	ReEncs        int
	ProofsChecked int
	// Members is the group's live membership when the layer ran (k when
	// healthy; smaller after crashes). The mixing chain always uses
	// exactly threshold members, so a shrinking Members is the
	// degraded-mode signal: the group's h−1 spare budget is being
	// consumed.
	Members int
	// Workers is the worker-pool size the group's iteration ran with;
	// Busy totals the time its workers spent inside crypto tasks (the
	// utilization numerator against wall × Workers).
	Workers int
	Busy    time.Duration
}

// mixParams bundles what a group needs to execute one iteration.
type mixParams struct {
	// ctx aborts the iteration between members when canceled.
	ctx context.Context
	// batch is the group's working set for this iteration (per-round
	// state; the deployment threads it through from the RoundState).
	batch   []elgamal.Vector
	layer   int
	variant Variant
	// destinations are the next-layer group ids (empty for the exit
	// layer) and their public keys (nil entries mean ⊥).
	destGIDs []int
	destPKs  []*ecc.Point
	rnd      io.Reader
	// tamper, when non-nil, injects a malicious server: after the member
	// at position tamperMember (0-based within the active subset)
	// shuffles, the hook may replace that member's output batch. In the
	// NIZK variant the member's shuffle proof then fails verification and
	// the group aborts (Algorithm 2); in the trap variant the corruption
	// flows on and is caught by trap accounting (§4.4).
	tamper       func(batch []elgamal.Vector) []elgamal.Vector
	tamperMember int
	// workers bounds the group's crypto worker pool (MixConfig, already
	// resolved by the deployment; < 1 means serial).
	workers int
	// pads, when non-nil, is the deployment's offline precompute store;
	// the engine draws shuffle and re-enc randomness from it, falling
	// back to fresh draws past the bank.
	pads *elgamal.Pads
}

// runIteration executes Algorithm 1 (or Algorithm 2 when variant is
// VariantNIZK) for this group: shuffle by every active member in order,
// divide into β batches, and decrypt-and-reencrypt by every active
// member in order. It returns the β output batches aligned with
// destGIDs.
//
// Every cryptographic step — shuffle, proof, re-encryption,
// verification — is the shared MemberEngine, the same code the
// distributed actor path executes per member over a transport; this
// function merely plays all members of the group in one process. The
// per-message cryptography fans over a parallel.Pool of p.workers
// goroutines (MixConfig; Figure 7's multi-core scaling). Member chains
// stay serial — member m+1 consumes member m's output — but within a
// member's step the batch parallelizes.
//
// In the NIZK variant every shuffle and reencryption is accompanied by
// a proof (standing in for "all servers in the group verify the proof
// and report the result"). Shuffle-proof verification is deferred to
// the end of the member chain and runs for all members concurrently;
// like the immediate check it happens before any ciphertext leaves the
// group, so a failure aborts the round exactly as Algorithm 2
// prescribes, and the pool's first-error semantics guarantee the
// rejection is never swallowed.
func (g *GroupState) runIteration(p mixParams) ([][]elgamal.Vector, *StepTrace, error) {
	active, err := g.Active()
	if err != nil {
		return nil, nil, err
	}
	workers := p.workers
	if workers < 1 {
		workers = 1
	}
	trace := &StepTrace{GID: g.Info.ID, Layer: p.layer, Workers: workers, Members: g.LiveMembers()}

	// --- Step 1: Shuffle, each active member in order. ---
	// An empty batch (a group that received no ciphertexts this layer)
	// passes through: there is nothing to permute or prove.
	batch := p.batch
	if len(batch) == 0 {
		beta := len(p.destGIDs)
		if beta == 0 {
			beta = 1
		}
		return make([][]elgamal.Vector, beta), trace, nil
	}
	pool := parallel.New(p.ctx, workers)
	engine := &MemberEngine{GID: g.Info.ID, Variant: p.variant, GroupPK: g.PK, Pool: pool, Pads: p.pads}

	// Keep every member's step so all proofs can be verified
	// concurrently after the chain.
	var steps []*ShuffleStep
	for pos, idx := range active {
		if err := p.canceled(); err != nil {
			return nil, nil, err
		}
		out, perm, rands, err := engine.Shuffle(idx, batch, p.rnd)
		if err != nil {
			return nil, nil, err
		}
		trace.Shuffles++
		if p.tamper != nil && pos == p.tamperMember {
			if evil := p.tamper(out); evil != nil {
				out = evil
			}
		}
		step, err := engine.ProveStep(idx, batch, out, perm, rands, p.rnd)
		if err != nil {
			return nil, nil, err
		}
		if step.Proof != nil {
			steps = append(steps, step)
		}
		batch = out
	}
	if len(steps) > 0 {
		// Generation is a serial chain, but once the intermediate batches
		// exist each member's proof verifies independently.
		if len(steps) >= workers {
			// One proof per worker keeps the pool saturated.
			err = pool.Each(len(steps), func(si int) error { return engine.VerifyShuffle(steps[si], nil) })
		} else {
			// Fewer proofs than workers: verify in order, each proof
			// fanning its inner loops over the pool instead.
			for si := 0; si < len(steps) && err == nil; si++ {
				err = engine.VerifyShuffle(steps[si], pool)
			}
		}
		if err != nil {
			return nil, nil, err
		}
		trace.ProofsChecked += len(steps)
	}

	// --- Step 2: Divide into β batches (exactly as the topology
	// declares the split). ---
	beta := len(p.destGIDs)
	if beta == 0 {
		// Exit layer: one batch, decrypted to plaintext (pk = ⊥).
		beta = 1
		p.destGIDs = []int{-1}
		p.destPKs = []*ecc.Point{nil}
	}
	batches := Divide(batch, beta)

	// --- Step 3: Decrypt and reencrypt, each active member in order. ---
	for i := range batches {
		cur := batches[i]
		if len(cur) == 0 {
			continue
		}
		for _, idx := range active {
			if err := p.canceled(); err != nil {
				return nil, nil, err
			}
			gk := g.Keys[idx-1]
			eff, effPub, err := gk.EffectiveKey(active)
			if err != nil {
				return nil, nil, fmt.Errorf("protocol: group %d member %d key: %w", g.Info.ID, idx, err)
			}
			step, err := engine.ReEnc(idx, eff, effPub, p.destPKs[i], cur, p.rnd)
			if err != nil {
				return nil, nil, err
			}
			trace.ReEncs += len(cur)
			if p.variant == VariantNIZK {
				if err := engine.VerifyReEnc(step); err != nil {
					return nil, nil, err
				}
				trace.ProofsChecked += len(cur)
			}
			cur = step.Out
		}
		// Last server clears the Y slot before forwarding (Appendix A).
		batches[i] = ClearYBatch(cur)
	}
	trace.Busy = pool.Busy()
	return batches, trace, nil
}

// canceled reports the context's error, if any.
func (p *mixParams) canceled() error {
	if p.ctx != nil {
		if err := p.ctx.Err(); err != nil {
			return fmt.Errorf("protocol: mixing canceled: %w", err)
		}
	}
	return nil
}
