package protocol

import (
	"crypto/rand"
	"fmt"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// TestTrapDetectionProbability verifies the quantitative heart of §4.4:
// "When a malicious server removes or replaces a ciphertext, there is
// at least 50% chance that the modified ciphertext is a trap message
// because the users submit the ciphertexts in a random order and the
// ciphertexts are indistinguishable."
//
// The adversary replaces exactly one ciphertext in an entry group's
// batch with a fresh, well-formed message ciphertext (so counts still
// balance when it replaced a real message). Over many independent
// rounds, the round must abort roughly half the time — never much less
// (that would mean traps are distinguishable) and never much more.
func TestTrapDetectionProbability(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test skipped in -short mode")
	}
	const trials = 24
	aborts := 0
	for trial := 0; trial < trials; trial++ {
		cfg := Config{
			NumServers:  4,
			NumGroups:   2,
			GroupSize:   2,
			MessageSize: 32,
			Variant:     VariantTrap,
			Iterations:  2,
			Seed:        []byte(fmt.Sprintf("trap-stats-%d", trial)),
		}
		d, err := NewDeployment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 4; u++ {
			gid := u % 2
			pk, _ := d.GroupPK(gid)
			tpk, _ := d.TrusteePK()
			sub, err := c.SubmitTrap([]byte(fmt.Sprintf("m%d", u)), pk, tpk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.SubmitTrapUser(u, sub); err != nil {
				t.Fatal(err)
			}
		}
		// The malicious first server of group 0 replaces the batch's
		// first ciphertext with a fresh well-formed "message" of its own.
		d.SetAdversary(&Adversary{
			Layer: 0, GID: 0, Member: 0,
			Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
				payload := make([]byte, cfg.PayloadBytes())
				payload[0] = kindMessage
				if _, err := rand.Read(payload[1:]); err != nil {
					return nil
				}
				pts, err := ecc.EmbedMessage(payload, cfg.NumPoints())
				if err != nil {
					return nil
				}
				vec, _, err := elgamal.EncryptVector(d.groups[0].PK, pts, rand.Reader)
				if err != nil {
					return nil
				}
				out := make([]elgamal.Vector, len(batch))
				copy(out, batch)
				out[0] = vec
				return out
			},
		})
		if _, err := d.RunRound(); err != nil {
			aborts++
		}
	}
	// Binomial(24, 0.5): P(X ≤ 4) ≈ 0.0008, P(X ≥ 20) ≈ 0.0008. The
	// test is deterministic enough for CI while still catching a broken
	// detector (0 aborts) or over-aggressive aborting (24 aborts).
	if aborts <= 4 || aborts >= 20 {
		t.Errorf("replacing one ciphertext aborted %d/%d rounds; §4.4 predicts ≈50%%", aborts, trials)
	}
	t.Logf("abort rate: %d/%d (§4.4 predicts ≈1/2 per replaced ciphertext)", aborts, trials)
}

func TestSubmissionValidation(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	pk, _ := d.GroupPK(0)
	tpk, _ := d.TrusteePK()

	good, err := c.SubmitTrap([]byte("valid"), pk, tpk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong-gid-proof", func(t *testing.T) {
		// Submission built for group 0, delivered claiming group 1: the
		// EncProof's gid binding must reject it.
		bad := *good
		bad.GID = 1
		if err := d.SubmitTrapUser(1, &bad); err == nil {
			t.Error("wrong-gid submission accepted")
		}
	})
	t.Run("short-commitment", func(t *testing.T) {
		bad := *good
		bad.Commitment = []byte{1, 2, 3}
		if err := d.SubmitTrapUser(2, &bad); err == nil {
			t.Error("short commitment accepted")
		}
	})
	t.Run("variant-mismatch", func(t *testing.T) {
		if err := d.SubmitUser(3, &Submission{}); err == nil {
			t.Error("NIZK submission accepted by trap deployment")
		}
	})
	t.Run("bad-group-id", func(t *testing.T) {
		bad := *good
		bad.GID = 99
		if err := d.SubmitTrapUser(4, &bad); err == nil {
			t.Error("out-of-range group accepted")
		}
	})
	t.Run("accept-then-duplicate-commitment", func(t *testing.T) {
		if err := d.SubmitTrapUser(5, good); err != nil {
			t.Fatalf("valid submission rejected: %v", err)
		}
		// A different user reusing the same commitment must be rejected
		// (it would make the trap accounting ambiguous).
		other, err := c.SubmitTrap([]byte("other"), pk, tpk, 0, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		other.Commitment = good.Commitment
		if err := d.SubmitTrapUser(6, other); err == nil {
			t.Error("duplicate trap commitment accepted")
		}
	})
}

func TestNIZKSubmissionValidation(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	pk, _ := d.GroupPK(2)
	sub, err := c.Submit([]byte("x"), pk, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong-point-count", func(t *testing.T) {
		bad := *sub
		bad.Ciphertext = sub.Ciphertext[:1]
		if err := d.SubmitUser(0, &bad); err == nil {
			t.Error("short vector accepted")
		}
	})
	t.Run("mid-chain-Y", func(t *testing.T) {
		bad := *sub
		bad.Ciphertext = sub.Ciphertext.Clone()
		bad.Ciphertext[0].Y = ecc.Generator()
		if err := d.SubmitUser(0, &bad); err == nil {
			t.Error("Y ≠ ⊥ submission accepted")
		}
	})
	t.Run("trap-on-nizk", func(t *testing.T) {
		if err := d.SubmitTrapUser(0, &TrapSubmission{}); err == nil {
			t.Error("trap submission accepted by NIZK deployment")
		}
	})
	t.Run("valid", func(t *testing.T) {
		if err := d.SubmitUser(0, sub); err != nil {
			t.Errorf("valid submission rejected: %v", err)
		}
	})
}

func TestMultiRoundOperation(t *testing.T) {
	// Three consecutive rounds through one deployment: state resets,
	// trustee keys rotate, results stay correct.
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	for round := 0; round < 3; round++ {
		want := map[string]bool{}
		tpk, err := d.TrusteePK()
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < 8; u++ {
			gid := u % cfg.NumGroups
			pk, _ := d.GroupPK(gid)
			msg := fmt.Sprintf("round %d msg %d", round, u)
			want[msg] = true
			sub, err := c.SubmitTrap([]byte(msg), pk, tpk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.SubmitTrapUser(u, sub); err != nil {
				t.Fatal(err)
			}
		}
		res, err := d.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		checkMessages(t, res, want)

		// The trustee key must have rotated.
		tpk2, _ := d.TrusteePK()
		if string(tpk.Bytes()) == string(tpk2.Bytes()) {
			t.Fatalf("round %d: trustee key did not rotate", round)
		}
	}
}

func TestResetRoundAfterAbort(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)
	d.SetAdversary(&Adversary{
		Layer: 0, GID: 0, Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) == 0 {
				return nil
			}
			return batch[:len(batch)-1]
		},
	})
	if _, err := d.RunRound(); err == nil {
		t.Fatal("round should abort")
	}
	// Recovery path: reset and run a clean round.
	if err := d.ResetRound(); err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, 8)
	res, err := d.RunRound()
	if err != nil {
		t.Fatalf("post-reset round failed: %v", err)
	}
	checkMessages(t, res, want)
}
