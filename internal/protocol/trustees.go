package protocol

import (
	"errors"
	"fmt"
	"io"

	"atom/internal/cca2"
	"atom/internal/ecc"
)

// Trustees is the extra anytrust group of the trap variant (§4.4). The
// trustees collectively generate a per-round keypair — each holding an
// additive share of the secret — under which users CCA2-encrypt their
// inner ciphertexts. Each trustee releases its share only if every exit
// report is clean and the global trap/message counts match; otherwise it
// deletes the share, rendering the round's inner ciphertexts permanently
// undecryptable (so tampered messages are never revealed).
type Trustees struct {
	n      int
	pk     *ecc.Point
	shares []*ecc.Scalar // share i held by trustee i; nil once deleted
}

// ErrRoundAborted is returned when the trustees refuse to release the
// round key because a violation was reported.
var ErrRoundAborted = errors.New("protocol: round aborted — trustees deleted the decryption key")

// NewTrustees generates the per-round trustee key among n trustees.
func NewTrustees(n int, rnd io.Reader) (*Trustees, error) {
	if n < 1 {
		return nil, fmt.Errorf("protocol: need at least one trustee")
	}
	t := &Trustees{n: n, shares: make([]*ecc.Scalar, n)}
	pk := ecc.Identity()
	for i := 0; i < n; i++ {
		s, err := ecc.RandomScalar(rnd)
		if err != nil {
			return nil, fmt.Errorf("protocol: trustee keygen: %w", err)
		}
		t.shares[i] = s
		pk = pk.Add(ecc.BaseMul(s))
	}
	t.pk = pk
	// Every submission of the round CCA2-encrypts to this key; warm its
	// fixed-base table once here instead of paying a generic
	// multiplication per submission.
	cca2.WarmEncryptionKey(pk)
	return t, nil
}

// PK returns the round public key users encrypt inner ciphertexts to.
func (t *Trustees) PK() *ecc.Point { return t.pk }

// ExitReport is what each group reports to the trustees after the
// mixing and sorting phases (§4.4): whether every trap commitment had a
// matching trap and vice versa, whether the inner ciphertexts it
// received were well-formed and duplicate-free, and the counts.
type ExitReport struct {
	GID      int
	TrapsOK  bool
	InnerOK  bool
	NumTraps int
	NumInner int
}

// Release hands out the trustees' key shares if and only if every report
// is clean and the total number of traps equals the total number of
// inner ciphertexts. On any violation the shares are deleted first, so a
// second call cannot recover them.
func (t *Trustees) Release(reports []ExitReport) ([]*ecc.Scalar, error) {
	traps, inner := 0, 0
	ok := true
	var reason string
	for _, r := range reports {
		if !r.TrapsOK {
			ok = false
			reason = fmt.Sprintf("group %d reported trap violation", r.GID)
		}
		if !r.InnerOK {
			ok = false
			reason = fmt.Sprintf("group %d reported inner-ciphertext violation", r.GID)
		}
		traps += r.NumTraps
		inner += r.NumInner
	}
	if traps != inner {
		ok = false
		reason = fmt.Sprintf("count mismatch: %d traps vs %d inner ciphertexts", traps, inner)
	}
	if !ok {
		// Delete the shares before reporting failure: the key must not
		// survive a violation.
		for i := range t.shares {
			t.shares[i] = nil
		}
		return nil, fmt.Errorf("%w: %s", ErrRoundAborted, reason)
	}
	for _, s := range t.shares {
		if s == nil {
			return nil, fmt.Errorf("%w: shares already deleted", ErrRoundAborted)
		}
	}
	return t.shares, nil
}

// Deleted reports whether the trustees have destroyed their shares.
func (t *Trustees) Deleted() bool {
	for _, s := range t.shares {
		if s == nil {
			return true
		}
	}
	return false
}
