package protocol

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/nizk"
)

// testConfig is a small but complete deployment: 12 servers, 4 groups of
// 3, square topology with 3 iterations.
func testConfig(variant Variant) Config {
	return Config{
		NumServers:  12,
		NumGroups:   4,
		GroupSize:   3,
		HonestMin:   1,
		Fraction:    0.2,
		MessageSize: 32,
		Variant:     variant,
		Iterations:  3,
		Seed:        []byte("protocol-test"),
	}
}

// submitAll sends one message per user, spread evenly over entry groups,
// and returns the expected plaintext set.
func submitAll(t *testing.T, d *Deployment, c *Client, numUsers int) map[string]bool {
	t.Helper()
	want := make(map[string]bool, numUsers)
	for u := 0; u < numUsers; u++ {
		gid := u % d.NumGroups()
		msg := []byte(fmt.Sprintf("message from user %02d", u))
		want[string(msg)] = true
		pk, err := d.GroupPK(gid)
		if err != nil {
			t.Fatal(err)
		}
		switch d.Config().Variant {
		case VariantNIZK:
			sub, err := c.Submit(msg, pk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.SubmitUser(u, sub); err != nil {
				t.Fatal(err)
			}
		case VariantTrap:
			tpk, err := d.TrusteePK()
			if err != nil {
				t.Fatal(err)
			}
			sub, err := c.SubmitTrap(msg, pk, tpk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := d.SubmitTrapUser(u, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	return want
}

func checkMessages(t *testing.T, res *RoundResult, want map[string]bool) {
	t.Helper()
	if len(res.Messages) != len(want) {
		t.Fatalf("round returned %d messages, want %d", len(res.Messages), len(want))
	}
	for _, m := range res.Messages {
		if !want[string(m)] {
			t.Errorf("unexpected message %q", m)
		}
		delete(want, string(m))
	}
	if len(want) != 0 {
		t.Errorf("%d messages missing: %v", len(want), want)
	}
}

func TestNIZKRoundEndToEnd(t *testing.T) {
	d, err := NewDeployment(testConfig(VariantNIZK))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&Config{})
	if err == nil {
		t.Fatal("NewClient should reject an invalid config")
	}
	cfg := testConfig(VariantNIZK)
	c, err = NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 16 users → 4 per entry group → every group's batch stays non-empty
	// through every layer, so the shuffle accounting is exact.
	want := submitAll(t, d, c, 16)
	res, err := d.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	checkMessages(t, res, want)

	// Correctness of the accounting: every live member of every group
	// shuffled once per layer.
	cfgT := d.Config()
	expectShuffles := cfgT.Threshold() * cfgT.NumGroups * cfgT.Iterations
	total := 0
	proofs := 0
	for _, tr := range res.Traces {
		total += tr.Shuffles
		proofs += tr.ProofsChecked
	}
	if total != expectShuffles {
		t.Errorf("%d shuffles performed, want %d", total, expectShuffles)
	}
	if proofs == 0 {
		t.Error("NIZK round verified no proofs")
	}
}

func TestTrapRoundEndToEnd(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, 8)
	res, err := d.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	checkMessages(t, res, want)

	// Trap variant must not verify shuffle proofs during mixing.
	for _, tr := range res.Traces {
		if tr.ProofsChecked != 0 {
			t.Error("trap variant checked NIZK proofs during mixing")
		}
	}
	// The exit outputs must contain twice as many payloads as users
	// (trap + message per user).
	payloads := 0
	for _, ps := range res.ExitOutputs {
		payloads += len(ps)
	}
	if payloads != 16 {
		t.Errorf("%d exit payloads, want 16", payloads)
	}
}

func TestButterflyTopologyRound(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	cfg.Topology = "butterfly"
	cfg.ButterflyReps = 2
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	want := submitAll(t, d, c, 8)
	res, err := d.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	checkMessages(t, res, want)
}

func TestNIZKDetectsTamperingServer(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)

	// A malicious middle server in group 1 at layer 1 replaces one
	// ciphertext with a rerandomized copy of another (the duplicate
	// attack). Algorithm 2's shuffle proof must catch it immediately.
	d.SetAdversary(&Adversary{
		Layer:  1,
		GID:    1,
		Member: 1,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) < 2 {
				return nil
			}
			out := make([]elgamal.Vector, len(batch))
			copy(out, batch)
			pk := d.groups[1].PK
			dup, _, err := elgamal.RerandomizeVector(pk, batch[0], rand.Reader)
			if err != nil {
				return nil
			}
			out[1] = dup
			return out
		},
	})
	if _, err := d.RunRound(); err == nil {
		t.Fatal("NIZK round succeeded despite server tampering")
	}
}

func TestTrapDetectsDroppedCiphertext(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)

	// A malicious server drops one ciphertext mid-mix. Counts no longer
	// balance (or a committed trap goes missing), so the trustees refuse
	// to release the key.
	d.SetAdversary(&Adversary{
		Layer:  1,
		GID:    2,
		Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) == 0 {
				return nil
			}
			return batch[:len(batch)-1]
		},
	})
	_, err = d.RunRound()
	if err == nil {
		t.Fatal("trap round succeeded despite a dropped ciphertext")
	}
	if !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("expected ErrRoundAborted, got %v", err)
	}
	if !d.currentRound().trustees.Deleted() {
		t.Error("trustees did not delete their key shares")
	}
}

func TestTrapDetectsDuplicatedCiphertext(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)

	// The §4.4 duplicate attack: replace one ciphertext with a
	// rerandomized copy of another. Whichever way it lands (duplicate
	// trap or duplicate inner ciphertext), detection must fire: either a
	// commitment count mismatch or the duplicate-inner check.
	d.SetAdversary(&Adversary{
		Layer:  0,
		GID:    0,
		Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) < 2 {
				return nil
			}
			out := make([]elgamal.Vector, len(batch))
			copy(out, batch)
			dup, _, err := elgamal.RerandomizeVector(d.groups[0].PK, batch[0], rand.Reader)
			if err != nil {
				return nil
			}
			out[1] = dup
			return out
		},
	})
	_, err = d.RunRound()
	if err == nil {
		t.Fatal("trap round succeeded despite a duplicated ciphertext")
	}
	if !errors.Is(err, ErrRoundAborted) {
		t.Fatalf("expected ErrRoundAborted, got %v", err)
	}
}

func TestTrapRemovalDoesNotRevealPlaintext(t *testing.T) {
	// §4.4: "the removed inner ciphertexts are always encrypted under at
	// least one honest server's key" — after an abort, the adversary
	// holds no decryption key, and the trustees' shares are gone.
	cfg := testConfig(VariantTrap)
	d, _ := NewDeployment(cfg)
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 8)
	d.SetAdversary(&Adversary{
		Layer: 1, GID: 0, Member: 0,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) == 0 {
				return nil
			}
			return batch[:len(batch)-1]
		},
	})
	if _, err := d.RunRound(); err == nil {
		t.Fatal("round should have aborted")
	}
	if !d.currentRound().trustees.Deleted() {
		t.Fatal("trustee shares must be deleted on abort")
	}
	// A second release attempt must fail permanently.
	if _, err := d.currentRound().trustees.Release(nil); err == nil {
		t.Fatal("released key after deletion")
	}
}

func TestFaultToleranceWithinBudget(t *testing.T) {
	// h=2: every group of 4 can lose one member and keep mixing (§4.5).
	cfg := testConfig(VariantNIZK)
	cfg.GroupSize = 4
	cfg.HonestMin = 2
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	want := submitAll(t, d, c, 8)

	// Fail one member of every group.
	for gid := 0; gid < cfg.NumGroups; gid++ {
		if err := d.FailGroupMember(gid, 1); err != nil {
			t.Fatal(err)
		}
	}
	res, err := d.RunRound()
	if err != nil {
		t.Fatalf("round failed despite being within the fault budget: %v", err)
	}
	checkMessages(t, res, want)
}

func TestFaultBeyondBudgetAbortsThenRecovers(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	cfg.GroupSize = 4
	cfg.HonestMin = 2
	cfg.BuddyCount = 2
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	want := submitAll(t, d, c, 8)

	// Two failures in group 0 exceed the h−1 = 1 budget.
	if err := d.FailGroupMember(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.FailGroupMember(0, 2); err != nil {
		t.Fatal(err)
	}
	need, err := d.GroupNeedsRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	if !need {
		t.Fatal("group 0 should need recovery")
	}
	if _, err := d.RunRound(); err == nil {
		t.Fatal("round succeeded with a dead group")
	}

	// Buddy-group recovery (§4.5): fresh servers take over the failed
	// positions, reconstructing shares from the escrow.
	if err := d.RecoverGroup(0, []int{100, 101}); err != nil {
		t.Fatal(err)
	}
	need, _ = d.GroupNeedsRecovery(0)
	if need {
		t.Fatal("group 0 still needs recovery after RecoverGroup")
	}

	// Resubmit (the aborted round was consumed) and rerun.
	d2 := d
	if err := d2.ResetRound(); err != nil {
		t.Fatal(err)
	}
	want = submitAll(t, d2, c, 8)
	res, err := d2.RunRound()
	if err != nil {
		t.Fatalf("round failed after recovery: %v", err)
	}
	checkMessages(t, res, want)
	_ = want
}

func TestRecoveryRequiresBuddies(t *testing.T) {
	cfg := testConfig(VariantNIZK)
	d, _ := NewDeployment(cfg) // BuddyCount = 0
	if err := d.RecoverGroup(0, []int{99}); err == nil {
		t.Fatal("recovery without buddy groups should fail")
	}
}

func TestBlameIdentifiesBadCommitment(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 6)

	// User 99 submits a trap whose commitment is wrong: the round must
	// abort and the blame procedure must identify exactly user 99.
	gid := 0
	pk, _ := d.GroupPK(gid)
	tpk, _ := d.TrusteePK()
	sub, err := c.SubmitTrap([]byte("evil"), pk, tpk, gid, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	sub.Commitment = TrapCommitment([]byte("not the real trap"))
	if err := d.SubmitTrapUser(99, sub); err != nil {
		t.Fatal(err)
	}

	if _, err := d.RunRound(); err == nil {
		t.Fatal("round succeeded with a bad trap commitment")
	}
	report, err := d.IdentifyMaliciousUsers()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.BadUsers) != 1 || report.BadUsers[0] != 99 {
		t.Fatalf("blame = %v (%v), want exactly user 99", report.BadUsers, report.Reasons)
	}
}

func TestBlameIdentifiesDuplicateInnerCiphertexts(t *testing.T) {
	cfg := testConfig(VariantTrap)
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := NewClient(&cfg)
	submitAll(t, d, c, 6)

	// Users 200 and 201 submit the same inner ciphertext (200 builds a
	// valid submission; 201 clones the inner payload with a fresh trap).
	gid := 1
	pk, _ := d.GroupPK(gid)
	tpk, _ := d.TrusteePK()
	subA, err := c.SubmitTrap([]byte("copied message"), pk, tpk, gid, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitTrapUser(200, subA); err != nil {
		t.Fatal(err)
	}
	// Craft 201's submission: same decrypted inner payload requires
	// copying the inner plaintext before onion encryption. We rebuild it
	// by decrypting nothing — instead, clone the submission and replace
	// the trap with a fresh valid one.
	subB, err := cloneWithFreshTrap(c, d, subA, gid)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitTrapUser(201, subB); err != nil {
		t.Fatal(err)
	}

	if _, err := d.RunRound(); err == nil {
		t.Fatal("round succeeded with duplicate inner ciphertexts")
	}
	report, err := d.IdentifyMaliciousUsers()
	if err != nil {
		t.Fatal(err)
	}
	blamed := map[int]bool{}
	for _, u := range report.BadUsers {
		blamed[u] = true
	}
	if !blamed[200] || !blamed[201] {
		t.Fatalf("blame = %v (%v), want users 200 and 201", report.BadUsers, report.Reasons)
	}
}

// cloneWithFreshTrap builds a trap submission whose inner ciphertext
// payload is byte-identical to src's but with a new trap and commitment —
// the §4.6 "duplicate inner ciphertexts" attack. It reaches into the
// deployment's group secret the way a colluding entry group could.
func cloneWithFreshTrap(c *Client, d *Deployment, src *TrapSubmission, gid int) (*TrapSubmission, error) {
	g := d.groups[gid]
	secret, err := d.revealGroupSecret(g)
	if err != nil {
		return nil, err
	}
	// Find which of src's two ciphertexts is the inner message.
	var innerPayload []byte
	for i := 0; i < 2; i++ {
		pts, err := elgamal.DecryptVector(secret, src.Ciphertexts[i])
		if err != nil {
			return nil, err
		}
		payload, err := ecc.ExtractMessage(pts)
		if err != nil || len(payload) == 0 {
			continue
		}
		if payload[0] == kindMessage {
			innerPayload = payload
		}
	}
	if innerPayload == nil {
		return nil, errors.New("no inner payload found")
	}
	trapPayload, err := makeTrap(gid, c.cfg.PayloadBytes(), rand.Reader)
	if err != nil {
		return nil, err
	}
	innerVec, innerProof, err := c.encryptPayload(innerPayload, g.PK, gid, rand.Reader)
	if err != nil {
		return nil, err
	}
	trapVec, trapProof, err := c.encryptPayload(trapPayload, g.PK, gid, rand.Reader)
	if err != nil {
		return nil, err
	}
	return &TrapSubmission{
		GID:         gid,
		Ciphertexts: [2]elgamal.Vector{innerVec, trapVec},
		Proofs:      [2]*nizk.EncProof{innerProof, trapProof},
		Commitment:  TrapCommitment(trapPayload),
	}, nil
}
