package protocol

import (
	"crypto/rand"
	"errors"
	"fmt"
	"testing"

	"atom/internal/ecc"
)

// mixedNIZKWires builds a batch that exercises every admission outcome:
// valid submissions across all entry groups, a within-batch duplicate, a
// tampered proof, an unknown entry group, and undecodable bytes.
func mixedNIZKWires(t *testing.T, d *Deployment, c *Client) [][]byte {
	t.Helper()
	wires := make([][]byte, 0, 8)
	for u := 0; u < 5; u++ {
		gid := u % d.NumGroups()
		pk, err := d.GroupPK(gid)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.Submit([]byte(fmt.Sprintf("batch user %d", u)), pk, gid, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		wires = append(wires, sub.Encode())
	}
	// Duplicate of the first submission.
	wires = append(wires, append([]byte(nil), wires[0]...))
	// Tampered proof on a fresh submission.
	pk, _ := d.GroupPK(1)
	bad, err := c.Submit([]byte("tampered"), pk, 1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bad.Proof.Resp[0] = bad.Proof.Resp[0].Add(ecc.NewScalar(1))
	wires = append(wires, bad.Encode())
	// Unknown entry group.
	ghost, err := c.Submit([]byte("ghost group"), pk, 1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	ghost.GID = 99
	wires = append(wires, ghost.Encode())
	// Undecodable bytes.
	wires = append(wires, []byte{0xff, 0x01, 0x02})
	return wires
}

// compareBatchToSerial admits the same wires serially into one round and
// batched into another, and requires identical per-submission outcomes —
// the batched plane must be indistinguishable from the serial one.
func compareBatchToSerial(t *testing.T, d *Deployment, wires [][]byte) []error {
	t.Helper()
	rsSerial, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	serialErrs := make([]error, len(wires))
	for i, w := range wires {
		serialErrs[i] = rsSerial.SubmitEncoded(i, w)
	}
	rsBatch, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	users := make([]int, len(wires))
	for i := range users {
		users[i] = i
	}
	batchErrs, stats := rsBatch.SubmitEncodedBatch(users, wires)
	for i := range wires {
		se, be := serialErrs[i], batchErrs[i]
		if (se == nil) != (be == nil) {
			t.Fatalf("submission %d: serial err %v, batch err %v", i, se, be)
		}
		if se != nil && se.Error() != be.Error() {
			t.Errorf("submission %d attribution mismatch:\n serial %q\n batch  %q", i, se, be)
		}
	}
	if rsSerial.Pending() != rsBatch.Pending() {
		t.Errorf("pending: serial %d, batch %d", rsSerial.Pending(), rsBatch.Pending())
	}
	if rsSerial.Rejected() != rsBatch.Rejected() {
		t.Errorf("rejected: serial %d, batch %d", rsSerial.Rejected(), rsBatch.Rejected())
	}
	if stats.Size != len(wires) || stats.Admitted != rsBatch.Pending() || stats.Rejected != rsBatch.Rejected() {
		t.Errorf("stats %+v inconsistent with round (pending %d, rejected %d)", stats, rsBatch.Pending(), rsBatch.Rejected())
	}
	if stats.Admitted > 0 && stats.VerifyTime <= 0 {
		t.Errorf("stats.VerifyTime = %v, want > 0", stats.VerifyTime)
	}
	return batchErrs
}

func TestBatchAdmissionMatchesSerialNIZK(t *testing.T) {
	d, err := NewDeployment(testConfig(VariantNIZK))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(VariantNIZK)
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	errs := compareBatchToSerial(t, d, mixedNIZKWires(t, d, c))
	// Spot-check the typed attribution the daemon relies on.
	if !errors.Is(errs[5], ErrDuplicateSubmission) {
		t.Errorf("duplicate: got %v", errs[5])
	}
	if !errors.Is(errs[6], ErrBadSubmission) || errors.Is(errs[6], ErrDuplicateSubmission) {
		t.Errorf("tampered proof: got %v", errs[6])
	}
	if !errors.Is(errs[7], ErrNoSuchGroup) {
		t.Errorf("ghost group: got %v", errs[7])
	}
	if !errors.Is(errs[8], ErrBadSubmission) {
		t.Errorf("garbage: got %v", errs[8])
	}
	for i := 0; i < 5; i++ {
		if errs[i] != nil {
			t.Errorf("valid submission %d rejected: %v", i, errs[i])
		}
	}
}

func TestBatchAdmissionMatchesSerialTrap(t *testing.T) {
	cfg := testConfig(VariantTrap)
	cfg.NumTrustees = 3
	d, err := NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	tpk, err := d.TrusteePK()
	if err != nil {
		t.Fatal(err)
	}
	wires := make([][]byte, 0, 8)
	var first *TrapSubmission
	for u := 0; u < 4; u++ {
		gid := u % d.NumGroups()
		pk, err := d.GroupPK(gid)
		if err != nil {
			t.Fatal(err)
		}
		sub, err := c.SubmitTrap([]byte(fmt.Sprintf("trap user %d", u)), pk, tpk, gid, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if u == 0 {
			first = sub
		}
		wires = append(wires, sub.Encode())
	}
	// Tampered second proof — serial attribution says "ciphertext 1".
	pk, _ := d.GroupPK(2)
	bad, err := c.SubmitTrap([]byte("tampered trap"), pk, tpk, 2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	bad.Proofs[1].Resp[0] = bad.Proofs[1].Resp[0].Add(ecc.NewScalar(1))
	wires = append(wires, bad.Encode())
	// Fresh ciphertexts reusing the first submission's commitment.
	pk0, _ := d.GroupPK(0)
	reuse, err := c.SubmitTrap([]byte("commitment thief"), pk0, tpk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	reuse.Commitment = append([]byte(nil), first.Commitment...)
	wires = append(wires, reuse.Encode())
	// Byte-identical replay.
	wires = append(wires, append([]byte(nil), wires[1]...))

	errs := compareBatchToSerial(t, d, wires)
	if !errors.Is(errs[4], ErrBadSubmission) || errors.Is(errs[4], ErrDuplicateSubmission) {
		t.Errorf("tampered trap proof: got %v", errs[4])
	}
	if !errors.Is(errs[5], ErrDuplicateSubmission) {
		t.Errorf("commitment reuse: got %v", errs[5])
	}
	if !errors.Is(errs[6], ErrDuplicateSubmission) {
		t.Errorf("replayed trap: got %v", errs[6])
	}
	for i := 0; i < 4; i++ {
		if errs[i] != nil {
			t.Errorf("valid trap submission %d rejected: %v", i, errs[i])
		}
	}
}

// TestBatchAdmissionPlaintextParity runs full rounds fed by the batched
// plane at 1 and 4 mixing workers; the canonical plaintext sets must be
// byte-identical to each other and to the submitted messages.
func TestBatchAdmissionPlaintextParity(t *testing.T) {
	var prev [][]byte
	for _, workers := range []int{1, 4} {
		cfg := testConfig(VariantNIZK)
		cfg.Mix.Workers = workers
		cfg.Seed = []byte("parity-seed")
		d, err := NewDeployment(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(&cfg)
		if err != nil {
			t.Fatal(err)
		}
		users := make([]int, 16)
		wires := make([][]byte, 16)
		want := make(map[string]bool, 16)
		for u := range wires {
			gid := u % d.NumGroups()
			pk, err := d.GroupPK(gid)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte(fmt.Sprintf("parity message %02d", u))
			want[string(msg)] = true
			sub, err := c.Submit(msg, pk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			users[u], wires[u] = u, sub.Encode()
		}
		errs, _ := d.CurrentRound().SubmitEncodedBatch(users, wires)
		for i, e := range errs {
			if e != nil {
				t.Fatalf("workers=%d: submission %d rejected: %v", workers, i, e)
			}
		}
		res, err := d.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		checkMessages(t, res, want)
		if prev != nil {
			if len(prev) != len(res.Messages) {
				t.Fatalf("workers=1 produced %d messages, workers=%d produced %d", len(prev), workers, len(res.Messages))
			}
			for i := range prev {
				if string(prev[i]) != string(res.Messages[i]) {
					t.Fatalf("workers=%d message %d differs: %q vs %q", workers, i, prev[i], res.Messages[i])
				}
			}
		}
		prev = res.Messages
	}
}

func TestBatchAdmissionSealedRound(t *testing.T) {
	d, err := NewDeployment(testConfig(VariantNIZK))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(VariantNIZK)
	c, err := NewClient(&cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.SealRound(rs); err != nil {
		t.Fatal(err)
	}
	pk, _ := d.GroupPK(0)
	sub, err := c.Submit([]byte("too late"), pk, 0, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	errs, stats := rs.SubmitEncodedBatch([]int{0, 1}, [][]byte{sub.Encode(), sub.Encode()})
	for i, e := range errs {
		if !errors.Is(e, ErrRoundClosed) {
			t.Errorf("sealed round submission %d: got %v", i, e)
		}
	}
	if stats.Rejected != 2 || stats.Admitted != 0 {
		t.Errorf("sealed stats: %+v", stats)
	}
}

func TestBatchAdmissionEmpty(t *testing.T) {
	d, err := NewDeployment(testConfig(VariantNIZK))
	if err != nil {
		t.Fatal(err)
	}
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	errs, stats := rs.SubmitEncodedBatch(nil, nil)
	if len(errs) != 0 || stats.Size != 0 {
		t.Fatalf("empty batch: errs %v stats %+v", errs, stats)
	}
}
