package protocol

import (
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/nizk"
	"atom/internal/parallel"
	"atom/internal/topology"
)

// MemberEngine executes one group member's share of a mixing iteration:
// the verifiable shuffle, the verifiable decrypt-and-reencrypt, and the
// verification of another member's steps. It is the single
// implementation shared by the in-process deployment
// (GroupState.runIteration, which plays every member of a group in one
// process) and the distributed actor loop (internal/distributed, where
// each member owns only its own key share and receives the other
// members' steps over a transport) — so the two paths cannot drift.
//
// All per-message cryptography fans over the engine's parallel.Pool
// (nil = serial); error classification is uniform: a failed proof
// becomes a *Blame wrapping ErrProofRejected with the offending group
// and member attached, and a context expiry observed inside pooled
// verification is reported as a cancellation, never as a byzantine
// fault pinned on an innocent member.
type MemberEngine struct {
	// GID is the group the engine mixes for (blame attribution).
	GID int
	// Variant selects whether steps carry NIZK proofs.
	Variant Variant
	// GroupPK is the group key ciphertexts are currently encrypted to.
	GroupPK *ecc.Point
	// Pool bounds the engine's crypto parallelism; nil runs serially.
	Pool *parallel.Pool
	// Pads, when non-nil, is the offline precompute store: shuffles and
	// re-encryptions draw their rerandomizers from the per-base pad
	// pools and fall back to fresh randomness past the bank. Nil keeps
	// the all-online path.
	Pads *elgamal.Pads
}

// ShuffleStep is one member's verifiable shuffle: the input batch, the
// permuted+rerandomized output, and (NIZK variant) the proof tying them
// together. It is exactly what travels to the next member in the
// distributed chain.
type ShuffleStep struct {
	// Member is the shuffler's DVSS index, for blame attribution.
	Member  int
	In, Out []elgamal.Vector
	Proof   *nizk.ShufProof // nil outside the NIZK variant
}

// ReEncStep is one member's verifiable decrypt-and-reencrypt of one
// batch toward one destination key (nil = ⊥, the exit layer).
type ReEncStep struct {
	// Member is the re-encryptor's DVSS index.
	Member int
	// EffPub is the member's effective public key (λ·share image), the
	// statement key the proofs verify against. Verifiers must fill this
	// from the public DKG transcript, never from the prover's claim.
	EffPub  *ecc.Point
	DestPK  *ecc.Point
	In, Out []elgamal.Vector
	Proofs  []*nizk.ReEncProof // nil outside the NIZK variant
}

// Shuffle permutes and rerandomizes the batch under the group key,
// returning the raw material (output, permutation, randomness) so the
// caller can interpose — the deployment's adversary hook tampers with
// the output here — before ProveStep seals the step.
func (e *MemberEngine) Shuffle(member int, batch []elgamal.Vector, rnd io.Reader) (out []elgamal.Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	out, perm, rands, err = elgamal.ShuffleBatchPads(e.GroupPK, batch, rnd, e.Pool, e.Pads.For(e.GroupPK))
	if err != nil {
		return nil, nil, nil, fmt.Errorf("protocol: group %d member %d shuffle: %w", e.GID, member, err)
	}
	return out, perm, rands, nil
}

// ProveStep closes a shuffle into a ShuffleStep, generating the NIZK in
// the proving variant. perm and rands must be the values Shuffle
// returned for (in, out); a tampered out yields a proof that fails
// verification, exactly as a malicious prover's would.
func (e *MemberEngine) ProveStep(member int, in, out []elgamal.Vector, perm []int, rands [][]*ecc.Scalar, rnd io.Reader) (*ShuffleStep, error) {
	step := &ShuffleStep{Member: member, In: in, Out: out}
	if e.Variant == VariantNIZK {
		proof, err := nizk.ProveShufflePar(e.GroupPK, in, out, perm, rands, rnd, e.Pool)
		if err != nil {
			return nil, fmt.Errorf("protocol: group %d member %d shuffle proof: %w", e.GID, member, err)
		}
		step.Proof = proof
	}
	return step, nil
}

// VerifyShuffle checks a member's shuffle step (NIZK variant; a no-op
// for proof-less trap steps). pool overrides the engine's pool for the
// inner multiexp fan-out — callers verifying many steps concurrently
// pass nil and fan the steps themselves. A rejection is a *Blame
// wrapping ErrProofRejected.
func (e *MemberEngine) VerifyShuffle(s *ShuffleStep, pool *parallel.Pool) error {
	if e.Variant != VariantNIZK {
		return nil
	}
	if err := nizk.VerifyShufflePar(e.GroupPK, s.In, s.Out, s.Proof, pool); err != nil {
		if parallel.Canceled(err) {
			// The round was canceled mid-verification — not a byzantine
			// fault; never blame the member for it.
			return fmt.Errorf("protocol: mixing canceled: %w", err)
		}
		return &Blame{GID: e.GID, Member: s.Member, Err: fmt.Errorf(
			"%w: group %d aborts — member %d shuffle rejected: %v", ErrProofRejected, e.GID, s.Member, err)}
	}
	return nil
}

// ReEnc peels the member's layer off every ciphertext of the batch and
// re-encrypts toward destPK (nil = decrypt to plaintext, the exit
// layer), generating per-vector proofs in the NIZK variant. eff/effPub
// are the member's effective key pair for the active subset.
func (e *MemberEngine) ReEnc(member int, eff *ecc.Scalar, effPub, destPK *ecc.Point, batch []elgamal.Vector, rnd io.Reader) (*ReEncStep, error) {
	next, rss, err := elgamal.ReEncBatchPads(eff, destPK, batch, rnd, e.Pool, e.Pads.For(destPK))
	if err != nil {
		return nil, fmt.Errorf("protocol: group %d member %d reenc: %w", e.GID, member, err)
	}
	step := &ReEncStep{Member: member, EffPub: effPub, DestPK: destPK, In: batch, Out: next}
	if e.Variant == VariantNIZK {
		// Per-vector proofs are independent: generate them across the
		// pool (randomness drawn through a locked reader).
		prnd := parallel.LockedReader(rnd)
		proofs, err := parallel.Map(e.Pool, len(batch), func(vi int) (*nizk.ReEncProof, error) {
			return nizk.ProveReEnc(eff, effPub, destPK, batch[vi], next[vi], rss[vi], prnd)
		})
		if err != nil {
			return nil, fmt.Errorf("protocol: group %d member %d reenc proof: %w", e.GID, member, err)
		}
		step.Proofs = proofs
	}
	return step, nil
}

// VerifyReEnc checks a member's re-encryption step with one batched
// random-linear-combination verification (NIZK variant; a no-op for
// trap steps). The step's EffPub must come from the verifier's own
// roster. A rejection is a *Blame wrapping ErrProofRejected.
func (e *MemberEngine) VerifyReEnc(s *ReEncStep) error {
	if e.Variant != VariantNIZK {
		return nil
	}
	if err := nizk.VerifyReEncBatch(s.EffPub, s.DestPK, s.In, s.Out, s.Proofs, e.Pool); err != nil {
		if parallel.Canceled(err) {
			return fmt.Errorf("protocol: mixing canceled: %w", err)
		}
		return &Blame{GID: e.GID, Member: s.Member, Err: fmt.Errorf(
			"%w: group %d aborts — member %d reencryption rejected: %v", ErrProofRejected, e.GID, s.Member, err)}
	}
	return nil
}

// Divide splits a shuffled batch into β contiguous sub-batches exactly
// as the topology declares the split (Algorithm 1 step 2).
func Divide(batch []elgamal.Vector, beta int) [][]elgamal.Vector {
	sizes := topology.BatchSizes(len(batch), beta)
	out := make([][]elgamal.Vector, beta)
	off := 0
	for i := 0; i < beta; i++ {
		out[i] = batch[off : off+sizes[i]]
		off += sizes[i]
	}
	return out
}

// ClearYBatch clears the Y slot of every vector — the last server's
// final touch before the batch leaves the group (Appendix A).
func ClearYBatch(batch []elgamal.Vector) []elgamal.Vector {
	for vi := range batch {
		batch[vi] = elgamal.ClearYVector(batch[vi])
	}
	return batch
}

// ExtractExitPayloads converts an exit group's fully-decrypted vectors
// into payload bytes — shared by the in-process mixer and the
// distributed coordinator.
func ExtractExitPayloads(batch []elgamal.Vector) ([][]byte, error) {
	out := make([][]byte, len(batch))
	for i, vec := range batch {
		pts := elgamal.PlaintextVector(vec)
		payload, err := ecc.ExtractMessage(pts)
		if err != nil {
			return nil, fmt.Errorf("message %d: %w", i, err)
		}
		out[i] = payload
	}
	return out, nil
}
