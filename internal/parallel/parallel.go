package parallel

import (
	"context"
	"crypto/rand"
	"errors"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Workers resolves a worker-count knob: values below 1 mean one worker
// per available CPU.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Pool is a bounded parallel executor. The zero value is not useful;
// use New. A nil Pool executes serially. Pools are cheap (no standing
// goroutines): one per group-iteration is the intended granularity, so
// the busy counter doubles as that iteration's utilization numerator.
type Pool struct {
	ctx     context.Context
	workers int
	busy    atomic.Int64 // nanoseconds spent inside tasks
}

// New creates a pool running at most Workers(workers) tasks at once.
// ctx may be nil for uncancellable work.
func New(ctx context.Context, workers int) *Pool {
	return &Pool{ctx: ctx, workers: Workers(workers)}
}

// Workers returns the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Busy returns the cumulative time spent inside tasks across all
// workers — the numerator of a worker-utilization ratio whose
// denominator is wall-clock × Workers().
func (p *Pool) Busy() time.Duration {
	if p == nil {
		return 0
	}
	return time.Duration(p.busy.Load())
}

// err reports the context's error, if any.
func (p *Pool) ctxErr() error {
	if p == nil || p.ctx == nil {
		return nil
	}
	return p.ctx.Err()
}

// Each runs fn(i) for every i in [0, n), at most Workers() at a time.
// See the package comment for the first-error + abort semantics.
func (p *Pool) Each(n int, fn func(int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.Workers()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		start := time.Now()
		defer func() {
			if p != nil {
				p.busy.Add(int64(time.Since(start)))
			}
		}()
		for i := 0; i < n; i++ {
			if err := p.ctxErr(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next  atomic.Int64 // next index to hand out
		limit atomic.Int64 // indices ≥ limit are abandoned
		mu    sync.Mutex
		first error // error of the lowest failing index
		at    int   // its index
	)
	limit.Store(int64(n))
	fail := func(i int, err error) {
		// Shrink the dispatch horizon so no later index starts, and
		// keep the lowest-index error for a deterministic outcome.
		for {
			cur := limit.Load()
			if int64(i) >= cur || limit.CompareAndSwap(cur, int64(i)) {
				break
			}
		}
		mu.Lock()
		if first == nil || i < at {
			first, at = err, i
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			defer func() { p.busy.Add(int64(time.Since(start))) }()
			for {
				i := int(next.Add(1) - 1)
				if int64(i) >= limit.Load() || i >= n {
					return
				}
				if err := p.ctxErr(); err != nil {
					fail(i, err)
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return first
}

// Do runs fn inline on the calling goroutine, counting its duration as
// busy time — for inherently serial stages (e.g. the ILMPP chain of a
// shuffle proof) that should still show up in utilization accounting.
func (p *Pool) Do(fn func() error) error {
	if p == nil {
		return fn()
	}
	if err := p.ctxErr(); err != nil {
		return err
	}
	start := time.Now()
	defer func() { p.busy.Add(int64(time.Since(start))) }()
	return fn()
}

// Each is the package-level convenience: one-shot pool over [0, n).
func Each(ctx context.Context, workers, n int, fn func(int) error) error {
	return New(ctx, workers).Each(n, fn)
}

// Map runs fn(i) for every i in [0, n) on the pool and collects the
// results in index order. On error the partial results are discarded
// and the lowest failing index's error is returned.
func Map[T any](p *Pool, n int, fn func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Each(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Canceled reports whether err is the pool's context expiring rather
// than a task failing — callers that classify task failures (e.g. as
// byzantine faults) must not classify a cancellation the same way.
func Canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// lockedReader serializes reads so a non-concurrency-safe randomness
// source can be drawn from inside pool tasks.
type lockedReader struct {
	mu sync.Mutex
	r  io.Reader
}

func (l *lockedReader) Read(b []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Read(b)
}

// LockedReader wraps rnd for safe concurrent draws from pool tasks.
// crypto/rand.Reader (also the meaning of nil) is already safe and is
// returned unwrapped.
func LockedReader(rnd io.Reader) io.Reader {
	if rnd == nil || rnd == rand.Reader {
		return rand.Reader
	}
	return &lockedReader{r: rnd}
}
