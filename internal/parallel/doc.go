// Package parallel is the shared worker-pool engine behind Atom's
// mixing path. The paper's Figure 7 shows a mixing iteration scaling
// near-linearly with cores; this package supplies the one execution
// primitive every crypto layer (elgamal batch operations, nizk proof
// generation/verification, protocol.GroupState.runIteration) fans its
// per-message work over, instead of each layer growing a bespoke
// goroutine scheme.
//
// Semantics:
//
//   - Bounded: a Pool never runs more than its configured worker count
//     of tasks concurrently; excess indices queue implicitly.
//   - Context-aware: a canceled context stops the dispatch of new
//     indices and surfaces ctx.Err().
//   - First-error + abort: once any task fails, no index beyond the
//     failing one is started, and the error of the LOWEST failing
//     index is returned — so a batch that contains a bad proof yields
//     the same error at workers=8 as at workers=1, and a pooled
//     verification can never swallow a rejection.
//
// A nil *Pool is valid and runs everything serially on the calling
// goroutine, which lets the crypto layers expose "…Par" variants whose
// nil-pool form is the exact serial code path.
//
// Sizing is owned by the layers above: protocol.MixConfig (surfaced as
// atom.Config.MixWorkers, atomd/atomsim -workers, and
// distributed.Options.Workers) resolves to a per-group pool size, and
// both the in-process mixer and the distributed member actors build
// one pool per group per step so busy time — Pool.Busy, reported
// through StepTrace/IterationStats — stays attributable.
package parallel
