package parallel

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		var hits [100]atomic.Int32
		if err := Each(context.Background(), workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestEachFirstErrorIsLowestIndex(t *testing.T) {
	bad := map[int]bool{7: true, 23: true, 61: true}
	for _, workers := range []int{1, 3, 8} {
		err := Each(nil, workers, 100, func(i int) error {
			if bad[i] {
				return fmt.Errorf("boom at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "boom at 7" {
			t.Fatalf("workers=%d: got %v, want boom at 7", workers, err)
		}
	}
}

func TestEachAbortsAfterError(t *testing.T) {
	var started atomic.Int32
	sentinel := errors.New("stop")
	_ = Each(nil, 2, 10_000, func(i int) error {
		started.Add(1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	// With the dispatch horizon shrunk to 0, only the in-flight tasks
	// (at most one per worker) can have started beyond the failure.
	if n := started.Load(); n > 16 {
		t.Fatalf("%d tasks started after an index-0 failure", n)
	}
}

func TestEachHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Each(ctx, 4, 100, func(i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	order := make([]int, 0, 10)
	if err := p.Each(10, func(i int) error {
		order = append(order, i) // would race under any parallelism
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
	if p.Workers() != 1 || p.Busy() != 0 {
		t.Fatalf("nil pool: workers=%d busy=%v", p.Workers(), p.Busy())
	}
	if err := p.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMapCollectsInOrder(t *testing.T) {
	p := New(context.Background(), 8)
	out, err := Map(p, 50, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := Map(p, 50, func(i int) (int, error) {
		if i >= 10 {
			return 0, fmt.Errorf("bad %d", i)
		}
		return i, nil
	}); err == nil || err.Error() != "bad 10" {
		t.Fatalf("map error: %v", err)
	}
}

func TestBusyAccounting(t *testing.T) {
	p := New(nil, 4)
	if err := p.Each(8, func(int) error { time.Sleep(5 * time.Millisecond); return nil }); err != nil {
		t.Fatal(err)
	}
	if p.Busy() < 30*time.Millisecond {
		t.Fatalf("busy %v, want ≥ ~40ms of task time", p.Busy())
	}
}

type countingReader struct{ n int }

func (c *countingReader) Read(b []byte) (int, error) {
	c.n++
	for i := range b {
		b[i] = byte(i)
	}
	return len(b), nil
}

func TestLockedReader(t *testing.T) {
	cr := &countingReader{}
	lr := LockedReader(cr)
	if err := Each(nil, 8, 64, func(int) error {
		buf := make([]byte, 32)
		_, err := lr.Read(buf)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if cr.n != 64 {
		t.Fatalf("reader saw %d reads, want 64", cr.n)
	}
	if LockedReader(nil) == nil {
		t.Fatal("LockedReader(nil) must fall back to crypto/rand")
	}
	buf := make([]byte, 16)
	if _, err := LockedReader(nil).Read(buf); err != nil || bytes.Equal(buf, make([]byte, 16)) {
		t.Fatalf("crypto/rand fallback read: %v %x", err, buf)
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("auto workers must be ≥ 1")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit workers must pass through")
	}
}
