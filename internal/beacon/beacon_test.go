package beacon

import (
	"bytes"
	"testing"
)

func TestRoundDeterministicAndDistinct(t *testing.T) {
	b1 := New([]byte("seed"))
	b2 := New([]byte("seed"))
	if !bytes.Equal(b1.Round(1), b2.Round(1)) {
		t.Fatal("same seed+round produced different values")
	}
	if bytes.Equal(b1.Round(1), b1.Round(2)) {
		t.Fatal("different rounds produced equal values")
	}
	b3 := New([]byte("other"))
	if bytes.Equal(b1.Round(1), b3.Round(1)) {
		t.Fatal("different seeds produced equal values")
	}
}

func TestStreamDeterministic(t *testing.T) {
	b := New([]byte("seed"))
	s1 := b.Stream(3, "groups")
	s2 := b.Stream(3, "groups")
	buf1 := make([]byte, 100)
	buf2 := make([]byte, 100)
	s1.Read(buf1)
	s2.Read(buf2)
	if !bytes.Equal(buf1, buf2) {
		t.Fatal("streams from identical parameters diverged")
	}
	s3 := b.Stream(3, "topology")
	buf3 := make([]byte, 100)
	s3.Read(buf3)
	if bytes.Equal(buf1, buf3) {
		t.Fatal("different purposes produced equal streams")
	}
}

func TestStreamReadSplitInvariance(t *testing.T) {
	b := New([]byte("seed"))
	whole := make([]byte, 64)
	b.Stream(0, "p").Read(whole)
	split := make([]byte, 64)
	s := b.Stream(0, "p")
	s.Read(split[:7])
	s.Read(split[7:40])
	s.Read(split[40:])
	if !bytes.Equal(whole, split) {
		t.Fatal("reading in pieces differs from reading at once")
	}
}

func TestIntnBoundsAndDistribution(t *testing.T) {
	s := New([]byte("seed")).Stream(0, "intn")
	counts := make([]int, 10)
	const draws = 10000
	for i := 0; i < draws; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	// Loose uniformity check: each bucket within 30% of expectation.
	for i, c := range counts {
		if c < draws/10*7/10 || c > draws/10*13/10 {
			t.Errorf("bucket %d has %d draws, expected ≈%d", i, c, draws/10)
		}
	}
}

func TestIntnPanicsOnBadBound(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) should panic")
		}
	}()
	New([]byte("s")).Stream(0, "p").Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	s := New([]byte("seed")).Stream(0, "perm")
	for _, n := range []int{1, 2, 17, 100} {
		p := s.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("invalid permutation of %d: %v", n, p)
			}
			seen[v] = true
		}
	}
}
