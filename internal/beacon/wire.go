package beacon

import (
	"fmt"

	"atom/internal/wirecodec"
)

// Wire codecs for the beacon chain: ChainInfo (shipped to verifiers and
// persisted with DKG transcripts), Partial (gossiped each round), and
// Round (the chain link — gossiped, served for catchup, journaled in
// internal/store). All use the shared wirecodec framing; versioned so
// the formats can evolve without breaking persisted chains.

const (
	chainInfoVersion = 1
	partialVersion   = 1
	roundVersion     = 1
)

// Marshal encodes the chain description canonically.
func (ci *ChainInfo) Marshal() []byte {
	var e wirecodec.Enc
	e.Byte(chainInfoVersion)
	e.Point(ci.PK)
	e.Points(ci.Commitments)
	e.I(ci.Threshold)
	e.I(ci.Size)
	e.Bytes(ci.GenesisSeed)
	return e.Out()
}

// DecodeChainInfo decodes and validates a chain description.
func DecodeChainInfo(b []byte) (*ChainInfo, error) {
	d := wirecodec.NewDec(b)
	v, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	if v != chainInfoVersion {
		return nil, fmt.Errorf("beacon: chain info version %d unsupported", v)
	}
	ci := &ChainInfo{}
	if ci.PK, err = d.Point(); err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	if ci.Commitments, err = d.Points(); err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	if ci.Threshold, err = d.I(); err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	if ci.Size, err = d.I(); err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	if ci.GenesisSeed, err = d.Bytes(); err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("beacon: chain info: %w", err)
	}
	for _, c := range ci.Commitments {
		if c == nil {
			return nil, fmt.Errorf("beacon: chain info with nil commitment")
		}
	}
	if err := ci.validate(); err != nil {
		return nil, err
	}
	return ci, nil
}

// Marshal encodes one member's round partial.
func (p *Partial) Marshal() []byte {
	var e wirecodec.Enc
	e.Byte(partialVersion)
	e.I(p.Index)
	e.Point(p.V)
	e.Scalar(p.E)
	e.Scalar(p.S)
	return e.Out()
}

// DecodePartial decodes a round partial. Structural checks only; the
// proof itself is checked by VerifyPartial.
func DecodePartial(b []byte) (*Partial, error) {
	d := wirecodec.NewDec(b)
	p, err := decodePartial(d)
	if err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("beacon: partial: %w", err)
	}
	return p, nil
}

func decodePartial(d *wirecodec.Dec) (*Partial, error) {
	v, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("beacon: partial: %w", err)
	}
	if v != partialVersion {
		return nil, fmt.Errorf("beacon: partial version %d unsupported", v)
	}
	p := &Partial{}
	if p.Index, err = d.I(); err != nil {
		return nil, fmt.Errorf("beacon: partial: %w", err)
	}
	if p.V, err = d.Point(); err != nil {
		return nil, fmt.Errorf("beacon: partial: %w", err)
	}
	if p.E, err = d.Scalar(); err != nil {
		return nil, fmt.Errorf("beacon: partial: %w", err)
	}
	if p.S, err = d.Scalar(); err != nil {
		return nil, fmt.Errorf("beacon: partial: %w", err)
	}
	if p.V == nil || p.E == nil || p.S == nil {
		return nil, fmt.Errorf("beacon: partial with absent fields")
	}
	return p, nil
}

// Marshal encodes a full chain link.
func (r *Round) Marshal() []byte {
	var e wirecodec.Enc
	e.Byte(roundVersion)
	e.U64(r.Number)
	e.Bytes(r.Prev)
	e.Bytes(r.Output)
	e.U64(uint64(len(r.Partials)))
	for _, p := range r.Partials {
		e.Bytes(p.Marshal())
	}
	return e.Out()
}

// DecodeRound decodes a chain link. Structural checks only; link and
// proof verification happen in Chain.Append / ChainInfo.VerifyRound.
func DecodeRound(b []byte) (*Round, error) {
	d := wirecodec.NewDec(b)
	v, err := d.Byte()
	if err != nil {
		return nil, fmt.Errorf("beacon: round: %w", err)
	}
	if v != roundVersion {
		return nil, fmt.Errorf("beacon: round version %d unsupported", v)
	}
	r := &Round{}
	if r.Number, err = d.U64(); err != nil {
		return nil, fmt.Errorf("beacon: round: %w", err)
	}
	if r.Prev, err = d.Bytes(); err != nil {
		return nil, fmt.Errorf("beacon: round: %w", err)
	}
	if r.Output, err = d.Bytes(); err != nil {
		return nil, fmt.Errorf("beacon: round: %w", err)
	}
	n, err := d.Count()
	if err != nil {
		return nil, fmt.Errorf("beacon: round: %w", err)
	}
	r.Partials = make([]*Partial, n)
	for i := range r.Partials {
		pb, err := d.Bytes()
		if err != nil {
			return nil, fmt.Errorf("beacon: round: %w", err)
		}
		if r.Partials[i], err = DecodePartial(pb); err != nil {
			return nil, err
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("beacon: round: %w", err)
	}
	return r, nil
}
