package beacon

import (
	"bytes"
	"math/rand"
	"testing"

	"atom/internal/dvss"
)

func wireFixtures(t *testing.T) (*ChainInfo, *Partial, *Round) {
	t.Helper()
	rnd := rand.New(rand.NewSource(9))
	keys, err := dvss.RunDKG(4, 2, rnd)
	if err != nil {
		t.Fatalf("RunDKG: %v", err)
	}
	ci := InfoFromKey(keys[0], []byte("wire-genesis"))
	prev := ci.Genesis()
	p1, err := ci.SignPartial(1, keys[0].Share, 1, prev)
	if err != nil {
		t.Fatalf("SignPartial: %v", err)
	}
	p3, err := ci.SignPartial(3, keys[2].Share, 1, prev)
	if err != nil {
		t.Fatalf("SignPartial: %v", err)
	}
	r, err := ci.Aggregate(1, prev, []*Partial{p1, p3})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	return ci, p1, r
}

func TestWireRoundTrip(t *testing.T) {
	ci, p, r := wireFixtures(t)

	ci2, err := DecodeChainInfo(ci.Marshal())
	if err != nil {
		t.Fatalf("DecodeChainInfo: %v", err)
	}
	if !bytes.Equal(ci2.Marshal(), ci.Marshal()) || !bytes.Equal(ci2.Hash(), ci.Hash()) {
		t.Fatal("ChainInfo re-encode not canonical")
	}

	p2, err := DecodePartial(p.Marshal())
	if err != nil {
		t.Fatalf("DecodePartial: %v", err)
	}
	if !bytes.Equal(p2.Marshal(), p.Marshal()) {
		t.Fatal("Partial re-encode not canonical")
	}
	if err := ci.VerifyPartial(p2, 1, ci.Genesis()); err != nil {
		t.Fatalf("decoded partial fails verification: %v", err)
	}

	r2, err := DecodeRound(r.Marshal())
	if err != nil {
		t.Fatalf("DecodeRound: %v", err)
	}
	if !bytes.Equal(r2.Marshal(), r.Marshal()) {
		t.Fatal("Round re-encode not canonical")
	}
	if err := ci.VerifyRound(r2, ci.Genesis()); err != nil {
		t.Fatalf("decoded round fails verification: %v", err)
	}
}

func TestWireTruncation(t *testing.T) {
	ci, p, r := wireFixtures(t)
	for _, enc := range [][]byte{ci.Marshal(), p.Marshal(), r.Marshal()} {
		for n := 0; n < len(enc); n++ {
			prefix := enc[:n]
			if _, err := DecodeChainInfo(prefix); err == nil && n < len(ci.Marshal()) && bytes.Equal(enc, ci.Marshal()) {
				t.Fatalf("ChainInfo decoded from %d-byte prefix", n)
			}
			DecodePartial(prefix) // must not panic
			DecodeRound(prefix)   // must not panic
		}
	}
	// Trailing garbage is rejected, not silently ignored.
	if _, err := DecodeRound(append(r.Marshal(), 0)); err == nil {
		t.Fatal("Round decoded with trailing bytes")
	}
	if _, err := DecodePartial(append(p.Marshal(), 0)); err == nil {
		t.Fatal("Partial decoded with trailing bytes")
	}
	if _, err := DecodeChainInfo(append(ci.Marshal(), 0)); err == nil {
		t.Fatal("ChainInfo decoded with trailing bytes")
	}
}

// FuzzBeaconWire feeds arbitrary bytes to every beacon decoder — each
// must fail cleanly, never panic or over-read — and checks canonical
// re-encode for inputs that do decode.
func FuzzBeaconWire(f *testing.F) {
	rnd := rand.New(rand.NewSource(9))
	keys, err := dvss.RunDKG(4, 2, rnd)
	if err != nil {
		f.Fatalf("RunDKG: %v", err)
	}
	ci := InfoFromKey(keys[0], []byte("wire-genesis"))
	prev := ci.Genesis()
	p1, _ := ci.SignPartial(1, keys[0].Share, 1, prev)
	p3, _ := ci.SignPartial(3, keys[2].Share, 1, prev)
	r, _ := ci.Aggregate(1, prev, []*Partial{p1, p3})
	f.Add(ci.Marshal())
	f.Add(p1.Marshal())
	f.Add(r.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Decoders must fail cleanly; successful decodes must re-encode
		// to a stable canonical form (non-minimal varints and unreduced
		// scalars normalize on the first re-encode).
		if ci, err := DecodeChainInfo(data); err == nil {
			enc := ci.Marshal()
			ci2, err := DecodeChainInfo(enc)
			if err != nil || !bytes.Equal(ci2.Marshal(), enc) {
				t.Fatalf("ChainInfo re-encode unstable (%v) for input %x", err, data)
			}
		}
		if p, err := DecodePartial(data); err == nil {
			enc := p.Marshal()
			p2, err := DecodePartial(enc)
			if err != nil || !bytes.Equal(p2.Marshal(), enc) {
				t.Fatalf("Partial re-encode unstable (%v) for input %x", err, data)
			}
		}
		if r, err := DecodeRound(data); err == nil {
			enc := r.Marshal()
			r2, err := DecodeRound(enc)
			if err != nil || !bytes.Equal(r2.Marshal(), enc) {
				t.Fatalf("Round re-encode unstable (%v) for input %x", err, data)
			}
		}
	})
}
