package beacon

import (
	"bytes"
	"crypto/sha3"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"atom/internal/dvss"
	"atom/internal/ecc"
)

// This file is the chained, publicly-verifiable randomness beacon: a
// threshold VRF in the DLEQ (Chaum–Pedersen) model, since P-256 has no
// pairing to aggregate BLS partials under. Each round r commits to the
// previous round's output:
//
//	M_r = HashToPoint(chainHash ‖ r ‖ prevOutput)
//	V_i = s_i·M_r                     (member i's partial, s_i its DKG share)
//	S   = Σ λ_i·V_i = x·M_r           (any t partials; x the never-assembled group secret)
//	Output_r = SHA3(r ‖ S)
//
// A partial carries a DLEQ proof that log_g(g^{s_i}) = log_{M_r}(V_i),
// where g^{s_i} is computable by anyone from the public Feldman
// commitments — so a Round (the t partials plus the combined output) is
// verifiable by any holder of the ChainInfo, no member trust required.
// Unpredictability: producing Output_r requires t shares; bias
// resistance: the value is a deterministic function of the key and the
// chain prefix, so no member can grind it.

// Typed chain errors. ErrBadLink and ErrBadRound both match ErrChain.
var (
	// ErrChain is the parent of every chain verification failure.
	ErrChain = errors.New("beacon: chain verification failed")
	// ErrBadLink marks a round whose Prev does not equal the chain
	// head's output, or whose number is not head+1 — a fork or a gap.
	ErrBadLink = fmt.Errorf("%w: bad link", ErrChain)
	// ErrBadRound marks a round whose partials or combined output fail
	// cryptographic verification.
	ErrBadRound = fmt.Errorf("%w: bad round", ErrChain)
)

// ChainInfo is the public description of a beacon chain: the
// DKG-generated group key material partial signatures verify against,
// and the genesis seed. Everyone holding it can verify any chain prefix.
type ChainInfo struct {
	PK          *ecc.Point
	Commitments []*ecc.Point // aggregated Feldman commitments, length = Threshold
	Threshold   int
	Size        int
	GenesisSeed []byte
}

// InfoFromKey builds the chain description from one member's DKG result
// — the public half only, identical for every member of the group.
func InfoFromKey(key *dvss.GroupKey, genesisSeed []byte) *ChainInfo {
	return &ChainInfo{
		PK:          key.PK,
		Commitments: key.Commitments,
		Threshold:   key.Threshold,
		Size:        key.Size,
		GenesisSeed: append([]byte(nil), genesisSeed...),
	}
}

// Hash returns the canonical SHA3-256 hash of the chain description.
// It pins every round's message derivation to this exact group key and
// genesis, so two chains under different keys can never share a link.
func (ci *ChainInfo) Hash() []byte {
	h := sha3.New256()
	h.Write([]byte("atom/beacon-chain/v1"))
	h.Write(ci.PK.Bytes())
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(ci.Threshold))
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(ci.Size))
	h.Write(n[:])
	for _, c := range ci.Commitments {
		h.Write(c.Bytes())
	}
	h.Write(ci.GenesisSeed)
	return h.Sum(nil)
}

// validate rejects malformed chain descriptions.
func (ci *ChainInfo) validate() error {
	switch {
	case ci == nil:
		return errors.New("beacon: nil chain info")
	case ci.PK == nil || ci.PK.IsIdentity():
		return errors.New("beacon: chain info without group key")
	case ci.Threshold < 1 || ci.Threshold > ci.Size:
		return fmt.Errorf("beacon: chain threshold %d of %d", ci.Threshold, ci.Size)
	case len(ci.Commitments) != ci.Threshold:
		return fmt.Errorf("beacon: %d commitments for threshold %d", len(ci.Commitments), ci.Threshold)
	}
	return nil
}

// Genesis returns the chain's round-0 output: a pure function of the
// chain description, so every member starts from the same head.
func (ci *ChainInfo) Genesis() []byte {
	h := sha3.New256()
	h.Write([]byte("atom/beacon-genesis/v1"))
	h.Write(ci.Hash())
	return h.Sum(nil)
}

// message derives the group element round number signs over.
func (ci *ChainInfo) message(number uint64, prev []byte) *ecc.Point {
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], number)
	return ecc.HashToPoint([]byte("atom/beacon-msg/v1"), ci.Hash(), n[:], prev)
}

// Partial is one member's contribution to a beacon round: V = s_i·M
// plus a Chaum–Pedersen DLEQ proof binding V to the member's public
// share image g^{s_i} (derivable from the Feldman commitments), so a
// partial is verifiable without any secret.
type Partial struct {
	Index int
	V     *ecc.Point
	E, S  *ecc.Scalar
}

// dleqTag domain-separates the proof transcript.
var dleqTag = []byte("atom/beacon-dleq/v1")

// SignPartial produces member index's partial for the given round. The
// proof nonce is derived deterministically from the share and message
// (RFC 6979 style), so signing is reproducible and needs no entropy —
// a crashed-and-restarted member re-emits the identical partial.
func (ci *ChainInfo) SignPartial(index int, share *ecc.Scalar, number uint64, prev []byte) (*Partial, error) {
	if index < 1 || index > ci.Size {
		return nil, fmt.Errorf("beacon: partial index %d out of range", index)
	}
	if share == nil {
		return nil, errors.New("beacon: nil share")
	}
	m := ci.message(number, prev)
	v := m.Mul(share)
	pub := dvss.ShareCommitment(ci.Commitments, index)
	k := ecc.HashToScalar([]byte("atom/beacon-nonce/v1"), share.Bytes(), m.Bytes())
	if k.IsZero() {
		return nil, errors.New("beacon: degenerate nonce")
	}
	a1 := ecc.BaseMul(k)
	a2 := m.Mul(k)
	e := ecc.HashToScalar(dleqTag, ci.Hash(), pub.Bytes(), m.Bytes(), v.Bytes(), a1.Bytes(), a2.Bytes())
	s := k.Sub(e.Mul(share))
	return &Partial{Index: index, V: v, E: e, S: s}, nil
}

// VerifyPartial checks one partial against the chain's public key
// material for the given round.
func (ci *ChainInfo) VerifyPartial(p *Partial, number uint64, prev []byte) error {
	if p == nil || p.V == nil || p.E == nil || p.S == nil {
		return fmt.Errorf("%w: malformed partial", ErrBadRound)
	}
	if p.Index < 1 || p.Index > ci.Size {
		return fmt.Errorf("%w: partial index %d out of range", ErrBadRound, p.Index)
	}
	m := ci.message(number, prev)
	pub := dvss.ShareCommitment(ci.Commitments, p.Index)
	// A1 = g^s·pub^e, A2 = M^s·V^e; the proof is valid iff the challenge
	// recomputes.
	a1 := ecc.BaseMul(p.S).Add(pub.Mul(p.E))
	a2 := m.Mul(p.S).Add(p.V.Mul(p.E))
	e := ecc.HashToScalar(dleqTag, ci.Hash(), pub.Bytes(), m.Bytes(), p.V.Bytes(), a1.Bytes(), a2.Bytes())
	if !e.Equal(p.E) {
		return fmt.Errorf("%w: partial %d DLEQ proof rejected", ErrBadRound, p.Index)
	}
	return nil
}

// Round is one verified link of the beacon chain: the threshold set of
// partials that produced it, the previous round's output it commits to,
// and the combined output. Everything needed to verify it against a
// ChainInfo travels with it.
type Round struct {
	Number   uint64
	Prev     []byte
	Partials []*Partial
	Output   []byte
}

// outputOf hashes the combined VRF point into the round's 32-byte value.
func outputOf(number uint64, combined *ecc.Point) []byte {
	h := sha3.New256()
	h.Write([]byte("atom/beacon-out/v1"))
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], number)
	h.Write(n[:])
	h.Write(combined.Bytes())
	return h.Sum(nil)
}

// combine Lagrange-interpolates the group VRF point from the partials'
// indices. Callers have already verified the partials.
func combine(partials []*Partial) (*ecc.Point, error) {
	subset := make([]int, len(partials))
	for i, p := range partials {
		subset[i] = p.Index
	}
	lambdas := make([]*ecc.Scalar, len(partials))
	points := make([]*ecc.Point, len(partials))
	for i, p := range partials {
		l, err := dvss.LagrangeCoeff(subset, p.Index)
		if err != nil {
			return nil, err
		}
		lambdas[i] = l
		points[i] = p.V
	}
	return ecc.MultiScalarMul(lambdas, points), nil
}

// Aggregate verifies the supplied partials for round number and combines
// exactly Threshold of them (lowest indices win) into a Round. Invalid
// or duplicate partials are skipped; fewer than Threshold valid ones is
// an ErrBadRound.
func (ci *ChainInfo) Aggregate(number uint64, prev []byte, partials []*Partial) (*Round, error) {
	if err := ci.validate(); err != nil {
		return nil, err
	}
	seen := make(map[int]bool, len(partials))
	valid := make([]*Partial, 0, ci.Threshold)
	for _, p := range partials {
		if p == nil || seen[p.Index] {
			continue
		}
		if err := ci.VerifyPartial(p, number, prev); err != nil {
			continue
		}
		seen[p.Index] = true
		valid = append(valid, p)
	}
	if len(valid) < ci.Threshold {
		return nil, fmt.Errorf("%w: %d valid partials for threshold %d", ErrBadRound, len(valid), ci.Threshold)
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i].Index < valid[j].Index })
	valid = valid[:ci.Threshold]
	combined, err := combine(valid)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRound, err)
	}
	return &Round{
		Number:   number,
		Prev:     append([]byte(nil), prev...),
		Partials: valid,
		Output:   outputOf(number, combined),
	}, nil
}

// VerifyRound checks a round end to end against the chain description
// and the previous output it must link to: the link, every partial's
// DLEQ proof, the threshold count, and the combined output.
func (ci *ChainInfo) VerifyRound(r *Round, prev []byte) error {
	if r == nil {
		return fmt.Errorf("%w: nil round", ErrBadRound)
	}
	if err := ci.validate(); err != nil {
		return err
	}
	if !bytes.Equal(r.Prev, prev) {
		return fmt.Errorf("%w: round %d does not commit to the expected previous output", ErrBadLink, r.Number)
	}
	if len(r.Partials) != ci.Threshold {
		return fmt.Errorf("%w: round %d has %d partials, threshold is %d", ErrBadRound, r.Number, len(r.Partials), ci.Threshold)
	}
	seen := make(map[int]bool, len(r.Partials))
	for _, p := range r.Partials {
		if err := ci.VerifyPartial(p, r.Number, prev); err != nil {
			return err
		}
		if seen[p.Index] {
			return fmt.Errorf("%w: round %d repeats partial index %d", ErrBadRound, r.Number, p.Index)
		}
		seen[p.Index] = true
	}
	combined, err := combine(r.Partials)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrBadRound, err)
	}
	if !bytes.Equal(r.Output, outputOf(r.Number, combined)) {
		return fmt.Errorf("%w: round %d output does not match its partials", ErrBadRound, r.Number)
	}
	return nil
}

// Chain is one participant's verified view of the beacon: the chain
// description plus every accepted round up to the head. Appends verify
// the full link (chain position, previous-output commitment, partials,
// combined output) before the head advances, so a Chain can never hold
// an unverified value. It implements Source: Round(n) returns the
// output of an accepted round (or the genesis value for n = 0) and nil
// for rounds not yet reached — retaining the window most recent rounds'
// full records for catchup serving.
type Chain struct {
	mu      sync.Mutex
	info    *ChainInfo
	head    *Round // nil until the first append
	outputs map[uint64][]byte
	rounds  map[uint64]*Round
	window  int

	// onAppend, when set, observes every accepted round — the
	// persistence hook (the daemon journals the marshaled round).
	onAppend func(*Round)
}

// DefaultWindow is how many full round records a chain retains for
// serving catchup; outputs are retained for the same window.
const DefaultWindow = 512

// NewChain starts an empty verified chain at the genesis head.
func NewChain(info *ChainInfo) (*Chain, error) {
	if err := info.validate(); err != nil {
		return nil, err
	}
	c := &Chain{
		info:    info,
		outputs: map[uint64][]byte{0: info.Genesis()},
		rounds:  make(map[uint64]*Round),
		window:  DefaultWindow,
	}
	return c, nil
}

// Info returns the chain's public description.
func (c *Chain) Info() *ChainInfo { return c.info }

// OnAppend installs the accepted-round observer (nil disables). The
// callback fires synchronously under the chain lock, in round order.
func (c *Chain) OnAppend(fn func(*Round)) {
	c.mu.Lock()
	c.onAppend = fn
	c.mu.Unlock()
}

// Head returns the latest accepted round number and its output; round 0
// and the genesis value before any append.
func (c *Chain) Head() (uint64, []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.head == nil {
		return 0, append([]byte(nil), c.info.Genesis()...)
	}
	return c.head.Number, append([]byte(nil), c.head.Output...)
}

// HeadRound returns the latest accepted round record (nil at genesis).
func (c *Chain) HeadRound() *Round {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.head
}

// Round implements Source: the output of an accepted round, nil when
// the chain has not reached it (or it fell out of the retained window).
func (c *Chain) Round(n uint64) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, ok := c.outputs[n]
	if !ok {
		return nil
	}
	return append([]byte(nil), out...)
}

// Record returns the full retained record of round n for catchup
// serving (nil if outside the window).
func (c *Chain) Record(n uint64) *Round {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rounds[n]
}

// Append verifies r as the next link and advances the head. Out-of-order
// or forked rounds fail with ErrBadLink; cryptographically invalid ones
// with ErrBadRound; neither moves the head.
func (c *Chain) Append(r *Round) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r == nil {
		return fmt.Errorf("%w: nil round", ErrBadRound)
	}
	headNum := uint64(0)
	headOut := c.info.Genesis()
	if c.head != nil {
		headNum, headOut = c.head.Number, c.head.Output
	}
	if r.Number != headNum+1 {
		return fmt.Errorf("%w: round %d appended at head %d", ErrBadLink, r.Number, headNum)
	}
	if err := c.info.VerifyRound(r, headOut); err != nil {
		return err
	}
	c.head = r
	c.outputs[r.Number] = r.Output
	c.rounds[r.Number] = r
	if r.Number > uint64(c.window) {
		evict := r.Number - uint64(c.window)
		delete(c.rounds, evict)
		if evict > 0 { // never evict the genesis output
			delete(c.outputs, evict)
		}
	}
	if c.onAppend != nil {
		c.onAppend(r)
	}
	return nil
}

// Catchup appends a batch of consecutive rounds fetched from a peer,
// verifying every link, and reports how many were accepted. Rounds at
// or below the current head are skipped (idempotent re-sync); the first
// bad link or bad round stops the batch with that error, keeping
// everything accepted before it.
func (c *Chain) Catchup(rounds []*Round) (int, error) {
	accepted := 0
	for _, r := range rounds {
		head, _ := c.Head()
		if r != nil && r.Number <= head {
			continue
		}
		if err := c.Append(r); err != nil {
			return accepted, err
		}
		accepted++
	}
	return accepted, nil
}

// SyncFrom pulls rounds from a peer until the chain reaches target.
// fetch(from) returns the peer's retained records strictly after round
// `from`, in order (empty = peer has nothing newer). Every fetched
// round is verified before it lands; a lying peer surfaces as
// ErrChain, never as silent acceptance.
func (c *Chain) SyncFrom(fetch func(after uint64) ([]*Round, error), target uint64) error {
	for {
		head, _ := c.Head()
		if head >= target {
			return nil
		}
		batch, err := fetch(head)
		if err != nil {
			return fmt.Errorf("beacon: catchup fetch after %d: %w", head, err)
		}
		if len(batch) == 0 {
			return fmt.Errorf("%w: peer has no rounds past %d (target %d)", ErrChain, head, target)
		}
		if _, err := c.Catchup(batch); err != nil {
			return err
		}
	}
}

// Records returns the retained full records strictly after round
// `after`, in order — the serving side of SyncFrom.
func (c *Chain) Records(after uint64) []*Round {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*Round
	headNum := uint64(0)
	if c.head != nil {
		headNum = c.head.Number
	}
	for n := after + 1; n <= headNum; n++ {
		r, ok := c.rounds[n]
		if !ok {
			break // fell out of the window; caller must restart from a snapshot
		}
		out = append(out, r)
	}
	return out
}
