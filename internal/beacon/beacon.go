// Package beacon provides the public unbiased randomness source Atom
// needs to form anytrust groups (paper §4.1, citing Bitcoin beacons [14]
// and RandHound/RandHerd [68]).
//
// Two implementations of the Source contract live here:
//
//   - Beacon, a deterministic SHA3 hash chain over an agreed seed:
//     Round(i) is computable by every participant and unbiasable by any
//     single party once the seed is committed. Deployments feed the seed
//     from an external beacon or from a Chain output.
//   - Chain, a drand-style chained, publicly-verifiable threshold
//     randomness beacon (chain.go): each round's value is a threshold
//     VRF over the previous round's output under a DKG-generated group
//     key, carried with Chaum–Pedersen DLEQ proofs so anyone holding
//     the ChainInfo can verify every link without trusting any member.
//
// The package also exposes a deterministic io.Reader (an expandable
// output stream) for seeded sampling.
package beacon

import (
	"crypto/sha3"
	"encoding/binary"
)

// Source is the per-round public randomness contract consumers sample
// from (group formation, trap derivation): any implementation whose
// Round values all participants agree on. Round returns the 32-byte
// value for the given round, or nil when the source has not (yet)
// produced that round — callers must treat nil as "not available", not
// as randomness.
type Source interface {
	Round(round uint64) []byte
}

// StreamFrom returns the deterministic expandable stream derived from a
// beacon round value and a purpose label. Distinct purposes yield
// independent streams; every Source shares this derivation, so a value
// obtained from a verifiable Chain seeds exactly the same sampling as
// the hash-chain Beacon.
func StreamFrom(value []byte, purpose string) *Stream {
	h := sha3.New256()
	h.Write(value)
	h.Write([]byte(purpose))
	return &Stream{state: h.Sum(nil)}
}

// Beacon is a deterministic per-round randomness source.
type Beacon struct {
	seed []byte
}

// New creates a beacon from an agreed seed.
func New(seed []byte) *Beacon {
	cp := append([]byte(nil), seed...)
	return &Beacon{seed: cp}
}

// Round returns the 32-byte beacon value for the given protocol round.
func (b *Beacon) Round(round uint64) []byte {
	h := sha3.New256()
	h.Write([]byte("atom/beacon/v1"))
	h.Write(b.seed)
	var r [8]byte
	binary.BigEndian.PutUint64(r[:], round)
	h.Write(r[:])
	return h.Sum(nil)
}

// Stream returns a deterministic random stream for the given round and
// purpose label, suitable for seeded sampling (group formation, topology
// assignment). Distinct purposes yield independent streams.
func (b *Beacon) Stream(round uint64, purpose string) *Stream {
	return StreamFrom(b.Round(round), purpose)
}

// Stream is a deterministic expandable output stream implementing
// io.Reader via counter-mode SHA3.
type Stream struct {
	state   []byte
	counter uint64
	buf     []byte
}

// Read fills p with deterministic pseudorandom bytes.
func (s *Stream) Read(p []byte) (int, error) {
	n := 0
	for n < len(p) {
		if len(s.buf) == 0 {
			h := sha3.New256()
			h.Write(s.state)
			var c [8]byte
			binary.BigEndian.PutUint64(c[:], s.counter)
			h.Write(c[:])
			s.counter++
			s.buf = h.Sum(nil)
		}
		copied := copy(p[n:], s.buf)
		s.buf = s.buf[copied:]
		n += copied
	}
	return n, nil
}

// Intn returns a deterministic uniform value in [0, n) by rejection
// sampling from the stream. It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("beacon: Intn with non-positive bound")
	}
	max := uint64(n)
	// Rejection bound: largest multiple of max that fits in 64 bits.
	limit := (^uint64(0) / max) * max
	var b [8]byte
	for {
		if _, err := s.Read(b[:]); err != nil {
			panic("beacon: stream read cannot fail: " + err.Error())
		}
		v := binary.BigEndian.Uint64(b[:])
		if v < limit {
			return int(v % max)
		}
	}
}

// Perm returns a deterministic uniform permutation of [0, n).
func (s *Stream) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
