package beacon

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"atom/internal/dvss"
	"atom/internal/ecc"
)

// testChain builds a (t, n) threshold key via the in-process DKG and
// returns the chain description plus every member's share.
func testChain(t *testing.T, threshold, n int) (*ChainInfo, []*ecc.Scalar) {
	t.Helper()
	rnd := rand.New(rand.NewSource(42))
	keys, err := dvss.RunDKG(n, threshold, rnd)
	if err != nil {
		t.Fatalf("RunDKG: %v", err)
	}
	shares := make([]*ecc.Scalar, n)
	for i, k := range keys {
		shares[i] = k.Share
	}
	return InfoFromKey(keys[0], []byte("test-genesis")), shares
}

// produceRound signs partials with the given member indices (1-based)
// and aggregates them into the next round after prev.
func produceRound(t *testing.T, ci *ChainInfo, shares []*ecc.Scalar, number uint64, prev []byte, members []int) *Round {
	t.Helper()
	var partials []*Partial
	for _, i := range members {
		p, err := ci.SignPartial(i, shares[i-1], number, prev)
		if err != nil {
			t.Fatalf("SignPartial(%d): %v", i, err)
		}
		partials = append(partials, p)
	}
	r, err := ci.Aggregate(number, prev, partials)
	if err != nil {
		t.Fatalf("Aggregate round %d: %v", number, err)
	}
	return r
}

// extend appends n freshly produced rounds to the chain.
func extend(t *testing.T, c *Chain, shares []*ecc.Scalar, n int, members []int) {
	t.Helper()
	for i := 0; i < n; i++ {
		head, prev := c.Head()
		r := produceRound(t, c.Info(), shares, head+1, prev, members)
		if err := c.Append(r); err != nil {
			t.Fatalf("Append round %d: %v", head+1, err)
		}
	}
}

func TestChainAppendAndVerify(t *testing.T) {
	ci, shares := testChain(t, 3, 5)
	c, err := NewChain(ci)
	if err != nil {
		t.Fatalf("NewChain: %v", err)
	}
	head, out := c.Head()
	if head != 0 || !bytes.Equal(out, ci.Genesis()) {
		t.Fatalf("fresh chain head = (%d, %x), want genesis", head, out)
	}
	extend(t, c, shares, 5, []int{1, 2, 3})
	head, _ = c.Head()
	if head != 5 {
		t.Fatalf("head = %d after 5 appends", head)
	}
	// Any threshold subset must produce the identical output for the
	// next round — the value is a function of the key, not the subset.
	head, prev := c.Head()
	r1 := produceRound(t, ci, shares, head+1, prev, []int{1, 2, 3})
	r2 := produceRound(t, ci, shares, head+1, prev, []int{2, 4, 5})
	if !bytes.Equal(r1.Output, r2.Output) {
		t.Fatal("different threshold subsets produced different beacon outputs")
	}
	// Oversupplied partials: aggregate takes exactly threshold.
	r3 := produceRound(t, ci, shares, head+1, prev, []int{1, 2, 3, 4, 5})
	if !bytes.Equal(r3.Output, r1.Output) {
		t.Fatal("oversupplied aggregation changed the output")
	}
	if len(r3.Partials) != ci.Threshold {
		t.Fatalf("aggregate kept %d partials, want threshold %d", len(r3.Partials), ci.Threshold)
	}
}

func TestChainRejectsForksGapsAndForgeries(t *testing.T) {
	ci, shares := testChain(t, 3, 5)
	c, _ := NewChain(ci)
	extend(t, c, shares, 3, []int{1, 2, 3})
	head, prev := c.Head()

	// A round linking to a stale output (fork) is rejected.
	staleRound := c.Record(2)
	fork := produceRound(t, ci, shares, head+1, staleRound.Prev, []int{1, 2, 3})
	if err := c.Append(fork); !errors.Is(err, ErrBadLink) {
		t.Fatalf("fork append: %v, want ErrBadLink", err)
	}
	// A gap (skipping a round number) is rejected.
	gap := produceRound(t, ci, shares, head+2, prev, []int{1, 2, 3})
	if err := c.Append(gap); !errors.Is(err, ErrBadLink) {
		t.Fatalf("gap append: %v, want ErrBadLink", err)
	}
	// A replay at or below the head is rejected.
	if err := c.Append(c.Record(head)); !errors.Is(err, ErrBadLink) {
		t.Fatal("replay of the head round accepted")
	}

	good := produceRound(t, ci, shares, head+1, prev, []int{1, 2, 3})
	// Tampered output.
	bad := *good
	bad.Output = append([]byte(nil), good.Output...)
	bad.Output[0] ^= 1
	if err := c.Append(&bad); !errors.Is(err, ErrBadRound) {
		t.Fatalf("tampered output: %v, want ErrBadRound", err)
	}
	// Forged partial: valid DLEQ under the wrong share.
	wrong, err := ci.SignPartial(1, shares[1], head+1, prev) // member 1 claiming with member 2's share
	if err != nil {
		t.Fatalf("SignPartial: %v", err)
	}
	forged := *good
	forged.Partials = append([]*Partial{wrong}, good.Partials[1:]...)
	if err := c.Append(&forged); !errors.Is(err, ErrBadRound) {
		t.Fatalf("forged partial: %v, want ErrBadRound", err)
	}
	// Duplicate partial indices.
	dup := *good
	dup.Partials = []*Partial{good.Partials[0], good.Partials[0], good.Partials[1]}
	if err := c.Append(&dup); !errors.Is(err, ErrBadRound) {
		t.Fatalf("duplicate partials: %v, want ErrBadRound", err)
	}
	// Sub-threshold partial count.
	short := *good
	short.Partials = good.Partials[:ci.Threshold-1]
	if err := c.Append(&short); !errors.Is(err, ErrBadRound) {
		t.Fatalf("sub-threshold round: %v, want ErrBadRound", err)
	}
	// None of the rejections moved the head.
	if h, _ := c.Head(); h != head {
		t.Fatalf("head moved to %d after rejected appends", h)
	}
	// The untampered round still lands.
	if err := c.Append(good); err != nil {
		t.Fatalf("good append after rejections: %v", err)
	}
}

func TestChainAggregateSkipsInvalidPartials(t *testing.T) {
	ci, shares := testChain(t, 3, 5)
	prev := ci.Genesis()
	good1, _ := ci.SignPartial(1, shares[0], 1, prev)
	good2, _ := ci.SignPartial(2, shares[1], 1, prev)
	good3, _ := ci.SignPartial(3, shares[2], 1, prev)
	junk, _ := ci.SignPartial(4, shares[0], 1, prev) // wrong share → invalid proof
	r, err := ci.Aggregate(1, prev, []*Partial{junk, good1, good2, good1, good3})
	if err != nil {
		t.Fatalf("Aggregate with junk mixed in: %v", err)
	}
	if err := ci.VerifyRound(r, prev); err != nil {
		t.Fatalf("VerifyRound: %v", err)
	}
	// Too few valid partials is a typed failure.
	if _, err := ci.Aggregate(1, prev, []*Partial{junk, good1, good2}); !errors.Is(err, ErrBadRound) {
		t.Fatalf("sub-threshold aggregate: %v, want ErrBadRound", err)
	}
}

func TestChainCatchup(t *testing.T) {
	ci, shares := testChain(t, 3, 5)
	ahead, _ := NewChain(ci)
	extend(t, ahead, shares, 20, []int{1, 2, 3})

	// A laggard N=20 rounds behind syncs purely from the peer's records.
	behind, _ := NewChain(ci)
	if err := behind.SyncFrom(func(after uint64) ([]*Round, error) {
		return ahead.Records(after), nil
	}, 20); err != nil {
		t.Fatalf("SyncFrom: %v", err)
	}
	bh, bo := behind.Head()
	ah, ao := ahead.Head()
	if bh != ah || !bytes.Equal(bo, ao) {
		t.Fatalf("catchup head (%d, %x) != source head (%d, %x)", bh, bo, ah, ao)
	}

	// Catchup is idempotent: replaying already-held rounds is a no-op.
	n, err := behind.Catchup(ahead.Records(10))
	if err != nil || n != 0 {
		t.Fatalf("idempotent catchup accepted %d rounds (%v)", n, err)
	}

	// A lying peer (tampered round mid-batch) surfaces as a typed error
	// and the laggard keeps only the verified prefix.
	liar, _ := NewChain(ci)
	batch := ahead.Records(0)
	tampered := *batch[5]
	tampered.Output = append([]byte(nil), batch[5].Output...)
	tampered.Output[0] ^= 1
	batch[5] = &tampered
	accepted, err := liar.Catchup(batch)
	if !errors.Is(err, ErrChain) {
		t.Fatalf("tampered catchup: %v, want ErrChain", err)
	}
	if accepted != 5 {
		t.Fatalf("accepted %d rounds before the tampered one, want 5", accepted)
	}
	if h, _ := liar.Head(); h != 5 {
		t.Fatalf("liar-fed head = %d, want 5", h)
	}
	// A peer with nothing newer than the laggard's head is also typed.
	stuck, _ := NewChain(ci)
	if err := stuck.SyncFrom(func(after uint64) ([]*Round, error) { return nil, nil }, 3); !errors.Is(err, ErrChain) {
		t.Fatalf("empty-peer sync: %v, want ErrChain", err)
	}
}

func TestChainWindowEviction(t *testing.T) {
	ci, shares := testChain(t, 2, 3)
	c, _ := NewChain(ci)
	c.window = 4
	extend(t, c, shares, 10, []int{1, 2})
	if c.Record(3) != nil {
		t.Fatal("round 3 record not evicted from a window of 4")
	}
	if c.Record(7) == nil || c.Round(7) == nil {
		t.Fatal("round 7 inside the window was evicted")
	}
	if c.Round(0) == nil {
		t.Fatal("genesis output evicted")
	}
	// A laggard whose head predates the window gets nothing (a gapped
	// batch could never link); one inside the window gets the tail.
	if got := len(c.Records(0)); got != 0 {
		t.Fatalf("Records(0) returned %d rounds despite the gap, want 0", got)
	}
	if got := len(c.Records(6)); got != 4 {
		t.Fatalf("Records(6) returned %d rounds, want the 4-round tail", got)
	}
}

func TestChainDeterministicSigning(t *testing.T) {
	ci, shares := testChain(t, 2, 3)
	prev := ci.Genesis()
	p1, err := ci.SignPartial(1, shares[0], 1, prev)
	if err != nil {
		t.Fatalf("SignPartial: %v", err)
	}
	p2, _ := ci.SignPartial(1, shares[0], 1, prev)
	if !bytes.Equal(p1.Marshal(), p2.Marshal()) {
		t.Fatal("partial signing is not deterministic")
	}
}

func TestChainImplementsSource(t *testing.T) {
	ci, shares := testChain(t, 2, 3)
	c, _ := NewChain(ci)
	var src Source = c
	if out := src.Round(1); out != nil {
		t.Fatalf("unreached round returned %x, want nil", out)
	}
	extend(t, c, shares, 2, []int{1, 3})
	if out := src.Round(2); out == nil {
		t.Fatal("reached round returned nil")
	}
	// The Source value feeds the same stream derivation as the hash
	// chain beacon: StreamFrom is shared.
	s1 := StreamFrom(src.Round(1), "group-formation")
	s2 := StreamFrom(c.Round(1), "group-formation")
	if s1.Intn(1<<30) != s2.Intn(1<<30) {
		t.Fatal("StreamFrom not deterministic over a chain output")
	}
}

func TestChainOnAppendObserver(t *testing.T) {
	ci, shares := testChain(t, 2, 3)
	c, _ := NewChain(ci)
	var seen []uint64
	c.OnAppend(func(r *Round) { seen = append(seen, r.Number) })
	extend(t, c, shares, 3, []int{1, 2})
	if fmt.Sprint(seen) != "[1 2 3]" {
		t.Fatalf("observer saw %v, want [1 2 3]", seen)
	}
}

func TestChainInfoMismatchedKeysDisagree(t *testing.T) {
	ci1, shares := testChain(t, 2, 3)
	// A second, independent key: chains cannot share links.
	rnd := rand.New(rand.NewSource(7))
	keys, err := dvss.RunDKG(3, 2, rnd)
	if err != nil {
		t.Fatalf("RunDKG: %v", err)
	}
	ci2 := InfoFromKey(keys[0], []byte("test-genesis"))
	if bytes.Equal(ci1.Hash(), ci2.Hash()) {
		t.Fatal("independent chain infos hash equal")
	}
	c2, _ := NewChain(ci2)
	r := produceRound(t, ci1, shares, 1, ci1.Genesis(), []int{1, 2})
	if err := c2.Append(r); err == nil {
		t.Fatal("chain accepted a round produced under a different key")
	}
}
