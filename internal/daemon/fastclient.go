package daemon

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// FastClient speaks the daemon's binary fast path: thousands of logical
// clients multiplex one TCP connection, submits are pipelined without
// per-message round trips, and verdicts arrive asynchronously through
// per-submission callbacks as the server's coalesced ack frames land.
// All methods are safe for concurrent use.
type FastClient struct {
	conn net.Conn

	// wmu guards the write side: the pending submit frame under
	// construction and the socket itself.
	wmu     sync.Mutex
	entries []byte
	count   int
	werr    error

	// pmu guards the callback table.
	pmu     sync.Mutex
	pending map[uint64]func(round uint64, err error)
	seq     uint64
	closed  bool

	// info serializes ServeInfo round trips over the shared connection.
	infoMu sync.Mutex
	infoCh chan *RoundInfo

	stop     chan struct{}
	stopOnce sync.Once
}

// flushBytes is the pending-frame size that triggers an inline flush;
// below it the background flusher (or an explicit Flush) sends the
// stragglers.
const flushBytes = 32 << 10

// DialFast connects to a daemon's fast-path listener (Info.SubmitAddr).
func DialFast(addr string) (*FastClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	fc := &FastClient{
		conn:    conn,
		pending: make(map[uint64]func(uint64, error)),
		infoCh:  make(chan *RoundInfo, 1),
		stop:    make(chan struct{}),
	}
	if err := fc.writeFrame(append([]byte{fpTypeHello}, fpMagic...)); err != nil {
		_ = conn.Close()
		return nil, err
	}
	go fc.readLoop()
	go fc.flushLoop()
	return fc, nil
}

// Submit pipelines one wire-encoded submission for the given logical
// user into the given round (0 = whichever round is open). done fires
// exactly once — with the admitting round, or with the same typed error
// the gob SubmitInto surface returns — from the client's reader
// goroutine, so keep it cheap. Submissions buffer until flushBytes
// accumulate, the background flusher fires, or Flush is called.
func (fc *FastClient) Submit(round uint64, user int, wire []byte, done func(round uint64, err error)) {
	fc.pmu.Lock()
	if fc.closed {
		fc.pmu.Unlock()
		done(0, fmt.Errorf("daemon: fast path connection closed"))
		return
	}
	fc.seq++
	seq := fc.seq
	fc.pending[seq] = done
	fc.pmu.Unlock()

	fc.wmu.Lock()
	if fc.werr != nil {
		err := fc.werr
		fc.wmu.Unlock()
		fc.fail(seq, err)
		return
	}
	fc.entries = binary.AppendUvarint(fc.entries, seq)
	fc.entries = binary.AppendUvarint(fc.entries, uint64(user))
	fc.entries = binary.AppendUvarint(fc.entries, round)
	fc.entries = binary.AppendUvarint(fc.entries, uint64(len(wire)))
	fc.entries = append(fc.entries, wire...)
	fc.count++
	var err error
	if len(fc.entries) >= flushBytes {
		err = fc.flushLocked()
	}
	fc.wmu.Unlock()
	if err != nil {
		fc.failAll(err)
	}
}

// Flush sends any buffered submissions now.
func (fc *FastClient) Flush() error {
	fc.wmu.Lock()
	err := fc.flushLocked()
	fc.wmu.Unlock()
	if err != nil {
		fc.failAll(err)
	}
	return err
}

func (fc *FastClient) flushLocked() error {
	if fc.werr != nil {
		return fc.werr
	}
	if fc.count == 0 {
		return nil
	}
	payload := make([]byte, 0, 16+len(fc.entries))
	payload = append(payload, fpTypeSubmit)
	payload = binary.AppendUvarint(payload, uint64(fc.count))
	payload = append(payload, fc.entries...)
	fc.entries = fc.entries[:0]
	fc.count = 0
	return fc.writeFrameLocked(payload)
}

// flushLoop drains stragglers that never reached flushBytes, so a
// trickling submitter still sees bounded latency.
func (fc *FastClient) flushLoop() {
	t := time.NewTicker(2 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = fc.Flush()
		case <-fc.stop:
			return
		}
	}
}

func (fc *FastClient) writeFrame(payload []byte) error {
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	return fc.writeFrameLocked(payload)
}

func (fc *FastClient) writeFrameLocked(payload []byte) error {
	if fc.werr != nil {
		return fc.werr
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := fc.conn.Write(hdr[:]); err != nil {
		fc.werr = err
		return err
	}
	if _, err := fc.conn.Write(payload); err != nil {
		fc.werr = err
		return err
	}
	return nil
}

// ServeInfo fetches the open round (and, trap variant, its trustee key)
// over the fast path. One info request is in flight at a time.
func (fc *FastClient) ServeInfo(ctx context.Context) (*RoundInfo, error) {
	fc.infoMu.Lock()
	defer fc.infoMu.Unlock()
	if err := fc.writeFrame([]byte{fpTypeInfoReq}); err != nil {
		return nil, err
	}
	select {
	case ri, ok := <-fc.infoCh:
		if !ok {
			return nil, fmt.Errorf("daemon: fast path connection closed")
		}
		return ri, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// readLoop parses ack and info frames, dispatching verdicts to their
// callbacks.
func (fc *FastClient) readLoop() {
	var hdr [4]byte
	buf := make([]byte, 0, 64<<10)
	for {
		if _, err := io.ReadFull(fc.conn, hdr[:]); err != nil {
			fc.failAll(err)
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > fpMaxFrame {
			fc.failAll(fmt.Errorf("daemon: fast path frame of %d bytes", n))
			return
		}
		if cap(buf) < int(n) {
			buf = make([]byte, n)
		}
		buf = buf[:n]
		if _, err := io.ReadFull(fc.conn, buf); err != nil {
			fc.failAll(err)
			return
		}
		typ, body := buf[0], buf[1:]
		switch typ {
		case fpTypeAck:
			if !fc.handleAcks(body) {
				fc.failAll(fmt.Errorf("daemon: malformed fast path ack"))
				return
			}
		case fpTypeInfoReply:
			round, rest, ok := fpUvarint(body)
			if !ok {
				fc.failAll(fmt.Errorf("daemon: malformed fast path info"))
				return
			}
			klen, rest, ok := fpUvarint(rest)
			if !ok || klen > uint64(len(rest)) {
				fc.failAll(fmt.Errorf("daemon: malformed fast path info"))
				return
			}
			ri := &RoundInfo{ID: round}
			if klen > 0 {
				ri.TrusteeKey = append([]byte(nil), rest[:klen]...)
			}
			select {
			case fc.infoCh <- ri:
			default: // no ServeInfo waiting; drop
			}
		}
	}
}

func (fc *FastClient) handleAcks(body []byte) bool {
	count, body, ok := fpUvarint(body)
	if !ok {
		return false
	}
	for i := uint64(0); i < count; i++ {
		var seq, round, mlen uint64
		if seq, body, ok = fpUvarint(body); !ok {
			return false
		}
		if len(body) < 1 {
			return false
		}
		kind := errorKind(body[0])
		body = body[1:]
		if round, body, ok = fpUvarint(body); !ok {
			return false
		}
		var err error
		if kind != errNone {
			if mlen, body, ok = fpUvarint(body); !ok || mlen > uint64(len(body)) {
				return false
			}
			err = unclassify(kind, string(body[:mlen]))
			body = body[mlen:]
		}
		fc.pmu.Lock()
		done, found := fc.pending[seq]
		delete(fc.pending, seq)
		fc.pmu.Unlock()
		if found {
			done(round, err)
		}
	}
	return true
}

// fail settles a single submission whose write never made it out.
func (fc *FastClient) fail(seq uint64, err error) {
	fc.pmu.Lock()
	done, found := fc.pending[seq]
	delete(fc.pending, seq)
	fc.pmu.Unlock()
	if found {
		done(0, fmt.Errorf("daemon: fast path send: %w", err))
	}
}

// failAll settles every outstanding submission after the connection
// died; later Submits fail immediately.
func (fc *FastClient) failAll(err error) {
	fc.pmu.Lock()
	if fc.closed {
		fc.pmu.Unlock()
		return
	}
	fc.closed = true
	callbacks := make([]func(uint64, error), 0, len(fc.pending))
	for seq, done := range fc.pending {
		callbacks = append(callbacks, done)
		delete(fc.pending, seq)
	}
	fc.pmu.Unlock()
	werr := fmt.Errorf("daemon: fast path connection lost: %w", err)
	for _, done := range callbacks {
		done(0, werr)
	}
	close(fc.infoCh)
}

// Close tears the connection down; outstanding submissions fail.
func (fc *FastClient) Close() error {
	fc.stopOnce.Do(func() { close(fc.stop) })
	err := fc.conn.Close()
	fc.failAll(fmt.Errorf("client closed"))
	return err
}
