package daemon

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDebugMux pins the routing contract of the shared debug listener:
// /metrics only when a collector is attached, /debug/pprof/ only when
// profiling is requested, and an index line advertising what's mounted.
func TestDebugMux(t *testing.T) {
	get := func(t *testing.T, mux *httptest.Server, path string) (int, string) {
		t.Helper()
		resp, err := mux.Client().Get(mux.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	t.Run("metrics only", func(t *testing.T) {
		srv := httptest.NewServer(debugMux(NewMetrics(), false))
		defer srv.Close()
		if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "atom_rounds_opened_total") {
			t.Fatalf("/metrics: code=%d body=%q", code, body[:min(len(body), 120)])
		}
		// The bare-/ index is a catch-all, so unmounted paths still
		// answer 200 — with the index line, not the real endpoint.
		if _, body := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "atomd debug:") {
			t.Fatalf("/debug/pprof/ served real content without withPprof: %q", body[:min(len(body), 120)])
		}
		if _, body := get(t, srv, "/"); !strings.Contains(body, "/metrics") {
			t.Fatalf("index missing /metrics: %q", body)
		}
	})

	t.Run("pprof only", func(t *testing.T) {
		srv := httptest.NewServer(debugMux(nil, true))
		defer srv.Close()
		if code, body := get(t, srv, "/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
			t.Fatalf("/debug/pprof/: code=%d body=%q", code, body[:min(len(body), 120)])
		}
		if _, body := get(t, srv, "/metrics"); strings.Contains(body, "atom_rounds_opened_total") {
			t.Fatal("/metrics served with nil collector")
		}
	})

	t.Run("shared listener", func(t *testing.T) {
		srv := httptest.NewServer(debugMux(NewMetrics(), true))
		defer srv.Close()
		if code, _ := get(t, srv, "/metrics"); code != 200 {
			t.Fatalf("/metrics on shared mux: code=%d", code)
		}
		if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
			t.Fatalf("/debug/pprof/cmdline on shared mux: code=%d", code)
		}
		if _, body := get(t, srv, "/"); !strings.Contains(body, "/metrics") || !strings.Contains(body, "/debug/pprof/") {
			t.Fatalf("index missing endpoints: %q", body)
		}
	})
}
