package daemon

import (
	"context"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"atom"
)

// TestDebugMux pins the routing contract of the shared debug listener:
// /metrics only when a collector is attached, /debug/pprof/ only when
// profiling is requested, and an index line advertising what's mounted.
func TestDebugMux(t *testing.T) {
	get := func(t *testing.T, mux *httptest.Server, path string) (int, string) {
		t.Helper()
		resp, err := mux.Client().Get(mux.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, sb.String()
	}

	t.Run("metrics only", func(t *testing.T) {
		srv := httptest.NewServer(debugMux(NewMetrics(), false))
		defer srv.Close()
		if code, body := get(t, srv, "/metrics"); code != 200 || !strings.Contains(body, "atom_rounds_opened_total") {
			t.Fatalf("/metrics: code=%d body=%q", code, body[:min(len(body), 120)])
		}
		// The bare-/ index is a catch-all, so unmounted paths still
		// answer 200 — with the index line, not the real endpoint.
		if _, body := get(t, srv, "/debug/pprof/"); !strings.Contains(body, "atomd debug:") {
			t.Fatalf("/debug/pprof/ served real content without withPprof: %q", body[:min(len(body), 120)])
		}
		if _, body := get(t, srv, "/"); !strings.Contains(body, "/metrics") {
			t.Fatalf("index missing /metrics: %q", body)
		}
	})

	t.Run("pprof only", func(t *testing.T) {
		srv := httptest.NewServer(debugMux(nil, true))
		defer srv.Close()
		if code, body := get(t, srv, "/debug/pprof/"); code != 200 || !strings.Contains(body, "profile") {
			t.Fatalf("/debug/pprof/: code=%d body=%q", code, body[:min(len(body), 120)])
		}
		if _, body := get(t, srv, "/metrics"); strings.Contains(body, "atom_rounds_opened_total") {
			t.Fatal("/metrics served with nil collector")
		}
	})

	t.Run("pad and drain series", func(t *testing.T) {
		m := NewMetrics()
		obs := m.Instrument(nil)
		obs.RoundMixed(atom.RoundStats{Messages: 3, Drain: 1500 * time.Millisecond})
		obs.RoundMixed(atom.RoundStats{Messages: 2, Drain: 500 * time.Millisecond})

		rec := httptest.NewRecorder()
		m.ServeHTTP(rec, nil)
		body := rec.Body.String()
		if !strings.Contains(body, "atom_drain_ns 2000000000") {
			t.Fatalf("drain counter did not accumulate seal→publish time: %q", body)
		}
		if strings.Contains(body, "atom_pad_pool_size") {
			t.Fatal("pad series exposed without an attached network")
		}

		// With a network attached, the scrape reflects the live pad bank.
		n, err := atom.NewNetwork(atom.Config{
			Servers: 4, Groups: 2, GroupSize: 2, MessageSize: 32,
			Variant: atom.Trap, Iterations: 2, Seed: []byte("metrics-test"),
		})
		if err != nil {
			t.Fatal(err)
		}
		m.SetNetwork(n)
		if err := n.Deployment().Prewarm(context.Background(), 4); err != nil {
			t.Fatal(err)
		}
		ps := n.PadStats()
		if ps.Size == 0 {
			t.Fatal("prewarm banked no pads")
		}
		rec = httptest.NewRecorder()
		m.ServeHTTP(rec, nil)
		body = rec.Body.String()
		for _, want := range []string{
			fmt.Sprintf("atom_pad_pool_size %d", ps.Size),
			"atom_pad_pool_hits 0",
			"atom_pad_pool_misses 0",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("scrape missing %q: %q", want, body)
			}
		}
	})

	t.Run("shared listener", func(t *testing.T) {
		srv := httptest.NewServer(debugMux(NewMetrics(), true))
		defer srv.Close()
		if code, _ := get(t, srv, "/metrics"); code != 200 {
			t.Fatalf("/metrics on shared mux: code=%d", code)
		}
		if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
			t.Fatalf("/debug/pprof/cmdline on shared mux: code=%d", code)
		}
		if _, body := get(t, srv, "/"); !strings.Contains(body, "/metrics") || !strings.Contains(body, "/debug/pprof/") {
			t.Fatalf("index missing endpoints: %q", body)
		}
	})
}
