package daemon

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// The fast path is the daemon's high-throughput ingestion surface: a
// separate listener speaking a compact binary framing instead of the gob
// RPC envelope, multiplexed so one TCP connection carries any number of
// logical clients. Submits are pipelined — the client streams fpSubmit
// frames without waiting — and the server acknowledges asynchronously
// with coalesced fpAck frames, so the per-submission wire cost is a few
// dozen bytes and zero round trips. Admission itself is batched: frames
// from every connection drain into one queue, and workers flush batches
// through Service.SubmitEncodedBatch, which verifies each batch's
// admission proofs as a single random-linear-combination check.
//
// Frame layout (all integers except the length prefix are uvarints):
//
//	frame     := u32_be length ‖ type_byte ‖ body
//	hello     := "ATOMFP1"                                  (client → server, first frame)
//	submit    := count ‖ { seq ‖ user ‖ round ‖ len ‖ wire }×count
//	ack       := count ‖ { seq ‖ status ‖ round ‖ [len ‖ error] }×count
//	info-req  := (empty)
//	info-rep  := round ‖ len ‖ trustee-key
//
// status 0 admits; any other value is the errorKind of the rejection
// (the same taxonomy the gob surface ships), followed by the error text,
// so FastClient rebuilds exactly the typed errors SubmitInto returns.
const (
	fpMagic    = "ATOMFP1"
	fpMaxFrame = 16 << 20

	fpTypeHello     byte = 1
	fpTypeSubmit    byte = 2
	fpTypeInfoReq   byte = 3
	fpTypeAck       byte = 4
	fpTypeInfoReply byte = 5
)

// FastPathOptions tunes the fast-path admission plane.
type FastPathOptions struct {
	// MaxBatch caps how many submissions one admission flush verifies
	// together (default 256).
	MaxBatch int
	// Linger is how long a worker waits for stragglers when a flush
	// would otherwise be small (default 500µs). Zero keeps the default;
	// negative disables lingering.
	Linger time.Duration
	// Workers is the number of admission workers draining the queue
	// (default GOMAXPROCS capped at 4). On a single core one worker
	// forms the largest batches.
	Workers int
	// QueueDepth is the admission queue's capacity (default 8192);
	// when it fills, connection readers stop reading — TCP backpressure
	// instead of unbounded memory.
	QueueDepth int
	// Metrics, when set, receives the fast path's connection gauge and
	// queue high-water mark.
	Metrics *Metrics
}

func (o FastPathOptions) withDefaults() FastPathOptions {
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.Linger == 0 {
		o.Linger = 500 * time.Microsecond
	}
	if o.Workers <= 0 {
		o.Workers = min(runtime.GOMAXPROCS(0), 4)
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8192
	}
	return o
}

// frameBuf is a pooled, reference-counted frame buffer. Submission wire
// bytes are zero-copy subslices of the frame they arrived in, so the
// buffer returns to the pool only after every submission it carries has
// been flushed through admission.
type frameBuf struct {
	b    []byte
	refs atomic.Int32
	pool *sync.Pool
}

func (f *frameBuf) release() {
	if f.refs.Add(-1) == 0 {
		f.pool.Put(f)
	}
}

// fastSub is one submission in flight between a connection reader and an
// admission worker.
type fastSub struct {
	fc    *fastConn
	frame *frameBuf
	seq   uint64
	user  int
	round uint64
	wire  []byte
}

// fpAck is one acknowledgment queued for a connection's writer.
type fpAck struct {
	seq   uint64
	round uint64
	kind  errorKind
	msg   string
}

// fastPath is the server half: listener, per-connection readers/writers,
// and the shared admission queue.
type fastPath struct {
	srv  *Server
	ln   net.Listener
	opts FastPathOptions

	queue    chan fastSub
	queueHWM atomic.Int64
	bufs     sync.Pool

	mu      sync.Mutex
	conns   map[*fastConn]bool
	closing bool

	readers sync.WaitGroup
	workers sync.WaitGroup
}

// EnableFastPath starts the binary ingestion listener on addr (":0" for
// an ephemeral port) and returns the bound address, which the gob Info
// reply advertises as SubmitAddr. Submissions arriving before
// EnableService are rejected with a typed error; enable the service
// first. Close shuts the fast path down with the rest of the daemon.
func (s *Server) EnableFastPath(addr string, opts FastPathOptions) (string, error) {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	fp := &fastPath{
		srv:   s,
		ln:    ln,
		opts:  opts,
		queue: make(chan fastSub, opts.QueueDepth),
		conns: make(map[*fastConn]bool),
	}
	fp.bufs.New = func() any { return &frameBuf{pool: &fp.bufs} }
	s.fast = fp
	fp.workers.Add(opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		go fp.worker()
	}
	go fp.accept()
	return ln.Addr().String(), nil
}

// FastAddr returns the fast-path listen address, empty when disabled.
func (s *Server) FastAddr() string {
	if s.fast == nil {
		return ""
	}
	return s.fast.ln.Addr().String()
}

// close stops the fast path: listener and connections first (stopping
// the readers), then the queue (letting workers flush the remainder).
func (fp *fastPath) close() {
	fp.mu.Lock()
	if fp.closing {
		fp.mu.Unlock()
		return
	}
	fp.closing = true
	conns := make([]*fastConn, 0, len(fp.conns))
	for fc := range fp.conns {
		conns = append(conns, fc)
	}
	fp.mu.Unlock()
	_ = fp.ln.Close()
	for _, fc := range conns {
		fc.shut()
	}
	fp.readers.Wait()
	close(fp.queue)
	fp.workers.Wait()
}

func (fp *fastPath) accept() {
	for {
		c, err := fp.ln.Accept()
		if err != nil {
			return
		}
		fc := &fastConn{fp: fp, c: c, acks: make(chan fpAck, 16384)}
		fp.mu.Lock()
		if fp.closing {
			fp.mu.Unlock()
			_ = c.Close()
			return
		}
		fp.conns[fc] = true
		fp.mu.Unlock()
		if m := fp.opts.Metrics; m != nil {
			m.submitConns.Add(1)
		}
		fp.readers.Add(1)
		go fc.readLoop()
		go fc.ackLoop()
	}
}

func (fp *fastPath) dropConn(fc *fastConn) {
	fp.mu.Lock()
	known := fp.conns[fc]
	delete(fp.conns, fc)
	fp.mu.Unlock()
	if known {
		if m := fp.opts.Metrics; m != nil {
			m.submitConns.Add(-1)
		}
	}
}

// fastConn is one accepted fast-path connection.
type fastConn struct {
	fp   *fastPath
	c    net.Conn
	acks chan fpAck

	wmu  sync.Mutex // serializes frame writes (ack writer vs info replies)
	once sync.Once
}

func (fc *fastConn) shut() {
	fc.once.Do(func() {
		_ = fc.c.Close()
		fc.fp.dropConn(fc)
	})
}

// readLoop parses frames into the shared admission queue. Any protocol
// violation drops the connection — a fast-path peer is trusted to speak
// the framing, not to be honest about its submissions.
func (fc *fastConn) readLoop() {
	defer fc.fp.readers.Done()
	defer fc.shut()
	defer close(fc.acks)
	var hdr [4]byte
	sawHello := false
	for {
		if _, err := io.ReadFull(fc.c, hdr[:]); err != nil {
			return
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n == 0 || n > fpMaxFrame {
			return
		}
		fb := fc.fp.bufs.Get().(*frameBuf)
		if cap(fb.b) < int(n) {
			fb.b = make([]byte, n)
		}
		fb.b = fb.b[:n]
		if _, err := io.ReadFull(fc.c, fb.b); err != nil {
			fc.fp.bufs.Put(fb)
			return
		}
		typ, body := fb.b[0], fb.b[1:]
		if !sawHello {
			if typ != fpTypeHello || string(body) != fpMagic {
				fc.fp.bufs.Put(fb)
				return
			}
			sawHello = true
			fc.fp.bufs.Put(fb)
			continue
		}
		switch typ {
		case fpTypeSubmit:
			subs, ok := fc.parseSubmit(fb, body)
			if !ok {
				fc.fp.bufs.Put(fb)
				return
			}
			if len(subs) == 0 {
				fc.fp.bufs.Put(fb)
				continue
			}
			fb.refs.Store(int32(len(subs)))
			for _, sub := range subs {
				fc.fp.queue <- sub
			}
			if m := fc.fp.opts.Metrics; m != nil {
				if d := int64(len(fc.fp.queue)); d > fc.fp.queueHWM.Load() {
					fc.fp.queueHWM.Store(d)
					m.submitQueueHWM.Store(d)
				}
			}
		case fpTypeInfoReq:
			fc.fp.bufs.Put(fb)
			fc.sendInfo()
		default:
			fc.fp.bufs.Put(fb)
			return
		}
	}
}

// parseSubmit splits an fpSubmit body into fastSubs whose wire bytes
// alias the frame buffer.
func (fc *fastConn) parseSubmit(fb *frameBuf, body []byte) ([]fastSub, bool) {
	count, body, ok := fpUvarint(body)
	if !ok || count > uint64(len(body)) { // each submission is ≥1 byte
		return nil, false
	}
	subs := make([]fastSub, 0, count)
	for i := uint64(0); i < count; i++ {
		var seq, user, round, wlen uint64
		if seq, body, ok = fpUvarint(body); !ok {
			return nil, false
		}
		if user, body, ok = fpUvarint(body); !ok {
			return nil, false
		}
		if round, body, ok = fpUvarint(body); !ok {
			return nil, false
		}
		if wlen, body, ok = fpUvarint(body); !ok || wlen > uint64(len(body)) {
			return nil, false
		}
		subs = append(subs, fastSub{
			fc:    fc,
			frame: fb,
			seq:   seq,
			user:  int(user),
			round: round,
			wire:  body[:wlen:wlen],
		})
		body = body[wlen:]
	}
	return subs, len(body) == 0
}

// sendInfo answers an info-req with the open round (and trustee key).
func (fc *fastConn) sendInfo() {
	var round uint64
	var tkey []byte
	if svc := fc.fp.srv.svc.Load(); svc != nil {
		if id, key, err := svc.Current(); err == nil {
			round, tkey = id, key
		}
	}
	body := make([]byte, 0, 16+len(tkey))
	body = append(body, fpTypeInfoReply)
	body = binary.AppendUvarint(body, round)
	body = binary.AppendUvarint(body, uint64(len(tkey)))
	body = append(body, tkey...)
	fc.writeFrame(body)
}

// writeFrame writes one length-prefixed frame; a failed write drops the
// connection (the reader notices on its next read).
func (fc *fastConn) writeFrame(payload []byte) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	fc.wmu.Lock()
	defer fc.wmu.Unlock()
	if _, err := fc.c.Write(hdr[:]); err != nil {
		fc.shut()
		return
	}
	if _, err := fc.c.Write(payload); err != nil {
		fc.shut()
	}
}

// ackLoop coalesces queued acknowledgments into fpAck frames: one write
// covers however many verdicts have accumulated since the last.
func (fc *fastConn) ackLoop() {
	buf := make([]byte, 0, 4096)
	pending := make([]fpAck, 0, 256)
	for ack := range fc.acks {
		pending = append(pending[:0], ack)
	drain:
		for len(pending) < 4096 {
			select {
			case more, ok := <-fc.acks:
				if !ok {
					break drain
				}
				pending = append(pending, more)
			default:
				break drain
			}
		}
		buf = append(buf[:0], fpTypeAck)
		buf = binary.AppendUvarint(buf, uint64(len(pending)))
		for _, a := range pending {
			buf = binary.AppendUvarint(buf, a.seq)
			buf = append(buf, byte(a.kind))
			buf = binary.AppendUvarint(buf, a.round)
			if a.kind != errNone {
				buf = binary.AppendUvarint(buf, uint64(len(a.msg)))
				buf = append(buf, a.msg...)
			}
		}
		fc.writeFrame(buf)
	}
}

// ack queues one verdict; a connection that stopped draining its acks
// (dead or pathologically slow peer) is dropped rather than allowed to
// stall the admission plane.
func (fc *fastConn) ack(a fpAck) {
	defer func() {
		// The reader closes fc.acks when the connection dies; a verdict
		// racing that close is for a peer that will never read it.
		_ = recover()
	}()
	select {
	case fc.acks <- a:
	default:
		fc.shut()
	}
}

// worker drains the admission queue: it greedily collects a batch (up to
// MaxBatch, lingering briefly when the queue runs dry) and flushes it
// through the service's batched admission.
func (fp *fastPath) worker() {
	defer fp.workers.Done()
	batch := make([]fastSub, 0, fp.opts.MaxBatch)
	for sub := range fp.queue {
		batch = append(batch[:0], sub)
	fill:
		for len(batch) < fp.opts.MaxBatch {
			select {
			case more, ok := <-fp.queue:
				if !ok {
					break fill
				}
				batch = append(batch, more)
			default:
				if fp.opts.Linger < 0 {
					break fill
				}
				t := time.NewTimer(fp.opts.Linger)
				select {
				case more, ok := <-fp.queue:
					t.Stop()
					if !ok {
						break fill
					}
					batch = append(batch, more)
				case <-t.C:
					break fill
				}
			}
		}
		fp.flush(batch)
	}
}

// flush admits one batch. Submissions are grouped by their round pin
// (almost always the whole batch targets round 0, the open round) and
// each group goes through the service's batched admission; every
// submission is acknowledged on its own connection and its frame
// reference released.
func (fp *fastPath) flush(batch []fastSub) {
	svc := fp.srv.svc.Load()
	if svc == nil {
		err := fmt.Errorf("daemon: not serving (no continuous service)")
		for _, sub := range batch {
			sub.fc.ack(fpAck{seq: sub.seq, kind: classify(err), msg: err.Error()})
			sub.frame.release()
		}
		return
	}
	groups := map[uint64][]int{}
	for i, sub := range batch {
		groups[sub.round] = append(groups[sub.round], i)
	}
	for pin, idxs := range groups {
		users := make([]int, len(idxs))
		wires := make([][]byte, len(idxs))
		for k, i := range idxs {
			users[k], wires[k] = batch[i].user, batch[i].wire
		}
		rounds, errs := svc.SubmitEncodedBatchInto(pin, users, wires)
		for k, i := range idxs {
			sub := batch[i]
			if errs[k] != nil {
				sub.fc.ack(fpAck{seq: sub.seq, kind: classify(errs[k]), msg: errs[k].Error()})
			} else {
				sub.fc.ack(fpAck{seq: sub.seq, round: rounds[k]})
			}
			sub.frame.release()
		}
	}
}

// fpUvarint decodes one uvarint off the front of b.
func fpUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}
