package daemon

import (
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"atom"
	"atom/internal/store"
)

// Metrics is the daemon's Prometheus-style counter set: an Observer
// shim tallies the pipeline's lifecycle events, and ServeHTTP exposes
// them (plus the state store's own counters) in the text exposition
// format — stdlib only, scrapeable by any Prometheus-compatible
// collector from atomd's -metrics listener.
type Metrics struct {
	roundsOpened  atomic.Uint64
	roundsSealed  atomic.Uint64
	roundsMixed   atomic.Uint64
	roundsFailed  atomic.Uint64
	subsAccepted  atomic.Uint64
	subsAdmitted  atomic.Uint64
	subsRejected  atomic.Uint64
	msgsDelivered atomic.Uint64
	iterations    atomic.Uint64
	iterNanos     atomic.Uint64
	workerBusyNs  atomic.Uint64
	shuffles      atomic.Uint64
	reencs        atomic.Uint64
	proofsChecked atomic.Uint64
	queueDepth    atomic.Int64
	inFlight      atomic.Int64

	// Admission-plane series (the batched ingestion frontend).
	admitBatches   atomic.Uint64
	admitBatchSubs atomic.Uint64
	admitBatchSize atomic.Int64
	admitVerifyNs  atomic.Uint64
	submitConns    atomic.Int64
	submitQueueHWM atomic.Int64

	// Drain-plane series (the offline/online mixing split).
	drainNs atomic.Uint64

	st  atomic.Pointer[store.Store]
	net atomic.Pointer[atom.Network]
}

// NewMetrics returns an empty collector.
func NewMetrics() *Metrics { return &Metrics{} }

// SetStore attaches a state store whose journal counters the exposition
// reports as store_* series.
func (m *Metrics) SetStore(st *store.Store) { m.st.Store(st) }

// SetNetwork attaches the deployment whose offline pad bank the
// exposition reports as atom_pad_pool_* series.
func (m *Metrics) SetNetwork(n *atom.Network) { m.net.Store(n) }

// Instrument returns an Observer that updates the counters and then
// forwards every callback to next (which may be nil). Install the
// result with Network.SetObserver.
func (m *Metrics) Instrument(next *atom.Observer) *atom.Observer {
	return &atom.Observer{
		RoundOpened: func(round uint64) {
			m.roundsOpened.Add(1)
			if next != nil && next.RoundOpened != nil {
				next.RoundOpened(round)
			}
		},
		SubmissionAccepted: func(round uint64, user, gid int) {
			m.subsAccepted.Add(1)
			if next != nil && next.SubmissionAccepted != nil {
				next.SubmissionAccepted(round, user, gid)
			}
		},
		AdmissionBatch: func(round uint64, st atom.AdmitBatchStats) {
			m.admitBatches.Add(1)
			m.admitBatchSubs.Add(uint64(st.Size))
			m.admitBatchSize.Store(int64(st.Size))
			m.admitVerifyNs.Add(uint64(st.VerifyTime))
			if next != nil && next.AdmissionBatch != nil {
				next.AdmissionBatch(round, st)
			}
		},
		RoundSealed: func(round uint64, ingest atom.IngestStats) {
			m.roundsSealed.Add(1)
			m.subsAdmitted.Add(uint64(ingest.Admitted))
			m.subsRejected.Add(uint64(ingest.Rejected))
			m.queueDepth.Store(int64(ingest.Queued))
			m.inFlight.Store(int64(ingest.InFlight))
			if next != nil && next.RoundSealed != nil {
				next.RoundSealed(round, ingest)
			}
		},
		IterationDone: func(it atom.IterationStats) {
			m.iterations.Add(1)
			m.iterNanos.Add(uint64(it.Duration))
			m.workerBusyNs.Add(uint64(it.WorkerBusy))
			m.shuffles.Add(uint64(it.Shuffles))
			m.reencs.Add(uint64(it.ReEncs))
			m.proofsChecked.Add(uint64(it.ProofsVerified))
			if next != nil && next.IterationDone != nil {
				next.IterationDone(it)
			}
		},
		RoundMixed: func(stats atom.RoundStats) {
			m.roundsMixed.Add(1)
			m.msgsDelivered.Add(uint64(stats.Messages))
			if stats.Drain > 0 {
				m.drainNs.Add(uint64(stats.Drain))
			}
			if next != nil && next.RoundMixed != nil {
				next.RoundMixed(stats)
			}
		},
		RoundFailed: func(round uint64, err error) {
			m.roundsFailed.Add(1)
			if next != nil && next.RoundFailed != nil {
				next.RoundFailed(round, err)
			}
		},
	}
}

// ServeHTTP writes the text exposition (version 0.0.4 — the format
// every Prometheus-compatible scraper accepts).
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	seconds := func(name, help string, d time.Duration, kind string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %g\n", name, help, name, kind, name, d.Seconds())
	}
	counter("atom_rounds_opened_total", "Rounds opened for submissions.", m.roundsOpened.Load())
	counter("atom_rounds_sealed_total", "Rounds sealed by the scheduler.", m.roundsSealed.Load())
	counter("atom_rounds_mixed_total", "Rounds mixed and published successfully.", m.roundsMixed.Load())
	counter("atom_rounds_failed_total", "Rounds published as failed (aborts, losses, trap trips).", m.roundsFailed.Load())
	counter("atom_submissions_accepted_total", "Submissions accepted at the ingestion frontend.", m.subsAccepted.Load())
	counter("atom_submissions_admitted_total", "Submissions admitted into sealed rounds.", m.subsAdmitted.Load())
	counter("atom_submissions_rejected_total", "Submissions turned away by admission control.", m.subsRejected.Load())
	counter("atom_messages_delivered_total", "Anonymized plaintexts delivered by mixed rounds.", m.msgsDelivered.Load())
	counter("atom_iterations_total", "Mixing iterations completed.", m.iterations.Load())
	seconds("atom_iteration_seconds_total", "Wall-clock time summed over mixing iterations.", time.Duration(m.iterNanos.Load()), "counter")
	seconds("atom_worker_busy_seconds_total", "Crypto-worker in-task time summed over iterations.", time.Duration(m.workerBusyNs.Load()), "counter")
	counter("atom_shuffles_total", "Verifiable shuffles performed.", m.shuffles.Load())
	counter("atom_reencs_total", "Re-encryptions performed.", m.reencs.Load())
	counter("atom_proofs_verified_total", "NIZK proofs verified.", m.proofsChecked.Load())
	gauge("atom_queue_depth", "Sealed rounds awaiting mixing at the last seal.", m.queueDepth.Load())
	gauge("atom_rounds_in_flight", "Rounds actively mixing at the last seal.", m.inFlight.Load())
	counter("atom_admit_batches_total", "Batches pushed through the combined admission-proof verification.", m.admitBatches.Load())
	counter("atom_admit_batch_subs_total", "Submissions admitted or rejected through batched admission.", m.admitBatchSubs.Load())
	gauge("atom_admit_batch_size", "Size of the most recent admission batch.", m.admitBatchSize.Load())
	counter("atom_admit_verify_ns", "Nanoseconds spent in combined admission-proof verification.", m.admitVerifyNs.Load())
	gauge("atom_submit_conns", "Open fast-path submit connections.", m.submitConns.Load())
	gauge("atom_submit_queue_hwm", "High-water mark of the fast-path admission queue depth.", m.submitQueueHWM.Load())
	counter("atom_drain_ns", "Nanoseconds from seal to publish summed over pipelined rounds.", m.drainNs.Load())
	if n := m.net.Load(); n != nil {
		ps := n.PadStats()
		gauge("atom_pad_pool_size", "Re-encryption pads currently banked offline.", int64(ps.Size))
		counter("atom_pad_pool_hits", "Mixing slots rerandomized from the offline pad bank.", ps.Hits)
		counter("atom_pad_pool_misses", "Mixing slots that fell back to fresh online randomness.", ps.Misses)
	}
	if st := m.st.Load(); st != nil {
		sm := st.Metrics()
		counter("store_journal_bytes_total", "Bytes appended to the state journal.", sm.JournalBytes)
		counter("store_fsyncs_total", "Fsync calls issued by the state store.", sm.Fsyncs)
		counter("store_records_total", "Records appended to the state journal.", sm.Records)
		counter("store_snapshots_total", "Snapshot compactions taken.", sm.Snapshots)
		counter("store_replay_records", "Records replayed by the last open.", sm.ReplayRecords)
		seconds("store_replay_seconds", "Time the last open spent replaying.", sm.ReplayDuration, "gauge")
	}
}

// debugMux builds the daemon's debug handler: /metrics when m is
// non-nil, net/http/pprof under /debug/pprof/ when withPprof is set.
// Both endpoints share one mux so a single listener can expose both.
func debugMux(m *Metrics, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	index := "atomd debug:"
	if m != nil {
		mux.Handle("/metrics", m)
		index += " /metrics"
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		index += " /debug/pprof/"
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, index+"\n")
	})
	return mux
}

// ServeMetrics serves m (at /metrics, plus a bare / index) on addr
// until the listener fails — intended for `go ServeMetrics(...)` from
// a daemon main. It returns http.ListenAndServe's error.
func ServeMetrics(addr string, m *Metrics) error {
	return http.ListenAndServe(addr, debugMux(m, false))
}

// ServeDebug is ServeMetrics plus optional net/http/pprof on the same
// mux. m may be nil to serve pprof alone (the atomsim -pprof case).
func ServeDebug(addr string, m *Metrics, withPprof bool) error {
	return http.ListenAndServe(addr, debugMux(m, withPprof))
}
