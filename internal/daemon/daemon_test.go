package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"atom"
)

func startServer(t *testing.T, variant atom.Variant) (*Server, atom.Config) {
	t.Helper()
	cfg := atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 32,
		Variant:     variant,
		Iterations:  2,
		Seed:        []byte("daemon-test"),
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, cfg
}

func TestDaemonEndToEndNIZK(t *testing.T) {
	srv, cfg := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups != 4 || info.MessageSize != 32 || info.Trap {
		t.Fatalf("unexpected info %+v", info)
	}
	if len(info.EntryKeys) != 4 {
		t.Fatalf("%d entry keys", len(info.EntryKeys))
	}

	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for u := 0; u < 8; u++ {
		gid := u % info.Groups
		msg := fmt.Sprintf("over the wire %d", u)
		want[msg] = true
		wire, err := ac.EncryptSubmission([]byte(msg), info.EntryKeys[gid], nil, gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Submit(t.Context(), u, wire); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := cli.RunRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("round returned %d messages", len(msgs))
	}
	for _, m := range msgs {
		if !want[string(m)] {
			t.Errorf("unexpected message %q", m)
		}
	}
}

func TestDaemonEndToEndTrap(t *testing.T) {
	srv, cfg := startServer(t, atom.Trap)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Trap || len(info.TrusteeKey) == 0 {
		t.Fatalf("trap deployment not advertised: %+v", info)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		gid := u % info.Groups
		wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("trap wire %d", u)),
			info.EntryKeys[gid], info.TrusteeKey, gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Submit(t.Context(), u, wire); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := cli.RunRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("round returned %d messages", len(msgs))
	}
}

func TestDaemonRejectsGarbageSubmission(t *testing.T) {
	srv, _ := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Submit(t.Context(), 0, []byte("not a submission")); err == nil {
		t.Fatal("garbage submission accepted")
	}
	// Replay rejection over the wire.
	info, _ := cli.Info(t.Context())
	cfg := atom.Config{Servers: 12, Groups: 4, GroupSize: 3, MessageSize: 32,
		Variant: atom.NIZK, Iterations: 2, Seed: []byte("daemon-test")}
	ac, _ := atom.NewClient(cfg)
	wire, err := ac.EncryptSubmission([]byte("once"), info.EntryKeys[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 1, wire); err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 2, wire); err == nil {
		t.Fatal("replayed submission accepted over the wire")
	}
}

func TestDaemonMultipleRounds(t *testing.T) {
	srv, cfg := startServer(t, atom.Trap)
	cli, _ := Dial(srv.Addr())
	defer cli.Close()
	info, _ := cli.Info(t.Context())
	ac, _ := atom.NewClient(cfg)
	for round := 0; round < 2; round++ {
		// The trustee key rotates per round; refetch it.
		info, _ = cli.Info(t.Context())
		for u := 0; u < 4; u++ {
			wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("r%d u%d", round, u)),
				info.EntryKeys[u%info.Groups], info.TrusteeKey, u%info.Groups)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.Submit(t.Context(), u, wire); err != nil {
				t.Fatal(err)
			}
		}
		msgs, err := cli.RunRound(t.Context())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(msgs) != 4 {
			t.Fatalf("round %d returned %d messages", round, len(msgs))
		}
	}
}

func TestDaemonPipelinedRounds(t *testing.T) {
	// Round r+1 opens and ingests over the wire while round r mixes:
	// the Mix RPC is asynchronous on the server and the client
	// demultiplexes replies by request id.
	srv, cfg := startServer(t, atom.Trap)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}

	submit := func(ri *RoundInfo, round, users int) {
		t.Helper()
		for u := 0; u < users; u++ {
			gid := u % info.Groups
			wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("r%d u%d", round, u)),
				info.EntryKeys[gid], ri.TrusteeKey, gid)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.SubmitRound(t.Context(), ri.ID, u, wire); err != nil {
				t.Fatal(err)
			}
		}
	}

	r0, err := cli.OpenRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	submit(r0, 0, 4)

	// Kick off the mix of round 0 concurrently…
	var wg sync.WaitGroup
	wg.Add(1)
	var mix0 [][]byte
	var mix0Err error
	go func() {
		defer wg.Done()
		mix0, mix0Err = cli.Mix(t.Context(), r0.ID)
	}()

	// …and, without waiting, open round 1 and submit into it.
	r1, err := cli.OpenRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID == r0.ID {
		t.Fatal("round ids must differ")
	}
	submit(r1, 1, 4)

	wg.Wait()
	if mix0Err != nil {
		t.Fatalf("round 0 mix: %v", mix0Err)
	}
	if len(mix0) != 4 {
		t.Fatalf("round 0 returned %d messages", len(mix0))
	}
	mix1, err := cli.Mix(t.Context(), r1.ID)
	if err != nil {
		t.Fatalf("round 1 mix: %v", err)
	}
	if len(mix1) != 4 {
		t.Fatalf("round 1 returned %d messages", len(mix1))
	}
	for _, m := range mix1 {
		if string(m)[:2] != "r1" {
			t.Fatalf("round 1 leaked message %q", m)
		}
	}
	// Mixing a consumed round is an error.
	if _, err := cli.Mix(t.Context(), r0.ID); err == nil {
		t.Fatal("re-mixing a finished round succeeded")
	}
}

func TestDaemonTypedErrorsOverWire(t *testing.T) {
	srv, cfg := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 0, []byte("garbage")); !errors.Is(err, atom.ErrBadSubmission) {
		t.Fatalf("garbage submission: got %v, want ErrBadSubmission", err)
	}
	ac, _ := atom.NewClient(cfg)
	wire, err := ac.EncryptSubmission([]byte("dup"), info.EntryKeys[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 1, wire); err != nil {
		t.Fatal(err)
	}
	err = cli.Submit(t.Context(), 2, wire)
	if !errors.Is(err, atom.ErrDuplicateSubmission) || !errors.Is(err, atom.ErrBadSubmission) {
		t.Fatalf("replay: got %v, want ErrDuplicateSubmission (and ErrBadSubmission)", err)
	}
}

func TestDaemonClientDeadline(t *testing.T) {
	// A request to a black-hole address must fail by the context
	// deadline instead of hanging (the old client hung forever on a
	// dead server when its fixed timeout was disabled).
	cli, err := Dial("127.0.0.1:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(0) // disable the default bound; rely on ctx only
	ctx, cancel := context.WithTimeout(t.Context(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.Info(ctx)
	if err == nil {
		t.Fatal("Info against a dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not honored: took %v", elapsed)
	}
}
