package daemon

import (
	"fmt"
	"testing"

	"atom"
)

func startServer(t *testing.T, variant atom.Variant) (*Server, atom.Config) {
	t.Helper()
	cfg := atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 32,
		Variant:     variant,
		Iterations:  2,
		Seed:        []byte("daemon-test"),
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, cfg
}

func TestDaemonEndToEndNIZK(t *testing.T) {
	srv, cfg := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info()
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups != 4 || info.MessageSize != 32 || info.Trap {
		t.Fatalf("unexpected info %+v", info)
	}
	if len(info.EntryKeys) != 4 {
		t.Fatalf("%d entry keys", len(info.EntryKeys))
	}

	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for u := 0; u < 8; u++ {
		gid := u % info.Groups
		msg := fmt.Sprintf("over the wire %d", u)
		want[msg] = true
		wire, err := ac.EncryptSubmission([]byte(msg), info.EntryKeys[gid], nil, gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Submit(u, wire); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := cli.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("round returned %d messages", len(msgs))
	}
	for _, m := range msgs {
		if !want[string(m)] {
			t.Errorf("unexpected message %q", m)
		}
	}
}

func TestDaemonEndToEndTrap(t *testing.T) {
	srv, cfg := startServer(t, atom.Trap)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info()
	if err != nil {
		t.Fatal(err)
	}
	if !info.Trap || len(info.TrusteeKey) == 0 {
		t.Fatalf("trap deployment not advertised: %+v", info)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		gid := u % info.Groups
		wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("trap wire %d", u)),
			info.EntryKeys[gid], info.TrusteeKey, gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Submit(u, wire); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := cli.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("round returned %d messages", len(msgs))
	}
}

func TestDaemonRejectsGarbageSubmission(t *testing.T) {
	srv, _ := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Submit(0, []byte("not a submission")); err == nil {
		t.Fatal("garbage submission accepted")
	}
	// Replay rejection over the wire.
	info, _ := cli.Info()
	cfg := atom.Config{Servers: 12, Groups: 4, GroupSize: 3, MessageSize: 32,
		Variant: atom.NIZK, Iterations: 2, Seed: []byte("daemon-test")}
	ac, _ := atom.NewClient(cfg)
	wire, err := ac.EncryptSubmission([]byte("once"), info.EntryKeys[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(1, wire); err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(2, wire); err == nil {
		t.Fatal("replayed submission accepted over the wire")
	}
}

func TestDaemonMultipleRounds(t *testing.T) {
	srv, cfg := startServer(t, atom.Trap)
	cli, _ := Dial(srv.Addr())
	defer cli.Close()
	info, _ := cli.Info()
	ac, _ := atom.NewClient(cfg)
	for round := 0; round < 2; round++ {
		// The trustee key rotates per round; refetch it.
		info, _ = cli.Info()
		for u := 0; u < 4; u++ {
			wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("r%d u%d", round, u)),
				info.EntryKeys[u%info.Groups], info.TrusteeKey, u%info.Groups)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.Submit(u, wire); err != nil {
				t.Fatal(err)
			}
		}
		msgs, err := cli.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(msgs) != 4 {
			t.Fatalf("round %d returned %d messages", round, len(msgs))
		}
	}
}
