package daemon

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"atom"
)

func startServer(t *testing.T, variant atom.Variant) (*Server, atom.Config) {
	t.Helper()
	cfg := atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 32,
		Variant:     variant,
		Iterations:  2,
		Seed:        []byte("daemon-test"),
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, cfg
}

func TestDaemonEndToEndNIZK(t *testing.T) {
	srv, cfg := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if info.Groups != 4 || info.MessageSize != 32 || info.Trap {
		t.Fatalf("unexpected info %+v", info)
	}
	if len(info.EntryKeys) != 4 {
		t.Fatalf("%d entry keys", len(info.EntryKeys))
	}

	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{}
	for u := 0; u < 8; u++ {
		gid := u % info.Groups
		msg := fmt.Sprintf("over the wire %d", u)
		want[msg] = true
		wire, err := ac.EncryptSubmission([]byte(msg), info.EntryKeys[gid], nil, gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Submit(t.Context(), u, wire); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := cli.RunRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("round returned %d messages", len(msgs))
	}
	for _, m := range msgs {
		if !want[string(m)] {
			t.Errorf("unexpected message %q", m)
		}
	}
}

func TestDaemonEndToEndTrap(t *testing.T) {
	srv, cfg := startServer(t, atom.Trap)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !info.Trap || len(info.TrusteeKey) == 0 {
		t.Fatalf("trap deployment not advertised: %+v", info)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 8; u++ {
		gid := u % info.Groups
		wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("trap wire %d", u)),
			info.EntryKeys[gid], info.TrusteeKey, gid)
		if err != nil {
			t.Fatal(err)
		}
		if err := cli.Submit(t.Context(), u, wire); err != nil {
			t.Fatal(err)
		}
	}
	msgs, err := cli.RunRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("round returned %d messages", len(msgs))
	}
}

func TestDaemonRejectsGarbageSubmission(t *testing.T) {
	srv, _ := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Submit(t.Context(), 0, []byte("not a submission")); err == nil {
		t.Fatal("garbage submission accepted")
	}
	// Replay rejection over the wire.
	info, _ := cli.Info(t.Context())
	cfg := atom.Config{Servers: 12, Groups: 4, GroupSize: 3, MessageSize: 32,
		Variant: atom.NIZK, Iterations: 2, Seed: []byte("daemon-test")}
	ac, _ := atom.NewClient(cfg)
	wire, err := ac.EncryptSubmission([]byte("once"), info.EntryKeys[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 1, wire); err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 2, wire); err == nil {
		t.Fatal("replayed submission accepted over the wire")
	}
}

func TestDaemonMultipleRounds(t *testing.T) {
	srv, cfg := startServer(t, atom.Trap)
	cli, _ := Dial(srv.Addr())
	defer cli.Close()
	info, _ := cli.Info(t.Context())
	ac, _ := atom.NewClient(cfg)
	for round := 0; round < 2; round++ {
		// The trustee key rotates per round; refetch it.
		info, _ = cli.Info(t.Context())
		for u := 0; u < 4; u++ {
			wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("r%d u%d", round, u)),
				info.EntryKeys[u%info.Groups], info.TrusteeKey, u%info.Groups)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.Submit(t.Context(), u, wire); err != nil {
				t.Fatal(err)
			}
		}
		msgs, err := cli.RunRound(t.Context())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(msgs) != 4 {
			t.Fatalf("round %d returned %d messages", round, len(msgs))
		}
	}
}

func TestDaemonPipelinedRounds(t *testing.T) {
	// Round r+1 opens and ingests over the wire while round r mixes:
	// the Mix RPC is asynchronous on the server and the client
	// demultiplexes replies by request id.
	srv, cfg := startServer(t, atom.Trap)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}

	submit := func(ri *RoundInfo, round, users int) {
		t.Helper()
		for u := 0; u < users; u++ {
			gid := u % info.Groups
			wire, err := ac.EncryptSubmission([]byte(fmt.Sprintf("r%d u%d", round, u)),
				info.EntryKeys[gid], ri.TrusteeKey, gid)
			if err != nil {
				t.Fatal(err)
			}
			if err := cli.SubmitRound(t.Context(), ri.ID, u, wire); err != nil {
				t.Fatal(err)
			}
		}
	}

	r0, err := cli.OpenRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	submit(r0, 0, 4)

	// Kick off the mix of round 0 concurrently…
	var wg sync.WaitGroup
	wg.Add(1)
	var mix0 [][]byte
	var mix0Err error
	go func() {
		defer wg.Done()
		mix0, mix0Err = cli.Mix(t.Context(), r0.ID)
	}()

	// …and, without waiting, open round 1 and submit into it.
	r1, err := cli.OpenRound(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID == r0.ID {
		t.Fatal("round ids must differ")
	}
	submit(r1, 1, 4)

	wg.Wait()
	if mix0Err != nil {
		t.Fatalf("round 0 mix: %v", mix0Err)
	}
	if len(mix0) != 4 {
		t.Fatalf("round 0 returned %d messages", len(mix0))
	}
	mix1, err := cli.Mix(t.Context(), r1.ID)
	if err != nil {
		t.Fatalf("round 1 mix: %v", err)
	}
	if len(mix1) != 4 {
		t.Fatalf("round 1 returned %d messages", len(mix1))
	}
	for _, m := range mix1 {
		if string(m)[:2] != "r1" {
			t.Fatalf("round 1 leaked message %q", m)
		}
	}
	// Mixing a consumed round is an error.
	if _, err := cli.Mix(t.Context(), r0.ID); err == nil {
		t.Fatal("re-mixing a finished round succeeded")
	}
}

func TestDaemonTypedErrorsOverWire(t *testing.T) {
	srv, cfg := startServer(t, atom.NIZK)
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	info, err := cli.Info(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 0, []byte("garbage")); !errors.Is(err, atom.ErrBadSubmission) {
		t.Fatalf("garbage submission: got %v, want ErrBadSubmission", err)
	}
	ac, _ := atom.NewClient(cfg)
	wire, err := ac.EncryptSubmission([]byte("dup"), info.EntryKeys[0], nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Submit(t.Context(), 1, wire); err != nil {
		t.Fatal(err)
	}
	err = cli.Submit(t.Context(), 2, wire)
	if !errors.Is(err, atom.ErrDuplicateSubmission) || !errors.Is(err, atom.ErrBadSubmission) {
		t.Fatalf("replay: got %v, want ErrDuplicateSubmission (and ErrBadSubmission)", err)
	}
}

// TestPersistenceErrorKindsRoundTrip pins the durable-state sentinels
// to the gob error envelope: what classify assigns on the server,
// unclassify must rebuild on the client as an errors.Is match.
func TestPersistenceErrorKindsRoundTrip(t *testing.T) {
	for _, sentinel := range []error{atom.ErrStateCorrupt, atom.ErrConfigMismatch} {
		wire := fmt.Errorf("daemon: refusing join: %w", sentinel)
		back := unclassify(classify(wire), wire.Error())
		if !errors.Is(back, sentinel) {
			t.Fatalf("wire roundtrip of %v rebuilt %v, losing the sentinel", sentinel, back)
		}
	}
}

func TestDaemonClientDeadline(t *testing.T) {
	// A request to a black-hole address must fail by the context
	// deadline instead of hanging (the old client hung forever on a
	// dead server when its fixed timeout was disabled).
	cli, err := Dial("127.0.0.1:1") // nothing listens here
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetTimeout(0) // disable the default bound; rely on ctx only
	ctx, cancel := context.WithTimeout(t.Context(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.Info(ctx)
	if err == nil {
		t.Fatal("Info against a dead server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline not honored: took %v", elapsed)
	}
}

// startServeServer builds a daemon with the continuous ingestion
// pipeline enabled.
func startServeServer(t *testing.T, variant atom.Variant, opts atom.ServeOptions) (*Server, atom.Config) {
	t.Helper()
	cfg := atom.Config{
		Servers:     12,
		Groups:      4,
		GroupSize:   3,
		MessageSize: 32,
		Variant:     variant,
		Iterations:  2,
		Seed:        []byte("daemon-serve-test"),
	}
	srv, err := NewServer("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.EnableService(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(func() { srv.Close() })
	return srv, cfg
}

// TestDaemonIngestDuplicateAcrossPipelinedRounds exercises the dedup
// policy through the wire path: the same ciphertext submitted twice
// into round r is rejected with ErrDuplicateSubmission, while the same
// bytes into round r+1 — opened while r mixes — are accepted once
// again: the duplicate filter is per round.
func TestDaemonIngestDuplicateAcrossPipelinedRounds(t *testing.T) {
	srv, cfg := startServeServer(t, atom.NIZK, atom.ServeOptions{
		RoundInterval: time.Hour, // sealing driven by MaxBatch only
		MaxBatch:      3,
		MaxInFlight:   2,
	})
	cli, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()

	info, err := cli.Info(ctx)
	if err != nil {
		t.Fatal(err)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ac.EncryptSubmission([]byte("wire replay"), info.EntryKeys[1], nil, 1)
	if err != nil {
		t.Fatal(err)
	}

	r1info, err := cli.ServeInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	admitted, err := cli.SubmitInto(ctx, r1info.ID, 1, wire)
	if err != nil || admitted != r1info.ID {
		t.Fatalf("first submission into round %d: admitted=%d err=%v", r1info.ID, admitted, err)
	}
	// Replay into the same round: typed rejection through the wire.
	if _, err := cli.SubmitInto(ctx, r1info.ID, 2, wire); !errors.Is(err, atom.ErrDuplicateSubmission) {
		t.Fatalf("replay into round %d: %v, want ErrDuplicateSubmission", r1info.ID, err)
	}

	// Fill round r so it seals and r+1 opens (r still mixing or queued).
	var fill [][]byte
	for i := 0; i < 2; i++ {
		fill = append(fill, []byte(fmt.Sprintf("filler %d", i)))
	}
	if _, err := SubmitBatch(ctx, ac, info, r1info, 10, fill, func(ctx context.Context, round uint64, user int, w []byte) error {
		_, serr := cli.SubmitInto(ctx, round, user, w)
		return serr
	}); err != nil {
		t.Fatalf("filling round %d: %v", r1info.ID, err)
	}
	var r2info *RoundInfo
	for deadline := time.Now().Add(10 * time.Second); ; {
		if r2info, err = cli.ServeInfo(ctx); err != nil {
			t.Fatal(err)
		}
		if r2info.ID != r1info.ID {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("round %d never sealed", r1info.ID)
		}
		time.Sleep(time.Millisecond)
	}

	// The same bytes into round r+1: accepted (dedup is per round).
	if _, err := cli.SubmitInto(ctx, r2info.ID, 3, wire); err != nil {
		t.Fatalf("replay into round %d: %v, want acceptance", r2info.ID, err)
	}
	// …and rejected again within r+1.
	if _, err := cli.SubmitInto(ctx, r2info.ID, 4, wire); !errors.Is(err, atom.ErrDuplicateSubmission) {
		t.Fatalf("second replay into round %d: %v, want ErrDuplicateSubmission", r2info.ID, err)
	}
	// Targeting the sealed round r fails typed over the wire.
	if _, err := cli.SubmitInto(ctx, r1info.ID, 5, wire); !errors.Is(err, atom.ErrRoundClosed) {
		t.Fatalf("submission into sealed round %d: %v, want ErrRoundClosed", r1info.ID, err)
	}

	// Fill round r+1 to its seal target so it publishes too.
	if _, err := SubmitBatch(ctx, ac, info, r2info, 20, [][]byte{[]byte("filler r2"), []byte("filler r2b")},
		func(ctx context.Context, round uint64, user int, w []byte) error {
			_, serr := cli.SubmitInto(ctx, round, user, w)
			return serr
		}); err != nil {
		t.Fatalf("filling round %d: %v", r2info.ID, err)
	}

	// Both rounds publish; the replayed plaintext appears in each —
	// accepted exactly once per round.
	for _, rid := range []uint64{r1info.ID, r2info.ID} {
		msgs, err := cli.Await(ctx, rid)
		if err != nil {
			t.Fatalf("await round %d: %v", rid, err)
		}
		if !containsMsg(msgs, "wire replay") {
			t.Errorf("round %d output %q misses the replayed plaintext", rid, msgs)
		}
	}
}

func containsMsg(msgs [][]byte, want string) bool {
	for _, m := range msgs {
		if string(m) == want {
			return true
		}
	}
	return false
}
