package daemon

import (
	"errors"
	"fmt"
	"testing"

	"atom"
)

// TestErrorKindRoundTrip drives every sentinel with a dedicated wire
// kind through the classification and back: the client-side rebuild
// must satisfy errors.Is for the same sentinel (and, via the sentinel
// wrapping, its taxonomy parents), so a daemon hop never downgrades a
// typed error to a bare string.
func TestErrorKindRoundTrip(t *testing.T) {
	sentinels := []error{
		atom.ErrBadSubmission,
		atom.ErrDuplicateSubmission,
		atom.ErrRoundClosed,
		atom.ErrRoundAborted,
		atom.ErrTrapTripped,
		atom.ErrProofRejected,
		atom.ErrRecoveryNeeded,
		atom.ErrVariantMismatch,
		atom.ErrNoSuchGroup,
		atom.ErrStateCorrupt,
		atom.ErrConfigMismatch,
		atom.ErrSetupFailed,
		atom.ErrDKGInsufficient,
	}
	for _, sentinel := range sentinels {
		wrapped := fmt.Errorf("%w: some detail", sentinel)
		kind := classify(wrapped)
		if kind == errGeneric || kind == errNone {
			t.Errorf("%v classified as generic/none", sentinel)
			continue
		}
		rebuilt := unclassify(kind, wrapped.Error())
		if !errors.Is(rebuilt, sentinel) {
			t.Errorf("unclassify(classify(%v)) = %v, loses the sentinel", sentinel, rebuilt)
		}
	}
	// ErrMemberLost has no dedicated kind; it must still cross the wire
	// as its typed ErrRoundAborted parent, never as a generic error.
	lost := fmt.Errorf("%w: server 7", atom.ErrMemberLost)
	rebuilt := unclassify(classify(lost), lost.Error())
	if !errors.Is(rebuilt, atom.ErrRoundAborted) {
		t.Errorf("member-lost error crossed the wire untyped: %v", rebuilt)
	}
}

// TestSetupErrorKindsSpecific pins the new setup kinds: the
// insufficient-participants case must keep its specific identity across
// the wire, not collapse into the generic setup failure.
func TestSetupErrorKindsSpecific(t *testing.T) {
	insufficient := fmt.Errorf("%w: 2 of 5 qualified", atom.ErrDKGInsufficient)
	if classify(insufficient) != errDKGInsufficient {
		t.Fatalf("ErrDKGInsufficient classified as %d", classify(insufficient))
	}
	rebuilt := unclassify(classify(insufficient), insufficient.Error())
	if !errors.Is(rebuilt, atom.ErrDKGInsufficient) || !errors.Is(rebuilt, atom.ErrSetupFailed) {
		t.Fatalf("rebuilt insufficient error %v loses its taxonomy branch", rebuilt)
	}

	setup := fmt.Errorf("%w: group 3 ceremony aborted", atom.ErrSetupFailed)
	if classify(setup) != errSetupFailed {
		t.Fatalf("ErrSetupFailed classified as %d", classify(setup))
	}
	rebuilt = unclassify(classify(setup), setup.Error())
	if !errors.Is(rebuilt, atom.ErrSetupFailed) || errors.Is(rebuilt, atom.ErrDKGInsufficient) {
		t.Fatalf("rebuilt setup error %v has the wrong specificity", rebuilt)
	}
}
