package daemon

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"atom"
	"atom/internal/ecc"
	"atom/internal/protocol"
)

// tamperProof decodes a wire submission, perturbs its admission proof,
// and re-encodes — a cryptographically invalid submission that still
// parses.
func tamperProof(t *testing.T, wire []byte) []byte {
	t.Helper()
	sub, err := protocol.DecodeSubmission(wire)
	if err != nil {
		t.Fatal(err)
	}
	sub.Proof.Resp[0] = sub.Proof.Resp[0].Add(ecc.NewScalar(1))
	return sub.Encode()
}

// TestFastPathAttribution drives the multiplexed binary submit path end
// to end: a pipelined batch carrying one tampered proof and one
// duplicate among valid submissions yields exactly the right typed
// rejection for each offender, admits the rest, and the admitted
// messages come out of the mix. Runs at 1 and 4 admission workers.
func TestFastPathAttribution(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const valid = 6
			srv, cfg := startServeServer(t, atom.NIZK, atom.ServeOptions{
				RoundInterval: time.Hour, // sealing driven by MaxBatch only
				MaxBatch:      valid,
				MaxInFlight:   2,
			})
			addr, err := srv.EnableFastPath("127.0.0.1:0", FastPathOptions{Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			cli, err := Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()
			info, err := cli.Info(t.Context())
			if err != nil {
				t.Fatal(err)
			}
			if info.SubmitAddr != addr {
				t.Fatalf("Info.SubmitAddr = %q, want %q", info.SubmitAddr, addr)
			}
			ac, err := atom.NewClient(cfg)
			if err != nil {
				t.Fatal(err)
			}

			want := map[string]bool{}
			wires := make([][]byte, 0, valid+2)
			for u := 0; u < valid; u++ {
				gid := u % info.Groups
				msg := fmt.Sprintf("fast path %d", u)
				want[msg] = true
				w, err := ac.EncryptSubmission([]byte(msg), info.EntryKeys[gid], nil, gid)
				if err != nil {
					t.Fatal(err)
				}
				wires = append(wires, w)
			}
			badW, err := ac.EncryptSubmission([]byte("tampered"), info.EntryKeys[0], nil, 0)
			if err != nil {
				t.Fatal(err)
			}
			badIdx := len(wires)
			wires = append(wires, tamperProof(t, badW))
			// Byte-identical replay of the first valid submission. With >1
			// admission worker the two copies may race, so exactly one of
			// the pair is admitted — not necessarily the first.
			dupIdx := len(wires)
			wires = append(wires, append([]byte(nil), wires[0]...))

			fast, err := DialFast(info.SubmitAddr)
			if err != nil {
				t.Fatal(err)
			}
			defer fast.Close()

			var wg sync.WaitGroup
			results := make([]error, len(wires))
			rounds := make([]uint64, len(wires))
			for i, w := range wires {
				wg.Add(1)
				i := i
				fast.Submit(0, i, w, func(round uint64, err error) {
					rounds[i], results[i] = round, err
					wg.Done()
				})
			}
			if err := fast.Flush(); err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(30 * time.Second):
				t.Fatal("acks never arrived")
			}

			if !errors.Is(results[badIdx], atom.ErrBadSubmission) || errors.Is(results[badIdx], atom.ErrDuplicateSubmission) {
				t.Errorf("tampered proof: got %v, want ErrBadSubmission (not duplicate)", results[badIdx])
			}
			dupErrs := 0
			for _, i := range []int{0, dupIdx} {
				if errors.Is(results[i], atom.ErrDuplicateSubmission) {
					dupErrs++
				} else if results[i] != nil {
					t.Errorf("replay pair submission %d: unexpected error %v", i, results[i])
				}
			}
			if dupErrs != 1 {
				t.Errorf("replay pair: %d duplicate rejections, want exactly 1", dupErrs)
			}
			var admittedRound uint64
			for i := 1; i < valid; i++ {
				if results[i] != nil {
					t.Errorf("valid submission %d rejected: %v", i, results[i])
					continue
				}
				if admittedRound == 0 {
					admittedRound = rounds[i]
				} else if rounds[i] != admittedRound {
					t.Errorf("submission %d admitted into round %d, others into %d", i, rounds[i], admittedRound)
				}
			}

			// MaxBatch admissions were reached, so the round seals and
			// mixes on its own; the admitted plaintexts must all surface.
			msgs, err := cli.Await(t.Context(), admittedRound)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) != valid {
				t.Fatalf("round %d published %d messages, want %d", admittedRound, len(msgs), valid)
			}
			for _, m := range msgs {
				if !want[string(m)] {
					t.Errorf("unexpected plaintext %q", m)
				}
			}
		})
	}
}

// TestFastPathInfo exercises the in-band info request and the rejection
// of submissions before the continuous service starts.
func TestFastPathInfo(t *testing.T) {
	srv, _ := startServeServer(t, atom.NIZK, atom.ServeOptions{
		RoundInterval: time.Hour,
		MaxBatch:      64,
	})
	addr, err := srv.EnableFastPath("127.0.0.1:0", FastPathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DialFast(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	ri, err := fast.ServeInfo(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if ri.ID == 0 {
		t.Fatalf("ServeInfo round = 0, want the open round")
	}
}

// TestFastPathNotServing verifies a fast-path submission into a daemon
// that never enabled the service fails typed instead of hanging.
func TestFastPathNotServing(t *testing.T) {
	srv, cfg := startServer(t, atom.NIZK)
	addr, err := srv.EnableFastPath("127.0.0.1:0", FastPathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ac, err := atom.NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	key, err := srv.Network().EntryKey(0)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := ac.EncryptSubmission([]byte("early bird"), key, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := DialFast(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer fast.Close()
	errCh := make(chan error, 1)
	fast.Submit(0, 1, wire, func(_ uint64, err error) { errCh <- err })
	if err := fast.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("submission admitted with no service running")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no verdict for a submission without a service")
	}
}
