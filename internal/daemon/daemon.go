// Package daemon serves an Atom deployment over TCP: remote clients
// fetch the round's public keys, perform all cryptography locally
// (padding, onion encryption, NIZKs, traps), and ship opaque wire
// submissions; an operator opens rounds, triggers mixing and reads
// anonymized results. cmd/atomd and cmd/atomclient are thin wrappers
// around this package.
//
// The RPC surface is round-aware and pipelined: OpenRound hands out a
// round id (plus that round's trustee key in the trap variant), Submit
// targets a specific round, and Mix runs asynchronously on the server —
// so clients can open round r+1 and submit into it while round r is
// still mixing. Every client method takes a context.Context whose
// deadline bounds the request round trip, so a dead server fails the
// call instead of hanging it. The legacy one-round-at-a-time calls
// (Submit/RunRound without a round id) remain for compatibility.
//
// The daemon hosts the full multi-group deployment in one process —
// the configuration the paper's single-machine experiments use. The
// wire protocol is the package's contribution; scaling the groups out
// across machines reuses the same transport.
package daemon

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"log"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atom"
	"atom/internal/transport"
)

// Message types of the daemon protocol.
const (
	msgInfo         = "info"
	msgInfoReply    = "info-reply"
	msgSubmit       = "submit"
	msgSubmitReply  = "submit-reply"
	msgRun          = "run"
	msgRunReply     = "run-reply"
	msgOpen         = "open"
	msgOpenReply    = "open-reply"
	msgRSubmit      = "submit-round"
	msgRSubmitReply = "submit-round-reply"
	msgMix          = "mix"
	msgMixReply     = "mix-reply"

	// Continuous-service (ingestion frontend) messages: clients fetch
	// the currently open round, submit into it, and await a round's
	// published result. Active only after EnableService.
	msgServeInfo   = "serve-info"
	msgServeReply  = "serve-info-reply"
	msgIngest      = "ingest"
	msgIngestReply = "ingest-reply"
	msgAwait       = "await"
	msgAwaitReply  = "await-reply"
)

// Info describes a deployment to clients.
type Info struct {
	Groups      int
	MessageSize int
	Trap        bool
	EntryKeys   [][]byte
	TrusteeKey  []byte
	// SubmitAddr is the binary fast-path listener's address, empty when
	// the daemon runs gob-only (see EnableFastPath).
	SubmitAddr string
}

// RoundInfo describes one opened round.
type RoundInfo struct {
	// ID is the server-assigned round id, passed to SubmitRound/Mix.
	ID uint64
	// TrusteeKey is the round's trustee public key (trap variant only);
	// submissions into this round must be encrypted against it.
	TrusteeKey []byte
}

// errorKind classifies server-side errors so clients can rebuild the
// atom error taxonomy across the wire (gob cannot ship error chains).
type errorKind int

const (
	errNone errorKind = iota
	errGeneric
	errBadSubmission
	errDuplicate
	errRoundClosed
	errRoundAborted
	errTrapTripped
	errProofRejected
	errRecoveryNeeded
	errVariantMismatch
	errNoSuchGroup
	errStateCorrupt
	errConfigMismatch
	errSetupFailed
	errDKGInsufficient
)

// classify maps an error to its wire kind.
func classify(err error) errorKind {
	if err == nil {
		return errNone
	}
	switch {
	case errors.Is(err, atom.ErrDuplicateSubmission):
		return errDuplicate
	case errors.Is(err, atom.ErrBadSubmission):
		return errBadSubmission
	case errors.Is(err, atom.ErrRoundClosed):
		return errRoundClosed
	case errors.Is(err, atom.ErrTrapTripped):
		return errTrapTripped
	case errors.Is(err, atom.ErrProofRejected):
		return errProofRejected
	case errors.Is(err, atom.ErrRecoveryNeeded):
		return errRecoveryNeeded
	case errors.Is(err, atom.ErrRoundAborted):
		return errRoundAborted
	case errors.Is(err, atom.ErrVariantMismatch):
		return errVariantMismatch
	case errors.Is(err, atom.ErrNoSuchGroup):
		return errNoSuchGroup
	case errors.Is(err, atom.ErrStateCorrupt):
		return errStateCorrupt
	case errors.Is(err, atom.ErrConfigMismatch):
		return errConfigMismatch
	case errors.Is(err, atom.ErrDKGInsufficient):
		// Before the ErrSetupFailed parent so the specific kind wins.
		return errDKGInsufficient
	case errors.Is(err, atom.ErrSetupFailed):
		return errSetupFailed
	default:
		return errGeneric
	}
}

// unclassify rebuilds a typed client-side error from the wire kind.
func unclassify(kind errorKind, msg string) error {
	msg = strings.TrimPrefix(msg, "daemon: ")
	wrap := func(sentinel error) error {
		// The server-side message usually begins with the sentinel's own
		// text; trim it so the rebuilt error reads once, not twice.
		trimmed := strings.TrimPrefix(strings.TrimPrefix(msg, sentinel.Error()), ": ")
		if trimmed == "" {
			return fmt.Errorf("%w (daemon)", sentinel)
		}
		return fmt.Errorf("%w: daemon: %s", sentinel, trimmed)
	}
	switch kind {
	case errDuplicate:
		return wrap(atom.ErrDuplicateSubmission)
	case errBadSubmission:
		return wrap(atom.ErrBadSubmission)
	case errRoundClosed:
		return wrap(atom.ErrRoundClosed)
	case errTrapTripped:
		return wrap(atom.ErrTrapTripped)
	case errProofRejected:
		return wrap(atom.ErrProofRejected)
	case errRecoveryNeeded:
		return wrap(atom.ErrRecoveryNeeded)
	case errRoundAborted:
		return wrap(atom.ErrRoundAborted)
	case errVariantMismatch:
		return wrap(atom.ErrVariantMismatch)
	case errNoSuchGroup:
		return wrap(atom.ErrNoSuchGroup)
	case errStateCorrupt:
		return wrap(atom.ErrStateCorrupt)
	case errConfigMismatch:
		return wrap(atom.ErrConfigMismatch)
	case errSetupFailed:
		return wrap(atom.ErrSetupFailed)
	case errDKGInsufficient:
		return wrap(atom.ErrDKGInsufficient)
	default:
		return fmt.Errorf("daemon: %s", msg)
	}
}

// reply is the generic response envelope.
type reply struct {
	OK        bool
	Error     string
	ErrorKind errorKind
	Info      *Info
	Round     *RoundInfo
	Messages  [][]byte
}

// gobBufs pools the scratch buffers the control RPCs encode through.
// The gob encoders themselves cannot be pooled — a gob.Encoder writes
// type descriptors once per stream, so reusing one across independent
// frames would emit frames the peer's fresh decoder cannot parse — but
// the buffer allocations can.
var gobBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// encodeFallbackLog reports an unencodable reply once per process: it is
// a programming error worth a log line, not one worth a log flood.
var encodeFallbackLog sync.Once

func encodeReply(r *reply) []byte {
	buf := gobBufs.Get().(*bytes.Buffer)
	buf.Reset()
	defer gobBufs.Put(buf)
	if err := gob.NewEncoder(buf).Encode(r); err != nil {
		// A reply that cannot be encoded is a programming error; log it
		// once and encode a plain failure instead of dropping the request.
		encodeFallbackLog.Do(func() {
			log.Printf("daemon: reply encoding failed (replying with a generic error): %v", err)
		})
		buf.Reset()
		_ = gob.NewEncoder(buf).Encode(&reply{Error: "internal encoding error"})
	}
	// The transport frame outlives the pooled buffer; copy out.
	return append([]byte(nil), buf.Bytes()...)
}

func decodeReply(b []byte) (*reply, error) {
	var r reply
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, fmt.Errorf("daemon: decoding reply: %w", err)
	}
	return &r, nil
}

// Server hosts a deployment behind a TCP endpoint.
type Server struct {
	node    *transport.TCPNode
	network *atom.Network
	cfg     atom.Config

	mu     sync.Mutex
	rounds map[uint64]*atom.Round

	// svc, when non-nil, is the continuous ingestion-and-mixing
	// pipeline the serve-mode messages target.
	svc atomic.Pointer[atom.Service]

	// fast, when non-nil, is the binary multiplexed ingestion listener
	// (see EnableFastPath).
	fast *fastPath

	mixes sync.WaitGroup
	done  chan struct{}
}

// NewServer builds the deployment and starts listening on addr
// (":0" for an ephemeral port).
func NewServer(addr string, cfg atom.Config) (*Server, error) {
	network, err := atom.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	return NewServerWith(addr, cfg, network)
}

// NewServerWith hosts an existing network — the crash-restart path,
// where the deployment was rebuilt from a state directory
// (atom.RestoreNetwork) instead of a fresh key generation.
func NewServerWith(addr string, cfg atom.Config, network *atom.Network) (*Server, error) {
	node, err := transport.ListenTCP(addr, 1024)
	if err != nil {
		return nil, err
	}
	return &Server{
		node:    node,
		network: network,
		cfg:     cfg,
		rounds:  make(map[uint64]*atom.Round),
		done:    make(chan struct{}),
	}, nil
}

// Addr returns the daemon's listen address.
func (s *Server) Addr() string { return s.node.Addr() }

// Network exposes the hosted deployment (e.g. to install an Observer).
func (s *Server) Network() *atom.Network { return s.network }

// EnableService starts the continuous ingestion-and-mixing pipeline
// (atom.Network.Serve) and activates the serve-mode wire surface:
// ServeInfo, SubmitInto and Await. The ctx is the pipeline's hard-stop
// switch; Close drains it gracefully.
func (s *Server) EnableService(ctx context.Context, opts atom.ServeOptions) error {
	svc, err := s.network.Serve(ctx, opts)
	if err != nil {
		return err
	}
	s.svc.Store(svc)
	return nil
}

// Service returns the continuous pipeline, nil before EnableService —
// e.g. for operators reading queue depths.
func (s *Server) Service() *atom.Service { return s.svc.Load() }

// Serve processes requests until Close. It is safe to run in a
// goroutine. Mix requests run asynchronously so the daemon keeps
// serving submissions into other rounds while one round mixes.
func (s *Server) Serve() {
	for msg := range s.node.Inbox() {
		if resp := s.handle(msg); resp != nil {
			resp.Round = msg.Round // echo the request id for demux
			_ = s.node.Send(msg.From, resp)
		}
	}
	s.mixes.Wait()
	close(s.done)
}

// handle services one request; a nil return means the handler replies
// asynchronously.
func (s *Server) handle(msg *transport.Message) *transport.Message {
	switch msg.Type {
	case msgInfo:
		info := &Info{
			Groups:      s.network.Groups(),
			MessageSize: s.cfg.MessageSize,
			Trap:        s.cfg.Variant == atom.Trap,
		}
		for gid := 0; gid < s.network.Groups(); gid++ {
			key, err := s.network.EntryKey(gid)
			if err != nil {
				return fail(msgInfoReply, err)
			}
			info.EntryKeys = append(info.EntryKeys, key)
		}
		if s.cfg.Variant == atom.Trap {
			key, err := s.network.TrusteeKey()
			if err != nil {
				return fail(msgInfoReply, err)
			}
			info.TrusteeKey = key
		}
		info.SubmitAddr = s.FastAddr()
		return &transport.Message{Type: msgInfoReply, Payload: encodeReply(&reply{OK: true, Info: info})}

	case msgOpen:
		round, err := s.network.OpenRound(context.Background())
		if err != nil {
			return fail(msgOpenReply, err)
		}
		ri := &RoundInfo{ID: round.ID()}
		if s.cfg.Variant == atom.Trap {
			if ri.TrusteeKey, err = round.TrusteeKey(); err != nil {
				return fail(msgOpenReply, err)
			}
		}
		s.mu.Lock()
		s.rounds[round.ID()] = round
		s.mu.Unlock()
		return &transport.Message{Type: msgOpenReply, Payload: encodeReply(&reply{OK: true, Round: ri})}

	case msgSubmit:
		if len(msg.Payload) < 8 {
			return fail(msgSubmitReply, fmt.Errorf("daemon: short submit payload"))
		}
		user := int(binary.BigEndian.Uint64(msg.Payload[:8]))
		if err := s.network.SubmitEncoded(user, msg.Payload[8:]); err != nil {
			return fail(msgSubmitReply, err)
		}
		return &transport.Message{Type: msgSubmitReply, Payload: encodeReply(&reply{OK: true})}

	case msgRSubmit:
		if len(msg.Payload) < 16 {
			return fail(msgRSubmitReply, fmt.Errorf("daemon: short submit payload"))
		}
		rid := binary.BigEndian.Uint64(msg.Payload[:8])
		user := int(binary.BigEndian.Uint64(msg.Payload[8:16]))
		round, err := s.round(rid)
		if err != nil {
			return fail(msgRSubmitReply, err)
		}
		if err := round.SubmitEncoded(user, msg.Payload[16:]); err != nil {
			return fail(msgRSubmitReply, err)
		}
		return &transport.Message{Type: msgRSubmitReply, Payload: encodeReply(&reply{OK: true})}

	case msgRun:
		// Legacy blocking round: handled inline, so it serializes the
		// inbox exactly as the one-round-at-a-time surface promises.
		res, err := s.network.Run()
		if err != nil {
			return fail(msgRunReply, err)
		}
		return &transport.Message{Type: msgRunReply, Payload: encodeReply(&reply{OK: true, Messages: res.Messages})}

	case msgMix:
		if len(msg.Payload) < 8 {
			return fail(msgMixReply, fmt.Errorf("daemon: short mix payload"))
		}
		rid := binary.BigEndian.Uint64(msg.Payload[:8])
		round, err := s.round(rid)
		if err != nil {
			return fail(msgMixReply, err)
		}
		from, seq := msg.From, msg.Round
		s.mixes.Add(1)
		go func() {
			defer s.mixes.Done()
			res, err := round.Mix(context.Background())
			s.mu.Lock()
			delete(s.rounds, rid)
			s.mu.Unlock()
			var resp *transport.Message
			if err != nil {
				resp = fail(msgMixReply, err)
			} else {
				resp = &transport.Message{Type: msgMixReply, Payload: encodeReply(&reply{OK: true, Messages: res.Messages})}
			}
			resp.Round = seq
			_ = s.node.Send(from, resp)
		}()
		return nil

	case msgServeInfo:
		svc := s.svc.Load()
		if svc == nil {
			return fail(msgServeReply, fmt.Errorf("daemon: not serving (no continuous service)"))
		}
		id, tkey, err := svc.Current()
		if err != nil {
			return fail(msgServeReply, err)
		}
		return &transport.Message{Type: msgServeReply, Payload: encodeReply(&reply{
			OK: true, Round: &RoundInfo{ID: id, TrusteeKey: tkey},
		})}

	case msgIngest:
		svc := s.svc.Load()
		if svc == nil {
			return fail(msgIngestReply, fmt.Errorf("daemon: not serving (no continuous service)"))
		}
		if len(msg.Payload) < 16 {
			return fail(msgIngestReply, fmt.Errorf("daemon: short ingest payload"))
		}
		rid := binary.BigEndian.Uint64(msg.Payload[:8])
		user := int(binary.BigEndian.Uint64(msg.Payload[8:16]))
		admitted, err := svc.SubmitEncoded(rid, user, msg.Payload[16:])
		if err != nil {
			return fail(msgIngestReply, err)
		}
		return &transport.Message{Type: msgIngestReply, Payload: encodeReply(&reply{
			OK: true, Round: &RoundInfo{ID: admitted},
		})}

	case msgAwait:
		svc := s.svc.Load()
		if svc == nil {
			return fail(msgAwaitReply, fmt.Errorf("daemon: not serving (no continuous service)"))
		}
		if len(msg.Payload) < 8 {
			return fail(msgAwaitReply, fmt.Errorf("daemon: short await payload"))
		}
		rid := binary.BigEndian.Uint64(msg.Payload[:8])
		from, seq := msg.From, msg.Round
		s.mixes.Add(1)
		go func() {
			defer s.mixes.Done()
			// The park is bounded server-side: a bogus or long-gone
			// round id must not pin a goroutine until shutdown (the
			// client's own deadline is usually far shorter anyway).
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
			defer cancel()
			out, err := svc.WaitRound(ctx, rid)
			var resp *transport.Message
			switch {
			case err != nil:
				resp = fail(msgAwaitReply, err)
			case out.Err != nil:
				resp = fail(msgAwaitReply, out.Err)
			default:
				resp = &transport.Message{Type: msgAwaitReply, Payload: encodeReply(&reply{OK: true, Messages: out.Messages})}
			}
			resp.Round = seq
			_ = s.node.Send(from, resp)
		}()
		return nil

	default:
		return fail(msg.Type+"-reply", fmt.Errorf("daemon: unknown request %q", msg.Type))
	}
}

func (s *Server) round(id uint64) (*atom.Round, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	round, ok := s.rounds[id]
	if !ok {
		// Matches the local taxonomy: a consumed or unknown round is
		// closed to further operations.
		return nil, fmt.Errorf("%w: no open round %d", atom.ErrRoundClosed, id)
	}
	return round, nil
}

func fail(typ string, err error) *transport.Message {
	return &transport.Message{Type: typ, Payload: encodeReply(&reply{Error: err.Error(), ErrorKind: classify(err)})}
}

// Close shuts the daemon down: the fast path stops accepting (its
// queued submissions flush), the continuous service (if enabled) drains
// gracefully, then the endpoint closes and in-flight mixes and awaits
// finish.
func (s *Server) Close() error {
	if s.fast != nil {
		s.fast.close()
	}
	if svc := s.svc.Load(); svc != nil {
		_ = svc.Close()
	}
	err := s.node.Close()
	<-s.done
	return err
}

// Client talks to a daemon. Each client owns its own TCP endpoint (the
// reply channel) and demultiplexes replies by request sequence number,
// so its methods are safe for concurrent use — submissions into round
// r+1 can be in flight while a Mix of round r is outstanding.
type Client struct {
	node   *transport.TCPNode
	server string
	// timeout bounds a request round trip when the context carries no
	// deadline of its own.
	timeout time.Duration

	seq atomic.Uint64

	mu      sync.Mutex
	waiters map[uint64]chan *transport.Message
	closed  bool
}

// Dial creates a client for the daemon at serverAddr.
func Dial(serverAddr string) (*Client, error) {
	node, err := transport.ListenTCP("127.0.0.1:0", 64)
	if err != nil {
		return nil, err
	}
	c := &Client{
		node:    node,
		server:  serverAddr,
		timeout: 30 * time.Second,
		waiters: make(map[uint64]chan *transport.Message),
	}
	go c.demux()
	return c, nil
}

// SetTimeout adjusts the default per-request bound applied when a
// context has no deadline.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Close releases the client's endpoint; outstanding requests fail.
func (c *Client) Close() error { return c.node.Close() }

// demux owns the inbox: it routes each reply to the waiter whose
// request sequence number it echoes. Stale replies (from requests whose
// context expired) are dropped.
func (c *Client) demux() {
	for msg := range c.node.Inbox() {
		c.mu.Lock()
		ch, ok := c.waiters[msg.Round]
		if ok {
			delete(c.waiters, msg.Round)
		}
		c.mu.Unlock()
		if ok {
			ch <- msg // buffered; never blocks
		}
	}
	// Endpoint closed: fail every outstanding waiter.
	c.mu.Lock()
	c.closed = true
	for seq, ch := range c.waiters {
		close(ch)
		delete(c.waiters, seq)
	}
	c.mu.Unlock()
}

// roundTrip sends req and waits for its reply, honoring the context's
// deadline (or the client's default timeout when the context has
// none) — a dead server fails the call instead of hanging it.
func (c *Client) roundTrip(ctx context.Context, req *transport.Message) (*reply, error) {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline && c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	seq := c.seq.Add(1)
	ch := make(chan *transport.Message, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("daemon: client closed")
	}
	c.waiters[seq] = ch
	c.mu.Unlock()
	abandon := func() {
		c.mu.Lock()
		delete(c.waiters, seq)
		c.mu.Unlock()
	}

	req.Round = seq
	if err := c.node.Send(c.server, req); err != nil {
		abandon()
		return nil, err
	}
	select {
	case msg, ok := <-ch:
		if !ok {
			return nil, fmt.Errorf("daemon: client closed")
		}
		r, err := decodeReply(msg.Payload)
		if err != nil {
			return nil, err
		}
		if r.Error != "" {
			return nil, unclassify(r.ErrorKind, r.Error)
		}
		return r, nil
	case <-ctx.Done():
		abandon()
		return nil, fmt.Errorf("daemon: %s request: %w", req.Type, ctx.Err())
	}
}

// Info fetches the deployment description.
func (c *Client) Info(ctx context.Context) (*Info, error) {
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgInfo})
	if err != nil {
		return nil, err
	}
	if r.Info == nil {
		return nil, fmt.Errorf("daemon: empty info reply")
	}
	return r.Info, nil
}

// OpenRound opens a new round on the daemon, returning its id and (in
// the trap variant) the round's trustee key. The round accepts
// submissions immediately — including while an earlier round mixes.
func (c *Client) OpenRound(ctx context.Context) (*RoundInfo, error) {
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgOpen})
	if err != nil {
		return nil, err
	}
	if r.Round == nil {
		return nil, fmt.Errorf("daemon: empty open reply")
	}
	return r.Round, nil
}

// Submit ships a wire-encoded submission for the given user into the
// daemon's current (legacy) round.
func (c *Client) Submit(ctx context.Context, user int, wire []byte) error {
	payload := make([]byte, 8+len(wire))
	binary.BigEndian.PutUint64(payload[:8], uint64(user))
	copy(payload[8:], wire)
	_, err := c.roundTrip(ctx, &transport.Message{Type: msgSubmit, Payload: payload})
	return err
}

// SubmitRound ships a wire-encoded submission into a specific open
// round. Safe for concurrent use.
func (c *Client) SubmitRound(ctx context.Context, round uint64, user int, wire []byte) error {
	payload := make([]byte, 16+len(wire))
	binary.BigEndian.PutUint64(payload[:8], round)
	binary.BigEndian.PutUint64(payload[8:16], uint64(user))
	copy(payload[16:], wire)
	_, err := c.roundTrip(ctx, &transport.Message{Type: msgRSubmit, Payload: payload})
	return err
}

// Mix seals and mixes the given round on the daemon, returning the
// anonymized messages. The server mixes asynchronously: other client
// calls (Info, OpenRound, SubmitRound into later rounds) proceed while
// a Mix is outstanding.
func (c *Client) Mix(ctx context.Context, round uint64) ([][]byte, error) {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, round)
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgMix, Payload: payload})
	if err != nil {
		return nil, err
	}
	return r.Messages, nil
}

// RunRound triggers a legacy blocking round and returns the anonymized
// messages.
func (c *Client) RunRound(ctx context.Context) ([][]byte, error) {
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgRun})
	if err != nil {
		return nil, err
	}
	return r.Messages, nil
}

// ServeInfo fetches the continuous service's currently open round: its
// id and, in the trap variant, its trustee key. Clients encrypt against
// that key and SubmitInto that round; when the round seals under them
// (ErrRoundClosed) they re-fetch and re-encrypt.
func (c *Client) ServeInfo(ctx context.Context) (*RoundInfo, error) {
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgServeInfo})
	if err != nil {
		return nil, err
	}
	if r.Round == nil {
		return nil, fmt.Errorf("daemon: empty serve-info reply")
	}
	return r.Round, nil
}

// SubmitInto ships a wire-encoded submission into the continuous
// service's open round. round 0 targets whichever round is open (NIZK
// encodings are round-independent); a nonzero round fails with
// ErrRoundClosed if that round already sealed. It returns the round
// that admitted the submission, for a later Await. Safe for concurrent
// use.
func (c *Client) SubmitInto(ctx context.Context, round uint64, user int, wire []byte) (uint64, error) {
	payload := make([]byte, 16+len(wire))
	binary.BigEndian.PutUint64(payload[:8], round)
	binary.BigEndian.PutUint64(payload[8:16], uint64(user))
	copy(payload[16:], wire)
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgIngest, Payload: payload})
	if err != nil {
		return 0, err
	}
	if r.Round == nil {
		return 0, fmt.Errorf("daemon: empty ingest reply")
	}
	return r.Round.ID, nil
}

// Await blocks until the continuous service publishes the given round,
// returning its anonymized messages (or its typed failure). The wait is
// bounded by ctx (or the client's default timeout).
func (c *Client) Await(ctx context.Context, round uint64) ([][]byte, error) {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, round)
	r, err := c.roundTrip(ctx, &transport.Message{Type: msgAwait, Payload: payload})
	if err != nil {
		return nil, err
	}
	return r.Messages, nil
}

// SubmitBatch encrypts msgs locally and ships them over one connection
// as users base, base+1, …, spreading them across entry groups — the
// batch-submission path cmd/atomclient's -count/-submit-file flags and
// the atomsim -serve fleet share. ri names the target round (and, trap
// variant, carries its trustee key); submit is the per-submission RPC —
// Client.SubmitInto for a continuous service, Client.SubmitRound for an
// explicitly opened round. It returns how many submissions were
// accepted; on the first failure it returns that error (an
// ErrRoundClosed mid-batch means the round sealed — re-fetch and retry
// the remainder).
func SubmitBatch(ctx context.Context, enc *atom.Client, info *Info, ri *RoundInfo, base int, msgs [][]byte,
	submit func(ctx context.Context, round uint64, user int, wire []byte) error) (int, error) {
	for i, m := range msgs {
		user := base + i
		gid := user % info.Groups
		wire, err := enc.EncryptSubmission(m, info.EntryKeys[gid], ri.TrusteeKey, gid)
		if err != nil {
			return i, err
		}
		if err := submit(ctx, ri.ID, user, wire); err != nil {
			return i, err
		}
	}
	return len(msgs), nil
}
