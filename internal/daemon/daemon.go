// Package daemon serves an Atom deployment over TCP: remote clients
// fetch the round's public keys, perform all cryptography locally
// (padding, onion encryption, NIZKs, traps), and ship opaque wire
// submissions; an operator triggers rounds and reads anonymized
// results. cmd/atomd and cmd/atomclient are thin wrappers around this
// package.
//
// The daemon hosts the full multi-group deployment in one process —
// the configuration the paper's single-machine experiments use. The
// wire protocol is the package's contribution; scaling the groups out
// across machines reuses the same transport.
package daemon

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sync"
	"time"

	"atom"
	"atom/internal/transport"
)

// Message types of the daemon protocol.
const (
	msgInfo        = "info"
	msgInfoReply   = "info-reply"
	msgSubmit      = "submit"
	msgSubmitReply = "submit-reply"
	msgRun         = "run"
	msgRunReply    = "run-reply"
)

// Info describes a deployment to clients.
type Info struct {
	Groups      int
	MessageSize int
	Trap        bool
	EntryKeys   [][]byte
	TrusteeKey  []byte
}

// reply is the generic response envelope.
type reply struct {
	OK       bool
	Error    string
	Info     *Info
	Messages [][]byte
}

func encodeReply(r *reply) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(r); err != nil {
		// A reply that cannot be encoded is a programming error; encode a
		// plain failure instead.
		buf.Reset()
		_ = gob.NewEncoder(&buf).Encode(&reply{Error: "internal encoding error"})
	}
	return buf.Bytes()
}

func decodeReply(b []byte) (*reply, error) {
	var r reply
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&r); err != nil {
		return nil, fmt.Errorf("daemon: decoding reply: %w", err)
	}
	return &r, nil
}

// Server hosts a deployment behind a TCP endpoint.
type Server struct {
	node    *transport.TCPNode
	network *atom.Network
	cfg     atom.Config

	mu   sync.Mutex
	done chan struct{}
}

// NewServer builds the deployment and starts listening on addr
// (":0" for an ephemeral port).
func NewServer(addr string, cfg atom.Config) (*Server, error) {
	network, err := atom.NewNetwork(cfg)
	if err != nil {
		return nil, err
	}
	node, err := transport.ListenTCP(addr, 1024)
	if err != nil {
		return nil, err
	}
	return &Server{node: node, network: network, cfg: cfg, done: make(chan struct{})}, nil
}

// Addr returns the daemon's listen address.
func (s *Server) Addr() string { return s.node.Addr() }

// Serve processes requests until Close. It is safe to run in a
// goroutine.
func (s *Server) Serve() {
	for msg := range s.node.Inbox() {
		resp := s.handle(msg)
		_ = s.node.Send(msg.From, resp)
	}
	close(s.done)
}

func (s *Server) handle(msg *transport.Message) *transport.Message {
	switch msg.Type {
	case msgInfo:
		info := &Info{
			Groups:      s.network.Groups(),
			MessageSize: s.cfg.MessageSize,
			Trap:        s.cfg.Variant == atom.Trap,
		}
		for gid := 0; gid < s.network.Groups(); gid++ {
			key, err := s.network.EntryKey(gid)
			if err != nil {
				return fail(msgInfoReply, err)
			}
			info.EntryKeys = append(info.EntryKeys, key)
		}
		if s.cfg.Variant == atom.Trap {
			key, err := s.network.TrusteeKey()
			if err != nil {
				return fail(msgInfoReply, err)
			}
			info.TrusteeKey = key
		}
		return &transport.Message{Type: msgInfoReply, Payload: encodeReply(&reply{OK: true, Info: info})}

	case msgSubmit:
		if len(msg.Payload) < 8 {
			return fail(msgSubmitReply, fmt.Errorf("daemon: short submit payload"))
		}
		user := int(binary.BigEndian.Uint64(msg.Payload[:8]))
		s.mu.Lock()
		err := s.network.SubmitEncoded(user, msg.Payload[8:])
		s.mu.Unlock()
		if err != nil {
			return fail(msgSubmitReply, err)
		}
		return &transport.Message{Type: msgSubmitReply, Payload: encodeReply(&reply{OK: true})}

	case msgRun:
		s.mu.Lock()
		res, err := s.network.Run()
		s.mu.Unlock()
		if err != nil {
			return fail(msgRunReply, err)
		}
		return &transport.Message{Type: msgRunReply, Payload: encodeReply(&reply{OK: true, Messages: res.Messages})}

	default:
		return fail(msg.Type+"-reply", fmt.Errorf("daemon: unknown request %q", msg.Type))
	}
}

func fail(typ string, err error) *transport.Message {
	return &transport.Message{Type: typ, Payload: encodeReply(&reply{Error: err.Error()})}
}

// Close shuts the daemon down.
func (s *Server) Close() error {
	err := s.node.Close()
	<-s.done
	return err
}

// Client talks to a daemon. Each client owns its own TCP endpoint (the
// reply channel).
type Client struct {
	node   *transport.TCPNode
	server string
	// timeout bounds each request round trip.
	timeout time.Duration
}

// Dial creates a client for the daemon at serverAddr.
func Dial(serverAddr string) (*Client, error) {
	node, err := transport.ListenTCP("127.0.0.1:0", 64)
	if err != nil {
		return nil, err
	}
	return &Client{node: node, server: serverAddr, timeout: 30 * time.Second}, nil
}

// Close releases the client's endpoint.
func (c *Client) Close() error { return c.node.Close() }

func (c *Client) roundTrip(req *transport.Message, wantType string) (*reply, error) {
	if err := c.node.Send(c.server, req); err != nil {
		return nil, err
	}
	timer := time.NewTimer(c.timeout)
	defer timer.Stop()
	for {
		select {
		case msg, ok := <-c.node.Inbox():
			if !ok {
				return nil, fmt.Errorf("daemon: client closed")
			}
			if msg.Type != wantType {
				continue // stale reply from an earlier timeout
			}
			r, err := decodeReply(msg.Payload)
			if err != nil {
				return nil, err
			}
			if r.Error != "" {
				return nil, fmt.Errorf("daemon: %s", r.Error)
			}
			return r, nil
		case <-timer.C:
			return nil, fmt.Errorf("daemon: timeout waiting for %s", wantType)
		}
	}
}

// Info fetches the deployment description.
func (c *Client) Info() (*Info, error) {
	r, err := c.roundTrip(&transport.Message{Type: msgInfo}, msgInfoReply)
	if err != nil {
		return nil, err
	}
	if r.Info == nil {
		return nil, fmt.Errorf("daemon: empty info reply")
	}
	return r.Info, nil
}

// Submit ships a wire-encoded submission for the given user.
func (c *Client) Submit(user int, wire []byte) error {
	payload := make([]byte, 8+len(wire))
	binary.BigEndian.PutUint64(payload[:8], uint64(user))
	copy(payload[8:], wire)
	_, err := c.roundTrip(&transport.Message{Type: msgSubmit, Payload: payload}, msgSubmitReply)
	return err
}

// RunRound triggers a mixing round and returns the anonymized messages.
func (c *Client) RunRound() ([][]byte, error) {
	r, err := c.roundTrip(&transport.Message{Type: msgRun}, msgRunReply)
	if err != nil {
		return nil, err
	}
	return r.Messages, nil
}
