package daemon

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// BenchmarkSubmitPath measures the fast-path framing hot loop: a client
// encoding a 64-submission pipelined frame, and the server parsing it
// with pooled buffers and zero-copy wire slices. Crypto is excluded —
// this is the per-frame overhead the binary protocol adds on top of
// admission, and CI budgets its allocs/op.
func BenchmarkSubmitPath(b *testing.B) {
	wire := bytes.Repeat([]byte{0xA7}, 600) // typical NIZK submission size
	const perFrame = 64
	fp := &fastPath{}
	fp.bufs.New = func() any { return &frameBuf{pool: &fp.bufs} }
	fc := &fastConn{fp: fp}
	var entries []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Client half: append pipelined entries and frame them.
		entries = entries[:0]
		for s := 0; s < perFrame; s++ {
			entries = binary.AppendUvarint(entries, uint64(i*perFrame+s+1))
			entries = binary.AppendUvarint(entries, uint64(s))
			entries = binary.AppendUvarint(entries, 0)
			entries = binary.AppendUvarint(entries, uint64(len(wire)))
			entries = append(entries, wire...)
		}
		// Server half: pooled frame buffer, zero-copy parse, refcounted
		// release as each submission finishes.
		fb := fp.bufs.Get().(*frameBuf)
		need := 1 + binary.MaxVarintLen64 + len(entries)
		if cap(fb.b) < need {
			fb.b = make([]byte, 0, need)
		}
		fb.b = append(fb.b[:0], fpTypeSubmit)
		fb.b = binary.AppendUvarint(fb.b, perFrame)
		fb.b = append(fb.b, entries...)
		subs, ok := fc.parseSubmit(fb, fb.b[1:])
		if !ok || len(subs) != perFrame {
			b.Fatal("frame did not parse")
		}
		fb.refs.Store(perFrame)
		for _, s := range subs {
			if len(s.wire) != len(wire) {
				b.Fatal("wire slice corrupted")
			}
			s.frame.release()
		}
	}
	b.SetBytes(int64(perFrame * len(wire)))
}
