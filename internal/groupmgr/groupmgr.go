// Package groupmgr forms and manages Atom's anytrust and many-trust
// server groups (paper §4.1, §4.5, §4.7 and Appendix B).
//
// Responsibilities:
//
//   - computing the minimum group size k such that every group contains
//     at least h honest servers except with probability < 2⁻λ, given the
//     adversarial fraction f and the number of groups G (Appendix B,
//     Figure 13);
//   - sampling the groups for a round from the public randomness beacon;
//   - staggering server positions across groups so servers stay busy
//     (§4.7: "server s is the first server in the first group, second
//     server in the second group, etc.");
//   - assigning buddy groups for fault recovery (§4.5).
package groupmgr

import (
	"fmt"
	"math"

	"atom/internal/beacon"
)

// DefaultSecurityBits is the paper's group-failure probability bound
// exponent: groups are sized so Pr[any group lacks h honest servers]
// < 2⁻⁶⁴ (§4.1).
const DefaultSecurityBits = 64

// MaxGroupSize bounds the group-size search; the paper's parameter
// ranges (f ≤ 0.3, h ≤ 20) stay well below it.
const MaxGroupSize = 4096

// logBinom returns ln C(k, i) via the log-gamma function.
func logBinom(k, i int) float64 {
	lg := func(n int) float64 {
		v, _ := math.Lgamma(float64(n + 1))
		return v
	}
	return lg(k) - lg(i) - lg(k-i)
}

// LogFailureProb returns log2 of the probability that one group of k
// servers drawn with adversarial fraction f contains fewer than h honest
// servers: Σ_{i=0}^{h-1} C(k,i)·(1−f)^i·f^{k−i}, computed in log space
// for numerical stability.
func LogFailureProb(k int, f float64, h int) float64 {
	if h < 1 || k < h {
		return 0 // probability 1
	}
	lnF := math.Log(f)
	lnHonest := math.Log(1 - f)
	// log-sum-exp over the h tail terms.
	maxLn := math.Inf(-1)
	terms := make([]float64, 0, h)
	for i := 0; i < h; i++ {
		ln := logBinom(k, i) + float64(i)*lnHonest + float64(k-i)*lnF
		terms = append(terms, ln)
		if ln > maxLn {
			maxLn = ln
		}
	}
	sum := 0.0
	for _, ln := range terms {
		sum += math.Exp(ln - maxLn)
	}
	return (maxLn + math.Log(sum)) / math.Ln2
}

// RequiredGroupSize returns the smallest k such that with G groups the
// union-bound failure probability G·Pr[one group bad] is below 2⁻bits
// (Appendix B). h is the number of honest servers required per group
// (h = 1 for plain anytrust; h−1 is the fault-tolerance budget).
func RequiredGroupSize(f float64, G, h, bits int) (int, error) {
	if f <= 0 || f >= 1 {
		return 0, fmt.Errorf("groupmgr: adversarial fraction %v out of (0,1)", f)
	}
	if G < 1 || h < 1 || bits < 1 {
		return 0, fmt.Errorf("groupmgr: invalid parameters G=%d h=%d bits=%d", G, h, bits)
	}
	logG := math.Log2(float64(G))
	for k := h; k <= MaxGroupSize; k++ {
		if logG+LogFailureProb(k, f, h) < -float64(bits) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("groupmgr: no group size ≤ %d meets 2^-%d for f=%v h=%d G=%d",
		MaxGroupSize, bits, f, h, G)
}

// RequiredGroupSizeFinite is the sampling-without-replacement variant of
// RequiredGroupSize: the adversary controls exactly ⌊f·N⌋ of N concrete
// servers and groups are drawn without replacement, so the per-group
// failure probability is a hypergeometric rather than binomial tail.
// This models a real deployment with a fixed server roster (the paper's
// 1,024-server evaluation) and yields slightly smaller k than the
// binomial bound for h > 1.
//
// Note on the paper's numbers: Appendix B's formula is the binomial
// union bound, which yields k = 32 for h = 1 (matching §4.1) but k = 35
// for h = 2, whereas §4.5 reports k ≥ 33; the finite-roster model closes
// most of that gap. EXPERIMENTS.md discusses the discrepancy.
func RequiredGroupSizeFinite(f float64, N, G, h, bits int) (int, error) {
	if f <= 0 || f >= 1 {
		return 0, fmt.Errorf("groupmgr: adversarial fraction %v out of (0,1)", f)
	}
	if N < 1 || G < 1 || h < 1 || bits < 1 {
		return 0, fmt.Errorf("groupmgr: invalid parameters N=%d G=%d h=%d bits=%d", N, G, h, bits)
	}
	m := int(f * float64(N)) // malicious servers
	logG := math.Log2(float64(G))
	for k := h; k <= N && k <= MaxGroupSize; k++ {
		if logG+logHypergeomTail(N, m, k, h) < -float64(bits) {
			return k, nil
		}
	}
	return 0, fmt.Errorf("groupmgr: no feasible group size for f=%v N=%d h=%d G=%d", f, N, h, G)
}

// logHypergeomTail returns log2 Pr[fewer than h honest servers in a
// group of k drawn without replacement from N servers of which m are
// malicious]: Σ_{i=0}^{h-1} C(N−m, i)·C(m, k−i) / C(N, k).
func logHypergeomTail(N, m, k, h int) float64 {
	honest := N - m
	lnC := func(n, r int) float64 {
		if r < 0 || r > n {
			return math.Inf(-1)
		}
		a, _ := math.Lgamma(float64(n + 1))
		b, _ := math.Lgamma(float64(r + 1))
		c, _ := math.Lgamma(float64(n - r + 1))
		return a - b - c
	}
	denom := lnC(N, k)
	maxLn := math.Inf(-1)
	terms := make([]float64, 0, h)
	for i := 0; i < h; i++ {
		ln := lnC(honest, i) + lnC(m, k-i) - denom
		terms = append(terms, ln)
		if ln > maxLn {
			maxLn = ln
		}
	}
	if math.IsInf(maxLn, -1) {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, ln := range terms {
		sum += math.Exp(ln - maxLn)
	}
	return (maxLn + math.Log(sum)) / math.Ln2
}

// Group is one anytrust (or many-trust) group for a round.
type Group struct {
	ID      int
	Members []int // server ids, in protocol order (stagger-rotated)
	Buddies []int // buddy group ids for share escrow (§4.5)
}

// Config parameterizes group formation for a round.
type Config struct {
	NumServers int     // N: servers available this round
	NumGroups  int     // G: groups to form
	GroupSize  int     // k: servers per group
	HonestMin  int     // h: honest servers required (threshold = k-(h-1))
	Fraction   float64 // f: assumed adversarial fraction (for records)
	BuddyCount int     // buddy groups per group (0 disables escrow)
}

// Threshold returns the number of members that must participate in a
// mixing step: k − (h − 1).
func (c Config) Threshold() int { return c.GroupSize - (c.HonestMin - 1) }

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	switch {
	case c.NumServers < 1:
		return fmt.Errorf("groupmgr: no servers")
	case c.GroupSize < 1 || c.GroupSize > c.NumServers:
		return fmt.Errorf("groupmgr: group size %d with %d servers", c.GroupSize, c.NumServers)
	case c.NumGroups < 1:
		return fmt.Errorf("groupmgr: no groups")
	case c.HonestMin < 1 || c.HonestMin > c.GroupSize:
		return fmt.Errorf("groupmgr: h=%d out of range for k=%d", c.HonestMin, c.GroupSize)
	case c.BuddyCount < 0 || (c.BuddyCount > 0 && c.NumGroups < 2):
		return fmt.Errorf("groupmgr: %d buddies with %d groups", c.BuddyCount, c.NumGroups)
	}
	return nil
}

// Form samples the round's groups from the beacon. Every group is a
// uniform sample of k distinct servers (servers may serve in multiple
// groups); member order is rotated by the group id to stagger positions
// (§4.7); and each group is assigned BuddyCount buddy groups.
//
// The sampling is deterministic given the beacon value and round, so
// every participant computes the identical group layout without
// communication. Any beacon.Source works — the deterministic hash
// chain or a verifiable threshold Chain; a source that has not yet
// produced the round returns an error rather than degenerate groups.
func Form(cfg Config, src beacon.Source, round uint64) ([]*Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	value := src.Round(round)
	if value == nil {
		return nil, fmt.Errorf("groupmgr: beacon has no output for round %d", round)
	}
	stream := beacon.StreamFrom(value, "group-formation")
	groups := make([]*Group, cfg.NumGroups)
	for gid := 0; gid < cfg.NumGroups; gid++ {
		// Sample k distinct servers via a partial Fisher–Yates over ids.
		members := sampleDistinct(stream, cfg.NumServers, cfg.GroupSize)
		// Stagger: rotate member order by gid so a server occupying
		// position p in one group tends to occupy p+1 in the next.
		rot := gid % cfg.GroupSize
		rotated := append(append([]int(nil), members[rot:]...), members[:rot]...)
		g := &Group{ID: gid, Members: rotated}
		for bIdx := 1; bIdx <= cfg.BuddyCount; bIdx++ {
			g.Buddies = append(g.Buddies, (gid+bIdx)%cfg.NumGroups)
		}
		groups[gid] = g
	}
	return groups, nil
}

// sampleDistinct draws k distinct values from [0, n) using the stream.
func sampleDistinct(s *beacon.Stream, n, k int) []int {
	// For small k relative to n, rejection sampling into a set is cheap;
	// for dense draws fall back to a partial shuffle.
	if k*4 < n {
		seen := make(map[int]bool, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := s.Intn(n)
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
		return out
	}
	perm := s.Perm(n)
	return perm[:k]
}

// PositionsOf returns, for each group, the position of the given server
// in that group (or -1), a helper for utilization accounting (§4.7).
func PositionsOf(groups []*Group, server int) []int {
	out := make([]int, len(groups))
	for i, g := range groups {
		out[i] = -1
		for pos, m := range g.Members {
			if m == server {
				out[i] = pos
				break
			}
		}
	}
	return out
}
