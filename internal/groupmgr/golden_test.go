package groupmgr

import (
	"reflect"
	"testing"

	"atom/internal/beacon"
)

// TestFormGoldenVector pins the exact group assignment for a fixed
// beacon seed and round. Group formation is consensus-critical: every
// participant derives the layout independently from the beacon output,
// so any drift in the sampling stream, the rotation, or the buddy
// assignment silently partitions the fleet. This vector freezes all
// three.
func TestFormGoldenVector(t *testing.T) {
	b := beacon.New([]byte("atom/golden/v1"))
	cfg := Config{NumServers: 16, NumGroups: 4, GroupSize: 4, HonestMin: 2, Fraction: 0.2, BuddyCount: 1}
	groups, err := Form(cfg, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []*Group{
		{ID: 0, Members: []int{7, 0, 12, 6}, Buddies: []int{1}},
		{ID: 1, Members: []int{1, 9, 7, 0}, Buddies: []int{2}},
		{ID: 2, Members: []int{14, 10, 4, 0}, Buddies: []int{3}},
		{ID: 3, Members: []int{10, 15, 4, 14}, Buddies: []int{0}},
	}
	if len(groups) != len(want) {
		t.Fatalf("%d groups, want %d", len(groups), len(want))
	}
	for i, g := range groups {
		if !reflect.DeepEqual(g, want[i]) {
			t.Errorf("group %d = %+v, want %+v", i, g, want[i])
		}
	}
}

// TestFormWeightedGoldenVector pins the weighted sampler on the same
// seed: the inverse-transform draw order is as consensus-critical as
// the uniform one.
func TestFormWeightedGoldenVector(t *testing.T) {
	b := beacon.New([]byte("atom/golden/v1"))
	cfg := Config{NumServers: 16, NumGroups: 4, GroupSize: 4, HonestMin: 2, Fraction: 0.2, BuddyCount: 1}
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = float64(1 + i%4)
	}
	groups, err := FormWeighted(cfg, weights, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{
		{14, 9, 11, 0},
		{5, 10, 15, 0},
		{7, 14, 6, 12},
		{13, 6, 7, 3},
	}
	for i, g := range groups {
		if !reflect.DeepEqual(g.Members, want[i]) {
			t.Errorf("weighted group %d members = %v, want %v", i, g.Members, want[i])
		}
	}
}

// TestFormPurposeSeparation checks the uniform and weighted samplers
// consume domain-separated streams: the same beacon value must not
// yield correlated draws across purposes.
func TestFormPurposeSeparation(t *testing.T) {
	b := beacon.New([]byte("atom/golden/v1"))
	cfg := Config{NumServers: 16, NumGroups: 4, GroupSize: 4, HonestMin: 2}
	uniform, err := Form(cfg, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	weights := make([]float64, 16)
	for i := range weights {
		weights[i] = 1
	}
	weighted, err := FormWeighted(cfg, weights, b, 3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range uniform {
		if !reflect.DeepEqual(uniform[i].Members, weighted[i].Members) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("uniform and weighted (equal-weight) draws identical: purpose separation lost")
	}
}
