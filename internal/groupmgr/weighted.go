package groupmgr

import (
	"fmt"
	"math"

	"atom/internal/beacon"
)

// Weighted (capacity-aware) group formation — the §7 "Load balancing"
// discussion: "it would be beneficial to have the more powerful servers
// appear in more groups. Such non-uniform assignments of servers to
// groups, however, could result in an adversary controlling a full Atom
// group." This file implements the weighted sampler and quantifies the
// security cost so deployments can make the §7 trade-off deliberately.

// FormWeighted samples groups like Form, but draws each member with
// probability proportional to its weight (e.g., core count or
// bandwidth). Members within one group remain distinct; servers with
// larger weights serve in more groups overall.
func FormWeighted(cfg Config, weights []float64, src beacon.Source, round uint64) ([]*Group, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(weights) != cfg.NumServers {
		return nil, fmt.Errorf("groupmgr: %d weights for %d servers", len(weights), cfg.NumServers)
	}
	total := 0.0
	for i, w := range weights {
		if w <= 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("groupmgr: invalid weight %v for server %d", w, i)
		}
		total += w
	}
	// Cumulative distribution for inverse-transform sampling.
	cum := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w
		cum[i] = acc / total
	}
	value := src.Round(round)
	if value == nil {
		return nil, fmt.Errorf("groupmgr: beacon has no output for round %d", round)
	}
	stream := beacon.StreamFrom(value, "group-formation-weighted")
	draw := func() int {
		// 53-bit uniform in [0,1).
		u := float64(stream.Intn(1<<31)) / float64(1<<31)
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < u {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return lo
	}
	groups := make([]*Group, cfg.NumGroups)
	for gid := 0; gid < cfg.NumGroups; gid++ {
		seen := make(map[int]bool, cfg.GroupSize)
		members := make([]int, 0, cfg.GroupSize)
		for len(members) < cfg.GroupSize {
			s := draw()
			if !seen[s] {
				seen[s] = true
				members = append(members, s)
			}
		}
		rot := gid % cfg.GroupSize
		rotated := append(append([]int(nil), members[rot:]...), members[:rot]...)
		g := &Group{ID: gid, Members: rotated}
		for bIdx := 1; bIdx <= cfg.BuddyCount; bIdx++ {
			g.Buddies = append(g.Buddies, (gid+bIdx)%cfg.NumGroups)
		}
		groups[gid] = g
	}
	return groups, nil
}

// WeightedFailureProb estimates, by Monte Carlo over the beacon stream,
// the probability that at least one of G weighted-sampled groups of
// size k consists entirely of adversarial servers, when the adversary
// controls the given member set. It makes the §7 warning concrete: an
// adversary that concentrates on high-weight servers gets a far larger
// slice of each group than its head-count fraction suggests.
func WeightedFailureProb(cfg Config, weights []float64, adversarial map[int]bool, trials int, src beacon.Source) (float64, error) {
	if trials < 1 {
		return 0, fmt.Errorf("groupmgr: need at least one trial")
	}
	bad := 0
	for trial := 0; trial < trials; trial++ {
		groups, err := FormWeighted(cfg, weights, src, uint64(trial))
		if err != nil {
			return 0, err
		}
		for _, g := range groups {
			allBad := true
			for _, m := range g.Members {
				if !adversarial[m] {
					allBad = false
					break
				}
			}
			if allBad {
				bad++
				break
			}
		}
	}
	return float64(bad) / float64(trials), nil
}
