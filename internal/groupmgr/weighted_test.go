package groupmgr

import (
	"testing"

	"atom/internal/beacon"
)

func TestFormWeightedBasics(t *testing.T) {
	cfg := Config{NumServers: 20, NumGroups: 8, GroupSize: 4, HonestMin: 1, BuddyCount: 1}
	weights := make([]float64, 20)
	for i := range weights {
		weights[i] = 1
	}
	b := beacon.New([]byte("weighted"))
	groups, err := FormWeighted(cfg, weights, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 8 {
		t.Fatalf("%d groups", len(groups))
	}
	for _, g := range groups {
		seen := map[int]bool{}
		for _, m := range g.Members {
			if m < 0 || m >= 20 || seen[m] {
				t.Fatalf("group %d has invalid/duplicate member %d", g.ID, m)
			}
			seen[m] = true
		}
	}
	// Determinism.
	again, _ := FormWeighted(cfg, weights, b, 1)
	for i := range groups {
		for j := range groups[i].Members {
			if groups[i].Members[j] != again[i].Members[j] {
				t.Fatal("weighted formation not deterministic")
			}
		}
	}
}

func TestFormWeightedRejectsBadWeights(t *testing.T) {
	cfg := Config{NumServers: 4, NumGroups: 2, GroupSize: 2, HonestMin: 1}
	b := beacon.New([]byte("w"))
	if _, err := FormWeighted(cfg, []float64{1, 1, 1}, b, 0); err == nil {
		t.Error("wrong weight count accepted")
	}
	if _, err := FormWeighted(cfg, []float64{1, 0, 1, 1}, b, 0); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := FormWeighted(cfg, []float64{1, -2, 1, 1}, b, 0); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestWeightedFavorsHeavyServers(t *testing.T) {
	// Server 0 has 20× the weight of everyone else: it must serve in far
	// more groups than an average server.
	const n = 40
	cfg := Config{NumServers: n, NumGroups: 64, GroupSize: 4, HonestMin: 1}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1
	}
	weights[0] = 20
	b := beacon.New([]byte("heavy"))
	groups, err := FormWeighted(cfg, weights, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	count := make([]int, n)
	for _, g := range groups {
		for _, m := range g.Members {
			count[m]++
		}
	}
	avg := float64(64*4) / n
	if float64(count[0]) < 3*avg {
		t.Errorf("heavy server appears in %d groups, average %.1f — weighting inert", count[0], avg)
	}
}

// TestWeightedLoadBalancingSecurityTradeoff quantifies §7's warning:
// with uniform sampling an adversary controlling 20%% of servers almost
// never owns a full group of 8, but if the deployment gives those same
// servers 10× weight (say, they offer the most bandwidth), all-bad
// groups become common. This is the measurement a deployment should
// look at before enabling FormWeighted.
func TestWeightedLoadBalancingSecurityTradeoff(t *testing.T) {
	const n = 50
	cfg := Config{NumServers: n, NumGroups: 16, GroupSize: 6, HonestMin: 1}
	adversarial := map[int]bool{}
	for i := 0; i < n/5; i++ { // 20% malicious
		adversarial[i] = true
	}
	uniform := make([]float64, n)
	skewed := make([]float64, n)
	for i := range uniform {
		uniform[i] = 1
		if adversarial[i] {
			skewed[i] = 10 // the adversary volunteers the beefy machines
		} else {
			skewed[i] = 1
		}
	}
	b := beacon.New([]byte("tradeoff"))
	const trials = 60
	pUniform, err := WeightedFailureProb(cfg, uniform, adversarial, trials, b)
	if err != nil {
		t.Fatal(err)
	}
	pSkewed, err := WeightedFailureProb(cfg, skewed, adversarial, trials, b)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform: Pr[one group all-bad] ≈ 16·0.2⁶ ≈ 10⁻³ — should be ~0 in
	// 60 trials. Skewed: drawing 6 adversaries without replacement from
	// weight mass 100-of-140 has probability ≈0.07 per group, so ≈0.68
	// per 16-group round — the hazard fires in most trials.
	if pUniform > 0.1 {
		t.Errorf("uniform sampling yielded all-bad groups at rate %.2f", pUniform)
	}
	if pSkewed < 0.5 {
		t.Errorf("skewed weighting yielded all-bad groups at rate %.2f; expected the §7 hazard to be visible", pSkewed)
	}
	t.Logf("all-bad-group probability: uniform %.3f vs 10×-weighted adversary %.3f", pUniform, pSkewed)
}
