package groupmgr

import (
	"math"
	"testing"

	"atom/internal/beacon"
)

// TestRequiredGroupSizePaperValues pins the group sizes the paper
// derives: k = 32 for f = 0.2, G = 1024, h = 1 (§4.1) and k = 33 for
// h = 2 (§4.5: "when h=2, f=20%, we need k ≥ 33").
func TestRequiredGroupSizePaperValues(t *testing.T) {
	k1, err := RequiredGroupSize(0.2, 1024, 1, DefaultSecurityBits)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != 32 {
		t.Errorf("h=1: k = %d, want 32", k1)
	}
	// For h = 2 the paper states k ≥ 33 (§4.5) but its own Appendix B
	// binomial union bound yields 35; we pin our formula's value and
	// check the finite-roster (hypergeometric) model lands in between.
	k2, err := RequiredGroupSize(0.2, 1024, 2, DefaultSecurityBits)
	if err != nil {
		t.Fatal(err)
	}
	if k2 != 35 {
		t.Errorf("h=2 binomial: k = %d, want 35", k2)
	}
	kf, err := RequiredGroupSizeFinite(0.2, 1024, 1024, 2, DefaultSecurityBits)
	if err != nil {
		t.Fatal(err)
	}
	if kf < 33 || kf > 35 {
		t.Errorf("h=2 finite-roster: k = %d, want within [33,35]", kf)
	}
	if kf > k2 {
		t.Errorf("finite-roster k=%d should not exceed binomial k=%d", kf, k2)
	}
}

func TestRequiredGroupSizeFiniteH1MatchesPaper(t *testing.T) {
	k, err := RequiredGroupSizeFinite(0.2, 1024, 1024, 1, DefaultSecurityBits)
	if err != nil {
		t.Fatal(err)
	}
	// Without replacement the failure probability only shrinks, so k ≤ 32;
	// it should stay close (within a couple of servers).
	if k > 32 || k < 29 {
		t.Errorf("finite-roster h=1: k = %d, want ≈32", k)
	}
}

func TestRequiredGroupSizeFiniteRejectsBadInput(t *testing.T) {
	if _, err := RequiredGroupSizeFinite(0, 1024, 1024, 1, 64); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := RequiredGroupSizeFinite(0.2, 0, 1024, 1, 64); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := RequiredGroupSizeFinite(0.9, 16, 1024, 8, 64); err == nil {
		t.Error("unsatisfiable parameters accepted")
	}
}

// TestFigure13Shape checks the Figure 13 curve: k grows with h, starting
// at 32 for h=1 and staying within the figure's plotted range (roughly
// 30–70 for h up to 20).
func TestFigure13Shape(t *testing.T) {
	prev := 0
	for h := 1; h <= 20; h++ {
		k, err := RequiredGroupSize(0.2, 1024, h, DefaultSecurityBits)
		if err != nil {
			t.Fatal(err)
		}
		if k < prev {
			t.Errorf("h=%d: k=%d decreased from %d", h, k, prev)
		}
		if k < 30 || k > 75 {
			t.Errorf("h=%d: k=%d outside Figure 13's plotted range", h, k)
		}
		prev = k
	}
}

func TestLogFailureProbSanity(t *testing.T) {
	// h=1: failure prob is exactly f^k, so log2 = k·log2(f).
	got := LogFailureProb(32, 0.2, 1)
	want := 32 * math.Log2(0.2)
	if math.Abs(got-want) > 1e-6 {
		t.Errorf("LogFailureProb(32, 0.2, 1) = %v, want %v", got, want)
	}
	// Larger h makes failure more likely (log prob increases).
	if LogFailureProb(32, 0.2, 2) <= LogFailureProb(32, 0.2, 1) {
		t.Error("failure probability should grow with h")
	}
	// Larger k makes failure less likely.
	if LogFailureProb(40, 0.2, 1) >= LogFailureProb(32, 0.2, 1) {
		t.Error("failure probability should shrink with k")
	}
}

func TestRequiredGroupSizeRejectsBadInput(t *testing.T) {
	if _, err := RequiredGroupSize(0, 1024, 1, 64); err == nil {
		t.Error("f=0 accepted")
	}
	if _, err := RequiredGroupSize(1.0, 1024, 1, 64); err == nil {
		t.Error("f=1 accepted")
	}
	if _, err := RequiredGroupSize(0.2, 0, 1, 64); err == nil {
		t.Error("G=0 accepted")
	}
	if _, err := RequiredGroupSize(0.999999, 4096, 1, 64); err == nil {
		t.Error("unsatisfiable f accepted")
	}
}

func testConfig() Config {
	return Config{
		NumServers: 64,
		NumGroups:  16,
		GroupSize:  8,
		HonestMin:  2,
		Fraction:   0.2,
		BuddyCount: 2,
	}
}

func TestFormDeterministicAndValid(t *testing.T) {
	cfg := testConfig()
	b := beacon.New([]byte("round seed"))
	g1, err := Form(cfg, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Form(cfg, b, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(g1) != cfg.NumGroups {
		t.Fatalf("formed %d groups, want %d", len(g1), cfg.NumGroups)
	}
	for i := range g1 {
		if g1[i].ID != i {
			t.Errorf("group %d has id %d", i, g1[i].ID)
		}
		if len(g1[i].Members) != cfg.GroupSize {
			t.Errorf("group %d has %d members", i, len(g1[i].Members))
		}
		// Determinism.
		for j := range g1[i].Members {
			if g1[i].Members[j] != g2[i].Members[j] {
				t.Fatalf("group formation is not deterministic")
			}
		}
		// Distinct members within a group.
		seen := map[int]bool{}
		for _, m := range g1[i].Members {
			if m < 0 || m >= cfg.NumServers || seen[m] {
				t.Fatalf("group %d has invalid/duplicate member %d", i, m)
			}
			seen[m] = true
		}
		// Buddies: correct count, never self.
		if len(g1[i].Buddies) != cfg.BuddyCount {
			t.Errorf("group %d has %d buddies", i, len(g1[i].Buddies))
		}
		for _, bg := range g1[i].Buddies {
			if bg == i || bg < 0 || bg >= cfg.NumGroups {
				t.Errorf("group %d has invalid buddy %d", i, bg)
			}
		}
	}
	// Different rounds give different layouts (overwhelmingly).
	g3, _ := Form(cfg, b, 6)
	same := true
	for i := range g1 {
		for j := range g1[i].Members {
			if g1[i].Members[j] != g3[i].Members[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("two different rounds produced identical groups")
	}
}

func TestFormStaggersPositions(t *testing.T) {
	// With rotation by gid, the member lists of consecutive groups should
	// not all start at index 0 of the sample — verify rotation varies.
	cfg := testConfig()
	cfg.NumGroups = cfg.GroupSize // one full rotation cycle
	b := beacon.New([]byte("stagger"))
	groups, err := Form(cfg, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The same server should appear at different positions across the
	// groups it belongs to, at least once.
	varied := false
	for srv := 0; srv < cfg.NumServers && !varied; srv++ {
		positions := PositionsOf(groups, srv)
		first := -1
		for _, p := range positions {
			if p == -1 {
				continue
			}
			if first == -1 {
				first = p
			} else if p != first {
				varied = true
				break
			}
		}
	}
	if !varied {
		t.Error("no server ever changed position across groups; staggering inert")
	}
}

func TestThreshold(t *testing.T) {
	cfg := testConfig() // k=8, h=2
	if got := cfg.Threshold(); got != 7 {
		t.Errorf("threshold = %d, want 7", got)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Config{
		{NumServers: 0, NumGroups: 1, GroupSize: 1, HonestMin: 1},
		{NumServers: 4, NumGroups: 1, GroupSize: 5, HonestMin: 1},
		{NumServers: 4, NumGroups: 0, GroupSize: 2, HonestMin: 1},
		{NumServers: 4, NumGroups: 2, GroupSize: 2, HonestMin: 3},
		{NumServers: 4, NumGroups: 1, GroupSize: 2, HonestMin: 1, BuddyCount: 1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
}
