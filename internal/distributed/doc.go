// Package distributed executes the complete Atom round — every group,
// all T mixing iterations of the permutation network, trap/exit
// handling and NIZK verification — as a true message-passing protocol:
// each group member is an independent actor owning only its own key
// share, exchanging framed batches over a transport.Endpoint. The same
// round runs unchanged over the in-memory network (with or without a
// WAN latency model) or over real TCP sockets, and produces exactly the
// plaintext set (and exactly the error taxonomy) of the in-process
// protocol.Deployment, because both paths execute the same
// protocol.MemberEngine for every cryptographic step.
//
// # Chain protocol
//
// Per group per iteration (Algorithm 1/2):
//
//	batch    sources → first member: inbound batches assemble; when the
//	         layer's last one lands, the shuffle chain starts — layers
//	         pipeline, a group shuffles iteration i+1 the moment its
//	         inputs arrive, even while its iteration-i output is still
//	         in later members' hands.
//	shuffle  member p → p+1: p's ShuffleStep; p+1 verifies the proof
//	         before shuffling the output itself.
//	divide   last member → first: the closing ShuffleStep; the first
//	         member verifies it, divides into β batches, and starts the
//	         re-encryption chain with its own step.
//	reenc    member p → p+1 (step K wraps to the first member): p's β
//	         ReEncSteps; the receiver verifies them before peeling its
//	         own layer. At step K the first member verifies the last
//	         member's proofs, clears the Y slots, and forwards each
//	         batch to its next-layer group (or the coordinator at the
//	         exit layer).
//
// Every proof is therefore verified exactly once by the next honest
// actor in the ring before anything builds on it — the serial-chain
// stand-in for the paper's "all servers in the group verify the proof".
// (A full deployment would broadcast each step to all k members and
// anchor chain continuity in the group's joint view; the ring
// verification here preserves the abort-and-blame behavior the rest of
// the system consumes.)
//
// # Churn tolerance (§4.5)
//
// The engine treats member failure as a first-class protocol event,
// with three layers of defense:
//
//   - Detection. Every actor heartbeats the coordinator
//     (Options.Heartbeat) with its last-known mixing position; the
//     Cluster's liveness tracker declares a member lost after
//     Options.LivenessTimeout of silence. A failed chain delivery
//     (transport.Unreachable) short-circuits that wait: the sending
//     member reports exactly which peer it could not reach. Losses are
//     typed — errors.Is(err, protocol.ErrMemberLost), with the member
//     attributed via *protocol.Loss — and are distinct from byzantine
//     blame (ErrProofRejected) and from caller cancellation.
//
//   - Degraded-mode re-planning. A group of k members mixes with a
//     chain of threshold = k−(h−1); the other h−1 are spares. When a
//     chain member is lost mid-round (or between rounds), the
//     coordinator marks it failed, recomputes every affected group's
//     active set (the same protocol.GroupState logic the in-process
//     path uses), re-provisions the fleet — spares get fresh actors,
//     survivors are reconfigured in place over the wire with new chain
//     order, entry table and Lagrange-weighted effective secrets — and
//     restarts the round from its sealed batches. StepTraces and
//     IterationStats record the reduced live membership.
//
//   - Wire recovery. Once a group drops below threshold the round
//     fails typed (ErrMemberLost + ErrRecoveryNeeded) and
//     Cluster.RecoverGroup drives §4.5 buddy-group recovery over the
//     transport: escrow pieces are solicited from a live buddy group's
//     actors (msgShareReq/msgShareResp), the lost share is
//     reconstructed and verified against the group's public Feldman
//     commitments, the replacement member is installed through the
//     same join path a remote host uses, and the next round delivers.
//
// A round that stalls without any of these firing (e.g. heartbeats
// disabled) ends in a *TimeoutError carrying every member's last-known
// progress, so the straggler is identifiable from the error alone.
package distributed
