package distributed

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/protocol"
	"atom/internal/topology"
	"atom/internal/transport"
)

// MemberID addresses one member: group id and the member's position
// within the group roster (its DVSS index − 1). The identity is stable
// across churn — a member keeps its MemberID whether it is currently in
// the group's active mixing chain or standing by as one of the h−1
// spares.
type MemberID struct {
	GID, Pos int
}

// AttachFunc provides an endpoint for a named node — how the cluster
// places its locally hosted actors (and its coordinator) on a
// transport.
type AttachFunc func(name string) (transport.Endpoint, error)

// MemAttach hosts actors on an in-memory network (optionally
// latency-modeled — the §6 emulated WAN).
func MemAttach(n *transport.MemNetwork) AttachFunc { return n.Attach }

// TCPAttach hosts each actor on its own TCP endpoint bound to an
// ephemeral port on host (e.g. "127.0.0.1" for a loopback deployment).
// The node name only labels logs; the address book uses the bound
// host:port.
func TCPAttach(host string) AttachFunc {
	return func(name string) (transport.Endpoint, error) {
		return transport.ListenTCP(host+":0", 4096)
	}
}

// Options tunes a Cluster.
type Options struct {
	// Prefix namespaces the cluster's node names (default "atom").
	Prefix string
	// Attach places locally hosted actors and the coordinator.
	Attach AttachFunc
	// Remote maps members to pre-started HostMember endpoints (e.g.
	// atomd -member processes); the cluster ships each its MemberConfig
	// over the transport instead of hosting it locally.
	Remote map[MemberID]string
	// Workers bounds each actor's crypto pool. Zero selects CPUs/G —
	// locally hosted groups share this machine, like MixConfig.
	Workers int
	// ChunkSize streams each group's re-encryption chain in chunks of
	// at most this many vectors per destination batch (see
	// MemberConfig.ChunkSize): downstream members verify chunk c while
	// upstream members are still proving chunk c+1, draining sealed
	// layers at admission speed instead of lock-stepping whole batches.
	// 0 forwards whole batches.
	ChunkSize int
	// RoundTimeout bounds one round's mixing (default 5m) in addition
	// to the caller's context. It spans churn restarts: a round that
	// keeps losing members does not get a fresh budget per restart.
	RoundTimeout time.Duration
	// JoinTimeout bounds each remote member's setup (default 30s).
	JoinTimeout time.Duration
	// Heartbeat is the members' liveness-beacon period (default 500ms;
	// negative disables heartbeats, leaving failed-delivery reports as
	// the only churn detector).
	Heartbeat time.Duration
	// LivenessTimeout is how long a member may stay silent before the
	// coordinator declares it lost (default 4×Heartbeat). Keep it a
	// few beacon periods wide: heartbeats ride the same links as
	// batches, so a too-tight bound turns WAN jitter into churn.
	LivenessTimeout time.Duration
	// ControlTimeout bounds the cluster's control-plane traffic —
	// cancel fan-outs, stop notifications, reconfiguration acks and
	// escrow solicitation (default 2s).
	ControlTimeout time.Duration
	// MaxRestarts caps how many times one round may re-plan and restart
	// after member losses before giving up (default 8).
	MaxRestarts int
	// MaxInFlight bounds how many rounds may mix over the cluster
	// concurrently — the §4.7 cross-round pipelining: round r+1's
	// layer-0 batches enter the actors while round r traverses later
	// layers, because each actor interleaves rounds message by message.
	// Default 1 (lock-step); capped at maxPipelinedRounds so a live
	// round's actor state can never age out of the members' pruning
	// window. A churn re-plan aborts and restarts every in-flight round
	// from its sealed batches, so a loss during round r never corrupts
	// round r+1.
	MaxInFlight int
	// RestartGrace, when positive, separates "restarting, state
	// intact" from "lost": a member that goes silent (or unreachable)
	// mid-round gets this long to come back — a crash-restarted atomd
	// replaying its -state-dir resumes heartbeating under its old
	// identity at its old address — before the coordinator burns h−1
	// budget on a re-plan. A member that returns within the grace
	// restarts the round attempt with the fleet unchanged: no re-plan,
	// no buddy recovery, no key material spent. Zero (the default)
	// disables the grace and keeps the PR 4 behavior: every silence is
	// a loss. Requires heartbeats — a rejoin is only observable as the
	// restarted member's resumed beacon.
	RestartGrace time.Duration
	// ConfigHash is the canonical group-config hash
	// (store.GroupConfig.Hash) stamped into every member's provisioning
	// config. Hosts started with their own hash (atomd -config) refuse
	// joins carrying a different one, and the cluster treats such a
	// refusal as a terminal protocol.ErrConfigMismatch, not churn.
	ConfigHash []byte
	// Log, when non-nil, receives operator-grade churn events
	// (detections, re-plans, recoveries). Printf-shaped.
	Log func(format string, args ...any)
}

// ClusterStats counts the cluster's churn-handling activity since
// construction — the observability surface fault-injection tests assert
// against: a crash-restart with state intact must show up as a rejoin
// with zero re-plans and zero recoveries.
type ClusterStats struct {
	// Rejoins counts members re-admitted within Options.RestartGrace
	// after a silence — restarts with state intact.
	Rejoins uint64
	// Replans counts fleet re-plans: losses that burned h−1 budget and
	// re-chained groups over survivors.
	Replans uint64
	// Recoveries counts completed §4.5 buddy-group share recoveries.
	Recoveries uint64
	// SharesSolicited counts lost shares reconstructed from buddy
	// escrow pieces over the wire.
	SharesSolicited uint64
}

// localActor is one locally hosted member: its actor loop, endpoint,
// and the cancel that tears only this member down.
type localActor struct {
	actor  *Actor
	ep     transport.Endpoint
	cancel context.CancelFunc
}

// memberProgress is the liveness tracker's per-member record: when the
// member was last heard from and where it said it was.
type memberProgress struct {
	Seen  time.Time
	Round uint64 // wire round (round<<8 | attempt)
	Layer int
	Phase string
}

// liveness tracks the last heartbeat (and self-reported progress) of
// every provisioned member. The pump goroutine writes it; the mixing
// loop and operators read it.
type liveness struct {
	mu sync.Mutex
	m  map[MemberID]memberProgress
}

func newLiveness() *liveness { return &liveness{m: make(map[MemberID]memberProgress)} }

func (l *liveness) reset(id MemberID, now time.Time) {
	l.mu.Lock()
	l.m[id] = memberProgress{Seen: now, Phase: "provisioned"}
	l.mu.Unlock()
}

func (l *liveness) observe(id MemberID, round uint64, layer int, phase string) {
	l.mu.Lock()
	l.m[id] = memberProgress{Seen: time.Now(), Round: round, Layer: layer, Phase: phase}
	l.mu.Unlock()
}

func (l *liveness) forget(id MemberID) {
	l.mu.Lock()
	delete(l.m, id)
	l.mu.Unlock()
}

// expired returns the members silent for longer than timeout.
func (l *liveness) expired(timeout time.Duration) []MemberID {
	now := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []MemberID
	for id, p := range l.m {
		if now.Sub(p.Seen) > timeout {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].GID != out[j].GID {
			return out[i].GID < out[j].GID
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

func (l *liveness) snapshot() map[MemberID]memberProgress {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[MemberID]memberProgress, len(l.m))
	for id, p := range l.m {
		out[id] = p
	}
	return out
}

// MemberProgress is one member's last-known state, as carried by
// heartbeats — embedded in TimeoutError so a stalled round names where
// every member was instead of timing out anonymously.
type MemberProgress struct {
	ID    MemberID
	Round uint64
	Layer int
	Phase string
	// Age is how long ago the member was last heard from.
	Age time.Duration
}

// TimeoutError is a round that exhausted Options.RoundTimeout. Unlike a
// context cancellation (the caller gave up) or an abort (a member
// reported a failure), a timeout means the round silently stalled — the
// per-member progress identifies the straggler.
type TimeoutError struct {
	Round    uint64
	After    time.Duration
	Progress []MemberProgress
}

func (e *TimeoutError) Error() string {
	s := fmt.Sprintf("distributed: round %d timed out after %v; last known member progress:", e.Round, e.After)
	if len(e.Progress) == 0 {
		s += " (none)"
	}
	for _, p := range e.Progress {
		s += fmt.Sprintf(" g%d/m%d %s L%d (%s ago);", p.ID.GID, p.ID.Pos, p.Phase, p.Layer, p.Age.Round(time.Millisecond))
	}
	return s
}

// Cluster is the distributed round engine: one actor per active group
// member (hosted locally or adopted remotely), a coordinator endpoint
// that injects sealed batches and collects exits, and an implementation
// of protocol.Mixer, so Deployment.RunRoundVia runs the identical round
// lifecycle — sealing, finale, blame records, rotation — over it.
//
// The cluster is churn-tolerant end to end: members heartbeat the
// coordinator, a silent or unreachable member is detected within
// Options.LivenessTimeout and reported as a typed protocol.Loss
// (errors.Is(err, protocol.ErrMemberLost)); while the group still has
// spare members within its h−1 budget the coordinator re-plans the
// mixing chain over the survivors and restarts the round from its
// sealed batches, and once a group falls below threshold RecoverGroup
// drives §4.5 buddy-group share recovery over the wire.
type Cluster struct {
	d    *protocol.Deployment
	topo topology.Topology

	coord transport.Endpoint
	opts  Options
	live  *liveness

	// mu guards the provisioning state: which members exist, where they
	// are, and how each group's active chain is ordered.
	mu       sync.Mutex
	actors   map[MemberID]*localActor
	addrs    map[MemberID]string
	memberOf map[string]MemberID
	chains   [][]int  // gid → member positions (0-based), chain order
	entry    []string // gid → first chain member's address
	// restarts records each known member's last crash-restart
	// announcement (the unsolicited rejoin greeting a resumed host
	// sends). A member can restart so fast it never misses a liveness
	// beat — yet its in-flight round state died with the old process, so
	// any attempt older than the announcement would stall forever.
	// attemptRound checks this on every liveness tick.
	restarts map[MemberID]time.Time

	// The pump goroutine owns the coordinator inbox and routes traffic:
	// heartbeats to the liveness tracker, join/reconfig acks to joinCh,
	// escrow pieces to the registered share channel, and round traffic to
	// the per-round channel registered by each in-flight MixRound (keyed
	// by the base round id — the attempt counter in the low wire byte is
	// filtered downstream).
	joinCh       chan *transport.Message
	roundMu      sync.Mutex
	rounds       map[uint64]chan *transport.Message
	roundsClosed bool
	shareMu      sync.Mutex
	shareCh      chan *transport.Message

	// sem bounds the in-flight rounds at Options.MaxInFlight.
	sem chan struct{}

	// epochMu serializes churn re-planning (and all provisioning). Each
	// re-plan — failing the lost members, re-chaining the survivors,
	// reconfiguring every actor — bumps epoch and closes epochCh, telling
	// every in-flight round attempt that its wiring snapshot is stale:
	// the attempt cancels its wire traffic and restarts from its sealed
	// batches against the new plan. That is the cross-round isolation
	// contract: a loss detected by round r restarts r AND r+1, rather
	// than r+1 silently mixing over a half-reconfigured fleet.
	epochMu sync.Mutex
	epoch   uint64
	epochCh chan struct{}

	// Churn-activity counters (Stats).
	rejoins         atomic.Uint64
	replans         atomic.Uint64
	recoveries      atomic.Uint64
	sharesSolicited atomic.Uint64

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// Stats returns the cluster's churn-activity counters.
func (c *Cluster) Stats() ClusterStats {
	return ClusterStats{
		Rejoins:         c.rejoins.Load(),
		Replans:         c.replans.Load(),
		Recoveries:      c.recoveries.Load(),
		SharesSolicited: c.sharesSolicited.Load(),
	}
}

// NewCluster builds the full network of member actors for the
// deployment: it exports each group's active roster (playing the DKG
// ceremony that would otherwise have provisioned each server), attaches
// one endpoint per locally hosted member, ships MemberConfigs to remote
// hosts, and starts the local actor loops and the coordinator pump.
func NewCluster(d *protocol.Deployment, opts Options) (*Cluster, error) {
	if opts.Attach == nil {
		return nil, fmt.Errorf("distributed: Options.Attach is required")
	}
	if opts.Prefix == "" {
		opts.Prefix = "atom"
	}
	if opts.RoundTimeout <= 0 {
		opts.RoundTimeout = 5 * time.Minute
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = 30 * time.Second
	}
	if opts.Heartbeat == 0 {
		opts.Heartbeat = 500 * time.Millisecond
	}
	if opts.Heartbeat < 0 {
		opts.Heartbeat = 0 // disabled
	}
	if opts.LivenessTimeout <= 0 {
		opts.LivenessTimeout = 4 * opts.Heartbeat
	}
	if opts.ControlTimeout <= 0 {
		opts.ControlTimeout = 2 * time.Second
	}
	if opts.MaxRestarts <= 0 {
		opts.MaxRestarts = 8
	}
	if opts.MaxInFlight < 1 {
		opts.MaxInFlight = 1
	}
	if opts.MaxInFlight > maxPipelinedRounds {
		opts.MaxInFlight = maxPipelinedRounds
	}
	topo := d.Topology()
	G := topo.Groups()
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0) / G
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}

	c := &Cluster{
		d:        d,
		topo:     topo,
		opts:     opts,
		live:     newLiveness(),
		actors:   make(map[MemberID]*localActor),
		addrs:    make(map[MemberID]string),
		memberOf: make(map[string]MemberID),
		chains:   make([][]int, G),
		entry:    make([]string, G),
		restarts: make(map[MemberID]time.Time),
		rounds:   make(map[uint64]chan *transport.Message),
		joinCh:   make(chan *transport.Message, 64),
		sem:      make(chan struct{}, opts.MaxInFlight),
		epochCh:  make(chan struct{}),
	}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	coord, err := opts.Attach(opts.Prefix + "/coord")
	if err != nil {
		return nil, err
	}
	c.coord = coord
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.wg.Add(1)
	go c.pump()

	if _, err := c.provision(context.Background(), true); err != nil {
		return nil, err
	}
	ok = true
	return c, nil
}

// logf reports an operator event through Options.Log, if installed.
func (c *Cluster) logf(format string, args ...any) {
	if c.opts.Log != nil {
		c.opts.Log(format, args...)
	}
}

// pump owns the coordinator inbox for the cluster's lifetime, so
// liveness beacons are processed even while no round is mixing. Round
// traffic is routed by base round id to whichever in-flight MixRound
// registered for it; strays from canceled attempts, finished rounds or
// unknown rounds are dropped here or by the wire-round filter
// downstream.
func (c *Cluster) pump() {
	defer c.wg.Done()
	defer c.closeRounds()
	for msg := range c.coord.Inbox() {
		switch msg.Type {
		case msgHeartbeat:
			gid, member, round, layer, phase, err := decodeHeartbeatMsg(msg.Payload)
			if err != nil {
				continue
			}
			c.mu.Lock()
			id, known := c.memberOf[msg.From]
			c.mu.Unlock()
			// Only the member's own endpoint may refresh its liveness —
			// a forged beacon must not keep a dead member "alive".
			if !known || id.GID != gid || id.Pos != member-1 {
				continue
			}
			c.live.observe(id, round, layer, phase)
		case msgJoined:
			if _, reason := decodeJoinAck(msg.Payload); reason == joinAckRejoin {
				// A resumed host's unsolicited greeting: its state is
				// intact but its in-flight round state is gone. Stamp the
				// restart so attempts older than it replay instead of
				// stalling — the member may come back faster than the
				// liveness timeout and never look lost at all.
				c.mu.Lock()
				if id, known := c.memberOf[msg.From]; known {
					c.restarts[id] = time.Now()
					c.mu.Unlock()
					c.logf("distributed: g%d/m%d at %s announced a crash-restart (state intact)", id.GID, id.Pos, msg.From)
				} else {
					c.mu.Unlock()
				}
			}
			select {
			case c.joinCh <- msg:
			default:
			}
		case msgShareResp:
			c.shareMu.Lock()
			ch := c.shareCh
			c.shareMu.Unlock()
			if ch != nil {
				select {
				case ch <- msg:
				default:
				}
			}
		default:
			c.roundMu.Lock()
			ch := c.rounds[msg.Round>>8]
			c.roundMu.Unlock()
			if ch != nil {
				select {
				case ch <- msg:
				default:
					// Overflow cannot happen in a healthy round (the
					// coordinator sees only per-layer reports and exit
					// batches); dropping under pathology keeps the pump
					// live and surfaces as a diagnosable timeout.
				}
			}
		}
	}
}

// registerRound claims the per-round inbox one MixRound call consumes.
func (c *Cluster) registerRound(round uint64) (chan *transport.Message, error) {
	c.roundMu.Lock()
	defer c.roundMu.Unlock()
	if c.roundsClosed {
		return nil, fmt.Errorf("distributed: coordinator closed")
	}
	if _, dup := c.rounds[round]; dup {
		return nil, fmt.Errorf("distributed: round %d is already mixing", round)
	}
	ch := make(chan *transport.Message, 1024)
	c.rounds[round] = ch
	return ch, nil
}

// unregisterRound drops a finished round's inbox. The channel is not
// closed — the pump may still hold a reference for a final non-blocking
// send; unrouted leftovers are garbage-collected with it.
func (c *Cluster) unregisterRound(round uint64) {
	c.roundMu.Lock()
	delete(c.rounds, round)
	c.roundMu.Unlock()
}

// closeRounds fails every in-flight round when the coordinator endpoint
// closes; the pump is the only sender, so closing behind it is safe.
func (c *Cluster) closeRounds() {
	c.roundMu.Lock()
	c.roundsClosed = true
	for round, ch := range c.rounds {
		close(ch)
		delete(c.rounds, round)
	}
	c.roundMu.Unlock()
}

// attachFresh attaches a local endpoint, retrying with a suffixed name
// if a previous incarnation of the node still holds it (an in-memory
// network frees a name only when the endpoint closes).
func (c *Cluster) attachFresh(name string) (transport.Endpoint, error) {
	ep, err := c.opts.Attach(name)
	for retry := 2; err != nil && retry <= 4; retry++ {
		ep, err = c.opts.Attach(fmt.Sprintf("%s~%d", name, retry))
	}
	return ep, err
}

// provision synchronizes the actor fleet with the deployment's current
// active sets: it computes every group's chain from its roster,
// attaches endpoints and starts actors for newly activated members
// (spares entering a chain, recovered replacements), joins remote ones,
// and reconfigures every existing chain member in place — new chain
// order, entry table and Lagrange-weighted effective secret. It returns
// the members that failed to acknowledge within the deadline (so churn
// during a re-plan feeds back into the loss loop) — except on the
// initial provisioning (fresh), where a missing member is fatal.
func (c *Cluster) provision(ctx context.Context, fresh bool) ([]MemberID, error) {
	G := c.topo.Groups()
	cfg := c.d.Config()
	spec := TopoSpec{Name: cfg.Topology, Groups: G, Iterations: cfg.Iterations, Reps: cfg.ButterflyReps}

	rosters := make([]*protocol.GroupRoster, G)
	groupPKs := make([]*ecc.Point, G)
	for gid := 0; gid < G; gid++ {
		r, err := c.d.GroupRoster(gid)
		if err != nil {
			return nil, err
		}
		rosters[gid] = r
		groupPKs[gid] = r.PK
	}

	c.mu.Lock()
	chains := make([][]int, G)
	var fleet []MemberID     // every chain member, all groups
	var newcomers []MemberID // members with no endpoint yet
	for gid, r := range rosters {
		for _, idx := range r.Indices {
			id := MemberID{GID: gid, Pos: idx - 1}
			chains[gid] = append(chains[gid], idx-1)
			fleet = append(fleet, id)
			if _, have := c.addrs[id]; !have {
				newcomers = append(newcomers, id)
			}
		}
	}
	// Place newcomers: a pre-started remote host if configured, a fresh
	// local endpoint otherwise. If provisioning exits before a newcomer
	// endpoint gains an actor loop — an error, or a lost member cutting
	// the pass short — the ownerless endpoints must not leak (or worse,
	// linger in the address book as members that can never ack): close
	// and unlearn them, so a follow-up pass re-attaches from scratch.
	newLocal := make(map[MemberID]transport.Endpoint)
	defer func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		for id, ep := range newLocal {
			if _, owned := c.actors[id]; owned {
				continue
			}
			_ = ep.Close()
			if addr, ok := c.addrs[id]; ok && addr == ep.Addr() {
				delete(c.addrs, id)
				delete(c.memberOf, addr)
			}
		}
	}()
	for _, id := range newcomers {
		if addr, remote := c.opts.Remote[id]; remote {
			c.addrs[id] = addr
			continue
		}
		ep, err := c.attachFresh(fmt.Sprintf("%s/g%d/m%d", c.opts.Prefix, id.GID, id.Pos))
		if err != nil {
			c.mu.Unlock()
			return nil, err
		}
		newLocal[id] = ep
		c.addrs[id] = ep.Addr()
	}
	c.chains = chains
	for gid := range chains {
		c.entry[gid] = c.addrs[MemberID{GID: gid, Pos: chains[gid][0]}]
	}
	c.memberOf = make(map[string]MemberID, len(c.addrs))
	for id, addr := range c.addrs {
		c.memberOf[addr] = id
	}
	entry := append([]string(nil), c.entry...)
	addrs := make(map[MemberID]string, len(c.addrs))
	for id, a := range c.addrs {
		addrs[id] = a
	}
	c.mu.Unlock()

	// Build each chain member's config and deliver it: local newcomers
	// get a fresh actor, remote newcomers a join, existing members an
	// in-place reconfiguration. Reconfigs and joins are acknowledged —
	// the round restart must not outrun a member still holding stale
	// wiring.
	isNew := make(map[MemberID]bool, len(newcomers))
	for _, id := range newcomers {
		isNew[id] = true
	}
	// Drain stale acks from a previous provisioning attempt.
	for {
		select {
		case <-c.joinCh:
			continue
		default:
		}
		break
	}
	await := make(map[string]MemberID)
	for _, id := range fleet {
		r := rosters[id.GID]
		chain := chains[id.GID]
		pos := -1
		peers := make([]string, len(chain))
		for i, mpos := range chain {
			peers[i] = addrs[MemberID{GID: id.GID, Pos: mpos}]
			if mpos == id.Pos {
				pos = i
			}
		}
		mcfg := MemberConfig{
			GID:         id.GID,
			Pos:         pos,
			Indices:     r.Indices,
			Secret:      r.Secrets[pos],
			EffPubs:     r.EffPubs,
			GroupPK:     r.PK,
			GroupPKs:    groupPKs,
			Peers:       peers,
			Entry:       entry,
			Coordinator: c.coord.Addr(),
			Variant:     cfg.Variant,
			Workers:     c.opts.Workers,
			ChunkSize:   c.opts.ChunkSize,
			Topo:        spec,
			Heartbeat:   c.opts.Heartbeat,
			Escrows:     c.d.EscrowPieces(id.GID, id.Pos+1),
			ConfigHash:  c.opts.ConfigHash,
		}
		switch {
		case isNew[id] && newLocal[id] != nil:
			actor, err := NewActor(mcfg, newLocal[id])
			if err != nil {
				return nil, err
			}
			actorCtx, actorCancel := context.WithCancel(c.ctx)
			la := &localActor{actor: actor, ep: newLocal[id], cancel: actorCancel}
			c.mu.Lock()
			c.actors[id] = la
			c.mu.Unlock()
			c.wg.Add(1)
			go func() {
				defer c.wg.Done()
				_ = actor.Serve(actorCtx)
			}()
			c.live.reset(id, time.Now())
		case isNew[id]:
			if err := c.coord.SendCtx(ctx, addrs[id], &transport.Message{
				Type: msgJoin, Payload: mcfg.Marshal(),
			}); err != nil {
				// A dead remote spare during a re-plan is one more
				// loss for the loop to absorb, not a terminal error —
				// the group may have further spares in its budget.
				if !fresh && transport.Unreachable(err) {
					return []MemberID{id}, nil
				}
				return nil, fmt.Errorf("distributed: joining %v at %s: %w", id, addrs[id], err)
			}
			await[addrs[id]] = id
		default:
			if err := c.coord.SendCtx(ctx, addrs[id], &transport.Message{
				Type: msgReconfig, Payload: mcfg.Marshal(),
			}); err != nil && !fresh && transport.Unreachable(err) {
				return []MemberID{id}, nil
			} else if err != nil {
				return nil, fmt.Errorf("distributed: reconfiguring %v at %s: %w", id, addrs[id], err)
			}
			await[addrs[id]] = id
		}
	}

	ackBudget := c.opts.ControlTimeout
	if fresh {
		ackBudget = c.opts.JoinTimeout
	}
	deadline := time.After(ackBudget)
	for len(await) > 0 {
		select {
		case msg, okc := <-c.joinCh:
			if !okc {
				return nil, fmt.Errorf("distributed: coordinator closed during provisioning")
			}
			// Only the host we actually contacted may acknowledge — a
			// forged ack must not mask a member that never joined.
			ackOK, reason := decodeJoinAck(msg.Payload)
			if reason == joinAckRejoin {
				// A restarted member's unsolicited greeting, not an
				// acknowledgment of THIS config — counting it would let
				// a host still holding its pre-crash wiring pass for
				// provisioned.
				continue
			}
			if id, pending := await[msg.From]; pending {
				if !ackOK {
					if strings.Contains(reason, "hash mismatch") {
						// Not churn: the fleet disagrees on its group
						// config. Retrying cannot help.
						return nil, fmt.Errorf("%w: member g%d/m%d at %s refused provisioning: %s",
							protocol.ErrConfigMismatch, id.GID, id.Pos, msg.From, reason)
					}
					if fresh {
						return nil, fmt.Errorf("distributed: member g%d/m%d at %s refused provisioning: %s",
							id.GID, id.Pos, msg.From, reason)
					}
					return []MemberID{id}, nil
				}
				delete(await, msg.From)
				c.live.reset(id, time.Now())
			}
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-deadline:
			if fresh {
				return nil, fmt.Errorf("distributed: %d members did not join within %v", len(await), ackBudget)
			}
			var lost []MemberID
			for _, id := range await {
				lost = append(lost, id)
			}
			return lost, nil
		}
	}
	return nil, nil
}

// Addresses returns a copy of the member address book — e.g. to read
// per-node traffic counters off a MemNetwork after a round. Keys are
// stable member identities (group id, roster position).
func (c *Cluster) Addresses() map[MemberID]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[MemberID]string, len(c.addrs))
	for id, addr := range c.addrs {
		out[id] = addr
	}
	return out
}

// CoordinatorAddr returns the coordinator endpoint's address.
func (c *Cluster) CoordinatorAddr() string { return c.coord.Addr() }

// Progress reports every provisioned member's last-known liveness and
// mixing position — what a round timeout embeds, exposed for operator
// dashboards.
func (c *Cluster) Progress() []MemberProgress {
	return progressList(c.live.snapshot())
}

func progressList(snap map[MemberID]memberProgress) []MemberProgress {
	now := time.Now()
	out := make([]MemberProgress, 0, len(snap))
	for id, p := range snap {
		out = append(out, MemberProgress{
			ID: id, Round: p.Round >> 8, Layer: p.Layer, Phase: p.Phase, Age: now.Sub(p.Seen),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.GID != out[j].ID.GID {
			return out[i].ID.GID < out[j].ID.GID
		}
		return out[i].ID.Pos < out[j].ID.Pos
	})
	return out
}

// KillMember simulates a crash of a locally hosted member: its endpoint
// closes and its actor loop stops, with no notice to the deployment or
// the coordinator — detection must come from the churn machinery
// (missed heartbeats, or a peer's failed delivery). It reports whether
// the member was hosted here.
func (c *Cluster) KillMember(id MemberID) bool {
	c.mu.Lock()
	la := c.actors[id]
	delete(c.actors, id)
	c.mu.Unlock()
	if la == nil {
		return false
	}
	la.cancel()
	_ = la.ep.Close()
	return true
}

// Run executes one round over the cluster: the deployment seals rs,
// the actors mix it, and the deployment applies the variant finale —
// Deployment.RunRoundVia with this cluster as the Mixer.
func (c *Cluster) Run(ctx context.Context, rs *protocol.RoundState, hooks *protocol.RoundHooks) (*protocol.RoundResult, error) {
	return c.d.RunRoundVia(ctx, rs, hooks, c)
}

// wireRound tags a round attempt on the wire: churn restarts of one
// round must not collide with the canceled attempt's in-flight traffic,
// so the attempt counter rides in the low byte of the message round id.
func wireRound(round uint64, attempt int) uint64 {
	return round<<8 | uint64(attempt&0xff)
}

// attemptView is the provisioning snapshot one round attempt runs
// against; a re-plan between attempts produces a new one.
type attemptView struct {
	chains [][]int
	entry  []string
	member map[string]MemberID
}

func (c *Cluster) view() *attemptView {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := &attemptView{
		chains: make([][]int, len(c.chains)),
		entry:  append([]string(nil), c.entry...),
		member: make(map[string]MemberID, len(c.memberOf)),
	}
	for gid := range c.chains {
		v.chains[gid] = append([]int(nil), c.chains[gid]...)
	}
	for addr, id := range c.memberOf {
		v.member[addr] = id
	}
	return v
}

// inChain reports whether id is in its group's current chain.
func (v *attemptView) inChain(id MemberID) bool {
	if id.GID < 0 || id.GID >= len(v.chains) {
		return false
	}
	for _, pos := range v.chains[id.GID] {
		if pos == id.Pos {
			return true
		}
	}
	return false
}

// ConcurrentRounds implements protocol.ConcurrentMixer: the cluster
// accepts Options.MaxInFlight overlapping MixRound calls.
func (c *Cluster) ConcurrentRounds() int { return c.opts.MaxInFlight }

// errReplanned restarts a round attempt whose wiring snapshot went stale
// because another round's loss handling re-planned the fleet.
var errReplanned = errors.New("distributed: fleet re-planned mid-attempt")

// errRejoined restarts a round attempt after a silent member came back
// within Options.RestartGrace with its state intact: the fleet is
// unchanged — no re-plan, no budget burned — but the restarted process
// lost its per-round actor state, so the attempt must replay from its
// sealed batches.
var errRejoined = errors.New("distributed: member rejoined with state intact")

// restartedSince reports which of the attempt's chain members announced
// a crash-restart after the attempt began — alive, heartbeating, state
// dir intact, but with the attempt's in-flight mixing state gone.
func (c *Cluster) restartedSince(began time.Time, v *attemptView) []MemberID {
	c.mu.Lock()
	defer c.mu.Unlock()
	var ids []MemberID
	for id, at := range c.restarts {
		if at.After(began) && v.inChain(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// awaitRejoin gives the lost members Options.RestartGrace to come back
// before they are declared dead: a restarted member re-adopting its
// persisted identity resumes heartbeating at its old address, which
// refreshes its liveness record. It reports whether every lost member
// returned within the grace.
func (c *Cluster) awaitRejoin(ctx context.Context, lost []MemberID) bool {
	if c.opts.RestartGrace <= 0 || c.opts.Heartbeat <= 0 {
		return false // no grace, or no beacon to observe a rejoin by
	}
	deadline := time.After(c.opts.RestartGrace)
	tick := time.NewTicker(c.opts.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			snap := c.live.snapshot()
			now := time.Now()
			back := 0
			for _, id := range lost {
				if p, ok := snap[id]; ok && now.Sub(p.Seen) <= c.opts.LivenessTimeout {
					back++
				}
			}
			if back == len(lost) {
				c.rejoins.Add(uint64(len(lost)))
				for _, id := range lost {
					c.logf("distributed: member g%d/m%d rejoined within the restart grace; fleet unchanged", id.GID, id.Pos)
				}
				return true
			}
		case <-deadline:
			return false
		case <-ctx.Done():
			return false
		}
	}
}

// MixRound implements protocol.Mixer: inject the sealed batches at
// every group's first member, collect per-layer reports, exit outputs
// and aborts — and, when a member is lost mid-round, re-plan the
// affected chains over the surviving members and restart the round from
// its sealed batches (§4.5 availability). A group that cannot be
// re-planned within its h−1 budget fails the round with a typed
// protocol.Loss matching both ErrMemberLost and ErrRecoveryNeeded.
//
// Up to Options.MaxInFlight rounds mix concurrently (§4.7 cross-round
// pipelining); each call owns its per-round inbox and attempt counter,
// and a churn re-plan triggered by any round restarts every in-flight
// round from its own sealed batches.
func (c *Cluster) MixRound(job *protocol.MixJob) (*protocol.MixOutcome, error) {
	G := c.topo.Groups()
	if len(job.Batches) != G {
		return nil, fmt.Errorf("distributed: %d batches for %d groups", len(job.Batches), G)
	}
	select {
	case c.sem <- struct{}{}:
		defer func() { <-c.sem }()
	case <-job.Ctx.Done():
		return nil, fmt.Errorf("distributed: round %d canceled awaiting a pipeline slot: %w", job.Round, job.Ctx.Err())
	}
	inbox, err := c.registerRound(job.Round)
	if err != nil {
		return nil, err
	}
	defer c.unregisterRound(job.Round)

	roundTimer := time.NewTimer(c.opts.RoundTimeout)
	defer roundTimer.Stop()

	for attempt := 0; ; attempt++ {
		out, lost, err := c.attemptRound(job, inbox, attempt, roundTimer)
		switch {
		case errors.Is(err, errReplanned):
			// Another round's loss handling already re-planned the fleet;
			// restart this round against the new wiring.
			if attempt+1 > c.opts.MaxRestarts {
				return nil, &protocol.Loss{GID: -1, Member: -1, Err: fmt.Errorf(
					"%w: round %d exceeded %d churn restarts", protocol.ErrMemberLost, job.Round, c.opts.MaxRestarts)}
			}
			c.logf("distributed: round %d: fleet re-planned elsewhere, restarting (attempt %d)", job.Round, attempt+1)
			continue
		case errors.Is(err, errRejoined):
			// A silent member came back within the restart grace with its
			// persisted state intact: same fleet, same keys, no budget
			// burned — just replay the attempt from the sealed batches.
			if attempt+1 > c.opts.MaxRestarts {
				return nil, &protocol.Loss{GID: -1, Member: -1, Err: fmt.Errorf(
					"%w: round %d exceeded %d churn restarts", protocol.ErrMemberLost, job.Round, c.opts.MaxRestarts)}
			}
			c.logf("distributed: round %d: restarting after rejoin (attempt %d)", job.Round, attempt+1)
			continue
		case err != nil || out != nil:
			return out, err
		}
		// One or more members were lost. Re-plan the chains over the
		// survivors (once, no matter how many rounds observed the loss)
		// and restart the round from its sealed batches.
		if rerr := c.replan(job.Ctx, job.Round, lost, attempt); rerr != nil {
			return nil, rerr
		}
		if attempt+1 > c.opts.MaxRestarts {
			first := lost[0]
			return nil, &protocol.Loss{GID: first.GID, Member: first.Pos + 1, Err: fmt.Errorf(
				"%w: round %d exceeded %d churn restarts", protocol.ErrMemberLost, job.Round, c.opts.MaxRestarts)}
		}
		c.logf("distributed: round %d: re-planned, restarting (attempt %d)", job.Round, attempt+1)
	}
}

// replan handles a round's observed member losses: under the epoch lock
// it fails the members that are still provisioned, re-chains every
// affected group over the survivors, reconfigures the fleet, and bumps
// the epoch so every other in-flight round restarts too. Losses already
// handled by a concurrent round's re-plan are skipped — the caller just
// restarts against the current plan.
func (c *Cluster) replan(ctx context.Context, round uint64, lost []MemberID, attempt int) error {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()

	// A concurrent re-plan may already have removed these members.
	pending := lost[:0:0]
	c.mu.Lock()
	for _, id := range lost {
		if _, known := c.addrs[id]; known {
			pending = append(pending, id)
		}
	}
	c.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	first := pending[0]
	for _, id := range pending {
		c.logf("distributed: round %d: member g%d/m%d lost (attempt %d); re-planning", round, id.GID, id.Pos, attempt)
		c.d.FailGroupMember(id.GID, id.Pos)
		c.removeMember(id)
	}
	for {
		more, perr := c.provision(ctx, false)
		if perr != nil {
			// A caller cancellation that lands during the re-plan
			// is still a cancellation — it must never dress up as
			// a member loss.
			if cerr := ctx.Err(); cerr != nil {
				return fmt.Errorf("distributed: round %d canceled during re-plan: %w", round, cerr)
			}
			return &protocol.Loss{GID: first.GID, Member: first.Pos + 1, Err: fmt.Errorf(
				"%w: round %d: group %d lost member %d: %w",
				protocol.ErrMemberLost, round, first.GID, first.Pos+1, perr)}
		}
		if len(more) == 0 {
			break
		}
		for _, id := range more {
			c.logf("distributed: round %d: member g%d/m%d unresponsive during re-plan", round, id.GID, id.Pos)
			c.d.FailGroupMember(id.GID, id.Pos)
			c.removeMember(id)
		}
	}
	// The fleet is re-wired: tell every in-flight attempt its snapshot
	// is stale.
	c.replans.Add(1)
	c.epoch++
	close(c.epochCh)
	c.epochCh = make(chan struct{})
	return nil
}

// removeMember forgets a lost member: its local actor (if any) is torn
// down and its address unlearned, so nothing further is routed to or
// accepted from it.
func (c *Cluster) removeMember(id MemberID) {
	c.KillMember(id)
	c.mu.Lock()
	if addr, ok := c.addrs[id]; ok {
		delete(c.addrs, id)
		delete(c.memberOf, addr)
	}
	c.mu.Unlock()
	c.live.forget(id)
}

// attemptRound runs one attempt of a round over the current chains. It
// returns exactly one of: a completed outcome, a list of lost members
// (the caller re-plans and restarts), an errReplanned (another round
// re-planned the fleet; the caller restarts against the new wiring), or
// a terminal error.
func (c *Cluster) attemptRound(job *protocol.MixJob, inbox chan *transport.Message, attempt int, roundTimer *time.Timer) (*protocol.MixOutcome, []MemberID, error) {
	ctx := job.Ctx
	G := c.topo.Groups()
	T := c.topo.Iterations()
	wire := wireRound(job.Round, attempt)
	began := time.Now() // restart announcements after this invalidate the attempt
	// Snapshot the wiring and the epoch signal together: if a re-plan
	// lands between them the stale epochCh is already closed and the
	// attempt restarts immediately instead of mixing over dead wiring.
	c.epochMu.Lock()
	epochStale := c.epochCh
	v := c.view()
	c.epochMu.Unlock()

	if a := job.Adversary; a != nil {
		c.mu.Lock()
		var la *localActor
		if a.GID >= 0 && a.GID < len(v.chains) && a.Member >= 0 && a.Member < len(v.chains[a.GID]) {
			la = c.actors[MemberID{GID: a.GID, Pos: v.chains[a.GID][a.Member]}]
		}
		c.mu.Unlock()
		if la == nil {
			return nil, nil, fmt.Errorf("distributed: adversary targets group %d member %d, which is not hosted locally", a.GID, a.Member)
		}
		la.actor.SetTamper(wire, a.Layer, a.Tamper)
		defer la.actor.SetTamper(0, 0, nil)
	}

	// The round's resolved worker knob (a per-round SetMixConfig
	// override included) rides the batch messages to every actor.
	workers := job.Workers
	if workers < 1 {
		workers = c.opts.Workers
	}
	for gid := 0; gid < G; gid++ {
		if err := c.coord.SendCtx(ctx, v.entry[gid], &transport.Message{
			Type: msgBatch, Round: wire,
			Payload: encodeBatchMsg(0, -1, workers, job.Batches[gid]),
		}); err != nil {
			c.cancelRound(wire)
			if transport.Unreachable(err) {
				return nil, []MemberID{{GID: gid, Pos: v.chains[gid][0]}}, nil
			}
			return nil, nil, fmt.Errorf("distributed: injecting group %d batch: %w", gid, err)
		}
	}

	var (
		out       = &protocol.MixOutcome{ExitPayloads: make(map[int][][]byte, G)}
		layerWork = make([]map[int]work, T) // layer → gid → work
		doneAt    = make([]time.Time, T)    // layer → completion time
		emitted   = 0                       // layers flushed, in order
		exits     = make(map[int][]elgamal.Vector, G)
		attStart  = time.Now()
	)
	for layer := range layerWork {
		layerWork[layer] = make(map[int]work, G)
	}
	var liveTick <-chan time.Time
	if c.opts.Heartbeat > 0 {
		t := time.NewTicker(c.opts.Heartbeat)
		defer t.Stop()
		liveTick = t.C
	}

	// The attempt is done when every exit batch AND every layer report
	// has landed (the exit vectors can arrive ahead of the last layer's
	// accounting).
	for len(exits) < G || emitted < T {
		select {
		case msg, okc := <-inbox:
			if !okc {
				return nil, nil, fmt.Errorf("distributed: coordinator endpoint closed mid-round")
			}
			if msg.Round != wire {
				continue // stray from a canceled attempt or previous round
			}
			if _, member := v.member[msg.From]; !member {
				continue // only member actors report; ignore strangers
			}
			switch msg.Type {
			case msgLayer:
				gid, layer, w, err := decodeLayerMsg(msg.Payload)
				if err != nil {
					return nil, nil, fmt.Errorf("distributed: bad layer report: %w", err)
				}
				if layer < 0 || layer >= T || gid < 0 || gid >= G {
					return nil, nil, fmt.Errorf("distributed: layer report out of range (group %d, layer %d)", gid, layer)
				}
				if msg.From != v.entry[gid] {
					continue // only group gid's first member reports its layers
				}
				layerWork[layer][gid] = w
				if len(layerWork[layer]) == G {
					doneAt[layer] = time.Now()
				}
				// Flush completed layers strictly in order: a slow link
				// can deliver layer t's last report after layer t+1
				// completes, and IterationDone must still observe
				// layers 0, 1, 2, … with sane durations.
				for emitted < T && len(layerWork[emitted]) == G {
					prev := attStart
					if emitted > 0 {
						prev = doneAt[emitted-1]
					}
					dur := doneAt[emitted].Sub(prev)
					if dur < 0 {
						dur = 0 // completed before an earlier layer's report landed
					}
					it := c.layerStats(job, emitted, layerWork[emitted], dur, workers)
					out.Iterations = append(out.Iterations, it)
					if job.Hooks != nil && job.Hooks.IterationDone != nil {
						job.Hooks.IterationDone(it)
					}
					emitted++
				}
			case msgOut:
				gid, vecs, err := decodeOutMsg(msg.Payload)
				if err != nil {
					return nil, nil, fmt.Errorf("distributed: bad exit output: %w", err)
				}
				if gid < 0 || gid >= G {
					return nil, nil, fmt.Errorf("distributed: exit output from out-of-range group %d", gid)
				}
				if msg.From != v.entry[gid] {
					continue // only group gid's first member publishes its exit
				}
				if _, dup := exits[gid]; dup {
					continue // first report wins; a second cannot overwrite it
				}
				exits[gid] = vecs
			case msgAbort:
				layer, gid, member, class, text, err := decodeAbortMsg(msg.Payload)
				if err != nil {
					return nil, nil, fmt.Errorf("distributed: bad abort report: %v", err)
				}
				reporter := v.member[msg.From]
				if class == abortPeer {
					// A failed chain delivery: the reporter names the
					// member it could not reach (−1 = that group's first
					// member). Accepting the report burns at most one
					// spare — the same availability power a malicious
					// member already has by stalling the round.
					if gid < 0 || gid >= G {
						continue
					}
					lostPos := member - 1
					if member < 0 {
						lostPos = v.chains[gid][0]
					}
					lost := MemberID{GID: gid, Pos: lostPos}
					if !v.inChain(lost) {
						continue // already re-planned away, or fabricated
					}
					c.logf("distributed: round %d: g%d/m%d reports %s", job.Round, reporter.GID, reporter.Pos, text)
					c.cancelRound(wire)
					// The unreachable member may be mid-restart with its
					// state intact: grant the grace before burning budget.
					if c.awaitRejoin(ctx, []MemberID{lost}) {
						return nil, nil, errRejoined
					}
					return nil, []MemberID{lost}, nil
				}
				if reporter.GID != gid {
					continue // a member may only report (and blame) its own group
				}
				c.cancelRound(wire)
				return nil, nil, classifyAbort(layer, gid, member, class, text)
			}
		case <-epochStale:
			// Another round's loss handling re-planned the fleet; this
			// attempt's chains, entry table and actor configs are stale.
			c.cancelRound(wire)
			return nil, nil, errReplanned
		case <-liveTick:
			// A member that crash-restarted after this attempt began is
			// alive and heartbeating — but the attempt's mixing state died
			// with its old process, so the attempt can only stall. Replay
			// it over the unchanged fleet (the same errRejoined path a
			// detected-then-rejoined silence takes).
			if c.opts.RestartGrace > 0 {
				if ids := c.restartedSince(began, v); len(ids) > 0 {
					c.cancelRound(wire)
					for _, id := range ids {
						c.logf("distributed: round %d: g%d/m%d restarted mid-attempt with state intact; replaying the attempt", job.Round, id.GID, id.Pos)
					}
					c.rejoins.Add(uint64(len(ids)))
					return nil, nil, errRejoined
				}
			}
			var lost []MemberID
			for _, id := range c.live.expired(c.opts.LivenessTimeout) {
				if v.inChain(id) {
					lost = append(lost, id)
				}
			}
			if len(lost) > 0 {
				c.cancelRound(wire)
				// "Restarting, state intact" vs "lost": a crashed member
				// restarted from its -state-dir resumes heartbeating
				// under its old identity within the grace, and the round
				// replays over the unchanged fleet; only members that
				// stay silent past it go down the re-plan path.
				if c.awaitRejoin(ctx, lost) {
					return nil, nil, errRejoined
				}
				return nil, lost, nil
			}
		case <-ctx.Done():
			c.cancelRound(wire)
			return nil, nil, fmt.Errorf("distributed: round %d canceled: %w", job.Round, ctx.Err())
		case <-roundTimer.C:
			c.cancelRound(wire)
			return nil, nil, &TimeoutError{
				Round: job.Round, After: c.opts.RoundTimeout, Progress: progressList(c.live.snapshot()),
			}
		}
	}

	for gid, vecs := range exits {
		payloads, err := protocol.ExtractExitPayloads(vecs)
		if err != nil {
			return nil, nil, fmt.Errorf("distributed: exit group %d: %w", gid, err)
		}
		out.ExitPayloads[gid] = payloads
	}
	liveBy := c.liveByGroup()
	for layer := 0; layer < T; layer++ {
		for gid := 0; gid < G; gid++ {
			w := layerWork[layer][gid]
			out.Traces = append(out.Traces, protocol.StepTrace{
				GID: gid, Layer: layer,
				Shuffles: w.Shuffles, ReEncs: w.ReEncs, ProofsChecked: w.Proofs,
				Workers: workers, Busy: time.Duration(w.BusyNs),
				Members: liveBy[gid],
			})
		}
	}
	return out, nil, nil
}

// liveByGroup reads each group's live membership off the deployment —
// the degraded-mode number traces and stats carry.
func (c *Cluster) liveByGroup() []int {
	G := c.topo.Groups()
	out := make([]int, G)
	for gid := 0; gid < G; gid++ {
		n, err := c.d.GroupLiveMembers(gid)
		if err == nil {
			out[gid] = n
		}
	}
	return out
}

// layerStats folds a completed layer's per-group work into the
// deployment's IterationStats shape. Duration is coordinator-observed:
// time from the previous layer's completion to this one's, which —
// unlike the in-process mixer — includes real (or modeled) network
// latency between the groups.
func (c *Cluster) layerStats(job *protocol.MixJob, layer int, byGID map[int]work, dur time.Duration, workers int) protocol.IterationStats {
	it := protocol.IterationStats{
		Round: job.Round, Layer: layer, Duration: dur, Workers: workers,
	}
	for _, w := range byGID {
		it.Messages += w.Msgs
		it.Shuffles += w.Shuffles
		it.ReEncs += w.ReEncs
		it.ProofsChecked += w.Proofs
		it.WorkerBusy += time.Duration(w.BusyNs)
		if w.Msgs > 0 {
			it.ActiveGroups++
		}
	}
	for _, n := range c.liveByGroup() {
		it.Members += n
	}
	return it
}

// cancelRound tells every actor to drop the round attempt's state and
// traffic.
func (c *Cluster) cancelRound(wire uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ControlTimeout)
	defer cancel()
	for _, addr := range c.Addresses() {
		_ = c.coord.SendCtx(ctx, addr, &transport.Message{Type: msgCancel, Round: wire})
	}
}

// RecoverGroup drives §4.5 buddy-group recovery for a group that has
// fallen below threshold, entirely over the wire: for every failed
// position the coordinator solicits escrow pieces from a live buddy
// group's member actors (msgShareReq/msgShareResp), reconstructs the
// lost share, verifies it against the group's public Feldman
// commitments, installs the given replacement server, and finally
// re-provisions the fleet — the replacement member joins through the
// same path a remote host does, and every member learns the recovered
// wiring. After it returns nil, Deployment.GroupNeedsRecovery(gid)
// reports false and the next round delivers.
func (c *Cluster) RecoverGroup(ctx context.Context, gid int, replacements []int) error {
	plan, err := c.d.RecoveryPlan(gid)
	if err != nil {
		return err
	}
	if len(plan.Failed) == 0 {
		return nil
	}
	if len(plan.Buddies) == 0 {
		return fmt.Errorf("distributed: group %d has no buddy groups (BuddyCount=0)", gid)
	}
	if len(replacements) < len(plan.Failed) {
		return fmt.Errorf("distributed: need %d replacement servers, have %d", len(plan.Failed), len(replacements))
	}
	for i, pos := range plan.Failed {
		share, err := c.solicitShare(ctx, plan, pos)
		if err != nil {
			return fmt.Errorf("distributed: recovering group %d pos %d: %w", gid, pos, err)
		}
		if err := c.d.InstallRecoveredShare(gid, pos, share, replacements[i]); err != nil {
			return err
		}
		c.logf("distributed: group %d position %d recovered from buddy escrow; server %d installed", gid, pos, replacements[i])
	}
	// Re-provision: replacements get endpoints and join; survivors are
	// reconfigured onto the recovered chain. The epoch lock serializes
	// this against in-flight rounds' churn handling, and the final epoch
	// bump restarts any round that was mixing over the pre-recovery
	// wiring.
	c.epochMu.Lock()
	defer func() {
		c.epoch++
		close(c.epochCh)
		c.epochCh = make(chan struct{})
		c.epochMu.Unlock()
	}()
	for budget := 0; ; budget++ {
		lost, err := c.provision(ctx, false)
		if err != nil {
			return err
		}
		if len(lost) == 0 {
			c.recoveries.Add(1)
			return nil
		}
		if budget >= c.opts.MaxRestarts {
			return fmt.Errorf("%w: churn during recovery of group %d", protocol.ErrMemberLost, gid)
		}
		for _, id := range lost {
			c.logf("distributed: member g%d/m%d unresponsive during recovery re-plan", id.GID, id.Pos)
			c.d.FailGroupMember(id.GID, id.Pos)
			c.removeMember(id)
		}
	}
}

// solicitShare collects threshold-many escrow pieces for (plan.GID,
// pos) from a live buddy group's chain members and reconstructs the
// lost share.
func (c *Cluster) solicitShare(ctx context.Context, plan *protocol.RecoveryPlan, pos int) (*ecc.Scalar, error) {
	ch := make(chan *transport.Message, 64)
	c.shareMu.Lock()
	c.shareCh = ch
	c.shareMu.Unlock()
	defer func() {
		c.shareMu.Lock()
		c.shareCh = nil
		c.shareMu.Unlock()
	}()

	var lastErr error
	for _, buddy := range plan.Buddies {
		v := c.view()
		if buddy < 0 || buddy >= len(v.chains) {
			continue
		}
		asked := 0
		for _, mpos := range v.chains[buddy] {
			addr := ""
			c.mu.Lock()
			addr = c.addrs[MemberID{GID: buddy, Pos: mpos}]
			c.mu.Unlock()
			if addr == "" {
				continue
			}
			if err := c.coord.SendCtx(ctx, addr, &transport.Message{
				Type: msgShareReq, Payload: encodeShareReqMsg(plan.GID, pos),
			}); err == nil {
				asked++
			}
		}
		if asked < plan.Threshold {
			lastErr = fmt.Errorf("buddy group %d has only %d reachable members, need %d", buddy, asked, plan.Threshold)
			continue
		}
		pieces := make(map[int]*ecc.Scalar)
		deadline := time.After(c.opts.ControlTimeout)
	collect:
		for len(pieces) < plan.Threshold {
			select {
			case msg := <-ch:
				gid, rpos, idx, piece, err := decodeShareRespMsg(msg.Payload)
				if err != nil || gid != plan.GID || rpos != pos {
					continue
				}
				// Only members of the solicited buddy group may
				// contribute, and only under their own DVSS index.
				c.mu.Lock()
				id, known := c.memberOf[msg.From]
				c.mu.Unlock()
				if !known || id.GID != buddy || id.Pos != idx-1 {
					continue
				}
				// Verify the piece against the escrow's commitments
				// before it can enter reconstruction — one byzantine
				// buddy member must not be able to wedge recovery when
				// threshold-many honest pieces exist.
				if verr := c.d.CheckEscrowPiece(plan.GID, buddy, pos, idx, piece); verr != nil {
					c.logf("distributed: discarding invalid escrow piece from g%d/m%d: %v", id.GID, id.Pos, verr)
					continue
				}
				pieces[idx] = piece
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-deadline:
				lastErr = fmt.Errorf("buddy group %d returned %d escrow pieces within %v, need %d",
					buddy, len(pieces), c.opts.ControlTimeout, plan.Threshold)
				break collect
			}
		}
		if len(pieces) < plan.Threshold {
			continue
		}
		indices := make([]int, 0, len(pieces))
		for idx := range pieces {
			indices = append(indices, idx)
		}
		sort.Ints(indices)
		indices = indices[:plan.Threshold]
		ordered := make([]*ecc.Scalar, len(indices))
		for i, idx := range indices {
			ordered[i] = pieces[idx]
		}
		share, err := dvss.RecoverShare(indices, ordered)
		if err != nil {
			lastErr = err
			continue
		}
		c.sharesSolicited.Add(1)
		return share, nil
	}
	if lastErr == nil {
		lastErr = errors.New("no live buddy group")
	}
	return nil, lastErr
}

// Close stops every actor (remote ones by message, local ones by
// context), closes the endpoints and waits for the loops and the pump.
func (c *Cluster) Close() {
	if c.coord != nil {
		ctx, cancel := context.WithTimeout(context.Background(), c.controlTimeout())
		for _, addr := range c.Addresses() {
			_ = c.coord.SendCtx(ctx, addr, &transport.Message{Type: msgStop})
		}
		cancel()
	}
	if c.cancel != nil {
		c.cancel()
	}
	c.mu.Lock()
	eps := make([]transport.Endpoint, 0, len(c.actors))
	for _, la := range c.actors {
		eps = append(eps, la.ep)
	}
	c.mu.Unlock()
	for _, ep := range eps {
		_ = ep.Close()
	}
	if c.coord != nil {
		_ = c.coord.Close()
	}
	c.wg.Wait()
}

// controlTimeout is Options.ControlTimeout with a pre-resolution
// fallback (Close may run on a half-built cluster).
func (c *Cluster) controlTimeout() time.Duration {
	if c.opts.ControlTimeout > 0 {
		return c.opts.ControlTimeout
	}
	return 2 * time.Second
}

// classifyAbort maps a wire abort back onto the protocol error
// taxonomy, so errors.Is / errors.As behave identically whether the
// round ran in-process, over memnet, or over TCP.
func classifyAbort(layer, gid, member int, class, text string) error {
	switch class {
	case abortProof:
		err := &remoteErr{sentinel: protocol.ErrProofRejected, msg: text}
		if member >= 0 {
			return &protocol.Blame{GID: gid, Member: member, Err: err}
		}
		return err
	case abortCanceled:
		return &remoteErr{sentinel: context.Canceled, msg: text}
	default:
		return fmt.Errorf("distributed: group %d member %d aborted at layer %d: %s", gid, member, layer, text)
	}
}

// remoteErr reconstitutes a typed error from its wire form: the
// original message text with the matching sentinel re-attached for
// errors.Is.
type remoteErr struct {
	sentinel error
	msg      string
}

func (e *remoteErr) Error() string { return e.msg }

func (e *remoteErr) Unwrap() error { return e.sentinel }
