package distributed

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/protocol"
	"atom/internal/topology"
	"atom/internal/transport"
)

// MemberID addresses one member: group id and chain position.
type MemberID struct {
	GID, Pos int
}

// AttachFunc provides an endpoint for a named node — how the cluster
// places its locally hosted actors (and its coordinator) on a
// transport.
type AttachFunc func(name string) (transport.Endpoint, error)

// MemAttach hosts actors on an in-memory network (optionally
// latency-modeled — the §6 emulated WAN).
func MemAttach(n *transport.MemNetwork) AttachFunc { return n.Attach }

// TCPAttach hosts each actor on its own TCP endpoint bound to an
// ephemeral port on host (e.g. "127.0.0.1" for a loopback deployment).
// The node name only labels logs; the address book uses the bound
// host:port.
func TCPAttach(host string) AttachFunc {
	return func(name string) (transport.Endpoint, error) {
		return transport.ListenTCP(host+":0", 4096)
	}
}

// Options tunes a Cluster.
type Options struct {
	// Prefix namespaces the cluster's node names (default "atom").
	Prefix string
	// Attach places locally hosted actors and the coordinator.
	Attach AttachFunc
	// Remote maps members to pre-started HostMember endpoints (e.g.
	// atomd -member processes); the cluster ships each its MemberConfig
	// over the transport instead of hosting it locally.
	Remote map[MemberID]string
	// Workers bounds each actor's crypto pool. Zero selects CPUs/G —
	// locally hosted groups share this machine, like MixConfig.
	Workers int
	// RoundTimeout bounds one round's mixing (default 5m) in addition
	// to the caller's context.
	RoundTimeout time.Duration
	// JoinTimeout bounds each remote member's setup (default 30s).
	JoinTimeout time.Duration
}

// Cluster is the distributed round engine: one actor per group member
// (hosted locally or adopted remotely), a coordinator endpoint that
// injects sealed batches and collects exits, and an implementation of
// protocol.Mixer, so Deployment.RunRoundVia runs the identical round
// lifecycle — sealing, finale, blame records, rotation — over it.
type Cluster struct {
	d      *protocol.Deployment
	topo   topology.Topology
	coord  transport.Endpoint
	actors map[MemberID]*Actor
	addrs  map[MemberID]string
	// memberOf maps a member address to its group — the coordinator's
	// sender authentication (out/layer reports must come from the
	// group's first member, aborts from a member of the blamed group).
	memberOf map[string]int
	eps      []transport.Endpoint
	entry    []string
	workers  int
	timeout  time.Duration

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCluster builds the full network of member actors for the
// deployment: it exports each group's roster (playing the DKG ceremony
// that would otherwise have provisioned each server), attaches one
// endpoint per locally hosted member, ships MemberConfigs to remote
// hosts, and starts the local actor loops.
func NewCluster(d *protocol.Deployment, opts Options) (*Cluster, error) {
	if opts.Attach == nil {
		return nil, fmt.Errorf("distributed: Options.Attach is required")
	}
	if opts.Prefix == "" {
		opts.Prefix = "atom"
	}
	if opts.RoundTimeout <= 0 {
		opts.RoundTimeout = 5 * time.Minute
	}
	if opts.JoinTimeout <= 0 {
		opts.JoinTimeout = 30 * time.Second
	}
	cfg := d.Config()
	topo := d.Topology()
	G := topo.Groups()
	if opts.Workers < 1 {
		opts.Workers = runtime.GOMAXPROCS(0) / G
		if opts.Workers < 1 {
			opts.Workers = 1
		}
	}
	spec := TopoSpec{Name: cfg.Topology, Groups: G, Iterations: cfg.Iterations, Reps: cfg.ButterflyReps}

	c := &Cluster{
		d:        d,
		topo:     topo,
		actors:   make(map[MemberID]*Actor),
		addrs:    make(map[MemberID]string),
		memberOf: make(map[string]int),
		entry:    make([]string, G),
		workers:  opts.Workers,
		timeout:  opts.RoundTimeout,
	}
	ok := false
	defer func() {
		if !ok {
			c.Close()
		}
	}()

	coord, err := opts.Attach(opts.Prefix + "/coord")
	if err != nil {
		return nil, err
	}
	c.coord = coord

	rosters := make([]*protocol.GroupRoster, G)
	for gid := 0; gid < G; gid++ {
		if rosters[gid], err = d.GroupRoster(gid); err != nil {
			return nil, err
		}
	}
	groupPKs := make([]*ecc.Point, G)
	for gid, r := range rosters {
		groupPKs[gid] = r.PK
	}

	// First pass: fix every member's address (local attachments bind
	// here; remote members were bound by their hosts).
	localEPs := make(map[MemberID]transport.Endpoint)
	for gid := 0; gid < G; gid++ {
		for pos := range rosters[gid].Indices {
			id := MemberID{gid, pos}
			if addr, remote := opts.Remote[id]; remote {
				c.addrs[id] = addr
				continue
			}
			ep, err := opts.Attach(fmt.Sprintf("%s/g%d/m%d", opts.Prefix, gid, pos))
			if err != nil {
				return nil, err
			}
			c.eps = append(c.eps, ep)
			localEPs[id] = ep
			c.addrs[id] = ep.Addr()
		}
		c.entry[gid] = c.addrs[MemberID{gid, 0}]
	}
	for id, addr := range c.addrs {
		c.memberOf[addr] = id.GID
	}

	// Second pass: build configs, start local actors, ship remote ones.
	ctx, cancel := context.WithCancel(context.Background())
	c.cancel = cancel
	joinsPending := make(map[string]bool)
	for gid := 0; gid < G; gid++ {
		r := rosters[gid]
		peers := make([]string, len(r.Indices))
		for pos := range r.Indices {
			peers[pos] = c.addrs[MemberID{gid, pos}]
		}
		for pos := range r.Indices {
			id := MemberID{gid, pos}
			mcfg := MemberConfig{
				GID:         gid,
				Pos:         pos,
				Indices:     r.Indices,
				Secret:      r.Secrets[pos],
				EffPubs:     r.EffPubs,
				GroupPK:     r.PK,
				GroupPKs:    groupPKs,
				Peers:       peers,
				Entry:       c.entry,
				Coordinator: coord.Addr(),
				Variant:     cfg.Variant,
				Workers:     opts.Workers,
				Topo:        spec,
			}
			if ep, local := localEPs[id]; local {
				actor, err := NewActor(mcfg, ep)
				if err != nil {
					return nil, err
				}
				c.actors[id] = actor
				c.wg.Add(1)
				go func() {
					defer c.wg.Done()
					_ = actor.Serve(ctx)
				}()
				continue
			}
			// Remote member: ship its config and await the ack below.
			if err := c.coord.Send(c.addrs[id], &transport.Message{
				Type: msgJoin, Payload: mcfg.Marshal(),
			}); err != nil {
				return nil, fmt.Errorf("distributed: joining %v at %s: %w", id, c.addrs[id], err)
			}
			joinsPending[c.addrs[id]] = true
		}
	}
	if len(joinsPending) > 0 {
		deadline := time.After(opts.JoinTimeout)
		for len(joinsPending) > 0 {
			select {
			case msg, okc := <-c.coord.Inbox():
				if !okc {
					return nil, fmt.Errorf("distributed: coordinator closed during join")
				}
				// Only the host we actually joined may acknowledge — a
				// forged ack must not mask a member that never joined.
				if msg.Type == msgJoined && joinsPending[msg.From] {
					delete(joinsPending, msg.From)
				}
			case <-deadline:
				return nil, fmt.Errorf("distributed: %d remote members did not join within %v", len(joinsPending), opts.JoinTimeout)
			}
		}
	}
	ok = true
	return c, nil
}

// Addresses returns a copy of the member address book — e.g. to read
// per-node traffic counters off a MemNetwork after a round.
func (c *Cluster) Addresses() map[MemberID]string {
	out := make(map[MemberID]string, len(c.addrs))
	for id, addr := range c.addrs {
		out[id] = addr
	}
	return out
}

// CoordinatorAddr returns the coordinator endpoint's address.
func (c *Cluster) CoordinatorAddr() string { return c.coord.Addr() }

// Run executes one round over the cluster: the deployment seals rs,
// the actors mix it, and the deployment applies the variant finale —
// Deployment.RunRoundVia with this cluster as the Mixer.
func (c *Cluster) Run(ctx context.Context, rs *protocol.RoundState, hooks *protocol.RoundHooks) (*protocol.RoundResult, error) {
	return c.d.RunRoundVia(ctx, rs, hooks, c)
}

// MixRound implements protocol.Mixer: inject the sealed batches at
// every group's first member, then collect per-layer reports, exit
// outputs, and aborts.
func (c *Cluster) MixRound(job *protocol.MixJob) (*protocol.MixOutcome, error) {
	ctx := job.Ctx
	G := c.topo.Groups()
	T := c.topo.Iterations()
	if len(job.Batches) != G {
		return nil, fmt.Errorf("distributed: %d batches for %d groups", len(job.Batches), G)
	}
	if a := job.Adversary; a != nil {
		actor := c.actors[MemberID{a.GID, a.Member}]
		if actor == nil {
			return nil, fmt.Errorf("distributed: adversary targets group %d member %d, which is not hosted locally", a.GID, a.Member)
		}
		actor.SetTamper(job.Round, a.Layer, a.Tamper)
		defer actor.SetTamper(0, 0, nil)
	}

	// The round's resolved worker knob (a per-round SetMixConfig
	// override included) rides the batch messages to every actor.
	workers := job.Workers
	if workers < 1 {
		workers = c.workers
	}
	for gid := 0; gid < G; gid++ {
		if err := c.coord.SendCtx(ctx, c.entry[gid], &transport.Message{
			Type: msgBatch, Round: job.Round,
			Payload: encodeBatchMsg(0, -1, workers, job.Batches[gid]),
		}); err != nil {
			c.cancelRound(job.Round)
			return nil, fmt.Errorf("distributed: injecting group %d batch: %w", gid, err)
		}
	}

	var (
		out        = &protocol.MixOutcome{ExitPayloads: make(map[int][][]byte, G)}
		layerWork  = make([]map[int]work, T) // layer → gid → work
		doneAt     = make([]time.Time, T)    // layer → completion time
		emitted    = 0                       // layers flushed, in order
		exits      = make(map[int][]elgamal.Vector, G)
		roundStart = time.Now()
		timeout    = time.NewTimer(c.timeout)
	)
	defer timeout.Stop()
	for layer := range layerWork {
		layerWork[layer] = make(map[int]work, G)
	}

	// The round is done when every exit batch AND every layer report
	// has landed (the exit vectors can arrive ahead of the last layer's
	// accounting).
	for len(exits) < G || emitted < T {
		select {
		case msg, okc := <-c.coord.Inbox():
			if !okc {
				return nil, fmt.Errorf("distributed: coordinator endpoint closed mid-round")
			}
			if msg.Round != job.Round {
				continue // stray from a canceled or previous round
			}
			if _, member := c.memberOf[msg.From]; !member {
				continue // only member actors report; ignore strangers
			}
			switch msg.Type {
			case msgLayer:
				gid, layer, w, err := decodeLayerMsg(msg.Payload)
				if err != nil {
					return nil, fmt.Errorf("distributed: bad layer report: %w", err)
				}
				if layer < 0 || layer >= T || gid < 0 || gid >= G {
					return nil, fmt.Errorf("distributed: layer report out of range (group %d, layer %d)", gid, layer)
				}
				if msg.From != c.entry[gid] {
					continue // only group gid's first member reports its layers
				}
				layerWork[layer][gid] = w
				if len(layerWork[layer]) == G {
					doneAt[layer] = time.Now()
				}
				// Flush completed layers strictly in order: a slow link
				// can deliver layer t's last report after layer t+1
				// completes, and IterationDone must still observe
				// layers 0, 1, 2, … with sane durations.
				for emitted < T && len(layerWork[emitted]) == G {
					prev := roundStart
					if emitted > 0 {
						prev = doneAt[emitted-1]
					}
					dur := doneAt[emitted].Sub(prev)
					if dur < 0 {
						dur = 0 // completed before an earlier layer's report landed
					}
					it := c.layerStats(job, emitted, layerWork[emitted], dur, workers)
					out.Iterations = append(out.Iterations, it)
					if job.Hooks != nil && job.Hooks.IterationDone != nil {
						job.Hooks.IterationDone(it)
					}
					emitted++
				}
			case msgOut:
				gid, vecs, err := decodeOutMsg(msg.Payload)
				if err != nil {
					return nil, fmt.Errorf("distributed: bad exit output: %w", err)
				}
				if gid < 0 || gid >= G {
					return nil, fmt.Errorf("distributed: exit output from out-of-range group %d", gid)
				}
				if msg.From != c.entry[gid] {
					continue // only group gid's first member publishes its exit
				}
				if _, dup := exits[gid]; dup {
					continue // first report wins; a second cannot overwrite it
				}
				exits[gid] = vecs
			case msgAbort:
				layer, gid, member, class, text, err := decodeAbortMsg(msg.Payload)
				if err != nil {
					return nil, fmt.Errorf("distributed: bad abort report: %v", err)
				}
				if c.memberOf[msg.From] != gid {
					continue // a member may only report (and blame) its own group
				}
				c.cancelRound(job.Round)
				return nil, classifyAbort(layer, gid, member, class, text)
			}
		case <-ctx.Done():
			c.cancelRound(job.Round)
			return nil, fmt.Errorf("distributed: round %d canceled: %w", job.Round, ctx.Err())
		case <-timeout.C:
			c.cancelRound(job.Round)
			return nil, fmt.Errorf("distributed: round %d timed out after %v", job.Round, c.timeout)
		}
	}

	for gid, vecs := range exits {
		payloads, err := protocol.ExtractExitPayloads(vecs)
		if err != nil {
			return nil, fmt.Errorf("distributed: exit group %d: %w", gid, err)
		}
		out.ExitPayloads[gid] = payloads
	}
	for layer := 0; layer < T; layer++ {
		for gid := 0; gid < G; gid++ {
			w := layerWork[layer][gid]
			out.Traces = append(out.Traces, protocol.StepTrace{
				GID: gid, Layer: layer,
				Shuffles: w.Shuffles, ReEncs: w.ReEncs, ProofsChecked: w.Proofs,
				Workers: workers, Busy: time.Duration(w.BusyNs),
			})
		}
	}
	return out, nil
}

// layerStats folds a completed layer's per-group work into the
// deployment's IterationStats shape. Duration is coordinator-observed:
// time from the previous layer's completion to this one's, which —
// unlike the in-process mixer — includes real (or modeled) network
// latency between the groups.
func (c *Cluster) layerStats(job *protocol.MixJob, layer int, byGID map[int]work, dur time.Duration, workers int) protocol.IterationStats {
	it := protocol.IterationStats{
		Round: job.Round, Layer: layer, Duration: dur, Workers: workers,
	}
	for _, w := range byGID {
		it.Messages += w.Msgs
		it.Shuffles += w.Shuffles
		it.ReEncs += w.ReEncs
		it.ProofsChecked += w.Proofs
		it.WorkerBusy += time.Duration(w.BusyNs)
		if w.Msgs > 0 {
			it.ActiveGroups++
		}
	}
	return it
}

// cancelRound tells every actor to drop the round's state and traffic.
func (c *Cluster) cancelRound(round uint64) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	for _, addr := range c.addrs {
		_ = c.coord.SendCtx(ctx, addr, &transport.Message{Type: msgCancel, Round: round})
	}
}

// Close stops every actor (remote ones by message, local ones by
// context), closes the endpoints and waits for the local loops.
func (c *Cluster) Close() {
	if c.coord != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		for _, addr := range c.addrs {
			_ = c.coord.SendCtx(ctx, addr, &transport.Message{Type: msgStop})
		}
		cancel()
	}
	if c.cancel != nil {
		c.cancel()
	}
	for _, ep := range c.eps {
		_ = ep.Close()
	}
	c.wg.Wait()
	if c.coord != nil {
		_ = c.coord.Close()
	}
}

// classifyAbort maps a wire abort back onto the protocol error
// taxonomy, so errors.Is / errors.As behave identically whether the
// round ran in-process, over memnet, or over TCP.
func classifyAbort(layer, gid, member int, class, text string) error {
	switch class {
	case abortProof:
		err := &remoteErr{sentinel: protocol.ErrProofRejected, msg: text}
		if member >= 0 {
			return &protocol.Blame{GID: gid, Member: member, Err: err}
		}
		return err
	case abortCanceled:
		return &remoteErr{sentinel: context.Canceled, msg: text}
	default:
		return fmt.Errorf("distributed: group %d member %d aborted at layer %d: %s", gid, member, layer, text)
	}
}

// remoteErr reconstitutes a typed error from its wire form: the
// original message text with the matching sentinel re-attached for
// errors.Is.
type remoteErr struct {
	sentinel error
	msg      string
}

func (e *remoteErr) Error() string { return e.msg }

func (e *remoteErr) Unwrap() error { return e.sentinel }
