package distributed

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"atom/internal/protocol"
	"atom/internal/transport"
)

// churnConfig is a many-trust deployment with churn headroom: groups of
// 3 with h=2, so each group's chain uses threshold 2 members and keeps
// one spare, and every group escrows its shares with one buddy group.
func churnConfig(workers int) protocol.Config {
	return protocol.Config{
		NumServers:  16,
		NumGroups:   3,
		GroupSize:   3,
		HonestMin:   2,
		BuddyCount:  1,
		MessageSize: 24,
		Variant:     protocol.VariantNIZK,
		Iterations:  3,
		Mix:         protocol.MixConfig{Workers: workers},
		Seed:        []byte("churn-test"),
	}
}

// churnOptions tunes the cluster for CI-speed failure detection.
func churnOptions(t *testing.T, attach AttachFunc) Options {
	return Options{
		Attach:          attach,
		Workers:         2,
		Heartbeat:       100 * time.Millisecond,
		LivenessTimeout: time.Second,
		RoundTimeout:    2 * time.Minute,
		Log:             t.Logf,
	}
}

// TestTCPChurnDegradedThenRecovery is the end-to-end churn story over
// real TCP loopback sockets, with an in-process deployment mirroring
// every stage for plaintext-set parity:
//
//  1. a chain member is killed mid-round (after the first iteration
//     completes): within the h−1 budget the coordinator re-plans the
//     chain over the survivors — activating the group's spare — and the
//     SAME round completes with the full plaintext set, stats recording
//     the reduced membership;
//  2. a second member of the same group is killed: the next round fails
//     typed — errors.Is ErrMemberLost AND ErrRecoveryNeeded, with the
//     lost member attributed via *protocol.Loss;
//  3. RecoverGroup reconstructs the lost shares from wire-solicited
//     buddy-group escrow pieces, installs the replacements through the
//     join path, and a clean round delivers the full set again.
func TestTCPChurnDegradedThenRecovery(t *testing.T) {
	cfg := churnConfig(2)
	d, err := protocol.NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := d.Config()
	c, err := protocol.NewClient(&vcfg)
	if err != nil {
		t.Fatal(err)
	}
	// The in-process mirror: same config and seed, same failure
	// schedule, driven through the original FailServer/RecoverGroup
	// path — the distributed engine must recover exactly the plaintext
	// sets this path does.
	mirror, err := protocol.NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := protocol.NewClient(&vcfg)
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := NewCluster(d, churnOptions(t, TCPAttach("127.0.0.1")))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// --- Stage 1: one member killed mid-round (≤ h−1) -----------------
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	victim := MemberID{GID: 1, Pos: 1} // in group 1's initial chain (positions 0,1)
	var kill sync.Once
	killed := false
	hooks := &protocol.RoundHooks{IterationDone: func(protocol.IterationStats) {
		kill.Do(func() { killed = cluster.KillMember(victim) })
	}}
	res, err := cluster.Run(context.Background(), rs, hooks)
	if err != nil {
		t.Fatalf("degraded round failed: %v", err)
	}
	if !killed {
		t.Fatal("victim was not hosted locally — KillMember found no actor")
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("degraded round recovered %q, want %q", res.Messages, want)
	}
	// The completed attempt must record the reduced membership: group 1
	// now runs on 2 of 3 members.
	degraded := false
	for _, tr := range res.Traces {
		if tr.GID == 1 && tr.Members == 2 {
			degraded = true
		}
	}
	if !degraded {
		t.Fatalf("no trace records group 1's reduced membership: %+v", res.Traces)
	}
	if n := res.Iterations[len(res.Iterations)-1].Members; n != 8 {
		t.Fatalf("final iteration reports %d live members, want 8 (one lost of 9)", n)
	}

	// In-process parity for the degraded configuration.
	if err := mirror.FailGroupMember(1, 1); err != nil {
		t.Fatal(err)
	}
	mrs, err := mirror.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, mirror, mc, mrs, 6)
	mres, err := mirror.RunRoundCtx(context.Background(), mrs, nil)
	if err != nil {
		t.Fatalf("in-process degraded round failed: %v", err)
	}
	if !reflect.DeepEqual(res.Messages, mres.Messages) {
		t.Fatalf("degraded plaintext sets diverge: distributed %q, in-process %q", res.Messages, mres.Messages)
	}

	// --- Stage 2: a second loss in group 1 (> h−1) --------------------
	if !cluster.KillMember(MemberID{GID: 1, Pos: 0}) {
		t.Fatal("second victim not hosted locally")
	}
	rs2, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs2, 6)
	_, err = cluster.Run(context.Background(), rs2, nil)
	if err == nil {
		t.Fatal("round with an under-threshold group succeeded")
	}
	if !errors.Is(err, protocol.ErrMemberLost) {
		t.Fatalf("got %v, want ErrMemberLost", err)
	}
	if !errors.Is(err, protocol.ErrRecoveryNeeded) {
		t.Fatalf("got %v, want ErrRecoveryNeeded too (budget exhausted)", err)
	}
	var loss *protocol.Loss
	if !errors.As(err, &loss) || loss.GID != 1 {
		t.Fatalf("loss not attributed to group 1: %v", err)
	}
	if need, _ := d.GroupNeedsRecovery(1); !need {
		t.Fatal("deployment does not report group 1 as needing recovery")
	}

	// The mirror agrees this configuration cannot mix.
	if err := mirror.FailGroupMember(1, 0); err != nil {
		t.Fatal(err)
	}
	mrs2, err := mirror.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, mirror, mc, mrs2, 6)
	if _, err := mirror.RunRoundCtx(context.Background(), mrs2, nil); !errors.Is(err, protocol.ErrRecoveryNeeded) {
		t.Fatalf("in-process mirror: got %v, want ErrRecoveryNeeded", err)
	}

	// --- Stage 3: buddy-group recovery over the wire ------------------
	if err := cluster.RecoverGroup(context.Background(), 1, []int{100, 101}); err != nil {
		t.Fatalf("wire recovery failed: %v", err)
	}
	if need, _ := d.GroupNeedsRecovery(1); need {
		t.Fatal("group 1 still needs recovery after RecoverGroup")
	}
	rs3, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want3 := submitAll(t, d, c, rs3, 6)
	res3, err := cluster.Run(context.Background(), rs3, nil)
	if err != nil {
		t.Fatalf("post-recovery round failed: %v", err)
	}
	if !reflect.DeepEqual(res3.Messages, want3) {
		t.Fatalf("post-recovery round recovered %q, want %q", res3.Messages, want3)
	}

	// In-process parity for the recovered configuration.
	if err := mirror.RecoverGroup(1, []int{100, 101}); err != nil {
		t.Fatal(err)
	}
	mrs3, err := mirror.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, mirror, mc, mrs3, 6)
	mres3, err := mirror.RunRoundCtx(context.Background(), mrs3, nil)
	if err != nil {
		t.Fatalf("in-process post-recovery round failed: %v", err)
	}
	if !reflect.DeepEqual(res3.Messages, mres3.Messages) {
		t.Fatalf("post-recovery plaintext sets diverge: distributed %q, in-process %q", res3.Messages, mres3.Messages)
	}
}

// TestMemnetChurnBetweenRounds: a member that dies BETWEEN rounds (no
// chain traffic touches it until the next injection) is still detected
// by the liveness tracker at the next round's first check, re-planned
// away, and the round completes.
func TestMemnetChurnBetweenRounds(t *testing.T) {
	cfg := churnConfig(1)
	d, err := protocol.NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := d.Config()
	c, err := protocol.NewClient(&vcfg)
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(d, churnOptions(t, MemAttach(transport.NewMemNetwork(wanDelay(), 256))))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	// A healthy round first, so connections and chains are warm.
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	if res, err := cluster.Run(context.Background(), rs, nil); err != nil {
		t.Fatal(err)
	} else if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("healthy round recovered %q, want %q", res.Messages, want)
	}

	// Kill a non-entry chain member of group 0 while idle.
	if !cluster.KillMember(MemberID{GID: 0, Pos: 1}) {
		t.Fatal("victim not hosted locally")
	}
	rs2, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want2 := submitAll(t, d, c, rs2, 6)
	res2, err := cluster.Run(context.Background(), rs2, nil)
	if err != nil {
		t.Fatalf("round after idle churn failed: %v", err)
	}
	if !reflect.DeepEqual(res2.Messages, want2) {
		t.Fatalf("round after idle churn recovered %q, want %q", res2.Messages, want2)
	}
	if n, _ := d.GroupLiveMembers(0); n != 2 {
		t.Fatalf("group 0 reports %d live members, want 2", n)
	}
}

// TestRemoteMemberLoss: a remotely hosted member (the atomd -member
// path) whose process dies mid-round surfaces as ErrMemberLost — and
// with no spares (threshold = k) and no buddies, the error also says
// recovery is needed.
func TestRemoteMemberLoss(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 1)
	net := transport.NewMemNetwork(nil, 256)

	remoteEP, err := net.Attach("remote/host")
	if err != nil {
		t.Fatal(err)
	}
	hostCtx, hostCancel := context.WithCancel(context.Background())
	defer hostCancel()
	hostDone := make(chan error, 1)
	go func() { hostDone <- HostMember(hostCtx, remoteEP) }()

	opts := churnOptions(t, MemAttach(net))
	opts.Remote = map[MemberID]string{{GID: 2, Pos: 1}: remoteEP.Addr()}
	cluster, err := NewCluster(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("remote round recovered %q, want %q", res.Messages, want)
	}

	// Crash the remote host: its endpoint closes, heartbeats stop.
	hostCancel()
	<-hostDone
	_ = remoteEP.Close()

	rs2, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs2, 6)
	_, err = cluster.Run(context.Background(), rs2, nil)
	if !errors.Is(err, protocol.ErrMemberLost) {
		t.Fatalf("got %v, want ErrMemberLost", err)
	}
	var loss *protocol.Loss
	if !errors.As(err, &loss) || loss.GID != 2 {
		t.Fatalf("loss not attributed to group 2: %v", err)
	}
}

// TestTimeoutErrorCarriesProgress: a round timeout names every member's
// last-known position instead of failing anonymously.
func TestTimeoutErrorCarriesProgress(t *testing.T) {
	e := &TimeoutError{
		Round: 7,
		After: 3 * time.Second,
		Progress: []MemberProgress{
			{ID: MemberID{GID: 0, Pos: 1}, Round: 7, Layer: 2, Phase: "reenc", Age: 1200 * time.Millisecond},
		},
	}
	msg := e.Error()
	for _, wantSub := range []string{"round 7 timed out", "g0/m1", "reenc", "L2"} {
		if !strings.Contains(msg, wantSub) {
			t.Fatalf("timeout error %q missing %q", msg, wantSub)
		}
	}
}
