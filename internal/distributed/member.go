package distributed

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/nizk"
	"atom/internal/parallel"
	"atom/internal/protocol"
	"atom/internal/topology"
	"atom/internal/transport"
)

// TopoSpec names a permutation network so a remote actor can rebuild
// the exact topology the deployment mixes over.
type TopoSpec struct {
	Name       string // "square" or "butterfly"
	Groups     int
	Iterations int // square: T
	Reps       int // butterfly: repetitions
}

// Build constructs the topology.
func (s TopoSpec) Build() (topology.Topology, error) {
	switch s.Name {
	case "square":
		return topology.NewSquare(s.Groups, s.Iterations)
	case "butterfly":
		reps := s.Reps
		if reps < 1 {
			reps = 2
		}
		return topology.NewButterfly(s.Groups, reps)
	default:
		return nil, fmt.Errorf("distributed: unknown topology %q", s.Name)
	}
}

// MemberConfig is everything one member actor needs for a deployment:
// its identity, its (and only its) secret, the public roster it
// verifies the other members against, and the addressing of the whole
// network.
type MemberConfig struct {
	// GID and Pos locate the member: group id and 0-based position in
	// the group's active mixing chain.
	GID int
	Pos int
	// Indices are the DVSS indices of the chain, in order (Indices[Pos]
	// is this member's).
	Indices []int
	// Secret is this member's effective (Lagrange-weighted) secret.
	Secret *ecc.Scalar
	// EffPubs are the chain's effective public keys — the public DKG
	// material proofs are verified against, never the prover's claim.
	EffPubs []*ecc.Point
	// GroupPK is this group's public key; GroupPKs indexes every
	// group's key by gid (re-encryption destinations).
	GroupPK  *ecc.Point
	GroupPKs []*ecc.Point
	// Peers are the chain's transport addresses, in chain order.
	Peers []string
	// Entry[g] is the first-member address of group g (inter-group
	// forwarding).
	Entry []string
	// Coordinator receives out/layer/abort messages.
	Coordinator string
	// Variant selects NIZK proofs vs trap accounting.
	Variant protocol.Variant
	// Workers bounds the actor's crypto worker pool (<1 = serial).
	Workers int
	// ChunkSize streams the re-encryption chain in fixed-size chunks of
	// at most this many vectors per destination batch: a member forwards
	// chunk c downstream as soon as it is re-encrypted and proved, while
	// it keeps working on chunk c+1 — so downstream verification overlaps
	// upstream proving instead of waiting for whole layers. Each chunk is
	// still verified before anything is built on it, and a bad chunk
	// aborts with the same blame attribution as a bad whole-batch step.
	// 0 (or negative) forwards each layer's batches whole.
	ChunkSize int
	// Topo rebuilds the permutation network.
	Topo TopoSpec
	// Heartbeat is the member's liveness-beacon period toward the
	// coordinator (0 disables heartbeats).
	Heartbeat time.Duration
	// Escrows are the buddy-group share fragments this member holds for
	// other groups' §4.5 recovery, provisioned at setup exactly like the
	// member's own secret.
	Escrows []protocol.EscrowPiece
	// ConfigHash is the canonical hash of the deployment's group-config
	// file (store.GroupConfig.Hash). A host started with its own hash
	// refuses joins carrying a different one — both parties must be
	// provisioned from the same file. Empty disables the check.
	ConfigHash []byte
}

// assembly accumulates a layer's inbound batches at the first member.
type assembly struct {
	got map[int][]elgamal.Vector // source gid (−1 = coordinator) → batch
	// workers is the round's worker knob carried by the inbound batch
	// messages (MixJob.Workers, threaded through every hop).
	workers int
}

// reencAssembly accumulates a chunk-streamed re-encryption chain's
// finished chunks back at the first member (step K). Per-message
// transport latency can reorder chunks in flight, so each chunk is
// buffered at its stream position (a filled slot doubles as the
// duplicate check) and the batches are concatenated in chunk order
// once the last one lands. Proof verification is not deferred by the
// buffering: every chunk was verified on receipt in handleReEnc.
type reencAssembly struct {
	parts  [][][]elgamal.Vector // per-chunk per-destination outputs
	w      work                 // per-chunk work totals, summed
	seen   int                  // chunks accumulated so far
	chunks int                  // total chunks the layer streams in
	nb     int                  // destination batch count, fixed by the first chunk
}

// tamperHook injects a malicious shuffle for one (round, layer) — the
// distributed counterpart of protocol.Adversary, installed by the
// cluster on locally hosted actors.
type tamperHook struct {
	round uint64
	layer int
	fn    func([]elgamal.Vector) []elgamal.Vector
}

// progress is an actor's last-known mixing position, piggybacked on
// every heartbeat so the coordinator can say where each member was when
// a round stalls.
type progress struct {
	Round uint64
	Layer int
	Phase string
	At    time.Time
}

// Actor is one member's event loop. All state is confined to the Serve
// goroutine except the tamper hook (set by the cluster between rounds)
// and the heartbeat snapshot (read by the heartbeat goroutine).
type Actor struct {
	cfg  MemberConfig
	ep   transport.Endpoint
	topo topology.Topology

	// pending[round][layer] assembles inbound batches (first member).
	pending map[uint64]map[int]*assembly
	// reencAsm[round][layer] assembles the chunk-streamed re-encryption
	// chain's step-K chunks (first member).
	reencAsm map[uint64]map[int]*reencAssembly
	// dropped marks rounds canceled by the coordinator.
	dropped  map[uint64]bool
	maxRound uint64

	// requireHash, when set, makes the actor refuse reconfigurations
	// whose ConfigHash differs (the host's own group-config hash).
	// onConfig, when set, persists each accepted config's wire form
	// before it is acknowledged — the crash-recovery hook.
	requireHash []byte
	onConfig    func([]byte) error

	mu     sync.Mutex
	tamper *tamperHook
	// hb snapshots what the heartbeat goroutine needs (identity +
	// progress); reconfiguration rewrites it under mu.
	hb struct {
		gid, idx    int
		coordinator string
		prog        progress
	}
}

// checkConfig validates a MemberConfig and builds its topology.
func checkConfig(cfg *MemberConfig) (topology.Topology, error) {
	if cfg.Pos < 0 || cfg.Pos >= len(cfg.Peers) || len(cfg.Peers) != len(cfg.Indices) || len(cfg.Peers) != len(cfg.EffPubs) {
		return nil, fmt.Errorf("distributed: inconsistent member config (pos %d of %d peers, %d indices, %d effpubs)",
			cfg.Pos, len(cfg.Peers), len(cfg.Indices), len(cfg.EffPubs))
	}
	topo, err := cfg.Topo.Build()
	if err != nil {
		return nil, err
	}
	if cfg.GID < 0 || cfg.GID >= topo.Groups() || len(cfg.GroupPKs) != topo.Groups() || len(cfg.Entry) != topo.Groups() {
		return nil, fmt.Errorf("distributed: member config does not match topology (gid %d, %d group keys, %d entries, G=%d)",
			cfg.GID, len(cfg.GroupPKs), len(cfg.Entry), topo.Groups())
	}
	return topo, nil
}

// NewActor builds an actor on its endpoint. The endpoint's address must
// equal cfg.Peers[cfg.Pos].
func NewActor(cfg MemberConfig, ep transport.Endpoint) (*Actor, error) {
	topo, err := checkConfig(&cfg)
	if err != nil {
		return nil, err
	}
	a := &Actor{
		cfg:      cfg,
		ep:       ep,
		topo:     topo,
		pending:  make(map[uint64]map[int]*assembly),
		reencAsm: make(map[uint64]map[int]*reencAssembly),
		dropped:  make(map[uint64]bool),
	}
	a.hb.gid = cfg.GID
	a.hb.idx = cfg.Indices[cfg.Pos]
	a.hb.coordinator = cfg.Coordinator
	a.hb.prog = progress{Phase: "idle", At: time.Now()}
	return a, nil
}

// reconfigure re-provisions the actor in place after churn: a fresh
// chain, entry table and effective secret, plus a clean per-round slate
// (the coordinator restarts the interrupted round from its sealed
// batches, so stale assemblies must not leak into the new attempt).
// Runs on the Serve goroutine.
func (a *Actor) reconfigure(cfg MemberConfig) error {
	topo, err := checkConfig(&cfg)
	if err != nil {
		return err
	}
	a.cfg = cfg
	a.topo = topo
	a.pending = make(map[uint64]map[int]*assembly)
	a.reencAsm = make(map[uint64]map[int]*reencAssembly)
	a.dropped = make(map[uint64]bool)
	a.maxRound = 0
	a.mu.Lock()
	a.hb.gid = cfg.GID
	a.hb.idx = cfg.Indices[cfg.Pos]
	a.hb.coordinator = cfg.Coordinator
	a.hb.prog = progress{Phase: "reconfigured", At: time.Now()}
	a.mu.Unlock()
	return nil
}

// noteProgress records the actor's mixing position for heartbeats.
func (a *Actor) noteProgress(round uint64, layer int, phase string) {
	a.mu.Lock()
	a.hb.prog = progress{Round: round, Layer: layer, Phase: phase, At: time.Now()}
	a.mu.Unlock()
}

// Addr returns the actor's transport address.
func (a *Actor) Addr() string { return a.ep.Addr() }

// SetTamper installs a one-round malicious-shuffle hook (testing / the
// deployment's Adversary surface). Pass fn=nil to clear.
func (a *Actor) SetTamper(round uint64, layer int, fn func([]elgamal.Vector) []elgamal.Vector) {
	a.mu.Lock()
	if fn == nil {
		a.tamper = nil
	} else {
		a.tamper = &tamperHook{round: round, layer: layer, fn: fn}
	}
	a.mu.Unlock()
}

func (a *Actor) takeTamper(round uint64, layer int) func([]elgamal.Vector) []elgamal.Vector {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.tamper != nil && a.tamper.round == round && a.tamper.layer == layer {
		return a.tamper.fn
	}
	return nil
}

// Serve processes messages until the endpoint closes, a stop message
// arrives, or ctx ends. Member errors abort the round toward the
// coordinator but keep the actor alive for subsequent rounds. A
// heartbeat goroutine beacons the actor's liveness (and last-known
// progress) to the coordinator every cfg.Heartbeat.
func (a *Actor) Serve(ctx context.Context) error {
	if a.cfg.Heartbeat > 0 {
		hbCtx, hbCancel := context.WithCancel(ctx)
		defer hbCancel()
		go a.heartbeatLoop(hbCtx, a.cfg.Heartbeat)
	}
	for {
		select {
		case msg, ok := <-a.ep.Inbox():
			if !ok {
				return nil
			}
			if msg.Type == msgStop {
				if msg.From == a.cfg.Coordinator {
					return nil
				}
				continue // a rogue peer must not stop the actor
			}
			a.handle(ctx, msg)
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// heartbeatLoop beacons liveness to the coordinator. It runs beside the
// Serve goroutine — a member grinding through a long crypto step keeps
// beating, so slowness is never mistaken for death; only a crashed
// process (or closed endpoint) goes silent.
func (a *Actor) heartbeatLoop(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		a.mu.Lock()
		gid, idx, coord, prog := a.hb.gid, a.hb.idx, a.hb.coordinator, a.hb.prog
		a.mu.Unlock()
		_ = a.ep.SendCtx(ctx, coord, &transport.Message{
			Type: msgHeartbeat, Round: prog.Round,
			Payload: encodeHeartbeatMsg(gid, idx, prog.Round, prog.Layer, prog.Phase),
		})
		select {
		case <-tick.C:
		case <-ctx.Done():
			return
		}
	}
}

// senderOK authenticates a message's transport-level sender address:
// each chain message type has exactly one legitimate origin, so frames
// from anyone else are dropped without aborting the round or touching
// per-round state — a rogue peer must not be able to cancel rounds,
// poison future round ids, or inject chain steps. The in-memory
// network makes From unforgeable; over raw TCP it is spoofable, which
// is the §2.1 assumption that deployment links are authenticated (TLS).
func (a *Actor) senderOK(msg *transport.Message) bool {
	k := len(a.cfg.Peers)
	switch msg.Type {
	case msgCancel, msgReconfig, msgShareReq:
		return msg.From == a.cfg.Coordinator
	case msgShuffle:
		return a.cfg.Pos > 0 && msg.From == a.cfg.Peers[a.cfg.Pos-1]
	case msgDivide:
		return a.cfg.Pos == 0 && msg.From == a.cfg.Peers[k-1]
	case msgReEnc:
		return msg.From == a.cfg.Peers[(a.cfg.Pos-1+k)%k]
	default:
		return true // msgBatch validates its origin against the decoded src
	}
}

// handle dispatches one message; failures abort the round.
func (a *Actor) handle(ctx context.Context, msg *transport.Message) {
	round := msg.Round
	if !a.senderOK(msg) {
		return
	}
	switch msg.Type {
	case msgCancel:
		a.drop(round)
		return
	case msgJoin, msgJoined, msgHeartbeat, msgShareResp:
		return // setup/liveness traffic, not the actor's to handle
	case msgReconfig:
		// In-place re-provisioning after churn. A bad payload is simply
		// not acknowledged — the coordinator's ack timeout treats the
		// member as lost rather than trusting a half-applied config. A
		// config-hash mismatch, by contrast, is answered explicitly: the
		// coordinator must learn the fleet disagrees on its parameters.
		cfg, err := UnmarshalMemberConfig(msg.Payload)
		if err != nil {
			return
		}
		if len(a.requireHash) > 0 && !bytes.Equal(cfg.ConfigHash, a.requireHash) {
			_ = a.ep.SendCtx(ctx, a.cfg.Coordinator, &transport.Message{
				Type: msgJoined, Payload: encodeJoinAck(false, "group-config hash mismatch"),
			})
			return
		}
		if err := a.reconfigure(*cfg); err != nil {
			return
		}
		if a.onConfig != nil {
			// Persist before acknowledging: once the coordinator has the
			// ack it will count on this member re-adopting this exact
			// config after a crash.
			if err := a.onConfig(msg.Payload); err != nil {
				return
			}
		}
		_ = a.ep.SendCtx(ctx, a.cfg.Coordinator, &transport.Message{Type: msgJoined, Payload: encodeJoinAck(true, "")})
		return
	case msgShareReq:
		a.handleShareReq(ctx, msg)
		return
	}
	// Per-round state (observeRound pruning, assembly) is only touched
	// inside the handlers, after each message's origin is fully
	// authenticated — an unauthenticated frame with a huge round id
	// must not prune the live round's assemblies.
	if a.dropped[round] {
		return
	}
	var err error
	layer := -1
	switch msg.Type {
	case msgBatch:
		layer, err = a.handleBatch(ctx, round, msg)
	case msgShuffle:
		layer, err = a.handleShuffle(ctx, round, msg)
	case msgDivide:
		layer, err = a.handleDivide(ctx, round, msg)
	case msgReEnc:
		layer, err = a.handleReEnc(ctx, round, msg)
	default:
		return // not ours (coordinator traffic, unknown types)
	}
	if err != nil {
		a.drop(round)
		a.abort(ctx, round, layer, err)
	}
}

// maxPipelinedRounds caps Options.MaxInFlight: more concurrent rounds
// than this would let a live round's actor state age out of the
// members' pruning window below.
const maxPipelinedRounds = 8

// pipelineWindow is how many base rounds of per-round state an actor
// retains behind the newest it has seen. Cross-round pipelining means a
// batch for round r can still arrive while rounds up to
// r+maxPipelinedRounds−1 are already flowing, so the window keeps 2×
// that margin; anything further back is settled (published, aborted, or
// canceled) and its assemblies are garbage.
const pipelineWindow = 2 * maxPipelinedRounds

// observeRound prunes state of rounds that have fallen out of the
// pipelining window. The wire round id carries the attempt counter in
// its low byte, so the window compares base rounds (id >> 8): attempts
// of live rounds are never pruned by each other — stale attempts die by
// explicit msgCancel instead.
func (a *Actor) observeRound(round uint64) {
	if round <= a.maxRound {
		return
	}
	a.maxRound = round
	floor := a.maxRound >> 8
	for r := range a.pending {
		if floor-(r>>8) > pipelineWindow {
			delete(a.pending, r)
		}
	}
	for r := range a.reencAsm {
		if floor-(r>>8) > pipelineWindow {
			delete(a.reencAsm, r)
		}
	}
	for r := range a.dropped {
		if floor-(r>>8) > pipelineWindow {
			delete(a.dropped, r)
		}
	}
}

func (a *Actor) drop(round uint64) {
	a.dropped[round] = true
	delete(a.pending, round)
	delete(a.reencAsm, round)
}

// handleShareReq answers the coordinator's §4.5 escrow solicitation:
// if this member holds a piece of the named failed share, it hands it
// back. Pieces travel over the same channel the member's own secret
// arrived on at join — the §2.1 protected-link assumption.
func (a *Actor) handleShareReq(ctx context.Context, msg *transport.Message) {
	gid, pos, err := decodeShareReqMsg(msg.Payload)
	if err != nil {
		return
	}
	for _, esc := range a.cfg.Escrows {
		if esc.GID == gid && esc.Pos == pos {
			_ = a.ep.SendCtx(ctx, a.cfg.Coordinator, &transport.Message{
				Type:    msgShareResp,
				Payload: encodeShareRespMsg(gid, pos, a.cfg.Indices[a.cfg.Pos], esc.Piece),
			})
			return
		}
	}
}

// peerDown marks a failed chain delivery: the member at addr — group
// gid, DVSS index idx (−1 for "that group's first member") — is
// unreachable, so the round cannot proceed until the coordinator
// re-plans around it.
type peerDown struct {
	gid, idx int
	addr     string
	err      error
}

func (p *peerDown) Error() string {
	return fmt.Sprintf("distributed: peer %s (group %d member %d) unreachable: %v", p.addr, p.gid, p.idx, p.err)
}

func (p *peerDown) Unwrap() error { return p.err }

// sendChain delivers one chain message, classifying an unreachable
// destination as a peer-down failure attributed to (gid, idx) so the
// coordinator learns WHICH member is gone instead of receiving an
// opaque abort.
func (a *Actor) sendChain(ctx context.Context, to string, gid, idx int, msg *transport.Message) error {
	err := a.ep.SendCtx(ctx, to, msg)
	if err != nil && transport.Unreachable(err) {
		return &peerDown{gid: gid, idx: idx, addr: to, err: err}
	}
	return err
}

// abort reports a member failure to the coordinator, classified for the
// protocol error taxonomy.
func (a *Actor) abort(ctx context.Context, round uint64, layer int, err error) {
	class, gid, member := abortInternal, a.cfg.GID, -1
	var blame *protocol.Blame
	var pd *peerDown
	switch {
	case errors.As(err, &blame):
		class, gid, member = abortProof, blame.GID, blame.Member
	case errors.As(err, &pd):
		class, gid, member = abortPeer, pd.gid, pd.idx
	case parallel.Canceled(err):
		class = abortCanceled
	}
	_ = a.ep.SendCtx(ctx, a.cfg.Coordinator, &transport.Message{
		Type: msgAbort, Round: round,
		Payload: encodeAbortMsg(layer, gid, member, class, err.Error()),
	})
}

// engine builds the member's crypto engine (fresh pool per step so busy
// time is attributable). workers is the round's knob from the message
// chain; values below 1 fall back to the actor's configured default.
func (a *Actor) engine(ctx context.Context, workers int) (*protocol.MemberEngine, *parallel.Pool) {
	if workers < 1 {
		workers = a.cfg.Workers
	}
	pool := parallel.New(ctx, workers)
	return &protocol.MemberEngine{
		GID:     a.cfg.GID,
		Variant: a.cfg.Variant,
		GroupPK: a.cfg.GroupPK,
		Pool:    pool,
	}, pool
}

// checkLayer bounds a wire-supplied layer before it reaches topology
// arithmetic (a hostile layer must fail typed, not panic or smuggle a
// mid-network batch onto the ⊥ exit path).
func (a *Actor) checkLayer(layer int) error {
	if layer < 0 || layer >= a.topo.Iterations() {
		return fmt.Errorf("distributed: group %d: out-of-range layer %d", a.cfg.GID, layer)
	}
	return nil
}

// expectedSources returns how many batch messages assemble a layer.
func (a *Actor) expectedSources(layer int) int {
	if layer == 0 {
		return 1 // the coordinator's injection
	}
	return len(a.topo.Sources(layer, a.cfg.GID))
}

// destKeys resolves the layer's forwarding: destination gids and their
// public keys, or the single ⊥ destination at the exit layer.
func (a *Actor) destKeys(layer int) ([]int, []*ecc.Point) {
	dests := a.topo.Neighbors(layer, a.cfg.GID)
	if len(dests) == 0 {
		return nil, []*ecc.Point{nil}
	}
	pks := make([]*ecc.Point, len(dests))
	for i, dst := range dests {
		pks[i] = a.cfg.GroupPKs[dst]
	}
	return dests, pks
}

// handleBatch (first member only) assembles a layer's inbound batches
// and starts the shuffle chain once the last one lands.
func (a *Actor) handleBatch(ctx context.Context, round uint64, msg *transport.Message) (int, error) {
	layer, src, workers, vecs, err := decodeBatchMsg(msg.Payload)
	if err != nil {
		return -1, fmt.Errorf("distributed: group %d: bad batch payload: %w", a.cfg.GID, err)
	}
	if a.cfg.Pos != 0 {
		return layer, fmt.Errorf("distributed: group %d member %d received a batch (first member's job)", a.cfg.GID, a.cfg.Pos)
	}
	if err := a.checkLayer(layer); err != nil {
		return layer, err
	}
	// Authenticate the batch's origin: the coordinator for the layer-0
	// injection, the source group's first member otherwise. Forged
	// batches are ignored — they must not corrupt assembly counting.
	if src == -1 {
		if msg.From != a.cfg.Coordinator {
			return layer, nil
		}
	} else if src < 0 || src >= a.topo.Groups() || msg.From != a.cfg.Entry[src] {
		return layer, nil
	}
	a.observeRound(round)
	byLayer := a.pending[round]
	if byLayer == nil {
		byLayer = make(map[int]*assembly)
		a.pending[round] = byLayer
	}
	asm := byLayer[layer]
	if asm == nil {
		asm = &assembly{got: make(map[int][]elgamal.Vector)}
		byLayer[layer] = asm
	}
	if _, dup := asm.got[src]; dup {
		return layer, fmt.Errorf("distributed: group %d layer %d: duplicate batch from %d", a.cfg.GID, layer, src)
	}
	a.noteProgress(round, layer, "assemble")
	asm.got[src] = vecs
	if workers > asm.workers {
		asm.workers = workers
	}
	if len(asm.got) < a.expectedSources(layer) {
		return layer, nil
	}
	delete(byLayer, layer)
	// Concatenate in ascending source order — the deterministic order
	// the in-process mixer uses.
	srcs := make([]int, 0, len(asm.got))
	for s := range asm.got {
		srcs = append(srcs, s)
	}
	sort.Ints(srcs)
	var batch []elgamal.Vector
	for _, s := range srcs {
		batch = append(batch, asm.got[s]...)
	}
	return layer, a.runShuffle(ctx, round, layer, batch, work{Msgs: len(batch), Workers: asm.workers})
}

// runShuffle performs this member's shuffle of the layer and forwards
// the chain.
func (a *Actor) runShuffle(ctx context.Context, round uint64, layer int, in []elgamal.Vector, w work) error {
	if len(in) == 0 {
		// Empty layer: nothing to permute or prove anywhere in the
		// chain — pass through, exactly like the in-process group.
		_, pks := a.destKeys(layer)
		return a.finishLayer(ctx, round, layer, make([][]elgamal.Vector, len(pks)), w)
	}
	a.noteProgress(round, layer, "shuffle")
	engine, pool := a.engine(ctx, w.Workers)
	myIdx := a.cfg.Indices[a.cfg.Pos]
	out, perm, rands, err := engine.Shuffle(myIdx, in, rand.Reader)
	if err != nil {
		return err
	}
	w.Shuffles++
	if fn := a.takeTamper(round, layer); fn != nil {
		if evil := fn(out); evil != nil {
			out = evil
		}
	}
	step, err := engine.ProveStep(myIdx, in, out, perm, rands, rand.Reader)
	if err != nil {
		return err
	}
	w.BusyNs += pool.Busy().Nanoseconds()

	var proofBytes []byte
	var wireIn []elgamal.Vector
	if step.Proof != nil {
		proofBytes = step.Proof.Marshal()
		wireIn = in // only verification needs the input batch
	}
	k := len(a.cfg.Peers)
	typ, next := msgShuffle, a.cfg.Pos+1
	if a.cfg.Pos == k-1 {
		typ, next = msgDivide, 0
	}
	return a.sendChain(ctx, a.cfg.Peers[next], a.cfg.GID, a.cfg.Indices[next], &transport.Message{
		Type: typ, Round: round,
		Payload: encodeShuffleMsg(layer, w, wireIn, out, proofBytes),
	})
}

// verifyShuffleStep checks the predecessor's step in the NIZK variant.
func (a *Actor) verifyShuffleStep(ctx context.Context, senderPos, layer int, in, out []elgamal.Vector, proofBytes []byte, w *work) error {
	if a.cfg.Variant != protocol.VariantNIZK {
		return nil
	}
	engine, pool := a.engine(ctx, w.Workers)
	proof, err := nizk.UnmarshalShufProof(proofBytes)
	senderIdx := a.cfg.Indices[senderPos]
	if err != nil {
		return &protocol.Blame{GID: a.cfg.GID, Member: senderIdx, Err: fmt.Errorf(
			"%w: group %d aborts — member %d shuffle rejected: undecodable proof: %v",
			protocol.ErrProofRejected, a.cfg.GID, senderIdx, err)}
	}
	step := &protocol.ShuffleStep{Member: senderIdx, In: in, Out: out, Proof: proof}
	if err := engine.VerifyShuffle(step, pool); err != nil {
		return err
	}
	w.Proofs++
	w.BusyNs += pool.Busy().Nanoseconds()
	return nil
}

// handleShuffle verifies the predecessor's shuffle and adds this
// member's own.
func (a *Actor) handleShuffle(ctx context.Context, round uint64, msg *transport.Message) (int, error) {
	layer, w, in, out, proofBytes, err := decodeShuffleMsg(msg.Payload)
	if err != nil {
		return -1, fmt.Errorf("distributed: group %d: bad shuffle payload: %w", a.cfg.GID, err)
	}
	if a.cfg.Pos == 0 {
		return layer, fmt.Errorf("distributed: group %d: shuffle message at the first member", a.cfg.GID)
	}
	a.observeRound(round)
	if err := a.checkLayer(layer); err != nil {
		return layer, err
	}
	if err := a.verifyShuffleStep(ctx, a.cfg.Pos-1, layer, in, out, proofBytes, &w); err != nil {
		return layer, err
	}
	return layer, a.runShuffle(ctx, round, layer, out, w)
}

// handleDivide (first member) closes the shuffle chain: verify the last
// member's step, divide into β batches, start the re-encryption chain.
func (a *Actor) handleDivide(ctx context.Context, round uint64, msg *transport.Message) (int, error) {
	layer, w, in, out, proofBytes, err := decodeShuffleMsg(msg.Payload)
	if err != nil {
		return -1, fmt.Errorf("distributed: group %d: bad divide payload: %w", a.cfg.GID, err)
	}
	if a.cfg.Pos != 0 {
		return layer, fmt.Errorf("distributed: group %d: divide message at member %d", a.cfg.GID, a.cfg.Pos)
	}
	a.observeRound(round)
	if err := a.checkLayer(layer); err != nil {
		return layer, err
	}
	if err := a.verifyShuffleStep(ctx, len(a.cfg.Peers)-1, layer, in, out, proofBytes, &w); err != nil {
		return layer, err
	}
	_, pks := a.destKeys(layer)
	return layer, a.startReEnc(ctx, round, layer, protocol.Divide(out, len(pks)), w)
}

// startReEnc opens the layer's re-encryption chain. With chunking off
// the whole divided batch travels as one message; with ChunkSize set it
// streams in fixed-size chunks — each chunk is re-encrypted, proved and
// forwarded before the next one is touched, so the successor verifies
// chunk c while this member is still proving chunk c+1. The inherited
// shuffle-chain accounting rides chunk 0; later chunks carry only their
// own additions (the first member sums them back together at step K).
func (a *Actor) startReEnc(ctx context.Context, round uint64, layer int, ins [][]elgamal.Vector, w work) error {
	chunkSz := a.cfg.ChunkSize
	chunks := 1
	if chunkSz > 0 {
		for _, b := range ins {
			if n := (len(b) + chunkSz - 1) / chunkSz; n > chunks {
				chunks = n
			}
		}
	}
	if chunks == 1 {
		return a.runReEnc(ctx, round, layer, ins, w, 0, 1)
	}
	for c := 0; c < chunks; c++ {
		sub := make([][]elgamal.Vector, len(ins))
		for i, b := range ins {
			lo, hi := c*chunkSz, (c+1)*chunkSz
			if lo > len(b) {
				lo = len(b)
			}
			if hi > len(b) {
				hi = len(b)
			}
			sub[i] = b[lo:hi]
		}
		cw := work{Workers: w.Workers}
		if c == 0 {
			cw = w
		}
		if err := a.runReEnc(ctx, round, layer, sub, cw, c, chunks); err != nil {
			return err
		}
	}
	return nil
}

// runReEnc performs this member's decrypt-and-reencrypt of one chunk
// (chunk 0 of 1 = the whole layer) across every destination batch and
// forwards the chain (step K wraps to the first member).
func (a *Actor) runReEnc(ctx context.Context, round uint64, layer int, ins [][]elgamal.Vector, w work, chunk, chunks int) error {
	a.noteProgress(round, layer, "reenc")
	engine, pool := a.engine(ctx, w.Workers)
	_, pks := a.destKeys(layer)
	if len(ins) != len(pks) {
		return fmt.Errorf("distributed: group %d layer %d: %d batches for %d destinations", a.cfg.GID, layer, len(ins), len(pks))
	}
	myIdx := a.cfg.Indices[a.cfg.Pos]
	myEffPub := a.cfg.EffPubs[a.cfg.Pos]
	batches := make([]reencBatch, len(ins))
	for i := range ins {
		if len(ins[i]) == 0 {
			continue
		}
		step, err := engine.ReEnc(myIdx, a.cfg.Secret, myEffPub, pks[i], ins[i], rand.Reader)
		if err != nil {
			return err
		}
		w.ReEncs += len(ins[i])
		batches[i].Out = step.Out
		if step.Proofs != nil {
			batches[i].In = step.In
			batches[i].Proofs = make([][]byte, len(step.Proofs))
			for j, p := range step.Proofs {
				batches[i].Proofs[j] = p.Marshal()
			}
		}
	}
	w.BusyNs += pool.Busy().Nanoseconds()
	k := len(a.cfg.Peers)
	next := (a.cfg.Pos + 1) % k
	return a.sendChain(ctx, a.cfg.Peers[next], a.cfg.GID, a.cfg.Indices[next], &transport.Message{
		Type: msgReEnc, Round: round,
		Payload: encodeReEncMsg(layer, w, a.cfg.Pos+1, chunk, chunks, batches),
	})
}

// handleReEnc verifies the predecessor's re-encryption steps, then
// either re-encrypts itself (mid-chain) or — at step K, back at the
// first member — clears the Y slots and forwards the finished batches.
// Chunk-streamed chains route through here once per chunk: mid-chain
// members are stateless (verify the chunk, build on it, forward it);
// the first member accumulates chunks and finishes the layer when the
// last one lands. Verify-before-build-on holds per chunk.
func (a *Actor) handleReEnc(ctx context.Context, round uint64, msg *transport.Message) (int, error) {
	layer, w, step, chunk, chunks, batches, err := decodeReEncMsg(msg.Payload)
	if err != nil {
		return -1, fmt.Errorf("distributed: group %d: bad reenc payload: %w", a.cfg.GID, err)
	}
	k := len(a.cfg.Peers)
	if step < 1 || step > k || a.cfg.Pos != step%k {
		return layer, fmt.Errorf("distributed: group %d member %d: reenc step %d misrouted", a.cfg.GID, a.cfg.Pos, step)
	}
	if chunks < 1 || chunk < 0 || chunk >= chunks {
		return layer, fmt.Errorf("distributed: group %d layer %d: reenc chunk %d of %d out of range", a.cfg.GID, layer, chunk, chunks)
	}
	a.observeRound(round)
	if err := a.checkLayer(layer); err != nil {
		return layer, err
	}
	_, pks := a.destKeys(layer)
	if len(batches) != len(pks) {
		return layer, fmt.Errorf("distributed: group %d layer %d: %d reenc batches for %d destinations", a.cfg.GID, layer, len(batches), len(pks))
	}
	if a.cfg.Variant == protocol.VariantNIZK {
		engine, pool := a.engine(ctx, w.Workers)
		senderIdx := a.cfg.Indices[step-1]
		senderEffPub := a.cfg.EffPubs[step-1]
		for i := range batches {
			if len(batches[i].Out) == 0 {
				continue
			}
			proofs := make([]*nizk.ReEncProof, len(batches[i].Proofs))
			for j, pb := range batches[i].Proofs {
				if proofs[j], err = nizk.UnmarshalReEncProof(pb); err != nil {
					return layer, &protocol.Blame{GID: a.cfg.GID, Member: senderIdx, Err: fmt.Errorf(
						"%w: group %d aborts — member %d reencryption rejected: undecodable proof: %v",
						protocol.ErrProofRejected, a.cfg.GID, senderIdx, err)}
				}
			}
			s := &protocol.ReEncStep{
				Member: senderIdx, EffPub: senderEffPub, DestPK: pks[i],
				In: batches[i].In, Out: batches[i].Out, Proofs: proofs,
			}
			if err := engine.VerifyReEnc(s); err != nil {
				return layer, err
			}
			w.Proofs += len(batches[i].Out)
		}
		w.BusyNs += pool.Busy().Nanoseconds()
	}
	outs := make([][]elgamal.Vector, len(batches))
	for i := range batches {
		outs[i] = batches[i].Out
	}
	if step == k {
		if chunks == 1 {
			return layer, a.finishLayer(ctx, round, layer, outs, w)
		}
		return layer, a.assembleReEncChunk(ctx, round, layer, outs, w, chunk, chunks)
	}
	return layer, a.runReEnc(ctx, round, layer, outs, w, chunk, chunks)
}

// assembleReEncChunk (first member, step K of a chunk-streamed chain)
// buffers one verified chunk at its stream position and finishes the
// layer once every chunk has landed. A chunk that contradicts the
// stream shape — different total, a position already filled, a batch
// count that does not match — is a protocol violation and aborts the
// round.
func (a *Actor) assembleReEncChunk(ctx context.Context, round uint64, layer int, outs [][]elgamal.Vector, w work, chunk, chunks int) error {
	byLayer := a.reencAsm[round]
	if byLayer == nil {
		byLayer = make(map[int]*reencAssembly)
		a.reencAsm[round] = byLayer
	}
	asm := byLayer[layer]
	if asm == nil {
		asm = &reencAssembly{parts: make([][][]elgamal.Vector, chunks), chunks: chunks, nb: len(outs)}
		byLayer[layer] = asm
	}
	if asm.chunks != chunks || chunk >= len(asm.parts) || asm.parts[chunk] != nil || len(outs) != asm.nb {
		return fmt.Errorf("distributed: group %d layer %d: reenc chunk %d of %d inconsistent with stream (have %d of %d)",
			a.cfg.GID, layer, chunk, chunks, asm.seen, asm.chunks)
	}
	asm.parts[chunk] = outs
	asm.w.add(w)
	asm.seen++
	if asm.seen < asm.chunks {
		return nil
	}
	delete(byLayer, layer)
	if len(byLayer) == 0 {
		delete(a.reencAsm, round)
	}
	final := make([][]elgamal.Vector, asm.nb)
	for _, part := range asm.parts {
		for i := range part {
			final[i] = append(final[i], part[i]...)
		}
	}
	return a.finishLayer(ctx, round, layer, final, asm.w)
}

// finishLayer (first member) clears the Y slots and hands each finished
// batch to its next-layer group — or, at the exit layer, delivers the
// plaintext vectors to the coordinator — then reports the group's layer
// accounting.
func (a *Actor) finishLayer(ctx context.Context, round uint64, layer int, batches [][]elgamal.Vector, w work) error {
	a.noteProgress(round, layer, "forward")
	for i := range batches {
		batches[i] = protocol.ClearYBatch(batches[i])
	}
	if layer == a.topo.Iterations()-1 {
		if err := a.ep.SendCtx(ctx, a.cfg.Coordinator, &transport.Message{
			Type: msgOut, Round: round,
			Payload: encodeOutMsg(a.cfg.GID, batches[0]),
		}); err != nil {
			return err
		}
	} else {
		dests, _ := a.destKeys(layer)
		if len(batches) != len(dests) {
			return fmt.Errorf("distributed: group %d layer %d: %d batches for %d destinations", a.cfg.GID, layer, len(batches), len(dests))
		}
		for i, dst := range dests {
			// A dead next-layer entry member is reported as a loss in
			// THAT group (idx −1 = its first member; the coordinator
			// resolves the identity from its own chain map).
			if err := a.sendChain(ctx, a.cfg.Entry[dst], dst, -1, &transport.Message{
				Type: msgBatch, Round: round,
				Payload: encodeBatchMsg(layer+1, a.cfg.GID, w.Workers, batches[i]),
			}); err != nil {
				return err
			}
		}
	}
	return a.ep.SendCtx(ctx, a.cfg.Coordinator, &transport.Message{
		Type: msgLayer, Round: round,
		Payload: encodeLayerMsg(a.cfg.GID, layer, w),
	})
}
