package distributed

import (
	"context"

	"atom/internal/transport"
)

// HostMember serves one group member on an endpoint whose material
// arrives over the wire: it waits for the coordinator's join message
// (a marshaled MemberConfig), acknowledges it, and runs the actor loop
// until the endpoint closes, a stop message arrives, or ctx ends.
//
// This is how cmd/atomd hosts members of a deployment whose setup runs
// elsewhere: start `atomd -member -listen host:port` on each machine,
// then build the Cluster with Options.Remote pointing at those
// addresses. The join channel carries the member's secret share — it
// stands in for the out-of-band provisioning (or a networked DKG) of a
// production deployment and must be protected accordingly (the §2.1
// TLS assumption).
func HostMember(ctx context.Context, ep transport.Endpoint) error {
	for {
		select {
		case msg, ok := <-ep.Inbox():
			if !ok {
				return nil
			}
			switch msg.Type {
			case msgJoin:
				// A malformed or inconsistent join (any unauthenticated
				// peer can send one) must not kill the host — stay in
				// the loop and keep waiting for the real coordinator.
				cfg, err := UnmarshalMemberConfig(msg.Payload)
				if err != nil {
					continue
				}
				actor, err := NewActor(*cfg, ep)
				if err != nil {
					continue
				}
				if err := ep.SendCtx(ctx, msg.From, &transport.Message{Type: msgJoined}); err != nil {
					continue
				}
				return actor.Serve(ctx)
			case msgStop:
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
