package distributed

import (
	"bytes"
	"context"
	"fmt"

	"atom/internal/protocol"
	"atom/internal/transport"
)

// HostOptions tunes a remotely hosted member (HostMemberOpts).
type HostOptions struct {
	// ConfigHash is the canonical hash of the group-config file this
	// host was provisioned from (store.GroupConfig.Hash). When set, a
	// join or reconfiguration carrying a different hash is refused with
	// an explicit negative acknowledgment instead of adopted — the
	// coordinator and every member must agree on the file. Empty
	// disables the check.
	ConfigHash []byte
	// OnConfig persists an accepted config's wire form before it is
	// acknowledged, so a crash after the ack can always replay it. A
	// persistence failure refuses the join: a config the host cannot
	// make durable is a config it must not promise to hold.
	OnConfig func(cfg []byte) error
	// Resume is a previously persisted member config (the bytes OnConfig
	// received). When set, the host re-adopts it immediately — skipping
	// the join wait — and announces itself to the coordinator as a
	// rejoin, the restart-with-state-intact path.
	Resume []byte
}

// HostMember serves one group member on an endpoint whose material
// arrives over the wire: it waits for the coordinator's join message
// (a marshaled MemberConfig), acknowledges it, and runs the actor loop
// until the endpoint closes, a stop message arrives, or ctx ends.
//
// This is how cmd/atomd hosts members of a deployment whose setup runs
// elsewhere: start `atomd -member -listen host:port` on each machine,
// then build the Cluster with Options.Remote pointing at those
// addresses. The join channel carries the member's secret share — it
// stands in for the out-of-band provisioning (or a networked DKG) of a
// production deployment and must be protected accordingly (the §2.1
// TLS assumption).
func HostMember(ctx context.Context, ep transport.Endpoint) error {
	return HostMemberOpts(ctx, ep, HostOptions{})
}

// HostMemberOpts is HostMember with a config-hash gate, a persistence
// hook, and crash-restart resumption — the `atomd -member -state-dir`
// surface.
func HostMemberOpts(ctx context.Context, ep transport.Endpoint, opts HostOptions) error {
	if len(opts.Resume) > 0 {
		return resumeMember(ctx, ep, opts)
	}
	for {
		select {
		case msg, ok := <-ep.Inbox():
			if !ok {
				return nil
			}
			switch msg.Type {
			case msgJoin:
				// A malformed or inconsistent join (any unauthenticated
				// peer can send one) must not kill the host — stay in
				// the loop and keep waiting for the real coordinator.
				cfg, err := UnmarshalMemberConfig(msg.Payload)
				if err != nil {
					continue
				}
				if len(opts.ConfigHash) > 0 && !bytes.Equal(cfg.ConfigHash, opts.ConfigHash) {
					// The refusal is explicit: a coordinator provisioned
					// from a different group-config file must learn it
					// immediately, not via an ack timeout.
					_ = ep.SendCtx(ctx, msg.From, &transport.Message{
						Type: msgJoined, Payload: encodeJoinAck(false, "group-config hash mismatch"),
					})
					continue
				}
				actor, err := NewActor(*cfg, ep)
				if err != nil {
					continue
				}
				if opts.OnConfig != nil {
					// Durable before acknowledged: after the ack the
					// coordinator counts on this exact config surviving
					// a crash of this host.
					if err := opts.OnConfig(msg.Payload); err != nil {
						_ = ep.SendCtx(ctx, msg.From, &transport.Message{
							Type: msgJoined, Payload: encodeJoinAck(false, "state persistence failed"),
						})
						continue
					}
				}
				actor.requireHash = opts.ConfigHash
				actor.onConfig = opts.OnConfig
				if err := ep.SendCtx(ctx, msg.From, &transport.Message{Type: msgJoined, Payload: encodeJoinAck(true, "")}); err != nil {
					continue
				}
				return actor.Serve(ctx)
			case msgStop:
				return nil
			}
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// resumeMember re-adopts a persisted config after a crash: the actor
// comes back under its old identity at its old address, announces the
// rejoin to the coordinator (whose liveness tracker re-admits it
// without re-planning), and serves as if the process had never died.
func resumeMember(ctx context.Context, ep transport.Endpoint, opts HostOptions) error {
	cfg, err := UnmarshalMemberConfig(opts.Resume)
	if err != nil {
		return fmt.Errorf("%w: persisted member config: %v", protocol.ErrStateCorrupt, err)
	}
	if len(opts.ConfigHash) > 0 && len(cfg.ConfigHash) > 0 && !bytes.Equal(cfg.ConfigHash, opts.ConfigHash) {
		return fmt.Errorf("%w: persisted member config was provisioned under a different group config", protocol.ErrConfigMismatch)
	}
	actor, err := NewActor(*cfg, ep)
	if err != nil {
		return fmt.Errorf("%w: persisted member config: %v", protocol.ErrStateCorrupt, err)
	}
	actor.requireHash = opts.ConfigHash
	actor.onConfig = opts.OnConfig
	// Unsolicited rejoin announcement: distinguishable from a join ack
	// by its reason, so a coordinator mid-provision never mistakes a
	// restarted member's greeting for a fresh config acknowledgment.
	_ = ep.SendCtx(ctx, cfg.Coordinator, &transport.Message{
		Type: msgJoined, Payload: encodeJoinAck(true, joinAckRejoin),
	})
	return actor.Serve(ctx)
}
