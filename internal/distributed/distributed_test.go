package distributed

import (
	"bytes"
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"testing"
	"time"

	"atom/internal/elgamal"
	"atom/internal/protocol"
	"atom/internal/transport"
)

// testConfig is small enough for -race CI but still a real network:
// 3 groups of 2 members over a 3-iteration square lattice.
func testConfig(variant protocol.Variant, workers int) protocol.Config {
	return protocol.Config{
		NumServers:  12,
		NumGroups:   3,
		GroupSize:   2,
		MessageSize: 24,
		Variant:     variant,
		Iterations:  3,
		Mix:         protocol.MixConfig{Workers: workers},
		Seed:        []byte("distributed-test"),
	}
}

func newDeployment(t *testing.T, variant protocol.Variant, workers int) (*protocol.Deployment, *protocol.Client) {
	t.Helper()
	cfg := testConfig(variant, workers)
	d, err := protocol.NewDeployment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vcfg := d.Config()
	c, err := protocol.NewClient(&vcfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, c
}

// submitAll puts n distinct messages into rs and returns the sorted
// plaintext set a successful round must recover.
func submitAll(t *testing.T, d *protocol.Deployment, c *protocol.Client, rs *protocol.RoundState, n int) [][]byte {
	t.Helper()
	var want [][]byte
	for u := 0; u < n; u++ {
		gid := u % d.NumGroups()
		gpk, err := d.GroupPK(gid)
		if err != nil {
			t.Fatal(err)
		}
		msg := []byte(fmt.Sprintf("msg-%02d", u))
		want = append(want, msg)
		switch rs.Variant() {
		case protocol.VariantNIZK:
			sub, err := c.Submit(msg, gpk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := rs.SubmitUser(u, sub); err != nil {
				t.Fatal(err)
			}
		case protocol.VariantTrap:
			tpk, err := rs.TrusteePK()
			if err != nil {
				t.Fatal(err)
			}
			sub, err := c.SubmitTrap(msg, gpk, tpk, gid, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			if err := rs.SubmitTrapUser(u, sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
	return want
}

func wanDelay() transport.LatencyFunc {
	// A scaled-down §6 WAN: deterministic pairwise latency, small
	// enough for CI but real enough to exercise delayed delivery and
	// cross-layer pipelining.
	return transport.PairwiseLatency("dist-test", time.Millisecond, 4*time.Millisecond)
}

// TestMemnetRoundMatchesInProcess is the core parity check: the same
// deployment runs one round in-process and one round as message-passing
// actors over the latency-modeled in-memory network, with workers>1
// inside the member actors; both must recover exactly the submitted
// plaintext set.
func TestMemnetRoundMatchesInProcess(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 2)

	rs1, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs1, 9)
	res1, err := d.RunRoundCtx(context.Background(), rs1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Messages, want) {
		t.Fatalf("in-process round recovered %q, want %q", res1.Messages, want)
	}

	cluster, err := NewCluster(d, Options{
		Attach:  MemAttach(transport.NewMemNetwork(wanDelay(), 256)),
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs2, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs2, 9)
	var iterations int
	hooks := &protocol.RoundHooks{IterationDone: func(protocol.IterationStats) { iterations++ }}
	res2, err := cluster.Run(context.Background(), rs2, hooks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Messages, want) {
		t.Fatalf("distributed round recovered %q, want %q", res2.Messages, want)
	}
	if iterations != d.Topology().Iterations() {
		t.Fatalf("IterationDone fired %d times, want %d", iterations, d.Topology().Iterations())
	}
	if len(res2.Traces) != d.Topology().Iterations()*d.NumGroups() {
		t.Fatalf("got %d traces, want %d", len(res2.Traces), d.Topology().Iterations()*d.NumGroups())
	}
	var shuffles int
	for _, tr := range res2.Traces {
		shuffles += tr.Shuffles
	}
	if shuffles == 0 {
		t.Fatal("distributed traces recorded no shuffles")
	}
}

// TestTCPRoundMatchesInProcess runs the same parity check over real TCP
// loopback sockets: every member actor on its own TCP endpoint.
func TestTCPRoundMatchesInProcess(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 2)

	rs1, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs1, 9)
	res1, err := d.RunRoundCtx(context.Background(), rs1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Messages, want) {
		t.Fatalf("in-process round recovered %q, want %q", res1.Messages, want)
	}

	cluster, err := NewCluster(d, Options{Attach: TCPAttach("127.0.0.1"), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs2, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs2, 9)
	res2, err := cluster.Run(context.Background(), rs2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res2.Messages, want) {
		t.Fatalf("TCP round recovered %q, want %q", res2.Messages, want)
	}
}

// TestTrapVariantDistributed: the trap variant's finale (trap
// accounting, trustee decryption) runs in the shared RunRoundVia path,
// so a distributed trap round must also recover the plaintext set.
func TestTrapVariantDistributed(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantTrap, 2)
	cluster, err := NewCluster(d, Options{
		Attach:  MemAttach(transport.NewMemNetwork(wanDelay(), 256)),
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("distributed trap round recovered %q, want %q", res.Messages, want)
	}
}

// TestUnevenLoadDistributed: all submissions through one entry group,
// so other groups start empty (the empty-batch pass-through path) and
// fill up as batches spread through the square network.
func TestUnevenLoadDistributed(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 1)
	cluster, err := NewCluster(d, Options{
		Attach: MemAttach(transport.NewMemNetwork(nil, 256)),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	gpk, _ := d.GroupPK(0)
	for u := 0; u < 4; u++ {
		msg := []byte(fmt.Sprintf("solo-%d", u))
		want = append(want, msg)
		sub, err := c.Submit(msg, gpk, 0, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if err := rs.SubmitUser(u, sub); err != nil {
			t.Fatal(err)
		}
	}
	sort.Slice(want, func(i, j int) bool { return bytes.Compare(want[i], want[j]) < 0 })
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("uneven round recovered %q, want %q", res.Messages, want)
	}
}

// tamperAdversary rerandomizes one ciphertext after the target member's
// shuffle — a shape-preserving corruption whose proof must be rejected.
func tamperAdversary(t *testing.T, d *protocol.Deployment, layer, gid, member int) *protocol.Adversary {
	t.Helper()
	gpk, err := d.GroupPK(gid)
	if err != nil {
		t.Fatal(err)
	}
	return &protocol.Adversary{
		Layer: layer, GID: gid, Member: member,
		Tamper: func(batch []elgamal.Vector) []elgamal.Vector {
			if len(batch) < 1 {
				return nil
			}
			out := make([]elgamal.Vector, len(batch))
			copy(out, batch)
			dup, _, err := elgamal.RerandomizeVector(gpk, batch[0], rand.Reader)
			if err != nil {
				return nil
			}
			out[0] = dup
			return out
		},
	}
}

// checkBlame asserts the uniform typed abort: errors.Is on
// ErrProofRejected plus the offending group/member attribution.
func checkBlame(t *testing.T, path string, err error, wantGID, wantMember int) {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: tampered round succeeded", path)
	}
	if !errors.Is(err, protocol.ErrProofRejected) {
		t.Fatalf("%s: got %v, want ErrProofRejected", path, err)
	}
	var blame *protocol.Blame
	if !errors.As(err, &blame) {
		t.Fatalf("%s: no Blame attribution in %v", path, err)
	}
	if blame.GID != wantGID || blame.Member != wantMember {
		t.Fatalf("%s: blamed group %d member %d, want group %d member %d",
			path, blame.GID, blame.Member, wantGID, wantMember)
	}
}

// TestTamperBlameParity: a tampered member triggers the same typed
// blame error — errors.Is(ErrProofRejected) with the same group/member
// attached — whether the round ran in-process, over the latency memnet,
// or over TCP loopback.
func TestTamperBlameParity(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 2)
	const gid, member = 1, 1
	wantIdx := member + 1 // DVSS index of the chain position

	// Path 1: in-process.
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs, 6)
	d.SetAdversary(tamperAdversary(t, d, 1, gid, member))
	_, err = d.RunRoundCtx(context.Background(), rs, nil)
	checkBlame(t, "in-process", err, gid, wantIdx)

	// Path 2: memnet actors.
	mem, err := NewCluster(d, Options{
		Attach:  MemAttach(transport.NewMemNetwork(wanDelay(), 256)),
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	rs, err = d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs, 6)
	d.SetAdversary(tamperAdversary(t, d, 1, gid, member))
	_, err = mem.Run(context.Background(), rs, nil)
	checkBlame(t, "memnet", err, gid, wantIdx)

	// The cluster must still complete an honest round after the abort.
	rs, err = d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	res, err := mem.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatalf("post-abort honest round failed: %v", err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("post-abort round recovered %q, want %q", res.Messages, want)
	}

	// Path 3: TCP actors.
	tcp, err := NewCluster(d, Options{Attach: TCPAttach("127.0.0.1"), Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()
	rs, err = d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs, 6)
	d.SetAdversary(tamperAdversary(t, d, 1, gid, member))
	_, err = tcp.Run(context.Background(), rs, nil)
	checkBlame(t, "tcp", err, gid, wantIdx)
}

// TestRemoteHostedMember: one member is not hosted by the cluster but
// adopted from a HostMember loop (the atomd -member path), joined over
// the wire with its marshaled config.
func TestRemoteHostedMember(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 1)
	net := transport.NewMemNetwork(nil, 256)

	remoteEP, err := net.Attach("remote/host")
	if err != nil {
		t.Fatal(err)
	}
	hostDone := make(chan error, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { hostDone <- HostMember(ctx, remoteEP) }()

	cluster, err := NewCluster(d, Options{
		Attach: MemAttach(net),
		Remote: map[MemberID]string{{GID: 2, Pos: 1}: remoteEP.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("remote-member round recovered %q, want %q", res.Messages, want)
	}
	cancel()
	select {
	case <-hostDone:
	case <-time.After(5 * time.Second):
		t.Fatal("HostMember did not exit on cancel")
	}
}

// TestMemberConfigWire round-trips the join payload.
func TestMemberConfigWire(t *testing.T) {
	d, _ := newDeployment(t, protocol.VariantNIZK, 1)
	r, err := d.GroupRoster(0)
	if err != nil {
		t.Fatal(err)
	}
	pk0, _ := d.GroupPK(0)
	pk1, _ := d.GroupPK(1)
	pk2, _ := d.GroupPK(2)
	real := MemberConfig{
		GID: 0, Pos: 1,
		Indices: r.Indices, Secret: r.Secrets[1], EffPubs: r.EffPubs,
		GroupPK: r.PK,
		Peers:   []string{"a", "b"}, Entry: []string{"a", "c", "d"},
		Coordinator: "coord", Variant: protocol.VariantNIZK, Workers: 3,
		Topo:      TopoSpec{Name: "square", Groups: 3, Iterations: 3},
		Heartbeat: 250 * time.Millisecond,
		Escrows: []protocol.EscrowPiece{
			{GID: 1, Pos: 0, Piece: r.Secrets[0]},
			{GID: 2, Pos: 1, Piece: r.Secrets[1]},
		},
	}
	real.GroupPKs = append(real.GroupPKs, pk0, pk1, pk2)
	back, err := UnmarshalMemberConfig(real.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Marshal(), real.Marshal()) {
		t.Fatal("MemberConfig does not round-trip canonically")
	}
	if back.GID != real.GID || back.Pos != real.Pos || back.Workers != 3 ||
		back.Topo != real.Topo || !back.Secret.Equal(real.Secret) {
		t.Fatalf("decoded config differs: %+v", back)
	}
	if back.Heartbeat != real.Heartbeat || len(back.Escrows) != 2 ||
		back.Escrows[0].GID != 1 || back.Escrows[1].Pos != 1 ||
		!back.Escrows[0].Piece.Equal(real.Escrows[0].Piece) {
		t.Fatalf("churn fields did not round-trip: %+v", back)
	}
}

// TestPerRoundWorkersReachActors: a per-round SetMixConfig override
// must govern the actors' pools, not silently die at the coordinator —
// the distributed path reports the round's knob in its stats exactly
// like the in-process path.
func TestPerRoundWorkersReachActors(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantTrap, 1)
	cluster, err := NewCluster(d, Options{
		Attach:  MemAttach(transport.NewMemNetwork(nil, 256)),
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	rs.SetMixConfig(protocol.MixConfig{Workers: 3})
	want := submitAll(t, d, c, rs, 6)
	var got []int
	hooks := &protocol.RoundHooks{IterationDone: func(it protocol.IterationStats) { got = append(got, it.Workers) }}
	res, err := cluster.Run(context.Background(), rs, hooks)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("override round recovered %q, want %q", res.Messages, want)
	}
	for layer, w := range got {
		if w != 3 {
			t.Fatalf("iteration %d reports %d workers, want the per-round override 3", layer, w)
		}
	}
	for _, tr := range res.Traces {
		if tr.Workers != 3 {
			t.Fatalf("trace (g%d l%d) reports %d workers, want 3", tr.GID, tr.Layer, tr.Workers)
		}
	}
}

// TestHostileLayerDoesNotCrashActor: a chain message with an
// out-of-range layer (in-threat-model for a malicious member) must be
// rejected typed, not panic topology arithmetic — and the cluster must
// still complete an honest round afterwards.
func TestHostileLayerDoesNotCrashActor(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 1)
	net := transport.NewMemNetwork(nil, 256)
	cluster, err := NewCluster(d, Options{Attach: MemAttach(net)})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rogue, err := net.Attach("rogue")
	if err != nil {
		t.Fatal(err)
	}
	defer rogue.Close()
	victim := cluster.Addresses()[MemberID{GID: 0, Pos: 1}]
	for _, layer := range []int{-1, 99} {
		if err := rogue.Send(victim, &transport.Message{
			Type: msgShuffle, Round: 999,
			Payload: encodeShuffleMsg(layer, work{}, nil, nil, nil),
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Forged cancels and stops for upcoming round ids must not poison
	// the actors (rogue round-id blacklisting) or shut them down, and a
	// forged batch with a huge round id must not prune live state.
	for _, addr := range cluster.Addresses() {
		for round := uint64(1); round <= 20; round++ {
			if err := rogue.Send(addr, &transport.Message{Type: msgCancel, Round: round}); err != nil {
				t.Fatal(err)
			}
		}
		for _, src := range []int{-1, 0} {
			if err := rogue.Send(addr, &transport.Message{
				Type: msgBatch, Round: 1 << 60,
				Payload: encodeBatchMsg(0, src, 1, nil),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if err := rogue.Send(addr, &transport.Message{Type: msgStop}); err != nil {
			t.Fatal(err)
		}
	}

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatalf("round after hostile frames failed: %v", err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("round after hostile frames recovered %q, want %q", res.Messages, want)
	}
}
