package distributed

import (
	"crypto/rand"
	"fmt"
	"testing"
	"time"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/transport"
)

// buildBatch encrypts n messages for the group key.
func buildBatch(t *testing.T, pk *ecc.Point, n int) ([]elgamal.Vector, map[string]bool) {
	t.Helper()
	batch := make([]elgamal.Vector, n)
	want := map[string]bool{}
	for i := 0; i < n; i++ {
		msg := fmt.Sprintf("distributed %02d", i)
		want[msg] = true
		pts, err := ecc.EmbedMessage([]byte(msg), 1)
		if err != nil {
			t.Fatal(err)
		}
		vec, _, err := elgamal.EncryptVector(pk, pts, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = vec
	}
	return batch, want
}

// TestDistributedGroupIterationToExit runs Algorithm 1 over actual
// message passing: 4 member actors on an in-memory network, one
// iteration with ⊥ destination (exit layer), recovering all plaintexts.
func TestDistributedGroupIterationToExit(t *testing.T) {
	net := transport.NewMemNetwork(nil, 256)
	g, err := NewGroup(net, "g0", 4, []*ecc.Point{nil})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	batch, want := buildBatch(t, g.PK, 8)
	outs, err := g.RunIteration(batch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("%d output batches, want 1", len(outs))
	}
	for _, vec := range outs[0] {
		msg, err := ecc.ExtractMessage(elgamal.PlaintextVector(vec))
		if err != nil {
			t.Fatal(err)
		}
		if !want[string(msg)] {
			t.Errorf("unexpected output %q", msg)
		}
		delete(want, string(msg))
	}
	if len(want) != 0 {
		t.Errorf("missing messages: %v", want)
	}
}

// TestDistributedGroupForwardsToNextGroups chains two distributed hops:
// group A mixes toward groups B and C (β = 2); B and C then exit. The
// full path is message-passing end to end.
func TestDistributedGroupForwardsToNextGroups(t *testing.T) {
	net := transport.NewMemNetwork(nil, 256)
	exit := []*ecc.Point{nil}
	gB, err := NewGroup(net, "gB", 3, exit)
	if err != nil {
		t.Fatal(err)
	}
	defer gB.Close()
	gC, err := NewGroup(net, "gC", 3, exit)
	if err != nil {
		t.Fatal(err)
	}
	defer gC.Close()
	gA, err := NewGroup(net, "gA", 3, []*ecc.Point{gB.PK, gC.PK})
	if err != nil {
		t.Fatal(err)
	}
	defer gA.Close()

	batch, want := buildBatch(t, gA.PK, 10)
	mid, err := gA.RunIteration(batch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 2 {
		t.Fatalf("%d batches from group A, want 2", len(mid))
	}
	if len(mid[0])+len(mid[1]) != 10 {
		t.Fatalf("group A emitted %d+%d messages", len(mid[0]), len(mid[1]))
	}

	got := map[string]bool{}
	for gi, g := range []*Group{gB, gC} {
		outs, err := g.RunIteration(mid[gi], 30*time.Second)
		if err != nil {
			t.Fatalf("exit group %d: %v", gi, err)
		}
		for _, vec := range outs[0] {
			msg, err := ecc.ExtractMessage(elgamal.PlaintextVector(vec))
			if err != nil {
				t.Fatal(err)
			}
			got[string(msg)] = true
		}
	}
	for m := range want {
		if !got[m] {
			t.Errorf("message %q lost across the two hops", m)
		}
	}
}

// TestDistributedGroupWithWANLatency runs the same protocol over the
// latency-modeled network (the paper's emulated 40–160 ms links, scaled
// down for test time) and checks it still completes correctly.
func TestDistributedGroupWithWANLatency(t *testing.T) {
	lat := transport.PairwiseLatency("wan", 2*time.Millisecond, 8*time.Millisecond)
	net := transport.NewMemNetwork(lat, 256)
	g, err := NewGroup(net, "g0", 3, []*ecc.Point{nil})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	batch, want := buildBatch(t, g.PK, 4)
	start := time.Now()
	outs, err := g.RunIteration(batch, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// 3 shuffle hops + handoff + 3 reenc hops + delivery ≈ ≥ 8 links of
	// ≥2 ms each.
	if elapsed < 10*time.Millisecond {
		t.Errorf("iteration finished in %v; latency model seems inert", elapsed)
	}
	if len(outs[0]) != 4 {
		t.Fatalf("%d outputs", len(outs[0]))
	}
	for _, vec := range outs[0] {
		msg, _ := ecc.ExtractMessage(elgamal.PlaintextVector(vec))
		if !want[string(msg)] {
			t.Errorf("unexpected output %q", msg)
		}
	}
}

func TestBatchEncodingRoundTrip(t *testing.T) {
	kp, err := elgamal.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pts, _ := ecc.EmbedMessage([]byte("frame"), 2)
	v, _, _ := elgamal.EncryptVector(kp.PK, pts, rand.Reader)
	in := [][]elgamal.Vector{{v, v.Clone()}, {}, {v.Clone()}}
	enc := encodeBatches(in)
	got, err := decodeBatches(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || len(got[0]) != 2 || len(got[1]) != 0 || len(got[2]) != 1 {
		t.Fatalf("shape mismatch: %d/%d/%d", len(got[0]), len(got[1]), len(got[2]))
	}
	if !got[0][0].Equal(v) {
		t.Fatal("vector corrupted in framing")
	}
	if _, err := decodeBatches(enc[:len(enc)-2]); err == nil {
		t.Error("truncated framing accepted")
	}
	if _, err := decodeBatches([]byte{0xff, 0xff, 0xff, 0xff}); err == nil {
		t.Error("absurd batch count accepted")
	}
}
