package distributed

import (
	"time"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/protocol"
	"atom/internal/wirecodec"
)

// Message types of the distributed round protocol. Every message's
// transport.Message.Round field carries the round id, so actors and the
// coordinator can discard strays from canceled rounds.
const (
	// msgBatch carries one group-bound batch of ciphertext vectors: the
	// coordinator's layer-0 injection, or a group's layer-t output
	// arriving at a next-layer group's first member.
	msgBatch = "dist/batch"
	// msgShuffle moves the shuffle chain one member forward: the
	// sender's ShuffleStep (input, output, proof) for the receiver to
	// verify before shuffling the output itself.
	msgShuffle = "dist/shuffle"
	// msgDivide closes the shuffle chain: the last member's ShuffleStep
	// goes back to the first member, which verifies it, divides the
	// output into β batches, and starts the re-encryption chain.
	msgDivide = "dist/divide"
	// msgReEnc moves the re-encryption chain one member forward: the
	// sender's β ReEncSteps for the receiver to verify and build on.
	// Step K (one past the last member) returns to the first member,
	// which verifies, clears the Y slots and forwards the batches.
	msgReEnc = "dist/reenc"
	// msgLayer reports one group's completed iteration (message count
	// and work totals) to the coordinator.
	msgLayer = "dist/layer"
	// msgOut delivers an exit group's plaintext vectors to the
	// coordinator.
	msgOut = "dist/out"
	// msgAbort reports a member failure (typed: class + attribution) to
	// the coordinator.
	msgAbort = "dist/abort"
	// msgCancel tells actors to drop all state and traffic of a round.
	msgCancel = "dist/cancel"
	// msgStop shuts an actor down.
	msgStop = "dist/stop"
	// msgJoin carries a MemberConfig to a remotely hosted actor
	// (HostMember); msgJoined acknowledges it.
	msgJoin   = "dist/join"
	msgJoined = "dist/joined"
	// msgHeartbeat is a member's periodic liveness beacon to the
	// coordinator, carrying its last-known mixing progress so an
	// eventual round timeout is diagnosable per member.
	msgHeartbeat = "dist/heartbeat"
	// msgReconfig re-provisions a live actor in place after churn: a new
	// MemberConfig (fresh chain, entry table and Lagrange-weighted
	// effective secret for the re-planned active set), acknowledged with
	// msgJoined. Only the coordinator may send it. It resets the actor's
	// per-round state, so a restarted round starts from a clean slate.
	msgReconfig = "dist/reconfig"
	// msgShareReq solicits a buddy-group member's escrow piece for one
	// failed position (§4.5 recovery over the wire); msgShareResp
	// returns it.
	msgShareReq  = "dist/sharereq"
	msgShareResp = "dist/shareresp"
)

// Abort classes, mapped back onto the protocol error taxonomy by the
// coordinator (classifyAbort) so errors.Is behaves identically to the
// in-process path.
const (
	abortProof    = "proof"    // a NIZK step was rejected → ErrProofRejected
	abortCanceled = "canceled" // the actor's context expired → ctx error
	abortPeer     = "peer"     // a chain delivery failed → member lost, coordinator re-plans
	abortInternal = "internal" // anything else
)

// work accumulates a group's per-iteration accounting as the chain
// messages flow member to member; the first member folds it into the
// msgLayer report. Workers carries the round's resolved worker-pool
// knob (MixJob.Workers — a per-round SetMixConfig override reaches the
// actors through here) along the same path.
type work struct {
	Msgs     int // vectors entering the layer
	Workers  int // round worker knob (0 = the actor's configured default)
	Shuffles int
	ReEncs   int
	Proofs   int
	BusyNs   int64
}

// add folds another chunk's accounting into w — the first member sums
// a chunk-streamed layer's per-chunk totals into the msgLayer report.
// Workers is a knob, not a counter, so the maximum wins.
func (w *work) add(o work) {
	w.Msgs += o.Msgs
	w.Shuffles += o.Shuffles
	w.ReEncs += o.ReEncs
	w.Proofs += o.Proofs
	w.BusyNs += o.BusyNs
	if o.Workers > w.Workers {
		w.Workers = o.Workers
	}
}

func encWork(e *wirecodec.Enc, w work) {
	e.I(w.Msgs)
	e.I(w.Workers)
	e.I(w.Shuffles)
	e.I(w.ReEncs)
	e.I(w.Proofs)
	e.U64(uint64(w.BusyNs))
}

func decWork(d *wirecodec.Dec) (work, error) {
	var w work
	var err error
	if w.Msgs, err = d.I(); err != nil {
		return w, err
	}
	if w.Workers, err = d.I(); err != nil {
		return w, err
	}
	if w.Shuffles, err = d.I(); err != nil {
		return w, err
	}
	if w.ReEncs, err = d.I(); err != nil {
		return w, err
	}
	if w.Proofs, err = d.I(); err != nil {
		return w, err
	}
	busy, err := d.U64()
	if err != nil {
		return w, err
	}
	w.BusyNs = int64(busy)
	return w, nil
}

// ---------------------------------------------------------------------
// Per-message payloads (shared wirecodec: uvarint counts, presence
// flags, bounds checks before every allocation).

// batchMsg: layer, source gid (−1 = coordinator), the round's worker
// knob, vectors.
func encodeBatchMsg(layer, src, workers int, vecs []elgamal.Vector) []byte {
	var e wirecodec.Enc
	e.I(layer)
	e.I(src)
	e.I(workers)
	e.Vectors(vecs)
	return e.Out()
}

func decodeBatchMsg(b []byte) (layer, src, workers int, vecs []elgamal.Vector, err error) {
	d := wirecodec.NewDec(b)
	if layer, err = d.I(); err != nil {
		return
	}
	if src, err = d.I(); err != nil {
		return
	}
	if workers, err = d.I(); err != nil {
		return
	}
	if vecs, err = d.Vectors(); err != nil {
		return
	}
	err = d.Done()
	return
}

// shuffleMsg (also divideMsg): layer, accumulated work, the sender's
// shuffle step. In the trap variant the proof (and the input batch,
// which only verification needs) are omitted.
func encodeShuffleMsg(layer int, w work, in, out []elgamal.Vector, proofBytes []byte) []byte {
	var e wirecodec.Enc
	e.I(layer)
	encWork(&e, w)
	e.Vectors(in)
	e.Vectors(out)
	e.Bytes(proofBytes)
	return e.Out()
}

func decodeShuffleMsg(b []byte) (layer int, w work, in, out []elgamal.Vector, proofBytes []byte, err error) {
	d := wirecodec.NewDec(b)
	if layer, err = d.I(); err != nil {
		return
	}
	if w, err = decWork(d); err != nil {
		return
	}
	if in, err = d.Vectors(); err != nil {
		return
	}
	if out, err = d.Vectors(); err != nil {
		return
	}
	if proofBytes, err = d.Bytes(); err != nil {
		return
	}
	err = d.Done()
	return
}

// reencBatch is one batch's worth of a member's re-encryption step on
// the wire.
type reencBatch struct {
	In, Out []elgamal.Vector
	Proofs  [][]byte // per-vector ReEncProof encodings (empty in trap)
}

// reencMsg: layer, work, step (receiver position; K wraps to the first
// member for final verification), chunk/chunks (the chunk-streamed
// chain's position: chunk c of chunks; whole-batch messages travel as
// 0 of 1), the sender's β per-batch steps. In a chunked chain each
// message carries only its chunk's vector segments, and the work totals
// ride per chunk — the inherited pre-chain accounting on chunk 0, each
// member's per-chunk additions on every chunk — so the first member
// sums chunks into the layer report.
func encodeReEncMsg(layer int, w work, step, chunk, chunks int, batches []reencBatch) []byte {
	var e wirecodec.Enc
	e.I(layer)
	encWork(&e, w)
	e.I(step)
	e.I(chunk)
	e.I(chunks)
	e.U64(uint64(len(batches)))
	for _, rb := range batches {
		e.Vectors(rb.In)
		e.Vectors(rb.Out)
		e.U64(uint64(len(rb.Proofs)))
		for _, p := range rb.Proofs {
			e.Bytes(p)
		}
	}
	return e.Out()
}

func decodeReEncMsg(b []byte) (layer int, w work, step, chunk, chunks int, batches []reencBatch, err error) {
	d := wirecodec.NewDec(b)
	if layer, err = d.I(); err != nil {
		return
	}
	if w, err = decWork(d); err != nil {
		return
	}
	if step, err = d.I(); err != nil {
		return
	}
	if chunk, err = d.I(); err != nil {
		return
	}
	if chunks, err = d.I(); err != nil {
		return
	}
	var n int
	if n, err = d.Count(); err != nil {
		return
	}
	batches = make([]reencBatch, n)
	for i := range batches {
		if batches[i].In, err = d.Vectors(); err != nil {
			return
		}
		if batches[i].Out, err = d.Vectors(); err != nil {
			return
		}
		var np int
		if np, err = d.Count(); err != nil {
			return
		}
		batches[i].Proofs = make([][]byte, np)
		for j := range batches[i].Proofs {
			if batches[i].Proofs[j], err = d.Bytes(); err != nil {
				return
			}
		}
	}
	err = d.Done()
	return
}

// layerMsg: gid, layer, the group's accumulated work for the layer.
func encodeLayerMsg(gid, layer int, w work) []byte {
	var e wirecodec.Enc
	e.I(gid)
	e.I(layer)
	encWork(&e, w)
	return e.Out()
}

func decodeLayerMsg(b []byte) (gid, layer int, w work, err error) {
	d := wirecodec.NewDec(b)
	if gid, err = d.I(); err != nil {
		return
	}
	if layer, err = d.I(); err != nil {
		return
	}
	if w, err = decWork(d); err != nil {
		return
	}
	err = d.Done()
	return
}

// outMsg: gid, the exit group's plaintext vectors.
func encodeOutMsg(gid int, vecs []elgamal.Vector) []byte {
	var e wirecodec.Enc
	e.I(gid)
	e.Vectors(vecs)
	return e.Out()
}

func decodeOutMsg(b []byte) (gid int, vecs []elgamal.Vector, err error) {
	d := wirecodec.NewDec(b)
	if gid, err = d.I(); err != nil {
		return
	}
	if vecs, err = d.Vectors(); err != nil {
		return
	}
	err = d.Done()
	return
}

// abortMsg: layer, gid, member (DVSS index; −1 when not attributable),
// class, text.
func encodeAbortMsg(layer, gid, member int, class, text string) []byte {
	var e wirecodec.Enc
	e.I(layer)
	e.I(gid)
	e.I(member)
	e.Str(class)
	e.Str(text)
	return e.Out()
}

func decodeAbortMsg(b []byte) (layer, gid, member int, class, text string, err error) {
	d := wirecodec.NewDec(b)
	if layer, err = d.I(); err != nil {
		return
	}
	if gid, err = d.I(); err != nil {
		return
	}
	if member, err = d.I(); err != nil {
		return
	}
	if class, err = d.Str(); err != nil {
		return
	}
	if text, err = d.Str(); err != nil {
		return
	}
	err = d.Done()
	return
}

// heartbeatMsg: gid, member (DVSS index), the member's last-known
// progress (round, layer, phase) and how it is configured to beat.
func encodeHeartbeatMsg(gid, member int, round uint64, layer int, phase string) []byte {
	var e wirecodec.Enc
	e.I(gid)
	e.I(member)
	e.U64(round)
	e.I(layer)
	e.Str(phase)
	return e.Out()
}

func decodeHeartbeatMsg(b []byte) (gid, member int, round uint64, layer int, phase string, err error) {
	d := wirecodec.NewDec(b)
	if gid, err = d.I(); err != nil {
		return
	}
	if member, err = d.I(); err != nil {
		return
	}
	if round, err = d.U64(); err != nil {
		return
	}
	if layer, err = d.I(); err != nil {
		return
	}
	if phase, err = d.Str(); err != nil {
		return
	}
	err = d.Done()
	return
}

// shareReqMsg: the failed member's group and position whose escrowed
// share the coordinator is soliciting.
func encodeShareReqMsg(gid, pos int) []byte {
	var e wirecodec.Enc
	e.I(gid)
	e.I(pos)
	return e.Out()
}

func decodeShareReqMsg(b []byte) (gid, pos int, err error) {
	d := wirecodec.NewDec(b)
	if gid, err = d.I(); err != nil {
		return
	}
	if pos, err = d.I(); err != nil {
		return
	}
	err = d.Done()
	return
}

// shareRespMsg: the solicited (gid, pos), the responding buddy member's
// DVSS index within its own group, and its escrow piece.
func encodeShareRespMsg(gid, pos, idx int, piece *ecc.Scalar) []byte {
	var e wirecodec.Enc
	e.I(gid)
	e.I(pos)
	e.I(idx)
	e.Scalar(piece)
	return e.Out()
}

func decodeShareRespMsg(b []byte) (gid, pos, idx int, piece *ecc.Scalar, err error) {
	d := wirecodec.NewDec(b)
	if gid, err = d.I(); err != nil {
		return
	}
	if pos, err = d.I(); err != nil {
		return
	}
	if idx, err = d.I(); err != nil {
		return
	}
	if piece, err = d.Scalar(); err != nil {
		return
	}
	err = d.Done()
	return
}

// ---------------------------------------------------------------------
// MemberConfig wire form (the msgJoin payload for remotely hosted
// actors — cmd/atomd -member).

// Marshal encodes the config, including the member's secret: the join
// channel stands in for the out-of-band provisioning (or a networked
// DKG) a production deployment would use, and must itself be protected
// like one (TLS per §2.1).
func (c *MemberConfig) Marshal() []byte {
	var e wirecodec.Enc
	e.I(c.GID)
	e.I(c.Pos)
	e.Ints(c.Indices)
	e.Scalar(c.Secret)
	e.Points(c.EffPubs)
	e.Point(c.GroupPK)
	e.Points(c.GroupPKs)
	e.Strs(c.Peers)
	e.Strs(c.Entry)
	e.Str(c.Coordinator)
	e.I(int(c.Variant))
	e.I(c.Workers)
	e.Str(c.Topo.Name)
	e.I(c.Topo.Groups)
	e.I(c.Topo.Iterations)
	e.I(c.Topo.Reps)
	e.I(c.ChunkSize)
	e.U64(uint64(c.Heartbeat))
	e.U64(uint64(len(c.Escrows)))
	for _, esc := range c.Escrows {
		e.I(esc.GID)
		e.I(esc.Pos)
		e.Scalar(esc.Piece)
	}
	e.Bytes(c.ConfigHash)
	return e.Out()
}

// UnmarshalMemberConfig decodes a MemberConfig.
func UnmarshalMemberConfig(b []byte) (*MemberConfig, error) {
	d := wirecodec.NewDec(b)
	c := &MemberConfig{}
	var err error
	var v int
	if c.GID, err = d.I(); err != nil {
		return nil, err
	}
	if c.Pos, err = d.I(); err != nil {
		return nil, err
	}
	if c.Indices, err = d.Ints(); err != nil {
		return nil, err
	}
	if c.Secret, err = d.Scalar(); err != nil {
		return nil, err
	}
	if c.EffPubs, err = d.Points(); err != nil {
		return nil, err
	}
	if c.GroupPK, err = d.Point(); err != nil {
		return nil, err
	}
	if c.GroupPKs, err = d.Points(); err != nil {
		return nil, err
	}
	if c.Peers, err = d.Strs(); err != nil {
		return nil, err
	}
	if c.Entry, err = d.Strs(); err != nil {
		return nil, err
	}
	if c.Coordinator, err = d.Str(); err != nil {
		return nil, err
	}
	if v, err = d.I(); err != nil {
		return nil, err
	}
	c.Variant = protocol.Variant(v)
	if c.Workers, err = d.I(); err != nil {
		return nil, err
	}
	if c.Topo.Name, err = d.Str(); err != nil {
		return nil, err
	}
	if c.Topo.Groups, err = d.I(); err != nil {
		return nil, err
	}
	if c.Topo.Iterations, err = d.I(); err != nil {
		return nil, err
	}
	if c.Topo.Reps, err = d.I(); err != nil {
		return nil, err
	}
	if c.ChunkSize, err = d.I(); err != nil {
		return nil, err
	}
	hb, err := d.U64()
	if err != nil {
		return nil, err
	}
	c.Heartbeat = time.Duration(hb)
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	c.Escrows = make([]protocol.EscrowPiece, n)
	for i := range c.Escrows {
		if c.Escrows[i].GID, err = d.I(); err != nil {
			return nil, err
		}
		if c.Escrows[i].Pos, err = d.I(); err != nil {
			return nil, err
		}
		if c.Escrows[i].Piece, err = d.Scalar(); err != nil {
			return nil, err
		}
	}
	if c.ConfigHash, err = d.Bytes(); err != nil {
		return nil, err
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// ---------------------------------------------------------------------
// msgJoined payload: join/reconfig acknowledgment with verdict.

// joinAckRejoin is the reason a restarted host reports when it
// re-adopts from persisted state without being provisioned: the
// coordinator's liveness tracker treats it as a rejoin, not a join ack.
const joinAckRejoin = "rejoin"

// encodeJoinAck encodes a join/reconfig verdict. An empty payload (the
// pre-persistence wire form) decodes as a plain acceptance, so mixed
// fleets interoperate.
func encodeJoinAck(ok bool, reason string) []byte {
	var e wirecodec.Enc
	b := byte(0)
	if ok {
		b = 1
	}
	e.Byte(b)
	e.Str(reason)
	return e.Out()
}

func decodeJoinAck(b []byte) (ok bool, reason string) {
	if len(b) == 0 {
		return true, ""
	}
	d := wirecodec.NewDec(b)
	v, err := d.Byte()
	if err != nil {
		return false, "malformed ack"
	}
	reason, err = d.Str()
	if err != nil {
		return false, "malformed ack"
	}
	return v == 1, reason
}
