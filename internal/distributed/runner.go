package distributed

import (
	"crypto/rand"
	"fmt"
	"time"

	"atom/internal/dvss"
	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/transport"
)

// Group is a fully wired distributed group: member actors attached to a
// network plus the collector endpoint that injects batches and gathers
// outputs.
type Group struct {
	PK        *ecc.Point
	members   []*Member
	endpoints []transport.Endpoint
	collector transport.Endpoint
	done      chan error
}

// NewGroup builds a k-member group on the given network: it runs the
// DVSS locally (each member ends up holding only its own share inside
// its actor), attaches one endpoint per member, and starts the member
// goroutines for one iteration toward the destination keys.
func NewGroup(net *transport.MemNetwork, name string, k int, destPKs []*ecc.Point) (*Group, error) {
	if k < 1 {
		return nil, fmt.Errorf("distributed: need at least one member")
	}
	keys, err := dvss.RunDKG(k, k, rand.Reader)
	if err != nil {
		return nil, err
	}
	collector, err := net.Attach(name + "/collector")
	if err != nil {
		return nil, err
	}
	g := &Group{PK: keys[0].PK, collector: collector, done: make(chan error, k)}

	peers := make([]string, k)
	for i := 0; i < k; i++ {
		peers[i] = fmt.Sprintf("%s/member/%d", name, i)
	}
	active := make([]int, k)
	for i := range active {
		active[i] = i + 1
	}
	for i := 0; i < k; i++ {
		ep, err := net.Attach(peers[i])
		if err != nil {
			return nil, err
		}
		eff, _, err := keys[i].EffectiveKey(active)
		if err != nil {
			return nil, err
		}
		m := &Member{
			Pos:       i,
			Secret:    eff,
			GroupPK:   keys[0].PK,
			DestPKs:   destPKs,
			Peers:     peers,
			Collector: collector.Addr(),
		}
		g.members = append(g.members, m)
		g.endpoints = append(g.endpoints, ep)
		go func(m *Member, ep transport.Endpoint) {
			g.done <- m.Serve(ep, rand.Reader)
		}(m, ep)
	}
	return g, nil
}

// RunIteration injects the batch at member 0 and waits for the group's
// β output batches (or an abort).
func (g *Group) RunIteration(batch []elgamal.Vector, timeout time.Duration) ([][]elgamal.Vector, error) {
	err := g.collector.Send(g.members[0].Peers[0], &transport.Message{
		Type: "shuffle", Payload: encodeBatches([][]elgamal.Vector{batch}),
	})
	if err != nil {
		return nil, err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case msg, ok := <-g.collector.Inbox():
		if !ok {
			return nil, fmt.Errorf("distributed: collector closed")
		}
		switch msg.Type {
		case "out":
			return decodeBatches(msg.Payload)
		case "abort":
			return nil, fmt.Errorf("distributed: group aborted: %s", msg.Payload)
		default:
			return nil, fmt.Errorf("distributed: unexpected %q", msg.Type)
		}
	case <-timer.C:
		return nil, fmt.Errorf("distributed: iteration timed out after %v", timeout)
	}
}

// Close tears down the group's endpoints and waits for the member
// goroutines to drain.
func (g *Group) Close() {
	for i, ep := range g.endpoints {
		_ = ep.Send(g.members[i].Peers[i], &transport.Message{Type: "stop"})
	}
	for _, ep := range g.endpoints {
		ep.Close()
	}
	for range g.members {
		<-g.done
	}
	g.collector.Close()
}
