package distributed

import (
	"context"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"atom/internal/protocol"
	"atom/internal/transport"
)

// countingAttach wraps every endpoint of an AttachFunc so outgoing
// msgReEnc frames are counted — the observable difference between a
// whole-batch chain and a chunk-streamed one.
func countingAttach(inner AttachFunc, reencMsgs *atomic.Int64) AttachFunc {
	return func(name string) (transport.Endpoint, error) {
		ep, err := inner(name)
		if err != nil {
			return ep, err
		}
		return &countingEP{Endpoint: ep, reencMsgs: reencMsgs}, nil
	}
}

type countingEP struct {
	transport.Endpoint
	reencMsgs *atomic.Int64
}

func (e *countingEP) Send(to string, msg *transport.Message) error {
	if msg.Type == msgReEnc {
		e.reencMsgs.Add(1)
	}
	return e.Endpoint.Send(to, msg)
}

func (e *countingEP) SendCtx(ctx context.Context, to string, msg *transport.Message) error {
	if msg.Type == msgReEnc {
		e.reencMsgs.Add(1)
	}
	return e.Endpoint.SendCtx(ctx, to, msg)
}

// traceCounts collapses a trace set to per-(group, layer) work counts so
// a chunked chain's per-chunk accounting can be compared against the
// whole-batch chain it must sum to.
func traceCounts(t *testing.T, traces []protocol.StepTrace) map[[2]int][4]int {
	t.Helper()
	out := make(map[[2]int][4]int, len(traces))
	for _, tr := range traces {
		key := [2]int{tr.GID, tr.Layer}
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate trace for group %d layer %d", tr.GID, tr.Layer)
		}
		out[key] = [4]int{tr.Shuffles, tr.ReEncs, tr.ProofsChecked, tr.Members}
	}
	return out
}

// TestChunkStreamParity: a chunk-streamed re-encryption chain recovers
// the same plaintext set as the whole-batch chain and sums per-chunk
// work to identical per-layer traces — while demonstrably sending more
// (smaller) chain messages.
func TestChunkStreamParity(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 2)

	// Reference: in-process round.
	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 18)
	res, err := d.RunRoundCtx(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("in-process round recovered %q, want %q", res.Messages, want)
	}

	// Whole-batch distributed round.
	var plainMsgs atomic.Int64
	plain, err := NewCluster(d, Options{
		Attach:  countingAttach(MemAttach(transport.NewMemNetwork(wanDelay(), 256)), &plainMsgs),
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	rs, err = d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs, 18)
	resPlain, err := plain.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resPlain.Messages, want) {
		t.Fatalf("whole-batch round recovered %q, want %q", resPlain.Messages, want)
	}

	// Chunk-streamed distributed round: at most one vector per chunk, so
	// every multi-vector destination batch crosses the chunk boundary.
	var chunkMsgs atomic.Int64
	chunked, err := NewCluster(d, Options{
		Attach:    countingAttach(MemAttach(transport.NewMemNetwork(wanDelay(), 256)), &chunkMsgs),
		Workers:   2,
		ChunkSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer chunked.Close()
	rs, err = d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs, 18)
	resChunk, err := chunked.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resChunk.Messages, want) {
		t.Fatalf("chunked round recovered %q, want %q", resChunk.Messages, want)
	}

	// The stream must really have been chunked...
	if chunkMsgs.Load() <= plainMsgs.Load() {
		t.Fatalf("chunked run sent %d reenc messages, whole-batch sent %d — chain was not chunked",
			chunkMsgs.Load(), plainMsgs.Load())
	}
	// ...and the per-chunk work reports must sum to the whole-batch
	// chain's accounting, layer for layer.
	plainTr := traceCounts(t, resPlain.Traces)
	chunkTr := traceCounts(t, resChunk.Traces)
	if !reflect.DeepEqual(plainTr, chunkTr) {
		t.Fatalf("chunked traces %v do not sum to whole-batch traces %v", chunkTr, plainTr)
	}
}

// TestChunkStreamTrapVariant: the trap variant's proof-less chain
// (accountability via trap auditing, not per-step NIZKs) streams in
// chunks too.
func TestChunkStreamTrapVariant(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantTrap, 2)
	cluster, err := NewCluster(d, Options{
		Attach:    MemAttach(transport.NewMemNetwork(wanDelay(), 256)),
		Workers:   2,
		ChunkSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 9)
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("chunked trap round recovered %q, want %q", res.Messages, want)
	}
}

// chunkTamperEP corrupts exactly one in-flight chunk (the second chunk
// of a streamed chain, so the receiver has already accepted chunk 0 of
// the same layer) by decoding the frame, rerandomizing nothing but
// doubling one output point, and re-encoding. The payload stays
// well-formed on the wire — the corruption must be caught by proof
// verification, not the decoder.
type chunkTamperEP struct {
	transport.Endpoint
	mu    sync.Mutex
	fired bool
}

func (e *chunkTamperEP) tamper(msg *transport.Message) {
	if msg.Type != msgReEnc {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.fired {
		return
	}
	layer, w, step, chunk, chunks, batches, err := decodeReEncMsg(msg.Payload)
	if err != nil || chunks < 2 || chunk != 1 {
		return
	}
	for i := range batches {
		if len(batches[i].Out) == 0 || len(batches[i].Out[0]) == 0 {
			continue
		}
		ct := batches[i].Out[0][0]
		ct.C = ct.C.Add(ct.C)
		msg.Payload = encodeReEncMsg(layer, w, step, chunk, chunks, batches)
		e.fired = true
		return
	}
}

func (e *chunkTamperEP) Send(to string, msg *transport.Message) error {
	e.tamper(msg)
	return e.Endpoint.Send(to, msg)
}

func (e *chunkTamperEP) SendCtx(ctx context.Context, to string, msg *transport.Message) error {
	e.tamper(msg)
	return e.Endpoint.SendCtx(ctx, to, msg)
}

// TestChunkTamperBlame: corrupting a mid-stream chunk aborts the round
// with the same typed Blame attribution as whole-batch tampering —
// verify-before-build-on holds per chunk — and the cluster completes an
// honest chunked round afterwards, proving the partial chunk assembly
// was torn down with the aborted round.
func TestChunkTamperBlame(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 2)
	const gid, member = 1, 1
	target := "atom/g1/m1" // Options.Prefix default + the tampered member

	inner := MemAttach(transport.NewMemNetwork(wanDelay(), 256))
	cluster, err := NewCluster(d, Options{
		Attach: func(name string) (transport.Endpoint, error) {
			ep, err := inner(name)
			if err != nil || name != target {
				return ep, err
			}
			return &chunkTamperEP{Endpoint: ep}, nil
		},
		Workers:   2,
		ChunkSize: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	submitAll(t, d, c, rs, 18)
	_, err = cluster.Run(context.Background(), rs, nil)
	// The chunk left g1/m1 (chain step 2); its receiver blames the DVSS
	// index of position 1.
	checkBlame(t, "chunked", err, gid, member+1)

	rs, err = d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 18)
	res, err := cluster.Run(context.Background(), rs, nil)
	if err != nil {
		t.Fatalf("post-abort honest chunked round failed: %v", err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("post-abort chunked round recovered %q, want %q", res.Messages, want)
	}
}
