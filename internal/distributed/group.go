// Package distributed executes one anytrust group's mixing iteration
// (Algorithm 1) as a true message-passing protocol: every group member
// is an independent actor owning only its own key share, exchanging
// batches over a transport.Endpoint. It is the bridge between the
// in-process deployment (internal/protocol, which invokes members
// directly) and a real multi-machine deployment: the same member logic
// runs unchanged over the in-memory network (with or without a WAN
// latency model) or the TCP transport.
//
// Wire protocol for one iteration (all payloads are framed
// elgamal.Vector encodings):
//
//	"shuffle"  leader → member 0 → … → member k−1: each member shuffles
//	           the batch under the group key and forwards it.
//	"reenc"    member k−1 divides into β batches and restarts the chain
//	           at member 0; each member peels its layer of every batch
//	           and re-encrypts toward the destination keys.
//	"out"      member k−1 clears the Y slots and delivers the β batches
//	           to the collector.
//	"abort"    any member that fails notifies the collector.
package distributed

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/transport"
)

// Member is one group member's identity and key material for a round.
type Member struct {
	Pos       int          // 0-based position in the group's serial chain
	Secret    *ecc.Scalar  // effective secret (λ·share in threshold mode)
	GroupPK   *ecc.Point   // this group's public key
	DestPKs   []*ecc.Point // β destination group keys (nil entries = ⊥/exit)
	Peers     []string     // transport addresses of all members, in chain order
	Collector string       // address receiving "out"/"abort"
}

// encodeBatches frames β batches of vectors.
func encodeBatches(batches [][]elgamal.Vector) []byte {
	var buf bytes.Buffer
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(batches)))
	buf.Write(n[:])
	for _, batch := range batches {
		binary.BigEndian.PutUint32(n[:], uint32(len(batch)))
		buf.Write(n[:])
		for _, vec := range batch {
			enc := vec.Marshal()
			binary.BigEndian.PutUint32(n[:], uint32(len(enc)))
			buf.Write(n[:])
			buf.Write(enc)
		}
	}
	return buf.Bytes()
}

// decodeBatches reverses encodeBatches.
func decodeBatches(data []byte) ([][]elgamal.Vector, error) {
	rd := bytes.NewReader(data)
	readU32 := func() (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(rd, b[:]); err != nil {
			return 0, err
		}
		return binary.BigEndian.Uint32(b[:]), nil
	}
	nb, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("distributed: decode batches: %w", err)
	}
	if nb > 1<<16 {
		return nil, fmt.Errorf("distributed: absurd batch count %d", nb)
	}
	out := make([][]elgamal.Vector, nb)
	for i := range out {
		nv, err := readU32()
		if err != nil {
			return nil, err
		}
		if nv > 1<<20 {
			return nil, fmt.Errorf("distributed: absurd vector count %d", nv)
		}
		out[i] = make([]elgamal.Vector, nv)
		for j := range out[i] {
			ln, err := readU32()
			if err != nil {
				return nil, err
			}
			raw := make([]byte, ln)
			if _, err := io.ReadFull(rd, raw); err != nil {
				return nil, err
			}
			if out[i][j], err = elgamal.UnmarshalVector(raw); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Serve runs the member's side of one iteration on its endpoint,
// processing messages until its part is done (a member is done after
// it forwards its reenc output, or immediately after an abort). rnd
// supplies the member's secret shuffle and re-encryption randomness.
func (m *Member) Serve(ep transport.Endpoint, rnd io.Reader) error {
	k := len(m.Peers)
	shuffled := false
	for msg := range ep.Inbox() {
		switch msg.Type {
		case "shuffle":
			batches, err := decodeBatches(msg.Payload)
			if err != nil || len(batches) != 1 {
				return m.abort(ep, fmt.Errorf("bad shuffle payload: %v", err))
			}
			out, _, _, err := elgamal.ShuffleBatch(m.GroupPK, batches[0], rnd)
			if err != nil {
				return m.abort(ep, err)
			}
			shuffled = true
			if m.Pos < k-1 {
				if err := ep.Send(m.Peers[m.Pos+1], &transport.Message{
					Type: "shuffle", Payload: encodeBatches([][]elgamal.Vector{out}),
				}); err != nil {
					return m.abort(ep, err)
				}
				continue
			}
			// Last member divides into β batches and starts the
			// decrypt-and-reencrypt chain back at member 0 (Algorithm 1
			// step 2: "It sends (B1,…,Bβ) to the first server").
			beta := len(m.DestPKs)
			sizes := splitSizes(len(out), beta)
			divided := make([][]elgamal.Vector, beta)
			off := 0
			for i := 0; i < beta; i++ {
				divided[i] = out[off : off+sizes[i]]
				off += sizes[i]
			}
			if err := ep.Send(m.Peers[0], &transport.Message{
				Type: "reenc", Payload: encodeBatches(divided),
			}); err != nil {
				return m.abort(ep, err)
			}

		case "reenc":
			if !shuffled {
				return m.abort(ep, fmt.Errorf("reenc before shuffle phase"))
			}
			batches, err := decodeBatches(msg.Payload)
			if err != nil || len(batches) != len(m.DestPKs) {
				return m.abort(ep, fmt.Errorf("bad reenc payload: %v", err))
			}
			for i := range batches {
				for vi := range batches[i] {
					out, _, err := elgamal.ReEncVector(m.Secret, m.DestPKs[i], batches[i][vi], rnd)
					if err != nil {
						return m.abort(ep, err)
					}
					batches[i][vi] = out
				}
			}
			if m.Pos < k-1 {
				err = ep.Send(m.Peers[m.Pos+1], &transport.Message{
					Type: "reenc", Payload: encodeBatches(batches),
				})
			} else {
				// Last member clears Y and ships the outputs.
				for i := range batches {
					for vi := range batches[i] {
						batches[i][vi] = elgamal.ClearYVector(batches[i][vi])
					}
				}
				err = ep.Send(m.Collector, &transport.Message{
					Type: "out", Payload: encodeBatches(batches),
				})
			}
			if err != nil {
				return m.abort(ep, err)
			}
			return nil // this member's work for the iteration is done

		case "stop":
			return nil
		}
	}
	return nil
}

func (m *Member) abort(ep transport.Endpoint, cause error) error {
	_ = ep.Send(m.Collector, &transport.Message{Type: "abort", Payload: []byte(cause.Error())})
	return fmt.Errorf("distributed: member %d: %w", m.Pos, cause)
}

func splitSizes(n, dests int) []int {
	out := make([]int, dests)
	base, rem := n/dests, n%dests
	for i := range out {
		out[i] = base
		if i < rem {
			out[i]++
		}
	}
	return out
}
