package distributed

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"atom/internal/protocol"
	"atom/internal/store"
	"atom/internal/transport"
)

// TestMemberCrashRestartRejoins is the durable-state fault injection:
// one member is hosted remotely over real TCP loopback with a state-dir
// store (the `atomd -member -state-dir` shape), its endpoint is torn
// down mid-round with no shutdown protocol — the moral equivalent of
// SIGKILL — and a "new process" reopens the state dir, rebinds the same
// address and resumes the persisted identity. With RestartGrace set the
// round must complete with exact plaintext parity, and the cluster's
// churn counters must show the loss resolved as a rejoin: zero
// re-plans, zero buddy recoveries, zero escrow shares solicited.
func TestMemberCrashRestartRejoins(t *testing.T) {
	d, c := newDeployment(t, protocol.VariantNIZK, 1)
	hash := []byte("restart-test-group-config-hash")

	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	node, err := transport.ListenTCP("127.0.0.1:0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	addr := node.Addr()
	hostCtx, hostCancel := context.WithCancel(context.Background())
	defer hostCancel()
	hostDone := make(chan error, 1)
	go func() {
		hostDone <- HostMemberOpts(hostCtx, node, HostOptions{ConfigHash: hash, OnConfig: st.PutMember})
	}()

	victim := MemberID{GID: 0, Pos: 1}
	cluster, err := NewCluster(d, Options{
		Attach:          TCPAttach("127.0.0.1"),
		Remote:          map[MemberID]string{victim: addr},
		Heartbeat:       50 * time.Millisecond,
		LivenessTimeout: 500 * time.Millisecond,
		RestartGrace:    20 * time.Second,
		ConfigHash:      hash,
		Log:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	rs, err := d.OpenRound()
	if err != nil {
		t.Fatal(err)
	}
	want := submitAll(t, d, c, rs, 6)

	// Closers created by the restart goroutine, released at test end.
	closers := make(chan func(), 2)
	t.Cleanup(func() {
		for {
			select {
			case f := <-closers:
				f()
			default:
				return
			}
		}
	})

	var killOnce sync.Once
	restartErr := make(chan error, 1)
	hooks := &protocol.RoundHooks{IterationDone: func(it protocol.IterationStats) {
		killOnce.Do(func() {
			t.Logf("hard-killing g%d/m%d at %s after iteration %d", victim.GID, victim.Pos, addr, it.Layer)
			hostCancel()
			node.Close()
			go func() {
				<-hostDone
				// The "new process": reopen the state dir (journal
				// replay) and resume at the same address.
				if cerr := st.Close(); cerr != nil {
					restartErr <- cerr
					return
				}
				st2, oerr := store.Open(dir)
				if oerr != nil {
					restartErr <- oerr
					return
				}
				closers <- func() { st2.Close() }
				resumed := st2.State().Member
				if len(resumed) == 0 {
					restartErr <- errors.New("state dir holds no member config to resume")
					return
				}
				var node2 *transport.TCPNode
				var lerr error
				for i := 0; i < 100; i++ {
					if node2, lerr = transport.ListenTCP(addr, 4096); lerr == nil {
						break
					}
					time.Sleep(50 * time.Millisecond)
				}
				if lerr != nil {
					restartErr <- fmt.Errorf("rebinding %s: %w", addr, lerr)
					return
				}
				closers <- func() { node2.Close() }
				go func() {
					_ = HostMemberOpts(context.Background(), node2, HostOptions{
						ConfigHash: hash,
						OnConfig:   st2.PutMember,
						Resume:     resumed,
					})
				}()
				restartErr <- nil
			}()
		})
	}}

	res, err := cluster.Run(context.Background(), rs, hooks)
	if err != nil {
		select {
		case rerr := <-restartErr:
			if rerr != nil {
				t.Fatalf("member restart failed: %v (round error: %v)", rerr, err)
			}
		default:
		}
		t.Fatalf("round did not survive the crash-restart: %v", err)
	}
	if !reflect.DeepEqual(res.Messages, want) {
		t.Fatalf("crash-restart round recovered %q, want %q", res.Messages, want)
	}

	// The loss must have resolved as a rejoin — any re-plan or buddy
	// recovery means the persisted state was not actually reused.
	stats := cluster.Stats()
	if stats.Rejoins < 1 {
		t.Fatalf("no rejoin recorded (stats %+v)", stats)
	}
	if stats.Replans != 0 || stats.Recoveries != 0 || stats.SharesSolicited != 0 {
		t.Fatalf("crash-restart leaked into the churn path (stats %+v)", stats)
	}
}

// TestConfigHashMismatchRefusesProvisioning: a member host started from
// one group-config file must refuse a coordinator provisioned from
// another, and the cluster must surface the refusal as the terminal
// typed mismatch — not as churn.
func TestConfigHashMismatchRefusesProvisioning(t *testing.T) {
	d, _ := newDeployment(t, protocol.VariantNIZK, 1)

	node, err := transport.ListenTCP("127.0.0.1:0", 4096)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		_ = HostMemberOpts(ctx, node, HostOptions{ConfigHash: []byte("operator-config-A")})
	}()

	_, err = NewCluster(d, Options{
		Attach:      TCPAttach("127.0.0.1"),
		Remote:      map[MemberID]string{{GID: 0, Pos: 1}: node.Addr()},
		ConfigHash:  []byte("operator-config-B"),
		JoinTimeout: 10 * time.Second,
	})
	if err == nil {
		t.Fatal("provisioning succeeded across mismatched group configs")
	}
	if !errors.Is(err, protocol.ErrConfigMismatch) {
		t.Fatalf("mismatch refusal produced %v, want protocol.ErrConfigMismatch", err)
	}
}
