// Package cca2 implements the IND-CCA2-secure encryption scheme Atom uses
// for inner ciphertexts in the trap variant (paper §4.4 and Appendix A):
// an ElGamal key-encapsulation mechanism combined with an authenticated
// symmetric cipher (the paper uses NaCl; we use AES-256-GCM from the
// standard library, which provides the same authenticated-encryption
// contract).
//
// The non-malleability of these ciphertexts is what prevents a malicious
// server from tampering with a real message without detection: any bit
// flip in an inner ciphertext makes decryption fail loudly.
package cca2

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"crypto/sha3"
	"errors"
	"fmt"
	"io"

	"atom/internal/ecc"
)

// Overhead is the ciphertext expansion in bytes: a compressed KEM point
// (33), a GCM nonce (12), and the GCM tag (16).
const Overhead = 33 + 12 + 16

// ErrDecrypt is returned when decryption or authentication fails —
// evidence of tampering in the trap variant.
var ErrDecrypt = errors.New("cca2: decryption failed")

// KeyPair is a long-term or per-round CCA2 keypair (e.g. the trustees'
// round key, with the secret key secret-shared among the trustees).
type KeyPair struct {
	SK *ecc.Scalar
	PK *ecc.Point
}

// KeyGen generates a fresh keypair.
func KeyGen(rnd io.Reader) (*KeyPair, error) {
	sk, err := ecc.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("cca2: keygen: %w", err)
	}
	return &KeyPair{SK: sk, PK: ecc.BaseMul(sk)}, nil
}

// WarmEncryptionKey precomputes a fixed-base comb for pk so that bulk
// Encrypt calls against it (every user submission of a round encrypts to
// the same trustee key) cost a table-driven exponentiation instead of a
// generic one. Safe to call more than once; the table is cached.
func WarmEncryptionKey(pk *ecc.Point) {
	ecc.WarmBase(pk)
}

// deriveAEAD turns the raw ECDH shared point into an AES-256-GCM AEAD.
func deriveAEAD(shared *ecc.Point, kemPub *ecc.Point) (cipher.AEAD, error) {
	h := sha3.New256()
	h.Write([]byte("atom/cca2/kdf/v1"))
	h.Write(kemPub.Bytes())
	h.Write(shared.Bytes())
	block, err := aes.NewCipher(h.Sum(nil))
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Encrypt encapsulates a fresh key to pk and encrypts msg under it.
// Output layout: kemPoint(33) ‖ nonce(12) ‖ sealed.
func Encrypt(pk *ecc.Point, msg []byte, rnd io.Reader) ([]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	r, err := ecc.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("cca2: encrypt: %w", err)
	}
	kemPub := ecc.BaseMul(r)
	shared := pk.Mul(r)
	aead, err := deriveAEAD(shared, kemPub)
	if err != nil {
		return nil, fmt.Errorf("cca2: encrypt: %w", err)
	}
	nonce := make([]byte, aead.NonceSize())
	if _, err := io.ReadFull(rnd, nonce); err != nil {
		return nil, fmt.Errorf("cca2: encrypt: %w", err)
	}
	out := make([]byte, 0, 33+len(nonce)+len(msg)+aead.Overhead())
	out = append(out, kemPub.Bytes()...)
	out = append(out, nonce...)
	out = aead.Seal(out, nonce, msg, kemPub.Bytes())
	return out, nil
}

// Decrypt reverses Encrypt. It returns ErrDecrypt on any malformed or
// tampered ciphertext.
func Decrypt(sk *ecc.Scalar, ct []byte) ([]byte, error) {
	if len(ct) < Overhead {
		return nil, fmt.Errorf("%w: ciphertext too short (%d bytes)", ErrDecrypt, len(ct))
	}
	kemPub, err := ecc.PointFromBytes(ct[:33])
	if err != nil || kemPub.IsIdentity() {
		return nil, fmt.Errorf("%w: bad KEM point", ErrDecrypt)
	}
	shared := kemPub.Mul(sk)
	aead, err := deriveAEAD(shared, kemPub)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrDecrypt, err)
	}
	nonce := ct[33 : 33+aead.NonceSize()]
	msg, err := aead.Open(nil, nonce, ct[33+aead.NonceSize():], ct[:33])
	if err != nil {
		return nil, fmt.Errorf("%w: authentication failed", ErrDecrypt)
	}
	return msg, nil
}

// DecryptWithShares decrypts using additive shares of the secret key, as
// the trustees do after all release their shares (§4.4 step 5–6): the
// effective secret is the sum of the shares.
func DecryptWithShares(shares []*ecc.Scalar, ct []byte) ([]byte, error) {
	if len(shares) == 0 {
		return nil, fmt.Errorf("%w: no key shares", ErrDecrypt)
	}
	sk := ecc.NewScalar(0)
	for _, s := range shares {
		sk = sk.Add(s)
	}
	return Decrypt(sk, ct)
}

// SplitKey additively splits sk into n shares (the trustees' shared
// secret key). The shares are uniformly random subject to summing to sk.
func SplitKey(sk *ecc.Scalar, n int, rnd io.Reader) ([]*ecc.Scalar, error) {
	if n < 1 {
		return nil, errors.New("cca2: need at least one share")
	}
	shares := make([]*ecc.Scalar, n)
	sum := ecc.NewScalar(0)
	for i := 0; i < n-1; i++ {
		s, err := ecc.RandomScalar(rnd)
		if err != nil {
			return nil, fmt.Errorf("cca2: splitkey: %w", err)
		}
		shares[i] = s
		sum = sum.Add(s)
	}
	shares[n-1] = sk.Sub(sum)
	return shares, nil
}
