package cca2

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"atom/internal/ecc"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range [][]byte{
		{},
		[]byte("x"),
		[]byte("a dialing message of exactly eighty bytes padded out to that size for testing!"),
		bytes.Repeat([]byte("m"), 160),
	} {
		ct, err := Encrypt(kp.PK, msg, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if len(ct) != len(msg)+Overhead {
			t.Errorf("ciphertext length %d, want %d", len(ct), len(msg)+Overhead)
		}
		got, err := Decrypt(kp.SK, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round trip failed for %d-byte message", len(msg))
		}
	}
}

func TestDecryptRejectsTampering(t *testing.T) {
	// Non-malleability is the property §4.4 depends on: "IND-CCA2
	// encryption … creates non-malleable ciphertexts". Flip every byte
	// position and confirm decryption always fails.
	kp, _ := KeyGen(rand.Reader)
	msg := []byte("do not touch this message")
	ct, err := Encrypt(kp.PK, msg, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ct {
		bad := append([]byte(nil), ct...)
		bad[i] ^= 0x01
		if got, err := Decrypt(kp.SK, bad); err == nil && bytes.Equal(got, msg) {
			t.Fatalf("tampering at byte %d went undetected", i)
		}
	}
}

func TestDecryptRejectsWrongKey(t *testing.T) {
	kp1, _ := KeyGen(rand.Reader)
	kp2, _ := KeyGen(rand.Reader)
	ct, _ := Encrypt(kp1.PK, []byte("secret"), rand.Reader)
	if _, err := Decrypt(kp2.SK, ct); err == nil {
		t.Fatal("wrong key decrypted successfully")
	}
}

func TestDecryptRejectsTruncation(t *testing.T) {
	kp, _ := KeyGen(rand.Reader)
	ct, _ := Encrypt(kp.PK, []byte("msg"), rand.Reader)
	for _, n := range []int{0, 1, 32, Overhead - 1, len(ct) - 1} {
		if _, err := Decrypt(kp.SK, ct[:n]); err == nil {
			t.Fatalf("truncated ciphertext of %d bytes decrypted", n)
		}
	}
}

func TestCiphertextsAreRandomized(t *testing.T) {
	kp, _ := KeyGen(rand.Reader)
	msg := []byte("same message")
	ct1, _ := Encrypt(kp.PK, msg, rand.Reader)
	ct2, _ := Encrypt(kp.PK, msg, rand.Reader)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestSplitKeyAndSharedDecryption(t *testing.T) {
	// The trustees hold additive shares of the round secret key; all
	// shares together decrypt (§4.4 steps 5–6), any proper subset fails.
	kp, _ := KeyGen(rand.Reader)
	shares, err := SplitKey(kp.SK, 5, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("trap-variant inner ciphertext")
	ct, _ := Encrypt(kp.PK, msg, rand.Reader)

	got, err := DecryptWithShares(shares, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("shared decryption failed")
	}
	if _, err := DecryptWithShares(shares[:4], ct); err == nil {
		t.Fatal("subset of shares decrypted successfully")
	}
	if _, err := DecryptWithShares(nil, ct); err == nil {
		t.Fatal("empty share set decrypted successfully")
	}
}

func TestSplitKeySingleShare(t *testing.T) {
	kp, _ := KeyGen(rand.Reader)
	shares, err := SplitKey(kp.SK, 1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(shares) != 1 || !shares[0].Equal(kp.SK) {
		t.Fatal("single-share split should equal the key itself")
	}
	if _, err := SplitKey(kp.SK, 0, rand.Reader); err == nil {
		t.Fatal("zero shares should be rejected")
	}
}

func TestQuickRoundTripArbitraryMessages(t *testing.T) {
	kp, _ := KeyGen(rand.Reader)
	f := func(msg []byte) bool {
		if len(msg) > 512 {
			msg = msg[:512]
		}
		ct, err := Encrypt(kp.PK, msg, rand.Reader)
		if err != nil {
			return false
		}
		got, err := Decrypt(kp.SK, ct)
		if err != nil {
			return false
		}
		return bytes.Equal(got, msg) || (len(msg) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 32}); err != nil {
		t.Error(err)
	}
}

func TestKeySharesAreNotTheKey(t *testing.T) {
	// Sanity: individual shares leak nothing about sk on their own — at
	// minimum, no share should equal sk except with negligible chance.
	kp, _ := KeyGen(rand.Reader)
	shares, _ := SplitKey(kp.SK, 8, rand.Reader)
	sum := ecc.NewScalar(0)
	for _, s := range shares {
		sum = sum.Add(s)
	}
	if !sum.Equal(kp.SK) {
		t.Fatal("shares do not sum to the key")
	}
}
