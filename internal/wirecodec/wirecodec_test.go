package wirecodec

import (
	"bytes"
	"encoding/binary"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// canonicalEnc builds one encoding that exercises every Enc appender.
func canonicalEnc() []byte {
	g := ecc.BaseMul(ecc.NewScalar(7))
	var e Enc
	e.Byte(0xA5)
	e.U64(1 << 40)
	e.I(-12345)
	e.Bytes([]byte("payload bytes"))
	e.Str("a string")
	e.Point(g)
	e.Point(nil)
	e.Scalar(ecc.NewScalar(99))
	e.Scalar(nil)
	e.Points([]*ecc.Point{g, nil, ecc.BaseMul(ecc.NewScalar(3))})
	e.Scalars([]*ecc.Scalar{ecc.NewScalar(1), nil})
	e.Strs([]string{"x", "", "yz"})
	e.Ints([]int{0, -7, 1 << 20})
	e.Vectors([]elgamal.Vector{{}})
	return e.Out()
}

// decodeCanonical drives every Dec accessor against the canonical
// schema, returning the first error.
func decodeCanonical(d *Dec) error {
	steps := []func() error{
		func() error { _, err := d.Byte(); return err },
		func() error { _, err := d.U64(); return err },
		func() error { _, err := d.I(); return err },
		func() error { _, err := d.Bytes(); return err },
		func() error { _, err := d.Str(); return err },
		func() error { _, err := d.Point(); return err },
		func() error { _, err := d.Point(); return err },
		func() error { _, err := d.Scalar(); return err },
		func() error { _, err := d.Scalar(); return err },
		func() error { _, err := d.Points(); return err },
		func() error { _, err := d.Scalars(); return err },
		func() error { _, err := d.Strs(); return err },
		func() error { _, err := d.Ints(); return err },
		func() error { _, err := d.Vectors(); return err },
	}
	for _, step := range steps {
		if err := step(); err != nil {
			return err
		}
	}
	return nil
}

func TestDecRoundTrip(t *testing.T) {
	if err := decodeCanonical(NewDec(canonicalEnc())); err != nil {
		t.Fatalf("canonical encoding does not decode: %v", err)
	}
}

// TestDecTruncation decodes every strict prefix of the canonical
// encoding: each must fail with an error (or decode a shorter valid
// prefix of the schema), never panic or over-read.
func TestDecTruncation(t *testing.T) {
	full := canonicalEnc()
	for n := 0; n < len(full); n++ {
		decodeCanonical(NewDec(full[:n])) // must not panic
	}
}

// TestDecOversizedLength rejects length and count prefixes that exceed
// the remaining input before any allocation happens.
func TestDecOversizedLength(t *testing.T) {
	huge := binary.AppendUvarint(nil, 1<<50)
	huge = append(huge, 'x')
	if _, err := NewDec(huge).Bytes(); err == nil {
		t.Fatal("Bytes accepted a 2^50 length with 1 byte remaining")
	}
	if _, err := NewDec(huge).Count(); err == nil {
		t.Fatal("Count accepted a 2^50 count with 1 byte remaining")
	}
	if _, err := NewDec(huge).Points(); err == nil {
		t.Fatal("Points accepted a 2^50 count with 1 byte remaining")
	}
	if _, err := NewDec(huge).Vectors(); err == nil {
		t.Fatal("Vectors accepted a 2^50 count with 1 byte remaining")
	}
}

// FuzzDecRoundTrip feeds arbitrary bytes to every Dec accessor — each
// must fail cleanly on truncated, corrupted, or oversized input, never
// panic or over-read — and checks that data making a round trip through
// Enc comes back byte-identical.
func FuzzDecRoundTrip(f *testing.F) {
	f.Add(canonicalEnc())
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Add(binary.AppendUvarint(nil, 1<<60))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Arbitrary input through the full schema: errors are expected,
		// panics and over-reads are not.
		decodeCanonical(NewDec(data))
		// And through each accessor on a fresh reader, so every one
		// sees the raw head of the input.
		accessors := []func(*Dec) error{
			func(d *Dec) error { _, err := d.Byte(); return err },
			func(d *Dec) error { _, err := d.U64(); return err },
			func(d *Dec) error { _, err := d.I(); return err },
			func(d *Dec) error { _, err := d.Bytes(); return err },
			func(d *Dec) error { _, err := d.Str(); return err },
			func(d *Dec) error { _, err := d.Count(); return err },
			func(d *Dec) error { _, err := d.Point(); return err },
			func(d *Dec) error { _, err := d.Scalar(); return err },
			func(d *Dec) error { _, err := d.Points(); return err },
			func(d *Dec) error { _, err := d.Scalars(); return err },
			func(d *Dec) error { _, err := d.Strs(); return err },
			func(d *Dec) error { _, err := d.Ints(); return err },
			func(d *Dec) error { _, err := d.Vectors(); return err },
		}
		for _, acc := range accessors {
			acc(NewDec(data))
		}

		// Round trip: the fuzz input as payload must survive Enc→Dec
		// byte-identically.
		var e Enc
		e.Bytes(data)
		e.U64(uint64(len(data)))
		e.I(-len(data))
		e.Str(string(data))
		d := NewDec(e.Out())
		b, err := d.Bytes()
		if err != nil || !bytes.Equal(b, data) {
			t.Fatalf("Bytes round trip: got %x (%v), want %x", b, err, data)
		}
		u, err := d.U64()
		if err != nil || u != uint64(len(data)) {
			t.Fatalf("U64 round trip: got %d (%v), want %d", u, err, len(data))
		}
		i, err := d.I()
		if err != nil || i != -len(data) {
			t.Fatalf("I round trip: got %d (%v), want %d", i, err, -len(data))
		}
		s, err := d.Str()
		if err != nil || s != string(data) {
			t.Fatalf("Str round trip: got %q (%v)", s, err)
		}
	})
}
