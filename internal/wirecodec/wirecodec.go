// Package wirecodec is the shared length-prefixed binary codec behind
// Atom's hand-rolled wire formats (nizk proof marshaling, the
// distributed round protocol): uvarint counts, zig-zag varints,
// nil-presence flags for points and scalars, and remaining-bytes bounds
// checks before every allocation, so one tightening of a bounds rule
// reaches every format at once.
package wirecodec

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// Enc accumulates an encoding. The zero value is ready to use.
type Enc struct{ buf bytes.Buffer }

// Out returns the encoded bytes.
func (e *Enc) Out() []byte { return e.buf.Bytes() }

// Byte appends one raw byte (flags).
func (e *Enc) Byte(b byte) { e.buf.WriteByte(b) }

// U64 appends a uvarint.
func (e *Enc) U64(v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	e.buf.Write(tmp[:binary.PutUvarint(tmp[:], v)])
}

// I appends a (small, possibly negative) int as a zig-zag varint.
func (e *Enc) I(v int) {
	var tmp [binary.MaxVarintLen64]byte
	e.buf.Write(tmp[:binary.PutVarint(tmp[:], int64(v))])
}

// Bytes appends a length-prefixed byte string.
func (e *Enc) Bytes(b []byte) {
	e.U64(uint64(len(b)))
	e.buf.Write(b)
}

// Str appends a length-prefixed string.
func (e *Enc) Str(s string) { e.Bytes([]byte(s)) }

// Point appends a nil-presence flag and, when present, the point's
// canonical encoding.
func (e *Enc) Point(p *ecc.Point) {
	if p == nil {
		e.buf.WriteByte(0)
		return
	}
	e.buf.WriteByte(1)
	e.Bytes(p.Bytes())
}

// Scalar appends a nil-presence flag and, when present, the scalar.
func (e *Enc) Scalar(s *ecc.Scalar) {
	if s == nil {
		e.buf.WriteByte(0)
		return
	}
	e.buf.WriteByte(1)
	e.Bytes(s.Bytes())
}

// Points appends a counted sequence of points.
func (e *Enc) Points(ps []*ecc.Point) {
	e.U64(uint64(len(ps)))
	for _, p := range ps {
		e.Point(p)
	}
}

// Scalars appends a counted sequence of scalars.
func (e *Enc) Scalars(ss []*ecc.Scalar) {
	e.U64(uint64(len(ss)))
	for _, s := range ss {
		e.Scalar(s)
	}
}

// Strs appends a counted sequence of strings.
func (e *Enc) Strs(ss []string) {
	e.U64(uint64(len(ss)))
	for _, s := range ss {
		e.Str(s)
	}
}

// Ints appends a counted sequence of ints.
func (e *Enc) Ints(vs []int) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.I(v)
	}
}

// Vectors appends a counted sequence of ciphertext vectors, each in its
// canonical elgamal encoding.
func (e *Enc) Vectors(vs []elgamal.Vector) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.Bytes(v.Marshal())
	}
}

// Dec decodes an encoding produced by Enc.
type Dec struct{ rd *bytes.Reader }

// NewDec wraps the encoded bytes.
func NewDec(b []byte) *Dec { return &Dec{rd: bytes.NewReader(b)} }

// Byte reads one raw byte.
func (d *Dec) Byte() (byte, error) { return d.rd.ReadByte() }

// U64 reads a uvarint.
func (d *Dec) U64() (uint64, error) { return binary.ReadUvarint(d.rd) }

// I reads a zig-zag varint.
func (d *Dec) I() (int, error) {
	v, err := binary.ReadVarint(d.rd)
	return int(v), err
}

// Bytes reads a length-prefixed byte string, rejecting lengths beyond
// the remaining input before allocating.
func (d *Dec) Bytes() ([]byte, error) {
	n, err := d.U64()
	if err != nil {
		return nil, err
	}
	if n > uint64(d.rd.Len()) {
		return nil, fmt.Errorf("wirecodec: length %d exceeds %d remaining bytes", n, d.rd.Len())
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(d.rd, b); err != nil {
		return nil, err
	}
	return b, nil
}

// Str reads a length-prefixed string.
func (d *Dec) Str() (string, error) {
	b, err := d.Bytes()
	return string(b), err
}

// Count reads an element count, rejecting counts beyond the remaining
// input (every element occupies at least one byte) before allocating.
func (d *Dec) Count() (int, error) {
	n, err := d.U64()
	if err != nil {
		return 0, err
	}
	if n > uint64(d.rd.Len()) {
		return 0, fmt.Errorf("wirecodec: count %d exceeds %d remaining bytes", n, d.rd.Len())
	}
	return int(n), nil
}

// Point reads a flagged point (nil when absent).
func (d *Dec) Point() (*ecc.Point, error) {
	flag, err := d.rd.ReadByte()
	if err != nil {
		return nil, err
	}
	if flag == 0 {
		return nil, nil
	}
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	return ecc.PointFromBytes(b)
}

// Scalar reads a flagged scalar (nil when absent).
func (d *Dec) Scalar() (*ecc.Scalar, error) {
	flag, err := d.rd.ReadByte()
	if err != nil {
		return nil, err
	}
	if flag == 0 {
		return nil, nil
	}
	b, err := d.Bytes()
	if err != nil {
		return nil, err
	}
	return ecc.ScalarFromBytes(b), nil
}

// Points reads a counted sequence of points.
func (d *Dec) Points() ([]*ecc.Point, error) {
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	out := make([]*ecc.Point, n)
	for i := range out {
		if out[i], err = d.Point(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Scalars reads a counted sequence of scalars.
func (d *Dec) Scalars() ([]*ecc.Scalar, error) {
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	out := make([]*ecc.Scalar, n)
	for i := range out {
		if out[i], err = d.Scalar(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Strs reads a counted sequence of strings.
func (d *Dec) Strs() ([]string, error) {
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	out := make([]string, n)
	for i := range out {
		if out[i], err = d.Str(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Ints reads a counted sequence of ints.
func (d *Dec) Ints() ([]int, error) {
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		if out[i], err = d.I(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Vectors reads a counted sequence of ciphertext vectors.
func (d *Dec) Vectors() ([]elgamal.Vector, error) {
	n, err := d.Count()
	if err != nil {
		return nil, err
	}
	out := make([]elgamal.Vector, n)
	for i := range out {
		b, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		if out[i], err = elgamal.UnmarshalVector(b); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Done fails if input remains.
func (d *Dec) Done() error {
	if d.rd.Len() != 0 {
		return fmt.Errorf("wirecodec: %d trailing bytes", d.rd.Len())
	}
	return nil
}

// Len returns the remaining undecoded byte count.
func (d *Dec) Len() int { return d.rd.Len() }
