package nizk

import (
	"bytes"
	"crypto/rand"
	"testing"
)

// TestShufProofWireRoundTrip: a marshaled+unmarshaled shuffle proof
// must still verify against the original statement, and the re-encoded
// bytes must be identical (canonical encoding).
func TestShufProofWireRoundTrip(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 4, 2)
	proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	wire := proof.Marshal()
	back, err := UnmarshalShufProof(wire)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShuffle(pk, in, out, back); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
	if !bytes.Equal(wire, back.Marshal()) {
		t.Fatal("re-encoding is not canonical")
	}
}

// TestReEncProofWireRoundTrip covers both the mid-chain and the
// exit-layer (nextPK = ⊥) shapes.
func TestReEncProofWireRoundTrip(t *testing.T) {
	for _, exit := range []bool{false, true} {
		server, nextPK, in, out, rs := reencFixture(t, exit)
		proof, err := ProveReEnc(server.SK, server.PK, nextPK, in, out, rs, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		wire := proof.Marshal()
		back, err := UnmarshalReEncProof(wire)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyReEnc(server.PK, nextPK, in, out, back); err != nil {
			t.Fatalf("decoded proof rejected (exit=%v): %v", exit, err)
		}
		if !bytes.Equal(wire, back.Marshal()) {
			t.Fatalf("re-encoding is not canonical (exit=%v)", exit)
		}
	}
}

// TestProofUnmarshalRejectsGarbage: truncated and trailing-byte inputs
// must fail, never panic.
func TestProofUnmarshalRejectsGarbage(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 3, 1)
	proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	wire := proof.Marshal()
	for _, bad := range [][]byte{nil, wire[:1], wire[:len(wire)/2], append(append([]byte{}, wire...), 0xff)} {
		if _, err := UnmarshalShufProof(bad); err == nil {
			t.Fatalf("garbage of %d bytes decoded", len(bad))
		}
	}
}

// TestProofUnmarshalRejectsNilElements: nil points/scalars smuggled
// through the presence flags must be rejected at decode, never reach
// the verifier's point arithmetic (a panic there would kill a
// distributed member actor).
func TestProofUnmarshalRejectsNilElements(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 3, 1)
	proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	u0 := proof.U[0]
	proof.U[0] = nil
	if _, err := UnmarshalShufProof(proof.Marshal()); err == nil {
		t.Fatal("shuffle proof with nil point element decoded")
	}
	proof.U[0] = u0
	proof.ZU[0] = nil
	if _, err := UnmarshalShufProof(proof.Marshal()); err == nil {
		t.Fatal("shuffle proof with nil scalar element decoded")
	}

	server, nextPK, rin, rout, rs := reencFixture(t, false)
	rp, err := ProveReEnc(server.SK, server.PK, nextPK, rin, rout, rs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	rp.CommitKey[0] = nil
	if _, err := UnmarshalReEncProof(rp.Marshal()); err == nil {
		t.Fatal("reenc proof with nil point element decoded")
	}
}
