package nizk

import (
	"fmt"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// VerifyEncBatch verifies many users' EncProofs — the admission-time
// proofs of plaintext knowledge — with a single random-linear-combination
// check (small-exponent batching à la Bellare–Garay–Rabin), the frontend
// counterpart of VerifyReEncBatch: every per-component equation
// g^u = Commit · R^t is multiplied by an independent fresh random scalar
// and the results are summed, so one multi-scalar multiplication plus one
// fixed-base multiplication vouches for the whole batch. The entry
// group's public key enters each proof only through its transcript
// challenge, never the verification equation, so one batch may span
// submissions to different entry groups — exactly what a multiplexed
// ingestion frontend collects.
//
// If any equation of any proof is violated the combined sum is nonzero
// except with probability ~2⁻²⁵⁶, in which case the batch is re-verified
// proof by proof to attribute the failure to the lowest offending
// submission — a batched rejection is therefore byte-for-byte the error
// serial verification would have produced.
func VerifyEncBatch(pks []*ecc.Point, vecs []elgamal.Vector, gids []uint64, proofs []*EncProof) error {
	k := len(vecs)
	if len(pks) != k || len(gids) != k || len(proofs) != k {
		return fmt.Errorf("%w: enc batch sizes %d/%d/%d/%d", ErrVerify, len(pks), k, len(gids), len(proofs))
	}
	if k == 0 {
		return nil
	}

	total := 0
	for pi, v := range vecs {
		proof := proofs[pi]
		if proof == nil || len(proof.Commit) != len(v) || len(proof.Resp) != len(v) {
			return fmt.Errorf("%w: malformed EncProof, submission %d", ErrVerify, pi)
		}
		total += len(v)
	}

	// Fold every term of the combination: the response exponents land on
	// the one shared fixed base g, the commitments and ciphertext R
	// components in one multi-scalar multiplication.
	baseExp := ecc.NewScalar(0)
	ks := make([]*ecc.Scalar, 0, 2*total)
	ps := make([]*ecc.Point, 0, 2*total)
	for pi, v := range vecs {
		proof := proofs[pi]
		tr := encTranscript(pks[pi], v, gids[pi])
		tr.AppendPoints("commit", proof.Commit)
		t := tr.Challenge("t")
		for i, ct := range v {
			// (g^u − Commit − R^t) × ρ = 0 for an honest component.
			rho, err := ecc.RandomScalar(nil)
			if err != nil {
				return fmt.Errorf("nizk: enc batch verify: %w", err)
			}
			baseExp = baseExp.Add(rho.Mul(proof.Resp[i]))
			ks = append(ks, rho.Neg(), rho.Mul(t).Neg())
			ps = append(ps, proof.Commit[i], ct.R)
		}
	}
	acc := ecc.MultiScalarMul(ks, ps).Add(ecc.BaseMul(baseExp))
	if acc.IsIdentity() {
		return nil
	}

	// The combination is nonzero, so at least one proof is bad: find the
	// lowest offender serially for a deterministic, attributable error.
	for pi := range proofs {
		if err := VerifyEnc(pks[pi], vecs[pi], gids[pi], proofs[pi]); err != nil {
			return fmt.Errorf("submission %d: %w", pi, err)
		}
	}
	return fmt.Errorf("%w: batched EncProof combination nonzero", ErrVerify)
}
