package nizk

import (
	"fmt"
	"io"

	"atom/internal/ecc"
)

// ILMPP is the Iterated Logarithmic Multiplication Proof Protocol at the
// core of Neff's verifiable shuffle [59]: given public group elements
// X_1..X_n and Y_1..Y_n with X_i = g^{x_i}, Y_i = g^{y_i}, the prover
// demonstrates Π x_i = Π y_i without revealing the exponents.
//
// The protocol is a chained sigma protocol. With blinding factors
// θ_1..θ_{n−1} the prover sends
//
//	A_1 = Y_1^{θ_1},  A_i = X_i^{θ_{i−1}}·Y_i^{θ_i} (1<i<n),  A_n = X_n^{θ_{n−1}}
//
// receives challenge γ, and responds with r_i = θ_i + (−1)^i·γ·Π_{j≤i}(x_j/y_j).
// The verifier checks
//
//	Y_1^{r_1} = A_1 · X_1^{−γ}
//	X_i^{r_{i−1}} · Y_i^{r_i} = A_i                (1 < i < n)
//	X_n^{r_{n−1}} = A_n · Y_n^{(−1)^{n−1}·γ}
//
// The chain telescopes so the last equation holds exactly when
// Π x_i = Π y_i. Special soundness and honest-verifier zero knowledge
// follow as for standard Schnorr-style protocols.
type ILMPP struct {
	Commit []*ecc.Point  // A_1..A_n
	Resp   []*ecc.Scalar // r_1..r_{n−1}
}

// proveILMPP produces an ILMPP for the exponent vectors xs, ys (the
// prover's secrets) whose public images Xs, Ys must already have been
// absorbed into tr by the caller. All y_i must be nonzero.
func proveILMPP(tr *Transcript, xs, ys []*ecc.Scalar, Xs, Ys []*ecc.Point, rnd io.Reader) (*ILMPP, error) {
	n := len(xs)
	if n < 2 || len(ys) != n || len(Xs) != n || len(Ys) != n {
		return nil, fmt.Errorf("nizk: ilmpp: need matched vectors of length ≥ 2, got %d/%d/%d/%d",
			len(xs), len(ys), len(Xs), len(Ys))
	}
	for i, y := range ys {
		if y.IsZero() {
			return nil, fmt.Errorf("nizk: ilmpp: zero exponent y[%d] (retry with fresh randomness)", i)
		}
	}
	theta := make([]*ecc.Scalar, n-1)
	for i := range theta {
		var err error
		if theta[i], err = ecc.RandomScalar(rnd); err != nil {
			return nil, fmt.Errorf("nizk: ilmpp: %w", err)
		}
	}
	// The prover knows every base's discrete log (X_i = g^{x_i} is the
	// protocol's premise), so each commitment X_i^{θ}·Y_i^{θ'} is a
	// single fixed-base exponentiation g^{x_i·θ + y_i·θ'} and the whole
	// vector evaluates in one comb batch instead of 2n generic
	// multiplications.
	cexp := make([]*ecc.Scalar, n)
	cexp[0] = ys[0].Mul(theta[0])
	for i := 1; i < n-1; i++ {
		cexp[i] = xs[i].Mul(theta[i-1]).Add(ys[i].Mul(theta[i]))
	}
	cexp[n-1] = xs[n-1].Mul(theta[n-2])
	commit := ecc.BaseMulBatch(cexp)

	tr.AppendPoints("ilmpp-commit", commit)
	gamma := tr.Challenge("ilmpp-gamma")

	// r_i = θ_i + (−1)^i·γ·ρ_i with ρ_i = Π_{j≤i} x_j/y_j (1-indexed in the
	// math; rho accumulates as we walk the 0-indexed arrays).
	resp := make([]*ecc.Scalar, n-1)
	invY := ecc.InvertBatch(ys[:n-1])
	rho := ecc.NewScalar(1)
	sign := true // true means the (−1)^i factor is −1 (i odd, 1-indexed)
	for i := 0; i < n-1; i++ {
		rho = rho.Mul(xs[i]).Mul(invY[i])
		term := gamma.Mul(rho)
		if sign {
			term = term.Neg()
		}
		resp[i] = theta[i].Add(term)
		sign = !sign
	}
	return &ILMPP{Commit: commit, Resp: resp}, nil
}

// verifyILMPP checks an ILMPP against the public vectors Xs, Ys, which
// must already have been absorbed into tr by the caller exactly as during
// proving.
func verifyILMPP(tr *Transcript, Xs, Ys []*ecc.Point, proof *ILMPP) error {
	n := len(Xs)
	if proof == nil || n < 2 || len(Ys) != n || len(proof.Commit) != n || len(proof.Resp) != n-1 {
		return fmt.Errorf("%w: malformed ILMPP", ErrVerify)
	}
	tr.AppendPoints("ilmpp-commit", proof.Commit)
	gamma := tr.Challenge("ilmpp-gamma")
	// (−1)^{n−1} exponent of the last link's Y term.
	last := gamma
	if (n-1)%2 == 1 { // 1-indexed n−1 … n odd ⇒ exponent even
		last = gamma.Neg()
	}

	// Fast path: fold every link equation, scaled by an independent fresh
	// random scalar, into one multi-scalar multiplication (small-exponent
	// batching). Terms that reference the same Point pointer merge their
	// exponents first — the simple-shuffle statement repeats Γ and g for
	// half the links, so merging cuts the MSM by a third. If the combined
	// sum is nonzero (or randomness fails), the link-by-link scan below
	// attributes the failure exactly as the serial verifier would.
	ks := make([]*ecc.Scalar, 0, 3*n)
	ps := make([]*ecc.Point, 0, 3*n)
	seen := make(map[*ecc.Point]int, 3*n)
	addTerm := func(k *ecc.Scalar, p *ecc.Point) {
		if j, ok := seen[p]; ok {
			ks[j] = ks[j].Add(k)
			return
		}
		seen[p] = len(ks)
		ks = append(ks, k)
		ps = append(ps, p)
	}
	batched := true
	for i := 0; i < n && batched; i++ {
		rho, err := ecc.RandomScalar(nil)
		if err != nil {
			batched = false
			break
		}
		switch {
		case i == 0:
			// Y_1^{r_1}·A_1^{−1}·X_1^{γ} = O.
			addTerm(rho.Mul(proof.Resp[0]), Ys[0])
			addTerm(rho.Neg(), proof.Commit[0])
			addTerm(rho.Mul(gamma), Xs[0])
		case i < n-1:
			// X_i^{r_{i−1}}·Y_i^{r_i}·A_i^{−1} = O.
			addTerm(rho.Mul(proof.Resp[i-1]), Xs[i])
			addTerm(rho.Mul(proof.Resp[i]), Ys[i])
			addTerm(rho.Neg(), proof.Commit[i])
		default:
			// X_n^{r_{n−1}}·A_n^{−1}·Y_n^{−(−1)^{n−1}γ} = O.
			addTerm(rho.Mul(proof.Resp[n-2]), Xs[n-1])
			addTerm(rho.Neg(), proof.Commit[n-1])
			addTerm(rho.Mul(last).Neg(), Ys[n-1])
		}
	}
	if batched && ecc.MultiScalarMul(ks, ps).IsIdentity() {
		return nil
	}

	// First link: Y_1^{r_1} = A_1 · X_1^{−γ}.
	if !Ys[0].Mul(proof.Resp[0]).Equal(proof.Commit[0].Add(Xs[0].Mul(gamma.Neg()))) {
		return fmt.Errorf("%w: ILMPP first link", ErrVerify)
	}
	// Middle links: X_i^{r_{i−1}} · Y_i^{r_i} = A_i.
	for i := 1; i < n-1; i++ {
		lhs := Xs[i].Mul(proof.Resp[i-1]).Add(Ys[i].Mul(proof.Resp[i]))
		if !lhs.Equal(proof.Commit[i]) {
			return fmt.Errorf("%w: ILMPP link %d", ErrVerify, i)
		}
	}
	// Last link: X_n^{r_{n−1}} = A_n · Y_n^{(−1)^{n−1}·γ}.
	lhs := Xs[n-1].Mul(proof.Resp[n-2])
	rhs := proof.Commit[n-1].Add(Ys[n-1].Mul(last))
	if !lhs.Equal(rhs) {
		return fmt.Errorf("%w: ILMPP last link", ErrVerify)
	}
	if batched {
		return fmt.Errorf("%w: batched ILMPP combination nonzero", ErrVerify)
	}
	return nil
}
