package nizk

import (
	"crypto/rand"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// Mutation tests: every field of every proof structure is perturbed in
// turn, and verification must reject each mutant. These are soundness
// regression tests — a refactor that drops a field from a Fiat–Shamir
// transcript or a verification equation turns some mutant green.

func mutateScalar(s *ecc.Scalar) *ecc.Scalar { return s.Add(ecc.NewScalar(1)) }
func mutatePoint(p *ecc.Point) *ecc.Point    { return p.Add(ecc.Generator()) }

func TestEncProofEveryFieldMatters(t *testing.T) {
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "mutation target", 2)
	mutants := []struct {
		name   string
		mutate func(p *EncProof)
	}{
		{"commit[0]", func(p *EncProof) { p.Commit[0] = mutatePoint(p.Commit[0]) }},
		{"commit[1]", func(p *EncProof) { p.Commit[1] = mutatePoint(p.Commit[1]) }},
		{"resp[0]", func(p *EncProof) { p.Resp[0] = mutateScalar(p.Resp[0]) }},
		{"resp[1]", func(p *EncProof) { p.Resp[1] = mutateScalar(p.Resp[1]) }},
		{"drop-commit", func(p *EncProof) { p.Commit = p.Commit[:1] }},
		{"drop-resp", func(p *EncProof) { p.Resp = p.Resp[:1] }},
	}
	for _, m := range mutants {
		proof, err := ProveEnc(kp.PK, v, rs, 3, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m.mutate(proof)
		if err := VerifyEnc(kp.PK, v, 3, proof); err == nil {
			t.Errorf("EncProof mutant %q verified", m.name)
		}
	}
}

func TestReEncProofEveryFieldMatters(t *testing.T) {
	server, nextPK, in, out, rs := reencFixture(t, false)
	mutants := []struct {
		name   string
		mutate func(p *ReEncProof)
	}{
		{"commit-key", func(p *ReEncProof) { p.CommitKey[0] = mutatePoint(p.CommitKey[0]) }},
		{"commit-r", func(p *ReEncProof) { p.CommitR[0] = mutatePoint(p.CommitR[0]) }},
		{"commit-c", func(p *ReEncProof) { p.CommitC[0] = mutatePoint(p.CommitC[0]) }},
		{"resp-x", func(p *ReEncProof) { p.RespX[0] = mutateScalar(p.RespX[0]) }},
		{"resp-r", func(p *ReEncProof) { p.RespR[0] = mutateScalar(p.RespR[0]) }},
		{"truncate", func(p *ReEncProof) { p.RespX = p.RespX[:1] }},
	}
	for _, m := range mutants {
		proof, err := ProveReEnc(server.SK, server.PK, nextPK, in, out, rs, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m.mutate(proof)
		if err := VerifyReEnc(server.PK, nextPK, in, out, proof); err == nil {
			t.Errorf("ReEncProof mutant %q verified", m.name)
		}
	}
}

func TestShufProofEveryFieldMatters(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 6, 2)
	mutants := []struct {
		name   string
		mutate func(p *ShufProof)
	}{
		{"gamma", func(p *ShufProof) { p.Gamma = mutatePoint(p.Gamma) }},
		{"u[0]", func(p *ShufProof) { p.U[0] = mutatePoint(p.U[0]) }},
		{"ss-commit", func(p *ShufProof) { p.SS.Proof.Commit[0] = mutatePoint(p.SS.Proof.Commit[0]) }},
		{"ss-resp", func(p *ShufProof) { p.SS.Proof.Resp[0] = mutateScalar(p.SS.Proof.Resp[0]) }},
		{"pr[0]", func(p *ShufProof) { p.PR[0] = mutatePoint(p.PR[0]) }},
		{"pc[1]", func(p *ShufProof) { p.PC[1] = mutatePoint(p.PC[1]) }},
		{"au[2]", func(p *ShufProof) { p.AU[2] = mutatePoint(p.AU[2]) }},
		{"br[0]", func(p *ShufProof) { p.BR[0] = mutatePoint(p.BR[0]) }},
		{"bc[1]", func(p *ShufProof) { p.BC[1] = mutatePoint(p.BC[1]) }},
		{"zu[3]", func(p *ShufProof) { p.ZU[3] = mutateScalar(p.ZU[3]) }},
		{"a-gamma", func(p *ShufProof) { p.AGamma = mutatePoint(p.AGamma) }},
		{"ar[0]", func(p *ShufProof) { p.AR[0] = mutatePoint(p.AR[0]) }},
		{"ac[1]", func(p *ShufProof) { p.AC[1] = mutatePoint(p.AC[1]) }},
		{"zc", func(p *ShufProof) { p.ZC = mutateScalar(p.ZC) }},
		{"zs[0]", func(p *ShufProof) { p.ZS[0] = mutateScalar(p.ZS[0]) }},
		{"swap-u", func(p *ShufProof) { p.U[0], p.U[1] = p.U[1], p.U[0] }},
		{"truncate-u", func(p *ShufProof) { p.U = p.U[:5] }},
	}
	for _, m := range mutants {
		proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m.mutate(proof)
		if err := VerifyShuffle(pk, in, out, proof); err == nil {
			t.Errorf("ShufProof mutant %q verified", m.name)
		}
	}
}

// TestShufProofNotTransferable: a proof for one batch must not verify
// for another batch of the same shape (statement binding).
func TestShufProofNotTransferable(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 4, 1)
	proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	in2 := make([]elgamal.Vector, len(in))
	for i := range in2 {
		in2[i], _ = encryptMsg(t, pk, "other batch", 1)
	}
	out2, _, _, err := elgamal.ShuffleBatch(pk, in2, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShuffle(pk, in2, out2, proof); err == nil {
		t.Fatal("proof transferred to a different statement")
	}
}

// TestEncProofMarshalRoundTrip covers the wire encoding used by remote
// clients.
func TestEncProofMarshalRoundTrip(t *testing.T) {
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "wire", 3)
	proof, err := ProveEnc(kp.PK, v, rs, 9, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	enc := proof.Marshal()
	got, err := UnmarshalEncProof(enc)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEnc(kp.PK, v, 9, got); err != nil {
		t.Fatalf("decoded proof rejected: %v", err)
	}
	// Corruptions must fail decode or verification, never panic.
	for _, n := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
		if p2, err := UnmarshalEncProof(enc[:n]); err == nil {
			if err := VerifyEnc(kp.PK, v, 9, p2); err == nil {
				t.Errorf("truncation to %d bytes still verified", n)
			}
		}
	}
	bad := append([]byte(nil), enc...)
	bad[5] ^= 0xFF
	if p2, err := UnmarshalEncProof(bad); err == nil {
		if err := VerifyEnc(kp.PK, v, 9, p2); err == nil {
			t.Error("bit-flipped encoding still verified")
		}
	}
	if _, err := UnmarshalEncProof(append(enc, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
