package nizk

import (
	"crypto/rand"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

func mustKey(t testing.TB) *elgamal.KeyPair {
	t.Helper()
	kp, err := elgamal.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func encryptMsg(t testing.TB, pk *ecc.Point, msg string, points int) (elgamal.Vector, []*ecc.Scalar) {
	t.Helper()
	pts, err := ecc.EmbedMessage([]byte(msg), points)
	if err != nil {
		t.Fatal(err)
	}
	v, rs, err := elgamal.EncryptVector(pk, pts, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return v, rs
}

// --- EncProof ---

func TestEncProofRoundTrip(t *testing.T) {
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "hello entry group", 2)
	proof, err := ProveEnc(kp.PK, v, rs, 7, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEnc(kp.PK, v, 7, proof); err != nil {
		t.Fatal(err)
	}
}

func TestEncProofBindsGroupID(t *testing.T) {
	// §3: a proof generated for entry group 7 must not verify at group 8,
	// or a malicious user could replay an honest user's submission.
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "bound", 1)
	proof, _ := ProveEnc(kp.PK, v, rs, 7, rand.Reader)
	if err := VerifyEnc(kp.PK, v, 8, proof); err == nil {
		t.Fatal("proof verified at the wrong group id")
	}
}

func TestEncProofRejectsRerandomizedCopy(t *testing.T) {
	// §3: submitting a rerandomized copy of an honest ciphertext with the
	// original proof must fail — this is the duplicate-plaintext attack.
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "original", 1)
	proof, _ := ProveEnc(kp.PK, v, rs, 1, rand.Reader)

	copyV, _, err := elgamal.RerandomizeVector(kp.PK, v, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyEnc(kp.PK, copyV, 1, proof); err == nil {
		t.Fatal("proof verified on a rerandomized copy")
	}
}

func TestEncProofRejectsWrongRandomness(t *testing.T) {
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "x", 1)
	bad := []*ecc.Scalar{rs[0].Add(ecc.NewScalar(1))}
	proof, _ := ProveEnc(kp.PK, v, bad, 1, rand.Reader)
	if err := VerifyEnc(kp.PK, v, 1, proof); err == nil {
		t.Fatal("proof with wrong witness verified")
	}
}

func TestEncProofRejectsTamperedProof(t *testing.T) {
	kp := mustKey(t)
	v, rs := encryptMsg(t, kp.PK, "x", 2)
	proof, _ := ProveEnc(kp.PK, v, rs, 1, rand.Reader)
	proof.Resp[1] = proof.Resp[1].Add(ecc.NewScalar(1))
	if err := VerifyEnc(kp.PK, v, 1, proof); err == nil {
		t.Fatal("tampered proof verified")
	}
}

func TestEncProofRejectsNilAndShort(t *testing.T) {
	kp := mustKey(t)
	v, _ := encryptMsg(t, kp.PK, "x", 2)
	if err := VerifyEnc(kp.PK, v, 1, nil); err == nil {
		t.Fatal("nil proof verified")
	}
	if err := VerifyEnc(kp.PK, v, 1, &EncProof{}); err == nil {
		t.Fatal("empty proof verified")
	}
}

// --- ReEncProof ---

func reencFixture(t *testing.T, exit bool) (server *elgamal.KeyPair, nextPK *ecc.Point, in, out elgamal.Vector, rs []*ecc.Scalar) {
	t.Helper()
	server = mustKey(t)
	other := mustKey(t)
	groupPK := elgamal.CombineKeys(server.PK, other.PK)
	in, _ = encryptMsg(t, groupPK, "through the mix", 2)
	if !exit {
		next := mustKey(t)
		nextPK = next.PK
	}
	var err error
	out, rs, err = elgamal.ReEncVector(server.SK, nextPK, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestReEncProofRoundTrip(t *testing.T) {
	server, nextPK, in, out, rs := reencFixture(t, false)
	proof, err := ProveReEnc(server.SK, server.PK, nextPK, in, out, rs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReEnc(server.PK, nextPK, in, out, proof); err != nil {
		t.Fatal(err)
	}
}

func TestReEncProofExitLayer(t *testing.T) {
	server, _, in, out, rs := reencFixture(t, true)
	proof, err := ProveReEnc(server.SK, server.PK, nil, in, out, rs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReEnc(server.PK, nil, in, out, proof); err != nil {
		t.Fatal(err)
	}
}

func TestReEncProofMidChain(t *testing.T) {
	// Second server in a group: input already has Y set.
	s1, s2, next := mustKey(t), mustKey(t), mustKey(t)
	groupPK := elgamal.CombineKeys(s1.PK, s2.PK)
	in, _ := encryptMsg(t, groupPK, "mid chain", 1)
	mid, _, err := elgamal.ReEncVector(s1.SK, next.PK, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	out, rs, err := elgamal.ReEncVector(s2.SK, next.PK, mid, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProveReEnc(s2.SK, s2.PK, next.PK, mid, out, rs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReEnc(s2.PK, next.PK, mid, out, proof); err != nil {
		t.Fatal(err)
	}
}

func TestReEncProofDetectsSubstitutedCiphertext(t *testing.T) {
	// A malicious server that swaps in a different ciphertext (the §4.3
	// attack the NIZKs exist to stop) cannot produce a valid proof.
	server, nextPK, in, out, rs := reencFixture(t, false)
	evil, _ := encryptMsg(t, nextPK, "injected", 2)
	// Give the substituted output a Y slot so it is structurally valid.
	for j := range evil {
		evil[j].Y = out[j].Y
	}
	proof, err := ProveReEnc(server.SK, server.PK, nextPK, in, evil, rs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReEnc(server.PK, nextPK, in, evil, proof); err == nil {
		t.Fatal("substituted output passed verification")
	}
}

func TestReEncProofDetectsWrongKey(t *testing.T) {
	// Using a different secret than the published key must fail.
	server, nextPK, in, _, _ := reencFixture(t, false)
	impostor := mustKey(t)
	out, rs, err := elgamal.ReEncVector(impostor.SK, nextPK, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProveReEnc(impostor.SK, server.PK, nextPK, in, out, rs, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyReEnc(server.PK, nextPK, in, out, proof); err == nil {
		t.Fatal("wrong-key reencryption passed verification")
	}
}

func TestReEncProofDetectsTampering(t *testing.T) {
	server, nextPK, in, out, rs := reencFixture(t, false)
	proof, _ := ProveReEnc(server.SK, server.PK, nextPK, in, out, rs, rand.Reader)
	proof.RespX[0] = proof.RespX[0].Add(ecc.NewScalar(1))
	if err := VerifyReEnc(server.PK, nextPK, in, out, proof); err == nil {
		t.Fatal("tampered ReEncProof verified")
	}
	if err := VerifyReEnc(server.PK, nextPK, in, out, nil); err == nil {
		t.Fatal("nil ReEncProof verified")
	}
}

// --- ILMPP ---

func TestILMPPRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 16} {
		xs := make([]*ecc.Scalar, n)
		ys := make([]*ecc.Scalar, n)
		Xs := make([]*ecc.Point, n)
		Ys := make([]*ecc.Point, n)
		prodX := ecc.NewScalar(1)
		for i := 0; i < n; i++ {
			xs[i] = ecc.MustRandomScalar(rand.Reader)
			prodX = prodX.Mul(xs[i])
		}
		// Build ys with the same product: random except the last.
		prodYPartial := ecc.NewScalar(1)
		for i := 0; i < n-1; i++ {
			ys[i] = ecc.MustRandomScalar(rand.Reader)
			prodYPartial = prodYPartial.Mul(ys[i])
		}
		ys[n-1] = prodX.Mul(prodYPartial.Inv())
		for i := 0; i < n; i++ {
			Xs[i] = ecc.BaseMul(xs[i])
			Ys[i] = ecc.BaseMul(ys[i])
		}
		tr := NewTranscript("test-ilmpp")
		tr.AppendPoints("x", Xs)
		tr.AppendPoints("y", Ys)
		proof, err := proveILMPP(tr, xs, ys, Xs, Ys, rand.Reader)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		vtr := NewTranscript("test-ilmpp")
		vtr.AppendPoints("x", Xs)
		vtr.AppendPoints("y", Ys)
		if err := verifyILMPP(vtr, Xs, Ys, proof); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestILMPPRejectsUnequalProducts(t *testing.T) {
	n := 5
	xs := make([]*ecc.Scalar, n)
	ys := make([]*ecc.Scalar, n)
	Xs := make([]*ecc.Point, n)
	Ys := make([]*ecc.Point, n)
	for i := 0; i < n; i++ {
		xs[i] = ecc.MustRandomScalar(rand.Reader)
		ys[i] = ecc.MustRandomScalar(rand.Reader) // products differ whp
		Xs[i] = ecc.BaseMul(xs[i])
		Ys[i] = ecc.BaseMul(ys[i])
	}
	tr := NewTranscript("test-ilmpp")
	proof, err := proveILMPP(tr, xs, ys, Xs, Ys, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	vtr := NewTranscript("test-ilmpp")
	if err := verifyILMPP(vtr, Xs, Ys, proof); err == nil {
		t.Fatal("ILMPP verified with unequal products")
	}
}

// --- ShufProof ---

func shuffleFixture(t *testing.T, n, l int) (pk *ecc.Point, in, out []elgamal.Vector, perm []int, rands [][]*ecc.Scalar) {
	t.Helper()
	kp := mustKey(t)
	pk = kp.PK
	in = make([]elgamal.Vector, n)
	for i := 0; i < n; i++ {
		in[i], _ = encryptMsg(t, pk, "msg", l)
	}
	var err error
	out, perm, rands, err = elgamal.ShuffleBatch(pk, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return
}

func TestShuffleProofRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, l int }{{1, 1}, {2, 1}, {8, 1}, {8, 3}, {32, 2}} {
		pk, in, out, perm, rands := shuffleFixture(t, tc.n, tc.l)
		proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
		if err != nil {
			t.Fatalf("n=%d l=%d: %v", tc.n, tc.l, err)
		}
		if err := VerifyShuffle(pk, in, out, proof); err != nil {
			t.Fatalf("n=%d l=%d: %v", tc.n, tc.l, err)
		}
	}
}

func TestShuffleProofRejectsDroppedMessage(t *testing.T) {
	// The §4.3 attack: a malicious server replaces one user's ciphertext
	// with its own. The shuffle proof must not verify.
	pk, in, out, perm, rands := shuffleFixture(t, 8, 2)
	evil, _ := encryptMsg(t, pk, "replacement", 2)
	out[3] = evil
	proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShuffle(pk, in, out, proof); err == nil {
		t.Fatal("shuffle with a replaced message verified")
	}
}

func TestShuffleProofRejectsDuplicatedMessage(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 8, 1)
	out[5] = out[4].Clone()
	proof, err := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShuffle(pk, in, out, proof); err == nil {
		t.Fatal("shuffle with a duplicated message verified")
	}
}

func TestShuffleProofRejectsWrongKeyRerandomization(t *testing.T) {
	// Rerandomizing under a different key than claimed must fail: the C
	// components would no longer pair with the R components under pk.
	kp, other := mustKey(t), mustKey(t)
	n := 6
	in := make([]elgamal.Vector, n)
	for i := range in {
		in[i], _ = encryptMsg(t, kp.PK, "m", 1)
	}
	out, perm, rands, err := elgamal.ShuffleBatch(other.PK, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := ProveShuffle(kp.PK, in, out, perm, rands, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShuffle(kp.PK, in, out, proof); err == nil {
		t.Fatal("wrong-key shuffle verified")
	}
}

func TestShuffleProofRejectsTampering(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 4, 1)
	proof, _ := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	proof.ZC = proof.ZC.Add(ecc.NewScalar(1))
	if err := VerifyShuffle(pk, in, out, proof); err == nil {
		t.Fatal("tampered shuffle proof verified")
	}
	if err := VerifyShuffle(pk, in, out, nil); err == nil {
		t.Fatal("nil shuffle proof verified")
	}
}

func TestShuffleProofRejectsMismatchedBatch(t *testing.T) {
	pk, in, out, perm, rands := shuffleFixture(t, 4, 1)
	proof, _ := ProveShuffle(pk, in, out, perm, rands, rand.Reader)
	if err := VerifyShuffle(pk, in[:3], out, proof); err == nil {
		t.Fatal("mismatched batch sizes verified")
	}
	if err := VerifyShuffle(pk, in, out[:3], proof); err == nil {
		t.Fatal("mismatched batch sizes verified")
	}
}

func TestShuffleProofRejectsMidChainInputs(t *testing.T) {
	kp := mustKey(t)
	in := make([]elgamal.Vector, 2)
	in[0], _ = encryptMsg(t, kp.PK, "a", 1)
	in[1], _ = encryptMsg(t, kp.PK, "b", 1)
	mid, _, err := elgamal.ReEncVector(kp.SK, kp.PK, in[0], rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	in[0] = mid // Y ≠ ⊥
	if _, _, _, err := elgamal.ShuffleBatch(kp.PK, in, rand.Reader); err == nil {
		t.Fatal("ShuffleBatch accepted Y ≠ ⊥ input")
	}
}

func TestShuffledBatchStillDecrypts(t *testing.T) {
	kp := mustKey(t)
	n := 5
	msgs := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	in := make([]elgamal.Vector, n)
	for i := 0; i < n; i++ {
		in[i], _ = encryptMsg(t, kp.PK, msgs[i], 1)
	}
	out, perm, _, err := elgamal.ShuffleBatch(kp.PK, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		pts, err := elgamal.DecryptVector(kp.SK, out[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := ecc.ExtractMessage(pts)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != msgs[perm[i]] {
			t.Fatalf("position %d: got %q want %q", i, got, msgs[perm[i]])
		}
	}
}

func TestRandomPermIsPermutation(t *testing.T) {
	for _, n := range []int{1, 2, 10, 100} {
		perm, err := elgamal.RandomPerm(n, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				t.Fatalf("invalid permutation %v", perm)
			}
			seen[p] = true
		}
	}
}

func TestTranscriptDomainSeparation(t *testing.T) {
	a := NewTranscript("a")
	b := NewTranscript("b")
	a.AppendBytes("x", []byte("data"))
	b.AppendBytes("x", []byte("data"))
	if a.Challenge("c").Equal(b.Challenge("c")) {
		t.Fatal("transcripts with different domains produced equal challenges")
	}
}

func TestTranscriptChallengeChaining(t *testing.T) {
	tr := NewTranscript("chain")
	c1 := tr.Challenge("c")
	c2 := tr.Challenge("c")
	if c1.Equal(c2) {
		t.Fatal("consecutive challenges should differ (re-keying failed)")
	}
}
