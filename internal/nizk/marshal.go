package nizk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/ecc"
)

// Wire encoding for EncProof, the one proof that travels from users to
// servers (shuffle and reencryption proofs travel between servers, which
// in this codebase share a process or use the daemon's gob framing).
// Layout: u16 count ‖ count × (33-byte commit point ‖ 32-byte response).

// Marshal encodes the proof.
func (p *EncProof) Marshal() []byte {
	var buf bytes.Buffer
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(p.Commit)))
	buf.Write(n[:])
	for i := range p.Commit {
		cb := p.Commit[i].Bytes()
		buf.WriteByte(byte(len(cb)))
		buf.Write(cb)
		buf.Write(p.Resp[i].Bytes())
	}
	return buf.Bytes()
}

// UnmarshalEncProof decodes a proof encoded by Marshal.
func UnmarshalEncProof(data []byte) (*EncProof, error) {
	rd := bytes.NewReader(data)
	var n [2]byte
	if _, err := io.ReadFull(rd, n[:]); err != nil {
		return nil, fmt.Errorf("nizk: unmarshal encproof: %w", err)
	}
	count := int(binary.BigEndian.Uint16(n[:]))
	p := &EncProof{
		Commit: make([]*ecc.Point, count),
		Resp:   make([]*ecc.Scalar, count),
	}
	for i := 0; i < count; i++ {
		ln, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof commit %d: %w", i, err)
		}
		pb := make([]byte, ln)
		if _, err := io.ReadFull(rd, pb); err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof commit %d: %w", i, err)
		}
		if p.Commit[i], err = ecc.PointFromBytes(pb); err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof commit %d: %w", i, err)
		}
		sb := make([]byte, 32)
		if _, err := io.ReadFull(rd, sb); err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof resp %d: %w", i, err)
		}
		p.Resp[i] = ecc.ScalarFromBytes(sb)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("nizk: unmarshal encproof: %d trailing bytes", rd.Len())
	}
	return p, nil
}
