package nizk

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/wirecodec"
)

// Wire encoding for EncProof, the one proof that travels from users to
// servers (shuffle and reencryption proofs travel between servers, which
// in this codebase share a process or use the daemon's gob framing).
// Layout: u16 count ‖ count × (33-byte commit point ‖ 32-byte response).

// Marshal encodes the proof.
func (p *EncProof) Marshal() []byte {
	var buf bytes.Buffer
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(p.Commit)))
	buf.Write(n[:])
	for i := range p.Commit {
		cb := p.Commit[i].Bytes()
		buf.WriteByte(byte(len(cb)))
		buf.Write(cb)
		buf.Write(p.Resp[i].Bytes())
	}
	return buf.Bytes()
}

// UnmarshalEncProof decodes a proof encoded by Marshal.
func UnmarshalEncProof(data []byte) (*EncProof, error) {
	rd := bytes.NewReader(data)
	var n [2]byte
	if _, err := io.ReadFull(rd, n[:]); err != nil {
		return nil, fmt.Errorf("nizk: unmarshal encproof: %w", err)
	}
	count := int(binary.BigEndian.Uint16(n[:]))
	p := &EncProof{
		Commit: make([]*ecc.Point, count),
		Resp:   make([]*ecc.Scalar, count),
	}
	for i := 0; i < count; i++ {
		ln, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof commit %d: %w", i, err)
		}
		pb := make([]byte, ln)
		if _, err := io.ReadFull(rd, pb); err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof commit %d: %w", i, err)
		}
		if p.Commit[i], err = ecc.PointFromBytes(pb); err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof commit %d: %w", i, err)
		}
		sb := make([]byte, 32)
		if _, err := io.ReadFull(rd, sb); err != nil {
			return nil, fmt.Errorf("nizk: unmarshal encproof resp %d: %w", i, err)
		}
		p.Resp[i] = ecc.ScalarFromBytes(sb)
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("nizk: unmarshal encproof: %d trailing bytes", rd.Len())
	}
	return p, nil
}

// ---------------------------------------------------------------------
// Shuffle and re-encryption proofs also need a wire form once group
// members live in different processes (internal/distributed): the actor
// chain ships each member's proof alongside its batch so the next
// member can verify before building on it. The encoding rides the
// shared wirecodec (nil-presence flags for every point/scalar), so
// whatever shape the prover produced round-trips exactly.

// Marshal encodes the shuffle proof for transport.
func (p *ShufProof) Marshal() []byte {
	var w wirecodec.Enc
	w.Point(p.Gamma)
	w.Points(p.U)
	if p.SS != nil && p.SS.Proof != nil {
		w.Byte(1)
		w.Points(p.SS.Proof.Commit)
		w.Scalars(p.SS.Proof.Resp)
	} else {
		w.Byte(0)
	}
	w.Points(p.PR)
	w.Points(p.PC)
	w.Points(p.AU)
	w.Points(p.BR)
	w.Points(p.BC)
	w.Scalars(p.ZU)
	w.Point(p.AGamma)
	w.Points(p.AR)
	w.Points(p.AC)
	w.Scalar(p.ZC)
	w.Scalars(p.ZS)
	return w.Out()
}

// UnmarshalShufProof decodes a proof encoded by ShufProof.Marshal.
func UnmarshalShufProof(data []byte) (*ShufProof, error) {
	d := wirecodec.NewDec(data)
	p := &ShufProof{}
	var err error
	fail := func(field string, err error) (*ShufProof, error) {
		return nil, fmt.Errorf("nizk: unmarshal shufproof %s: %w", field, err)
	}
	if p.Gamma, err = d.Point(); err != nil {
		return fail("gamma", err)
	}
	if p.U, err = d.Points(); err != nil {
		return fail("u", err)
	}
	ssFlag, err := d.Byte()
	if err != nil {
		return fail("ss", err)
	}
	if ssFlag != 0 {
		ilmpp := &ILMPP{}
		if ilmpp.Commit, err = d.Points(); err != nil {
			return fail("ss.commit", err)
		}
		if ilmpp.Resp, err = d.Scalars(); err != nil {
			return fail("ss.resp", err)
		}
		p.SS = &simpleShuffle{Proof: ilmpp}
	}
	if p.PR, err = d.Points(); err != nil {
		return fail("pr", err)
	}
	if p.PC, err = d.Points(); err != nil {
		return fail("pc", err)
	}
	if p.AU, err = d.Points(); err != nil {
		return fail("au", err)
	}
	if p.BR, err = d.Points(); err != nil {
		return fail("br", err)
	}
	if p.BC, err = d.Points(); err != nil {
		return fail("bc", err)
	}
	if p.ZU, err = d.Scalars(); err != nil {
		return fail("zu", err)
	}
	if p.AGamma, err = d.Point(); err != nil {
		return fail("agamma", err)
	}
	if p.AR, err = d.Points(); err != nil {
		return fail("ar", err)
	}
	if p.AC, err = d.Points(); err != nil {
		return fail("ac", err)
	}
	if p.ZC, err = d.Scalar(); err != nil {
		return fail("zc", err)
	}
	if p.ZS, err = d.Scalars(); err != nil {
		return fail("zs", err)
	}
	if err := d.Done(); err != nil {
		return fail("trailer", err)
	}
	// No field of a well-formed shuffle proof is absent: a nil smuggled
	// through the presence flags would panic the verifier's point
	// arithmetic — reject it here, where the hostile bytes arrive.
	if p.Gamma == nil || p.AGamma == nil || p.ZC == nil {
		return fail("shape", fmt.Errorf("missing required field"))
	}
	for name, ps := range map[string][][]*ecc.Point{
		"u": {p.U}, "pr": {p.PR}, "pc": {p.PC}, "au": {p.AU},
		"br": {p.BR}, "bc": {p.BC}, "ar": {p.AR}, "ac": {p.AC},
	} {
		if err := requirePoints(ps[0]); err != nil {
			return fail(name, err)
		}
	}
	if err := requireScalars(p.ZU); err != nil {
		return fail("zu", err)
	}
	if err := requireScalars(p.ZS); err != nil {
		return fail("zs", err)
	}
	if p.SS != nil {
		if err := requirePoints(p.SS.Proof.Commit); err != nil {
			return fail("ss.commit", err)
		}
		if err := requireScalars(p.SS.Proof.Resp); err != nil {
			return fail("ss.resp", err)
		}
	}
	return p, nil
}

// requirePoints rejects nil elements smuggled through presence flags.
func requirePoints(ps []*ecc.Point) error {
	for i, p := range ps {
		if p == nil {
			return fmt.Errorf("nil point at %d", i)
		}
	}
	return nil
}

// requireScalars rejects nil elements smuggled through presence flags.
func requireScalars(ss []*ecc.Scalar) error {
	for i, s := range ss {
		if s == nil {
			return fmt.Errorf("nil scalar at %d", i)
		}
	}
	return nil
}

// Marshal encodes the re-encryption proof for transport.
func (p *ReEncProof) Marshal() []byte {
	var w wirecodec.Enc
	w.Points(p.CommitKey)
	w.Points(p.CommitR)
	w.Points(p.CommitC)
	w.Scalars(p.RespX)
	w.Scalars(p.RespR)
	return w.Out()
}

// UnmarshalReEncProof decodes a proof encoded by ReEncProof.Marshal.
func UnmarshalReEncProof(data []byte) (*ReEncProof, error) {
	d := wirecodec.NewDec(data)
	p := &ReEncProof{}
	var err error
	fail := func(field string, err error) (*ReEncProof, error) {
		return nil, fmt.Errorf("nizk: unmarshal reencproof %s: %w", field, err)
	}
	if p.CommitKey, err = d.Points(); err != nil {
		return fail("commit-key", err)
	}
	if p.CommitR, err = d.Points(); err != nil {
		return fail("commit-r", err)
	}
	if p.CommitC, err = d.Points(); err != nil {
		return fail("commit-c", err)
	}
	if p.RespX, err = d.Scalars(); err != nil {
		return fail("resp-x", err)
	}
	if p.RespR, err = d.Scalars(); err != nil {
		return fail("resp-r", err)
	}
	if err := d.Done(); err != nil {
		return fail("trailer", err)
	}
	// Every component of a well-formed re-encryption proof is present
	// (the exit layer uses the identity point, not nil) — reject nils
	// before they reach the verifier's arithmetic.
	for name, ps := range map[string][]*ecc.Point{
		"commit-key": p.CommitKey, "commit-r": p.CommitR, "commit-c": p.CommitC,
	} {
		if err := requirePoints(ps); err != nil {
			return fail(name, err)
		}
	}
	if err := requireScalars(p.RespX); err != nil {
		return fail("resp-x", err)
	}
	if err := requireScalars(p.RespR); err != nil {
		return fail("resp-r", err)
	}
	return p, nil
}
