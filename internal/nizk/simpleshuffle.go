package nizk

import (
	"fmt"
	"io"

	"atom/internal/ecc"
)

// simpleShuffle is Neff's simple k-shuffle: given public X_i = g^{x_i},
// U_i = g^{d_i}, and Γ = g^c, the prover shows that {d_i} = {c·x_{π(i)}}
// for some permutation π, without revealing π or c.
//
// It works by the Schwartz–Zippel polynomial identity: for a Fiat–Shamir
// challenge t, {d_i/c} = {x_i} as multisets exactly when (with
// overwhelming probability over t)
//
//	Π (d_i − c·t) = c^k · Π (x_i − t).
//
// Both sides are products of discrete logs of publicly computable
// elements — (U_i/Γ^t) has exponent d_i − ct, (X_i/g^t) has exponent
// x_i − t, and Γ has exponent c — so the identity reduces to one ILMPP
// instance over vectors of length 2k:
//
//	X-side: [X_1/g^t, …, X_k/g^t, Γ, …, Γ]   product: Π(x_i − t)·c^k
//	Y-side: [U_1/Γ^t, …, U_k/Γ^t, g, …, g]   product: Π(d_i − ct)·1
type simpleShuffle struct {
	Proof *ILMPP
}

// proveSimpleShuffle proves {d_i} = {c·x_{π(i)}}. The caller must have
// absorbed X_i, U_i, and Γ into tr. xs and ds are the prover's secret
// exponents (xs may be public challenges — the prover just needs to know
// them), c is the secret multiplier.
func proveSimpleShuffle(tr *Transcript, xs, ds []*ecc.Scalar, c *ecc.Scalar, Xs, Us []*ecc.Point, Gamma *ecc.Point, rnd io.Reader) (*simpleShuffle, error) {
	k := len(xs)
	if k == 0 || len(ds) != k || len(Xs) != k || len(Us) != k {
		return nil, fmt.Errorf("nizk: simple shuffle: mismatched lengths")
	}
	t := tr.Challenge("simple-shuffle-t")

	gT := ecc.BaseMul(t)    // g^t
	gammaT := Gamma.Mul(t)  // Γ^t = g^{ct}
	ct := c.Mul(t)          // c·t
	one := ecc.NewScalar(1) // exponent of g
	g := ecc.Generator()

	exX := make([]*ecc.Scalar, 0, 2*k)
	exY := make([]*ecc.Scalar, 0, 2*k)
	ptX := make([]*ecc.Point, 0, 2*k)
	ptY := make([]*ecc.Point, 0, 2*k)
	for i := 0; i < k; i++ {
		exX = append(exX, xs[i].Sub(t))
		ptX = append(ptX, Xs[i].Sub(gT))
		exY = append(exY, ds[i].Sub(ct))
		ptY = append(ptY, Us[i].Sub(gammaT))
	}
	for i := 0; i < k; i++ {
		exX = append(exX, c)
		ptX = append(ptX, Gamma)
		exY = append(exY, one)
		ptY = append(ptY, g)
	}
	ilmpp, err := proveILMPP(tr, exX, exY, ptX, ptY, rnd)
	if err != nil {
		return nil, err
	}
	return &simpleShuffle{Proof: ilmpp}, nil
}

// verifySimpleShuffle checks the simple k-shuffle relation between Xs, Us
// and Γ. The caller must have absorbed the same statement into tr as
// during proving.
func verifySimpleShuffle(tr *Transcript, Xs, Us []*ecc.Point, Gamma *ecc.Point, proof *simpleShuffle) error {
	if proof == nil {
		return fmt.Errorf("%w: nil simple-shuffle proof", ErrVerify)
	}
	k := len(Xs)
	if len(Us) != k || k == 0 {
		return fmt.Errorf("%w: malformed simple-shuffle statement", ErrVerify)
	}
	t := tr.Challenge("simple-shuffle-t")
	gT := ecc.BaseMul(t)
	gammaT := Gamma.Mul(t)
	g := ecc.Generator()

	ptX := make([]*ecc.Point, 0, 2*k)
	ptY := make([]*ecc.Point, 0, 2*k)
	for i := 0; i < k; i++ {
		ptX = append(ptX, Xs[i].Sub(gT))
		ptY = append(ptY, Us[i].Sub(gammaT))
	}
	for i := 0; i < k; i++ {
		ptX = append(ptX, Gamma)
		ptY = append(ptY, g)
	}
	return verifyILMPP(tr, ptX, ptY, proof.Proof)
}
