package nizk

import (
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// ReEncProof proves that a server applied elgamal.ReEnc correctly
// (paper §2.3 ReEncProof, cf. Chaum–Pedersen [20]). For each vector
// component, with the server's public key Xs = g^{xs}, next-group key X'
// (possibly ⊥), input (R, C, Y) and output (R', C', Y'), the statement
// after the deterministic Y-normalization (Y ← R, R ← 1 on first touch,
// which the verifier recomputes) is:
//
//	Xs   = g^{xs}
//	R'/R = g^{r'}                       (omitted when X' = ⊥)
//	C'/C = Y^{-xs} · X'^{r'}            (X'^{r'} term omitted when X' = ⊥)
//
// proved with a generalized Schnorr sigma protocol over the two secrets
// (xs, r') sharing a single Fiat–Shamir challenge across all components.
type ReEncProof struct {
	// Per component: commitments for the three equations.
	CommitKey []*ecc.Point // g^{w_x}
	CommitR   []*ecc.Point // g^{w_r} (nil entries when next key is ⊥)
	CommitC   []*ecc.Point // Y^{-w_x} · X'^{w_r}
	RespX     []*ecc.Scalar
	RespR     []*ecc.Scalar
}

// normalizeY recomputes the deterministic first-touch transformation the
// prover applied: if Y was ⊥ on input, ReEnc moved R into Y and reset R.
func normalizeY(ct *elgamal.Ciphertext) (r, y *ecc.Point) {
	if ct.Y == nil {
		return ecc.Identity(), ct.R
	}
	return ct.R, ct.Y
}

func reencTranscript(serverPK, nextPK *ecc.Point, in, out elgamal.Vector) *Transcript {
	tr := NewTranscript("reencproof")
	tr.AppendPoint("server-pk", serverPK)
	if nextPK != nil {
		tr.AppendPoint("next-pk", nextPK)
	} else {
		tr.AppendBytes("next-pk", []byte("bottom"))
	}
	tr.AppendBytes("in", in.Marshal())
	tr.AppendBytes("out", out.Marshal())
	return tr
}

// ProveReEnc builds a ReEncProof. sk is the effective secret the server
// used (its key, or λ·share in threshold mode — the caller publishes the
// matching effective public key), rs is the per-component fresh
// randomness returned by elgamal.ReEncVector, and nextPK is the next
// group's key or nil for the exit layer.
func ProveReEnc(sk *ecc.Scalar, serverPK, nextPK *ecc.Point, in, out elgamal.Vector, rs []*ecc.Scalar, rnd io.Reader) (*ReEncProof, error) {
	if len(in) != len(out) || len(in) != len(rs) {
		return nil, fmt.Errorf("nizk: provereenc: mismatched lengths %d/%d/%d", len(in), len(out), len(rs))
	}
	tr := reencTranscript(serverPK, nextPK, in, out)
	n := len(in)
	proof := &ReEncProof{
		CommitKey: make([]*ecc.Point, n),
		CommitR:   make([]*ecc.Point, n),
		CommitC:   make([]*ecc.Point, n),
		RespX:     make([]*ecc.Scalar, n),
		RespR:     make([]*ecc.Scalar, n),
	}
	// One interleaved draw keeps the randomness stream identical to the
	// historical per-component wx, wr, wx, wr… order for seeded readers.
	ws, err := ecc.RandomScalars(rnd, 2*n)
	if err != nil {
		return nil, fmt.Errorf("nizk: provereenc: %w", err)
	}
	wx := make([]*ecc.Scalar, n)
	wr := make([]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		wx[i], wr[i] = ws[2*i], ws[2*i+1]
	}
	// The fixed-base halves batch through the fused comb pipelines; only
	// the Y^{-w_x} term is variable-base (every Y differs) and stays
	// per-component.
	copy(proof.CommitKey, ecc.BaseMulBatch(wx))
	var pkWr []*ecc.Point
	if nextPK != nil {
		copy(proof.CommitR, ecc.BaseMulBatch(wr))
		pkWr = ecc.MulBatch(nextPK, wr)
	}
	for i := 0; i < n; i++ {
		_, y := normalizeY(in[i])
		commitC := y.Mul(wx[i].Neg())
		if nextPK != nil {
			commitC = commitC.Add(pkWr[i])
		} else {
			proof.CommitR[i] = ecc.Identity()
		}
		proof.CommitC[i] = commitC
	}
	tr.AppendPoints("commit-key", proof.CommitKey)
	tr.AppendPoints("commit-r", proof.CommitR)
	tr.AppendPoints("commit-c", proof.CommitC)
	gamma := tr.Challenge("gamma")
	for i := 0; i < n; i++ {
		proof.RespX[i] = wx[i].Add(gamma.Mul(sk))
		proof.RespR[i] = wr[i].Add(gamma.Mul(rs[i]))
	}
	return proof, nil
}

// VerifyReEnc checks a ReEncProof for the transformation in → out under
// the server's public key and the next group's key (nil for exit).
func VerifyReEnc(serverPK, nextPK *ecc.Point, in, out elgamal.Vector, proof *ReEncProof) error {
	if proof == nil {
		return fmt.Errorf("%w: nil ReEncProof", ErrVerify)
	}
	n := len(in)
	if len(out) != n || len(proof.CommitKey) != n || len(proof.CommitR) != n ||
		len(proof.CommitC) != n || len(proof.RespX) != n || len(proof.RespR) != n {
		return fmt.Errorf("%w: malformed ReEncProof", ErrVerify)
	}
	tr := reencTranscript(serverPK, nextPK, in, out)
	tr.AppendPoints("commit-key", proof.CommitKey)
	tr.AppendPoints("commit-r", proof.CommitR)
	tr.AppendPoints("commit-c", proof.CommitC)
	gamma := tr.Challenge("gamma")

	// Hoist the per-proof constants and batch the fixed-base halves —
	// g^{zx} and g^{zr} run through the fused generator comb, X'^{zr}
	// through the next key's cached comb — before the per-component
	// walk. Check order (and every error string) is unchanged, so
	// attribution on a bad component is identical to the serial path.
	pkGamma := serverPK.Mul(gamma)
	gZx := ecc.BaseMulBatch(proof.RespX)
	var gZr, pkZr []*ecc.Point
	if nextPK != nil {
		gZr = ecc.BaseMulBatch(proof.RespR)
		pkZr = ecc.MulBatch(nextPK, proof.RespR)
	}
	for i := 0; i < n; i++ {
		rIn, y := normalizeY(in[i])
		// Structural checks: Y' must carry the normalized Y forward.
		if out[i].Y == nil || !out[i].Y.Equal(y) {
			return fmt.Errorf("%w: ReEnc output %d lost the Y slot", ErrVerify, i)
		}
		// Equation 1: g^{zx} = CommitKey · Xs^γ.
		if !gZx[i].Equal(proof.CommitKey[i].Add(pkGamma)) {
			return fmt.Errorf("%w: ReEncProof key equation, component %d", ErrVerify, i)
		}
		if nextPK != nil {
			// Equation 2: g^{zr} = CommitR · (R'/R)^γ.
			dR := out[i].R.Sub(rIn)
			if !gZr[i].Equal(proof.CommitR[i].Add(dR.Mul(gamma))) {
				return fmt.Errorf("%w: ReEncProof randomness equation, component %d", ErrVerify, i)
			}
		} else if !out[i].R.Equal(rIn) {
			return fmt.Errorf("%w: exit-layer ReEnc must not change R, component %d", ErrVerify, i)
		}
		// Equation 3: Y^{-zx} · X'^{zr} = CommitC · (C'/C)^γ.
		lhs := y.Mul(proof.RespX[i].Neg())
		if nextPK != nil {
			lhs = lhs.Add(pkZr[i])
		}
		dC := out[i].C.Sub(in[i].C)
		rhs := proof.CommitC[i].Add(dC.Mul(gamma))
		if !lhs.Equal(rhs) {
			return fmt.Errorf("%w: ReEncProof ciphertext equation, component %d", ErrVerify, i)
		}
	}
	return nil
}
