package nizk

import (
	"fmt"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/parallel"
)

// VerifyReEncBatch verifies a batch of ReEncProofs — one per vector,
// all under the same server key and next-group key, exactly the shape
// one group member produces for one sub-batch of a mixing iteration —
// with a single random-linear-combination check (small-exponent
// batching à la Bellare–Garay–Rabin): every Chaum–Pedersen equation of
// every proof is multiplied by an independent fresh random scalar and
// the results are summed, so one point comparison vouches for the whole
// batch. If any equation of any proof is violated the combined sum is
// nonzero except with probability ~2⁻²⁵⁶, in which case the batch is
// re-verified proof by proof to attribute the failure to the lowest
// offending vector — a batched rejection is therefore byte-for-byte the
// error serial verification would have produced.
//
// Structural requirements (Y-slot continuity, the exit layer leaving R
// untouched) are checked exactly per component, never randomized. The
// accumulation fans over the pool's workers (nil pool = serial).
func VerifyReEncBatch(serverPK, nextPK *ecc.Point, ins, outs []elgamal.Vector, proofs []*ReEncProof, pool *parallel.Pool) error {
	k := len(ins)
	if len(outs) != k || len(proofs) != k {
		return fmt.Errorf("%w: reenc batch sizes %d/%d/%d", ErrVerify, k, len(outs), len(proofs))
	}
	if k == 0 {
		return nil
	}

	// Per-proof partial accumulators: a point sum plus folded exponents
	// for the three fixed bases (g, serverPK, nextPK), which collapse k
	// batches' worth of fixed-base multiplications into three.
	type partial struct {
		acc       *ecc.Point
		baseExp   *ecc.Scalar
		serverExp *ecc.Scalar
		nextExp   *ecc.Scalar
	}
	parts, err := parallel.Map(pool, k, func(pi int) (partial, error) {
		in, out, proof := ins[pi], outs[pi], proofs[pi]
		n := len(in)
		if proof == nil {
			return partial{}, fmt.Errorf("%w: nil ReEncProof, vector %d", ErrVerify, pi)
		}
		if len(out) != n || len(proof.CommitKey) != n || len(proof.CommitR) != n ||
			len(proof.CommitC) != n || len(proof.RespX) != n || len(proof.RespR) != n {
			return partial{}, fmt.Errorf("%w: malformed ReEncProof, vector %d", ErrVerify, pi)
		}
		tr := reencTranscript(serverPK, nextPK, in, out)
		tr.AppendPoints("commit-key", proof.CommitKey)
		tr.AppendPoints("commit-r", proof.CommitR)
		tr.AppendPoints("commit-c", proof.CommitC)
		gamma := tr.Challenge("gamma")

		p := partial{baseExp: ecc.NewScalar(0), serverExp: ecc.NewScalar(0), nextExp: ecc.NewScalar(0)}
		// Every variable-base term of the combination lands in one
		// multi-scalar multiplication per vector instead of its own
		// generic exponentiation.
		ks := make([]*ecc.Scalar, 0, 6*n)
		ps := make([]*ecc.Point, 0, 6*n)
		for i := 0; i < n; i++ {
			rIn, y := normalizeY(in[i])
			if out[i].Y == nil || !out[i].Y.Equal(y) {
				return partial{}, fmt.Errorf("%w: ReEnc output %d lost the Y slot, vector %d", ErrVerify, i, pi)
			}
			if nextPK == nil && !out[i].R.Equal(rIn) {
				return partial{}, fmt.Errorf("%w: exit-layer ReEnc must not change R, component %d, vector %d", ErrVerify, i, pi)
			}
			// Equation 1 × ρ1: g^{zx} − CommitKey − Xs^γ = 0.
			rho1, err := ecc.RandomScalar(nil)
			if err != nil {
				return partial{}, fmt.Errorf("nizk: batch verify: %w", err)
			}
			p.baseExp = p.baseExp.Add(rho1.Mul(proof.RespX[i]))
			p.serverExp = p.serverExp.Sub(rho1.Mul(gamma))
			ks = append(ks, rho1.Neg())
			ps = append(ps, proof.CommitKey[i])
			if nextPK != nil {
				// Equation 2 × ρ2: g^{zr} − CommitR − (R'/R)^γ = 0.
				rho2, err := ecc.RandomScalar(nil)
				if err != nil {
					return partial{}, fmt.Errorf("nizk: batch verify: %w", err)
				}
				p.baseExp = p.baseExp.Add(rho2.Mul(proof.RespR[i]))
				dR := out[i].R.Sub(rIn)
				ks = append(ks, rho2.Neg(), rho2.Mul(gamma).Neg())
				ps = append(ps, proof.CommitR[i], dR)
			}
			// Equation 3 × ρ3: Y^{−zx} [+ X'^{zr}] − CommitC − (C'/C)^γ = 0.
			rho3, err := ecc.RandomScalar(nil)
			if err != nil {
				return partial{}, fmt.Errorf("nizk: batch verify: %w", err)
			}
			ks = append(ks, rho3.Mul(proof.RespX[i]).Neg())
			ps = append(ps, y)
			if nextPK != nil {
				p.nextExp = p.nextExp.Add(rho3.Mul(proof.RespR[i]))
			}
			dC := out[i].C.Sub(in[i].C)
			ks = append(ks, rho3.Neg(), rho3.Mul(gamma).Neg())
			ps = append(ps, proof.CommitC[i], dC)
		}
		p.acc = ecc.MultiScalarMul(ks, ps)
		return p, nil
	})
	if err != nil {
		return err
	}

	acc := ecc.Identity()
	baseExp, serverExp, nextExp := ecc.NewScalar(0), ecc.NewScalar(0), ecc.NewScalar(0)
	for _, p := range parts {
		acc = acc.Add(p.acc)
		baseExp = baseExp.Add(p.baseExp)
		serverExp = serverExp.Add(p.serverExp)
		nextExp = nextExp.Add(p.nextExp)
	}
	acc = acc.Add(ecc.BaseMul(baseExp)).Add(serverPK.Mul(serverExp))
	if nextPK != nil {
		acc = acc.Add(nextPK.Mul(nextExp))
	}
	if acc.IsIdentity() {
		return nil
	}

	// The combination is nonzero, so at least one proof is bad: find the
	// lowest offender serially for a deterministic, attributable error.
	for pi := range proofs {
		if err := VerifyReEnc(serverPK, nextPK, ins[pi], outs[pi], proofs[pi]); err != nil {
			return fmt.Errorf("vector %d: %w", pi, err)
		}
	}
	return fmt.Errorf("%w: batched ReEncProof combination nonzero", ErrVerify)
}
