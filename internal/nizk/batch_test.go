package nizk

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"strings"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/parallel"
)

func reencBatchFixture(t *testing.T, k int, exit bool) (kp *elgamal.KeyPair, nextPK *ecc.Point, ins, outs []elgamal.Vector, proofs []*ReEncProof) {
	t.Helper()
	kp, err := elgamal.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !exit {
		next, err := elgamal.KeyGen(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		nextPK = next.PK
	}
	ins = make([]elgamal.Vector, k)
	outs = make([]elgamal.Vector, k)
	proofs = make([]*ReEncProof, k)
	for i := range ins {
		m, err := ecc.EmbedChunk(fmt.Appendf(nil, "reenc batch %d", i))
		if err != nil {
			t.Fatal(err)
		}
		ct, _, err := elgamal.Encrypt(kp.PK, m, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		ins[i] = elgamal.Vector{ct}
		out, rs, err := elgamal.ReEncVector(kp.SK, nextPK, ins[i], rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
		if proofs[i], err = ProveReEnc(kp.SK, kp.PK, nextPK, ins[i], out, rs, rand.Reader); err != nil {
			t.Fatal(err)
		}
	}
	return kp, nextPK, ins, outs, proofs
}

func TestVerifyReEncBatchAccepts(t *testing.T) {
	for _, exit := range []bool{false, true} {
		kp, nextPK, ins, outs, proofs := reencBatchFixture(t, 17, exit)
		for _, workers := range []int{1, 4} {
			pool := parallel.New(context.Background(), workers)
			if err := VerifyReEncBatch(kp.PK, nextPK, ins, outs, proofs, pool); err != nil {
				t.Fatalf("exit=%v workers=%d: valid batch rejected: %v", exit, workers, err)
			}
		}
	}
	// Empty batches are trivially valid.
	if err := VerifyReEncBatch(nil, nil, nil, nil, nil, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
}

// TestVerifyReEncBatchRejectsTampering: a single corrupted output or
// proof anywhere in the batch must be caught, attributed to the right
// vector, and identical across worker counts — the pooled, batched
// path can never swallow a rejection.
func TestVerifyReEncBatchRejectsTampering(t *testing.T) {
	kp, nextPK, ins, outs, proofs := reencBatchFixture(t, 11, false)

	// Corrupt vector 6's output ciphertext.
	evil := make([]elgamal.Vector, len(outs))
	copy(evil, outs)
	bad := outs[6].Clone()
	bad[0].C = bad[0].C.Add(ecc.Generator())
	evil[6] = bad
	for _, workers := range []int{1, 4} {
		pool := parallel.New(context.Background(), workers)
		err := VerifyReEncBatch(kp.PK, nextPK, ins, evil, proofs, pool)
		if !errors.Is(err, ErrVerify) {
			t.Fatalf("workers=%d: tampered output accepted: %v", workers, err)
		}
		if !strings.Contains(err.Error(), "vector 6") {
			t.Fatalf("workers=%d: failure not attributed to vector 6: %v", workers, err)
		}
	}

	// Corrupt vector 3's proof response instead.
	evilProofs := make([]*ReEncProof, len(proofs))
	copy(evilProofs, proofs)
	forged := *proofs[3]
	forged.RespX = append([]*ecc.Scalar(nil), proofs[3].RespX...)
	forged.RespX[0] = forged.RespX[0].Add(ecc.NewScalar(1))
	evilProofs[3] = &forged
	err := VerifyReEncBatch(kp.PK, nextPK, ins, outs, evilProofs, parallel.New(nil, 4))
	if !errors.Is(err, ErrVerify) || !strings.Contains(err.Error(), "vector 3") {
		t.Fatalf("forged proof: %v", err)
	}

	// Nil and malformed proofs are structural failures.
	evilProofs[3] = nil
	if err := VerifyReEncBatch(kp.PK, nextPK, ins, outs, evilProofs, nil); !errors.Is(err, ErrVerify) {
		t.Fatalf("nil proof accepted: %v", err)
	}
}

// TestVerifyReEncBatchExitStructural: the exit layer's exact (never
// randomized) structural check must still fire inside the batch path.
func TestVerifyReEncBatchExitStructural(t *testing.T) {
	kp, _, ins, outs, proofs := reencBatchFixture(t, 5, true)
	evil := make([]elgamal.Vector, len(outs))
	copy(evil, outs)
	bad := outs[2].Clone()
	bad[0].R = bad[0].R.Add(ecc.Generator())
	evil[2] = bad
	err := VerifyReEncBatch(kp.PK, nil, ins, evil, proofs, parallel.New(nil, 4))
	if !errors.Is(err, ErrVerify) || !strings.Contains(err.Error(), "vector 2") {
		t.Fatalf("exit-layer R tampering: %v", err)
	}
}

// TestShuffleParMatchesSerial: the pool-parallel prover fed the same
// randomness stream must emit a proof the serial verifier accepts, and
// the parallel verifier must agree with the serial one in both
// directions.
func TestShuffleParMatchesSerial(t *testing.T) {
	kp, err := elgamal.KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]elgamal.Vector, 40)
	for i := range in {
		m, err := ecc.EmbedChunk(fmt.Appendf(nil, "shuffle par %d", i))
		if err != nil {
			t.Fatal(err)
		}
		ct, _, err := elgamal.Encrypt(kp.PK, m, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		in[i] = elgamal.Vector{ct}
	}
	out, perm, rands, err := elgamal.ShuffleBatch(kp.PK, in, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.New(context.Background(), 8)
	proof, err := ProveShufflePar(kp.PK, in, out, perm, rands, rand.Reader, pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyShuffle(kp.PK, in, out, proof); err != nil {
		t.Fatalf("serial verify of parallel proof: %v", err)
	}
	if err := VerifyShufflePar(kp.PK, in, out, proof, pool); err != nil {
		t.Fatalf("parallel verify: %v", err)
	}

	// A tampered batch must be rejected by the parallel verifier with
	// ErrVerify, same as the serial one.
	evil := make([]elgamal.Vector, len(out))
	copy(evil, out)
	bad := out[9].Clone()
	bad[0].C = bad[0].C.Add(ecc.Generator())
	evil[9] = bad
	if err := VerifyShufflePar(kp.PK, in, evil, proof, pool); !errors.Is(err, ErrVerify) {
		t.Fatalf("parallel verify accepted tampered batch: %v", err)
	}
}
