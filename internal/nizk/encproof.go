package nizk

import (
	"errors"
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// ErrVerify is returned by every Verify function on a proof that does not
// check out. Callers treat it as evidence of misbehavior (paper §4.3:
// "abort the protocol if any server reports failure").
var ErrVerify = errors.New("nizk: proof verification failed")

// EncProof proves knowledge of the randomness (and hence the plaintext)
// of a user-submitted ElGamal ciphertext vector. It is the NIZK of
// Appendix A: for each component, pi = (g^s, u) with
// t = H(c ‖ g^s ‖ X ‖ gid) and u = s + t·r; the verifier checks
// g^u = g^s · R^t.
//
// Binding the group id (gid) into the challenge prevents a malicious user
// from resubmitting an honest user's ciphertext-and-proof at a different
// entry group (§3), and binding the ciphertext prevents proof reuse on a
// rerandomized copy.
type EncProof struct {
	Commit []*ecc.Point  // g^s per component
	Resp   []*ecc.Scalar // u = s + t·r per component
}

func encTranscript(pk *ecc.Point, v elgamal.Vector, gid uint64) *Transcript {
	tr := NewTranscript("encproof")
	tr.AppendPoint("pk", pk)
	tr.AppendUint64("gid", gid)
	tr.AppendBytes("ct", v.Marshal())
	return tr
}

// ProveEnc builds an EncProof for the vector v encrypted under pk with
// per-component randomness rs, destined for entry group gid.
func ProveEnc(pk *ecc.Point, v elgamal.Vector, rs []*ecc.Scalar, gid uint64, rnd io.Reader) (*EncProof, error) {
	if len(v) != len(rs) {
		return nil, fmt.Errorf("nizk: %d ciphertext components but %d randomizers", len(v), len(rs))
	}
	tr := encTranscript(pk, v, gid)
	proof := &EncProof{
		Commit: make([]*ecc.Point, len(v)),
		Resp:   make([]*ecc.Scalar, len(v)),
	}
	ws := make([]*ecc.Scalar, len(v))
	for i := range v {
		w, err := ecc.RandomScalar(rnd)
		if err != nil {
			return nil, fmt.Errorf("nizk: proveenc: %w", err)
		}
		ws[i] = w
		proof.Commit[i] = ecc.BaseMul(w)
	}
	tr.AppendPoints("commit", proof.Commit)
	t := tr.Challenge("t")
	for i := range v {
		proof.Resp[i] = ws[i].Add(t.Mul(rs[i]))
	}
	return proof, nil
}

// VerifyEnc checks an EncProof against the ciphertext vector, public key,
// and entry group id.
func VerifyEnc(pk *ecc.Point, v elgamal.Vector, gid uint64, proof *EncProof) error {
	if proof == nil || len(proof.Commit) != len(v) || len(proof.Resp) != len(v) {
		return fmt.Errorf("%w: malformed EncProof", ErrVerify)
	}
	tr := encTranscript(pk, v, gid)
	tr.AppendPoints("commit", proof.Commit)
	t := tr.Challenge("t")
	for i, ct := range v {
		// g^u ?= commit · R^t
		lhs := ecc.BaseMul(proof.Resp[i])
		rhs := proof.Commit[i].Add(ct.R.Mul(t))
		if !lhs.Equal(rhs) {
			return fmt.Errorf("%w: EncProof component %d", ErrVerify, i)
		}
	}
	return nil
}
