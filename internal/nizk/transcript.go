// Package nizk implements the three non-interactive zero-knowledge proof
// systems Atom relies on (paper §2.3, §4.3, Appendix A):
//
//   - EncProof: a Schnorr-style proof of knowledge of the plaintext behind
//     a user-submitted ElGamal ciphertext, bound to the entry group's id so
//     that proofs cannot be replayed at a different group.
//   - ReEncProof: a Chaum–Pedersen-style proof that a server's
//     decrypt-and-reencrypt step (Appendix A ReEnc) was performed
//     correctly with respect to the server's published public key.
//   - ShufProof: a Neff-style verifiable shuffle (the paper uses Neff [59])
//     proving that an output batch is a rerandomized permutation of an
//     input batch, built from an iterated logarithmic multiplication proof
//     (ILMPP) and a simple k-shuffle, tied to the ciphertexts by two
//     generalized Schnorr arguments.
//
// All proofs are made non-interactive with the Fiat–Shamir transform over
// a SHA3-256 transcript; every challenge binds the complete statement, so
// the proofs are non-malleable in the random-oracle model, as §2.3
// requires.
package nizk

import (
	"crypto/sha3"
	"encoding/binary"

	"atom/internal/ecc"
)

// Transcript accumulates the statement and prover messages of a sigma
// protocol and derives Fiat–Shamir challenges. It is a thin domain-
// separated wrapper around SHA3-256 in a chained construction: each
// challenge re-keys the transcript so later challenges depend on earlier
// ones.
type Transcript struct {
	state []byte
}

// NewTranscript creates a transcript under the given domain-separation
// label.
func NewTranscript(domain string) *Transcript {
	h := sha3.New256()
	h.Write([]byte("atom/nizk/v1/"))
	h.Write([]byte(domain))
	return &Transcript{state: h.Sum(nil)}
}

// absorb mixes a labeled byte string into the transcript state.
func (t *Transcript) absorb(label string, data []byte) {
	h := sha3.New256()
	h.Write(t.state)
	var ln [8]byte
	binary.BigEndian.PutUint32(ln[:4], uint32(len(label)))
	binary.BigEndian.PutUint32(ln[4:], uint32(len(data)))
	h.Write(ln[:])
	h.Write([]byte(label))
	h.Write(data)
	t.state = h.Sum(nil)
}

// AppendBytes absorbs raw bytes under a label.
func (t *Transcript) AppendBytes(label string, data []byte) { t.absorb(label, data) }

// AppendPoint absorbs a curve point.
func (t *Transcript) AppendPoint(label string, p *ecc.Point) { t.absorb(label, p.Bytes()) }

// AppendPoints absorbs a slice of curve points.
func (t *Transcript) AppendPoints(label string, ps []*ecc.Point) {
	var ln [4]byte
	binary.BigEndian.PutUint32(ln[:], uint32(len(ps)))
	t.absorb(label+"/len", ln[:])
	for _, p := range ps {
		t.absorb(label, p.Bytes())
	}
}

// AppendScalar absorbs a scalar.
func (t *Transcript) AppendScalar(label string, s *ecc.Scalar) { t.absorb(label, s.Bytes()) }

// AppendUint64 absorbs an integer.
func (t *Transcript) AppendUint64(label string, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	t.absorb(label, b[:])
}

// Challenge derives a scalar challenge bound to everything absorbed so
// far, and re-keys the transcript so subsequent challenges differ.
func (t *Transcript) Challenge(label string) *ecc.Scalar {
	h := sha3.New256()
	h.Write(t.state)
	h.Write([]byte("challenge/"))
	h.Write([]byte(label))
	digest := h.Sum(nil)
	t.state = append(t.state[:0:0], digest...) // re-key with fresh copy
	return ecc.ScalarFromBytes(digest)
}

// ChallengeVector derives n independent scalar challenges.
func (t *Transcript) ChallengeVector(label string, n int) []*ecc.Scalar {
	out := make([]*ecc.Scalar, n)
	for i := range out {
		h := sha3.New256()
		h.Write(t.state)
		h.Write([]byte("challenge-vec/"))
		h.Write([]byte(label))
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		h.Write(idx[:])
		out[i] = ecc.ScalarFromBytes(h.Sum(nil))
	}
	// Re-key once for the whole vector.
	t.absorb("challenge-vec-done/"+label, []byte{byte(n)})
	return out
}
