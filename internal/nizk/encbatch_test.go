package nizk

import (
	"crypto/rand"
	"errors"
	"fmt"
	"strings"
	"testing"

	"atom/internal/ecc"
	"atom/internal/elgamal"
)

// encBatch builds k honest submissions spread across nkeys entry groups
// (each with its own key), the shape a multiplexed frontend collects.
func encBatch(t testing.TB, k, nkeys int) ([]*ecc.Point, []elgamal.Vector, []uint64, []*EncProof) {
	t.Helper()
	keys := make([]*elgamal.KeyPair, nkeys)
	for i := range keys {
		keys[i] = mustKey(t)
	}
	pks := make([]*ecc.Point, k)
	vecs := make([]elgamal.Vector, k)
	gids := make([]uint64, k)
	proofs := make([]*EncProof, k)
	for i := 0; i < k; i++ {
		g := i % nkeys
		pks[i] = keys[g].PK
		gids[i] = uint64(g)
		v, rs := encryptMsg(t, pks[i], fmt.Sprintf("batch message %d", i), 2)
		proof, err := ProveEnc(pks[i], v, rs, gids[i], rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		vecs[i] = v
		proofs[i] = proof
	}
	return pks, vecs, gids, proofs
}

func TestEncBatchRoundTrip(t *testing.T) {
	pks, vecs, gids, proofs := encBatch(t, 8, 1)
	if err := VerifyEncBatch(pks, vecs, gids, proofs); err != nil {
		t.Fatal(err)
	}
}

func TestEncBatchSpansEntryGroups(t *testing.T) {
	// The group key feeds only the transcript, never the verification
	// equation, so one combined check covers mixed-group batches.
	pks, vecs, gids, proofs := encBatch(t, 9, 3)
	if err := VerifyEncBatch(pks, vecs, gids, proofs); err != nil {
		t.Fatal(err)
	}
}

func TestEncBatchEmpty(t *testing.T) {
	if err := VerifyEncBatch(nil, nil, nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncBatchMismatchedLengths(t *testing.T) {
	pks, vecs, gids, proofs := encBatch(t, 3, 1)
	if err := VerifyEncBatch(pks[:2], vecs, gids, proofs); !errors.Is(err, ErrVerify) {
		t.Fatalf("mismatched sizes: got %v", err)
	}
}

func TestEncBatchAttributesTamperedProof(t *testing.T) {
	pks, vecs, gids, proofs := encBatch(t, 6, 2)
	proofs[4].Resp[0] = proofs[4].Resp[0].Add(ecc.NewScalar(1))
	err := VerifyEncBatch(pks, vecs, gids, proofs)
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("tampered batch: got %v", err)
	}
	// Attribution must name the offender and carry the serial error text.
	serial := VerifyEnc(pks[4], vecs[4], gids[4], proofs[4])
	want := fmt.Sprintf("submission 4: %v", serial)
	if err.Error() != want {
		t.Fatalf("attribution mismatch:\n got %q\nwant %q", err.Error(), want)
	}
}

func TestEncBatchAttributesLowestOffender(t *testing.T) {
	pks, vecs, gids, proofs := encBatch(t, 5, 1)
	proofs[1].Resp[0] = proofs[1].Resp[0].Add(ecc.NewScalar(1))
	proofs[3].Resp[0] = proofs[3].Resp[0].Add(ecc.NewScalar(1))
	err := VerifyEncBatch(pks, vecs, gids, proofs)
	if err == nil || !strings.HasPrefix(err.Error(), "submission 1:") {
		t.Fatalf("want lowest offender (submission 1), got %v", err)
	}
}

func TestEncBatchRejectsWrongGroupBinding(t *testing.T) {
	// Replaying an honest submission at a different entry group shifts its
	// transcript challenge; the combined check must catch it.
	pks, vecs, gids, proofs := encBatch(t, 4, 1)
	gids[2] = 99
	if err := VerifyEncBatch(pks, vecs, gids, proofs); !errors.Is(err, ErrVerify) {
		t.Fatalf("wrong gid: got %v", err)
	}
}

func TestEncBatchRejectsNilProof(t *testing.T) {
	pks, vecs, gids, proofs := encBatch(t, 3, 1)
	proofs[1] = nil
	if err := VerifyEncBatch(pks, vecs, gids, proofs); !errors.Is(err, ErrVerify) {
		t.Fatalf("nil proof: got %v", err)
	}
}

func BenchmarkEncVerify64(b *testing.B) {
	pks, vecs, gids, proofs := encBatch(b, 64, 1)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i := range vecs {
			if err := VerifyEnc(pks[i], vecs[i], gids[i], proofs[i]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkEncVerifyBatch64(b *testing.B) {
	pks, vecs, gids, proofs := encBatch(b, 64, 1)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if err := VerifyEncBatch(pks, vecs, gids, proofs); err != nil {
			b.Fatal(err)
		}
	}
}
