package nizk

import (
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/parallel"
)

// ShufProof is the full verifiable-shuffle argument (paper §2.3
// ShufProof; Neff [59]). It proves that an output batch of ElGamal
// vectors is a rerandomized permutation of an input batch under public
// key pk, i.e. out[i] = Rerandomize(pk, in[π(i)]) componentwise for a
// secret permutation π and secret randomness.
//
// Construction (Fiat–Shamir challenges e_1..e_n bound to the statement):
//
//  1. The prover commits to the permutation applied to the challenges,
//     blinded by a secret multiplier c: Γ = g^c, U_i = g^{c·e_{π(i)}}.
//  2. A simple k-shuffle proves {dlog U_i} = {c·e_i} as multisets — U is
//     a c-scaled permutation of the challenge vector.
//  3. For each vector component j the prover publishes
//     P_R[j] = Π_i R'_{i,j}^{d_i},  P_C[j] = Π_i C'_{i,j}^{d_i}
//     (d_i = dlog U_i) and proves with a generalized Schnorr argument
//     (a) knowledge of a single exponent vector d opening U, P_R, P_C;
//     (b) knowledge of (c, S'_j) with P_R[j] = E_R[j]^c·g^{S'_j} and
//     P_C[j] = E_C[j]^c·pk^{S'_j}, where E_R[j] = Π_i R_{i,j}^{e_i}
//     and E_C[j] = Π_i C_{i,j}^{e_i} are publicly computable.
//
// Together these force Π_i (R'_{i,j})^{e_{π(i)}} = Π_i R_{i,j}^{e_i}·g^σ_j
// and the matching C-equation with pk^{σ_j}, which by Schwartz–Zippel
// over the random e_i holds only if the output is a rerandomized
// permutation of the input. Sharing the same U (hence the same π) across
// components ties all components of a message to one permutation.
type ShufProof struct {
	Gamma *ecc.Point
	U     []*ecc.Point
	SS    *simpleShuffle

	PR, PC []*ecc.Point // per component

	// Proof (a): d opens U and the P products.
	AU     []*ecc.Point // g^{w_i}
	BR, BC []*ecc.Point // per component: Π R'^{w}, Π C'^{w}
	ZU     []*ecc.Scalar

	// Proof (b): (c, S') ties P to E.
	AGamma *ecc.Point
	AR, AC []*ecc.Point // per component
	ZC     *ecc.Scalar
	ZS     []*ecc.Scalar // per component
}

// multiExp computes Π points[i]^{scalars[i]} as one Pippenger
// multi-scalar multiplication.
func multiExp(points []*ecc.Point, scalars []*ecc.Scalar) *ecc.Point {
	return ecc.MultiScalarMul(scalars, points)
}

// multiExpPar is multiExp with the multi-scalar multiplication split
// into per-worker sub-MSMs whose partial products fold at the end. A
// nil pool (or a short input) computes as one MSM. Sub-MSMs below a few
// hundred points lose more to per-window bucket overhead than they gain
// from parallelism, so the worker count is capped by the input size.
// The only possible error is the pool's context expiring
// mid-computation, which must surface — a half-folded product is not a
// result.
func multiExpPar(points []*ecc.Point, scalars []*ecc.Scalar, pool *parallel.Pool) (*ecc.Point, error) {
	n := len(points)
	w := pool.Workers()
	if w > n/256 {
		w = n / 256
	}
	if w <= 1 {
		return ecc.MultiScalarMul(scalars, points), nil
	}
	parts, err := parallel.Map(pool, w, func(k int) (*ecc.Point, error) {
		lo, hi := k*n/w, (k+1)*n/w
		return ecc.MultiScalarMul(scalars[lo:hi], points[lo:hi]), nil
	})
	if err != nil {
		return nil, err
	}
	acc := ecc.Identity()
	for _, p := range parts {
		acc = acc.Add(p)
	}
	return acc, nil
}

// baseMulsPar fills out[i] = g^{exps[i]} with per-worker comb batch
// evaluations (one shared inversion per chunk instead of one generic
// exponentiation per element). As with multiExpPar the only error is a
// context cancellation, which leaves out partially nil and must not be
// ignored.
func baseMulsPar(exps []*ecc.Scalar, out []*ecc.Point, pool *parallel.Pool) error {
	n := len(exps)
	w := pool.Workers()
	if w > (n+255)/256 {
		w = (n + 255) / 256
	}
	if w < 1 {
		w = 1
	}
	return pool.Each(w, func(c int) error {
		lo, hi := c*n/w, (c+1)*n/w
		if lo < hi {
			copy(out[lo:hi], ecc.BaseMulBatch(exps[lo:hi]))
		}
		return nil
	})
}

// batchShape validates that in and out are non-empty rectangular batches
// of the same shape with all Y slots ⊥, returning (n, L).
func batchShape(in, out []elgamal.Vector) (int, int, error) {
	n := len(in)
	if n == 0 || len(out) != n {
		return 0, 0, fmt.Errorf("nizk: shuffle: batch sizes %d/%d", n, len(out))
	}
	l := len(in[0])
	for i := 0; i < n; i++ {
		if len(in[i]) != l || len(out[i]) != l {
			return 0, 0, fmt.Errorf("nizk: shuffle: ragged batch at row %d", i)
		}
		for j := 0; j < l; j++ {
			if in[i][j].Y != nil || out[i][j].Y != nil {
				return 0, 0, fmt.Errorf("nizk: shuffle: Y ≠ ⊥ at (%d,%d)", i, j)
			}
		}
	}
	return n, l, nil
}

func shuffleTranscript(pk *ecc.Point, in, out []elgamal.Vector) *Transcript {
	tr := NewTranscript("shufproof")
	tr.AppendPoint("pk", pk)
	tr.AppendUint64("n", uint64(len(in)))
	for _, v := range in {
		tr.AppendBytes("in", v.Marshal())
	}
	for _, v := range out {
		tr.AppendBytes("out", v.Marshal())
	}
	return tr
}

// ProveShuffle builds a ShufProof that out[i] = Rerandomize(pk, in[perm[i]])
// with randomness rands[i][j] (as returned by elgamal.ShuffleBatch).
func ProveShuffle(pk *ecc.Point, in, out []elgamal.Vector, perm []int, rands [][]*ecc.Scalar, rnd io.Reader) (*ShufProof, error) {
	return ProveShufflePar(pk, in, out, perm, rands, rnd, nil)
}

// ProveShufflePar is ProveShuffle with the heavy point arithmetic —
// the U and gE exponentiations, the per-component multi-exponentiation
// products, and the Schnorr commitments — fanned over the pool's
// workers (nil pool = serial). All randomness is drawn from rnd on the
// calling goroutine in the same order as the serial prover, and the
// transcript is driven in the same order, so the proof distribution is
// identical at every worker count. The simple-shuffle subargument
// (ILMPP) remains the serial chain the paper calls "inherently
// sequential" (§6.1), which is what makes NIZK scaling sub-linear in
// Figure 7.
func ProveShufflePar(pk *ecc.Point, in, out []elgamal.Vector, perm []int, rands [][]*ecc.Scalar, rnd io.Reader, pool *parallel.Pool) (*ShufProof, error) {
	n, l, err := batchShape(in, out)
	if err != nil {
		return nil, err
	}
	if len(perm) != n || len(rands) != n {
		return nil, fmt.Errorf("nizk: shuffle: witness lengths %d/%d, want %d", len(perm), len(rands), n)
	}

	tr := shuffleTranscript(pk, in, out)
	e := tr.ChallengeVector("e", n)

	// Step 1: permutation commitment.
	c, err := ecc.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("nizk: shuffle: %w", err)
	}
	d := make([]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		d[i] = c.Mul(e[perm[i]])
	}
	U := make([]*ecc.Point, n)
	if err := baseMulsPar(d, U, pool); err != nil {
		return nil, err
	}
	Gamma := ecc.BaseMul(c)
	tr.AppendPoint("gamma", Gamma)
	tr.AppendPoints("u", U)

	// Step 2: simple k-shuffle over the challenge exponents.
	gE := make([]*ecc.Point, n)
	if err := baseMulsPar(e, gE, pool); err != nil {
		return nil, err
	}
	var ss *simpleShuffle
	if err := pool.Do(func() error {
		var serr error
		ss, serr = proveSimpleShuffle(tr, e, d, c, gE, U, Gamma, rnd)
		return serr
	}); err != nil {
		return nil, err
	}

	// Step 3: per-component products and the two Schnorr arguments.
	proof := &ShufProof{
		Gamma: Gamma, U: U, SS: ss,
		PR: make([]*ecc.Point, l), PC: make([]*ecc.Point, l),
		AU: make([]*ecc.Point, n),
		BR: make([]*ecc.Point, l), BC: make([]*ecc.Point, l),
		ZU: make([]*ecc.Scalar, n),
		AR: make([]*ecc.Point, l), AC: make([]*ecc.Point, l),
		ZS: make([]*ecc.Scalar, l),
	}
	outR := make([][]*ecc.Point, l) // column-major views of the output batch
	outC := make([][]*ecc.Point, l)
	for j := 0; j < l; j++ {
		outR[j] = make([]*ecc.Point, n)
		outC[j] = make([]*ecc.Point, n)
		for i := 0; i < n; i++ {
			outR[j][i] = out[i][j].R
			outC[j][i] = out[i][j].C
		}
		if proof.PR[j], err = multiExpPar(outR[j], d, pool); err != nil {
			return nil, err
		}
		if proof.PC[j], err = multiExpPar(outC[j], d, pool); err != nil {
			return nil, err
		}
	}
	tr.AppendPoints("pr", proof.PR)
	tr.AppendPoints("pc", proof.PC)

	// Proof (a).
	w := make([]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		if w[i], err = ecc.RandomScalar(rnd); err != nil {
			return nil, fmt.Errorf("nizk: shuffle: %w", err)
		}
	}
	if err := baseMulsPar(w, proof.AU, pool); err != nil {
		return nil, err
	}
	for j := 0; j < l; j++ {
		if proof.BR[j], err = multiExpPar(outR[j], w, pool); err != nil {
			return nil, err
		}
		if proof.BC[j], err = multiExpPar(outC[j], w, pool); err != nil {
			return nil, err
		}
	}
	tr.AppendPoints("au", proof.AU)
	tr.AppendPoints("br", proof.BR)
	tr.AppendPoints("bc", proof.BC)
	gammaA := tr.Challenge("gamma-a")
	for i := 0; i < n; i++ {
		proof.ZU[i] = w[i].Add(gammaA.Mul(d[i]))
	}

	// Proof (b). S'_j = c·Σ_i s_{i,j}·e_{perm[i]}.
	sPrime := make([]*ecc.Scalar, l)
	for j := 0; j < l; j++ {
		acc := ecc.NewScalar(0)
		for i := 0; i < n; i++ {
			acc = acc.Add(rands[i][j].Mul(e[perm[i]]))
		}
		sPrime[j] = c.Mul(acc)
	}
	wc, err := ecc.RandomScalar(rnd)
	if err != nil {
		return nil, fmt.Errorf("nizk: shuffle: %w", err)
	}
	proof.AGamma = ecc.BaseMul(wc)
	ws := make([]*ecc.Scalar, l)
	inR := make([][]*ecc.Point, l)
	inC := make([][]*ecc.Point, l)
	ER := make([]*ecc.Point, l)
	EC := make([]*ecc.Point, l)
	for j := 0; j < l; j++ {
		inR[j] = make([]*ecc.Point, n)
		inC[j] = make([]*ecc.Point, n)
		for i := 0; i < n; i++ {
			inR[j][i] = in[i][j].R
			inC[j][i] = in[i][j].C
		}
		if ER[j], err = multiExpPar(inR[j], e, pool); err != nil {
			return nil, err
		}
		if EC[j], err = multiExpPar(inC[j], e, pool); err != nil {
			return nil, err
		}
		if ws[j], err = ecc.RandomScalar(rnd); err != nil {
			return nil, fmt.Errorf("nizk: shuffle: %w", err)
		}
		proof.AR[j] = ER[j].Mul(wc).Add(ecc.BaseMul(ws[j]))
		proof.AC[j] = EC[j].Mul(wc).Add(pk.Mul(ws[j]))
	}
	tr.AppendPoint("a-gamma", proof.AGamma)
	tr.AppendPoints("a-r", proof.AR)
	tr.AppendPoints("a-c", proof.AC)
	gammaB := tr.Challenge("gamma-b")
	proof.ZC = wc.Add(gammaB.Mul(c))
	for j := 0; j < l; j++ {
		proof.ZS[j] = ws[j].Add(gammaB.Mul(sPrime[j]))
	}
	return proof, nil
}

// VerifyShuffle checks that out is a rerandomized permutation of in under
// pk.
func VerifyShuffle(pk *ecc.Point, in, out []elgamal.Vector, proof *ShufProof) error {
	return VerifyShufflePar(pk, in, out, proof, nil)
}

// VerifyShufflePar is VerifyShuffle with the per-element checks and the
// multi-exponentiations fanned over the pool's workers (nil pool =
// serial). Rejections are deterministic across worker counts: the
// lowest failing element's error is the one returned.
func VerifyShufflePar(pk *ecc.Point, in, out []elgamal.Vector, proof *ShufProof, pool *parallel.Pool) error {
	n, l, err := batchShape(in, out)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrVerify, err)
	}
	if proof == nil || len(proof.U) != n || len(proof.ZU) != n || len(proof.AU) != n ||
		len(proof.PR) != l || len(proof.PC) != l || len(proof.BR) != l || len(proof.BC) != l ||
		len(proof.AR) != l || len(proof.AC) != l || len(proof.ZS) != l ||
		proof.Gamma == nil || proof.AGamma == nil || proof.ZC == nil {
		return fmt.Errorf("%w: malformed ShufProof", ErrVerify)
	}

	tr := shuffleTranscript(pk, in, out)
	e := tr.ChallengeVector("e", n)
	tr.AppendPoint("gamma", proof.Gamma)
	tr.AppendPoints("u", proof.U)

	gE := make([]*ecc.Point, n)
	if err := baseMulsPar(e, gE, pool); err != nil {
		return err
	}
	if err := pool.Do(func() error {
		return verifySimpleShuffle(tr, gE, proof.U, proof.Gamma, proof.SS)
	}); err != nil {
		if parallel.Canceled(err) {
			// The pool's context expired — not a proof failure.
			return err
		}
		return fmt.Errorf("%w: permutation commitment: %v", ErrVerify, err)
	}

	tr.AppendPoints("pr", proof.PR)
	tr.AppendPoints("pc", proof.PC)
	tr.AppendPoints("au", proof.AU)
	tr.AppendPoints("br", proof.BR)
	tr.AppendPoints("bc", proof.BC)
	gammaA := tr.Challenge("gamma-a")

	// Proof (a): g^{z_i} = AU_i · U_i^{γa}; Π R'^{z} = BR·PR^{γa}; same for C.
	outR := make([][]*ecc.Point, l)
	outC := make([][]*ecc.Point, l)
	for j := 0; j < l; j++ {
		outR[j] = make([]*ecc.Point, n)
		outC[j] = make([]*ecc.Point, n)
		for i := 0; i < n; i++ {
			outR[j][i] = out[i][j].R
			outC[j][i] = out[i][j].C
		}
	}
	// The n per-element equations g^{z_i} = AU_i·U_i^{γa} collapse into
	// one random-linear-combination check: with fresh random ρ_i,
	// g^{Σρ_i z_i} − Σρ_i·AU_i − γa·Σρ_i·U_i = O vouches for all of them
	// except with negligible probability. On a nonzero sum (or if
	// randomness fails) the per-element scan runs to attribute the lowest
	// offender with the same error the serial verifier produces.
	checkElems := func() error {
		return pool.Each(n, func(i int) error {
			if !ecc.BaseMul(proof.ZU[i]).Equal(proof.AU[i].Add(proof.U[i].Mul(gammaA))) {
				return fmt.Errorf("%w: shuffle proof (a), element %d", ErrVerify, i)
			}
			return nil
		})
	}
	zSum := ecc.NewScalar(0)
	ks := make([]*ecc.Scalar, 0, 2*n)
	ps := make([]*ecc.Point, 0, 2*n)
	batchedA := true
	for i := 0; i < n; i++ {
		rho, rerr := ecc.RandomScalar(nil)
		if rerr != nil {
			batchedA = false
			break
		}
		zSum = zSum.Add(rho.Mul(proof.ZU[i]))
		ks = append(ks, rho.Neg(), rho.Mul(gammaA).Neg())
		ps = append(ps, proof.AU[i], proof.U[i])
	}
	if !batchedA {
		if err := checkElems(); err != nil {
			return err
		}
	} else if !ecc.BaseMul(zSum).Add(ecc.MultiScalarMul(ks, ps)).IsIdentity() {
		// The combination is nonzero: scan per element to attribute the
		// lowest offender deterministically.
		if err := checkElems(); err != nil {
			return err
		}
		return fmt.Errorf("%w: batched shuffle proof (a) combination nonzero", ErrVerify)
	}
	for j := 0; j < l; j++ {
		zuR, err := multiExpPar(outR[j], proof.ZU, pool)
		if err != nil {
			return err
		}
		if !zuR.Equal(proof.BR[j].Add(proof.PR[j].Mul(gammaA))) {
			return fmt.Errorf("%w: shuffle proof (a) R-product, component %d", ErrVerify, j)
		}
		zuC, err := multiExpPar(outC[j], proof.ZU, pool)
		if err != nil {
			return err
		}
		if !zuC.Equal(proof.BC[j].Add(proof.PC[j].Mul(gammaA))) {
			return fmt.Errorf("%w: shuffle proof (a) C-product, component %d", ErrVerify, j)
		}
	}

	tr.AppendPoint("a-gamma", proof.AGamma)
	tr.AppendPoints("a-r", proof.AR)
	tr.AppendPoints("a-c", proof.AC)
	gammaB := tr.Challenge("gamma-b")

	// Proof (b): g^{zc} = AΓ·Γ^{γb}; E_R^{zc}·g^{zs} = AR·PR^{γb};
	// E_C^{zc}·pk^{zs} = AC·PC^{γb}.
	if !ecc.BaseMul(proof.ZC).Equal(proof.AGamma.Add(proof.Gamma.Mul(gammaB))) {
		return fmt.Errorf("%w: shuffle proof (b) key equation", ErrVerify)
	}
	for j := 0; j < l; j++ {
		inRj := make([]*ecc.Point, n)
		inCj := make([]*ecc.Point, n)
		for i := 0; i < n; i++ {
			inRj[i] = in[i][j].R
			inCj[i] = in[i][j].C
		}
		ER, err := multiExpPar(inRj, e, pool)
		if err != nil {
			return err
		}
		EC, err := multiExpPar(inCj, e, pool)
		if err != nil {
			return err
		}
		lhsR := ER.Mul(proof.ZC).Add(ecc.BaseMul(proof.ZS[j]))
		if !lhsR.Equal(proof.AR[j].Add(proof.PR[j].Mul(gammaB))) {
			return fmt.Errorf("%w: shuffle proof (b) R, component %d", ErrVerify, j)
		}
		lhsC := EC.Mul(proof.ZC).Add(pk.Mul(proof.ZS[j]))
		if !lhsC.Equal(proof.AC[j].Add(proof.PC[j].Mul(gammaB))) {
			return fmt.Errorf("%w: shuffle proof (b) C, component %d", ErrVerify, j)
		}
	}
	return nil
}
