package baseline

import (
	"crypto/rand"
	"testing"
	"time"

	"atom/internal/elgamal"
)

func TestRiposteAnchor(t *testing.T) {
	// The model must reproduce the published anchor: 669.2 min at 1M.
	got := RiposteLatency(1_000_000)
	want := time.Duration(669.2 * float64(time.Minute))
	if diff := got - want; diff > time.Second || diff < -time.Second {
		t.Errorf("RiposteLatency(1M) = %v, want %v", got, want)
	}
	// Superlinear growth: doubling messages costs more than 2×.
	r := float64(RiposteLatency(2_000_000)) / float64(got)
	if r <= 2.0 {
		t.Errorf("Riposte growth factor %.2f for 2× messages, want >2 (superlinear)", r)
	}
}

func TestVuvuzelaAnchorAndLinearity(t *testing.T) {
	got := VuvuzelaDialLatency(1_000_000)
	want := 30 * time.Second
	if got != want {
		t.Errorf("VuvuzelaDialLatency(1M) = %v, want %v", got, want)
	}
	if VuvuzelaDialLatency(2_000_000) != 2*want {
		t.Error("Vuvuzela model should be linear")
	}
	if AlpenhornDialLatency(1_000_000) != want {
		t.Error("Alpenhorn anchor mismatch")
	}
}

func TestScalingModelHorizontalVsVertical(t *testing.T) {
	vertical := ScalingModel{BaseLatency: time.Hour, Anchor: 1_000_000, Exponent: 1, Horizontal: false}
	horizontal := ScalingModel{BaseLatency: time.Hour, Anchor: 1_000_000, Exponent: 1, Horizontal: true}
	// Adding 8× servers leaves the vertical system unchanged but speeds
	// the horizontal one 8× — the core contrast of the paper.
	if vertical.Latency(1_000_000, 8) != time.Hour {
		t.Error("vertical system should ignore added servers")
	}
	if horizontal.Latency(1_000_000, 8) != time.Hour/8 {
		t.Error("horizontal system should speed up linearly")
	}
	if vertical.Latency(2_000_000, 1) != 2*time.Hour {
		t.Error("linear growth expected")
	}
}

func TestCentralMixnetRoundTrip(t *testing.T) {
	mx, err := NewCentralMixnet(3, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	msgs := []string{"one", "two", "three", "four", "five"}
	batch := make([]elgamal.Vector, len(msgs))
	for i, m := range msgs {
		vec, err := mx.Submit([]byte(m), rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = vec
	}
	out, err := mx.Run(batch, true, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(msgs) {
		t.Fatalf("mixnet returned %d messages, want %d", len(out), len(msgs))
	}
	got := map[string]bool{}
	for _, m := range out {
		got[string(m)] = true
	}
	for _, m := range msgs {
		if !got[m] {
			t.Errorf("message %q lost in the mix", m)
		}
	}
}

func TestCentralMixnetUnverifiedMode(t *testing.T) {
	mx, _ := NewCentralMixnet(2, rand.Reader)
	vec, err := mx.Submit([]byte("fast path"), rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	out, err := mx.Run([]elgamal.Vector{vec}, false, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || string(out[0]) != "fast path" {
		t.Fatalf("unverified run returned %q", out)
	}
}

func TestCentralMixnetEmptyAndErrors(t *testing.T) {
	if _, err := NewCentralMixnet(0, rand.Reader); err == nil {
		t.Fatal("0-server mixnet accepted")
	}
	mx, _ := NewCentralMixnet(1, rand.Reader)
	out, err := mx.Run(nil, true, rand.Reader)
	if err != nil || out != nil {
		t.Fatalf("empty batch: %v/%v", out, err)
	}
}
