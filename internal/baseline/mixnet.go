package baseline

import (
	"fmt"
	"io"

	"atom/internal/ecc"
	"atom/internal/elgamal"
	"atom/internal/nizk"
)

// CentralMixnet is a functional single-anytrust-group verifiable
// mix-net — the architecture of the centralized systems Atom is
// compared against (one fixed set of k servers through which EVERY
// message passes, cf. §1: "traditional anonymity systems only scale
// vertically"). Every server verifiably shuffles the entire batch, so
// per-server work is Ω(M) regardless of how many machines the operator
// adds — the contrast that motivates Atom.
//
// It is implemented with the same real cryptography as Atom's groups,
// making head-to-head microbenchmarks meaningful.
type CentralMixnet struct {
	keys    []*elgamal.KeyPair
	groupPK *ecc.Point
}

// NewCentralMixnet creates a k-server centralized mix-net.
func NewCentralMixnet(k int, rnd io.Reader) (*CentralMixnet, error) {
	if k < 1 {
		return nil, fmt.Errorf("baseline: mixnet needs at least one server")
	}
	mx := &CentralMixnet{}
	pks := make([]*ecc.Point, k)
	for i := 0; i < k; i++ {
		kp, err := elgamal.KeyGen(rnd)
		if err != nil {
			return nil, err
		}
		mx.keys = append(mx.keys, kp)
		pks[i] = kp.PK
	}
	mx.groupPK = elgamal.CombineKeys(pks...)
	return mx, nil
}

// PK returns the key users encrypt their messages to.
func (mx *CentralMixnet) PK() *ecc.Point { return mx.groupPK }

// Submit encrypts a message for the mix-net.
func (mx *CentralMixnet) Submit(msg []byte, rnd io.Reader) (elgamal.Vector, error) {
	pts, err := ecc.EmbedMessage(msg, ecc.PointsPerMessage(len(msg)))
	if err != nil {
		return nil, err
	}
	vec, _, err := elgamal.EncryptVector(mx.groupPK, pts, rnd)
	return vec, err
}

// Run verifiably shuffles the full batch through every server, then
// decrypts: the classical anytrust mix-net round. verified controls
// whether each shuffle carries (and checks) a Neff proof.
func (mx *CentralMixnet) Run(batch []elgamal.Vector, verified bool, rnd io.Reader) ([][]byte, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	cur := batch
	for i := range mx.keys {
		out, perm, rands, err := elgamal.ShuffleBatch(mx.groupPK, cur, rnd)
		if err != nil {
			return nil, fmt.Errorf("baseline: server %d shuffle: %w", i, err)
		}
		if verified {
			proof, err := nizk.ProveShuffle(mx.groupPK, cur, out, perm, rands, rnd)
			if err != nil {
				return nil, err
			}
			if err := nizk.VerifyShuffle(mx.groupPK, cur, out, proof); err != nil {
				return nil, fmt.Errorf("baseline: server %d cheated: %w", i, err)
			}
		}
		cur = out
	}
	// Chained threshold decryption: each server peels its layer via the
	// out-of-order ReEnc with ⊥.
	for _, kp := range mx.keys {
		for vi := range cur {
			out, _, err := elgamal.ReEncVector(kp.SK, nil, cur[vi], rnd)
			if err != nil {
				return nil, err
			}
			cur[vi] = out
		}
	}
	msgs := make([][]byte, len(cur))
	for i, vec := range cur {
		m, err := ecc.ExtractMessage(elgamal.PlaintextVector(vec))
		if err != nil {
			return nil, fmt.Errorf("baseline: output %d: %w", i, err)
		}
		msgs[i] = m
	}
	return msgs, nil
}
