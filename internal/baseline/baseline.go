// Package baseline provides the comparison systems of the paper's
// Table 12: Riposte, Vuvuzela, and Alpenhorn, plus a functional
// centralized anytrust mix-net that demonstrates — with real
// cryptography — why vertical-scaling designs lose to Atom as load
// grows.
//
// The three published systems are closed testbeds we cannot rerun, so
// their latencies are analytic cost models anchored to the paper's
// published measurements (Riposte: 669.2 minutes for one million
// messages on 3×c4.8xlarge; Vuvuzela/Alpenhorn: 0.5 minutes for one
// million dialing users) and extrapolated with each system's published
// asymptotic behavior. DESIGN.md records this substitution.
package baseline

import (
	"math"
	"time"
)

// RiposteLatency models Riposte's anonymous-microblogging latency for
// the given message count on the paper's 3×36-core configuration.
// Riposte's servers perform work quadratic in the database size for a
// round of M messages (§8: "Riposte requires each server to perform
// work quadratic in the number of messages"); with the paper's
// distributed-point-function split the per-round cost grows as M·√M.
// The curve is anchored at the published 669.2 min for M = 10⁶.
func RiposteLatency(messages int) time.Duration {
	const anchorM = 1e6
	const anchorMinutes = 669.2
	m := float64(messages)
	scale := (m * math.Sqrt(m)) / (anchorM * math.Sqrt(anchorM))
	return time.Duration(anchorMinutes * scale * float64(time.Minute))
}

// VuvuzelaDialLatency models Vuvuzela's dialing latency for the given
// user count on 3×36-core servers with 10 Gbps links: linear in users
// (its servers process each message a constant number of times),
// anchored at the published 0.5 min for 10⁶ users.
func VuvuzelaDialLatency(users int) time.Duration {
	const anchorU = 1e6
	const anchorMinutes = 0.5
	return time.Duration(anchorMinutes * float64(users) / anchorU * float64(time.Minute))
}

// AlpenhornDialLatency models Alpenhorn's dialing latency; the paper
// reports the same 0.5 min @ 10⁶ operating point as Vuvuzela.
func AlpenhornDialLatency(users int) time.Duration {
	return VuvuzelaDialLatency(users)
}

// VuvuzelaServerBandwidth is the published per-server bandwidth demand
// of Vuvuzela (§6.2: "Vuvuzela servers use 166 MB/sec"), against which
// the paper contrasts Atom's <1 MB/sec.
const VuvuzelaServerBandwidth = 166e6 // bytes/sec

// ScalingModel captures the vertical-vs-horizontal scaling contrast of
// §6.2's discussion: a centralized anytrust system's latency is
// unaffected by adding servers beyond its fixed anytrust set, while
// Atom's latency divides by the server count.
type ScalingModel struct {
	// BaseLatency is the system's latency at Anchor messages.
	BaseLatency time.Duration
	// Anchor is the message count BaseLatency refers to.
	Anchor int
	// Exponent is the latency growth exponent in the message count
	// (1 = linear, 1.5 = Riposte-like).
	Exponent float64
	// Horizontal reports whether adding servers reduces latency.
	Horizontal bool
}

// Latency extrapolates the model to a message count and server count
// (serverRatio is servers/anchor-servers; ignored for vertical systems).
func (sm ScalingModel) Latency(messages int, serverRatio float64) time.Duration {
	growth := math.Pow(float64(messages)/float64(sm.Anchor), sm.Exponent)
	l := float64(sm.BaseLatency) * growth
	if sm.Horizontal && serverRatio > 0 {
		l /= serverRatio
	}
	return time.Duration(l)
}
