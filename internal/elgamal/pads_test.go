package elgamal

import (
	"context"
	"crypto/rand"
	"testing"

	"atom/internal/ecc"
	"atom/internal/parallel"
)

// fillPool builds a pad pool for base and banks `n` pads drawn from a
// deterministic stream, so two pools filled with the same seed hold
// byte-identical pads.
func fillPool(t *testing.T, base *ecc.Point, n int, seed byte, pool *parallel.Pool) *PadPool {
	t.Helper()
	p := NewPadPool(base)
	if err := p.Fill(n, &streamReader{state: seed}, pool); err != nil {
		t.Fatal(err)
	}
	if p.Size() != n {
		t.Fatalf("filled pool holds %d pads, want %d", p.Size(), n)
	}
	return p
}

// TestPadPoolFillTakeStats: Fill tops up to target (idempotently), take
// consumes serially and the hit/miss counters account for every slot.
func TestPadPoolFillTakeStats(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := fillPool(t, kp.PK, 10, 5, nil)
	// Topping up to a smaller target is a no-op.
	if err := p.Fill(4, rand.Reader, nil); err != nil {
		t.Fatal(err)
	}
	if p.Size() != 10 {
		t.Fatalf("re-fill to smaller target changed size to %d", p.Size())
	}
	// Every pad must satisfy GK = g^k, BK = base^k.
	taken := p.take(3)
	if len(taken) != 3 {
		t.Fatalf("take(3) returned %d pads", len(taken))
	}
	for i, pad := range taken {
		if !pad.GK.Equal(ecc.BaseMul(pad.K)) || !pad.BK.Equal(kp.PK.Mul(pad.K)) {
			t.Fatalf("pad %d is not (k, g^k, pk^k)", i)
		}
	}
	// Overdraw: 7 left, ask for 9 → 7 hits, 2 misses.
	if got := len(p.take(9)); got != 7 {
		t.Fatalf("overdraw returned %d pads, want 7", got)
	}
	hits, misses := p.Stats()
	if hits != 10 || misses != 2 {
		t.Fatalf("stats hits=%d misses=%d, want 10/2", hits, misses)
	}
	if p.Size() != 0 {
		t.Fatalf("drained pool still holds %d pads", p.Size())
	}
}

// TestShuffleBatchPadsDeterministicAcrossWorkers: with identical pad
// banks and an identical randomness stream, the padded shuffle must
// produce byte-identical output at every worker count (the offline
// draw is serial; only the point arithmetic fans out), and the
// returned randomness must still open every output slot.
func TestShuffleBatchPadsDeterministicAcrossWorkers(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(t, kp.PK, 21)
	// Pads cover only part of the batch, so the run crosses the
	// pad→fresh boundary — the trickiest spot for determinism.
	refPool := fillPool(t, kp.PK, 9, 11, nil)
	ref, refPerm, refRands, err := ShuffleBatchPads(kp.PK, batch, &streamReader{state: 7}, nil, refPool)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		pool := parallel.New(context.Background(), workers)
		pads := fillPool(t, kp.PK, 9, 11, pool)
		out, perm, rands, err := ShuffleBatchPads(kp.PK, batch, &streamReader{state: 7}, pool, pads)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range perm {
			if perm[i] != refPerm[i] {
				t.Fatalf("workers=%d: permutation diverged at %d", workers, i)
			}
		}
		for i := range out {
			if !out[i].Equal(ref[i]) {
				t.Fatalf("workers=%d: output %d diverged", workers, i)
			}
			if !rands[i][0].Equal(refRands[i][0]) {
				t.Fatalf("workers=%d: randomness %d diverged", workers, i)
			}
			// Pad or fresh, the returned scalar opens the slot.
			want := RerandomizeWithRandomness(kp.PK, batch[perm[i]][0], rands[i][0])
			if !out[i][0].Equal(want) {
				t.Fatalf("workers=%d: randomness %d does not open output", workers, i)
			}
		}
		hits, misses := pads.Stats()
		if hits != 9 || misses != 21-9 {
			t.Fatalf("workers=%d: stats hits=%d misses=%d, want 9/12", workers, hits, misses)
		}
	}
}

// TestReEncBatchPadsDeterministicAcrossWorkers: the padded
// decrypt-and-reencrypt matches itself at every worker count, the
// returned randomness opens each slot via the online algebra, and the
// base-mismatch guard falls back to the fresh path.
func TestReEncBatchPadsDeterministicAcrossWorkers(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	next, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(t, kp.PK, 17)
	refPool := fillPool(t, next.PK, 6, 23, nil)
	ref, _, err := ReEncBatchPads(kp.SK, next.PK, batch, &streamReader{state: 9}, nil, refPool)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		pool := parallel.New(context.Background(), workers)
		pads := fillPool(t, next.PK, 6, 23, pool)
		out, rss, err := ReEncBatchPads(kp.SK, next.PK, batch, &streamReader{state: 9}, pool, pads)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if !out[i].Equal(ref[i]) {
				t.Fatalf("workers=%d: output %d diverged", workers, i)
			}
			want := ReEncWithRandomness(kp.SK, next.PK, batch[i][0].Clone(), rss[i][0])
			if !out[i][0].Equal(want) {
				t.Fatalf("workers=%d: randomness %d does not open output", workers, i)
			}
		}
		hits, misses := pads.Stats()
		if hits != 6 || misses != 17-6 {
			t.Fatalf("workers=%d: stats hits=%d misses=%d, want 6/11", workers, hits, misses)
		}
	}

	// A pool banked for the WRONG base must be ignored, not consumed:
	// the output still opens under the right key and the pool records
	// neither hits nor misses.
	wrong := fillPool(t, kp.PK, 6, 23, nil)
	out, rss, err := ReEncBatchPads(kp.SK, next.PK, batch, nil, nil, wrong)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		want := ReEncWithRandomness(kp.SK, next.PK, batch[i][0].Clone(), rss[i][0])
		if !out[i][0].Equal(want) {
			t.Fatalf("mismatched-base fallback: slot %d does not open", i)
		}
	}
	if hits, misses := wrong.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("mismatched-base pool was touched: hits=%d misses=%d", hits, misses)
	}
	if wrong.Size() != 6 {
		t.Fatalf("mismatched-base pool lost pads: %d left", wrong.Size())
	}

	// Exit layer (⊥ destination): pads must never be consumed.
	exitPads := fillPool(t, next.PK, 6, 23, nil)
	exitOut, _, err := ReEncBatchPads(kp.SK, nil, batch, nil, nil, exitPads)
	if err != nil {
		t.Fatal(err)
	}
	exitRef, _, err := ReEncBatch(kp.SK, nil, batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exitOut {
		if !exitOut[i].Equal(exitRef[i]) {
			t.Fatalf("exit-layer padded output %d diverged from plain path", i)
		}
	}
	if exitPads.Size() != 6 {
		t.Fatalf("exit layer consumed pads: %d left", exitPads.Size())
	}
}

// TestPadsRegistry: For keys pools by base, nil-safety contracts hold,
// and Stats aggregates across pools.
func TestPadsRegistry(t *testing.T) {
	var nilPads *Pads
	if nilPads.For(nil) != nil {
		t.Fatal("nil registry must hand out nil pools")
	}
	if st := nilPads.Stats(); st.Size != 0 || st.Hits != 0 || st.Misses != 0 {
		t.Fatal("nil registry stats must be zero")
	}
	kp1, _ := KeyGen(rand.Reader)
	kp2, _ := KeyGen(rand.Reader)
	s := NewPads()
	if s.For(nil) != nil {
		t.Fatal("nil base must yield a nil pool")
	}
	p1 := s.For(kp1.PK)
	if p1 != s.For(kp1.PK) {
		t.Fatal("same base must yield the same pool")
	}
	if p1 == s.For(kp2.PK) {
		t.Fatal("different bases must yield different pools")
	}
	if err := p1.Fill(4, rand.Reader, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.For(kp2.PK).Fill(3, rand.Reader, nil); err != nil {
		t.Fatal(err)
	}
	p1.take(5) // 4 hits, 1 miss
	st := s.Stats()
	if st.Size != 3 || st.Hits != 4 || st.Misses != 1 {
		t.Fatalf("aggregate stats = %+v, want size 3 hits 4 misses 1", st)
	}
}
