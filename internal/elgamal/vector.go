package elgamal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"atom/internal/ecc"
)

// Vector is the encryption of one user message: one Ciphertext per
// embedded curve point. All Atom operations apply componentwise.
type Vector []*Ciphertext

// Clone returns a deep copy of the vector.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	for i, ct := range v {
		out[i] = ct.Clone()
	}
	return out
}

// Equal reports componentwise equality.
func (v Vector) Equal(other Vector) bool {
	if len(v) != len(other) {
		return false
	}
	for i := range v {
		if !v[i].Equal(other[i]) {
			return false
		}
	}
	return true
}

// EncryptVector encrypts a message (as embedded points) under pk,
// returning the vector and the per-component randomness.
func EncryptVector(pk *ecc.Point, msg []*ecc.Point, rnd io.Reader) (Vector, []*ecc.Scalar, error) {
	v := make(Vector, len(msg))
	rs := make([]*ecc.Scalar, len(msg))
	for i, m := range msg {
		ct, r, err := Encrypt(pk, m, rnd)
		if err != nil {
			return nil, nil, err
		}
		v[i], rs[i] = ct, r
	}
	return v, rs, nil
}

// DecryptVector decrypts every component with sk.
func DecryptVector(sk *ecc.Scalar, v Vector) ([]*ecc.Point, error) {
	out := make([]*ecc.Point, len(v))
	for i, ct := range v {
		m, err := Decrypt(sk, ct)
		if err != nil {
			return nil, fmt.Errorf("component %d: %w", i, err)
		}
		out[i] = m
	}
	return out, nil
}

// RerandomizeVector re-blinds every component under pk, returning the
// fresh randomness for proof generation.
func RerandomizeVector(pk *ecc.Point, v Vector, rnd io.Reader) (Vector, []*ecc.Scalar, error) {
	out := make(Vector, len(v))
	rs := make([]*ecc.Scalar, len(v))
	for i, ct := range v {
		c, r, err := Rerandomize(pk, ct, rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("component %d: %w", i, err)
		}
		out[i], rs[i] = c, r
	}
	return out, rs, nil
}

// ReEncVector applies ReEnc to every component.
func ReEncVector(sk *ecc.Scalar, nextPK *ecc.Point, v Vector, rnd io.Reader) (Vector, []*ecc.Scalar, error) {
	out := make(Vector, len(v))
	rs := make([]*ecc.Scalar, len(v))
	for i, ct := range v {
		c, r, err := ReEnc(sk, nextPK, ct, rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("component %d: %w", i, err)
		}
		out[i], rs[i] = c, r
	}
	return out, rs, nil
}

// ClearYVector clears the Y slot of every component.
func ClearYVector(v Vector) Vector {
	out := make(Vector, len(v))
	for i, ct := range v {
		out[i] = ClearY(ct)
	}
	return out
}

// PlaintextVector extracts the message points from a fully-decrypted
// vector.
func PlaintextVector(v Vector) []*ecc.Point {
	out := make([]*ecc.Point, len(v))
	for i, ct := range v {
		out[i] = Plaintext(ct)
	}
	return out
}

// Marshal encodes the vector for transport: a uvarint component count,
// then per component 1 flag byte (bit0: Y present) followed by R, C[, Y]
// point encodings, each uvarint-length-prefixed. The varint prefixes
// make the format exact at any size — the previous single-byte prefixes
// silently truncated vectors of more than 255 components (and point
// encodings of more than 255 bytes), producing undecodable bytes.
func (v Vector) Marshal() []byte {
	var buf bytes.Buffer
	writeUvarint(&buf, uint64(len(v)))
	for _, ct := range v {
		var flag byte
		if ct.Y != nil {
			flag |= 1
		}
		buf.WriteByte(flag)
		writePoint(&buf, ct.R)
		writePoint(&buf, ct.C)
		if ct.Y != nil {
			writePoint(&buf, ct.Y)
		}
	}
	return buf.Bytes()
}

func writeUvarint(buf *bytes.Buffer, n uint64) {
	var tmp [binary.MaxVarintLen64]byte
	buf.Write(tmp[:binary.PutUvarint(tmp[:], n)])
}

func writePoint(buf *bytes.Buffer, p *ecc.Point) {
	b := p.Bytes()
	writeUvarint(buf, uint64(len(b)))
	buf.Write(b)
}

// UnmarshalVector decodes a vector encoded by Marshal.
func UnmarshalVector(data []byte) (Vector, error) {
	rd := bytes.NewReader(data)
	n, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, fmt.Errorf("elgamal: unmarshal: %w", err)
	}
	// Every component occupies at least 3 bytes (flag + two non-empty
	// length-prefixed points), so a count beyond remaining/3 is garbage —
	// reject it before allocating.
	if n > uint64(rd.Len())/3 {
		return nil, fmt.Errorf("elgamal: unmarshal: count %d exceeds %d remaining bytes", n, rd.Len())
	}
	v := make(Vector, n)
	for i := range v {
		flag, err := rd.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("elgamal: unmarshal component %d: %w", i, err)
		}
		ct := &Ciphertext{}
		if ct.R, err = readPoint(rd); err != nil {
			return nil, fmt.Errorf("elgamal: unmarshal R[%d]: %w", i, err)
		}
		if ct.C, err = readPoint(rd); err != nil {
			return nil, fmt.Errorf("elgamal: unmarshal C[%d]: %w", i, err)
		}
		if flag&1 != 0 {
			if ct.Y, err = readPoint(rd); err != nil {
				return nil, fmt.Errorf("elgamal: unmarshal Y[%d]: %w", i, err)
			}
		}
		v[i] = ct
	}
	if rd.Len() != 0 {
		return nil, fmt.Errorf("elgamal: unmarshal: %d trailing bytes", rd.Len())
	}
	return v, nil
}

func readPoint(rd *bytes.Reader) (*ecc.Point, error) {
	ln, err := binary.ReadUvarint(rd)
	if err != nil {
		return nil, err
	}
	if ln > uint64(rd.Len()) {
		return nil, fmt.Errorf("point length %d exceeds %d remaining bytes", ln, rd.Len())
	}
	b := make([]byte, ln)
	if _, err := io.ReadFull(rd, b); err != nil {
		return nil, err
	}
	return ecc.PointFromBytes(b)
}

// Fingerprint returns a canonical byte encoding suitable for hashing and
// duplicate detection (it is simply Marshal, named for intent).
func (v Vector) Fingerprint() []byte { return v.Marshal() }
