package elgamal

import (
	"bytes"
	"crypto/rand"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"atom/internal/ecc"
	"atom/internal/parallel"
)

// Pad is one precomputed re-encryption unit for a fixed mixing base:
// a scalar k with GK = g^k and BK = base^k. Adding GK to a ciphertext's
// R slot and BK to its C slot applies exactly the rerandomization that
// fresh randomness k would — the classic mixnet offline/online split
// that turns two online exponentiations into two point additions.
type Pad struct {
	K  *ecc.Scalar
	GK *ecc.Point // g^k
	BK *ecc.Point // base^k
}

// PadPool banks precomputed pads (and permutation entropy) for one
// mixing base — a group public key. One pool serves both operations
// that rerandomize toward that key: shuffles inside the group (base =
// the group's own key) and re-encryptions toward it from upstream
// groups. Fill runs offline on the parallel pool through the fused
// fixed-base comb pipelines; Take consumes serially, so the online
// path stays deterministic at any worker count. Exhaustion is not an
// error — consumers fall back to the fresh-randomness path for any
// slots past the bank.
type PadPool struct {
	base *ecc.Point

	mu   sync.Mutex
	pads []Pad
	ent  []byte

	hits   atomic.Uint64 // pad-served slots
	misses atomic.Uint64 // slots that fell back to fresh randomness
}

// NewPadPool creates an empty pool for the given base and warms the
// base's fixed-base comb table, so both offline fills and any online
// fallback go through the fused evaluation.
func NewPadPool(base *ecc.Point) *PadPool {
	ecc.WarmBase(base)
	return &PadPool{base: base.Clone()}
}

// Base returns the mixing base the pool precomputes for.
func (p *PadPool) Base() *ecc.Point { return p.base }

// Size reports the number of banked pads.
func (p *PadPool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pads)
}

// Stats returns the pool's lifetime hit/miss counters: slots served
// from the bank vs slots that fell back to fresh randomness.
func (p *PadPool) Stats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Fill tops the bank up to target pads, drawing scalars from rnd
// serially and fanning the g^k / base^k evaluations over the worker
// pool (nil = serial). It also banks 8 bytes of permutation entropy
// per pad, so shuffle permutations during the online phase come from
// precomputed randomness too. Filling past target is a no-op; a
// canceled pool context aborts with the pool's error.
func (p *PadPool) Fill(target int, rnd io.Reader, pool *parallel.Pool) error {
	p.mu.Lock()
	need := target - len(p.pads)
	p.mu.Unlock()
	if need <= 0 {
		return nil
	}
	ks, err := ecc.RandomScalars(rnd, need)
	if err != nil {
		return fmt.Errorf("elgamal: pad fill: %w", err)
	}
	gks := make([]*ecc.Point, need)
	bks := make([]*ecc.Point, need)
	chunks := pool.Workers()
	if chunks > (need+255)/256 {
		chunks = (need + 255) / 256
	}
	if chunks < 1 {
		chunks = 1
	}
	if err := pool.Each(chunks, func(c int) error {
		lo, hi := c*need/chunks, (c+1)*need/chunks
		if lo == hi {
			return nil
		}
		copy(gks[lo:hi], ecc.BaseMulBatch(ks[lo:hi]))
		copy(bks[lo:hi], ecc.MulBatch(p.base, ks[lo:hi]))
		return nil
	}); err != nil {
		return err
	}
	ent := make([]byte, 8*need)
	if _, err := io.ReadFull(orRand(rnd), ent); err != nil {
		return fmt.Errorf("elgamal: pad entropy: %w", err)
	}
	p.mu.Lock()
	for i := 0; i < need; i++ {
		p.pads = append(p.pads, Pad{K: ks[i], GK: gks[i], BK: bks[i]})
	}
	p.ent = append(p.ent, ent...)
	p.mu.Unlock()
	return nil
}

// take removes up to n pads from the bank, recording the served slots
// as hits and the shortfall as misses. It must be called serially with
// respect to the consuming batch (the shuffle/re-enc entry points do),
// so output stays deterministic at any worker count.
func (p *PadPool) take(n int) []Pad {
	if p == nil || n <= 0 {
		return nil
	}
	p.mu.Lock()
	m := n
	if m > len(p.pads) {
		m = len(p.pads)
	}
	out := p.pads[:m:m]
	p.pads = p.pads[m:]
	p.mu.Unlock()
	p.hits.Add(uint64(m))
	p.misses.Add(uint64(n - m))
	return out
}

// entropy hands back up to n banked random bytes for permutation
// sampling; the caller chains them in front of its live reader.
func (p *PadPool) entropy(n int) []byte {
	if p == nil || n <= 0 {
		return nil
	}
	p.mu.Lock()
	m := n
	if m > len(p.ent) {
		m = len(p.ent)
	}
	out := p.ent[:m:m]
	p.ent = p.ent[m:]
	p.mu.Unlock()
	return out
}

// entropyReader serves the banked bytes first and falls back to rnd —
// a mid-permutation exhaustion just continues on live randomness.
func (p *PadPool) entropyReader(n int, rnd io.Reader) io.Reader {
	banked := p.entropy(n)
	if len(banked) == 0 {
		return rnd
	}
	return io.MultiReader(bytes.NewReader(banked), orRand(rnd))
}

func orRand(rnd io.Reader) io.Reader {
	if rnd == nil {
		return rand.Reader
	}
	return rnd
}

// Pads is a registry of pad pools keyed by mixing base, one pool per
// group public key — the deployment-scoped offline precompute store.
type Pads struct {
	mu    sync.Mutex
	pools map[string]*PadPool
}

// NewPads returns an empty registry.
func NewPads() *Pads { return &Pads{pools: make(map[string]*PadPool)} }

// For returns the pool for the given base, creating it on first use.
// A nil registry or nil base returns nil (callers treat a nil pool as
// "no pads": every slot falls back to fresh randomness).
func (s *Pads) For(base *ecc.Point) *PadPool {
	if s == nil || base == nil {
		return nil
	}
	key := string(base.Bytes())
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[key]
	if !ok {
		p = NewPadPool(base)
		s.pools[key] = p
	}
	return p
}

// PadStats aggregates the registry's pools for metrics exposition.
type PadStats struct {
	Size   int    // pads currently banked across all pools
	Hits   uint64 // lifetime pad-served slots
	Misses uint64 // lifetime fresh-randomness fallbacks
}

// Stats sums the registry's pools. Safe on a nil registry.
func (s *Pads) Stats() PadStats {
	var st PadStats
	if s == nil {
		return st
	}
	s.mu.Lock()
	pools := make([]*PadPool, 0, len(s.pools))
	for _, p := range s.pools {
		pools = append(pools, p)
	}
	s.mu.Unlock()
	for _, p := range pools {
		st.Size += p.Size()
		h, m := p.Stats()
		st.Hits += h
		st.Misses += m
	}
	return st
}
