// Package elgamal implements the rerandomizable variant of ElGamal
// encryption that Atom is built on (paper §2.3 and Appendix A).
//
// A ciphertext is a triple (R, C, Y) of group elements. Y is the extra
// element Atom adds to plain ElGamal: it holds the encryption randomness
// for the *current* group while R accumulates randomness for the *next*
// group, which is what lets a chain of servers decrypt "out of order" —
// peeling the current group's layer while simultaneously re-encrypting to
// a group whose key was never seen by the sender.
//
// Lifecycle of a ciphertext inside one anytrust group (Appendix A):
//
//	arrive:  (R, C, ⊥)      C = m·X^r, R = g^r, encrypted under this
//	                        group's key X only
//	shuffle: rerandomized under X (requires Y = ⊥)
//	ReEnc by server 1: Y ← R, R ← 1, then C ← C/Y^x₁ · X'^r'₁, R ← g^r'₁
//	ReEnc by server s: C ← C/Y^xₛ · X'^r'ₛ, R ← R·g^r'ₛ
//	depart:  last server sets Y ← ⊥; now C = m·X'^{Σr'} and R = g^{Σr'},
//	         i.e. a fresh ciphertext under the next group's key X'.
//
// Messages longer than one embedded point are encrypted component-wise as
// a Vector of triples (the paper: "when the operations … are applied to a
// vector of ciphertexts C, we apply the operation to each component").
package elgamal

import (
	"errors"
	"fmt"
	"io"

	"atom/internal/ecc"
)

// ErrY is returned when an operation that requires Y = ⊥ (Dec,
// Rerandomize) encounters a mid-chain ciphertext, or vice versa.
var ErrY = errors.New("elgamal: ciphertext Y-slot in wrong state for operation")

// KeyPair is an ElGamal keypair over P-256.
type KeyPair struct {
	SK *ecc.Scalar // secret key x
	PK *ecc.Point  // public key X = g^x
}

// KeyGen generates a fresh keypair using randomness from r (crypto/rand
// if nil).
func KeyGen(r io.Reader) (*KeyPair, error) {
	sk, err := ecc.RandomScalar(r)
	if err != nil {
		return nil, fmt.Errorf("elgamal: keygen: %w", err)
	}
	return &KeyPair{SK: sk, PK: ecc.BaseMul(sk)}, nil
}

// CombineKeys returns the product of the given public keys. Encrypting
// under the product key requires all corresponding secret keys to decrypt,
// which is how a non-threshold anytrust group forms its group key
// (§4.2: "pk would be the product of the public keys of all servers").
func CombineKeys(pks ...*ecc.Point) *ecc.Point {
	acc := ecc.Identity()
	for _, pk := range pks {
		acc = acc.Add(pk)
	}
	return acc
}

// Ciphertext is the Atom ElGamal triple (R, C, Y). Y == nil encodes ⊥.
type Ciphertext struct {
	R *ecc.Point
	C *ecc.Point
	Y *ecc.Point
}

// Clone returns a deep copy of the ciphertext.
func (ct *Ciphertext) Clone() *Ciphertext {
	out := &Ciphertext{R: ct.R.Clone(), C: ct.C.Clone()}
	if ct.Y != nil {
		out.Y = ct.Y.Clone()
	}
	return out
}

// Equal reports componentwise equality (⊥ matches only ⊥).
func (ct *Ciphertext) Equal(other *Ciphertext) bool {
	if (ct.Y == nil) != (other.Y == nil) {
		return false
	}
	if ct.Y != nil && !ct.Y.Equal(other.Y) {
		return false
	}
	return ct.R.Equal(other.R) && ct.C.Equal(other.C)
}

// Encrypt encrypts the message point m under public key pk and returns
// the ciphertext (g^r, m·pk^r, ⊥) along with the randomness r, which the
// caller needs for EncProof generation.
func Encrypt(pk *ecc.Point, m *ecc.Point, rnd io.Reader) (*Ciphertext, *ecc.Scalar, error) {
	r, err := ecc.RandomScalar(rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("elgamal: encrypt: %w", err)
	}
	return EncryptWithRandomness(pk, m, r), r, nil
}

// EncryptWithRandomness is Encrypt with caller-supplied randomness; it is
// deterministic and used by tests and by proof re-derivations.
func EncryptWithRandomness(pk *ecc.Point, m *ecc.Point, r *ecc.Scalar) *Ciphertext {
	return &Ciphertext{R: ecc.BaseMul(r), C: m.Add(pk.Mul(r)), Y: nil}
}

// Decrypt recovers m = C / R^sk. Per Appendix A it fails if Y ≠ ⊥
// (a mid-chain ciphertext is not decryptable by a single key).
func Decrypt(sk *ecc.Scalar, ct *Ciphertext) (*ecc.Point, error) {
	if ct.Y != nil {
		return nil, fmt.Errorf("%w: Dec requires Y = ⊥", ErrY)
	}
	return ct.C.Sub(ct.R.Mul(sk)), nil
}

// Rerandomize re-blinds a Y = ⊥ ciphertext under pk with fresh randomness
// r': (g^r'·R, C·pk^r', ⊥). It returns the randomness used so the caller
// can build shuffle proofs.
func Rerandomize(pk *ecc.Point, ct *Ciphertext, rnd io.Reader) (*Ciphertext, *ecc.Scalar, error) {
	if ct.Y != nil {
		return nil, nil, fmt.Errorf("%w: Shuffle requires Y = ⊥", ErrY)
	}
	r, err := ecc.RandomScalar(rnd)
	if err != nil {
		return nil, nil, fmt.Errorf("elgamal: rerandomize: %w", err)
	}
	return RerandomizeWithRandomness(pk, ct, r), r, nil
}

// RerandomizeWithRandomness is Rerandomize with caller-supplied randomness.
func RerandomizeWithRandomness(pk *ecc.Point, ct *Ciphertext, r *ecc.Scalar) *Ciphertext {
	return &Ciphertext{
		R: ecc.BaseMul(r).Add(ct.R),
		C: ct.C.Add(pk.Mul(r)),
		Y: nil,
	}
}

// ReEnc strips one layer of encryption using sk and adds a layer under
// nextPK (Appendix A). If nextPK is nil (⊥), the operation is a pure
// partial decryption: no new randomness is added. The returned scalar is
// the fresh randomness r' (zero for nextPK = nil), needed for ReEncProof.
//
// For threshold (many-trust) groups the caller passes sk = λ_s·share_s so
// that the k−(h−1) participating servers' contributions sum to the group
// secret; the algebra here is unchanged.
func ReEnc(sk *ecc.Scalar, nextPK *ecc.Point, ct *Ciphertext, rnd io.Reader) (*Ciphertext, *ecc.Scalar, error) {
	var r *ecc.Scalar
	if nextPK == nil {
		r = ecc.NewScalar(0)
	} else {
		var err error
		r, err = ecc.RandomScalar(rnd)
		if err != nil {
			return nil, nil, fmt.Errorf("elgamal: reenc: %w", err)
		}
	}
	return ReEncWithRandomness(sk, nextPK, ct, r), r, nil
}

// ReEncWithRandomness is ReEnc with caller-supplied randomness r'.
func ReEncWithRandomness(sk *ecc.Scalar, nextPK *ecc.Point, ct *Ciphertext, r *ecc.Scalar) *Ciphertext {
	out := &Ciphertext{}
	// First touch within a group: move the accumulated randomness into the
	// Y slot and reset R to the identity.
	y := ct.Y
	rr := ct.R
	if y == nil {
		y = ct.R
		rr = ecc.Identity()
	}
	// Peel: C ← C / Y^sk.
	c := ct.C.Sub(y.Mul(sk))
	out.Y = y.Clone()
	if nextPK == nil {
		// Exit layer: pure decryption, keep R as-is (it stays identity for
		// the whole exit group since no fresh randomness is added).
		out.R = rr.Clone()
		out.C = c
		return out
	}
	// Re-encrypt for the next group's key.
	out.R = ecc.BaseMul(r).Add(rr)
	out.C = c.Add(nextPK.Mul(r))
	return out
}

// ClearY returns a copy of ct with Y set to ⊥. The last server of a group
// applies this before forwarding (Appendix A: "at this point, all layers
// of encryption by the current group have been peeled off").
func ClearY(ct *Ciphertext) *Ciphertext {
	return &Ciphertext{R: ct.R.Clone(), C: ct.C.Clone(), Y: nil}
}

// Plaintext extracts the message from a fully-decrypted ciphertext (one
// that has passed through the exit group with nextPK = ⊥): the message is
// simply the C component once all layers are removed.
func Plaintext(ct *Ciphertext) *ecc.Point { return ct.C }
