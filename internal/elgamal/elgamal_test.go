package elgamal

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"atom/internal/ecc"
)

func mustKey(t testing.TB) *KeyPair {
	t.Helper()
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return kp
}

func msgPoint(t testing.TB, s string) *ecc.Point {
	t.Helper()
	p, err := ecc.EmbedChunk([]byte(s))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	kp := mustKey(t)
	m := msgPoint(t, "hello atom")
	ct, _, err := Encrypt(kp.PK, m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decrypt(kp.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("decryption mismatch")
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	kp, kp2 := mustKey(t), mustKey(t)
	m := msgPoint(t, "secret")
	ct, _, _ := Encrypt(kp.PK, m, rand.Reader)
	got, err := Decrypt(kp2.SK, ct)
	if err != nil {
		t.Fatal(err)
	}
	if got.Equal(m) {
		t.Fatal("wrong key decrypted the message")
	}
}

func TestRerandomizePreservesPlaintext(t *testing.T) {
	kp := mustKey(t)
	m := msgPoint(t, "blinded")
	ct, _, _ := Encrypt(kp.PK, m, rand.Reader)
	ct2, _, err := Rerandomize(kp.PK, ct, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if ct2.R.Equal(ct.R) || ct2.C.Equal(ct.C) {
		t.Error("rerandomization did not change the ciphertext")
	}
	got, err := Decrypt(kp.SK, ct2)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("rerandomized ciphertext decrypts to wrong plaintext")
	}
}

func TestCombinedKeyRequiresAllShares(t *testing.T) {
	// An anytrust group key is the product of member keys; the sum of the
	// member secrets decrypts, any single secret does not.
	k1, k2, k3 := mustKey(t), mustKey(t), mustKey(t)
	groupPK := CombineKeys(k1.PK, k2.PK, k3.PK)
	groupSK := k1.SK.Add(k2.SK).Add(k3.SK)
	m := msgPoint(t, "anytrust")
	ct, _, _ := Encrypt(groupPK, m, rand.Reader)

	if got, _ := Decrypt(groupSK, ct); !got.Equal(m) {
		t.Fatal("combined secret failed to decrypt")
	}
	if got, _ := Decrypt(k1.SK, ct); got.Equal(m) {
		t.Fatal("single share should not decrypt")
	}
}

// TestOutOfOrderReEncChain is the heart of Atom's crypto: a message
// encrypted only for group A is passed through groups A → B → C, each
// group peeling its own layer while re-encrypting for the next, and the
// exit group (⊥) reveals the plaintext. No group's key is ever known to
// the sender except A's.
func TestOutOfOrderReEncChain(t *testing.T) {
	const groupSize = 4
	type group struct {
		members []*KeyPair
		pk      *ecc.Point
	}
	newGroup := func() *group {
		g := &group{}
		pks := make([]*ecc.Point, groupSize)
		for i := 0; i < groupSize; i++ {
			kp := mustKey(t)
			g.members = append(g.members, kp)
			pks[i] = kp.PK
		}
		g.pk = CombineKeys(pks...)
		return g
	}
	groups := []*group{newGroup(), newGroup(), newGroup()}

	m := msgPoint(t, "out of order!")
	ct, _, err := Encrypt(groups[0].pk, m, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}

	cur := ct
	for gi, g := range groups {
		var nextPK *ecc.Point // ⊥ for the exit group
		if gi+1 < len(groups) {
			nextPK = groups[gi+1].pk
		}
		for _, member := range g.members {
			var err error
			cur, _, err = ReEnc(member.SK, nextPK, cur, rand.Reader)
			if err != nil {
				t.Fatalf("group %d ReEnc: %v", gi, err)
			}
		}
		if cur.Y == nil {
			t.Fatalf("group %d: Y should be set mid-group", gi)
		}
		cur = ClearY(cur)
	}
	if !Plaintext(cur).Equal(m) {
		t.Fatal("out-of-order chain did not recover the plaintext")
	}
}

// TestReEncMidChainCiphertextNotDecryptable checks the paper's invariant
// that "all messages remain encrypted under at least one honest server's
// key until the last layer": after only some of a group's servers have
// re-encrypted, the combined keys of all *other* parties do not reveal m.
func TestReEncMidChainCiphertextNotDecryptable(t *testing.T) {
	a1, a2 := mustKey(t), mustKey(t) // group A: a2 is honest
	b1 := mustKey(t)                 // group B
	groupAPK := CombineKeys(a1.PK, a2.PK)
	m := msgPoint(t, "still hidden")
	ct, _, _ := Encrypt(groupAPK, m, rand.Reader)

	// Server a1 (malicious) re-encrypts toward B.
	mid, _, err := ReEnc(a1.SK, b1.PK, ct, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	// Even knowing a1's and b1's secrets, the adversary cannot recover m:
	// C still contains the factor Y^{a2.SK}.
	peeled := mid.C.Sub(mid.Y.Mul(a1.SK)) // what a1 could remove again? no-op check
	_ = peeled
	adv := mid.C.Sub(mid.Y.Mul(a1.SK.Add(b1.SK)))
	if adv.Equal(m) {
		t.Fatal("adversary recovered plaintext without honest server's key")
	}
	// Completing the chain honestly works.
	mid2, _, err := ReEnc(a2.SK, b1.PK, mid, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	done := ClearY(mid2)
	got, err := Decrypt(b1.SK, done)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("honest completion failed")
	}
}

func TestDecryptRejectsMidChainY(t *testing.T) {
	kp := mustKey(t)
	m := msgPoint(t, "x")
	ct, _, _ := Encrypt(kp.PK, m, rand.Reader)
	mid, _, _ := ReEnc(kp.SK, kp.PK, ct, rand.Reader)
	if _, err := Decrypt(kp.SK, mid); err == nil {
		t.Fatal("Decrypt should reject Y != ⊥")
	}
	if _, _, err := Rerandomize(kp.PK, mid, rand.Reader); err == nil {
		t.Fatal("Rerandomize should reject Y != ⊥")
	}
}

func TestReEncExitGroupRevealsPlaintext(t *testing.T) {
	// Exit group: nextPK = ⊥ (nil). After all members apply ReEnc, the C
	// slot holds the plaintext.
	k1, k2 := mustKey(t), mustKey(t)
	pk := CombineKeys(k1.PK, k2.PK)
	m := msgPoint(t, "published")
	ct, _, _ := Encrypt(pk, m, rand.Reader)
	s1, r1, err := ReEnc(k1.SK, nil, ct, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.IsZero() {
		t.Error("exit-layer ReEnc must not add randomness")
	}
	s2, _, err := ReEnc(k2.SK, nil, s1, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if !Plaintext(s2).Equal(m) {
		t.Fatal("exit group did not reveal plaintext")
	}
}

func TestVectorRoundTrip(t *testing.T) {
	kp := mustKey(t)
	msg := bytes.Repeat([]byte("tweet "), 26) // 156 bytes ≈ microblog size
	pts, err := ecc.EmbedMessage(msg, ecc.PointsPerMessage(len(msg)))
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := EncryptVector(kp.PK, pts, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecryptVector(kp.SK, v)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ecc.ExtractMessage(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("vector round trip failed")
	}
}

func TestVectorMarshalRoundTrip(t *testing.T) {
	kp := mustKey(t)
	pts, _ := ecc.EmbedMessage([]byte("wire format"), 2)
	v, _, _ := EncryptVector(kp.PK, pts, rand.Reader)
	// Also exercise a mid-chain component (Y set).
	mid, _, _ := ReEnc(kp.SK, kp.PK, v[0], rand.Reader)
	v[0] = mid

	enc := v.Marshal()
	got, err := UnmarshalVector(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(v) {
		t.Fatal("marshal round trip failed")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	kp := mustKey(t)
	pts, _ := ecc.EmbedMessage([]byte("x"), 1)
	v, _, _ := EncryptVector(kp.PK, pts, rand.Reader)
	enc := v.Marshal()
	if _, err := UnmarshalVector(enc[:len(enc)-3]); err == nil {
		t.Error("truncated encoding should fail")
	}
	if _, err := UnmarshalVector(append(enc, 0xFF)); err == nil {
		t.Error("trailing bytes should fail")
	}
	if _, err := UnmarshalVector(nil); err == nil {
		t.Error("empty encoding should fail")
	}
}

func TestHomomorphicRerandomizationProperty(t *testing.T) {
	// Property: for any message and any two randomizers, rerandomizing
	// twice equals rerandomizing once with the sum.
	kp := mustKey(t)
	f := func(seed1, seed2 [16]byte) bool {
		r1 := ecc.ScalarFromBytes(seed1[:])
		r2 := ecc.ScalarFromBytes(seed2[:])
		m := msgPoint(t, "prop")
		ct, _, _ := Encrypt(kp.PK, m, rand.Reader)
		a := RerandomizeWithRandomness(kp.PK, RerandomizeWithRandomness(kp.PK, ct, r1), r2)
		b := RerandomizeWithRandomness(kp.PK, ct, r1.Add(r2))
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 16}); err != nil {
		t.Error(err)
	}
}

func TestReEncChainRandomGroupSizes(t *testing.T) {
	// Property test across random chain shapes: any sequence of groups of
	// size 1..5 recovers the message at the exit.
	f := func(shape [4]uint8) bool {
		sizes := make([]int, 0, 4)
		for _, s := range shape {
			sizes = append(sizes, int(s%5)+1)
		}
		type grp struct {
			keys []*KeyPair
			pk   *ecc.Point
		}
		groups := make([]*grp, len(sizes))
		for i, sz := range sizes {
			g := &grp{}
			pks := make([]*ecc.Point, sz)
			for j := 0; j < sz; j++ {
				kp, err := KeyGen(rand.Reader)
				if err != nil {
					return false
				}
				g.keys = append(g.keys, kp)
				pks[j] = kp.PK
			}
			g.pk = CombineKeys(pks...)
			groups[i] = g
		}
		m, err := ecc.EmbedChunk([]byte("chain"))
		if err != nil {
			return false
		}
		cur, _, err := Encrypt(groups[0].pk, m, rand.Reader)
		if err != nil {
			return false
		}
		for gi, g := range groups {
			var next *ecc.Point
			if gi+1 < len(groups) {
				next = groups[gi+1].pk
			}
			for _, kp := range g.keys {
				cur, _, err = ReEnc(kp.SK, next, cur, rand.Reader)
				if err != nil {
					return false
				}
			}
			cur = ClearY(cur)
		}
		return Plaintext(cur).Equal(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
