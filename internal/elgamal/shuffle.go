package elgamal

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"atom/internal/ecc"
)

// RandomPerm returns a uniformly random permutation of [0, n) using
// rejection-sampled randomness from rnd (crypto/rand if nil). It is a
// cryptographic Fisher–Yates: the permutation quality is what the final
// mix-net permutation's indistinguishability rests on, so math/rand is
// not acceptable here.
func RandomPerm(n int, rnd io.Reader) ([]int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rnd, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("elgamal: random permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

// ShuffleBatch implements the Shuffle operation of §2.3 on a batch of
// ciphertext vectors: it rerandomizes every component under pk and
// permutes the batch with a fresh random permutation. It returns the
// shuffled batch along with the permutation and per-component randomness
// (out[i] = Rerandomize(in[perm[i]], rands[i][j])), which the caller
// feeds to nizk.ProveShuffle in the NIZK variant and then discards.
func ShuffleBatch(pk *ecc.Point, in []Vector, rnd io.Reader) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	n := len(in)
	perm, err = RandomPerm(n, rnd)
	if err != nil {
		return nil, nil, nil, err
	}
	out = make([]Vector, n)
	rands = make([][]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		src := in[perm[i]]
		v := make(Vector, len(src))
		rs := make([]*ecc.Scalar, len(src))
		for j, ct := range src {
			var r *ecc.Scalar
			if ct.Y != nil {
				return nil, nil, nil, fmt.Errorf("%w: shuffle input (%d,%d)", ErrY, perm[i], j)
			}
			r, err = ecc.RandomScalar(rnd)
			if err != nil {
				return nil, nil, nil, err
			}
			v[j] = RerandomizeWithRandomness(pk, ct, r)
			rs[j] = r
		}
		out[i] = v
		rands[i] = rs
	}
	return out, perm, rands, nil
}
