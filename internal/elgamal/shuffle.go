package elgamal

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"atom/internal/ecc"
	"atom/internal/parallel"
)

// RandomPerm returns a uniformly random permutation of [0, n) using
// rejection-sampled randomness from rnd (crypto/rand if nil). It is a
// cryptographic Fisher–Yates: the permutation quality is what the final
// mix-net permutation's indistinguishability rests on, so math/rand is
// not acceptable here.
func RandomPerm(n int, rnd io.Reader) ([]int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rnd, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("elgamal: random permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

// ShuffleBatch implements the Shuffle operation of §2.3 on a batch of
// ciphertext vectors: it rerandomizes every component under pk and
// permutes the batch with a fresh random permutation. It returns the
// shuffled batch along with the permutation and per-component randomness
// (out[i] = Rerandomize(in[perm[i]], rands[i][j])), which the caller
// feeds to nizk.ProveShuffle in the NIZK variant and then discards.
func ShuffleBatch(pk *ecc.Point, in []Vector, rnd io.Reader) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	return shuffleBatch(pk, in, rnd, nil, nil)
}

// ShuffleBatchPar is ShuffleBatch with the per-message point arithmetic
// fanned over the pool's workers (nil pool = serial, identical to
// ShuffleBatch). All randomness — the permutation and every
// rerandomizer — is drawn from rnd serially up front, so rnd need not
// be safe for concurrent use and the batch consumes the randomness
// stream in the same order at every worker count.
func ShuffleBatchPar(pk *ecc.Point, in []Vector, rnd io.Reader, pool *parallel.Pool) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	return shuffleBatch(pk, in, rnd, pool, nil)
}

// ShuffleBatchPads is ShuffleBatchPar drawing its rerandomizers — and
// the permutation entropy — from the pool of precomputed pads: every
// padded slot costs two point additions instead of two fixed-base
// evaluations. Slots past the bank (and the whole batch when pads is
// nil or precomputed for a different base) fall back to the fresh-
// randomness path mid-batch with no seam: the returned permutation and
// randomness have identical semantics either way, so proof generation
// is unchanged. Pads are consumed serially up front, preserving the
// deterministic-output-at-any-worker-count contract.
func ShuffleBatchPads(pk *ecc.Point, in []Vector, rnd io.Reader, pool *parallel.Pool, pads *PadPool) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	return shuffleBatch(pk, in, rnd, pool, pads)
}

func shuffleBatch(pk *ecc.Point, in []Vector, rnd io.Reader, pool *parallel.Pool, pads *PadPool) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	if pads != nil && !pads.base.Equal(pk) {
		pads = nil // precomputed for another base; use fresh randomness
	}
	n := len(in)
	permRnd := rnd
	if pads != nil {
		// Banked entropy first, live reader past it. Fisher–Yates over n
		// slots reads ~1 byte per draw at mixnet sizes with < 2 expected
		// rejection retries, so 4n banked bytes nearly always cover it.
		permRnd = pads.entropyReader(4*n, rnd)
	}
	perm, err = RandomPerm(n, permRnd)
	if err != nil {
		return nil, nil, nil, err
	}
	// Flatten every (vector, component) slot so the rerandomization runs
	// as two fused batch comb evaluations per worker chunk — R' =
	// g^r + R seeded into the generator comb, C' = pk^r + C into pk's
	// cached per-key comb — instead of four generic exponentiations per
	// component. Each chunk shares one field inversion per comb step, so
	// the whole shuffle allocates O(1) per component.
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + len(in[perm[i]])
	}
	total := offs[n]
	seedR := make([]*ecc.Point, total)
	seedC := make([]*ecc.Point, total)
	for i := 0; i < n; i++ {
		src := in[perm[i]]
		for j, ct := range src {
			if ct.Y != nil {
				return nil, nil, nil, fmt.Errorf("%w: shuffle input (%d,%d)", ErrY, perm[i], j)
			}
			seedR[offs[i]+j] = ct.R
			seedC[offs[i]+j] = ct.C
		}
	}
	// Precomputed pads cover the first m slots; the rest draw fresh
	// scalars in one slab-allocated batch. rands sub-slices the flat
	// scalar array, so the per-vector views cost no extra allocations.
	taken := pads.take(total)
	m := len(taken)
	fresh, err := ecc.RandomScalars(rnd, total-m)
	if err != nil {
		return nil, nil, nil, err
	}
	flatK := make([]*ecc.Scalar, total)
	for t := 0; t < m; t++ {
		flatK[t] = taken[t].K
	}
	copy(flatK[m:], fresh)
	rands = make([][]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		rands[i] = flatK[offs[i]:offs[i+1]:offs[i+1]]
	}
	outR := make([]*ecc.Point, total)
	outC := make([]*ecc.Point, total)
	chunks := pool.Workers()
	if chunks > (total+255)/256 {
		chunks = (total + 255) / 256
	}
	if chunks < 1 {
		chunks = 1
	}
	if err := pool.Each(chunks, func(c int) error {
		lo, hi := c*total/chunks, (c+1)*total/chunks
		if lo == hi {
			return nil
		}
		// Padded slots: R' = g^k + R and C' = pk^k + C with g^k, pk^k
		// precomputed offline — two point additions per component.
		padHi := hi
		if padHi > m {
			padHi = m
		}
		for t := lo; t < padHi; t++ {
			outR[t] = taken[t].GK.Add(seedR[t])
			outC[t] = taken[t].BK.Add(seedC[t])
		}
		if lo < m {
			lo = m
		}
		if lo >= hi {
			return nil
		}
		copy(outR[lo:hi], ecc.BaseMulAddBatch(seedR[lo:hi], flatK[lo:hi]))
		copy(outC[lo:hi], ecc.MulAddBatch(pk, seedC[lo:hi], flatK[lo:hi]))
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	out = make([]Vector, n)
	cts := make([]Ciphertext, total)
	ptrs := make(Vector, total)
	for t := range ptrs {
		ct := &cts[t]
		ct.R = outR[t]
		ct.C = outC[t]
		ptrs[t] = ct
	}
	for i := 0; i < n; i++ {
		out[i] = ptrs[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out, perm, rands, nil
}

// ReEncBatch applies ReEncVector to every vector of a batch, returning
// the per-vector outputs and randomness.
func ReEncBatch(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader) ([]Vector, [][]*ecc.Scalar, error) {
	return reencBatch(sk, nextPK, batch, rnd, nil, nil)
}

// ReEncBatchPar is ReEncBatch with the point arithmetic fanned over the
// pool's workers (nil pool = serial). As with ShuffleBatchPar, all
// randomness is drawn serially up front.
func ReEncBatchPar(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader, pool *parallel.Pool) ([]Vector, [][]*ecc.Scalar, error) {
	return reencBatch(sk, nextPK, batch, rnd, pool, nil)
}

// ReEncBatchPads is ReEncBatchPar drawing the re-encryption randomness
// from precomputed pads for nextPK: a padded slot's R' = g^k + R and
// X'^k term come from the bank, leaving only the peel C − Y^sk (a
// variable-base multiplication no precomputation can cover) online.
// Slots past the bank fall back to the fresh path mid-batch; the exit
// layer (nextPK = nil) adds no randomness and never consumes pads.
func ReEncBatchPads(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader, pool *parallel.Pool, pads *PadPool) ([]Vector, [][]*ecc.Scalar, error) {
	return reencBatch(sk, nextPK, batch, rnd, pool, pads)
}

func reencBatch(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader, pool *parallel.Pool, pads *PadPool) ([]Vector, [][]*ecc.Scalar, error) {
	if pads != nil && (nextPK == nil || !pads.base.Equal(nextPK)) {
		pads = nil
	}
	// Flatten as in shuffleBatch. The peel step C − Y^sk is a
	// variable-base multiplication (every Y differs) whose *scalar* is
	// shared — the member's one secret — so it runs through the
	// same-scalar lockstep batch; the re-encryption halves — g^r + R into
	// the generator comb, nextPK^r + C into nextPK's cached per-key comb —
	// batch the same way the shuffle does.
	n := len(batch)
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + len(batch[i])
	}
	total := offs[n]
	flatK := make([]*ecc.Scalar, total)
	var taken []Pad
	if nextPK == nil {
		// Exit layer: pure decryption adds no randomness. The zero value
		// of ecc.Scalar is the scalar 0, so one slab covers every slot.
		zeros := make([]ecc.Scalar, total)
		for t := range flatK {
			flatK[t] = &zeros[t]
		}
	} else {
		taken = pads.take(total)
		fresh, err := ecc.RandomScalars(rnd, total-len(taken))
		if err != nil {
			return nil, nil, fmt.Errorf("elgamal: reenc batch: %w", err)
		}
		for t := range taken {
			flatK[t] = taken[t].K
		}
		copy(flatK[len(taken):], fresh)
	}
	m := len(taken)
	rands := make([][]*ecc.Scalar, n)
	ys := make([]*ecc.Point, total)   // peel base per slot (Y, or first-touch R)
	rrs := make([]*ecc.Point, total)  // carried R per slot
	srcC := make([]*ecc.Point, total) // input C per slot
	peel := make([]*ecc.Point, total) // C − Y^sk
	for i := 0; i < n; i++ {
		rands[i] = flatK[offs[i]:offs[i+1]:offs[i+1]]
		for j, ct := range batch[i] {
			t := offs[i] + j
			// First touch within a group: the accumulated randomness moves
			// into the Y slot and R resets to the identity.
			y, rr := ct.Y, ct.R
			if y == nil {
				y = ct.R
				rr = ecc.Identity()
			}
			ys[t] = y
			rrs[t] = rr
			srcC[t] = ct.C
		}
	}
	outR := make([]*ecc.Point, total)
	chunks := pool.Workers()
	if chunks > (total+63)/64 {
		chunks = (total + 63) / 64
	}
	if chunks < 1 {
		chunks = 1
	}
	if err := pool.Each(chunks, func(c int) error {
		lo, hi := c*total/chunks, (c+1)*total/chunks
		if lo == hi {
			return nil
		}
		for j, sky := range ecc.MulSameScalarBatch(sk, ys[lo:hi]) {
			peel[lo+j] = srcC[lo+j].Sub(sky)
		}
		if nextPK == nil {
			// Exit layer: pure decryption, R carries through untouched.
			for j := lo; j < hi; j++ {
				outR[j] = rrs[j].Clone()
			}
			return nil
		}
		// Padded slots: R' = g^k + R with g^k from the bank.
		padHi := hi
		if padHi > m {
			padHi = m
		}
		for t := lo; t < padHi; t++ {
			outR[t] = taken[t].GK.Add(rrs[t])
		}
		if lo < m {
			lo = m
		}
		if lo < hi {
			copy(outR[lo:hi], ecc.BaseMulAddBatch(rrs[lo:hi], flatK[lo:hi]))
		}
		return nil
	}); err != nil {
		return nil, nil, err
	}
	if nextPK != nil {
		if err := pool.Each(chunks, func(c int) error {
			lo, hi := c*total/chunks, (c+1)*total/chunks
			if lo == hi {
				return nil
			}
			// Padded slots: C' = peel + X'^k with X'^k from the bank.
			padHi := hi
			if padHi > m {
				padHi = m
			}
			for t := lo; t < padHi; t++ {
				peel[t] = peel[t].Add(taken[t].BK)
			}
			if lo < m {
				lo = m
			}
			if lo < hi {
				copy(peel[lo:hi], ecc.MulAddBatch(nextPK, peel[lo:hi], flatK[lo:hi]))
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}
	out := make([]Vector, n)
	cts := make([]Ciphertext, total)
	ptrs := make(Vector, total)
	for t := range ptrs {
		ct := &cts[t]
		ct.R = outR[t]
		ct.C = peel[t]
		ct.Y = ys[t].Clone()
		ptrs[t] = ct
	}
	for i := 0; i < n; i++ {
		out[i] = ptrs[offs[i]:offs[i+1]:offs[i+1]]
	}
	return out, rands, nil
}
