package elgamal

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"atom/internal/ecc"
	"atom/internal/parallel"
)

// RandomPerm returns a uniformly random permutation of [0, n) using
// rejection-sampled randomness from rnd (crypto/rand if nil). It is a
// cryptographic Fisher–Yates: the permutation quality is what the final
// mix-net permutation's indistinguishability rests on, so math/rand is
// not acceptable here.
func RandomPerm(n int, rnd io.Reader) ([]int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rnd, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("elgamal: random permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

// ShuffleBatch implements the Shuffle operation of §2.3 on a batch of
// ciphertext vectors: it rerandomizes every component under pk and
// permutes the batch with a fresh random permutation. It returns the
// shuffled batch along with the permutation and per-component randomness
// (out[i] = Rerandomize(in[perm[i]], rands[i][j])), which the caller
// feeds to nizk.ProveShuffle in the NIZK variant and then discards.
func ShuffleBatch(pk *ecc.Point, in []Vector, rnd io.Reader) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	return ShuffleBatchPar(pk, in, rnd, nil)
}

// ShuffleBatchPar is ShuffleBatch with the per-message point arithmetic
// fanned over the pool's workers (nil pool = serial, identical to
// ShuffleBatch). All randomness — the permutation and every
// rerandomizer — is drawn from rnd serially up front, so rnd need not
// be safe for concurrent use and the batch consumes the randomness
// stream in the same order at every worker count.
func ShuffleBatchPar(pk *ecc.Point, in []Vector, rnd io.Reader, pool *parallel.Pool) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	n := len(in)
	perm, err = RandomPerm(n, rnd)
	if err != nil {
		return nil, nil, nil, err
	}
	rands = make([][]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		src := in[perm[i]]
		rs := make([]*ecc.Scalar, len(src))
		for j, ct := range src {
			if ct.Y != nil {
				return nil, nil, nil, fmt.Errorf("%w: shuffle input (%d,%d)", ErrY, perm[i], j)
			}
			if rs[j], err = ecc.RandomScalar(rnd); err != nil {
				return nil, nil, nil, err
			}
		}
		rands[i] = rs
	}
	out = make([]Vector, n)
	if err := pool.Each(n, func(i int) error {
		src := in[perm[i]]
		v := make(Vector, len(src))
		for j, ct := range src {
			v[j] = RerandomizeWithRandomness(pk, ct, rands[i][j])
		}
		out[i] = v
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	return out, perm, rands, nil
}

// ReEncBatch applies ReEncVector to every vector of a batch, returning
// the per-vector outputs and randomness.
func ReEncBatch(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader) ([]Vector, [][]*ecc.Scalar, error) {
	return ReEncBatchPar(sk, nextPK, batch, rnd, nil)
}

// ReEncBatchPar is ReEncBatch with the point arithmetic fanned over the
// pool's workers (nil pool = serial). As with ShuffleBatchPar, all
// randomness is drawn serially up front.
func ReEncBatchPar(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader, pool *parallel.Pool) ([]Vector, [][]*ecc.Scalar, error) {
	rands := make([][]*ecc.Scalar, len(batch))
	for i, vec := range batch {
		rs := make([]*ecc.Scalar, len(vec))
		for j := range vec {
			if nextPK == nil {
				// Exit layer: pure decryption adds no randomness.
				rs[j] = ecc.NewScalar(0)
				continue
			}
			r, err := ecc.RandomScalar(rnd)
			if err != nil {
				return nil, nil, fmt.Errorf("elgamal: reenc batch: %w", err)
			}
			rs[j] = r
		}
		rands[i] = rs
	}
	out := make([]Vector, len(batch))
	if err := pool.Each(len(batch), func(i int) error {
		v := make(Vector, len(batch[i]))
		for j, ct := range batch[i] {
			v[j] = ReEncWithRandomness(sk, nextPK, ct, rands[i][j])
		}
		out[i] = v
		return nil
	}); err != nil {
		return nil, nil, err
	}
	return out, rands, nil
}
