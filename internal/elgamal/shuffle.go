package elgamal

import (
	"crypto/rand"
	"fmt"
	"io"
	"math/big"

	"atom/internal/ecc"
	"atom/internal/parallel"
)

// RandomPerm returns a uniformly random permutation of [0, n) using
// rejection-sampled randomness from rnd (crypto/rand if nil). It is a
// cryptographic Fisher–Yates: the permutation quality is what the final
// mix-net permutation's indistinguishability rests on, so math/rand is
// not acceptable here.
func RandomPerm(n int, rnd io.Reader) ([]int, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for i := n - 1; i > 0; i-- {
		jBig, err := rand.Int(rnd, big.NewInt(int64(i+1)))
		if err != nil {
			return nil, fmt.Errorf("elgamal: random permutation: %w", err)
		}
		j := int(jBig.Int64())
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm, nil
}

// ShuffleBatch implements the Shuffle operation of §2.3 on a batch of
// ciphertext vectors: it rerandomizes every component under pk and
// permutes the batch with a fresh random permutation. It returns the
// shuffled batch along with the permutation and per-component randomness
// (out[i] = Rerandomize(in[perm[i]], rands[i][j])), which the caller
// feeds to nizk.ProveShuffle in the NIZK variant and then discards.
func ShuffleBatch(pk *ecc.Point, in []Vector, rnd io.Reader) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	return ShuffleBatchPar(pk, in, rnd, nil)
}

// ShuffleBatchPar is ShuffleBatch with the per-message point arithmetic
// fanned over the pool's workers (nil pool = serial, identical to
// ShuffleBatch). All randomness — the permutation and every
// rerandomizer — is drawn from rnd serially up front, so rnd need not
// be safe for concurrent use and the batch consumes the randomness
// stream in the same order at every worker count.
func ShuffleBatchPar(pk *ecc.Point, in []Vector, rnd io.Reader, pool *parallel.Pool) (out []Vector, perm []int, rands [][]*ecc.Scalar, err error) {
	n := len(in)
	perm, err = RandomPerm(n, rnd)
	if err != nil {
		return nil, nil, nil, err
	}
	rands = make([][]*ecc.Scalar, n)
	for i := 0; i < n; i++ {
		src := in[perm[i]]
		rs := make([]*ecc.Scalar, len(src))
		for j, ct := range src {
			if ct.Y != nil {
				return nil, nil, nil, fmt.Errorf("%w: shuffle input (%d,%d)", ErrY, perm[i], j)
			}
			if rs[j], err = ecc.RandomScalar(rnd); err != nil {
				return nil, nil, nil, err
			}
		}
		rands[i] = rs
	}
	// Flatten every (vector, component) slot so the rerandomization runs
	// as two fused batch comb evaluations per worker chunk — R' =
	// g^r + R seeded into the generator comb, C' = pk^r + C into pk's
	// cached per-key comb — instead of four generic exponentiations per
	// component. Each chunk shares one field inversion per comb step, so
	// the whole shuffle allocates O(1) per component.
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + len(in[perm[i]])
	}
	total := offs[n]
	seedR := make([]*ecc.Point, total)
	seedC := make([]*ecc.Point, total)
	flatK := make([]*ecc.Scalar, total)
	for i := 0; i < n; i++ {
		src := in[perm[i]]
		for j, ct := range src {
			seedR[offs[i]+j] = ct.R
			seedC[offs[i]+j] = ct.C
			flatK[offs[i]+j] = rands[i][j]
		}
	}
	outR := make([]*ecc.Point, total)
	outC := make([]*ecc.Point, total)
	chunks := pool.Workers()
	if chunks > (total+255)/256 {
		chunks = (total + 255) / 256
	}
	if chunks < 1 {
		chunks = 1
	}
	if err := pool.Each(chunks, func(c int) error {
		lo, hi := c*total/chunks, (c+1)*total/chunks
		if lo == hi {
			return nil
		}
		copy(outR[lo:hi], ecc.BaseMulAddBatch(seedR[lo:hi], flatK[lo:hi]))
		copy(outC[lo:hi], ecc.MulAddBatch(pk, seedC[lo:hi], flatK[lo:hi]))
		return nil
	}); err != nil {
		return nil, nil, nil, err
	}
	out = make([]Vector, n)
	cts := make([]Ciphertext, total)
	for i := 0; i < n; i++ {
		v := make(Vector, offs[i+1]-offs[i])
		for j := range v {
			ct := &cts[offs[i]+j]
			ct.R = outR[offs[i]+j]
			ct.C = outC[offs[i]+j]
			v[j] = ct
		}
		out[i] = v
	}
	return out, perm, rands, nil
}

// ReEncBatch applies ReEncVector to every vector of a batch, returning
// the per-vector outputs and randomness.
func ReEncBatch(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader) ([]Vector, [][]*ecc.Scalar, error) {
	return ReEncBatchPar(sk, nextPK, batch, rnd, nil)
}

// ReEncBatchPar is ReEncBatch with the point arithmetic fanned over the
// pool's workers (nil pool = serial). As with ShuffleBatchPar, all
// randomness is drawn serially up front.
func ReEncBatchPar(sk *ecc.Scalar, nextPK *ecc.Point, batch []Vector, rnd io.Reader, pool *parallel.Pool) ([]Vector, [][]*ecc.Scalar, error) {
	rands := make([][]*ecc.Scalar, len(batch))
	for i, vec := range batch {
		rs := make([]*ecc.Scalar, len(vec))
		for j := range vec {
			if nextPK == nil {
				// Exit layer: pure decryption adds no randomness.
				rs[j] = ecc.NewScalar(0)
				continue
			}
			r, err := ecc.RandomScalar(rnd)
			if err != nil {
				return nil, nil, fmt.Errorf("elgamal: reenc batch: %w", err)
			}
			rs[j] = r
		}
		rands[i] = rs
	}
	// Flatten as in ShuffleBatchPar. The peel step C − Y^sk is a
	// variable-base multiplication with no shared structure (every Y
	// differs), but the re-encryption halves — g^r + R into the generator
	// comb, nextPK^r + C into nextPK's cached per-key comb — batch the
	// same way the shuffle does.
	n := len(batch)
	offs := make([]int, n+1)
	for i := 0; i < n; i++ {
		offs[i+1] = offs[i] + len(batch[i])
	}
	total := offs[n]
	ys := make([]*ecc.Point, total)   // peel base per slot (Y, or first-touch R)
	rrs := make([]*ecc.Point, total)  // carried R per slot
	srcC := make([]*ecc.Point, total) // input C per slot
	peel := make([]*ecc.Point, total) // C − Y^sk
	flatK := make([]*ecc.Scalar, total)
	for i := 0; i < n; i++ {
		for j, ct := range batch[i] {
			t := offs[i] + j
			// First touch within a group: the accumulated randomness moves
			// into the Y slot and R resets to the identity.
			y, rr := ct.Y, ct.R
			if y == nil {
				y = ct.R
				rr = ecc.Identity()
			}
			ys[t] = y
			rrs[t] = rr
			srcC[t] = ct.C
			flatK[t] = rands[i][j]
		}
	}
	outR := make([]*ecc.Point, total)
	chunks := pool.Workers()
	if chunks > (total+63)/64 {
		chunks = (total + 63) / 64
	}
	if chunks < 1 {
		chunks = 1
	}
	if err := pool.Each(chunks, func(c int) error {
		lo, hi := c*total/chunks, (c+1)*total/chunks
		if lo == hi {
			return nil
		}
		for j := lo; j < hi; j++ {
			peel[j] = srcC[j].Sub(ys[j].Mul(sk))
		}
		if nextPK == nil {
			// Exit layer: pure decryption, R carries through untouched.
			for j := lo; j < hi; j++ {
				outR[j] = rrs[j].Clone()
			}
			return nil
		}
		copy(outR[lo:hi], ecc.BaseMulAddBatch(rrs[lo:hi], flatK[lo:hi]))
		return nil
	}); err != nil {
		return nil, nil, err
	}
	if nextPK != nil {
		if err := pool.Each(chunks, func(c int) error {
			lo, hi := c*total/chunks, (c+1)*total/chunks
			if lo < hi {
				copy(peel[lo:hi], ecc.MulAddBatch(nextPK, peel[lo:hi], flatK[lo:hi]))
			}
			return nil
		}); err != nil {
			return nil, nil, err
		}
	}
	out := make([]Vector, n)
	cts := make([]Ciphertext, total)
	for i := 0; i < n; i++ {
		v := make(Vector, offs[i+1]-offs[i])
		for j := range v {
			t := offs[i] + j
			ct := &cts[t]
			ct.R = outR[t]
			ct.C = peel[t]
			ct.Y = ys[t].Clone()
			v[j] = ct
		}
		out[i] = v
	}
	return out, rands, nil
}
