package elgamal

import (
	"crypto/rand"
	"testing"

	"atom/internal/ecc"
)

func TestClearYVectorAndPlaintextVector(t *testing.T) {
	kp := mustKey(t)
	pts, _ := ecc.EmbedMessage([]byte("edge"), 2)
	v, _, _ := EncryptVector(kp.PK, pts, rand.Reader)
	mid, _, err := ReEncVector(kp.SK, kp.PK, v, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	for i, ct := range mid {
		if ct.Y == nil {
			t.Fatalf("component %d lost Y mid-chain", i)
		}
	}
	cleared := ClearYVector(mid)
	for i, ct := range cleared {
		if ct.Y != nil {
			t.Fatalf("component %d still has Y after ClearYVector", i)
		}
		// Clearing must not alias the input.
		if ct == mid[i] {
			t.Fatal("ClearYVector aliased its input")
		}
	}
	// PlaintextVector on a decrypted vector.
	exit, _, err := ReEncVector(kp.SK, nil, v, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	out := PlaintextVector(exit)
	got, err := ecc.ExtractMessage(out)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "edge" {
		t.Fatalf("plaintext %q", got)
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	kp := mustKey(t)
	pts, _ := ecc.EmbedMessage([]byte("clone"), 1)
	v, _, _ := EncryptVector(kp.PK, pts, rand.Reader)
	cp := v.Clone()
	if !cp.Equal(v) {
		t.Fatal("clone differs")
	}
	// Mutating the clone must not affect the original.
	cp[0].Y = ecc.Generator()
	if v[0].Y != nil {
		t.Fatal("clone shares ciphertext storage with original")
	}
}

func TestEmptyVectorMarshal(t *testing.T) {
	var v Vector
	enc := v.Marshal()
	got, err := UnmarshalVector(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty vector decoded to %d components", len(got))
	}
}

func TestVectorEqualShapes(t *testing.T) {
	kp := mustKey(t)
	pts1, _ := ecc.EmbedMessage([]byte("a"), 1)
	pts2, _ := ecc.EmbedMessage([]byte("a"), 2)
	v1, _, _ := EncryptVector(kp.PK, pts1, rand.Reader)
	v2, _, _ := EncryptVector(kp.PK, pts2, rand.Reader)
	if v1.Equal(v2) {
		t.Fatal("vectors of different lengths compare equal")
	}
	mid, _, _ := ReEncVector(kp.SK, kp.PK, v1, rand.Reader)
	if v1.Equal(mid) {
		t.Fatal("⊥-Y and set-Y vectors compare equal")
	}
}

func TestShuffleBatchEmptyAndSingle(t *testing.T) {
	kp := mustKey(t)
	out, perm, rands, err := ShuffleBatch(kp.PK, nil, rand.Reader)
	if err != nil || len(out) != 0 || len(perm) != 0 || len(rands) != 0 {
		t.Fatalf("empty batch: %v/%v/%v/%v", out, perm, rands, err)
	}
	pts, _ := ecc.EmbedMessage([]byte("solo"), 1)
	v, _, _ := EncryptVector(kp.PK, pts, rand.Reader)
	out, perm, _, err = ShuffleBatch(kp.PK, []Vector{v}, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || perm[0] != 0 {
		t.Fatalf("single batch: %v/%v", out, perm)
	}
	m, err := DecryptVector(kp.SK, out[0])
	if err != nil {
		t.Fatal(err)
	}
	got, _ := ecc.ExtractMessage(m)
	if string(got) != "solo" {
		t.Fatalf("single-element shuffle corrupted the message: %q", got)
	}
}
