package elgamal

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"testing"

	"atom/internal/ecc"
	"atom/internal/parallel"
)

func makeBatch(t testing.TB, pk *ecc.Point, n int) []Vector {
	t.Helper()
	batch := make([]Vector, n)
	for i := range batch {
		m, err := ecc.EmbedChunk(fmt.Appendf(nil, "batch message %06d", i))
		if err != nil {
			t.Fatal(err)
		}
		ct, _, err := Encrypt(pk, m, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		batch[i] = Vector{ct}
	}
	return batch
}

// A deterministic byte stream, NOT safe for concurrent use — exactly
// the kind of reader the serial-randomness-draw design must tolerate.
type streamReader struct{ state byte }

func (s *streamReader) Read(b []byte) (int, error) {
	for i := range b {
		s.state = s.state*31 + 17
		b[i] = s.state
	}
	return len(b), nil
}

// TestShuffleBatchParMatchesSerial: the parallel shuffle must produce
// byte-identical output to the serial one when fed the same randomness
// stream, at every worker count.
func TestShuffleBatchParMatchesSerial(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(t, kp.PK, 33)
	ref, refPerm, _, err := ShuffleBatch(kp.PK, batch, &streamReader{state: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16} {
		pool := parallel.New(context.Background(), workers)
		out, perm, rands, err := ShuffleBatchPar(kp.PK, batch, &streamReader{state: 7}, pool)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range perm {
			if perm[i] != refPerm[i] {
				t.Fatalf("workers=%d: permutation diverged at %d", workers, i)
			}
		}
		for i := range out {
			if !out[i].Equal(ref[i]) {
				t.Fatalf("workers=%d: output %d diverged", workers, i)
			}
		}
		// The returned randomness must actually open the shuffle.
		for i := range out {
			want := RerandomizeWithRandomness(kp.PK, batch[perm[i]][0], rands[i][0])
			if !out[i][0].Equal(want) {
				t.Fatalf("workers=%d: randomness %d does not open output", workers, i)
			}
		}
	}
}

func TestReEncBatchParMatchesSerial(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	next, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(t, kp.PK, 19)
	ref, _, err := ReEncBatch(kp.SK, next.PK, batch, &streamReader{state: 3})
	if err != nil {
		t.Fatal(err)
	}
	pool := parallel.New(context.Background(), 8)
	out, _, err := ReEncBatchPar(kp.SK, next.PK, batch, &streamReader{state: 3}, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if !out[i].Equal(ref[i]) {
			t.Fatalf("parallel reenc output %d diverged", i)
		}
	}
	// Exit layer (nextPK = ⊥): decryption completes and matches too.
	exitRef, _, err := ReEncBatch(kp.SK, nil, batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	exitPar, _, err := ReEncBatchPar(kp.SK, nil, batch, nil, pool)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exitPar {
		if !exitPar[i].Equal(exitRef[i]) {
			t.Fatalf("parallel exit reenc output %d diverged", i)
		}
	}
}

// TestMarshalLargeVectorRoundTrip exercises the varint length encoding
// at and beyond the 255-component boundary where the previous one-byte
// prefix silently wrapped.
func TestMarshalLargeVectorRoundTrip(t *testing.T) {
	kp, err := KeyGen(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	m, err := ecc.EmbedChunk([]byte("boundary"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{0, 1, 255, 256, 300} {
		v := make(Vector, n)
		for i := range v {
			ct, _, err := Encrypt(kp.PK, m, rand.Reader)
			if err != nil {
				t.Fatal(err)
			}
			ct.Y = ecc.BaseMul(ecc.NewScalar(int64(i + 1))) // exercise the Y flag too
			v[i] = ct
		}
		enc := v.Marshal()
		got, err := UnmarshalVector(enc)
		if err != nil {
			t.Fatalf("n=%d: unmarshal: %v", n, err)
		}
		if len(got) != n {
			t.Fatalf("n=%d: round-tripped to %d components", n, len(got))
		}
		if n > 0 && !got.Equal(v) {
			t.Fatalf("n=%d: round trip not equal", n)
		}
		if !bytes.Equal(got.Marshal(), enc) {
			t.Fatalf("n=%d: re-marshal differs", n)
		}
	}
}

// TestUnmarshalRejectsBogusCount: a forged huge count must be rejected
// before allocation, not trusted.
func TestUnmarshalRejectsBogusCount(t *testing.T) {
	var buf bytes.Buffer
	writeUvarint(&buf, 1<<40)
	buf.WriteByte(0)
	if _, err := UnmarshalVector(buf.Bytes()); err == nil {
		t.Fatal("bogus component count accepted")
	}
}
