// Package dialing implements Atom's dialing application (paper §5):
// the bootstrapping protocol by which Alice anonymously hands Bob her
// public key so the two can later converse over a private-messaging
// system (Vuvuzela, Alpenhorn, …).
//
// To dial, Alice encrypts her public key under Bob's long-term key and
// routes "Bob's identifier ‖ ciphertext" through the Atom network. Exit
// servers deposit each request into mailbox (id mod m); Bob downloads
// his mailbox and trial-decrypts its contents. To hide how many calls a
// user receives, an anytrust group injects differentially-private dummy
// requests per mailbox, following Vuvuzela's noise mechanism (§5:
// "the number of dummies is determined using differential privacy").
package dialing

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"atom/internal/cca2"
	"atom/internal/ecc"
)

// RequestSize is the wire size of one dialing request: an 8-byte
// recipient identifier plus the CCA2 encryption of the caller's
// 33-byte compressed public key. The paper quotes ~80 bytes for the
// simplest scheme; ours is 102 because the stdlib AEAD framing (12-byte
// nonce, 16-byte tag) and compressed-point KEM are slightly larger.
const RequestSize = 8 + 33 + cca2.Overhead

// Identity is a dialing participant's long-term keypair.
type Identity struct {
	Keys *cca2.KeyPair
}

// NewIdentity generates a fresh dialing identity.
func NewIdentity(rnd io.Reader) (*Identity, error) {
	kp, err := cca2.KeyGen(rnd)
	if err != nil {
		return nil, fmt.Errorf("dialing: identity: %w", err)
	}
	return &Identity{Keys: kp}, nil
}

// ID derives the numeric identifier used for mailbox routing from the
// public key (§5: "each dialing message is forwarded to mailbox id
// mod m").
func (id *Identity) ID() uint64 { return IDForKey(id.Keys.PK) }

// IDForKey derives a mailbox identifier for any public key.
func IDForKey(pk *ecc.Point) uint64 {
	b := pk.Bytes()
	// The low 8 bytes of the compressed encoding are already
	// pseudorandom group-element bytes; fold the whole encoding anyway.
	var h uint64 = 14695981039346656037
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// Dial builds Alice's dialing request to Bob: Bob's identifier followed
// by Enc_CCA2(bobPK, alicePub).
func Dial(bobPK *ecc.Point, alicePub *ecc.Point, rnd io.Reader) ([]byte, error) {
	ct, err := cca2.Encrypt(bobPK, alicePub.Bytes(), rnd)
	if err != nil {
		return nil, fmt.Errorf("dialing: %w", err)
	}
	out := make([]byte, 8, RequestSize)
	binary.BigEndian.PutUint64(out, IDForKey(bobPK))
	out = append(out, ct...)
	if len(out) != RequestSize {
		return nil, fmt.Errorf("dialing: request is %d bytes, want %d", len(out), RequestSize)
	}
	return out, nil
}

// Open attempts to decrypt a dialing request with Bob's identity. It
// returns Alice's public key and true on success, or false for requests
// addressed to other users sharing the mailbox (or dummies).
func (id *Identity) Open(req []byte) (*ecc.Point, bool) {
	if len(req) != RequestSize {
		return nil, false
	}
	plain, err := cca2.Decrypt(id.Keys.SK, req[8:])
	if err != nil {
		return nil, false
	}
	pk, err := ecc.PointFromBytes(plain)
	if err != nil {
		return nil, false
	}
	return pk, true
}

// RecipientID extracts the mailbox identifier from a request.
func RecipientID(req []byte) (uint64, error) {
	if len(req) < 8 {
		return 0, fmt.Errorf("dialing: request too short (%d bytes)", len(req))
	}
	return binary.BigEndian.Uint64(req[:8]), nil
}

// MailboxFor maps an identifier to one of m mailboxes.
func MailboxFor(id uint64, m int) int { return int(id % uint64(m)) }

// Mailboxes is the exit-side mailbox array for one dialing round.
type Mailboxes struct {
	m     int
	boxes [][][]byte
	drops int
}

// NewMailboxes allocates m empty mailboxes.
func NewMailboxes(m int) (*Mailboxes, error) {
	if m < 1 {
		return nil, fmt.Errorf("dialing: need at least one mailbox")
	}
	return &Mailboxes{m: m, boxes: make([][][]byte, m)}, nil
}

// Deliver sorts the round's anonymized outputs into mailboxes.
// Malformed requests are counted and dropped.
func (mb *Mailboxes) Deliver(msgs [][]byte) {
	for _, msg := range msgs {
		id, err := RecipientID(msg)
		if err != nil || len(msg) != RequestSize {
			mb.drops++
			continue
		}
		box := MailboxFor(id, mb.m)
		mb.boxes[box] = append(mb.boxes[box], msg)
	}
}

// Box returns the contents of mailbox i (what a recipient downloads).
func (mb *Mailboxes) Box(i int) [][]byte {
	if i < 0 || i >= mb.m {
		return nil
	}
	return mb.boxes[i]
}

// Size returns the number of mailboxes.
func (mb *Mailboxes) Size() int { return mb.m }

// Dropped returns the count of malformed requests discarded.
func (mb *Mailboxes) Dropped() int { return mb.drops }

// Total returns the number of delivered requests.
func (mb *Mailboxes) Total() int {
	n := 0
	for _, b := range mb.boxes {
		n += len(b)
	}
	return n
}

// SampleLaplace draws from a zero-mean Laplace distribution with the
// given scale using inverse-CDF sampling on cryptographic randomness.
func SampleLaplace(scale float64, rnd io.Reader) (float64, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	var buf [8]byte
	if _, err := io.ReadFull(rnd, buf[:]); err != nil {
		return 0, fmt.Errorf("dialing: noise: %w", err)
	}
	// u uniform in (0,1), avoiding exact endpoints.
	u := (float64(binary.BigEndian.Uint64(buf[:])>>11) + 0.5) / (1 << 53)
	centered := u - 0.5
	sign := 1.0
	if centered < 0 {
		sign = -1.0
		centered = -centered
	}
	return -sign * scale * math.Log(1-2*centered), nil
}

// NoiseConfig parameterizes the differential-privacy dummy generation
// (Vuvuzela's mechanism [72], used by §6.2 with μ = 13,000 per trustee).
type NoiseConfig struct {
	// Mu is the mean dummy count per anytrust-group server.
	Mu float64
	// Scale is the Laplace scale b (Vuvuzela uses b = 1/ε per exposure).
	Scale float64
}

// SampleDummyCount draws the number of dummy requests one noise server
// adds: max(0, round(μ + Laplace(b))).
func (nc NoiseConfig) SampleDummyCount(rnd io.Reader) (int, error) {
	noise, err := SampleLaplace(nc.Scale, rnd)
	if err != nil {
		return 0, err
	}
	n := int(math.Round(nc.Mu + noise))
	if n < 0 {
		n = 0
	}
	return n, nil
}

// GenerateDummies builds count indistinguishable dummy dialing requests
// addressed to uniformly random mailbox identifiers. Dummies are
// encryptions of a throwaway key under a throwaway identity, so they
// are undecryptable by every real recipient — exactly like a real
// request addressed to somebody else.
func GenerateDummies(count int, rnd io.Reader) ([][]byte, error) {
	if rnd == nil {
		rnd = rand.Reader
	}
	out := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		throwaway, err := cca2.KeyGen(rnd)
		if err != nil {
			return nil, err
		}
		filler, err := ecc.RandomScalar(rnd)
		if err != nil {
			return nil, err
		}
		req, err := Dial(throwaway.PK, ecc.BaseMul(filler), rnd)
		if err != nil {
			return nil, err
		}
		out = append(out, req)
	}
	return out, nil
}
