package dialing

import (
	"crypto/rand"
	"math"
	"testing"

	"atom/internal/ecc"
)

func TestDialAndOpen(t *testing.T) {
	bob, err := NewIdentity(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	alicePub := ecc.BaseMul(ecc.MustRandomScalar(rand.Reader))
	req, err := Dial(bob.Keys.PK, alicePub, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(req) != RequestSize {
		t.Fatalf("request is %d bytes, want %d", len(req), RequestSize)
	}
	id, err := RecipientID(req)
	if err != nil {
		t.Fatal(err)
	}
	if id != bob.ID() {
		t.Fatal("request carries the wrong recipient id")
	}
	got, ok := bob.Open(req)
	if !ok {
		t.Fatal("Bob failed to open his own request")
	}
	if !got.Equal(alicePub) {
		t.Fatal("recovered key differs from Alice's")
	}
}

func TestOpenRejectsOthersRequests(t *testing.T) {
	bob, _ := NewIdentity(rand.Reader)
	carol, _ := NewIdentity(rand.Reader)
	alicePub := ecc.BaseMul(ecc.MustRandomScalar(rand.Reader))
	req, _ := Dial(bob.Keys.PK, alicePub, rand.Reader)
	if _, ok := carol.Open(req); ok {
		t.Fatal("Carol opened a request addressed to Bob")
	}
	if _, ok := bob.Open(req[:RequestSize-1]); ok {
		t.Fatal("truncated request opened")
	}
	tampered := append([]byte(nil), req...)
	tampered[20] ^= 1
	if _, ok := bob.Open(tampered); ok {
		t.Fatal("tampered request opened")
	}
}

func TestMailboxRouting(t *testing.T) {
	mb, err := NewMailboxes(8)
	if err != nil {
		t.Fatal(err)
	}
	var msgs [][]byte
	ids := make([]uint64, 0, 20)
	for i := 0; i < 20; i++ {
		bob, _ := NewIdentity(rand.Reader)
		alicePub := ecc.BaseMul(ecc.MustRandomScalar(rand.Reader))
		req, _ := Dial(bob.Keys.PK, alicePub, rand.Reader)
		msgs = append(msgs, req)
		ids = append(ids, bob.ID())
	}
	msgs = append(msgs, []byte("garbage")) // malformed
	mb.Deliver(msgs)
	if mb.Dropped() != 1 {
		t.Errorf("dropped %d, want 1", mb.Dropped())
	}
	if mb.Total() != 20 {
		t.Errorf("delivered %d, want 20", mb.Total())
	}
	// Every request must be in the mailbox its id names.
	for i, id := range ids {
		box := mb.Box(MailboxFor(id, 8))
		found := false
		for _, m := range box {
			if string(m) == string(msgs[i]) {
				found = true
			}
		}
		if !found {
			t.Errorf("request %d not in its mailbox", i)
		}
	}
	if mb.Box(-1) != nil || mb.Box(8) != nil {
		t.Error("out-of-range mailbox should be nil")
	}
}

func TestNewMailboxesRejectsZero(t *testing.T) {
	if _, err := NewMailboxes(0); err == nil {
		t.Fatal("0 mailboxes accepted")
	}
}

func TestEndToEndDialThroughMailboxes(t *testing.T) {
	// Alice dials Bob among a crowd; Bob finds exactly Alice's key.
	bob, _ := NewIdentity(rand.Reader)
	alicePub := ecc.BaseMul(ecc.MustRandomScalar(rand.Reader))
	aliceReq, _ := Dial(bob.Keys.PK, alicePub, rand.Reader)

	crowd, err := GenerateDummies(30, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := NewMailboxes(4)
	mb.Deliver(append(crowd, aliceReq))

	box := mb.Box(MailboxFor(bob.ID(), 4))
	var recovered []*ecc.Point
	for _, req := range box {
		if pk, ok := bob.Open(req); ok {
			recovered = append(recovered, pk)
		}
	}
	if len(recovered) != 1 || !recovered[0].Equal(alicePub) {
		t.Fatalf("Bob recovered %d keys, want exactly Alice's", len(recovered))
	}
}

func TestSampleLaplaceStatistics(t *testing.T) {
	const n = 4000
	const scale = 10.0
	sum, absSum := 0.0, 0.0
	for i := 0; i < n; i++ {
		x, err := SampleLaplace(scale, rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		sum += x
		absSum += math.Abs(x)
	}
	mean := sum / n
	meanAbs := absSum / n
	// Laplace(b): mean 0, E|X| = b. Loose 20% tolerances.
	if math.Abs(mean) > 2 {
		t.Errorf("sample mean %v too far from 0", mean)
	}
	if meanAbs < scale*0.8 || meanAbs > scale*1.2 {
		t.Errorf("mean |X| = %v, want ≈ %v", meanAbs, scale)
	}
}

func TestSampleDummyCount(t *testing.T) {
	nc := NoiseConfig{Mu: 100, Scale: 5}
	for i := 0; i < 50; i++ {
		n, err := nc.SampleDummyCount(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		if n < 0 {
			t.Fatal("negative dummy count")
		}
		if n < 40 || n > 160 {
			t.Errorf("dummy count %d wildly far from μ=100 (possible but ~never)", n)
		}
	}
	// Negative clamping: μ = 0 with large noise must floor at 0.
	nc0 := NoiseConfig{Mu: 0, Scale: 50}
	sawZero := false
	for i := 0; i < 50; i++ {
		n, _ := nc0.SampleDummyCount(rand.Reader)
		if n == 0 {
			sawZero = true
		}
		if n < 0 {
			t.Fatal("negative dummy count")
		}
	}
	if !sawZero {
		t.Error("clamping to zero never occurred with μ=0")
	}
}

func TestDummiesAreWellFormedAndUndecryptable(t *testing.T) {
	bob, _ := NewIdentity(rand.Reader)
	dummies, err := GenerateDummies(20, rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	if len(dummies) != 20 {
		t.Fatalf("generated %d dummies", len(dummies))
	}
	for i, d := range dummies {
		if len(d) != RequestSize {
			t.Fatalf("dummy %d is %d bytes", i, len(d))
		}
		if _, ok := bob.Open(d); ok {
			t.Fatalf("dummy %d decrypted by a real user", i)
		}
	}
}

func TestIDForKeyDeterministic(t *testing.T) {
	id, _ := NewIdentity(rand.Reader)
	if id.ID() != IDForKey(id.Keys.PK) {
		t.Fatal("ID not derived from key")
	}
	other, _ := NewIdentity(rand.Reader)
	if id.ID() == other.ID() {
		t.Fatal("two identities collided (astronomically unlikely)")
	}
}
