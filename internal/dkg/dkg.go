// Package dkg implements the joint-Feldman distributed key generation
// ceremony that removes Atom's last trusted-dealer assumption, plus the
// resharing variant that rotates operators in and out of a long-lived
// group without changing its public key.
//
// Fresh DKG (Pedersen's joint-Feldman, the construction drand deploys):
// every member deals a Feldman VSS of a fresh random secret; the group
// secret is the never-assembled sum of the qualified dealers' secrets.
// Three broadcast phases over internal/transport:
//
//	deal          each dealer sends every receiver its Feldman
//	              commitments plus that receiver's private share
//	response      each receiver broadcasts one vote per dealer —
//	              ok (with a commitment hash), complaint (share failed
//	              verification), or missing (no deal arrived)
//	justification each complained-against dealer publicly reveals the
//	              disputed shares, which anyone can check against its
//	              commitments
//
// Responses and justifications are echoed (re-broadcast once on first
// receipt), so every honest node tallies the same union of votes and
// derives the same qualified set QUAL, the same blame list, and the
// same group key — even when byzantine members send different messages
// to different peers. The transport is the authenticated channel; in a
// deployment where relays are untrusted the response/justification
// payloads would additionally be signed (noted in ARCHITECTURE.md).
//
// Resharing reuses the same three phases with two changes: the dealers
// are a threshold subset of the old group dealing λ_d·oldShare_d (λ the
// Lagrange coefficient of the fixed subset), and each dealing's
// degree-0 commitment must equal the dealer's old public share image
// raised to λ_d — the binding that forces the new sharing to encode the
// old secret. Because the λ are fixed by the announced subset, a single
// disqualified dealer aborts the epoch (ErrAborted, with blame); the
// caller re-runs with a different subset. The group public key is
// unchanged by construction.
package dkg

import (
	"bytes"
	"crypto/sha3"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"atom/internal/dvss"
	"atom/internal/ecc"
)

// ErrDKG is the parent of every ceremony failure and blame class.
var ErrDKG = errors.New("dkg: setup failed")

// Blame taxonomy. Every Fault carries exactly one of these sentinels;
// all of them match ErrDKG.
var (
	// ErrComplaint: a receiver's bad-share complaint stood — the dealer
	// published no justification covering it. Dealer disqualified.
	ErrComplaint = fmt.Errorf("%w: upheld share complaint", ErrDKG)
	// ErrWithheld: a receiver reported no deal and the dealer never
	// justified by revealing that share. Dealer disqualified.
	ErrWithheld = fmt.Errorf("%w: deal withheld", ErrDKG)
	// ErrEquivocation: a member provably sent conflicting messages —
	// a dealer whose votes carry more than one commitment hash, or a
	// voter with conflicting votes about one dealer. Disqualified.
	ErrEquivocation = fmt.Errorf("%w: equivocation", ErrDKG)
	// ErrJustification: the dealer answered a complaint, but the
	// revealed share fails verification (or the justification carries
	// the wrong commitments). Dealer disqualified.
	ErrJustification = fmt.Errorf("%w: invalid justification", ErrDKG)
	// ErrFalseComplaint: a complaint was refuted by a valid public
	// justification. The complainer is blamed; the dealer (and the
	// complainer's own dealing, which verified) stay qualified.
	ErrFalseComplaint = fmt.Errorf("%w: refuted complaint", ErrDKG)
	// ErrBinding: a resharing dealing is not bound to the dealer's old
	// share — its degree-0 commitment differs from λ_d·(old share
	// image). Dealer disqualified.
	ErrBinding = fmt.Errorf("%w: reshare dealing unbound to old share", ErrDKG)
	// ErrInsufficient: fewer qualified dealers than the ceremony's
	// minimum — the key cannot be trusted. The ceremony aborts.
	ErrInsufficient = fmt.Errorf("%w: insufficient qualified dealers", ErrDKG)
	// ErrAborted: a resharing epoch lost a subset dealer (the fixed λ
	// make every one load-bearing). Re-run with a different subset.
	ErrAborted = fmt.Errorf("%w: resharing aborted", ErrDKG)
)

// Roles a Fault can blame.
const (
	RoleDealer = "dealer"
	RoleMember = "member"
)

// Fault attributes one protocol violation to one participant: a dealer
// index (RoleDealer) or a receiver index (RoleMember — in a fresh DKG
// the two index spaces coincide). The honest nodes of one ceremony all
// derive the identical fault list.
type Fault struct {
	Role  string
	Index int
	Err   error // one of the sentinel classes above
}

func (f Fault) String() string {
	return fmt.Sprintf("%s %d: %v", f.Role, f.Index, f.Err)
}

// Vote codes a receiver can cast about a dealer.
const (
	VoteOK        = byte(0) // share verified; CommitHash names the commitments
	VoteComplaint = byte(1) // deal arrived but the share failed verification
	VoteMissing   = byte(2) // no deal arrived; CommitHash is nil
)

// Vote is one receiver's verdict on one dealer's deal.
type Vote struct {
	Dealer     int
	Code       byte
	CommitHash []byte
}

// DealMsg is one dealer's message to one receiver: the public Feldman
// commitments plus that receiver's private share. Receivers never relay
// the share.
type DealMsg struct {
	Session     uint64
	Dealer      int
	Commitments []*ecc.Point
	Share       *ecc.Scalar
}

// ResponseMsg is one receiver's broadcast verdict on every dealer.
type ResponseMsg struct {
	Session uint64
	Voter   int
	Votes   []Vote
}

// JustShare is one publicly revealed share inside a justification.
type JustShare struct {
	Member int
	Share  *ecc.Scalar
}

// JustificationMsg is a dealer's public answer to complaints: its
// commitments (so even a receiver that never saw the deal can verify)
// and the disputed shares.
type JustificationMsg struct {
	Session     uint64
	Dealer      int
	Commitments []*ecc.Point
	Shares      []JustShare
}

// CommitHash canonically hashes a dealer's commitment vector; votes and
// equivocation detection compare these.
func CommitHash(dealer int, commitments []*ecc.Point) []byte {
	h := sha3.New256()
	h.Write([]byte("atom/dkg-commit/v1"))
	var d [8]byte
	binary.BigEndian.PutUint64(d[:], uint64(dealer))
	h.Write(d[:])
	for _, c := range commitments {
		h.Write(c.Bytes())
	}
	return h.Sum(nil)
}

// Result is the ceremony outcome from one node's perspective.
type Result struct {
	// Key is this node's share of the new group key; nil for a
	// dealer-only participant (a member rotating out during resharing).
	Key *dvss.GroupKey
	// QUAL lists the qualified dealer indices, ascending. The group
	// secret is the sum of exactly these dealers' secrets.
	QUAL []int
	// Faults attributes every detected violation, sorted. Identical at
	// every honest node.
	Faults []Fault
}

// tally accumulates one node's view of the ceremony: the deals it
// received directly, and the echoed union of responses and
// justifications. It is not concurrency-safe; the node actor owns it.
type tally struct {
	threshold int
	size      int   // receiver count of the (new) group
	dealers   []int // expected dealer indices, ascending

	deals map[int]*DealMsg                // dealer -> deal received by this node
	votes map[int]map[int]map[string]Vote // voter -> dealer -> hash-key -> vote
	justs map[int]*JustificationMsg       // dealer -> first-seen justification

	// expectedC0 is the resharing binding: dealer -> required degree-0
	// commitment. Nil for a fresh DKG.
	expectedC0 map[int]*ecc.Point
	// requireAll aborts (ErrAborted) unless every dealer qualifies.
	requireAll bool
}

func newTally(dealers []int, threshold, size int) *tally {
	ds := append([]int(nil), dealers...)
	sort.Ints(ds)
	return &tally{
		threshold: threshold,
		size:      size,
		dealers:   ds,
		deals:     make(map[int]*DealMsg),
		votes:     make(map[int]map[int]map[string]Vote),
		justs:     make(map[int]*JustificationMsg),
	}
}

func (ta *tally) isDealer(d int) bool {
	i := sort.SearchInts(ta.dealers, d)
	return i < len(ta.dealers) && ta.dealers[i] == d
}

// addDeal records a deal addressed to this node. Structural rejects are
// silent (they surface as missing/complaint votes).
func (ta *tally) addDeal(m *DealMsg) {
	if m == nil || !ta.isDealer(m.Dealer) || ta.deals[m.Dealer] != nil {
		return
	}
	ta.deals[m.Dealer] = m
}

// addResponse merges a (possibly echoed) response into the per-voter
// vote union. Conflicting votes accumulate; finalize attributes them.
func (ta *tally) addResponse(m *ResponseMsg) {
	if m == nil || m.Voter < 1 || m.Voter > ta.size {
		return
	}
	per := ta.votes[m.Voter]
	if per == nil {
		per = make(map[int]map[string]Vote)
		ta.votes[m.Voter] = per
	}
	for _, v := range m.Votes {
		if !ta.isDealer(v.Dealer) {
			continue
		}
		if v.Code > VoteMissing {
			continue
		}
		set := per[v.Dealer]
		if set == nil {
			set = make(map[string]Vote)
			per[v.Dealer] = set
		}
		key := fmt.Sprintf("%d|%x", v.Code, v.CommitHash)
		if _, dup := set[key]; !dup {
			set[key] = v
		}
	}
}

// addJustification records a dealer's first justification. A dealer
// that equivocates its justification is already doomed by the
// commitment-hash rules, so first-seen is sufficient.
func (ta *tally) addJustification(m *JustificationMsg) {
	if m == nil || !ta.isDealer(m.Dealer) || ta.justs[m.Dealer] != nil {
		return
	}
	ta.justs[m.Dealer] = m
}

// myVotes derives this node's response from the deals it received:
// verify every dealer's share (and, when resharing, the binding to the
// old share image) and vote accordingly.
func (ta *tally) myVotes(index int) []Vote {
	votes := make([]Vote, 0, len(ta.dealers))
	for _, d := range ta.dealers {
		deal := ta.deals[d]
		switch {
		case deal == nil:
			votes = append(votes, Vote{Dealer: d, Code: VoteMissing})
		case len(deal.Commitments) != ta.threshold,
			deal.Share == nil,
			!ta.bindingOK(d, deal.Commitments),
			dvss.VerifyShare(deal.Commitments, index, deal.Share) != nil:
			votes = append(votes, Vote{Dealer: d, Code: VoteComplaint, CommitHash: CommitHash(d, deal.Commitments)})
		default:
			votes = append(votes, Vote{Dealer: d, Code: VoteOK, CommitHash: CommitHash(d, deal.Commitments)})
		}
	}
	return votes
}

// bindingOK enforces the resharing binding on a commitment vector (true
// for fresh DKGs and unknown dealers).
func (ta *tally) bindingOK(dealer int, commitments []*ecc.Point) bool {
	if ta.expectedC0 == nil {
		return true
	}
	want := ta.expectedC0[dealer]
	if want == nil || len(commitments) == 0 || commitments[0] == nil {
		return false
	}
	return commitments[0].Equal(want)
}

// implicated returns, per dealer, the receiver indices whose union-vote
// demands a justification (complaint or missing), after voter
// equivocation has been folded in. Used by dealers to know what to
// justify; finalize recomputes it.
func (ta *tally) implicated() map[int][]int {
	out := make(map[int][]int)
	for _, d := range ta.dealers {
		var members []int
		for voter := 1; voter <= ta.size; voter++ {
			set := ta.votes[voter][d]
			if len(set) == 0 {
				continue
			}
			needJust := len(set) > 1 // conflicting votes: force justification
			for _, v := range set {
				if v.Code != VoteOK {
					needJust = true
				}
			}
			if needJust {
				members = append(members, voter)
			}
		}
		if len(members) > 0 {
			sort.Ints(members)
			out[d] = members
		}
	}
	return out
}

// anyImplicated reports whether a justification phase is needed at all.
func (ta *tally) anyImplicated() bool { return len(ta.implicated()) > 0 }

// consensusHash returns the unique commitment hash voted for dealer d,
// or nil with ok=false when votes carry conflicting hashes (dealer
// equivocation) and ok=true with nil hash when no vote names one.
func (ta *tally) consensusHash(d int) ([]byte, bool) {
	var hash []byte
	for voter := 1; voter <= ta.size; voter++ {
		for _, v := range ta.votes[voter][d] {
			if v.CommitHash == nil {
				continue
			}
			if hash == nil {
				hash = v.CommitHash
			} else if !bytes.Equal(hash, v.CommitHash) {
				return nil, false
			}
		}
	}
	return hash, true
}

// finalize computes the qualified set, the fault list, and (for a
// receiver) the node's group key. index is this node's receiver index,
// 0 for a dealer-only participant.
func (ta *tally) finalize(index, minQual int) (*Result, error) {
	res := &Result{}
	faultSet := make(map[string]Fault)
	addFault := func(role string, idx int, err error) {
		faultSet[fmt.Sprintf("%s/%d/%v", role, idx, err)] = Fault{Role: role, Index: idx, Err: err}
	}

	// Voter equivocation: conflicting votes about any one dealer blame
	// the voter and leave the strictest interpretation (a complaint that
	// a justification can still clear).
	type pair struct{ dealer, member int }
	type implication struct {
		code    byte
		genuine bool // a single uncontradicted vote, eligible for ErrFalseComplaint
	}
	needJust := make(map[pair]implication)
	for voter := 1; voter <= ta.size; voter++ {
		for d, set := range ta.votes[voter] {
			if len(set) > 1 {
				addFault(RoleMember, voter, ErrEquivocation)
			}
			worst := byte(VoteOK)
			for _, v := range set {
				if v.Code > worst {
					worst = v.Code
				}
			}
			if len(set) > 1 && worst == VoteOK {
				// Conflicting hashes, both claiming ok: handled by the
				// dealer consensus-hash rule; also force justification.
				worst = VoteComplaint
			}
			if worst != VoteOK {
				needJust[pair{d, voter}] = implication{code: worst, genuine: len(set) == 1}
			}
		}
	}

	disq := make(map[int]bool)
	for _, d := range ta.dealers {
		hash, consistent := ta.consensusHash(d)
		if !consistent {
			addFault(RoleDealer, d, ErrEquivocation)
			disq[d] = true
			continue
		}
		if ta.expectedC0 != nil {
			if comms := ta.commitmentsFor(d, hash); comms != nil && !ta.bindingOK(d, comms) {
				addFault(RoleDealer, d, ErrBinding)
				disq[d] = true
				continue
			}
		}
		just := ta.justs[d]
		justValid := false
		if just != nil {
			justHash := CommitHash(d, just.Commitments)
			justValid = len(just.Commitments) == ta.threshold &&
				ta.bindingOK(d, just.Commitments) &&
				(hash == nil || bytes.Equal(hash, justHash))
		}
		justShare := func(member int) *ecc.Scalar {
			if just == nil || !justValid {
				return nil
			}
			for _, js := range just.Shares {
				if js.Member == member && js.Share != nil &&
					dvss.VerifyShare(just.Commitments, member, js.Share) == nil {
					return js.Share
				}
			}
			return nil
		}
		anyVotes := false
		for voter := 1; voter <= ta.size; voter++ {
			if len(ta.votes[voter][d]) > 0 {
				anyVotes = true
			}
		}
		if !anyVotes {
			// Nobody voted about this dealer — no receiver responded at
			// all about it; treat as withheld.
			addFault(RoleDealer, d, ErrWithheld)
			disq[d] = true
			continue
		}
		for voter := 1; voter <= ta.size; voter++ {
			imp, implicated := needJust[pair{d, voter}]
			if !implicated {
				continue
			}
			if justShare(voter) != nil {
				if imp.code == VoteComplaint && imp.genuine {
					// The public reveal verified: the complaint was false.
					// (An equivocated complaint is already blamed as
					// equivocation, not double-counted here.)
					addFault(RoleMember, voter, ErrFalseComplaint)
				}
				continue
			}
			disq[d] = true
			switch {
			case just != nil:
				// A justification exists but did not clear this member:
				// wrong commitments, unverifiable share, or the member
				// simply skipped.
				addFault(RoleDealer, d, ErrJustification)
			case imp.code == VoteMissing:
				addFault(RoleDealer, d, ErrWithheld)
			default:
				addFault(RoleDealer, d, ErrComplaint)
			}
		}
	}

	// Disqualify the dealing of any member blamed for equivocation (in
	// a fresh DKG the voter is a dealer too; in resharing this is a
	// no-op unless a rotating member misbehaved in both roles).
	for _, f := range faultSet {
		if f.Role == RoleMember && errors.Is(f.Err, ErrEquivocation) && ta.isDealer(f.Index) {
			if !disq[f.Index] {
				disq[f.Index] = true
				addFault(RoleDealer, f.Index, ErrEquivocation)
			}
		}
	}

	for _, d := range ta.dealers {
		if !disq[d] {
			res.QUAL = append(res.QUAL, d)
		}
	}
	res.Faults = sortedFaults(faultSet)

	if ta.requireAll && len(res.QUAL) != len(ta.dealers) {
		return res, fmt.Errorf("%w: %d of %d subset dealers qualified (%v)",
			ErrAborted, len(res.QUAL), len(ta.dealers), res.Faults)
	}
	if len(res.QUAL) < minQual {
		return res, fmt.Errorf("%w: %d qualified, need %d (%v)",
			ErrInsufficient, len(res.QUAL), minQual, res.Faults)
	}

	if index > 0 {
		key, err := ta.buildKey(index, res.QUAL)
		if err != nil {
			return res, err
		}
		res.Key = key
	}
	return res, nil
}

// commitmentsFor returns the commitment vector matching the consensus
// hash for dealer d: the node's own deal if it matches, else the
// justification's.
func (ta *tally) commitmentsFor(d int, hash []byte) []*ecc.Point {
	if deal := ta.deals[d]; deal != nil {
		if hash == nil || bytes.Equal(hash, CommitHash(d, deal.Commitments)) {
			return deal.Commitments
		}
	}
	if just := ta.justs[d]; just != nil {
		if hash == nil || bytes.Equal(hash, CommitHash(d, just.Commitments)) {
			return just.Commitments
		}
	}
	return nil
}

// shareFrom returns this node's authoritative share from dealer d: the
// directly dealt share when it verifies, else the publicly justified
// one.
func (ta *tally) shareFrom(d, index int, commitments []*ecc.Point) *ecc.Scalar {
	if deal := ta.deals[d]; deal != nil && deal.Share != nil &&
		bytes.Equal(CommitHash(d, deal.Commitments), CommitHash(d, commitments)) &&
		dvss.VerifyShare(commitments, index, deal.Share) == nil {
		return deal.Share
	}
	if just := ta.justs[d]; just != nil {
		for _, js := range just.Shares {
			if js.Member == index && js.Share != nil &&
				dvss.VerifyShare(commitments, index, js.Share) == nil {
				return js.Share
			}
		}
	}
	return nil
}

// buildKey aggregates the qualified dealings into this node's group
// key: commitments coefficient-wise, shares member-wise, exactly as
// dvss.AggregateDealings but restricted to QUAL and tolerant of shares
// recovered from justifications.
func (ta *tally) buildKey(index int, qual []int) (*dvss.GroupKey, error) {
	if len(qual) == 0 {
		return nil, fmt.Errorf("%w: empty qualified set", ErrInsufficient)
	}
	aggComms := make([]*ecc.Point, ta.threshold)
	for j := range aggComms {
		aggComms[j] = ecc.Identity()
	}
	share := ecc.NewScalar(0)
	for _, d := range qual {
		hash, _ := ta.consensusHash(d)
		comms := ta.commitmentsFor(d, hash)
		if comms == nil || len(comms) != ta.threshold {
			return nil, fmt.Errorf("%w: no commitments for qualified dealer %d", ErrDKG, d)
		}
		s := ta.shareFrom(d, index, comms)
		if s == nil {
			return nil, fmt.Errorf("%w: no verified share from qualified dealer %d", ErrDKG, d)
		}
		for j := range aggComms {
			aggComms[j] = aggComms[j].Add(comms[j])
		}
		share = share.Add(s)
	}
	if err := dvss.VerifyShare(aggComms, index, share); err != nil {
		return nil, fmt.Errorf("%w: aggregated share inconsistent: %v", ErrDKG, err)
	}
	return &dvss.GroupKey{
		PK:          aggComms[0].Clone(),
		Share:       share,
		Index:       index,
		Threshold:   ta.threshold,
		Size:        ta.size,
		Commitments: aggComms,
	}, nil
}

func sortedFaults(set map[string]Fault) []Fault {
	out := make([]Fault, 0, len(set))
	for _, f := range set {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Role != out[j].Role {
			return out[i].Role < out[j].Role
		}
		if out[i].Index != out[j].Index {
			return out[i].Index < out[j].Index
		}
		return out[i].Err.Error() < out[j].Err.Error()
	})
	return out
}
