package dkg

import (
	"bytes"
	"testing"

	"atom/internal/ecc"
)

func wireFixtures() (*DealMsg, *ResponseMsg, *JustificationMsg) {
	comms := []*ecc.Point{ecc.BaseMul(ecc.NewScalar(3)), ecc.BaseMul(ecc.NewScalar(5))}
	deal := &DealMsg{Session: 7, Dealer: 2, Commitments: comms, Share: ecc.NewScalar(11)}
	resp := &ResponseMsg{Session: 7, Voter: 4, Votes: []Vote{
		{Dealer: 1, Code: VoteOK, CommitHash: CommitHash(1, comms)},
		{Dealer: 2, Code: VoteComplaint, CommitHash: CommitHash(2, comms)},
		{Dealer: 3, Code: VoteMissing},
	}}
	just := &JustificationMsg{Session: 7, Dealer: 2, Commitments: comms, Shares: []JustShare{
		{Member: 4, Share: ecc.NewScalar(11)},
	}}
	return deal, resp, just
}

func TestDKGWireRoundTrip(t *testing.T) {
	deal, resp, just := wireFixtures()

	d2, err := DecodeDealMsg(deal.Marshal())
	if err != nil {
		t.Fatalf("DecodeDealMsg: %v", err)
	}
	if !bytes.Equal(d2.Marshal(), deal.Marshal()) {
		t.Fatal("DealMsg re-encode not canonical")
	}
	if d2.Session != 7 || d2.Dealer != 2 || !d2.Share.Equal(deal.Share) {
		t.Fatal("DealMsg fields lost in round trip")
	}

	r2, err := DecodeResponseMsg(resp.Marshal())
	if err != nil {
		t.Fatalf("DecodeResponseMsg: %v", err)
	}
	if !bytes.Equal(r2.Marshal(), resp.Marshal()) {
		t.Fatal("ResponseMsg re-encode not canonical")
	}
	if len(r2.Votes) != 3 || r2.Votes[2].Code != VoteMissing || r2.Votes[2].CommitHash != nil {
		t.Fatal("ResponseMsg votes lost in round trip")
	}

	j2, err := DecodeJustificationMsg(just.Marshal())
	if err != nil {
		t.Fatalf("DecodeJustificationMsg: %v", err)
	}
	if !bytes.Equal(j2.Marshal(), just.Marshal()) {
		t.Fatal("JustificationMsg re-encode not canonical")
	}
}

func TestDKGWireTruncationAndTrailing(t *testing.T) {
	deal, resp, just := wireFixtures()
	for _, enc := range [][]byte{deal.Marshal(), resp.Marshal(), just.Marshal()} {
		for n := 0; n < len(enc); n++ {
			// Must fail cleanly, never panic or over-read.
			DecodeDealMsg(enc[:n])
			DecodeResponseMsg(enc[:n])
			DecodeJustificationMsg(enc[:n])
		}
	}
	if _, err := DecodeDealMsg(append(deal.Marshal(), 0)); err == nil {
		t.Fatal("DealMsg decoded with trailing bytes")
	}
	if _, err := DecodeResponseMsg(append(resp.Marshal(), 0)); err == nil {
		t.Fatal("ResponseMsg decoded with trailing bytes")
	}
	if _, err := DecodeJustificationMsg(append(just.Marshal(), 0)); err == nil {
		t.Fatal("JustificationMsg decoded with trailing bytes")
	}
}

// FuzzDKGWire drives arbitrary bytes through every ceremony decoder:
// each must fail cleanly (no panic, no over-read), and whatever decodes
// must re-encode to a stable canonical form — decode(Marshal(m)) equals
// m byte-for-byte, even when the original input used non-minimal
// varints or unreduced scalars.
func FuzzDKGWire(f *testing.F) {
	deal, resp, just := wireFixtures()
	f.Add(deal.Marshal())
	f.Add(resp.Marshal())
	f.Add(just.Marshal())
	f.Add([]byte{})
	f.Add([]byte{1, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F})
	f.Fuzz(func(t *testing.T, data []byte) {
		if m, err := DecodeDealMsg(data); err == nil {
			enc := m.Marshal()
			m2, err := DecodeDealMsg(enc)
			if err != nil || !bytes.Equal(m2.Marshal(), enc) {
				t.Fatalf("DealMsg re-encode unstable (%v) for input %x", err, data)
			}
		}
		if m, err := DecodeResponseMsg(data); err == nil {
			enc := m.Marshal()
			m2, err := DecodeResponseMsg(enc)
			if err != nil || !bytes.Equal(m2.Marshal(), enc) {
				t.Fatalf("ResponseMsg re-encode unstable (%v) for input %x", err, data)
			}
		}
		if m, err := DecodeJustificationMsg(data); err == nil {
			enc := m.Marshal()
			m2, err := DecodeJustificationMsg(enc)
			if err != nil || !bytes.Equal(m2.Marshal(), enc) {
				t.Fatalf("JustificationMsg re-encode unstable (%v) for input %x", err, data)
			}
		}
	})
}
